#include "policy/crr.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/prng.hpp"

namespace qes {
namespace {

TEST(Crr, RoundRobinWithinOneCall) {
  CumulativeRoundRobin crr(4);
  auto t = crr.distribute(6);
  ASSERT_EQ(t.size(), 6u);
  EXPECT_EQ(t[0], 0u);
  EXPECT_EQ(t[1], 1u);
  EXPECT_EQ(t[2], 2u);
  EXPECT_EQ(t[3], 3u);
  EXPECT_EQ(t[4], 0u);
  EXPECT_EQ(t[5], 1u);
}

TEST(Crr, CursorPersistsAcrossCalls) {
  CumulativeRoundRobin crr(4);
  (void)crr.distribute(3);  // cores 0,1,2
  auto t = crr.distribute(3);
  EXPECT_EQ(t[0], 3u);  // continues where the last cycle stopped
  EXPECT_EQ(t[1], 0u);
  EXPECT_EQ(t[2], 1u);
  EXPECT_EQ(crr.cursor(), 2u);
}

TEST(Crr, LongRunBalanceIsPerfect) {
  // The defining property vs plain RR: cumulative distribution keeps
  // per-core counts within 1 regardless of batch sizes.
  CumulativeRoundRobin crr(5);
  Xoshiro256 rng(9);
  std::map<std::size_t, int> counts;
  int total = 0;
  for (int call = 0; call < 200; ++call) {
    const std::size_t batch = rng.uniform_index(7);  // 0..6 jobs
    for (std::size_t core : crr.distribute(batch)) {
      ++counts[core];
      ++total;
    }
  }
  int lo = total, hi = 0;
  for (std::size_t c = 0; c < 5; ++c) {
    lo = std::min(lo, counts[c]);
    hi = std::max(hi, counts[c]);
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(Crr, CountImbalanceStaysWithinOneAfterEveryCall) {
  // The invariant must hold at every prefix of the call sequence, not
  // just in the long run: after any batch, per-core assignment counts
  // differ by at most 1 for any core count and any batch-size pattern.
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t cores = 1 + rng.uniform_index(12);
    CumulativeRoundRobin crr(cores);
    std::vector<int> counts(cores, 0);
    for (int call = 0; call < 80; ++call) {
      for (std::size_t core : crr.distribute(rng.uniform_index(9))) {
        ASSERT_LT(core, cores);
        ++counts[core];
      }
      const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
      ASSERT_LE(*hi - *lo, 1)
          << "cores=" << cores << " after call " << call;
    }
  }
}

TEST(Crr, EqualDemandLoadImbalanceBoundedByOneJobDemand) {
  // With equal-demand jobs the count invariant translates directly into
  // a load bound: cumulative per-core load never differs by more than
  // the demand of a single job — the paper's argument for why C-RR keeps
  // queues balanced under trickling arrivals.
  Xoshiro256 rng(78);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t cores = 2 + rng.uniform_index(6);
    const double demand = rng.uniform(10.0, 500.0);
    CumulativeRoundRobin crr(cores);
    std::vector<double> load(cores, 0.0);
    for (int call = 0; call < 120; ++call) {
      for (std::size_t core : crr.distribute(rng.uniform_index(5))) {
        load[core] += demand;
      }
      const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
      ASSERT_LE(*hi - *lo, demand + 1e-9)
          << "cores=" << cores << " after call " << call;
    }
  }
}

TEST(Crr, PlainRoundRobinIsImbalancedUnderSmallBatches) {
  // Plain RR restarts at core 0 every call: batches of 1 all land on
  // core 0, the pathology C-RR fixes.
  PlainRoundRobin rr(4);
  std::map<std::size_t, int> counts;
  for (int call = 0; call < 100; ++call) {
    for (std::size_t core : rr.distribute(1)) ++counts[core];
  }
  EXPECT_EQ(counts[0], 100);
  EXPECT_EQ(counts[1], 0);
}

TEST(Crr, Reset) {
  CumulativeRoundRobin crr(3);
  (void)crr.distribute(2);
  crr.reset();
  EXPECT_EQ(crr.cursor(), 0u);
  EXPECT_EQ(crr.distribute(1)[0], 0u);
}

TEST(Crr, SingleCore) {
  CumulativeRoundRobin crr(1);
  for (std::size_t core : crr.distribute(5)) EXPECT_EQ(core, 0u);
}

TEST(Swrr, ProportionalDealing) {
  SmoothWeightedRoundRobin swrr({3.0, 1.0});
  std::map<std::size_t, int> counts;
  for (std::size_t t : swrr.distribute(400)) ++counts[t];
  EXPECT_EQ(counts[0], 300);
  EXPECT_EQ(counts[1], 100);
}

TEST(Swrr, InterleavesSmoothly) {
  // Weights {2,1}: the classic smooth pattern repeats (0,1,0) — the
  // heavy target never gets a long monopoly run.
  SmoothWeightedRoundRobin swrr({2.0, 1.0});
  const auto t = swrr.distribute(9);
  int longest_run = 1, run = 1;
  for (std::size_t k = 1; k < t.size(); ++k) {
    run = t[k] == t[k - 1] ? run + 1 : 1;
    longest_run = std::max(longest_run, run);
  }
  EXPECT_LE(longest_run, 2);
  EXPECT_EQ(std::count(t.begin(), t.end(), 0u), 6);
}

TEST(Swrr, EqualWeightsReduceToRoundRobin) {
  SmoothWeightedRoundRobin swrr({1.0, 1.0, 1.0});
  const auto t = swrr.distribute(6);
  std::map<std::size_t, int> counts;
  for (std::size_t x : t) ++counts[x];
  for (auto& [core, c] : counts) EXPECT_EQ(c, 2);
}

}  // namespace
}  // namespace qes
