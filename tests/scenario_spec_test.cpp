// Scenario spec plane: the JSON parser's grammar and error surface, the
// spec validation rules, and a parse pass over every shipped
// scenarios/*.json (a spec that rots in the repo fails here, not in a
// nightly).
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "scenario/json.hpp"

namespace qes::scenario {
namespace {

TEST(Json, ParsesScalarsArraysObjects) {
  const Json j = Json::parse(
      R"({"a": 1.5, "b": "x\ny", "c": [1, 2, 3], "d": {"e": true}, "f": null})");
  ASSERT_TRUE(j.is_object());
  EXPECT_DOUBLE_EQ(j.find("a")->as_number(), 1.5);
  EXPECT_EQ(j.find("b")->as_string(), "x\ny");
  ASSERT_EQ(j.find("c")->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(j.find("c")->as_array()[2].as_number(), 3.0);
  EXPECT_TRUE(j.find("d")->find("e")->as_bool());
  EXPECT_TRUE(j.find("f")->is_null());
  EXPECT_EQ(j.find("missing"), nullptr);
}

TEST(Json, ParsesNegativeAndExponentNumbers) {
  EXPECT_DOUBLE_EQ(Json::parse("-2.5e3").as_number(), -2500.0);
  EXPECT_DOUBLE_EQ(Json::parse("21600000").as_number(), 21'600'000.0);
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW((void)Json::parse(""), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)Json::parse(R"({"a": })"), std::runtime_error);
  EXPECT_THROW((void)Json::parse(R"({"a": 1,})"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("[1 2]"), std::runtime_error);
  EXPECT_THROW((void)Json::parse(R"("open)"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("{} extra"), std::runtime_error);
  EXPECT_THROW((void)Json::parse("tru"), std::runtime_error);
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse(R"({"a": 1})");
  EXPECT_THROW((void)j.find("a")->as_string(), std::runtime_error);
  EXPECT_THROW((void)j.as_array(), std::runtime_error);
  EXPECT_THROW((void)j.string_or("a", "x"), std::runtime_error);
  EXPECT_DOUBLE_EQ(j.number_or("absent", 7.0), 7.0);
}

TEST(ScenarioSpec, DefaultsFillUnspecifiedFields) {
  const ScenarioSpec s = parse_scenario_text(R"({"name": "x"})");
  EXPECT_EQ(s.name, "x");
  EXPECT_EQ(s.substrate, "sim");
  EXPECT_EQ(s.policy, "des");
  EXPECT_EQ(s.workload.regime, "poisson");
  EXPECT_EQ(s.cores, 16);
  EXPECT_FALSE(s.compare_opt);
}

TEST(ScenarioSpec, ParsesFullClusterChaosCell) {
  const ScenarioSpec s = parse_scenario_text(R"({
    "name": "chaos", "substrate": "cluster", "policy": "sdvfs",
    "workload": {"regime": "mmpp", "rate": 100, "rate_hi": 400,
                 "horizon_ms": 5000, "seed": 3},
    "engine": {"cores": 4, "power_budget": 80},
    "cluster": {"nodes": 3, "dispatch": "p2c"},
    "chaos": [{"at_ms": 500, "op": "drain", "node": 1},
              {"at_ms": 900, "op": "budget", "budget": 120},
              {"at_ms": 1200, "op": "revive", "node": 1},
              {"at_ms": 1500, "op": "kill", "node": 0}]})");
  EXPECT_EQ(s.substrate, "cluster");
  EXPECT_EQ(s.policy, "sdvfs");
  EXPECT_EQ(s.workload.regime, "mmpp");
  EXPECT_DOUBLE_EQ(s.workload.mmpp_rate_hi, 400.0);
  EXPECT_EQ(s.nodes, 3);
  EXPECT_EQ(s.dispatch, "p2c");
  ASSERT_EQ(s.chaos.size(), 4u);
  EXPECT_EQ(s.chaos[0].kind, cluster::ChaosEvent::Kind::Drain);
  EXPECT_EQ(s.chaos[1].kind, cluster::ChaosEvent::Kind::BudgetStep);
  EXPECT_DOUBLE_EQ(s.chaos[1].budget, 120.0);
  EXPECT_EQ(s.chaos[2].kind, cluster::ChaosEvent::Kind::Revive);
  EXPECT_EQ(s.chaos[3].kind, cluster::ChaosEvent::Kind::Kill);
  EXPECT_EQ(s.chaos[3].node, 0);
}

TEST(ScenarioSpec, RejectsUnknownEnumerations) {
  EXPECT_THROW((void)parse_scenario_text(R"({"substrate": "gpu"})"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario_text(R"({"policy": "greedy"})"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_scenario_text(R"({"workload": {"regime": "sawtooth"}})"),
      std::invalid_argument);
  EXPECT_THROW((void)parse_scenario_text(
                   R"({"cluster": {"dispatch": "random"}})"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario_text(R"({"substrate": "cluster",
      "chaos": [{"at_ms": 1, "op": "explode", "node": 0}]})"),
               std::invalid_argument);
}

TEST(ScenarioSpec, RejectsMalformedSchedules) {
  // Budget steps out of order.
  EXPECT_THROW((void)parse_scenario_text(R"({"budget_steps": [
      {"at_ms": 500, "budget": 100}, {"at_ms": 100, "budget": 80}]})"),
               std::invalid_argument);
  // Non-positive stepped budget.
  EXPECT_THROW((void)parse_scenario_text(
                   R"({"budget_steps": [{"at_ms": 10, "budget": 0}]})"),
               std::invalid_argument);
  // Chaos on a non-cluster substrate.
  EXPECT_THROW((void)parse_scenario_text(R"({"substrate": "sim",
      "chaos": [{"at_ms": 1, "op": "kill", "node": 0}]})"),
               std::invalid_argument);
  // Chaos event without a node.
  EXPECT_THROW((void)parse_scenario_text(R"({"substrate": "cluster",
      "chaos": [{"at_ms": 1, "op": "kill"}]})"),
               std::invalid_argument);
  // Engine sanity.
  EXPECT_THROW((void)parse_scenario_text(R"({"engine": {"cores": 0}})"),
               std::invalid_argument);
  EXPECT_THROW(
      (void)parse_scenario_text(R"({"engine": {"power_budget": -5}})"),
      std::invalid_argument);
}

TEST(ScenarioSpec, MissingFileIsARuntimeError) {
  EXPECT_THROW((void)load_scenario_file("/nonexistent/cell.json"),
               std::runtime_error);
}

// Every spec shipped under scenarios/ must parse and validate — the
// matrix must never rot. QES_SCENARIO_DIR is injected by CMake.
TEST(ScenarioSpec, ShippedScenarioMatrixParses) {
  namespace fs = std::filesystem;
  std::size_t seen = 0;
  for (const fs::directory_entry& e :
       fs::directory_iterator(QES_SCENARIO_DIR)) {
    if (e.path().extension() != ".json") continue;
    SCOPED_TRACE(e.path().string());
    const ScenarioSpec s = load_scenario_file(e.path().string());
    EXPECT_FALSE(s.name.empty());
    ++seen;
  }
  EXPECT_GE(seen, 7u);
}

}  // namespace
}  // namespace qes::scenario
