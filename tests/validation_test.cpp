#include <gtest/gtest.h>

#include "core/prng.hpp"
#include "multicore/des_scheduler.hpp"
#include "sim/engine.hpp"
#include "validation/opteron.hpp"
#include "validation/regression.hpp"
#include "validation/replay.hpp"
#include "workload/generator.hpp"

namespace qes {
namespace {

TEST(Regression, RecoversSyntheticModelExactly) {
  PowerModel truth{.a = 4.2, .beta = 2.3, .b = 7.5};
  std::vector<std::pair<Speed, Watts>> samples;
  for (double s = 0.5; s <= 3.0; s += 0.25) {
    samples.emplace_back(s, truth.total_power(s));
  }
  const auto fit = fit_power_model(samples);
  EXPECT_NEAR(fit.model.a, truth.a, 1e-3);
  EXPECT_NEAR(fit.model.beta, truth.beta, 1e-3);
  EXPECT_NEAR(fit.model.b, truth.b, 1e-3);
  EXPECT_LT(fit.rmse, 1e-6);
}

TEST(Regression, RobustToNoise) {
  PowerModel truth{.a = 2.6, .beta = 1.8, .b = 9.3};
  Xoshiro256 rng(11);
  std::vector<std::pair<Speed, Watts>> samples;
  for (double s = 0.6; s <= 2.6; s += 0.1) {
    samples.emplace_back(s, truth.total_power(s) + rng.normal(0.0, 0.05));
  }
  const auto fit = fit_power_model(samples);
  EXPECT_NEAR(fit.model.beta, truth.beta, 0.15);
  EXPECT_NEAR(fit.model.b, truth.b, 0.8);
  EXPECT_LT(fit.rmse, 0.1);
}

TEST(Regression, ReproducesPaperOpteronFit) {
  // Fitting the four measured Opteron points should land close to the
  // paper's (a, beta, b) = (2.6075, 1.791, 9.2562).
  std::vector<std::pair<Speed, Watts>> samples;
  for (const auto& p : kOpteron2380Measured) {
    samples.emplace_back(p.ghz, p.watts);
  }
  const auto fit = fit_power_model(samples);
  EXPECT_NEAR(fit.model.a, 2.6075, 0.15);
  EXPECT_NEAR(fit.model.beta, 1.791, 0.1);
  EXPECT_NEAR(fit.model.b, 9.2562, 0.3);
  EXPECT_LT(fit.rmse, 0.2);
}

TEST(Opteron, MeasuredTableLookup) {
  EXPECT_NEAR(opteron_measured_power(0.8), 11.06, 1e-9);
  EXPECT_NEAR(opteron_measured_power(2.5), 22.69, 1e-9);
  // Interpolation between 1.3 and 1.8.
  const double mid = opteron_measured_power(1.55);
  EXPECT_GT(mid, 13.275);
  EXPECT_LT(mid, 16.85);
  // Idle == static power.
  EXPECT_NEAR(opteron_measured_power(0.0), 9.2562, 1e-6);
  // Fitted model tracks the table within a fraction of a watt.
  const PowerModel pm = opteron_fitted_model();
  for (const auto& p : kOpteron2380Measured) {
    EXPECT_NEAR(pm.total_power(p.ghz), p.watts, 0.35);
  }
}

class ReplayTest : public ::testing::Test {
 protected:
  RunResult run_validation_workload(double rate) {
    // §V-G setup: 8 cores, Opteron fitted model, discrete levels,
    // 152 W total budget (static + dynamic).
    cfg_.cores = 8;
    cfg_.power_model = opteron_fitted_model();
    cfg_.power_budget = 152.0 - 8 * cfg_.power_model.b;  // dynamic share
    cfg_.max_core_speed = 2.5;
    cfg_.record_execution = true;
    WorkloadConfig wl;
    wl.arrival_rate = rate;
    wl.horizon_ms = 10'000.0;
    Engine engine(cfg_, generate_websearch_jobs(wl),
                  make_des_policy(
                      {.speed_levels = DiscreteSpeedSet::opteron2380()}));
    return engine.run();
  }

  EngineConfig cfg_;
};

TEST_F(ReplayTest, MeasuredEnergyTracksModelEnergy) {
  auto run = run_validation_workload(60.0);
  const auto r = replay_on_real_system(run, cfg_);
  ASSERT_GT(r.model_energy, 0.0);
  // Fig. 11: simulation and measurement agree closely (within ~10%).
  const double gap =
      std::fabs(r.measured_energy - r.model_energy) / r.model_energy;
  EXPECT_LT(gap, 0.10) << "measured=" << r.measured_energy
                       << " model=" << r.model_energy;
  EXPECT_GT(r.speed_transitions, 0u);
  EXPECT_GT(r.power_samples, 0u);
}

TEST_F(ReplayTest, OverheadsIncreaseMeasuredEnergy) {
  auto run = run_validation_workload(60.0);
  ReplayOptions cheap;
  cheap.dvfs_transition_ms = 0.0;
  cheap.scheduler_overhead_ms = 0.0;
  cheap.noise_stddev_watts = 0.0;
  ReplayOptions costly;
  costly.dvfs_transition_ms = 1.0;
  costly.scheduler_overhead_ms = 1.0;
  costly.noise_stddev_watts = 0.0;
  const auto a = replay_on_real_system(run, cfg_, cheap);
  const auto b = replay_on_real_system(run, cfg_, costly);
  EXPECT_GT(b.measured_energy, a.measured_energy);
  EXPECT_DOUBLE_EQ(a.model_energy, b.model_energy);
}

TEST_F(ReplayTest, NoiseAveragesOut) {
  auto run = run_validation_workload(40.0);
  ReplayOptions quiet;
  quiet.noise_stddev_watts = 0.0;
  ReplayOptions noisy;
  noisy.noise_stddev_watts = 2.0;
  const auto a = replay_on_real_system(run, cfg_, quiet);
  const auto b = replay_on_real_system(run, cfg_, noisy);
  // Thousands of samples: the noise contribution is tiny relative to E.
  EXPECT_NEAR(b.measured_energy, a.measured_energy,
              0.01 * a.measured_energy);
}

TEST_F(ReplayTest, RequiresRecordedExecution) {
  RunResult empty;
  EXPECT_DEATH((void)replay_on_real_system(empty, cfg_), "record_execution");
}

}  // namespace
}  // namespace qes
