#include "cli/options.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace qes::cli {
namespace {

Options parse(std::initializer_list<const char*> args) {
  return parse_options(std::vector<std::string>(args.begin(), args.end()));
}

TEST(CliOptions, Defaults) {
  const Options o = parse({});
  EXPECT_EQ(o.policy, PolicyKind::DES);
  EXPECT_EQ(o.arch, Architecture::CDVFS);
  EXPECT_EQ(o.engine.cores, 16);
  EXPECT_DOUBLE_EQ(o.engine.power_budget, 320.0);
  EXPECT_DOUBLE_EQ(o.workload.arrival_rate, 150.0);
  EXPECT_FALSE(o.json);
}

TEST(CliOptions, PolicySelection) {
  EXPECT_EQ(parse({"--policy", "fcfs"}).policy, PolicyKind::FCFS);
  EXPECT_EQ(parse({"--policy", "ljf"}).policy, PolicyKind::LJF);
  EXPECT_EQ(parse({"--policy", "sjf", "--wf"}).baseline_power,
            PowerDistribution::WaterFilling);
  EXPECT_THROW(parse({"--policy", "rr"}), std::invalid_argument);
}

TEST(CliOptions, ServerParameters) {
  const Options o = parse({"--cores", "8", "--budget", "152", "--quantum",
                           "250", "--counter", "4", "--c", "0.009"});
  EXPECT_EQ(o.engine.cores, 8);
  EXPECT_DOUBLE_EQ(o.engine.power_budget, 152.0);
  EXPECT_DOUBLE_EQ(o.engine.quantum_ms, 250.0);
  EXPECT_EQ(o.engine.counter_trigger, 4);
  EXPECT_DOUBLE_EQ(o.quality_c, 0.009);
}

TEST(CliOptions, WorkloadParameters) {
  const Options o = parse({"--rate", "200", "--seconds", "30", "--deadline",
                           "100", "--partial", "0.5", "--seed", "7"});
  EXPECT_DOUBLE_EQ(o.workload.arrival_rate, 200.0);
  EXPECT_DOUBLE_EQ(o.workload.horizon_ms, 30'000.0);
  EXPECT_DOUBLE_EQ(o.workload.deadline_ms, 100.0);
  EXPECT_DOUBLE_EQ(o.workload.partial_fraction, 0.5);
  EXPECT_EQ(o.workload.seed, 7u);
}

TEST(CliOptions, SweepExpansion) {
  const Options o = parse({"--sweep", "80:120:20"});
  ASSERT_EQ(o.sweep_rates.size(), 3u);
  EXPECT_DOUBLE_EQ(o.sweep_rates[0], 80.0);
  EXPECT_DOUBLE_EQ(o.sweep_rates[2], 120.0);
  EXPECT_THROW(parse({"--sweep", "80-120-20"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sweep", "120:80:20"}), std::invalid_argument);
  EXPECT_THROW(parse({"--sweep", "80:120:0"}), std::invalid_argument);
}

TEST(CliOptions, RejectsBadValues) {
  EXPECT_THROW(parse({"--cores", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--cores", "abc"}), std::invalid_argument);
  EXPECT_THROW(parse({"--rate", "-5"}), std::invalid_argument);
  EXPECT_THROW(parse({"--partial", "1.5"}), std::invalid_argument);
  EXPECT_THROW(parse({"--budget"}), std::invalid_argument);  // missing value
  EXPECT_THROW(parse({"--frobnicate"}), std::invalid_argument);
}

TEST(CliOptions, DesOnlyFlagsRejectedForBaselines) {
  EXPECT_THROW(parse({"--policy", "fcfs", "--discrete"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--policy", "sjf", "--arch", "sdvfs"}),
               std::invalid_argument);
  // ...but fine for DES.
  EXPECT_NO_THROW(parse({"--policy", "des", "--discrete", "--eager"}));
}

TEST(CliOptions, PolicyLabel) {
  EXPECT_EQ(policy_label(parse({})), "DES[C-DVFS]");
  EXPECT_EQ(policy_label(parse({"--arch", "sdvfs"})), "DES[S-DVFS]");
  EXPECT_EQ(policy_label(parse({"--discrete", "--eager"})),
            "DES[C-DVFS,discrete,eager]");
  EXPECT_EQ(policy_label(parse({"--policy", "fcfs", "--wf"})), "FCFS+WF");
  EXPECT_EQ(policy_label(parse({"--policy", "ljf"})), "LJF");
}

TEST(CliOptions, EngineConfigConstruction) {
  const Options o = parse({"--c", "0.01", "--resume", "--discrete"});
  const EngineConfig cfg = make_engine_config(o);
  EXPECT_TRUE(cfg.resume_passed_jobs);
  EXPECT_DOUBLE_EQ(cfg.max_core_speed, 2.5);
  EXPECT_NEAR(cfg.quality(1000.0), 1.0, 1e-9);
  // Baselines get idle-trigger-only engine config.
  const Options b = parse({"--policy", "fcfs"});
  const EngineConfig bcfg = make_engine_config(b);
  EXPECT_DOUBLE_EQ(bcfg.quantum_ms, 0.0);
  EXPECT_EQ(bcfg.counter_trigger, 0);
}

TEST(CliOptions, PolicyFactoryProducesNamedPolicies) {
  const Options o = parse({});
  EXPECT_EQ(make_policy(o)->name(), "DES[C-DVFS]");
  const Options b = parse({"--policy", "sjf", "--wf"});
  EXPECT_EQ(make_policy(b)->name(), "SJF+WF");
}

TEST(CliOptions, WeightedAndPremiumFlags) {
  const Options o = parse({"--weighted", "--premium", "0.3",
                           "--premium-weight", "6"});
  EXPECT_TRUE(o.weighted);
  EXPECT_DOUBLE_EQ(o.workload.premium_fraction, 0.3);
  EXPECT_DOUBLE_EQ(o.workload.premium_weight, 6.0);
  EXPECT_EQ(policy_label(o), "DES[C-DVFS,weighted]");
  EXPECT_THROW(parse({"--weighted", "--discrete"}), std::invalid_argument);
  EXPECT_THROW(parse({"--weighted", "--arch", "sdvfs"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--premium", "2"}), std::invalid_argument);
}

TEST(CliOptions, BigLittleFlags) {
  const Options o = parse({"--cores", "8", "--little", "4", "--little-cap",
                           "1.2"});
  EXPECT_EQ(o.little_cores, 4);
  const EngineConfig cfg = make_engine_config(o);
  ASSERT_EQ(cfg.per_core_max_speed.size(), 8u);
  EXPECT_DOUBLE_EQ(cfg.per_core_max_speed.front(),
                   std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(cfg.per_core_max_speed.back(), 1.2);
  EXPECT_THROW(parse({"--cores", "4", "--little", "8"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--little-cap", "0"}), std::invalid_argument);
}

TEST(CliOptions, RuntimeDriverDefaults) {
  const Options o = parse({});
  EXPECT_DOUBLE_EQ(o.duration_s, 30.0);
  EXPECT_EQ(o.producers, 4);
  EXPECT_DOUBLE_EQ(o.metrics_interval_ms, 1000.0);
  EXPECT_DOUBLE_EQ(o.time_scale, 1.0);
  EXPECT_FALSE(o.conform);
}

TEST(CliOptions, RuntimeDriverFlags) {
  const Options o =
      parse({"--duration-s", "12", "--arrival-rate", "90", "--producers", "6",
             "--metrics-interval-ms", "250", "--time-scale", "8"});
  EXPECT_DOUBLE_EQ(o.duration_s, 12.0);
  EXPECT_DOUBLE_EQ(o.workload.arrival_rate, 90.0);
  EXPECT_EQ(o.producers, 6);
  EXPECT_DOUBLE_EQ(o.metrics_interval_ms, 250.0);
  EXPECT_DOUBLE_EQ(o.time_scale, 8.0);
  EXPECT_TRUE(parse({"--conform"}).conform);
}

TEST(CliOptions, ScrapePlaneFlags) {
  const Options defaults = parse({});
  EXPECT_EQ(defaults.http_port, -1);
  EXPECT_EQ(defaults.node_http_base_port, -1);
  EXPECT_FALSE(defaults.trace_chrome.has_value());

  const Options o = parse({"--http-port", "0", "--node-http-base-port",
                           "19100", "--trace-chrome", "run.json"});
  EXPECT_EQ(o.http_port, 0);
  EXPECT_EQ(o.node_http_base_port, 19100);
  ASSERT_TRUE(o.trace_chrome.has_value());
  EXPECT_EQ(*o.trace_chrome, "run.json");
  EXPECT_EQ(parse({"--http-port", "9090"}).http_port, 9090);

  EXPECT_THROW(parse({"--http-port", "-2"}), std::invalid_argument);
  EXPECT_THROW(parse({"--http-port", "65536"}), std::invalid_argument);
  EXPECT_THROW(parse({"--node-http-base-port", "70000"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--trace-chrome", ""}), std::invalid_argument);
  EXPECT_THROW(parse({"--trace-chrome"}), std::invalid_argument);
}

TEST(CliOptions, RuntimeDriverRejectsBadValues) {
  EXPECT_THROW(parse({"--duration-s", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--arrival-rate", "-1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--producers", "-1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--metrics-interval-ms", "-5"}), std::invalid_argument);
  EXPECT_THROW(parse({"--time-scale", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--producers"}), std::invalid_argument);
  // 0 producers is legal since the wire plane: a --listen-port run can
  // be driven entirely from the network.
  EXPECT_EQ(parse({"--producers", "0"}).producers, 0);
}

TEST(CliOptions, WirePlaneFlags) {
  const Options defaults = parse({});
  EXPECT_EQ(defaults.listen_port, -1);
  EXPECT_EQ(defaults.ingress_workers, 2);
  EXPECT_EQ(defaults.node_listen_base_port, -1);

  const Options o = parse({"--listen-port", "0", "--ingress-workers", "4",
                           "--node-listen-base-port", "19300"});
  EXPECT_EQ(o.listen_port, 0);
  EXPECT_EQ(o.ingress_workers, 4);
  EXPECT_EQ(o.node_listen_base_port, 19300);
  EXPECT_EQ(parse({"--listen-port", "7400"}).listen_port, 7400);

  EXPECT_THROW(parse({"--listen-port", "-2"}), std::invalid_argument);
  EXPECT_THROW(parse({"--listen-port", "65536"}), std::invalid_argument);
  EXPECT_THROW(parse({"--ingress-workers", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--ingress-workers", "65"}), std::invalid_argument);
  EXPECT_THROW(parse({"--node-listen-base-port", "70000"}),
               std::invalid_argument);
}

TEST(CliOptions, ClusterDriverDefaults) {
  const Options o = parse({});
  EXPECT_EQ(o.nodes, 2);
  EXPECT_DOUBLE_EQ(o.total_budget, -1.0);  // derive nodes * --budget
  EXPECT_EQ(o.dispatch, "crr");
  EXPECT_DOUBLE_EQ(o.broker_period_ms, 20.0);
  EXPECT_EQ(o.kill_node, -1);
  EXPECT_FALSE(o.compare_dispatch);
}

TEST(CliOptions, ClusterDriverFlags) {
  const Options o =
      parse({"--nodes", "4", "--total-budget", "512", "--dispatch", "p2c",
             "--broker-period-ms", "10", "--kill-node", "2", "--kill-at-s",
             "1.5", "--compare-dispatch"});
  EXPECT_EQ(o.nodes, 4);
  EXPECT_DOUBLE_EQ(o.total_budget, 512.0);
  EXPECT_EQ(o.dispatch, "p2c");
  EXPECT_DOUBLE_EQ(o.broker_period_ms, 10.0);
  EXPECT_EQ(o.kill_node, 2);
  EXPECT_DOUBLE_EQ(o.kill_at_s, 1.5);
  EXPECT_TRUE(o.compare_dispatch);
  EXPECT_EQ(parse({"--dispatch", "jsq"}).dispatch, "jsq");
}

TEST(CliOptions, ClusterDriverRejectsBadValues) {
  EXPECT_THROW(parse({"--nodes", "0"}), std::invalid_argument);
  EXPECT_THROW(parse({"--total-budget", "-10"}), std::invalid_argument);
  EXPECT_THROW(parse({"--dispatch", "random"}), std::invalid_argument);
  EXPECT_THROW(parse({"--broker-period-ms", "0"}), std::invalid_argument);
  // Fault injection needs both the node and the time.
  EXPECT_THROW(parse({"--kill-node", "1"}), std::invalid_argument);
  EXPECT_THROW(parse({"--kill-at-s", "2"}), std::invalid_argument);
  // The victim must exist.
  EXPECT_THROW(
      parse({"--nodes", "2", "--kill-node", "2", "--kill-at-s", "1"}),
      std::invalid_argument);
}

TEST(CliOptions, HelpAndUsage) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_NE(usage().find("--policy"), std::string::npos);
  EXPECT_NE(usage().find("--sweep"), std::string::npos);
  EXPECT_NE(usage().find("--duration-s"), std::string::npos);
  EXPECT_NE(usage().find("--nodes"), std::string::npos);
  EXPECT_NE(usage().find("--broker-period-ms"), std::string::npos);
  EXPECT_NE(usage().find("--compare-dispatch"), std::string::npos);
  EXPECT_NE(usage().find("--time-scale"), std::string::npos);
  EXPECT_NE(usage().find("--http-port"), std::string::npos);
  EXPECT_NE(usage().find("--node-http-base-port"), std::string::npos);
  EXPECT_NE(usage().find("--trace-chrome"), std::string::npos);
}

}  // namespace
}  // namespace qes::cli
