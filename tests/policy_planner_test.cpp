// DesPlanner kernel unit tests: budget-free YDS requests, the all-fits
// fast path, water-fill escalation under a tight budget, the §V-D rigid
// discard loop, the passed-over drop rule, the No-DVFS / S-DVFS
// variants, discrete quantization, and the scratch-reset contracts of
// WorldView / PlanOutcome.
#include "policy/des_planner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/power.hpp"
#include "core/quality.hpp"
#include "policy/world_view.hpp"

namespace qes::policy {
namespace {

const PowerModel kPm = default_power_model();  // a=5, beta=2

WorldView make_view(Time now, Watts budget, std::size_t cores) {
  WorldView v;
  v.reset(now, budget, cores);
  v.power_model = &kPm;
  return v;
}

TEST(DesPlanner, CanonicalizeSortsByDeadlineThenId) {
  WorldView v = make_view(0.0, 10.0, 1);
  v.cores[0].jobs = {{.id = 3, .deadline = 200.0, .demand = 1.0},
                     {.id = 2, .deadline = 100.0, .demand = 1.0},
                     {.id = 1, .deadline = 200.0, .demand = 1.0}};
  DesPlanner::canonicalize(v);
  EXPECT_EQ(v.cores[0].jobs[0].id, 2u);
  EXPECT_EQ(v.cores[0].jobs[1].id, 1u);
  EXPECT_EQ(v.cores[0].jobs[2].id, 3u);
}

TEST(DesPlanner, BudgetFreeIsPerCoreYds) {
  // One job, 50 units of work over [0, 100]: YDS runs it at 0.5 GHz,
  // requesting 5 * 0.5^2 = 1.25 W at `now`. A fully served job must not
  // contribute.
  WorldView v = make_view(0.0, 10.0, 1);
  v.cores[0].jobs = {
      {.id = 1, .deadline = 100.0, .demand = 50.0},
      {.id = 2, .deadline = 200.0, .demand = 30.0, .processed = 30.0}};
  DesPlanner planner;
  const BudgetFree f = planner.budget_free(v, 0);
  EXPECT_NEAR(f.max_speed, 0.5, 1e-12);
  EXPECT_NEAR(f.power_at_now, 1.25, 1e-12);
  EXPECT_NEAR(f.plan.volume_of(1), 50.0, 1e-9);
  EXPECT_NEAR(f.plan.volume_of(2), 0.0, 1e-12);
}

TEST(DesPlanner, TotalPowerRequestSumsAllCores) {
  WorldView v = make_view(0.0, 10.0, 3);
  v.cores[0].jobs = {{.id = 1, .deadline = 100.0, .demand = 50.0}};
  v.cores[1].jobs = {{.id = 2, .deadline = 100.0, .demand = 50.0}};
  // core 2 idle
  DesPlanner planner;
  EXPECT_NEAR(planner.total_power_request(v), 2.5, 1e-12);
}

TEST(DesPlanner, FastPathInstallsBudgetFreePlansUnchanged) {
  // Both optimistic schedules fit the budget: the installed plans must
  // be the budget-free YDS plans themselves — full completion, no
  // drops, no idle draw.
  DesPlanner planner;
  WorldView ref = make_view(0.0, 10.0, 2);
  ref.cores[0].jobs = {{.id = 1, .deadline = 100.0, .demand = 50.0}};
  ref.cores[1].jobs = {{.id = 2, .deadline = 80.0, .demand = 20.0}};
  const BudgetFree f0 = planner.budget_free(ref, 0);
  const BudgetFree f1 = planner.budget_free(ref, 1);

  WorldView v = ref;
  PlanOutcome out;
  planner.plan_c_dvfs(v, PlanOptions{}, out);
  ASSERT_EQ(out.cores.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const BudgetFree& f = i == 0 ? f0 : f1;
    ASSERT_EQ(out.cores[i].plan.size(), f.plan.size());
    for (std::size_t k = 0; k < f.plan.size(); ++k) {
      EXPECT_EQ(out.cores[i].plan[k].t0, f.plan[k].t0);
      EXPECT_EQ(out.cores[i].plan[k].t1, f.plan[k].t1);
      EXPECT_EQ(out.cores[i].plan[k].job, f.plan[k].job);
      EXPECT_EQ(out.cores[i].plan[k].speed, f.plan[k].speed);
    }
    EXPECT_EQ(out.cores[i].idle_power, 0.0);
    EXPECT_TRUE(out.cores[i].rigid_discards.empty());
    EXPECT_TRUE(out.cores[i].passed_over.empty());
  }
}

TEST(DesPlanner, WaterfillCapsEachCoreAtItsBudgetShare) {
  // Two identical cores each requesting 5 W under a 5 W budget: WF
  // grants 2.5 W each, capping the speed at sqrt(2.5 / 5).
  WorldView v = make_view(0.0, 5.0, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    v.cores[i].jobs = {{.id = i + 1, .deadline = 100.0, .demand = 100.0}};
  }
  DesPlanner planner;
  PlanOutcome out;
  planner.plan_c_dvfs(v, PlanOptions{}, out);
  const Speed cap = kPm.speed_for_power(2.5);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(out.cores[i].plan.max_speed(), cap, 1e-9);
    // The granted volume is the most the capped core can serve by the
    // deadline — partial completion, not a drop.
    EXPECT_NEAR(out.cores[i].plan.volume_of(i + 1), cap * 100.0, 1e-6);
    EXPECT_TRUE(out.cores[i].rigid_discards.empty());
    EXPECT_TRUE(out.cores[i].passed_over.empty());
  }
  // Together the capped plans draw exactly the budget at `now`.
  EXPECT_NEAR(kPm.dynamic_power(out.cores[0].plan.speed_at(0.0)) +
                  kPm.dynamic_power(out.cores[1].plan.speed_at(0.0)),
              5.0, 1e-9);
}

TEST(DesPlanner, HardwareSpeedCapDisablesFastPathAndBoundsThePlan) {
  // Ample power but a 0.4 GHz hardware cap below the 0.5 GHz YDS speed:
  // the fast path must not fire, and the plan tops out at the cap.
  WorldView v = make_view(0.0, 1000.0, 1);
  v.cores[0].speed_cap = 0.4;
  v.cores[0].jobs = {{.id = 1, .deadline = 100.0, .demand = 50.0}};
  DesPlanner planner;
  PlanOutcome out;
  planner.plan_c_dvfs(v, PlanOptions{}, out);
  EXPECT_LE(out.cores[0].plan.max_speed(), 0.4 + kTimeEps);
  EXPECT_NEAR(out.cores[0].plan.volume_of(1), 40.0, 1e-6);
}

TEST(DesPlanner, RigidJobThatCannotCompleteIsDiscarded) {
  // The rigid job needs 10 GHz; the 5 W budget caps the core at 1 GHz.
  // The §V-D loop must discard it (erasing it from the view) and replan
  // the remaining partial job to full completion.
  WorldView v = make_view(0.0, 5.0, 1);
  v.cores[0].jobs = {
      {.id = 1, .deadline = 10.0, .demand = 100.0, .partial_ok = false},
      {.id = 2, .deadline = 20.0, .demand = 5.0}};
  DesPlanner planner;
  PlanOutcome out;
  planner.plan_c_dvfs(v, PlanOptions{}, out);
  ASSERT_EQ(out.cores[0].rigid_discards.size(), 1u);
  EXPECT_EQ(out.cores[0].rigid_discards[0], 1u);
  ASSERT_EQ(v.cores[0].jobs.size(), 1u);
  EXPECT_EQ(v.cores[0].jobs[0].id, 2u);
  EXPECT_NEAR(out.cores[0].plan.volume_of(1), 0.0, 1e-12);
  EXPECT_NEAR(out.cores[0].plan.volume_of(2), 5.0, 1e-9);
}

TEST(DesPlanner, RigidJobThatFitsIsKept) {
  WorldView v = make_view(0.0, 5.0, 1);
  v.cores[0].jobs = {
      {.id = 1, .deadline = 100.0, .demand = 50.0, .partial_ok = false},
      {.id = 2, .deadline = 200.0, .demand = 500.0}};
  DesPlanner planner;
  PlanOutcome out;
  planner.plan_c_dvfs(v, PlanOptions{}, out);
  EXPECT_TRUE(out.cores[0].rigid_discards.empty());
  EXPECT_NEAR(out.cores[0].plan.volume_of(1), 50.0, 1e-6);
}

TEST(DesPlanner, PassedOverPartialJobIsDroppedUnderThePaperModel) {
  // Job 1 already holds its full fair share; the constrained replan
  // grants it nothing, so the paper's model discards it now.
  WorldView v = make_view(0.0, 2.0, 1);
  v.cores[0].jobs = {
      {.id = 1, .deadline = 50.0, .demand = 10.0, .processed = 10.0},
      {.id = 2, .deadline = 100.0, .demand = 100.0}};
  DesPlanner planner;
  PlanOutcome out;
  planner.plan_c_dvfs(v, PlanOptions{}, out);
  ASSERT_EQ(out.cores[0].passed_over.size(), 1u);
  EXPECT_EQ(out.cores[0].passed_over[0], 1u);
  ASSERT_EQ(v.cores[0].jobs.size(), 1u);
  EXPECT_EQ(v.cores[0].jobs[0].id, 2u);
}

TEST(DesPlanner, ResumeAblationKeepsPassedOverJobsAlive) {
  WorldView v = make_view(0.0, 2.0, 1);
  v.cores[0].jobs = {
      {.id = 1, .deadline = 50.0, .demand = 10.0, .processed = 10.0},
      {.id = 2, .deadline = 100.0, .demand = 100.0}};
  DesPlanner planner;
  PlanOutcome out;
  PlanOptions opt;
  opt.resume_passed_jobs = true;
  opt.baseline_mode = true;  // resume requires baseline-aware planning
  planner.plan_c_dvfs(v, opt, out);
  EXPECT_TRUE(out.cores[0].passed_over.empty());
  EXPECT_EQ(v.cores[0].jobs.size(), 2u);
}

TEST(DesPlanner, NoDvfsPinsEveryCoreAtTheEqualShareSpeed) {
  // H = 10 W over 2 cores: 5 W each, i.e. 1 GHz — busy or idle, every
  // core draws the pinned speed's power.
  WorldView v = make_view(0.0, 10.0, 2);
  v.cores[0].jobs = {{.id = 1, .deadline = 100.0, .demand = 50.0}};
  DesPlanner planner;
  PlanOutcome out;
  planner.plan_no_dvfs(v, PlanOptions{}, out);
  EXPECT_NEAR(out.cores[0].idle_power, 5.0, 1e-12);
  EXPECT_NEAR(out.cores[1].idle_power, 5.0, 1e-12);
  ASSERT_EQ(out.cores[0].plan.size(), 1u);
  EXPECT_NEAR(out.cores[0].plan[0].speed, 1.0, 1e-12);
  EXPECT_NEAR(out.cores[0].plan.volume_of(1), 50.0, 1e-9);
  EXPECT_TRUE(out.cores[1].plan.empty());
}

TEST(DesPlanner, SDvfsRunsTheChipAtTheHungriestRequestClamped) {
  // Core 0 requests 5 W (1 GHz), core 1 a trickle; with H/m = 20 W the
  // clamp is inactive, so both cores run at the chip-wide 1 GHz while
  // busy and draw nothing idle.
  WorldView v = make_view(0.0, 40.0, 2);
  v.cores[0].jobs = {{.id = 1, .deadline = 100.0, .demand = 100.0}};
  v.cores[1].jobs = {{.id = 2, .deadline = 100.0, .demand = 10.0}};
  DesPlanner planner;
  PlanOutcome out;
  planner.plan_s_dvfs(v, PlanOptions{}, out);
  for (const CoreOutcome& c : out.cores) {
    EXPECT_EQ(c.idle_power, 0.0);
    ASSERT_EQ(c.plan.size(), 1u);
    EXPECT_NEAR(c.plan[0].speed, 1.0, 1e-9);
  }
  EXPECT_NEAR(out.cores[1].plan.volume_of(2), 10.0, 1e-9);
}

TEST(DesPlanner, DiscreteLevelsQuantizeEverySegment) {
  // Continuous YDS wants 0.6 GHz; with levels {0.5, 1.0} and ample
  // budget the §V-F rectification snaps up to 1.0, and every installed
  // segment must run on a level while preserving volume.
  const DiscreteSpeedSet levels(std::vector<Speed>{0.5, 1.0});
  WorldView v = make_view(0.0, 10.0, 1);
  v.cores[0].jobs = {{.id = 1, .deadline = 100.0, .demand = 60.0}};
  DesPlanner planner;
  PlanOutcome out;
  PlanOptions opt;
  opt.speed_levels = &levels;
  planner.plan_c_dvfs(v, opt, out);
  ASSERT_FALSE(out.cores[0].plan.empty());
  for (const Segment& s : out.cores[0].plan.segments()) {
    EXPECT_TRUE(s.speed == 0.5 || s.speed == 1.0) << s.speed;
  }
  EXPECT_NEAR(out.cores[0].plan.volume_of(1), 60.0, 1e-6);
}

TEST(DesPlanner, WorldViewResetKeepsPerCoreCapacity) {
  WorldView v = make_view(0.0, 10.0, 2);
  for (int k = 0; k < 64; ++k) {
    v.cores[0].jobs.push_back(
        {.id = static_cast<JobId>(k + 1), .deadline = 100.0, .demand = 1.0});
  }
  const std::size_t cap = v.cores[0].jobs.capacity();
  ASSERT_GE(cap, 64u);
  v.reset(5.0, 8.0, 2);
  EXPECT_TRUE(v.cores[0].jobs.empty());
  EXPECT_EQ(v.cores[0].jobs.capacity(), cap);
  EXPECT_EQ(v.now, 5.0);
  EXPECT_EQ(v.power_budget, 8.0);
}

TEST(DesPlanner, PlanOutcomeResetClearsResultsKeepingShape) {
  PlanOutcome out;
  out.reset(3);
  out.cores[1].idle_power = 4.0;
  out.cores[1].rigid_discards.push_back(7);
  out.cores[2].passed_over.push_back(9);
  out.reset(3);
  ASSERT_EQ(out.cores.size(), 3u);
  for (const CoreOutcome& c : out.cores) {
    EXPECT_TRUE(c.plan.empty());
    EXPECT_EQ(c.idle_power, 0.0);
    EXPECT_TRUE(c.rigid_discards.empty());
    EXPECT_TRUE(c.passed_over.empty());
  }
}

}  // namespace
}  // namespace qes::policy
