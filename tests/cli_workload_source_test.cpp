// cli::make_jobs is the single spec-validation gate shared by qes_sim,
// qes_cluster, and qes_scenarios — these tests pin both the error
// surface (exact exception types for malformed specs) and the basic
// shape of every regime's output (sorted releases, dense ids, agreeable
// deadlines, arrivals inside the horizon).
#include "cli/workload_source.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

namespace qes::cli {
namespace {

WorkloadSourceSpec small_spec(const std::string& regime) {
  WorkloadSourceSpec spec;
  spec.regime = regime;
  spec.workload.arrival_rate = 200.0;
  spec.workload.horizon_ms = 2'000.0;
  spec.workload.deadline_ms = 150.0;
  spec.workload.seed = 42;
  spec.diurnal_period_ms = 1'000.0;
  return spec;
}

void expect_well_formed(const std::vector<Job>& jobs, Time horizon_ms,
                        Time deadline_ms) {
  ASSERT_FALSE(jobs.empty());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const Job& j = jobs[i];
    EXPECT_EQ(j.id, static_cast<JobId>(i + 1));
    EXPECT_GE(j.release, 0.0);
    EXPECT_LT(j.release, horizon_ms);
    EXPECT_DOUBLE_EQ(j.deadline, j.release + deadline_ms);
    EXPECT_GT(j.demand, 0.0);
    if (i > 0) EXPECT_GE(j.release, jobs[i - 1].release);
  }
}

TEST(WorkloadSource, EverySyntheticRegimeProducesWellFormedJobs) {
  for (const std::string& regime :
       {"poisson", "uniform", "diurnal", "mmpp", "flash"}) {
    SCOPED_TRACE(regime);
    const WorkloadSourceSpec spec = small_spec(regime);
    const std::vector<Job> jobs = make_jobs(spec);
    expect_well_formed(jobs, spec.workload.horizon_ms,
                       spec.workload.deadline_ms);
  }
}

TEST(WorkloadSource, RegimeListMatchesDispatch) {
  const std::vector<std::string>& regimes = workload_regimes();
  EXPECT_EQ(regimes.size(), 6u);
  EXPECT_NE(std::find(regimes.begin(), regimes.end(), "trace"),
            regimes.end());
}

TEST(WorkloadSource, SameSeedIsDeterministic) {
  const std::vector<Job> a = make_jobs(small_spec("mmpp"));
  const std::vector<Job> b = make_jobs(small_spec("mmpp"));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].release, b[i].release);
    EXPECT_EQ(a[i].demand, b[i].demand);
  }
}

TEST(WorkloadSource, FlashSpikeRaisesArrivalCountInWindow) {
  WorkloadSourceSpec spec = small_spec("flash");
  spec.workload.horizon_ms = 8'000.0;
  spec.flash_factor = 6.0;
  spec.flash_at_ms = 4'000.0;
  spec.flash_len_ms = 2'000.0;
  const std::vector<Job> jobs = make_jobs(spec);
  std::size_t before = 0;
  std::size_t inside = 0;
  for (const Job& j : jobs) {
    if (j.release >= 2'000.0 && j.release < 4'000.0) ++before;
    if (j.release >= 4'000.0 && j.release < 6'000.0) ++inside;
  }
  // Same window length; the spike multiplies the rate by 6.
  EXPECT_GT(inside, 3 * before);
}

TEST(WorkloadSource, UnknownRegimeNamesTheKnownOnes) {
  WorkloadSourceSpec spec = small_spec("poisson");
  spec.regime = "bursty";
  try {
    (void)make_jobs(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bursty"), std::string::npos);
    EXPECT_NE(msg.find("poisson"), std::string::npos);
    EXPECT_NE(msg.find("mmpp"), std::string::npos);
  }
}

TEST(WorkloadSource, NegativeRateRejected) {
  WorkloadSourceSpec spec = small_spec("poisson");
  spec.workload.arrival_rate = -5.0;
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
  spec.workload.arrival_rate = 0.0;
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
}

TEST(WorkloadSource, NonPositiveHorizonAndDeadlineRejected) {
  WorkloadSourceSpec spec = small_spec("uniform");
  spec.workload.horizon_ms = 0.0;
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
  spec = small_spec("uniform");
  spec.workload.deadline_ms = -1.0;
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
}

TEST(WorkloadSource, OutOfRangeFractionsRejected) {
  WorkloadSourceSpec spec = small_spec("poisson");
  spec.workload.partial_fraction = 1.5;
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
  spec = small_spec("poisson");
  spec.workload.premium_fraction = -0.1;
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
}

TEST(WorkloadSource, BadDemandBoundsRejected) {
  WorkloadSourceSpec spec = small_spec("poisson");
  spec.workload.demand_min = 5.0;
  spec.workload.demand_max = 1.0;
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
}

TEST(WorkloadSource, DiurnalAmplitudeMustStayBelowOne) {
  WorkloadSourceSpec spec = small_spec("diurnal");
  spec.diurnal_amplitude = 1.0;  // rate would hit zero exactly
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
  spec.diurnal_amplitude = -0.2;
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
}

TEST(WorkloadSource, MmppDwellAndRateOrderingChecked) {
  WorkloadSourceSpec spec = small_spec("mmpp");
  spec.mmpp_dwell_lo_ms = 0.0;
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
  spec = small_spec("mmpp");
  spec.mmpp_rate_hi = 10.0;  // below the low rate of 200
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
}

TEST(WorkloadSource, FlashSpikeMustStartInsideHorizon) {
  WorkloadSourceSpec spec = small_spec("flash");
  spec.flash_at_ms = spec.workload.horizon_ms + 1.0;
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
  spec = small_spec("flash");
  spec.flash_factor = 0.5;
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
}

TEST(WorkloadSource, TraceRegimeNeedsAPath) {
  WorkloadSourceSpec spec;
  spec.regime = "trace";
  EXPECT_THROW((void)make_jobs(spec), std::invalid_argument);
}

TEST(WorkloadSource, MissingTraceFileIsARuntimeError) {
  WorkloadSourceSpec spec;
  spec.regime = "trace";
  spec.trace_path = "/nonexistent/qes_no_such_trace.csv";
  EXPECT_THROW((void)make_jobs(spec), std::runtime_error);
}

}  // namespace
}  // namespace qes::cli
