// Epoll ingress: lifecycle, binary SUBMIT -> ACK/REPLY round trips, the
// HTTP adapter on the same port, and protocol-violation handling — all
// against a test sink, no runtime server involved.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/ingress.hpp"
#include "net/socket_util.hpp"
#include "obs/registry.hpp"

namespace qes::net {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// Admits everything (or a configured prefix) and records the tokens so
// the test can complete them later.
class RecordingSink : public IngressSink {
 public:
  std::size_t submit_batch(const IngressRequest* reqs,
                           std::size_t count) override {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t admit = std::min(count, admit_limit_);
    for (std::size_t i = 0; i < admit; ++i) requests_.push_back(reqs[i]);
    if (admit_limit_ != SIZE_MAX) {
      admit_limit_ -= admit;  // a budget, not a per-batch cap
    }
    return admit;
  }

  void set_admit_limit(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    admit_limit_ = n;
  }

  std::vector<IngressRequest> take() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<IngressRequest> out = std::move(requests_);
    requests_.clear();
    return out;
  }

  std::size_t seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return requests_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<IngressRequest> requests_;
  std::size_t admit_limit_ = SIZE_MAX;
};

// Polls `cond` until it holds or ~2 s elapse.
template <typename F>
bool eventually(F cond) {
  const steady_clock::time_point deadline =
      steady_clock::now() + milliseconds(2000);
  while (steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(milliseconds(2));
  }
  return cond();
}

// Reads frames off `fd` until `n` frames arrived or the timeout passed.
std::vector<Frame> read_frames(int fd, std::size_t n) {
  std::vector<Frame> out;
  FrameDecoder dec;
  char buf[4096];
  const steady_clock::time_point deadline =
      steady_clock::now() + milliseconds(2000);
  while (out.size() < n && steady_clock::now() < deadline) {
    const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
    if (got <= 0) break;  // SO_RCVTIMEO expired or peer closed
    dec.feed(buf, static_cast<std::size_t>(got));
    Frame f;
    while (dec.next(&f) == FrameDecoder::Result::kFrame) out.push_back(f);
  }
  return out;
}

TEST(NetIngress, StartsOnEphemeralPortAndStops) {
  RecordingSink sink;
  IngressConfig cfg;
  cfg.port = 0;
  cfg.workers = 2;
  Ingress ingress(cfg, &sink);
  EXPECT_FALSE(ingress.running());
  ingress.start();
  EXPECT_TRUE(ingress.running());
  EXPECT_GT(ingress.port(), 0);
  ingress.stop();
  EXPECT_FALSE(ingress.running());
  ingress.stop();  // idempotent
}

TEST(NetIngress, SubmitIsAdmittedAckedAndReplied) {
  RecordingSink sink;
  IngressConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  Ingress ingress(cfg, &sink);
  ingress.start();

  const int fd = connect_loopback(ingress.port());
  SubmitFrame f;
  f.req_id = 42;
  f.demand = 500.0;
  f.deadline_ms = 150.0;
  f.weight = 2.0;
  f.partial_ok = true;
  f.want_ack = true;
  std::string wire;
  encode_submit(f, wire);
  ASSERT_TRUE(send_all(fd, wire));

  ASSERT_TRUE(eventually([&sink] { return sink.seen() == 1; }));
  const std::vector<IngressRequest> reqs = sink.take();
  EXPECT_EQ(reqs[0].submit.req_id, 42u);
  EXPECT_DOUBLE_EQ(reqs[0].submit.demand, 500.0);
  EXPECT_DOUBLE_EQ(reqs[0].submit.weight, 2.0);
  EXPECT_TRUE(reqs[0].submit.partial_ok);

  Completion done;
  done.token = reqs[0].token;
  done.status = ReplyStatus::kSatisfied;
  done.quality = 0.9;
  done.latency_ms = 12.0;
  ingress.complete(done);

  const std::vector<Frame> frames = read_frames(fd, 2);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kAck);
  EXPECT_EQ(frames[0].ack.req_id, 42u);
  EXPECT_TRUE(frames[0].ack.accepted);
  EXPECT_EQ(frames[1].type, FrameType::kReply);
  EXPECT_EQ(frames[1].reply.req_id, 42u);
  EXPECT_EQ(frames[1].reply.status, ReplyStatus::kSatisfied);
  EXPECT_DOUBLE_EQ(frames[1].reply.quality, 0.9);

  ::close(fd);
  ingress.stop();
  EXPECT_EQ(ingress.frames_in_total(), 1u);
  EXPECT_EQ(ingress.replies_total(), 1u);
}

TEST(NetIngress, SinkRejectionShedsOnTheWire) {
  RecordingSink sink;
  sink.set_admit_limit(0);  // everything is shed
  IngressConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  Ingress ingress(cfg, &sink);
  ingress.start();

  const int fd = connect_loopback(ingress.port());
  std::string wire;
  SubmitFrame f;
  f.req_id = 7;
  f.demand = 100.0;
  encode_submit(f, wire);
  ASSERT_TRUE(send_all(fd, wire));

  const std::vector<Frame> frames = read_frames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, FrameType::kReply);
  EXPECT_EQ(frames[0].reply.req_id, 7u);
  EXPECT_EQ(frames[0].reply.status, ReplyStatus::kShed);
  EXPECT_DOUBLE_EQ(frames[0].reply.quality, 0.0);

  ::close(fd);
  ingress.stop();
  EXPECT_EQ(ingress.shed_on_wire_total(), 1u);
  EXPECT_EQ(ingress.replies_total(), 1u);
}

TEST(NetIngress, MalformedFrameClosesTheConnection) {
  RecordingSink sink;
  IngressConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  Ingress ingress(cfg, &sink);
  ingress.start();

  const int fd = connect_loopback(ingress.port());
  // A non-ASCII first byte selects the binary protocol; the length is
  // far beyond kMaxFrameBytes, so the decoder errors and the server
  // hangs up.
  const char garbage[8] = {'\xff', '\xff', '\xff', '\xff',
                           '\x01', '\x00', '\x00', '\x00'};
  ASSERT_TRUE(send_all(fd, garbage, sizeof(garbage)));
  EXPECT_EQ(recv_until_eof(fd), "");  // EOF, no reply
  ::close(fd);
  ingress.stop();
  EXPECT_EQ(sink.seen(), 0u);
}

TEST(NetIngress, InsaneSubmitValuesAreRejectedBeforeTheSink) {
  RecordingSink sink;
  IngressConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  Ingress ingress(cfg, &sink);
  ingress.start();

  const int fd = connect_loopback(ingress.port());
  SubmitFrame f;
  f.req_id = 1;
  f.demand = -5.0;  // would trip RuntimeCore's invariants
  std::string wire;
  encode_submit(f, wire);
  ASSERT_TRUE(send_all(fd, wire));
  EXPECT_EQ(recv_until_eof(fd), "");  // connection dropped
  ::close(fd);
  ingress.stop();
  EXPECT_EQ(sink.seen(), 0u);
}

TEST(NetIngress, HttpHealthzAnswersOnTheSamePort) {
  RecordingSink sink;
  IngressConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  Ingress ingress(cfg, &sink);
  ingress.start();

  const int fd = connect_loopback(ingress.port());
  ASSERT_TRUE(send_all(fd, std::string("GET /healthz HTTP/1.1\r\n"
                                       "Host: 127.0.0.1\r\n\r\n")));
  const std::string resp = recv_until_eof(fd);
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("\"plane\": \"ingress\""), std::string::npos);
  ::close(fd);
  ingress.stop();
}

TEST(NetIngress, HttpPostSubmitGetsTheReplyAsJson) {
  RecordingSink sink;
  IngressConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  Ingress ingress(cfg, &sink);
  ingress.start();

  const int fd = connect_loopback(ingress.port());
  const std::string body = "demand=400&deadline=100&weight=1&partial=1&id=9";
  ASSERT_TRUE(send_all(
      fd, "POST /submit HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: " +
              std::to_string(body.size()) + "\r\n\r\n" + body));

  ASSERT_TRUE(eventually([&sink] { return sink.seen() == 1; }));
  const std::vector<IngressRequest> reqs = sink.take();
  EXPECT_EQ(reqs[0].submit.req_id, 9u);
  EXPECT_DOUBLE_EQ(reqs[0].submit.demand, 400.0);

  Completion done;
  done.token = reqs[0].token;
  done.status = ReplyStatus::kPartial;
  done.quality = 0.5;
  done.latency_ms = 80.0;
  ingress.complete(done);

  const std::string resp = recv_until_eof(fd);
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("\"status\": \"partial\""), std::string::npos);
  EXPECT_NE(resp.find("\"id\": 9"), std::string::npos);
  ::close(fd);
  ingress.stop();
}

TEST(NetIngress, HttpUnknownPathIs404) {
  RecordingSink sink;
  IngressConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  Ingress ingress(cfg, &sink);
  ingress.start();
  const int fd = connect_loopback(ingress.port());
  ASSERT_TRUE(send_all(fd, std::string("POST /nope HTTP/1.1\r\n"
                                       "Content-Length: 0\r\n\r\n")));
  const std::string resp = recv_until_eof(fd);
  EXPECT_NE(resp.find("404 Not Found"), std::string::npos);
  ::close(fd);
  ingress.stop();
}

TEST(NetIngress, StaleTokenAfterDisconnectIsDropped) {
  RecordingSink sink;
  IngressConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  Ingress ingress(cfg, &sink);
  ingress.start();

  const int fd = connect_loopback(ingress.port());
  SubmitFrame f;
  f.req_id = 5;
  f.demand = 100.0;
  std::string wire;
  encode_submit(f, wire);
  ASSERT_TRUE(send_all(fd, wire));
  ASSERT_TRUE(eventually([&sink] { return sink.seen() == 1; }));
  const std::vector<IngressRequest> reqs = sink.take();
  ::close(fd);  // client gone before the job finalizes

  // The worker must notice the close before the completion arrives for
  // the generation check to matter; give it a moment.
  std::this_thread::sleep_for(milliseconds(100));
  Completion done;
  done.token = reqs[0].token;
  done.status = ReplyStatus::kSatisfied;
  ingress.complete(done);  // must not crash or mis-deliver
  std::this_thread::sleep_for(milliseconds(50));
  ingress.stop();
}

TEST(NetIngress, RegistersCountersWhenGivenARegistry) {
  obs::Registry registry;
  RecordingSink sink;
  IngressConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  cfg.registry = &registry;
  cfg.metric_prefix = "test_ingress";
  Ingress ingress(cfg, &sink);
  ingress.start();

  const int fd = connect_loopback(ingress.port());
  SubmitFrame f;
  f.req_id = 1;
  f.demand = 100.0;
  std::string wire;
  encode_submit(f, wire);
  ASSERT_TRUE(send_all(fd, wire));
  ASSERT_TRUE(eventually([&sink] { return sink.seen() == 1; }));
  ::close(fd);
  ingress.stop();

  const std::string prom = registry.to_prometheus();
  EXPECT_NE(prom.find("test_ingress_connections_total"), std::string::npos);
  EXPECT_NE(prom.find("test_ingress_submit_frames_total"), std::string::npos);
  EXPECT_NE(prom.find("test_ingress_admission_batches_total"),
            std::string::npos);
}

}  // namespace
}  // namespace qes::net
