#include "alloc/waterfill.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/prng.hpp"
#include "core/quality.hpp"

namespace qes {
namespace {

TEST(Waterfill, AllSatisfiedWhenCapacityIsAmple) {
  std::vector<Work> caps = {10.0, 20.0, 30.0};
  auto r = waterfill_volumes(caps, 100.0);
  EXPECT_TRUE(r.all_satisfied);
  EXPECT_TRUE(std::isinf(r.level));
  EXPECT_DOUBLE_EQ(r.alloc[0], 10.0);
  EXPECT_DOUBLE_EQ(r.alloc[1], 20.0);
  EXPECT_DOUBLE_EQ(r.alloc[2], 30.0);
  EXPECT_DOUBLE_EQ(r.used, 60.0);
}

TEST(Waterfill, EqualSplitWhenNothingSaturates) {
  std::vector<Work> caps = {100.0, 100.0, 100.0};
  auto r = waterfill_volumes(caps, 90.0);
  EXPECT_FALSE(r.all_satisfied);
  EXPECT_NEAR(r.level, 30.0, 1e-9);
  for (double a : r.alloc) EXPECT_NEAR(a, 30.0, 1e-9);
}

TEST(Waterfill, SmallJobsSaturateFirst) {
  // Paper d-mean example shape: satisfied jobs keep w, deprived share.
  std::vector<Work> caps = {10.0, 100.0, 100.0};
  auto r = waterfill_volumes(caps, 90.0);
  // level L solves 10 + 2L = 90 => L = 40.
  EXPECT_NEAR(r.level, 40.0, 1e-9);
  EXPECT_NEAR(r.alloc[0], 10.0, 1e-9);
  EXPECT_NEAR(r.alloc[1], 40.0, 1e-9);
  EXPECT_NEAR(r.alloc[2], 40.0, 1e-9);
}

TEST(Waterfill, DMeanFormulaHolds) {
  // p~ = (C - sum_{satisfied} w) / |deprived| (paper §III-A).
  std::vector<Work> caps = {5.0, 12.0, 60.0, 80.0};
  const Work C = 50.0;
  auto r = waterfill_volumes(caps, C);
  ASSERT_FALSE(r.all_satisfied);
  double sat_sum = 0.0;
  int deprived = 0;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (caps[i] <= r.level + 1e-9) {
      sat_sum += caps[i];
    } else {
      ++deprived;
    }
  }
  ASSERT_GT(deprived, 0);
  EXPECT_NEAR(r.level, (C - sat_sum) / deprived, 1e-9);
}

TEST(Waterfill, ZeroCapacity) {
  std::vector<Work> caps = {10.0, 20.0};
  auto r = waterfill_volumes(caps, 0.0);
  EXPECT_DOUBLE_EQ(r.alloc[0], 0.0);
  EXPECT_DOUBLE_EQ(r.alloc[1], 0.0);
  EXPECT_DOUBLE_EQ(r.used, 0.0);
}

TEST(Waterfill, EmptyInput) {
  std::vector<Work> caps;
  auto r = waterfill_volumes(caps, 10.0);
  EXPECT_TRUE(r.alloc.empty());
  EXPECT_TRUE(r.all_satisfied);
}

TEST(Waterfill, BaselinesLevelTheField) {
  // Item 0 already received 30 units; capacity should flow to item 1
  // until both reach the same total level.
  std::vector<Work> caps = {100.0, 100.0};
  std::vector<Work> base = {30.0, 0.0};
  auto r = waterfill_volumes(caps, base, 50.0);
  // Level L: fill item 1 from 0 to 30 (uses 30), then both: 2*(L-30)=20
  // => L = 40. Item 0 gets 10, item 1 gets 40.
  EXPECT_NEAR(r.level, 40.0, 1e-9);
  EXPECT_NEAR(r.alloc[0], 10.0, 1e-9);
  EXPECT_NEAR(r.alloc[1], 40.0, 1e-9);
}

TEST(Waterfill, BaselineAboveLevelGetsNothing) {
  std::vector<Work> caps = {100.0, 100.0};
  std::vector<Work> base = {80.0, 0.0};
  auto r = waterfill_volumes(caps, base, 40.0);
  EXPECT_NEAR(r.alloc[0], 0.0, 1e-9);
  EXPECT_NEAR(r.alloc[1], 40.0, 1e-9);
  EXPECT_NEAR(r.level, 40.0, 1e-9);
}

TEST(Waterfill, SaturatedItemIsSkipped) {
  std::vector<Work> caps = {50.0, 100.0};
  std::vector<Work> base = {50.0, 0.0};  // item 0 fully served
  auto r = waterfill_volumes(caps, base, 60.0);
  EXPECT_NEAR(r.alloc[0], 0.0, 1e-9);
  EXPECT_NEAR(r.alloc[1], 60.0, 1e-9);
}

// ---- Property tests -------------------------------------------------------

class WaterfillPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(WaterfillPropertyTest, ConservesCapacityAndRespectsCaps) {
  Xoshiro256 rng(GetParam());
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t n = 1 + rng.uniform_index(20);
    std::vector<Work> caps, base;
    Work remaining_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Work w = rng.uniform(1.0, 200.0);
      const Work b = rng.uniform(0.0, w);
      caps.push_back(w);
      base.push_back(b);
      remaining_total += w - b;
    }
    const Work C = rng.uniform(0.0, remaining_total * 1.5);
    auto r = waterfill_volumes(caps, base, C);
    Work used = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(r.alloc[i], -1e-9);
      EXPECT_LE(base[i] + r.alloc[i], caps[i] + 1e-6);
      used += r.alloc[i];
    }
    EXPECT_NEAR(used, std::min(C, remaining_total), 1e-5);
    EXPECT_NEAR(used, r.used, 1e-6);
  }
}

TEST_P(WaterfillPropertyTest, LevelPropertyHolds) {
  // Every item either reaches its cap or sits exactly at the level
  // (or started above it).
  Xoshiro256 rng(GetParam() ^ 0xABCDEFULL);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t n = 1 + rng.uniform_index(15);
    std::vector<Work> caps, base;
    Work total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const Work w = rng.uniform(1.0, 100.0);
      caps.push_back(w);
      base.push_back(0.0);
      total += w;
    }
    const Work C = rng.uniform(0.1, total * 0.9);
    auto r = waterfill_volumes(caps, base, C);
    if (r.all_satisfied) continue;
    for (std::size_t i = 0; i < n; ++i) {
      const double final_volume = base[i] + r.alloc[i];
      const bool at_cap = std::fabs(final_volume - caps[i]) < 1e-6;
      const bool at_level = std::fabs(final_volume - r.level) < 1e-6;
      EXPECT_TRUE(at_cap || at_level)
          << "item " << i << " volume " << final_volume << " level "
          << r.level << " cap " << caps[i];
    }
  }
}

TEST_P(WaterfillPropertyTest, OptimalForConcaveQuality) {
  // The water-fill allocation must dominate random feasible allocations
  // under every concave quality function.
  Xoshiro256 rng(GetParam() ^ 0x5EEDULL);
  const std::vector<QualityFunction> fs = {
      QualityFunction::exponential(0.003), QualityFunction::exponential(0.01),
      QualityFunction::sqrt(1000.0), QualityFunction::log1p(0.01, 1000.0)};
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 2 + rng.uniform_index(8);
    std::vector<Work> caps;
    Work total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      caps.push_back(rng.uniform(10.0, 300.0));
      total += caps.back();
    }
    const Work C = rng.uniform(total * 0.2, total * 0.8);
    auto r = waterfill_volumes(caps, C);
    for (const auto& f : fs) {
      double opt_q = 0.0;
      for (std::size_t i = 0; i < n; ++i) opt_q += f(r.alloc[i]);
      // Random feasible competitor: random proportions of capacity.
      for (int attempt = 0; attempt < 25; ++attempt) {
        std::vector<double> weight(n);
        double wsum = 0.0;
        for (auto& w : weight) {
          w = rng.uniform(0.01, 1.0);
          wsum += w;
        }
        // Scale to capacity, clamp at caps (may under-use capacity:
        // still feasible).
        double q = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          q += f(std::min(caps[i], C * weight[i] / wsum));
        }
        EXPECT_LE(q, opt_q + 1e-7) << "f=" << f.name();
      }
    }
  }
}

TEST_P(WaterfillPropertyTest, MonotoneInCapacity) {
  Xoshiro256 rng(GetParam() ^ 0xFEEDULL);
  std::vector<Work> caps;
  for (int i = 0; i < 12; ++i) caps.push_back(rng.uniform(5.0, 150.0));
  double prev_used = -1.0;
  double prev_level = -1.0;
  for (double C = 10.0; C <= 1200.0; C += 25.0) {
    auto r = waterfill_volumes(caps, C);
    EXPECT_GE(r.used, prev_used - 1e-9);
    if (!r.all_satisfied) {
      EXPECT_GE(r.level, prev_level - 1e-9);
      prev_level = r.level;
    }
    prev_used = r.used;
  }
}

TEST_P(WaterfillPropertyTest, SumNeverExceedsBudget) {
  // The defining budget property: allocations sum to at most C on every
  // random instance, including with baselines and zero/tiny budgets.
  Xoshiro256 rng(GetParam() ^ 0xB0D6E7ULL);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t n = 1 + rng.uniform_index(20);
    std::vector<Work> caps, base;
    for (std::size_t i = 0; i < n; ++i) {
      const Work w = rng.uniform(0.5, 250.0);
      caps.push_back(w);
      base.push_back(rng.bernoulli(0.5) ? rng.uniform(0.0, w) : 0.0);
    }
    const Work C = rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.0, 800.0);
    auto r = waterfill_volumes(caps, base, C);
    const Work used =
        std::accumulate(r.alloc.begin(), r.alloc.end(), Work{0.0});
    EXPECT_LE(used, C + 1e-6);
    EXPECT_NEAR(used, r.used, 1e-6);
  }
}

TEST_P(WaterfillPropertyTest, PerItemAllocationMonotoneInBudget) {
  // Raising the budget never takes volume away from any single item —
  // stronger than the aggregate monotonicity of `used` above: the DES
  // power distribution relies on it so that a larger H can only speed
  // cores up.
  Xoshiro256 rng(GetParam() ^ 0xCAFEULL);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 1 + rng.uniform_index(12);
    std::vector<Work> caps;
    Work total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      caps.push_back(rng.uniform(5.0, 150.0));
      total += caps.back();
    }
    std::vector<Work> prev(n, 0.0);
    for (double frac = 0.0; frac <= 1.25; frac += 0.05) {
      auto r = waterfill_volumes(caps, total * frac);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_GE(r.alloc[i], prev[i] - 1e-7)
            << "item " << i << " lost volume when C grew to "
            << total * frac;
        prev[i] = r.alloc[i];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaterfillPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace qes
