#include "core/schedule.hpp"

#include <gtest/gtest.h>

namespace qes {
namespace {

TEST(Schedule, PushMergesAdjacentEqualSegments) {
  Schedule s;
  s.push({0.0, 10.0, 1, 2.0});
  s.push({10.0, 20.0, 1, 2.0});
  ASSERT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(s[0].t1, 20.0);
}

TEST(Schedule, PushDropsEmptySegments) {
  Schedule s;
  s.push({5.0, 5.0, 1, 2.0});
  s.push({5.0, 6.0, 1, 0.0});
  EXPECT_TRUE(s.empty());
}

TEST(Schedule, VolumesAndEnergy) {
  Schedule s;
  s.push({0.0, 100.0, 1, 2.0});   // 200 units, 20 W * 0.1 s = 2 J
  s.push({100.0, 150.0, 2, 1.0});  // 50 units, 5 W * 0.05 s = 0.25 J
  auto v = s.volumes();
  EXPECT_DOUBLE_EQ(v[1], 200.0);
  EXPECT_DOUBLE_EQ(v[2], 50.0);
  EXPECT_DOUBLE_EQ(s.volume_of(1), 200.0);
  EXPECT_DOUBLE_EQ(s.volume_of(3), 0.0);
  PowerModel pm = default_power_model();
  EXPECT_NEAR(s.dynamic_energy(pm), 2.25, 1e-12);
}

TEST(Schedule, SpeedAtAndMakespan) {
  Schedule s;
  s.push({0.0, 100.0, 1, 2.0});
  s.push({150.0, 200.0, 2, 1.5});
  EXPECT_DOUBLE_EQ(s.speed_at(50.0), 2.0);
  EXPECT_DOUBLE_EQ(s.speed_at(120.0), 0.0);  // idle gap
  EXPECT_DOUBLE_EQ(s.speed_at(150.0), 1.5);
  EXPECT_DOUBLE_EQ(s.speed_at(200.0), 0.0);  // half-open
  EXPECT_DOUBLE_EQ(s.max_speed(), 2.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 200.0);
}

TEST(Schedule, ConstructorSortsSegments) {
  Schedule s({{100.0, 150.0, 2, 1.0}, {0.0, 50.0, 1, 2.0}});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].job, 1u);
  EXPECT_EQ(s[1].job, 2u);
  s.check_well_formed();
}

TEST(Schedule, OutOfOrderPushDies) {
  Schedule s;
  s.push({100.0, 150.0, 1, 1.0});
  EXPECT_DEATH(s.push({0.0, 50.0, 2, 1.0}), "time order");
}

TEST(Schedule, WindowCheckPasses) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 100.0}};
  Schedule s;
  s.push({10.0, 60.0, 1, 2.0});
  s.check_respects_windows(jobs);  // must not abort
}

TEST(Schedule, WindowCheckCatchesDeadlineOverrun) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 100.0}};
  Schedule s;
  s.push({100.0, 200.0, 1, 2.0});
  EXPECT_DEATH(s.check_respects_windows(jobs), "deadline");
}

TEST(Schedule, WindowCheckCatchesUnknownJob) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 100.0}};
  Schedule s;
  s.push({0.0, 10.0, 99, 1.0});
  EXPECT_DEATH(s.check_respects_windows(jobs), "unknown job");
}

TEST(Segment, VolumeIsSpeedTimesDuration) {
  Segment seg{10.0, 30.0, 1, 2.5};
  EXPECT_DOUBLE_EQ(seg.duration(), 20.0);
  EXPECT_DOUBLE_EQ(seg.volume(), 50.0);
}

}  // namespace
}  // namespace qes
