#include "sched/quality_opt.hpp"

#include <gtest/gtest.h>

#include "core/prng.hpp"
#include "core/quality.hpp"
#include "test_util.hpp"

namespace qes {
namespace {

TEST(QualityOpt, AmpleSpeedSatisfiesEverything) {
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 100.0},
      {.id = 2, .release = 50.0, .deadline = 200.0, .demand = 100.0},
  });
  auto r = quality_opt_schedule(set, 10.0);
  EXPECT_DOUBLE_EQ(r.volumes[0], 100.0);
  EXPECT_DOUBLE_EQ(r.volumes[1], 100.0);
  r.schedule.check_respects_windows(set.jobs());
}

TEST(QualityOpt, OverloadEqualizesDeprivedVolumes) {
  // Two identical jobs, capacity for only one: each gets half (concave
  // quality prefers equal sharing).
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 100.0},
      {.id = 2, .release = 0.0, .deadline = 100.0, .demand = 100.0},
  });
  auto r = quality_opt_schedule(set, 1.0);  // capacity 100
  EXPECT_NEAR(r.volumes[0], 50.0, 1e-9);
  EXPECT_NEAR(r.volumes[1], 50.0, 1e-9);
}

TEST(QualityOpt, SmallJobSatisfiedLargeJobsLevelled) {
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 10.0},
      {.id = 2, .release = 0.0, .deadline = 100.0, .demand = 100.0},
      {.id = 3, .release = 0.0, .deadline = 100.0, .demand = 100.0},
  });
  auto r = quality_opt_schedule(set, 0.9);  // capacity 90
  // Water level: 10 + 2L = 90 => L = 40.
  EXPECT_NEAR(r.volumes[0], 10.0, 1e-9);
  EXPECT_NEAR(r.volumes[1], 40.0, 1e-9);
  EXPECT_NEAR(r.volumes[2], 40.0, 1e-9);
}

TEST(QualityOpt, BusiestIntervalScheduledFirst) {
  // A tight prefix must not be starved by a later, looser job: with the
  // busiest-deprived-interval rule, job 1's tight window is processed
  // before considering job 2's slack.
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 10.0, .demand = 15.0},
      {.id = 2, .release = 0.0, .deadline = 20.0, .demand = 1.0},
  });
  auto r = quality_opt_schedule(set, 1.0);
  // Interval [0,10] d-mean = 10 (job 1 deprived); [0,20] satisfies all
  // (16 <= 20) => infinite; busiest is [0,10]: job1 -> 10, then job2 in
  // the remaining [10,20] => satisfied.
  EXPECT_NEAR(r.volumes[0], 10.0, 1e-9);
  EXPECT_NEAR(r.volumes[1], 1.0, 1e-9);
  r.schedule.check_respects_windows(set.jobs());
}

TEST(QualityOpt, TimetableIsFifoAtFixedSpeed) {
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 60.0},
      {.id = 2, .release = 10.0, .deadline = 110.0, .demand = 30.0},
  });
  auto r = quality_opt_schedule(set, 1.0);
  ASSERT_EQ(r.schedule.size(), 2u);
  EXPECT_EQ(r.schedule[0].job, 1u);
  EXPECT_NEAR(r.schedule[0].t1, 60.0, 1e-9);
  EXPECT_EQ(r.schedule[1].job, 2u);
  EXPECT_NEAR(r.schedule[1].t0, 60.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.schedule[0].speed, 1.0);
}

TEST(QualityOpt, BaselineAwareAllocationYieldsToStarvedJobs) {
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 100.0},
      {.id = 2, .release = 0.0, .deadline = 100.0, .demand = 100.0},
  });
  std::vector<Work> baselines = {40.0, 0.0};
  auto r = quality_opt_schedule(set, 1.0, baselines);  // capacity 100
  // Level: fill job2 to 40 (40 used), then both to L: 2(L-40)=60 => L=70.
  EXPECT_NEAR(r.volumes[0], 30.0, 1e-9);
  EXPECT_NEAR(r.volumes[1], 70.0, 1e-9);
}

TEST(QualityOpt, TotalQualityHelper) {
  auto f = QualityFunction::linear(100.0);
  std::vector<Work> volumes = {50.0, 25.0};
  EXPECT_NEAR(total_quality(volumes, f), 0.75, 1e-12);
}

// ---- Property tests -------------------------------------------------------

class QualityOptPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QualityOptPropertyTest, FeasibleAndWithinDemand) {
  Xoshiro256 rng(GetParam());
  for (int rep = 0; rep < 8; ++rep) {
    auto jobs = (rep % 2 == 0)
                    ? test::random_agreeable_jobs(rng, 30, 600.0)
                    : test::random_agreeable_jobs_varwindow(rng, 30, 600.0);
    AgreeableJobSet set(jobs);
    const Speed s = rng.uniform(0.3, 3.0);
    auto r = quality_opt_schedule(set, s);
    r.schedule.check_well_formed();
    r.schedule.check_respects_windows(set.jobs());
    for (std::size_t k = 0; k < set.size(); ++k) {
      EXPECT_GE(r.volumes[k], -1e-9);
      EXPECT_LE(r.volumes[k], set[k].demand + 1e-6);
      EXPECT_NEAR(r.schedule.volume_of(set[k].id), r.volumes[k], 1e-5);
    }
    EXPECT_LE(r.schedule.max_speed(), s + 1e-9);
  }
}

TEST_P(QualityOptPropertyTest, DominatesGreedyFifoTruncation) {
  // Quality-OPT must achieve at least the quality of plain FIFO with
  // deadline truncation at the same fixed speed, for every concave f.
  Xoshiro256 rng(GetParam() ^ 0xBEEFULL);
  const std::vector<QualityFunction> fs = {
      QualityFunction::exponential(0.003),
      QualityFunction::exponential(0.009), QualityFunction::sqrt(1000.0)};
  for (int rep = 0; rep < 8; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 25, 400.0);
    AgreeableJobSet set(jobs);
    const Speed s = rng.uniform(0.5, 2.0);
    auto r = quality_opt_schedule(set, s);
    auto greedy = test::fifo_constant_speed_volumes(set, s);
    for (const auto& f : fs) {
      EXPECT_GE(total_quality(r.volumes, f) + 1e-7,
                total_quality(greedy, f))
          << "f=" << f.name() << " speed=" << s;
    }
  }
}

TEST_P(QualityOptPropertyTest, MonotoneInSpeed) {
  // More speed never hurts quality.
  Xoshiro256 rng(GetParam() ^ 0xCAFEULL);
  auto f = QualityFunction::exponential(0.003);
  for (int rep = 0; rep < 5; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 20, 300.0);
    AgreeableJobSet set(jobs);
    double prev_q = -1.0;
    for (double s : {0.25, 0.5, 1.0, 2.0, 4.0}) {
      auto r = quality_opt_schedule(set, s);
      const double q = total_quality(r.volumes, f);
      EXPECT_GE(q, prev_q - 1e-7);
      prev_q = q;
    }
  }
}

TEST_P(QualityOptPropertyTest, SatisfiesEverythingAtHighSpeed) {
  Xoshiro256 rng(GetParam() ^ 0xF00DULL);
  auto jobs = test::random_agreeable_jobs(rng, 20, 1000.0, 150.0, 5.0, 50.0);
  AgreeableJobSet set(jobs);
  auto r = quality_opt_schedule(set, 100.0);
  for (std::size_t k = 0; k < set.size(); ++k) {
    EXPECT_NEAR(r.volumes[k], set[k].demand, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QualityOptPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace qes
