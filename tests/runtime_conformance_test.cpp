// Conformance of the qesd runtime core against sim::Engine: the same
// trace driven through both must agree on quality exactly and on energy
// within the acceptance bound (5%); in practice the lockstep replay
// reproduces the engine's arithmetic to floating-point noise.
#include <gtest/gtest.h>

#include <cmath>

#include "runtime/conformance.hpp"
#include "workload/generator.hpp"

namespace qes::runtime {
namespace {

// Tolerances for lockstep agreement (documented in src/runtime/README.md,
// "Conformance tolerances"). The replay shares the engine's per-event
// arithmetic but accumulates energy and clock values through its own
// sequence of additions, so agreement is floating-point-noise level
// rather than bitwise: relative bounds for accumulated quantities,
// absolute bounds (in ms / joules) for values that may legitimately be
// zero. Exact equality is asserted only for integer-valued counts.
constexpr double kRelTol = 1e-9;       // accumulated quality/energy/power
constexpr double kAbsTolMs = 1e-9;     // clock readings and latencies
constexpr double kAbsTolJoules = 1e-9; // energies expected to be zero

RuntimeConfig small_runtime_config() {
  RuntimeConfig rc;
  rc.cores = 8;
  rc.power_budget = 160.0;
  return rc;
}

std::vector<Job> trace(double rate, Time horizon_ms, std::uint64_t seed,
                       double partial_fraction = 1.0) {
  WorkloadConfig wl;
  wl.arrival_rate = rate;
  wl.horizon_ms = horizon_ms;
  wl.partial_fraction = partial_fraction;
  wl.seed = seed;
  return generate_websearch_jobs(wl);
}

void expect_conformant(const ConformanceResult& r) {
  // Acceptance bound: quality equal, energy within 5%.
  EXPECT_LE(r.quality_abs_diff(), 1e-6 * std::max(1.0, r.sim.total_quality));
  EXPECT_LE(r.energy_rel_diff(), 0.05);
  // The replay shares every arithmetic operation with the engine, so the
  // agreement is actually much tighter than the acceptance bound...
  EXPECT_NEAR(r.runtime.total_quality, r.sim.total_quality,
              kRelTol * std::max(1.0, r.sim.total_quality));
  EXPECT_NEAR(r.runtime.dynamic_energy, r.sim.dynamic_energy,
              kRelTol * std::max(1.0, r.sim.dynamic_energy));
  // ...and extends to every decision-derived statistic.
  EXPECT_EQ(r.runtime.jobs_total, r.sim.jobs_total);
  EXPECT_EQ(r.runtime.jobs_satisfied, r.sim.jobs_satisfied);
  EXPECT_EQ(r.runtime.jobs_partial, r.sim.jobs_partial);
  EXPECT_EQ(r.runtime.jobs_zero, r.sim.jobs_zero);
  EXPECT_EQ(r.runtime.replans, r.sim.replans);
  EXPECT_NEAR(r.runtime.end_time, r.sim.end_time, kAbsTolMs);
  EXPECT_NEAR(r.runtime.peak_power, r.sim.peak_power,
              kRelTol * std::max(1.0, r.sim.peak_power));
  EXPECT_NEAR(r.runtime.p95_latency, r.sim.p95_latency, kAbsTolMs);
}

TEST(Conformance, DeterministicModerateLoad) {
  const ConformanceResult r =
      run_conformance(small_runtime_config(), trace(150.0, 3'000.0, 7));
  ASSERT_GT(r.sim.jobs_total, 100u);
  EXPECT_GT(r.sim.total_quality, 0.0);
  expect_conformant(r);
}

TEST(Conformance, OverloadWithRigidJobs) {
  RuntimeConfig rc;
  rc.cores = 4;
  rc.power_budget = 60.0;  // scarce power forces WF + rigid discards
  const ConformanceResult r =
      run_conformance(rc, trace(300.0, 2'000.0, 11, /*partial_fraction=*/0.6));
  ASSERT_GT(r.sim.jobs_total, 100u);
  expect_conformant(r);
}

TEST(Conformance, AggressiveTriggers) {
  RuntimeConfig rc = small_runtime_config();
  rc.quantum_ms = 100.0;
  rc.counter_trigger = 3;
  const ConformanceResult r = run_conformance(rc, trace(200.0, 2'000.0, 5));
  EXPECT_GT(r.sim.replans, 10u);
  expect_conformant(r);
}

TEST(Conformance, SpeedCappedCores) {
  RuntimeConfig rc = small_runtime_config();
  rc.max_core_speed = 1.5;
  const ConformanceResult r = run_conformance(rc, trace(150.0, 2'000.0, 9));
  expect_conformant(r);
}

TEST(Conformance, EmptyTrace) {
  const ConformanceResult r = run_conformance(small_runtime_config(), {});
  EXPECT_EQ(r.sim.jobs_total, 0u);
  EXPECT_EQ(r.runtime.jobs_total, 0u);
  EXPECT_NEAR(r.runtime.total_quality, 0.0, kRelTol);
  EXPECT_NEAR(r.runtime.dynamic_energy, 0.0, kAbsTolJoules);
}

TEST(Conformance, SingleJob) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 300.0}};
  const ConformanceResult r = run_conformance(small_runtime_config(), jobs);
  EXPECT_EQ(r.sim.jobs_total, 1u);
  EXPECT_EQ(r.sim.jobs_satisfied, 1u);
  expect_conformant(r);
}

TEST(Lockstep, FinishRequiresAllFinalized) {
  // finish() before the last deadline would under-account idle energy;
  // the lockstep driver always runs to the final deadline, so stats
  // cover the full [0, d_n] window.
  const std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 50.0},
      {.id = 2, .release = 40.0, .deadline = 140.0, .demand = 50.0}};
  const RunStats s = run_lockstep(small_runtime_config(), jobs);
  EXPECT_EQ(s.jobs_total, 2u);
  EXPECT_NEAR(s.end_time, 140.0, kAbsTolMs);
}

}  // namespace
}  // namespace qes::runtime
