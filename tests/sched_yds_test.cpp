#include "sched/yds.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/prng.hpp"
#include "test_util.hpp"

namespace qes {
namespace {

PowerModel pm = default_power_model();

TEST(Yds, SingleJobRunsAtAverageSpeed) {
  AgreeableJobSet set({{.id = 1, .release = 0.0, .deadline = 100.0,
                        .demand = 150.0}});
  auto r = yds_schedule(set);
  // Slowest feasible speed: 150 units / 100 ms = 1.5 GHz.
  EXPECT_NEAR(r.speeds[0], 1.5, 1e-9);
  EXPECT_NEAR(r.critical_speed, 1.5, 1e-9);
  ASSERT_EQ(r.schedule.size(), 1u);
  EXPECT_NEAR(r.schedule[0].t1, 100.0, 1e-9);
}

TEST(Yds, TwoDisjointJobsGetIndividualSpeeds) {
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 200.0},
      {.id = 2, .release = 500.0, .deadline = 600.0, .demand = 50.0},
  });
  auto r = yds_schedule(set);
  EXPECT_NEAR(r.speeds[0], 2.0, 1e-9);
  EXPECT_NEAR(r.speeds[1], 0.5, 1e-9);
}

TEST(Yds, CriticalIntervalSharedByTwoJobs) {
  // Both jobs in [0, 100]: critical speed = (100+100)/100 = 2.
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 100.0},
      {.id = 2, .release = 0.0, .deadline = 100.0, .demand = 100.0},
  });
  auto r = yds_schedule(set);
  EXPECT_NEAR(r.speeds[0], 2.0, 1e-9);
  EXPECT_NEAR(r.speeds[1], 2.0, 1e-9);
}

TEST(Yds, PaperStyleStaircase) {
  // A dense burst followed by a sparse tail: the burst forms the first
  // critical interval at high speed, the tail runs slower.
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 300.0},
      {.id = 2, .release = 0.0, .deadline = 100.0, .demand = 100.0},
      {.id = 3, .release = 100.0, .deadline = 500.0, .demand = 100.0},
  });
  auto r = yds_schedule(set);
  EXPECT_NEAR(r.speeds[0], 4.0, 1e-9);
  EXPECT_NEAR(r.speeds[1], 4.0, 1e-9);
  EXPECT_NEAR(r.speeds[2], 0.25, 1e-9);
  EXPECT_NEAR(r.critical_speed, 4.0, 1e-9);
}

TEST(Yds, CompressionAdjustsOverlappingJob) {
  // Job 2's window overlaps the critical interval of job 1; after
  // removing [0,100] it has only (100, 200] left: speed 100/100 = 1.
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 300.0},
      {.id = 2, .release = 50.0, .deadline = 200.0, .demand = 100.0},
  });
  auto r = yds_schedule(set);
  EXPECT_NEAR(r.speeds[0], 3.0, 1e-9);
  EXPECT_NEAR(r.speeds[1], 1.0, 1e-9);
  r.schedule.check_well_formed();
  r.schedule.check_respects_windows(set.jobs());
}

TEST(Yds, ZeroDemandJobsSkipped) {
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 0.0},
      {.id = 2, .release = 0.0, .deadline = 100.0, .demand = 100.0},
  });
  auto r = yds_schedule(set);
  EXPECT_DOUBLE_EQ(r.speeds[0], 0.0);
  EXPECT_NEAR(r.speeds[1], 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.schedule.volume_of(1), 0.0);
}

TEST(Yds, EmptySet) {
  AgreeableJobSet set;
  auto r = yds_schedule(set);
  EXPECT_TRUE(r.schedule.empty());
  EXPECT_DOUBLE_EQ(r.critical_speed, 0.0);
}

TEST(Yds, EnergyAccountingMatchesSchedule) {
  Xoshiro256 rng(99);
  auto jobs = test::random_agreeable_jobs(rng, 25);
  AgreeableJobSet set(jobs);
  auto r = yds_schedule(set);
  EXPECT_NEAR(yds_energy(set, r, pm), r.schedule.dynamic_energy(pm), 1e-6);
}

TEST(YdsCapped, PassesThroughWhenFeasible) {
  AgreeableJobSet set({{.id = 1, .release = 0.0, .deadline = 100.0,
                        .demand = 150.0}});
  const auto r = yds_schedule_capped(set, 2.0);
  EXPECT_NEAR(r.critical_speed, 1.5, 1e-12);
  EXPECT_NEAR(r.schedule.volume_of(1), 150.0, 1e-9);
}

TEST(YdsCapped, AbsorbsFloatDriftByRescaling) {
  // Demand sized to need the cap exactly, plus drift amplified by a tiny
  // window — the regression that crashed fig04 at full scale: a replan
  // microseconds before a deadline.
  const Speed cap = 2.0;
  AgreeableJobSet set({{.id = 1, .release = 0.0, .deadline = 0.01,
                        .demand = 0.02 + 1e-9}});
  const auto r = yds_schedule_capped(set, cap);
  EXPECT_LE(r.critical_speed, cap);
  EXPECT_NEAR(r.schedule.volume_of(1), 0.02, 1e-6);
  r.schedule.check_respects_windows(set.jobs());
}

TEST(YdsCapped, GenuineInfeasibilityDies) {
  AgreeableJobSet set({{.id = 1, .release = 0.0, .deadline = 100.0,
                        .demand = 400.0}});  // needs 4 GHz, cap 2 GHz
  EXPECT_DEATH((void)yds_schedule_capped(set, 2.0),
               "floating-point drift");
}

// ---- Property tests -------------------------------------------------------

class YdsPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(YdsPropertyTest, CompletesEveryJobOnTime) {
  Xoshiro256 rng(GetParam());
  for (int rep = 0; rep < 10; ++rep) {
    auto jobs = (rep % 2 == 0)
                    ? test::random_agreeable_jobs(rng, 40)
                    : test::random_agreeable_jobs_varwindow(rng, 40);
    AgreeableJobSet set(jobs);
    auto r = yds_schedule(set);
    r.schedule.check_well_formed();
    r.schedule.check_respects_windows(set.jobs());
    for (std::size_t k = 0; k < set.size(); ++k) {
      EXPECT_NEAR(r.schedule.volume_of(set[k].id), set[k].demand, 1e-5);
    }
  }
}

TEST_P(YdsPropertyTest, CriticalSpeedsAreNonIncreasingOverSchedule) {
  // With equal releases, YDS speeds must be non-increasing over time
  // (the paper relies on this for P_i(t') <= P_i(t) in DES step 2).
  Xoshiro256 rng(GetParam() ^ 0x77ULL);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 2 + rng.uniform_index(20);
    std::vector<Job> jobs;
    for (std::size_t k = 0; k < n; ++k) {
      jobs.push_back({.id = k + 1,
                      .release = 0.0,
                      .deadline = rng.uniform(50.0, 500.0),
                      .demand = rng.uniform(10.0, 300.0)});
    }
    AgreeableJobSet set(jobs);
    auto r = yds_schedule(set);
    Speed prev = std::numeric_limits<double>::infinity();
    for (const Segment& s : r.schedule.segments()) {
      EXPECT_LE(s.speed, prev + 1e-9);
      prev = s.speed;
    }
  }
}

TEST_P(YdsPropertyTest, BeatsConstantSpeedSchedules) {
  // YDS energy must not exceed the energy of the cheapest feasible
  // constant-speed EDF schedule.
  Xoshiro256 rng(GetParam() ^ 0x1234ULL);
  for (int rep = 0; rep < 10; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 15, 400.0, 150.0);
    AgreeableJobSet set(jobs);
    auto r = yds_schedule(set);
    const Joules yds_e = yds_energy(set, r, pm);
    // Constant speed must be at least the critical speed to be feasible.
    for (double mult : {1.0, 1.2, 1.5, 2.0}) {
      const Speed s = r.critical_speed * mult;
      // Feasible constant-speed energy: each job takes w/s at power a s^b.
      Joules const_e = 0.0;
      for (std::size_t k = 0; k < set.size(); ++k) {
        const_e += pm.dynamic_energy(s, set[k].demand / s);
      }
      EXPECT_LE(yds_e, const_e + 1e-6);
    }
  }
}

TEST_P(YdsPropertyTest, LocalSpeedPerturbationNeverHelps) {
  // First-order optimality: moving volume between two jobs' speed
  // assignments while preserving feasibility cannot reduce energy.
  // We check the weaker but fully general property that uniformly
  // scaling all speeds up increases energy.
  Xoshiro256 rng(GetParam() ^ 0x9999ULL);
  auto jobs = test::random_agreeable_jobs(rng, 20);
  AgreeableJobSet set(jobs);
  auto r = yds_schedule(set);
  const Joules base = yds_energy(set, r, pm);
  for (double mult : {1.05, 1.25, 2.0}) {
    Joules e = 0.0;
    for (std::size_t k = 0; k < set.size(); ++k) {
      const Speed s = r.speeds[k] * mult;
      e += pm.dynamic_energy(s, set[k].demand / s);
    }
    EXPECT_GT(e, base);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, YdsPropertyTest,
                         ::testing::Values(101u, 102u, 103u, 104u, 105u));

}  // namespace
}  // namespace qes
