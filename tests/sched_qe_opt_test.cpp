#include "sched/qe_opt.hpp"

#include <gtest/gtest.h>

#include "core/prng.hpp"
#include "core/quality.hpp"
#include "sched/quality_opt.hpp"
#include "test_util.hpp"

namespace qes {
namespace {

PowerModel pm = default_power_model();

TEST(QeOpt, LightLoadSlowsDownToSave) {
  // One small job with a large window: quality step grants full volume,
  // energy step stretches it across the window.
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 200.0, .demand = 100.0}});
  auto r = qe_opt_schedule(set, 2.0);
  EXPECT_DOUBLE_EQ(r.volumes[0], 100.0);
  ASSERT_EQ(r.schedule.size(), 1u);
  EXPECT_NEAR(r.schedule[0].speed, 0.5, 1e-9);  // 100 units / 200 ms
  EXPECT_NEAR(r.schedule[0].t1, 200.0, 1e-9);
}

TEST(QeOpt, OverloadRunsFlatOutAtMaxSpeed) {
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 500.0}});
  auto r = qe_opt_schedule(set, 2.0);
  EXPECT_NEAR(r.volumes[0], 200.0, 1e-9);  // capacity-bound
  ASSERT_EQ(r.schedule.size(), 1u);
  EXPECT_NEAR(r.schedule[0].speed, 2.0, 1e-9);
}

TEST(QeOpt, QualityEqualsQualityOptQuality) {
  Xoshiro256 rng(7);
  auto f = QualityFunction::exponential(0.003);
  for (int rep = 0; rep < 10; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 20, 500.0);
    AgreeableJobSet set(jobs);
    const Speed s = rng.uniform(0.5, 2.5);
    auto qe = qe_opt_schedule(set, s);
    auto q = quality_opt_schedule(set, s);
    EXPECT_NEAR(total_quality(qe.volumes, f), total_quality(q.volumes, f),
                1e-9);
  }
}

TEST(QeOpt, EnergyNeverExceedsFixedSpeedQualityOpt) {
  // QE-OPT executes the same volumes as Quality-OPT; running them via
  // YDS must cost no more energy than the fixed-max-speed timetable.
  Xoshiro256 rng(21);
  for (int rep = 0; rep < 10; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 20, 500.0);
    AgreeableJobSet set(jobs);
    const Speed s = rng.uniform(0.5, 2.5);
    auto qe = qe_opt_schedule(set, s);
    auto q = quality_opt_schedule(set, s);
    EXPECT_LE(qe.schedule.dynamic_energy(pm),
              q.schedule.dynamic_energy(pm) + 1e-6);
  }
}

TEST(QeOpt, Theorem1SpeedNeverExceedsBudgetSpeed) {
  Xoshiro256 rng(33);
  for (int rep = 0; rep < 20; ++rep) {
    auto jobs = test::random_agreeable_jobs_varwindow(rng, 25, 600.0);
    AgreeableJobSet set(jobs);
    const Speed s = rng.uniform(0.3, 3.0);
    auto qe = qe_opt_schedule(set, s);
    EXPECT_LE(qe.schedule.max_speed(), s + 1e-6);
    qe.schedule.check_well_formed();
    qe.schedule.check_respects_windows(set.jobs());
  }
}

TEST(QeOpt, ExecutedVolumesMatchGrantedVolumes) {
  Xoshiro256 rng(44);
  auto jobs = test::random_agreeable_jobs(rng, 15, 300.0);
  AgreeableJobSet set(jobs);
  auto qe = qe_opt_schedule(set, 1.5);
  for (std::size_t k = 0; k < set.size(); ++k) {
    EXPECT_NEAR(qe.schedule.volume_of(set[k].id), qe.volumes[k], 1e-5);
  }
}

// Lexicographic dominance sanity check: among a family of "run everything
// at constant speed sigma, truncate at deadlines" schedules, none may
// (a) beat QE-OPT's quality, or (b) match its quality with less energy.
class QeOptDominanceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QeOptDominanceTest, LexicographicallyDominatesConstantSpeedFamily) {
  Xoshiro256 rng(GetParam());
  auto f = QualityFunction::exponential(0.003);
  const Speed s_max = 2.0;
  for (int rep = 0; rep < 6; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 18, 400.0);
    AgreeableJobSet set(jobs);
    auto qe = qe_opt_schedule(set, s_max);
    const double q_opt = total_quality(qe.volumes, f);
    const Joules e_opt = qe.schedule.dynamic_energy(pm);
    for (double sigma : {0.5, 1.0, 1.5, 2.0}) {
      auto vols = test::fifo_constant_speed_volumes(set, sigma);
      const double q = total_quality(vols, f);
      Joules e = 0.0;
      for (Work v : vols) e += pm.dynamic_energy(sigma, v / sigma);
      EXPECT_LE(q, q_opt + 1e-7);
      if (q > q_opt - 1e-7) {
        EXPECT_GE(e, e_opt - 1e-6)
            << "constant speed " << sigma
            << " matched quality with less energy";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QeOptDominanceTest,
                         ::testing::Values(201u, 202u, 203u));

}  // namespace
}  // namespace qes
