#include <gtest/gtest.h>

#include "alloc/waterfill.hpp"
#include "core/prng.hpp"
#include "multicore/des_scheduler.hpp"
#include "sim/engine.hpp"
#include "vod/session.hpp"
#include "vod/allocate.hpp"
#include "vod/video.hpp"

namespace qes::vod {
namespace {

TEST(VideoModel, LayerStructure) {
  LayeredVideoModel m;
  ASSERT_EQ(m.layers().size(), 5u);
  Work total = 0.0;
  double utility = 0.0;
  for (const Layer& l : m.layers()) {
    EXPECT_GT(l.work, 0.0);
    EXPECT_GT(l.utility, 0.0);
    total += l.work;
    utility += l.utility;
  }
  EXPECT_NEAR(total, 192.0, 1e-9);
  EXPECT_NEAR(utility, 1.0, 1e-9);
}

TEST(VideoModel, UtilityDensityDecreases) {
  // The R-D curve guarantees diminishing utility per unit work — the
  // property that makes the envelope concave.
  LayeredVideoModel m;
  double prev = std::numeric_limits<double>::infinity();
  for (const Layer& l : m.layers()) {
    const double density = l.utility / l.work;
    EXPECT_LE(density, prev + 1e-12);
    prev = density;
  }
}

TEST(VideoModel, StaircaseStepsAtLayerBoundaries) {
  LayeredVideoModel m;
  const Work w1 = m.layers()[0].work;
  EXPECT_DOUBLE_EQ(m.staircase_utility(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.staircase_utility(w1 * 0.99), 0.0);  // partial layer
  EXPECT_NEAR(m.staircase_utility(w1), m.layers()[0].utility, 1e-12);
  EXPECT_NEAR(m.staircase_utility(m.total_work()), 1.0, 1e-12);
  EXPECT_NEAR(m.staircase_utility(m.total_work() + 50.0), 1.0, 1e-12);
}

TEST(VideoModel, EnvelopeDominatesStaircase) {
  LayeredVideoModel m;
  for (Work v = 0.0; v <= m.total_work(); v += 3.7) {
    EXPECT_GE(m.envelope_utility(v) + 1e-12, m.staircase_utility(v));
    EXPECT_GE(m.envelope_utility(v), 0.0);
    EXPECT_LE(m.envelope_utility(v), 1.0 + 1e-12);
  }
  // They agree exactly at layer boundaries.
  Work cum = 0.0;
  for (const Layer& l : m.layers()) {
    cum += l.work;
    EXPECT_NEAR(m.envelope_utility(cum), m.staircase_utility(cum), 1e-9);
  }
}

TEST(VideoModel, EnvelopeIsConcaveAndMonotone) {
  LayeredVideoModel m;
  EXPECT_TRUE(m.envelope_function().check_shape(m.total_work()));
}

TEST(VideoModel, RoundToLayer) {
  LayeredVideoModel m;
  const Work w1 = m.layers()[0].work;
  const Work w2 = w1 + m.layers()[1].work;
  EXPECT_DOUBLE_EQ(m.round_to_layer(w1 * 0.5), 0.0);
  EXPECT_DOUBLE_EQ(m.round_to_layer(w1), w1);
  EXPECT_DOUBLE_EQ(m.round_to_layer((w1 + w2) / 2.0), w1);
  EXPECT_DOUBLE_EQ(m.round_to_layer(1e9), m.total_work());
}

TEST(LayerAware, AllocatesWholeLayersOnly) {
  LayeredVideoModel m;
  std::vector<double> cx = {1.0, 1.0, 2.0};
  const auto r = layer_aware_allocate(m, cx, 250.0);
  for (std::size_t j = 0; j < cx.size(); ++j) {
    // Every allocation sits exactly on a (scaled) layer boundary.
    const Work scaled = r.alloc[j] / cx[j];
    EXPECT_NEAR(m.round_to_layer(scaled), scaled, 1e-9);
  }
  EXPECT_LE(r.used, 250.0 + 1e-9);
  EXPECT_GT(r.total_utility, 0.0);
}

TEST(LayerAware, BeatsWaterfillUnderStaircaseScoring) {
  // The point of the extension: same capacity, higher truthful quality
  // than smooth equal-sharing scored on the staircase.
  LayeredVideoModel m;
  Xoshiro256 rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 2 + rng.uniform_index(8);
    std::vector<double> cx;
    Work total = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      cx.push_back(rng.uniform(0.6, 2.2));
      total += cx.back() * m.total_work();
    }
    const Work C = rng.uniform(total * 0.2, total * 0.8);
    const auto smart = layer_aware_allocate(m, cx, C);
    // Smooth equal sharing (the paper's allocator), scored truthfully.
    std::vector<Work> caps;
    for (double c : cx) caps.push_back(c * m.total_work());
    const auto smooth = waterfill_volumes(caps, C);
    double smooth_utility = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      smooth_utility += m.staircase_utility(smooth.alloc[j] / cx[j]);
    }
    EXPECT_GE(smart.total_utility, smooth_utility - 1e-9);
  }
}

TEST(LayerAware, NearOptimalVersusBruteForce) {
  // Exact optimum by enumerating layer prefixes per job (tiny cases).
  LayeredVideoModel m({.layers = 3, .total_work_units = 90.0});
  Xoshiro256 rng(9);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 2 + rng.uniform_index(2);  // 2..3 jobs
    std::vector<double> cx;
    for (std::size_t j = 0; j < n; ++j) cx.push_back(rng.uniform(0.6, 2.0));
    const Work C = rng.uniform(40.0, 200.0);
    const auto greedy = layer_aware_allocate(m, cx, C);
    // Enumerate all prefix combinations (4^n).
    double best = 0.0;
    const std::size_t L = m.layers().size();
    std::vector<std::size_t> pick(n, 0);
    for (;;) {
      Work used = 0.0;
      double utility = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        Work w = 0.0;
        double u = 0.0;
        for (std::size_t l = 0; l < pick[j]; ++l) {
          w += cx[j] * m.layers()[l].work;
          u += m.layers()[l].utility;
        }
        used += w;
        utility += u;
      }
      if (used <= C + 1e-9) best = std::max(best, utility);
      std::size_t j = 0;
      while (j < n && ++pick[j] > L) {
        pick[j] = 0;
        ++j;
      }
      if (j == n) break;
    }
    // Greedy is within one layer's utility of the fractional optimum.
    double max_layer_u = 0.0;
    for (const Layer& l : m.layers()) {
      max_layer_u = std::max(max_layer_u, l.utility);
    }
    EXPECT_GE(greedy.total_utility, best - max_layer_u - 1e-9);
    EXPECT_LE(greedy.total_utility, best + 1e-9);
  }
}

TEST(Sessions, GeneratorProducesSchedulableTrace) {
  LayeredVideoModel m;
  SessionWorkloadConfig cfg;
  cfg.session_rate = 5.0;
  cfg.horizon_ms = 20'000.0;
  const auto wl = generate_sessions(m, cfg);
  ASSERT_GT(wl.sessions, 50u);
  ASSERT_GT(wl.jobs.size(), wl.sessions);  // multiple chunks per session
  EXPECT_TRUE(deadlines_agreeable(wl.jobs));
  ASSERT_EQ(wl.complexity.size(), wl.jobs.size());
  for (std::size_t k = 0; k < wl.jobs.size(); ++k) {
    EXPECT_EQ(wl.jobs[k].id, k + 1);
    EXPECT_NEAR(wl.jobs[k].demand,
                wl.complexity[k] * m.total_work(), 1e-9);
    EXPECT_GE(wl.complexity[k], 0.6);
    EXPECT_LE(wl.complexity[k], 2.2);
  }
}

TEST(Sessions, ScaledQualityBoundsAndFullService) {
  LayeredVideoModel m;
  SessionWorkloadConfig cfg;
  cfg.session_rate = 2.0;
  cfg.horizon_ms = 5'000.0;
  const auto wl = generate_sessions(m, cfg);
  ASSERT_FALSE(wl.jobs.empty());
  // Full service => quality 1 under both curves.
  std::vector<Work> full;
  for (const Job& j : wl.jobs) full.push_back(j.demand);
  EXPECT_NEAR(scaled_quality(m, wl, full, true), 1.0, 1e-9);
  EXPECT_NEAR(scaled_quality(m, wl, full, false), 1.0, 1e-9);
  // Half service: staircase <= envelope.
  std::vector<Work> half;
  for (const Job& j : wl.jobs) half.push_back(j.demand / 2.0);
  const double stair = scaled_quality(m, wl, half, true);
  const double env = scaled_quality(m, wl, half, false);
  EXPECT_LE(stair, env + 1e-12);
  EXPECT_GT(stair, 0.0);
}

TEST(Sessions, EndToEndSimulationRuns) {
  LayeredVideoModel m;
  SessionWorkloadConfig cfg;
  cfg.session_rate = 8.0;
  cfg.horizon_ms = 10'000.0;
  const auto wl = generate_sessions(m, cfg);
  EngineConfig ecfg;
  ecfg.quality = m.envelope_function();
  ecfg.record_execution = false;
  Engine engine(ecfg, wl.jobs, make_des_policy());
  const RunResult run = engine.run();
  std::vector<Work> processed;
  for (const JobState& st : run.jobs) processed.push_back(st.processed);
  const double stair = scaled_quality(m, wl, processed, true);
  const double env = scaled_quality(m, wl, processed, false);
  EXPECT_LE(stair, env + 1e-12);
  EXPECT_GT(env, 0.5);
  EXPECT_LE(env, 1.0 + 1e-9);
}

}  // namespace
}  // namespace qes::vod
