// Phase profiler: RAII scopes record into {phase="..."}-labeled
// histograms, the disabled path is inert, and both execution stacks
// emit their replan-phase timings into the one unified family
// qes_replan_phase_ms, distinguished by the {plane="..."} base label.
#include <gtest/gtest.h>

#include <chrono>
#include <optional>

#include "multicore/des_scheduler.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/registry.hpp"
#include "runtime/server.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace qes {
namespace {

TEST(PhaseProfiler, ScopeRecordsElapsedMsIntoLabeledHistogram) {
  obs::Registry reg;
  obs::PhaseProfiler profiler(&reg, "test_phase_ms", "phase timings");
  EXPECT_TRUE(profiler.enabled());
  {
    auto timer = profiler.phase("crr");
    (void)timer;
  }
  {
    auto timer = profiler.phase("crr");
    (void)timer;
  }
  {
    auto timer = profiler.phase("wf");
    (void)timer;
  }
  const obs::Histogram* crr =
      reg.find_histogram("test_phase_ms", {{"phase", "crr"}});
  ASSERT_NE(crr, nullptr);
  EXPECT_EQ(crr->count(), 2u);
  EXPECT_GE(crr->sum(), 0.0);
  const obs::Histogram* wf =
      reg.find_histogram("test_phase_ms", {{"phase", "wf"}});
  ASSERT_NE(wf, nullptr);
  EXPECT_EQ(wf->count(), 1u);
}

TEST(PhaseProfiler, SequentialPhasesViaOptionalEmplace) {
  obs::Registry reg;
  obs::PhaseProfiler profiler(&reg, "test_phase_ms", "");
  std::optional<obs::PhaseProfiler::Scope> timer;
  timer.emplace(profiler.phase_histogram("a"));
  // emplace destroys the engaged scope first: "a" closes before "b"
  // opens, so the two phases never overlap.
  timer.emplace(profiler.phase_histogram("b"));
  timer.reset();
  EXPECT_EQ(reg.find_histogram("test_phase_ms", {{"phase", "a"}})->count(), 1u);
  EXPECT_EQ(reg.find_histogram("test_phase_ms", {{"phase", "b"}})->count(), 1u);
}

TEST(PhaseProfiler, DisabledProfilerIsInert) {
  obs::PhaseProfiler profiler(nullptr, "test_phase_ms", "");
  EXPECT_FALSE(profiler.enabled());
  EXPECT_EQ(profiler.phase_histogram("crr"), nullptr);
  {
    auto timer = profiler.phase("crr");  // must not crash or allocate
    (void)timer;
  }
}

TEST(PhaseProfiler, SimEngineEmitsReplanPhaseTimings) {
  obs::Registry reg;
  EngineConfig cfg;
  cfg.cores = 4;
  cfg.power_budget = 80.0;
  cfg.record_execution = false;
  cfg.registry = &reg;
  WorkloadConfig wl;
  wl.arrival_rate = 120.0;
  wl.horizon_ms = 2000.0;
  wl.seed = 5;
  Engine engine(cfg, generate_websearch_jobs(wl), make_des_policy());
  (void)engine.run();

  for (const char* phase : {"crr", "yds", "wf", "online_qe"}) {
    const obs::Histogram* h = reg.find_histogram(
        "qes_replan_phase_ms", {{"plane", "sim"}, {"phase", phase}});
    ASSERT_NE(h, nullptr) << phase;
    EXPECT_GT(h->count(), 0u) << phase;
  }
}

TEST(PhaseProfiler, BaseLabelsPrefixEveryPhaseHistogram) {
  obs::Registry reg;
  obs::PhaseProfiler profiler(&reg, "test_phase_ms", "",
                              {{"plane", "test"}});
  {
    auto timer = profiler.phase("crr");
    (void)timer;
  }
  // Labeled under base + phase; the bare phase label set must not exist.
  EXPECT_NE(reg.find_histogram("test_phase_ms",
                               {{"plane", "test"}, {"phase", "crr"}}),
            nullptr);
  EXPECT_EQ(reg.find_histogram("test_phase_ms", {{"phase", "crr"}}), nullptr);
}

TEST(PhaseProfiler, RuntimeCoreEmitsReplanPhaseTimings) {
  runtime::ServerConfig sc;
  sc.model.cores = 8;
  // A budget the load actually exceeds: one job needs ~1 GHz (demand 150
  // over a 150 ms deadline) = 5 W under the default a*s^2 model, so the
  // budget-free request tops 4 W at the first replan and the WF + bounded
  // Online-QE phases run (an ample budget takes the install fast path and
  // never touches them).
  sc.model.power_budget = 4.0;
  sc.time_scale = 8.0;
  sc.deadline_ms = 150.0;
  runtime::Server server(sc);
  server.start();
  for (int i = 0; i < 30; ++i) {
    (void)server.submit(runtime::Request{.demand = 150.0},
                        std::chrono::milliseconds(50));
  }
  (void)server.drain_and_stop();

  for (const char* phase : {"crr", "yds", "wf", "online_qe"}) {
    const obs::Histogram* h = server.registry().find_histogram(
        "qes_replan_phase_ms", {{"plane", "runtime"}, {"phase", phase}});
    ASSERT_NE(h, nullptr) << phase;
    EXPECT_GT(h->count(), 0u) << phase;
  }
}

}  // namespace
}  // namespace qes
