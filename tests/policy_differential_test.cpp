// Differential proof for the one-kernel refactor: identical WorldViews
// fed through independently constructed DesPlanner instances — with and
// without a metrics registry attached, across the plane labels the sim
// and runtime adapters use, and across a scenario sequence that dirties
// the reusable scratch buffers — must produce bitwise-identical plans,
// bitwise-identical quality accounting, and energies equal within the
// sim<->runtime conformance tolerance (kRelTol = 1e-9, see
// tests/runtime_conformance_test.cpp). The end-to-end counterpart is
// runtime_conformance_test / cluster_conformance_test, which drive the
// two planes through their adapters on real workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/power.hpp"
#include "core/quality.hpp"
#include "obs/registry.hpp"
#include "policy/des_planner.hpp"
#include "policy/world_view.hpp"

namespace qes::policy {
namespace {

const PowerModel kPm = default_power_model();
const QualityFunction kQuality = QualityFunction::exponential();

// The same tolerance the lockstep conformance harness allows on
// accumulated energy; quality agreement is asserted bitwise.
constexpr double kRelTol = 1e-9;

struct Scenario {
  const char* name;
  Watts budget;
  PlanOptions opt;
  int variant;  // 0 = C-DVFS, 1 = No-DVFS, 2 = S-DVFS
};

const DiscreteSpeedSet kLevels(std::vector<Speed>{0.4, 0.8, 1.2});

// One canonical mixed workload: a running head, a rigid job, a fully
// served job awaiting the passed-over drop, and an idle core.
void fill_view(WorldView& v, Watts budget) {
  v.reset(0.0, budget, 3);
  v.power_model = &kPm;
  v.quality = &kQuality;
  v.cores[0].jobs = {
      {.id = 1, .deadline = 30.0, .demand = 25.0, .processed = 6.0},
      {.id = 2, .deadline = 70.0, .demand = 55.0},
      {.id = 3, .deadline = 110.0, .demand = 80.0, .partial_ok = false}};
  v.cores[1].jobs = {
      {.id = 4, .deadline = 50.0, .demand = 15.0, .processed = 15.0},
      {.id = 5, .deadline = 95.0, .demand = 60.0, .weight = 3.0}};
  // core 2 idle
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> s;
  s.push_back({.name = "fast_path", .budget = 400.0, .opt = {}, .variant = 0});
  s.push_back({.name = "constrained", .budget = 3.0, .opt = {}, .variant = 0});
  {
    Scenario d{.name = "discrete", .budget = 6.0, .opt = {}, .variant = 0};
    d.opt.speed_levels = &kLevels;
    s.push_back(d);
  }
  {
    Scenario w{.name = "weighted", .budget = 3.0, .opt = {}, .variant = 0};
    w.opt.weighted = true;
    s.push_back(w);
  }
  {
    Scenario st{.name = "static", .budget = 3.0, .opt = {}, .variant = 0};
    st.opt.static_power = true;
    s.push_back(st);
  }
  s.push_back({.name = "no_dvfs", .budget = 9.0, .opt = {}, .variant = 1});
  s.push_back({.name = "s_dvfs", .budget = 9.0, .opt = {}, .variant = 2});
  return s;
}

PlanOutcome run(DesPlanner& planner, const Scenario& sc) {
  WorldView v;
  fill_view(v, sc.budget);
  PlanOutcome out;
  switch (sc.variant) {
    case 1:
      planner.plan_no_dvfs(v, sc.opt, out);
      break;
    case 2:
      planner.plan_s_dvfs(v, sc.opt, out);
      break;
    default:
      planner.plan_c_dvfs(v, sc.opt, out);
      break;
  }
  return out;
}

// Quality the outcome commits to, accumulated in the consumers' apply
// order (per core, plan volumes in canonical job order). Bitwise
// reproducibility of this sum is exactly what keeps the sim and runtime
// planes' RunStats identical.
double committed_quality(const PlanOutcome& out) {
  double q = 0.0;
  WorldView ref;
  fill_view(ref, 1.0);
  DesPlanner::canonicalize(ref);
  for (std::size_t i = 0; i < out.cores.size(); ++i) {
    for (const ViewJob& vj : ref.cores[i].jobs) {
      const Work vol =
          std::min(vj.processed + out.cores[i].plan.volume_of(vj.id),
                   vj.demand);
      q += kQuality(vol);
    }
  }
  return q;
}

double planned_energy(const PlanOutcome& out) {
  double e = 0.0;
  for (const CoreOutcome& c : out.cores) e += c.plan.dynamic_energy(kPm);
  return e;
}

void expect_same_outcome(const PlanOutcome& a, const PlanOutcome& b,
                         const char* name) {
  ASSERT_EQ(a.cores.size(), b.cores.size()) << name;
  for (std::size_t i = 0; i < a.cores.size(); ++i) {
    const CoreOutcome& ca = a.cores[i];
    const CoreOutcome& cb = b.cores[i];
    ASSERT_EQ(ca.plan.size(), cb.plan.size()) << name << " core " << i;
    for (std::size_t k = 0; k < ca.plan.size(); ++k) {
      EXPECT_EQ(ca.plan[k].t0, cb.plan[k].t0) << name;
      EXPECT_EQ(ca.plan[k].t1, cb.plan[k].t1) << name;
      EXPECT_EQ(ca.plan[k].job, cb.plan[k].job) << name;
      EXPECT_EQ(ca.plan[k].speed, cb.plan[k].speed) << name;
    }
    EXPECT_EQ(ca.idle_power, cb.idle_power) << name;
    EXPECT_EQ(ca.rigid_discards, cb.rigid_discards) << name;
    EXPECT_EQ(ca.passed_over, cb.passed_over) << name;
  }
}

TEST(PlannerDifferential, SimAndRuntimePlaneInstancesAgreeBitwise) {
  // Two kernels the way the two adapters construct them: the sim plane
  // with a registry, the runtime plane with another. The plane label and
  // the profiling side-channel must not perturb a single bit of the
  // arithmetic, and the committed quality must match bitwise — that is
  // the invariant the lockstep conformance harness measures end to end.
  obs::Registry sim_reg;
  obs::Registry rt_reg;
  DesPlanner sim_planner(&sim_reg, "sim");
  DesPlanner rt_planner(&rt_reg, "runtime");
  for (const Scenario& sc : scenarios()) {
    const PlanOutcome a = run(sim_planner, sc);
    const PlanOutcome b = run(rt_planner, sc);
    expect_same_outcome(a, b, sc.name);
    EXPECT_EQ(committed_quality(a), committed_quality(b)) << sc.name;
    const double ea = planned_energy(a);
    const double eb = planned_energy(b);
    EXPECT_NEAR(ea, eb, kRelTol * std::max(1.0, ea)) << sc.name;
  }
}

TEST(PlannerDifferential, ProfiledAndUnprofiledPlannersAgreeBitwise) {
  obs::Registry reg;
  DesPlanner profiled(&reg, "sim");
  DesPlanner bare;  // no registry: the profiler is inert
  for (const Scenario& sc : scenarios()) {
    expect_same_outcome(run(profiled, sc), run(bare, sc), sc.name);
  }
  // The profiled side actually recorded the pipeline phases.
  EXPECT_NE(reg.find_histogram(kReplanPhaseMetric,
                               {{"plane", "sim"}, {"phase", "yds"}}),
            nullptr);
}

TEST(PlannerDifferential, DirtyScratchNeverLeaksAcrossScenarios) {
  // One long-lived planner walks the scenario sequence twice in opposite
  // orders (leaving different scratch contents before each plan); a
  // fresh planner per scenario is the reference. Any reliance on
  // scratch-buffer contents surviving a replan shows up here.
  DesPlanner reused;
  std::vector<Scenario> seq = scenarios();
  std::vector<PlanOutcome> forward;
  forward.reserve(seq.size());
  for (const Scenario& sc : seq) forward.push_back(run(reused, sc));
  std::reverse(seq.begin(), seq.end());
  std::vector<PlanOutcome> backward;
  backward.reserve(seq.size());
  for (const Scenario& sc : seq) backward.push_back(run(reused, sc));
  std::reverse(backward.begin(), backward.end());
  std::reverse(seq.begin(), seq.end());
  for (std::size_t k = 0; k < seq.size(); ++k) {
    DesPlanner fresh;
    const PlanOutcome ref = run(fresh, seq[k]);
    expect_same_outcome(forward[k], ref, seq[k].name);
    expect_same_outcome(backward[k], ref, seq[k].name);
  }
}

TEST(PlannerDifferential, ReusedViewAndOutcomeMatchFreshOnes) {
  // The adapters reuse one WorldView and one PlanOutcome across replans
  // (reset() keeps capacity). Reuse must be observationally identical to
  // fresh objects every replan.
  DesPlanner planner;
  WorldView reused_view;
  PlanOutcome reused_out;
  for (const Scenario& sc : scenarios()) {
    if (sc.variant != 0) continue;
    fill_view(reused_view, sc.budget);
    planner.plan_c_dvfs(reused_view, sc.opt, reused_out);
    DesPlanner fresh;
    const PlanOutcome ref = run(fresh, sc);
    expect_same_outcome(reused_out, ref, sc.name);
  }
}

}  // namespace
}  // namespace qes::policy
