#include "core/quality.hpp"

#include <gtest/gtest.h>

namespace qes {
namespace {

TEST(QualityFunction, ExponentialMatchesPaperEq1) {
  const double c = 0.003;
  auto f = QualityFunction::exponential(c);
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  // q(1000) = 1 by construction of the normalizer.
  EXPECT_NEAR(f(1000.0), 1.0, 1e-12);
  // Spot value: q(500) = (1 - e^{-1.5}) / (1 - e^{-3}).
  const double expected = (1.0 - std::exp(-1.5)) / (1.0 - std::exp(-3.0));
  EXPECT_NEAR(f(500.0), expected, 1e-12);
}

TEST(QualityFunction, LargerCIsMoreConcave) {
  // Figure 7(a): at the same volume, larger c yields higher quality.
  auto lo = QualityFunction::exponential(0.0005);
  auto hi = QualityFunction::exponential(0.009);
  for (double x : {50.0, 200.0, 500.0, 900.0}) {
    EXPECT_GT(hi(x), lo(x)) << "at x=" << x;
  }
  // Both normalize to 1 at 1000 units.
  EXPECT_NEAR(lo(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(hi(1000.0), 1.0, 1e-12);
}

TEST(QualityFunction, ShapeChecks) {
  EXPECT_TRUE(QualityFunction::exponential(0.003).check_shape(1000.0));
  EXPECT_TRUE(QualityFunction::exponential(0.009).check_shape(1000.0));
  EXPECT_TRUE(QualityFunction::linear().check_shape(1000.0));
  EXPECT_TRUE(QualityFunction::sqrt().check_shape(1000.0));
  EXPECT_TRUE(QualityFunction::log1p().check_shape(1000.0));
  // A convex function must fail the concavity check.
  auto convex = QualityFunction::custom(
      "square", [](Work x) { return x * x; }, false);
  EXPECT_FALSE(convex.check_shape(10.0));
  // A decreasing function must fail monotonicity.
  auto decreasing = QualityFunction::custom(
      "neg", [](Work x) { return -x; }, false);
  EXPECT_FALSE(decreasing.check_shape(10.0));
}

TEST(QualityFunction, StepFunction) {
  auto f = QualityFunction::step(100.0);
  EXPECT_DOUBLE_EQ(f(99.0), 0.0);
  EXPECT_DOUBLE_EQ(f(100.0), 1.0);
  EXPECT_DOUBLE_EQ(f(500.0), 1.0);
  EXPECT_FALSE(f.strictly_concave());
}

TEST(QualityFunction, SqrtAndLog1pAreNormalized) {
  EXPECT_NEAR(QualityFunction::sqrt(1000.0)(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(QualityFunction::log1p(0.01, 1000.0)(1000.0), 1.0, 1e-12);
}

TEST(QualityFunction, ConcavityGivesDiminishingReturns) {
  auto f = QualityFunction::exponential(0.003);
  const double first_half = f(500.0) - f(0.0);
  const double second_half = f(1000.0) - f(500.0);
  EXPECT_GT(first_half, second_half);
}

class QualityFamilyTest : public ::testing::TestWithParam<double> {};

TEST_P(QualityFamilyTest, ExponentialFamilyWellFormed) {
  const double c = GetParam();
  auto f = QualityFunction::exponential(c);
  EXPECT_TRUE(f.check_shape(1000.0, 512));
  EXPECT_NEAR(f(1000.0), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(f(0.0), 0.0);
  EXPECT_TRUE(f.strictly_concave());
}

INSTANTIATE_TEST_SUITE_P(PaperCValues, QualityFamilyTest,
                         ::testing::Values(0.0005, 0.001, 0.002, 0.003, 0.005,
                                           0.009));

}  // namespace
}  // namespace qes
