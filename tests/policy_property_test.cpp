// Property tests for the DES planner kernel: the PlanOutcome is
// invariant under any permutation of a core's job list (the kernel
// canonicalizes to (deadline, id) order) and equivariant under core
// relabeling (per-core planning plus an order-oblivious water-fill), and
// the round-robin dealers break ties deterministically. Bitwise
// comparisons throughout: the planes rely on exact reproducibility.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/power.hpp"
#include "core/quality.hpp"
#include "policy/crr.hpp"
#include "policy/des_planner.hpp"
#include "policy/world_view.hpp"

namespace qes::policy {
namespace {

const PowerModel kPm = default_power_model();
const QualityFunction kQuality = QualityFunction::exponential();

// A three-core scenario exercising the whole pipeline: a running head
// job, a rigid job that cannot complete under a tight budget, distinct
// weights, and one idle core. Only the canonical head of core 0 carries
// prior volume (the WorldView contract).
WorldView base_view(Watts budget) {
  WorldView v;
  v.reset(0.0, budget, 3);
  v.power_model = &kPm;
  v.quality = &kQuality;
  // Job 3 is core 0's canonical head (earliest deadline) and the only
  // job with prior volume, per the WorldView contract.
  v.cores[0].jobs = {
      {.id = 1, .deadline = 40.0, .demand = 30.0},
      {.id = 2, .deadline = 80.0, .demand = 40.0, .weight = 2.0},
      {.id = 3,
       .deadline = 12.0,
       .demand = 90.0,
       .processed = 4.0,
       .partial_ok = false}};
  v.cores[1].jobs = {{.id = 4, .deadline = 60.0, .demand = 50.0},
                     {.id = 5, .deadline = 90.0, .demand = 10.0}};
  // core 2 idle
  return v;
}

WorldView shuffled(const WorldView& base, unsigned seed) {
  WorldView v = base;
  std::mt19937 rng(seed);
  for (CoreView& core : v.cores) {
    std::shuffle(core.jobs.begin(), core.jobs.end(), rng);
  }
  return v;
}

WorldView relabeled(const WorldView& base, const std::vector<std::size_t>& p) {
  WorldView v = base;
  for (std::size_t i = 0; i < p.size(); ++i) v.cores[i] = base.cores[p[i]];
  return v;
}

void expect_same_schedule(const Schedule& a, const Schedule& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].t0, b[k].t0);
    EXPECT_EQ(a[k].t1, b[k].t1);
    EXPECT_EQ(a[k].job, b[k].job);
    EXPECT_EQ(a[k].speed, b[k].speed);
  }
}

void expect_same_core_outcome(const CoreOutcome& a, const CoreOutcome& b) {
  expect_same_schedule(a.plan, b.plan);
  EXPECT_EQ(a.idle_power, b.idle_power);
  EXPECT_EQ(a.rigid_discards, b.rigid_discards);
  EXPECT_EQ(a.passed_over, b.passed_over);
}

void expect_same_outcome(const PlanOutcome& a, const PlanOutcome& b) {
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t i = 0; i < a.cores.size(); ++i) {
    expect_same_core_outcome(a.cores[i], b.cores[i]);
  }
}

enum class Variant { CDvfs, NoDvfs, SDvfs, Discrete, Weighted };

PlanOutcome run(WorldView view, Variant variant) {
  static const DiscreteSpeedSet kLevels(
      std::vector<Speed>{0.3, 0.6, 1.0, 1.4});
  DesPlanner planner;
  PlanOptions opt;
  PlanOutcome out;
  switch (variant) {
    case Variant::NoDvfs:
      planner.plan_no_dvfs(view, opt, out);
      break;
    case Variant::SDvfs:
      planner.plan_s_dvfs(view, opt, out);
      break;
    case Variant::Discrete:
      opt.speed_levels = &kLevels;
      planner.plan_c_dvfs(view, opt, out);
      break;
    case Variant::Weighted:
      opt.weighted = true;
      planner.plan_c_dvfs(view, opt, out);
      break;
    case Variant::CDvfs:
      planner.plan_c_dvfs(view, opt, out);
      break;
  }
  return out;
}

TEST(PlannerProperty, OutcomeInvariantUnderJobPermutationWithinCores) {
  for (const Variant variant : {Variant::CDvfs, Variant::NoDvfs,
                                Variant::SDvfs, Variant::Discrete,
                                Variant::Weighted}) {
    // 4 W is well inside the constrained regime (the budget-free request
    // exceeds 30 W), 500 W is deep inside the fast path — both stay away
    // from the fp-sensitive fast-path boundary.
    for (const Watts budget : {4.0, 500.0}) {
      const PlanOutcome ref = run(base_view(budget), variant);
      for (unsigned seed = 1; seed <= 5; ++seed) {
        const PlanOutcome got =
            run(shuffled(base_view(budget), seed), variant);
        expect_same_outcome(ref, got);
      }
    }
  }
}

TEST(PlannerProperty, OutcomeEquivariantUnderCoreRelabeling) {
  // Distinct per-core requests keep the water-fill and the discrete
  // rectification free of cross-core ties, so relabeling the cores must
  // relabel the outcomes and change nothing else.
  for (const Variant variant :
       {Variant::CDvfs, Variant::NoDvfs, Variant::SDvfs}) {
    for (const Watts budget : {4.0, 500.0}) {
      const PlanOutcome ref = run(base_view(budget), variant);
      for (const std::vector<std::size_t>& perm :
           {std::vector<std::size_t>{2, 0, 1},
            std::vector<std::size_t>{1, 2, 0},
            std::vector<std::size_t>{2, 1, 0}}) {
        const PlanOutcome got =
            run(relabeled(base_view(budget), perm), variant);
        ASSERT_EQ(got.cores.size(), perm.size());
        for (std::size_t i = 0; i < perm.size(); ++i) {
          expect_same_core_outcome(got.cores[i], ref.cores[perm[i]]);
        }
      }
    }
  }
}

TEST(PlannerProperty, RepeatedPlansFromOnePlannerAreIdentical) {
  // Scratch reuse must not leak state between replans: the same view
  // planned twice through one planner gives bitwise-identical outcomes.
  DesPlanner planner;
  for (const Watts budget : {4.0, 500.0}) {
    WorldView v1 = base_view(budget);
    WorldView v2 = base_view(budget);
    PlanOutcome a;
    PlanOutcome b;
    planner.plan_c_dvfs(v1, PlanOptions{}, a);
    planner.plan_c_dvfs(v2, PlanOptions{}, b);
    expect_same_outcome(a, b);
  }
}

TEST(PlannerProperty, CrrCursorIsDeterministicAndBalanced) {
  // C-RR dealing depends only on the persistent cursor, never on job
  // identity: two dealers fed the same counts agree target by target.
  CumulativeRoundRobin a(3);
  CumulativeRoundRobin b(3);
  std::vector<std::size_t> per_core(3, 0);
  for (const std::size_t count : {2u, 5u, 1u, 7u, 3u}) {
    const auto ta = a.distribute(count);
    const auto tb = b.distribute(count);
    EXPECT_EQ(ta, tb);
    for (const std::size_t c : ta) ++per_core[c];
  }
  // 18 jobs over 3 cores: the cumulative cursor deals exactly 6 each.
  EXPECT_EQ(per_core, (std::vector<std::size_t>{6, 6, 6}));
}

TEST(PlannerProperty, SmoothWeightedRoundRobinBreaksTiesByLowestIndex) {
  // Equal weights degenerate SWRR to plain round robin with ties going
  // to the lowest index — the deterministic tie-break the heterogeneous
  // dealer relies on.
  SmoothWeightedRoundRobin swrr(std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_EQ(swrr.distribute(6),
            (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

}  // namespace
}  // namespace qes::policy
