// Unit tests of the observability layer: log-bucketed histograms, the
// metrics registry with its two expositions, and the bounded trace ring.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/prng.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace qes::obs {
namespace {

// ---- Histogram ----

TEST(Histogram, GeometricBoundsAndBucketPlacement) {
  Histogram h(1.0, 2.0, 4);  // bounds 1, 2, 4, 8 (+Inf overflow)
  h.record(0.5);   // <= 1 -> bucket 0
  h.record(1.0);   // == bound -> bucket 0 (le semantics)
  h.record(3.0);   // bucket 2
  h.record(100.0); // overflow
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.upper_bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(s.upper_bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(s.upper_bounds[3], 8.0);
  ASSERT_EQ(s.counts.size(), 5u);
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 0u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.counts[3], 0u);
  EXPECT_EQ(s.counts[4], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 104.5);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
}

TEST(Histogram, ExactCountAndSumMatchRecordingOrder) {
  Histogram h = Histogram::latency_ms();
  double expect_sum = 0.0;
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.exponential(0.02);
    expect_sum += v;
    h.record(v);
  }
  // Bitwise equality: the histogram accumulates its sum in the same
  // order as the reference loop above.
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), expect_sum);
}

TEST(Histogram, QuantilesMonotoneAndWithinObservedRange) {
  Histogram h = Histogram::latency_ms();
  Xoshiro256 rng(13);
  for (int i = 0; i < 5000; ++i) h.record(1.0 + rng.exponential(0.01));
  const HistogramSnapshot s = h.snapshot();
  double prev = s.min;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double v = s.quantile(q);
    EXPECT_GE(v, s.min);
    EXPECT_LE(v, s.max);
    EXPECT_GE(v, prev - 1e-12) << "quantile not monotone at q=" << q;
    prev = v;
  }
}

TEST(Histogram, QuantileDegenerateCases) {
  Histogram empty(1.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(empty.snapshot().quantile(0.5), 0.0);

  Histogram one(1.0, 2.0, 4);
  one.record(3.0);
  const HistogramSnapshot s = one.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
}

TEST(Histogram, QuantileApproximatesTrueRankOnGeometricGrid) {
  // With many samples the log-interpolated quantile should land within
  // one bucket (50% relative error) of the empirical quantile.
  Histogram h = Histogram::latency_ms();
  std::vector<double> vals;
  Xoshiro256 rng(29);
  for (int i = 0; i < 20000; ++i) {
    const double v = 1.0 + rng.exponential(0.005);
    vals.push_back(v);
    h.record(v);
  }
  std::sort(vals.begin(), vals.end());
  const HistogramSnapshot s = h.snapshot();
  for (double q : {0.5, 0.95, 0.99}) {
    const double truth = vals[static_cast<std::size_t>(
        q * static_cast<double>(vals.size() - 1))];
    const double est = s.quantile(q);
    EXPECT_GT(est, truth / 1.6) << "q=" << q;
    EXPECT_LT(est, truth * 1.6) << "q=" << q;
  }
}

TEST(Histogram, ConcurrentRecordsLoseNothing) {
  Histogram h(1.0, 2.0, 8);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> ts;
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(2.0);
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_DOUBLE_EQ(h.sum(), 2.0 * kThreads * kPerThread);
}

// ---- Registry ----

TEST(Registry, CounterGaugeRoundTrip) {
  Registry reg;
  Counter& c = reg.counter("qes_test_total", "help text");
  c.inc();
  c.add(2.5);
  EXPECT_DOUBLE_EQ(c.value(), 3.5);
  // Same (name, labels) returns the same instrument.
  EXPECT_EQ(&reg.counter("qes_test_total"), &c);

  Gauge& g = reg.gauge("qes_test_gauge");
  g.set(-7.0);
  EXPECT_DOUBLE_EQ(g.value(), -7.0);

  EXPECT_EQ(reg.find_counter("qes_test_total"), &c);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("qes_test_gauge"), &g);
}

TEST(Registry, LabeledSeriesAreDistinct) {
  Registry reg;
  Counter& a = reg.counter("jobs_total", "", {{"outcome", "satisfied"}});
  Counter& b = reg.counter("jobs_total", "", {{"outcome", "zero"}});
  EXPECT_NE(&a, &b);
  a.add(3);
  b.add(1);
  EXPECT_DOUBLE_EQ(
      reg.find_counter("jobs_total", {{"outcome", "satisfied"}})->value(),
      3.0);
}

TEST(Registry, PrometheusExpositionShapeAndFamilyGrouping) {
  Registry reg;
  reg.counter("f_total", "a family", {{"k", "x"}}).inc();
  reg.gauge("g", "a gauge").set(1.5);
  // Interleave registration so grouping is actually exercised.
  reg.counter("f_total", "a family", {{"k", "y"}}).add(2);
  Histogram& h =
      reg.histogram("lat_ms", "latency", {}, Histogram(1.0, 2.0, 2));
  h.record(0.5);
  h.record(3.0);

  const std::string text = reg.to_prometheus();
  // HELP/TYPE emitted once per family, series contiguous.
  EXPECT_NE(text.find("# HELP f_total a family\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE f_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("f_total{k=\"x\"} 1\nf_total{k=\"y\"} 2\n"),
            std::string::npos)
      << text;
  // Histogram: cumulative buckets, +Inf terminator, _sum and _count.
  EXPECT_NE(text.find("lat_ms_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_sum 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("lat_ms_count 2\n"), std::string::npos);
  // Exactly one TYPE line per family.
  std::size_t type_lines = 0;
  for (std::size_t p = text.find("# TYPE f_total");
       p != std::string::npos; p = text.find("# TYPE f_total", p + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(Registry, JsonExpositionShape) {
  Registry reg;
  reg.counter("c_total").add(4);
  reg.gauge("g").set(0.25);
  Histogram& h = reg.histogram("h_ms", "", {}, Histogram(1.0, 2.0, 2));
  h.record(1.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\": {\"c_total\": 4}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"g\": 0.25"), std::string::npos);
  EXPECT_NE(json.find("\"h_ms\": {\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [[1, 0], [2, 1]]"), std::string::npos)
      << json;
}

TEST(Registry, JsonEscapeHandlesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("plain_name"), "plain_name");
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(json_escape("line\nbreak\ttab\rret"),
            "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(json_escape(std::string("nul") + '\x01' + "byte"),
            "nul\\u0001byte");
  EXPECT_EQ(json_escape(""), "");
}

TEST(Registry, JsonExpositionEscapesMetricAndLabelNames) {
  // Metric/label names containing quotes or backslashes must not break
  // the JSON document: keys are escaped at exposition time.
  Registry reg;
  reg.counter("bad\"name", "", {{"path", "C:\\tmp"}}).add(1);
  const std::string json = reg.to_json();
  // The key is the Prometheus series rendering (label backslash already
  // doubled) escaped once more as a JSON string.
  EXPECT_NE(json.find("\"bad\\\"name{path=\\\"C:\\\\\\\\tmp\\\"}\": 1"),
            std::string::npos)
      << json;
  // Every quote inside a key is escaped: the document has balanced,
  // alternating quoting (count the unescaped quotes).
  std::size_t unescaped = 0;
  for (std::size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '"' && (i == 0 || json[i - 1] != '\\')) ++unescaped;
  }
  EXPECT_EQ(unescaped % 2, 0u) << json;
}

TEST(Registry, PrometheusExpositionEscapesLabelValues) {
  // The exposition format requires \\, \", and \n escaped inside label
  // values (and nothing else).
  Registry reg;
  reg.counter("esc_total", "", {{"q", "a\"b\\c\nd"}}).inc();
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("esc_total{q=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos)
      << text;
}

TEST(Registry, NumbersRoundTripThroughExposition) {
  Registry reg;
  const double v = 312.54195082281461;  // needs 17 significant digits? no:
  reg.gauge("g").set(v);
  const std::string text = reg.to_prometheus();
  const std::size_t pos = text.find("\ng ");
  ASSERT_NE(pos, std::string::npos);
  const double parsed = std::stod(text.substr(pos + 3));
  EXPECT_EQ(parsed, v);  // shortest round-trip formatting is lossless
}

// ---- TraceRing ----

TEST(TraceRing, BoundedWithDropAccounting) {
  TraceRing ring(3);
  for (int i = 1; i <= 5; ++i) {
    ring.push({.kind = TraceEvent::Kind::Release,
               .t = static_cast<double>(i),
               .job = static_cast<JobId>(i)});
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2u);
  const std::vector<TraceEvent> evs = ring.drain();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs.front().job, 3u);  // oldest two were overwritten
  EXPECT_EQ(evs.back().job, 5u);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TraceRing, JsonlRendersOneObjectPerLine) {
  TraceRing ring(16);
  ring.push({.kind = TraceEvent::Kind::Release, .t = 1.0, .job = 1});
  ring.push({.kind = TraceEvent::Kind::Assign, .t = 2.0, .job = 1, .core = 3});
  ring.push({.kind = TraceEvent::Kind::Exec,
             .t = 2.0,
             .job = 1,
             .core = 3,
             .t0 = 2.0,
             .t1 = 4.5,
             .speed = 1.25});
  ring.push({.kind = TraceEvent::Kind::Finalize,
             .t = 4.5,
             .job = 1,
             .value = 0.75});
  ring.push({.kind = TraceEvent::Kind::Replan, .t = 5.0, .value = 4.0});
  const std::string jsonl = ring.drain_jsonl();
  std::istringstream in(jsonl);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0], "{\"kind\": \"release\", \"t\": 1.000, \"job\": 1}");
  EXPECT_EQ(lines[1],
            "{\"kind\": \"assign\", \"t\": 2.000, \"job\": 1, \"core\": 3}");
  EXPECT_NE(lines[2].find("\"kind\": \"exec\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"speed\": 1.250000"), std::string::npos);
  EXPECT_NE(lines[3].find("\"quality\": 0.750000"), std::string::npos);
  EXPECT_NE(lines[4].find("\"waiting\": 4"), std::string::npos);
  // Every line is a braced object.
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
}

}  // namespace
}  // namespace qes::obs
