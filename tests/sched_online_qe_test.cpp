#include "sched/online_qe.hpp"

#include <gtest/gtest.h>

#include "core/prng.hpp"
#include "core/quality.hpp"
#include "sched/qe_opt.hpp"
#include "test_util.hpp"

namespace qes {
namespace {

PowerModel pm = default_power_model();

TEST(OnlineQe, EmptyInput) {
  auto r = online_qe(100.0, {}, 2.0);
  EXPECT_TRUE(r.schedule.empty());
  EXPECT_TRUE(r.planned.empty());
}

TEST(OnlineQe, SkipsExpiredAndFinishedJobs) {
  std::vector<ReadyJob> jobs = {
      {.id = 1, .deadline = 90.0, .demand = 50.0},                  // expired
      {.id = 2, .deadline = 200.0, .demand = 50.0, .processed = 50.0},
      {.id = 3, .deadline = 200.0, .demand = 50.0},
  };
  auto r = online_qe(100.0, jobs, 2.0);
  EXPECT_EQ(r.planned.count(1), 0u);
  EXPECT_EQ(r.planned.count(2), 0u);
  ASSERT_EQ(r.planned.count(3), 1u);
  EXPECT_NEAR(r.planned[3], 50.0, 1e-9);
}

TEST(OnlineQe, MatchesQeOptWhenInvokedFresh) {
  // With no running job and all releases at `now`, Online-QE must equal
  // QE-OPT on the same (re-released) set — the myopic-optimality claim.
  Xoshiro256 rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    const Time now = 1000.0;
    const std::size_t n = 2 + rng.uniform_index(10);
    std::vector<ReadyJob> ready;
    std::vector<Job> offline;
    for (std::size_t k = 0; k < n; ++k) {
      const Time d = now + rng.uniform(50.0, 300.0);
      const Work w = rng.uniform(20.0, 300.0);
      ready.push_back({.id = k + 1, .deadline = d, .demand = w});
      offline.push_back(
          {.id = k + 1, .release = now, .deadline = d, .demand = w});
    }
    const Speed s = rng.uniform(0.5, 2.5);
    auto on = online_qe(now, ready, s);
    const AgreeableJobSet off_set(offline);
    auto off = qe_opt_schedule(off_set, s);
    EXPECT_NEAR(on.schedule.dynamic_energy(pm),
                off.schedule.dynamic_energy(pm), 1e-6);
    for (std::size_t k = 0; k < n; ++k) {
      const JobId id = off_set[k].id;  // volumes align with sorted order
      const Work planned = on.planned.count(id) ? on.planned[id] : 0.0;
      EXPECT_NEAR(planned, off.volumes[k], 1e-5);
    }
  }
}

TEST(OnlineQe, RunningJobKeepsItsFairShareCredit) {
  // Two identical jobs, tight capacity. Job 1 already processed 40: the
  // release rewind makes Quality-OPT see that volume, so the *total*
  // volumes equalize rather than the increments.
  const Time now = 0.0;
  std::vector<ReadyJob> jobs = {
      {.id = 1, .deadline = 100.0, .demand = 100.0, .processed = 40.0,
       .running = true},
      {.id = 2, .deadline = 100.0, .demand = 100.0},
  };
  auto r = online_qe(now, jobs, 1.0);
  // Windows: job1 [-40, 100] (140 capacity in its rewound window),
  // job2 [0, 100]. Quality-OPT on [-40,100]: capacity 140, both jobs
  // levelled at 70. Job1's remaining plan = 70 - 40 = 30; job2 = 70.
  ASSERT_EQ(r.planned.count(1), 1u);
  ASSERT_EQ(r.planned.count(2), 1u);
  EXPECT_NEAR(r.planned[1], 30.0, 1e-6);
  EXPECT_NEAR(r.planned[2], 70.0, 1e-6);
}

TEST(OnlineQe, OverServedRunningJobIsDropped) {
  // Job 1 already received more than its fair share: it gets no more.
  std::vector<ReadyJob> jobs = {
      {.id = 1, .deadline = 100.0, .demand = 100.0, .processed = 80.0,
       .running = true},
      {.id = 2, .deadline = 100.0, .demand = 100.0},
      {.id = 3, .deadline = 100.0, .demand = 100.0},
  };
  auto r = online_qe(0.0, jobs, 1.0);
  // Rewound window [-80,100]: capacity 180, level 60 < 80 => job1's
  // remaining plan <= 0 => dropped; the other two share [0,100].
  EXPECT_EQ(r.planned.count(1), 0u);
  EXPECT_NEAR(r.planned[2], 50.0, 1e-6);
  EXPECT_NEAR(r.planned[3], 50.0, 1e-6);
}

TEST(OnlineQe, ScheduleStartsAtNowAndMeetsDeadlines) {
  Xoshiro256 rng(77);
  for (int rep = 0; rep < 20; ++rep) {
    const Time now = rng.uniform(0.0, 5000.0);
    const std::size_t n = 1 + rng.uniform_index(12);
    std::vector<ReadyJob> jobs;
    // The running job (index 0) must have the earliest deadline — the
    // engine guarantees this via FIFO execution.
    const Time running_deadline = now + rng.uniform(20.0, 120.0);
    for (std::size_t k = 0; k < n; ++k) {
      ReadyJob rj{.id = k + 1,
                  .deadline = k == 0 ? running_deadline
                                     : running_deadline +
                                           rng.uniform(0.0, 200.0),
                  .demand = rng.uniform(20.0, 400.0)};
      if (k == 0 && rng.bernoulli(0.5)) {
        rj.running = true;
        rj.processed = rng.uniform(0.0, rj.demand * 0.9);
      }
      jobs.push_back(rj);
    }
    const Speed s_max = rng.uniform(0.5, 3.0);
    auto r = online_qe(now, jobs, s_max);
    r.schedule.check_well_formed();
    EXPECT_LE(r.schedule.max_speed(), s_max + 1e-6);
    for (const Segment& seg : r.schedule.segments()) {
      EXPECT_GE(seg.t0, now - 1e-6);
      const auto& rj = jobs[seg.job - 1];
      EXPECT_LE(seg.t1, rj.deadline + 1e-5);
    }
    // Planned volumes stay within remaining demand.
    for (const auto& [id, planned] : r.planned) {
      const auto& rj = jobs[id - 1];
      EXPECT_LE(planned, rj.demand - rj.processed + 1e-6);
      EXPECT_NEAR(r.schedule.volume_of(id), planned, 1e-5);
    }
  }
}

TEST(OnlineQe, WorksWithChangedPowerBudget) {
  // The same ready set under a smaller budget (slower max speed) must
  // still produce a feasible schedule with (weakly) lower total volume.
  std::vector<ReadyJob> jobs = {
      {.id = 1, .deadline = 100.0, .demand = 150.0},
      {.id = 2, .deadline = 120.0, .demand = 150.0},
  };
  auto fast = online_qe(0.0, jobs, 2.0);
  auto slow = online_qe(0.0, jobs, 1.0);
  double fast_total = 0.0, slow_total = 0.0;
  for (auto& [id, v] : fast.planned) fast_total += v;
  for (auto& [id, v] : slow.planned) slow_total += v;
  EXPECT_GE(fast_total, slow_total - 1e-9);
  EXPECT_LE(slow.schedule.max_speed(), 1.0 + 1e-9);
}

TEST(OnlineQe, TwoRunningJobsDie) {
  std::vector<ReadyJob> jobs = {
      {.id = 1, .deadline = 100.0, .demand = 10.0, .running = true},
      {.id = 2, .deadline = 100.0, .demand = 10.0, .running = true},
  };
  EXPECT_DEATH(online_qe(0.0, jobs, 1.0), "at most one running job");
}

}  // namespace
}  // namespace qes
