#include <gtest/gtest.h>

#include <set>

#include "search/corpus.hpp"
#include "search/executor.hpp"
#include "search/index.hpp"
#include "search/profile.hpp"

namespace qes::search {
namespace {

CorpusConfig small_corpus_config() {
  CorpusConfig cfg;
  cfg.num_documents = 2'000;
  cfg.vocabulary = 800;
  cfg.min_terms = 20;
  cfg.max_terms = 120;
  return cfg;
}

class SearchFixture : public ::testing::Test {
 protected:
  SearchFixture() : corpus_(small_corpus_config()), index_(corpus_) {}
  Corpus corpus_;
  InvertedIndex index_;
};

TEST(Corpus, DeterministicGeneration) {
  Corpus a(small_corpus_config());
  Corpus b(small_corpus_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t d = 0; d < a.size(); ++d) {
    ASSERT_EQ(a.doc(static_cast<DocId>(d)).terms,
              b.doc(static_cast<DocId>(d)).terms);
  }
}

TEST(Corpus, DocumentShape) {
  Corpus c(small_corpus_config());
  for (const Document& d : c.documents()) {
    EXPECT_GE(d.length, 20u);
    EXPECT_LE(d.length, 120u);
    std::uint32_t sum = 0;
    TermId prev = 0;
    bool first = true;
    for (const auto& [term, tf] : d.terms) {
      EXPECT_LT(term, 800u);
      EXPECT_GE(tf, 1u);
      if (!first) {
        EXPECT_GT(term, prev);  // sorted, unique
      }
      prev = term;
      first = false;
      sum += tf;
    }
    EXPECT_EQ(sum, d.length);
  }
}

TEST(Corpus, ZipfPopularityIsSkewed) {
  Corpus c(small_corpus_config());
  Xoshiro256 rng(1);
  std::size_t low_ids = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (c.sample_term(rng) < 40) ++low_ids;  // top 5% of vocabulary
  }
  // Zipf(1.1): the head takes far more than its uniform share (5%).
  EXPECT_GT(static_cast<double>(low_ids) / n, 0.35);
}

TEST_F(SearchFixture, IndexIsImpactSortedAndComplete) {
  std::size_t total = 0;
  for (TermId t = 0; t < index_.vocabulary(); ++t) {
    const auto& list = index_.postings(t);
    total += list.size();
    for (std::size_t i = 1; i < list.size(); ++i) {
      EXPECT_GE(list[i - 1].impact, list[i].impact);
    }
  }
  EXPECT_EQ(total, index_.total_postings());
  // Every document occurrence produced exactly one posting.
  std::size_t expected = 0;
  for (const Document& d : corpus_.documents()) expected += d.terms.size();
  EXPECT_EQ(total, expected);
}

TEST_F(SearchFixture, IdfDecreasesWithPopularity) {
  // Term 0 is the most popular under Zipf; a tail term is rarer.
  EXPECT_LT(index_.idf(0), index_.idf(700));
}

TEST_F(SearchFixture, FullExecutionFindsTopDocuments) {
  Xoshiro256 rng(3);
  const QueryExecutor exec(index_);
  const Query q = sample_query(corpus_, rng);
  const SearchResult full = exec.execute(q, 10);
  EXPECT_TRUE(full.complete);
  EXPECT_EQ(full.postings_processed, exec.full_cost(q));
  // Hits sorted by score descending.
  for (std::size_t i = 1; i < full.hits.size(); ++i) {
    EXPECT_GE(full.hits[i - 1].second, full.hits[i].second);
  }
  EXPECT_NEAR(exec.quality(q, full, 10), 1.0, 1e-12);
}

TEST_F(SearchFixture, BudgetCapsWork) {
  Xoshiro256 rng(5);
  const QueryExecutor exec(index_);
  const Query q = sample_query(corpus_, rng);
  const std::size_t cost = exec.full_cost(q);
  ASSERT_GT(cost, 10u);
  const SearchResult r = exec.execute(q, 10, cost / 2);
  EXPECT_EQ(r.postings_processed, cost / 2);
  EXPECT_FALSE(r.complete);
}

TEST_F(SearchFixture, MeanQualityIsMonotoneInWork) {
  // Per-query quality may dip (a later posting can promote an impostor
  // document into the partial top-k), but the MEAN over queries must be
  // monotone in the work fraction, each sample must stay in [0, 1], and
  // the full budget must recover the exact result.
  Xoshiro256 rng(7);
  const QueryExecutor exec(index_);
  constexpr int kGrid = 8;
  double mean[kGrid] = {};
  int counted = 0;
  for (int rep = 0; rep < 25; ++rep) {
    const Query q = sample_query(corpus_, rng);
    const std::size_t cost = exec.full_cost(q);
    if (cost < 20) continue;
    std::vector<std::size_t> budgets;
    for (int g = 1; g <= kGrid; ++g) budgets.push_back(cost * g / kGrid);
    const auto snaps = exec.execute_prefixes(q, 10, budgets);
    const auto& full = snaps.back();
    for (int g = 0; g < kGrid; ++g) {
      const double quality = QueryExecutor::score_recall(snaps[g], full);
      EXPECT_GE(quality, 0.0);
      EXPECT_LE(quality, 1.0 + 1e-12);
      mean[g] += quality;
      if (g == kGrid - 1) {
        EXPECT_NEAR(quality, 1.0, 1e-12);
      }
    }
    ++counted;
  }
  ASSERT_GT(counted, 10);
  for (int g = 1; g < kGrid; ++g) {
    EXPECT_GE(mean[g], mean[g - 1] - 0.02 * counted)
        << "mean quality dipped at grid point " << g;
  }
  EXPECT_GT(mean[kGrid - 1], mean[0]);
}

TEST_F(SearchFixture, PrefixesMatchIndividualExecutions) {
  Xoshiro256 rng(11);
  const QueryExecutor exec(index_);
  const Query q = sample_query(corpus_, rng);
  const std::size_t cost = exec.full_cost(q);
  std::vector<std::size_t> budgets = {cost / 4, cost / 2, cost};
  const auto snaps = exec.execute_prefixes(q, 10, budgets);
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const SearchResult direct = exec.execute(q, 10, budgets[i]);
    ASSERT_EQ(snaps[i].hits.size(), direct.hits.size());
    for (std::size_t h = 0; h < direct.hits.size(); ++h) {
      EXPECT_EQ(snaps[i].hits[h].first, direct.hits[h].first);
      EXPECT_DOUBLE_EQ(snaps[i].hits[h].second, direct.hits[h].second);
    }
  }
}

TEST_F(SearchFixture, EarlyTerminationBeatsRandomPrefix) {
  // Impact ordering is what makes partial results good: the top-impact
  // prefix must dominate processing the same number of postings in
  // arbitrary (doc-id) order.
  Xoshiro256 rng(13);
  const QueryExecutor exec(index_);
  double impact_sum = 0.0, naive_sum = 0.0;
  int counted = 0;
  for (int rep = 0; rep < 12; ++rep) {
    const Query q = sample_query(corpus_, rng);
    const std::size_t cost = exec.full_cost(q);
    if (cost < 40) continue;
    const std::size_t budget = cost / 5;
    const SearchResult full = exec.execute(q, 10);
    const SearchResult smart = exec.execute(q, 10, budget);
    // Naive: take the first `budget` postings in doc-id order per list
    // (round-robin across lists).
    std::map<DocId, double> acc;
    std::size_t used = 0;
    std::vector<std::pair<const std::vector<Posting>*, std::size_t>> cursors;
    for (TermId t : q.terms) cursors.push_back({&index_.postings(t), 0});
    // Re-sort each list copy by doc id to model a non-impact layout.
    std::vector<std::vector<Posting>> docid_lists;
    for (TermId t : q.terms) {
      auto copy = index_.postings(t);
      std::sort(copy.begin(), copy.end(),
                [](const Posting& a, const Posting& b) {
                  return a.doc < b.doc;
                });
      docid_lists.push_back(std::move(copy));
    }
    bool progress = true;
    std::vector<std::size_t> pos(docid_lists.size(), 0);
    while (used < budget && progress) {
      progress = false;
      for (std::size_t l = 0; l < docid_lists.size() && used < budget; ++l) {
        if (pos[l] < docid_lists[l].size()) {
          const Posting& p = docid_lists[l][pos[l]++];
          acc[p.doc] += static_cast<double>(p.impact);
          ++used;
          progress = true;
        }
      }
    }
    SearchResult naive;
    naive.hits.assign(acc.begin(), acc.end());
    std::sort(naive.hits.begin(), naive.hits.end(),
              [](const auto& a, const auto& b) {
                return a.second > b.second;
              });
    if (naive.hits.size() > 10) naive.hits.resize(10);
    impact_sum += QueryExecutor::score_recall(smart, full);
    naive_sum += QueryExecutor::score_recall(naive, full);
    ++counted;
  }
  ASSERT_GT(counted, 5);
  EXPECT_GT(impact_sum, naive_sum);
}

TEST_F(SearchFixture, TopkMassCurveIsMonotonePerQueryConcaveOnAverage) {
  // Monotonicity holds query by query (accumulated mass never shrinks);
  // concavity holds for the averaged curve (individual queries may have
  // locally convex stretches when their top-k postings cluster late).
  Xoshiro256 rng(17);
  const QueryExecutor exec(index_);
  constexpr int kGrid = 10;
  double mean[kGrid] = {};
  int counted = 0;
  for (int rep = 0; rep < 40; ++rep) {
    const Query q = sample_query(corpus_, rng);
    const std::size_t cost = exec.full_cost(q);
    if (cost < 40) continue;
    std::vector<std::size_t> budgets;
    for (int g = 1; g <= kGrid; ++g) budgets.push_back(cost * g / kGrid);
    const auto curve = exec.topk_mass_curve(q, 10, budgets);
    double prev = 0.0;
    for (std::size_t g = 0; g < curve.size(); ++g) {
      EXPECT_GE(curve[g], prev - 1e-12);  // monotone per query
      prev = curve[g];
      mean[g] += curve[g];
    }
    EXPECT_NEAR(curve.back(), 1.0, 1e-9);
    ++counted;
  }
  ASSERT_GT(counted, 20);
  // Mean curve: concave up to a small sampling slack.
  double prev_slope = std::numeric_limits<double>::infinity();
  double prev = 0.0;
  for (int g = 0; g < kGrid; ++g) {
    const double q = mean[g] / counted;
    const double slope = q - prev;  // uniform grid
    EXPECT_LE(slope, prev_slope * 1.3 + 1e-9) << "at grid point " << g;
    prev_slope = slope;
    prev = q;
  }
}

TEST_F(SearchFixture, ProfileMeasuresConcaveCurve) {
  ProfileConfig pc;
  pc.num_queries = 60;
  pc.grid_points = 10;
  const QualityProfile prof = profile_quality(index_, corpus_, pc);
  ASSERT_EQ(prof.work_units.size(), 10u);
  // Monotone increasing to ~1.
  EXPECT_TRUE(prof.measured_curve_concave());
  EXPECT_GT(prof.mean_quality.front(), 0.1);
  EXPECT_NEAR(prof.mean_quality.back(), 1.0, 1e-9);
  // The fit lands inside the paper's plausible c range with a small
  // residual, and the profile calibrates demands to the target mean.
  EXPECT_GT(prof.fitted_c, 1e-4);
  EXPECT_LT(prof.fitted_c, 0.2);
  EXPECT_LT(prof.fit_rmse, 0.15);
  EXPECT_NEAR(prof.demand_mean, 192.0, 1e-9);
  EXPECT_GT(prof.units_per_posting, 0.0);
  // Derived quality functions behave.
  const auto fitted = prof.fitted_function();
  const auto measured = prof.measured_function();
  EXPECT_TRUE(fitted.check_shape(1000.0));
  EXPECT_GE(measured(prof.work_units.back()), 0.9);
}

TEST_F(SearchFixture, SearchWorkloadIsSchedulable) {
  ProfileConfig pc;
  pc.num_queries = 40;
  const QualityProfile prof = profile_quality(index_, corpus_, pc);
  const auto jobs =
      search_workload(index_, corpus_, prof, 100.0, 5'000.0, 150.0, 3);
  ASSERT_GT(jobs.size(), 300u);
  EXPECT_TRUE(deadlines_agreeable(jobs));
  double mean = 0.0;
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(jobs[k].id, k + 1);
    EXPECT_GT(jobs[k].demand, 0.0);
    mean += jobs[k].demand;
  }
  mean /= static_cast<double>(jobs.size());
  // Real query costs calibrated near the paper's 192-unit mean.
  EXPECT_NEAR(mean, 192.0, 60.0);
}

}  // namespace
}  // namespace qes::search
