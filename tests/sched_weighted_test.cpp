#include "sched/weighted_quality.hpp"

#include <gtest/gtest.h>

#include "core/prng.hpp"
#include "sched/quality_opt.hpp"
#include "test_util.hpp"

namespace qes {
namespace {

const QualityFunction kF = QualityFunction::exponential(0.003);

TEST(WeightedQuality, EqualWeightsReduceToQualityOpt) {
  Xoshiro256 rng(3);
  for (int rep = 0; rep < 8; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 12, 300.0);
    AgreeableJobSet set(jobs);
    const Speed s = rng.uniform(0.4, 1.5);
    const std::vector<double> w(set.size(), 1.0);
    const auto weighted = weighted_quality_opt_schedule(set, s, w, kF);
    const auto plain = quality_opt_schedule(set, s);
    for (std::size_t k = 0; k < set.size(); ++k) {
      EXPECT_NEAR(weighted.volumes[k], plain.volumes[k], 1.5)
          << "job " << set[k].id;
    }
  }
}

TEST(WeightedQuality, PremiumJobsGetMoreVolumeUnderOverload) {
  // Boundary case: with c = 0.003 the premium marginal still dominates
  // at the cap, so the 3x job takes the whole capacity.
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 200.0},
      {.id = 2, .release = 0.0, .deadline = 100.0, .demand = 200.0},
  });
  const std::vector<double> w = {3.0, 1.0};
  const auto r = weighted_quality_opt_schedule(set, 1.0, w, kF);
  EXPECT_NEAR(r.volumes[0], 100.0, 1.0);
  EXPECT_NEAR(r.volumes[1], 0.0, 1.0);
}

TEST(WeightedQuality, InteriorKktSpacing) {
  // With a more concave f (c = 0.01) and more capacity the optimum is
  // interior and the KKT condition pins the spacing:
  // 3 e^{-c p1} = e^{-c p2}  =>  p1 - p2 = ln(3)/c ~ 110.
  const auto f = QualityFunction::exponential(0.01);
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 250.0, .demand = 200.0},
      {.id = 2, .release = 0.0, .deadline = 250.0, .demand = 200.0},
  });
  const std::vector<double> w = {3.0, 1.0};
  const auto r = weighted_quality_opt_schedule(set, 1.0, w, f);
  EXPECT_NEAR(r.volumes[0] + r.volumes[1], 250.0, 1.0);
  EXPECT_NEAR(r.volumes[0] - r.volumes[1], std::log(3.0) / 0.01, 3.0);
}

TEST(WeightedQuality, AmpleCapacitySatisfiesEveryone) {
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 100.0},
      {.id = 2, .release = 50.0, .deadline = 200.0, .demand = 80.0},
  });
  const std::vector<double> w = {1.0, 5.0};
  const auto r = weighted_quality_opt_schedule(set, 10.0, w, kF);
  EXPECT_NEAR(r.volumes[0], 100.0, 1e-6);
  EXPECT_NEAR(r.volumes[1], 80.0, 1e-6);
}

class WeightedPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(WeightedPropertyTest, FeasibleAndWithinDemand) {
  Xoshiro256 rng(GetParam());
  for (int rep = 0; rep < 5; ++rep) {
    auto jobs = (rep % 2 == 0)
                    ? test::random_agreeable_jobs(rng, 12, 300.0)
                    : test::random_agreeable_jobs_varwindow(rng, 12, 300.0);
    AgreeableJobSet set(jobs);
    std::vector<double> w;
    for (std::size_t k = 0; k < set.size(); ++k) {
      w.push_back(rng.bernoulli(0.3) ? 4.0 : 1.0);
    }
    const Speed s = rng.uniform(0.4, 1.5);
    const auto r = weighted_quality_opt_schedule(set, s, w, kF);
    r.schedule.check_well_formed();
    r.schedule.check_respects_windows(set.jobs());
    for (std::size_t k = 0; k < set.size(); ++k) {
      EXPECT_GE(r.volumes[k], -1e-9);
      EXPECT_LE(r.volumes[k], set[k].demand + 1e-6);
    }
    EXPECT_LE(r.schedule.max_speed(), s + 1e-9);
  }
}

TEST_P(WeightedPropertyTest, DominatesUnweightedOnWeightedObjective) {
  // On the weighted objective, the weighted scheduler must beat (or tie)
  // the weight-blind Quality-OPT allocation.
  Xoshiro256 rng(GetParam() ^ 0xABULL);
  for (int rep = 0; rep < 5; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 10, 250.0);
    AgreeableJobSet set(jobs);
    std::vector<double> w;
    for (std::size_t k = 0; k < set.size(); ++k) {
      w.push_back(rng.uniform(0.5, 5.0));
    }
    const Speed s = rng.uniform(0.3, 0.9);  // force scarcity
    const auto weighted = weighted_quality_opt_schedule(set, s, w, kF);
    const auto plain = quality_opt_schedule(set, s);
    double plain_score = 0.0;
    for (std::size_t k = 0; k < set.size(); ++k) {
      plain_score += w[k] * kF(plain.volumes[k]);
    }
    EXPECT_GE(weighted.weighted_quality, plain_score - 1e-6);
  }
}

TEST_P(WeightedPropertyTest, NoFeasiblePairwiseTransferImproves) {
  // KKT check on the weighted objective: moving volume between jobs in
  // the same window must not improve sum omega f(p).
  Xoshiro256 rng(GetParam() ^ 0xCDULL);
  std::vector<Job> jobs;
  const std::size_t n = 6;
  for (std::size_t k = 0; k < n; ++k) {
    jobs.push_back({.id = k + 1,
                    .release = 0.0,
                    .deadline = 150.0,
                    .demand = rng.uniform(80.0, 300.0)});
  }
  AgreeableJobSet set(jobs);
  std::vector<double> w;
  for (std::size_t k = 0; k < n; ++k) w.push_back(rng.uniform(0.5, 4.0));
  const auto r = weighted_quality_opt_schedule(set, 0.8, w, kF);
  const double base = r.weighted_quality;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b) continue;
      const double eps = 5.0;
      if (r.volumes[a] < eps) continue;
      if (r.volumes[b] + eps > set[b].demand) continue;
      double moved = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double p = r.volumes[k] + (k == b ? eps : 0.0) -
                         (k == a ? eps : 0.0);
        moved += w[k] * kF(p);
      }
      EXPECT_LE(moved, base + 1e-7)
          << "transfer " << a << "->" << b << " improved the objective";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedPropertyTest,
                         ::testing::Values(51u, 52u, 53u));

}  // namespace
}  // namespace qes
