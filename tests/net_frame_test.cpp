// Wire framing: encode/decode round trips, incremental (segmented)
// decoding, and the protocol-violation paths that must poison the
// decoder rather than resynchronize on garbage.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "net/frame.hpp"

namespace qes::net {
namespace {

SubmitFrame sample_submit() {
  SubmitFrame f;
  f.req_id = 0x0123456789abcdefULL;
  f.demand = 512.25;
  f.deadline_ms = 150.0;
  f.weight = 4.0;
  f.partial_ok = true;
  f.want_ack = true;
  return f;
}

TEST(NetFrame, SubmitRoundTrips) {
  std::string wire;
  const std::size_t n = encode_submit(sample_submit(), wire);
  EXPECT_EQ(n, wire.size());
  EXPECT_EQ(n, 4u + 1u + 33u);  // length prefix + type + body

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(dec.next(&out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.type, FrameType::kSubmit);
  EXPECT_EQ(out.submit.req_id, 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(out.submit.demand, 512.25);
  EXPECT_DOUBLE_EQ(out.submit.deadline_ms, 150.0);
  EXPECT_DOUBLE_EQ(out.submit.weight, 4.0);
  EXPECT_TRUE(out.submit.partial_ok);
  EXPECT_TRUE(out.submit.want_ack);
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kNeedMore);
}

TEST(NetFrame, AckAndReplyRoundTrip) {
  std::string wire;
  AckFrame ack;
  ack.req_id = 7;
  ack.accepted = true;
  encode_ack(ack, wire);
  ReplyFrame reply;
  reply.req_id = 7;
  reply.status = ReplyStatus::kPartial;
  reply.quality = 0.75;
  reply.latency_ms = 42.5;
  encode_reply(reply, wire);

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(dec.next(&out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.type, FrameType::kAck);
  EXPECT_EQ(out.ack.req_id, 7u);
  EXPECT_TRUE(out.ack.accepted);
  ASSERT_EQ(dec.next(&out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.type, FrameType::kReply);
  EXPECT_EQ(out.reply.req_id, 7u);
  EXPECT_EQ(out.reply.status, ReplyStatus::kPartial);
  EXPECT_DOUBLE_EQ(out.reply.quality, 0.75);
  EXPECT_DOUBLE_EQ(out.reply.latency_ms, 42.5);
}

TEST(NetFrame, DecodesByteByByte) {
  // TCP segmentation can split a frame anywhere; feeding one byte at a
  // time is the worst case.
  std::string wire;
  for (std::uint64_t i = 0; i < 5; ++i) {
    SubmitFrame f = sample_submit();
    f.req_id = i;
    encode_submit(f, wire);
  }
  FrameDecoder dec;
  Frame out;
  std::uint64_t decoded = 0;
  for (char c : wire) {
    dec.feed(&c, 1);
    while (dec.next(&out) == FrameDecoder::Result::kFrame) {
      EXPECT_EQ(out.submit.req_id, decoded);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 5u);
}

TEST(NetFrame, RejectsOversizedLength) {
  std::string wire;
  const std::uint32_t length = kMaxFrameBytes + 1;
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((length >> (8 * i)) & 0xffu));
  }
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kError);
  EXPECT_FALSE(dec.error().empty());
  // The decoder is poisoned: more input cannot resurrect it.
  std::string good;
  encode_submit(sample_submit(), good);
  dec.feed(good.data(), good.size());
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kError);
}

TEST(NetFrame, RejectsUnknownType) {
  std::string wire;
  encode_submit(sample_submit(), wire);
  wire[4] = 0x7f;  // clobber the type byte
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kError);
}

TEST(NetFrame, RejectsBodySizeMismatch) {
  std::string wire;
  encode_ack({7, true}, wire);
  wire[4] = static_cast<char>(FrameType::kReply);  // ACK body, REPLY type
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kError);
}

TEST(NetFrame, TruncatedFrameWaitsForMore) {
  std::string wire;
  encode_submit(sample_submit(), wire);
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size() - 1);
  Frame out;
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kNeedMore);
  const char last = wire.back();
  dec.feed(&last, 1);
  EXPECT_EQ(dec.next(&out), FrameDecoder::Result::kFrame);
}

TEST(NetFrame, LongLivedSplitStreamStaysConsistent) {
  // A persistent connection decodes frames forever, with feeds split at
  // arbitrary (here: shifting) offsets; the internal compaction must
  // never corrupt the stream position.
  FrameDecoder dec;
  Frame out;
  std::string wire;
  for (int round = 0; round < 2000; ++round) {
    SubmitFrame f = sample_submit();
    f.req_id = static_cast<std::uint64_t>(round);
    encode_submit(f, wire);
  }
  std::uint64_t decoded = 0;
  std::size_t pos = 0;
  std::size_t chunk = 1;
  while (pos < wire.size()) {
    const std::size_t n = std::min(chunk, wire.size() - pos);
    dec.feed(wire.data() + pos, n);
    pos += n;
    chunk = chunk % 97 + 1;  // shifting split points
    while (dec.next(&out) == FrameDecoder::Result::kFrame) {
      ASSERT_EQ(out.submit.req_id, decoded);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 2000u);
  EXPECT_EQ(dec.pending(), 0u);
}

}  // namespace
}  // namespace qes::net
