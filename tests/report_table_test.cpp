#include "report/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace qes {
namespace {

TEST(Table, AlignedOutput) {
  Table t({"rate", "quality"});
  t.add_row({"100", "0.99"});
  t.add_row({"2600", "0.5"});
  std::stringstream ss;
  t.print(ss);
  const std::string out = ss.str();
  EXPECT_NE(out.find("rate"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_NE(out.find("2600"), std::string::npos);
}

TEST(Table, RowWidthMismatchDies) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"1"}), "row width");
}

TEST(Table, Formatting) {
  EXPECT_EQ(fmt(0.98765, 3), "0.988");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_sci(123456.0, 2), "1.23e+05");
}

}  // namespace
}  // namespace qes
