// Integration of the obs layer with both execution stacks: the
// registry-mirrored aggregates of sim::Engine and RuntimeCore must
// reconcile exactly with their RunStats, the Prometheus exposition must
// carry the same totals, and the trace ring must tell a consistent
// lifecycle story.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "multicore/des_scheduler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/conformance.hpp"
#include "runtime/server.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace qes {
namespace {

std::vector<Job> small_workload(std::uint64_t seed, double rate = 150.0,
                                double horizon_ms = 3000.0) {
  WorkloadConfig wl;
  wl.arrival_rate = rate;
  wl.horizon_ms = horizon_ms;
  wl.seed = seed;
  return generate_websearch_jobs(wl);
}

EngineConfig engine_config() {
  EngineConfig cfg;
  cfg.cores = 4;
  cfg.power_budget = 80.0;
  cfg.record_execution = false;
  return cfg;
}

// Pulls "name value" (unlabeled single-value series) out of Prometheus
// text; fails the test when absent.
double prom_value(const std::string& text, const std::string& series) {
  const std::string needle = "\n" + series + " ";
  const std::size_t pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos) << "series " << series << " missing";
  if (pos == std::string::npos) return -1.0;
  return std::stod(text.substr(pos + needle.size()));
}

TEST(ObsIntegration, EngineHistogramsReconcileExactlyWithRunStats) {
  obs::Registry reg;
  EngineConfig cfg = engine_config();
  cfg.registry = &reg;
  Engine engine(cfg, small_workload(11), make_des_policy());
  const RunResult r = engine.run();
  const RunStats& s = r.stats;
  ASSERT_GT(s.jobs_total, 0u);

  const obs::Histogram* hq = reg.find_histogram("qes_sim_job_quality");
  const obs::Histogram* hl = reg.find_histogram("qes_sim_job_latency_ms");
  ASSERT_NE(hq, nullptr);
  ASSERT_NE(hl, nullptr);
  // Exact reconciliation: one quality observation per job recorded in
  // the same order as the aggregate sum, one latency observation per
  // satisfied job.
  EXPECT_EQ(hq->count(), s.jobs_total);
  EXPECT_EQ(hq->sum(), s.total_quality);  // bitwise
  EXPECT_EQ(hl->count(), s.jobs_satisfied);

  // Outcome counters partition the job population.
  auto outcome = [&](const char* o) {
    const obs::Counter* c =
        reg.find_counter("qes_sim_jobs_total", {{"outcome", o}});
    return c == nullptr ? 0.0 : c->value();
  };
  EXPECT_DOUBLE_EQ(outcome("satisfied"),
                   static_cast<double>(s.jobs_satisfied));
  EXPECT_DOUBLE_EQ(outcome("partial"), static_cast<double>(s.jobs_partial));
  EXPECT_DOUBLE_EQ(outcome("zero"), static_cast<double>(s.jobs_zero));
  EXPECT_DOUBLE_EQ(outcome("satisfied") + outcome("partial") +
                       outcome("zero"),
                   static_cast<double>(s.jobs_total));

  // Gauges carry the run-level figures verbatim.
  EXPECT_DOUBLE_EQ(reg.find_gauge("qes_sim_dynamic_energy_joules")->value(),
                   s.dynamic_energy);
  EXPECT_DOUBLE_EQ(reg.find_gauge("qes_sim_peak_power_watts")->value(),
                   s.peak_power);
  EXPECT_DOUBLE_EQ(reg.find_counter("qes_sim_replans_total")->value(),
                   static_cast<double>(s.replans));
}

TEST(ObsIntegration, PrometheusTextReconcilesWithLegacyJson) {
  // The acceptance check of the PR: a sim run emits Prometheus text
  // whose histogram count/sum agree exactly with the stats_to_json
  // aggregates of the same run.
  obs::Registry reg;
  EngineConfig cfg = engine_config();
  cfg.registry = &reg;
  Engine engine(cfg, small_workload(23), make_des_policy());
  const RunStats s = engine.run().stats;
  const std::string legacy = stats_to_json(s);
  EXPECT_NE(legacy.find("\"jobs_total\""), std::string::npos);

  const std::string prom = reg.to_prometheus();
  EXPECT_DOUBLE_EQ(prom_value(prom, "qes_sim_job_quality_count"),
                   static_cast<double>(s.jobs_total));
  EXPECT_DOUBLE_EQ(prom_value(prom, "qes_sim_job_quality_sum"),
                   s.total_quality);
  EXPECT_DOUBLE_EQ(prom_value(prom, "qes_sim_job_latency_ms_count"),
                   static_cast<double>(s.jobs_satisfied));
  EXPECT_DOUBLE_EQ(prom_value(prom, "qes_sim_quality_total"),
                   s.total_quality);
  EXPECT_DOUBLE_EQ(prom_value(prom, "qes_sim_dynamic_energy_joules"),
                   s.dynamic_energy);
  // The JSON exposition carries the same totals.
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"qes_sim_job_quality\": {\"count\": " +
                      std::to_string(s.jobs_total)),
            std::string::npos)
      << json;
}

TEST(ObsIntegration, EngineTraceTellsAConsistentLifecycleStory) {
  obs::Registry reg;
  obs::TraceRing ring(1u << 18);
  EngineConfig cfg = engine_config();
  cfg.registry = &reg;
  cfg.trace = &ring;
  const std::vector<Job> jobs = small_workload(31);
  Engine engine(cfg, jobs, make_des_policy());
  const RunStats s = engine.run().stats;
  ASSERT_EQ(ring.dropped(), 0u);

  std::size_t releases = 0, finalizes = 0, assigns = 0, replans = 0;
  Time prev_t = 0.0;
  for (const obs::TraceEvent& e : ring.drain()) {
    EXPECT_GE(e.t, prev_t - 1e-9) << "trace must be time-ordered";
    prev_t = e.t;
    switch (e.kind) {
      case obs::TraceEvent::Kind::Release: ++releases; break;
      case obs::TraceEvent::Kind::Finalize: ++finalizes; break;
      case obs::TraceEvent::Kind::Assign: ++assigns; break;
      case obs::TraceEvent::Kind::Replan: ++replans; break;
      case obs::TraceEvent::Kind::Exec:
        EXPECT_GT(e.t1, e.t0);
        EXPECT_GT(e.speed, 0.0);
        EXPECT_GE(e.core, 0);
        EXPECT_LT(e.core, cfg.cores);
        break;
      default: break;
    }
  }
  EXPECT_EQ(releases, jobs.size());
  EXPECT_EQ(finalizes, jobs.size());
  EXPECT_LE(assigns, jobs.size());
  EXPECT_EQ(replans, s.replans);
}

TEST(ObsIntegration, RuntimeLockstepMirrorsUnderQesdPrefix) {
  obs::Registry reg;
  runtime::RuntimeConfig rc;
  rc.cores = 4;
  rc.power_budget = 80.0;
  rc.registry = &reg;
  const std::vector<Job> jobs = small_workload(41);
  const RunStats s = runtime::run_lockstep(rc, jobs);
  ASSERT_EQ(s.jobs_total, jobs.size());

  const obs::Histogram* hq = reg.find_histogram("qesd_job_quality");
  ASSERT_NE(hq, nullptr);
  EXPECT_EQ(hq->count(), s.jobs_total);
  EXPECT_EQ(hq->sum(), s.total_quality);
  EXPECT_EQ(reg.find_histogram("qesd_job_latency_ms")->count(),
            s.jobs_satisfied);
  // The simulator prefix must not appear: the two stacks share the
  // accumulator but never a namespace.
  EXPECT_EQ(reg.find_histogram("qes_sim_job_quality"), nullptr);
}

TEST(ObsIntegration, ServerRegistryCarriesLiveAndFinalInstruments) {
  runtime::ServerConfig sc;
  sc.model.cores = 2;
  sc.model.power_budget = 40.0;
  sc.time_scale = 20.0;
  sc.deadline_ms = 100.0;
  sc.metrics_interval_ms = 20.0;
  obs::TraceRing ring(1u << 16);
  sc.model.trace = &ring;
  runtime::Server server(sc);
  server.start();
  for (int i = 0; i < 50; ++i) {
    runtime::Request r;
    r.demand = 20.0;
    (void)server.submit(r, std::chrono::milliseconds(50));
  }
  const RunStats s = server.drain_and_stop();
  // Repeat call returns the identical cached stats (finish() must only
  // record into the registry once).
  const RunStats again = server.drain_and_stop();
  EXPECT_EQ(again.jobs_total, s.jobs_total);
  EXPECT_EQ(again.total_quality, s.total_quality);

  const obs::Registry& reg = server.registry();
  const obs::Histogram* hq = reg.find_histogram("qesd_job_quality");
  ASSERT_NE(hq, nullptr);
  EXPECT_EQ(hq->count(), s.jobs_total);
  EXPECT_EQ(hq->sum(), s.total_quality);
  // Live server instruments exist alongside the final aggregates.
  EXPECT_NE(reg.find_gauge("qesd_admission_queue_depth"), nullptr);
  EXPECT_NE(reg.find_histogram("qesd_replan_publish_ms"), nullptr);
  EXPECT_NE(reg.find_gauge("qesd_virtual_time_ms"), nullptr);
  // And the trace saw every admitted job released and finalized.
  std::size_t releases = 0, finalizes = 0;
  for (const obs::TraceEvent& e : ring.drain()) {
    if (e.kind == obs::TraceEvent::Kind::Release) ++releases;
    if (e.kind == obs::TraceEvent::Kind::Finalize) ++finalizes;
  }
  EXPECT_EQ(releases, s.jobs_total);
  EXPECT_EQ(finalizes, s.jobs_total);
}

TEST(ObsIntegration, ConformanceStillHoldsWithObsAttached) {
  // Observability must be a pure observer: attaching a registry to the
  // runtime side must not perturb conformance with the simulator.
  obs::Registry reg;
  runtime::RuntimeConfig rc;
  rc.cores = 4;
  rc.power_budget = 80.0;
  rc.registry = &reg;
  const runtime::ConformanceResult r =
      runtime::run_conformance(rc, small_workload(53));
  EXPECT_LE(r.quality_abs_diff(),
            1e-6 * std::max(1.0, r.sim.total_quality));
  EXPECT_LE(r.energy_rel_diff(), 0.05);
}

}  // namespace
}  // namespace qes
