// Engine-level golden test: RunStats must stay BITWISE identical across
// engine-internal refactors (the calendar-queue event core, scratch
// pooling in the replan path, ...). The golden file pins every RunStats
// field of a spread of seed configurations — the fig08-style paper
// setup plus the variant paths (overload, resume, counter-only
// triggers, S-/No-DVFS, discrete levels, big.LITTLE, weighted, eager,
// baselines) — as exact IEEE-754 bit patterns.
//
// Regenerating (ONLY legitimate after an intentional semantic change):
//   $ QES_GOLDEN_DUMP=1 build/tests/sim_engine_golden_test  (redirect
//     stdout to tests/golden/engine_runstats.txt)
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "multicore/baseline_scheduler.hpp"
#include "multicore/des_scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace {

using namespace qes;

struct GoldenCase {
  std::string name;
  RunStats stats;
};

RunStats run_case(EngineConfig cfg, const WorkloadConfig& wl,
                  std::unique_ptr<SchedulingPolicy> policy) {
  cfg.record_execution = false;
  Engine engine(cfg, generate_websearch_jobs(wl), std::move(policy));
  return engine.run().stats;
}

WorkloadConfig wl(double rate, double seconds, std::uint64_t seed) {
  WorkloadConfig w;
  w.arrival_rate = rate;
  w.horizon_ms = seconds * 1000.0;
  w.seed = seed;
  return w;
}

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> out;
  const auto add = [&out](std::string name, RunStats s) {
    out.push_back({std::move(name), s});
  };

  // The paper's §V-B setup (fig08 point: 16 cores, H = 320 W).
  add("paper_h320_r150", run_case(EngineConfig{}, wl(150.0, 20.0, 1),
                                  make_des_policy()));
  {
    // Overload + tight budget: shedding, rigid-discard loop untouched.
    EngineConfig cfg;
    cfg.power_budget = 80.0;
    WorkloadConfig w = wl(260.0, 15.0, 2);
    w.partial_fraction = 0.7;  // mixes rigid jobs into the §V-D loop
    add("overload_h80_r260_rigid30", run_case(cfg, w, make_des_policy()));
  }
  {
    // Resume ablation: baseline-aware Quality-OPT + YDS planning path.
    EngineConfig cfg;
    cfg.resume_passed_jobs = true;
    add("resume_r180", run_case(cfg, wl(180.0, 15.0, 3), make_des_policy()));
  }
  {
    // Counter-only triggers (the 10M-cell coalesced configuration).
    EngineConfig cfg;
    cfg.idle_trigger = false;
    cfg.counter_trigger = 8;
    cfg.quantum_ms = 100.0;
    add("counter_only_r150", run_case(cfg, wl(150.0, 20.0, 4),
                                      make_des_policy()));
  }
  {
    DesOptions d;
    d.arch = Architecture::SDVFS;
    add("sdvfs_r150", run_case(EngineConfig{}, wl(150.0, 15.0, 5),
                               make_des_policy(d)));
  }
  {
    DesOptions d;
    d.arch = Architecture::NoDVFS;
    add("nodvfs_r120", run_case(EngineConfig{}, wl(120.0, 15.0, 6),
                                make_des_policy(d)));
  }
  {
    // Discrete speed levels (§V-F rectification + quantization).
    EngineConfig cfg;
    cfg.max_core_speed = DiscreteSpeedSet::opteron2380().max_speed();
    DesOptions d;
    d.speed_levels = DiscreteSpeedSet::opteron2380();
    add("discrete_r150", run_case(cfg, wl(150.0, 15.0, 7),
                                  make_des_policy(d)));
  }
  {
    // big.LITTLE caps + capacity-aware distribution.
    EngineConfig cfg;
    cfg.per_core_max_speed.assign(16, 3.0);
    for (int i = 0; i < 8; ++i) cfg.per_core_max_speed[i] = 1.2;
    DesOptions d;
    d.capacity_aware_distribution = true;
    add("biglittle_r150", run_case(cfg, wl(150.0, 15.0, 8),
                                   make_des_policy(d)));
  }
  {
    // Service classes: weighted volume allocation.
    WorkloadConfig w = wl(150.0, 15.0, 9);
    w.premium_fraction = 0.2;
    DesOptions d;
    d.weighted = true;
    add("weighted_r150", run_case(EngineConfig{}, w, make_des_policy(d)));
  }
  {
    DesOptions d;
    d.eager_execution = true;
    add("eager_r180", run_case(EngineConfig{}, wl(180.0, 15.0, 10),
                               make_des_policy(d)));
  }
  {
    // Ablations of the distribution + power-split components.
    DesOptions d;
    d.plain_round_robin = true;
    d.static_power = true;
    add("plainrr_static_r200", run_case(EngineConfig{}, wl(200.0, 15.0, 11),
                                        make_des_policy(d)));
  }
  {
    // FCFS baseline with WF power (idle-trigger-driven engine path).
    BaselineOptions b;
    b.power = PowerDistribution::WaterFilling;
    add("fcfs_wf_r150",
        run_case(baseline_engine_config(EngineConfig{}), wl(150.0, 15.0, 12),
                 make_baseline_policy(b)));
  }
  return out;
}

// Every RunStats field as a named double (integers convert exactly).
std::vector<std::pair<std::string, double>> fields(const RunStats& s) {
  return {
      {"total_quality", s.total_quality},
      {"max_quality", s.max_quality},
      {"normalized_quality", s.normalized_quality},
      {"dynamic_energy", s.dynamic_energy},
      {"static_energy", s.static_energy},
      {"peak_power", s.peak_power},
      {"end_time", s.end_time},
      {"jobs_total", static_cast<double>(s.jobs_total)},
      {"jobs_satisfied", static_cast<double>(s.jobs_satisfied)},
      {"jobs_partial", static_cast<double>(s.jobs_partial)},
      {"jobs_zero", static_cast<double>(s.jobs_zero)},
      {"jobs_discarded_rigid", static_cast<double>(s.jobs_discarded_rigid)},
      {"mean_latency", s.mean_latency},
      {"p50_latency", s.p50_latency},
      {"p95_latency", s.p95_latency},
      {"p99_latency", s.p99_latency},
      {"replans", static_cast<double>(s.replans)},
  };
}

std::string hex_bits(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buf;
}

TEST(SimEngineGolden, RunStatsBitwiseStable) {
  const std::vector<GoldenCase> cases = golden_cases();

  if (std::getenv("QES_GOLDEN_DUMP") != nullptr) {
    for (const GoldenCase& c : cases) {
      for (const auto& [field, value] : fields(c.stats)) {
        std::printf("%s %s %s %.17g\n", c.name.c_str(), field.c_str(),
                    hex_bits(value).c_str(), value);
      }
    }
    GTEST_SKIP() << "dump mode: golden table printed to stdout";
  }

  std::ifstream in(QES_GOLDEN_FILE);
  ASSERT_TRUE(in.good()) << "golden file missing: " << QES_GOLDEN_FILE;
  std::map<std::string, std::string> golden;  // "case field" -> hex
  std::string case_name, field, hex, decimal;
  while (in >> case_name >> field >> hex >> decimal) {
    golden[case_name + " " + field] = hex;
  }
  ASSERT_FALSE(golden.empty());

  std::size_t checked = 0;
  for (const GoldenCase& c : cases) {
    for (const auto& [f, value] : fields(c.stats)) {
      const auto it = golden.find(c.name + " " + f);
      ASSERT_NE(it, golden.end())
          << "golden file lacks " << c.name << " " << f
          << " (regenerate with QES_GOLDEN_DUMP=1)";
      EXPECT_EQ(it->second, hex_bits(value))
          << c.name << "." << f << " drifted: golden " << it->second
          << ", got " << hex_bits(value) << " (" << value << ")";
      ++checked;
    }
  }
  EXPECT_EQ(checked, cases.size() * fields(cases[0].stats).size());
}

}  // namespace
