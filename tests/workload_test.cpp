#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "workload/arrival.hpp"
#include "workload/demand.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

namespace qes {
namespace {

TEST(BoundedPareto, PaperMeanIsAbout192) {
  // §V-B: alpha=3, [130, 1000] => mean service demand ~192 units.
  auto d = BoundedPareto::websearch();
  EXPECT_NEAR(d.mean(), 192.0, 1.0);
}

TEST(BoundedPareto, SamplesWithinBounds) {
  auto d = BoundedPareto::websearch();
  Xoshiro256 rng(3);
  for (int i = 0; i < 20000; ++i) {
    const Work w = d.sample(rng);
    EXPECT_GE(w, 130.0);
    EXPECT_LE(w, 1000.0);
  }
}

TEST(BoundedPareto, EmpiricalMeanMatchesAnalytic) {
  auto d = BoundedPareto::websearch();
  Xoshiro256 rng(5);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng);
  EXPECT_NEAR(sum / n, d.mean(), 1.0);
}

TEST(BoundedPareto, HeavierTailWithSmallerAlpha) {
  BoundedPareto light(3.0, 100.0, 1000.0);
  BoundedPareto heavy(1.5, 100.0, 1000.0);
  EXPECT_GT(heavy.mean(), light.mean());
}

TEST(FixedAndUniformDemand, Basics) {
  Xoshiro256 rng(1);
  FixedDemand f(200.0);
  EXPECT_DOUBLE_EQ(f.sample(rng), 200.0);
  EXPECT_DOUBLE_EQ(f.mean(), 200.0);
  UniformDemand u(100.0, 300.0);
  EXPECT_DOUBLE_EQ(u.mean(), 200.0);
  for (int i = 0; i < 1000; ++i) {
    const Work w = u.sample(rng);
    EXPECT_GE(w, 100.0);
    EXPECT_LE(w, 300.0);
  }
}

TEST(PoissonArrivals, CountMatchesRate) {
  PoissonArrivals p(120.0);
  Xoshiro256 rng(7);
  auto arr = generate_arrivals(p, 100'000.0, rng);  // 100 s
  EXPECT_NEAR(static_cast<double>(arr.size()), 12000.0, 350.0);
  for (std::size_t i = 1; i < arr.size(); ++i) {
    EXPECT_GT(arr[i], arr[i - 1]);
  }
}

TEST(UniformArrivals, EvenlySpaced) {
  UniformArrivals p(100.0);
  Xoshiro256 rng(1);
  auto arr = generate_arrivals(p, 1000.0, rng);
  ASSERT_EQ(arr.size(), 99u);  // 10ms spacing, first at 10ms
  EXPECT_NEAR(arr[1] - arr[0], 10.0, 1e-9);
}

TEST(Generator, ProducesDenseIdsAndAgreeableDeadlines) {
  WorkloadConfig cfg;
  cfg.arrival_rate = 150.0;
  cfg.horizon_ms = 20'000.0;
  auto jobs = generate_websearch_jobs(cfg);
  ASSERT_GT(jobs.size(), 1000u);
  EXPECT_TRUE(deadlines_agreeable(jobs));
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(jobs[k].id, k + 1);
    EXPECT_NEAR(jobs[k].deadline - jobs[k].release, 150.0, 1e-9);
    EXPECT_GE(jobs[k].demand, 130.0);
    EXPECT_LE(jobs[k].demand, 1000.0);
    EXPECT_TRUE(jobs[k].partial_ok);
  }
}

TEST(Generator, PartialFractionRespected) {
  WorkloadConfig cfg;
  cfg.arrival_rate = 200.0;
  cfg.horizon_ms = 60'000.0;
  cfg.partial_fraction = 0.5;
  auto jobs = generate_websearch_jobs(cfg);
  std::size_t partial = 0;
  for (const Job& j : jobs) partial += j.partial_ok ? 1 : 0;
  const double frac = static_cast<double>(partial) / static_cast<double>(jobs.size());
  EXPECT_NEAR(frac, 0.5, 0.03);
}

TEST(Generator, SeedReproducibility) {
  WorkloadConfig cfg;
  cfg.horizon_ms = 5'000.0;
  auto a = generate_websearch_jobs(cfg);
  auto b = generate_websearch_jobs(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_DOUBLE_EQ(a[k].release, b[k].release);
    EXPECT_DOUBLE_EQ(a[k].demand, b[k].demand);
  }
  cfg.seed = 2;
  auto c = generate_websearch_jobs(cfg);
  EXPECT_NE(a.size(), c.size());  // overwhelmingly likely
}

TEST(Generator, OfferedLoadMatchesPaperCalibration) {
  // §V-B: lambda=120 on 16 cores at 2 GHz average => ~72% load.
  WorkloadConfig cfg;
  cfg.arrival_rate = 120.0;
  cfg.horizon_ms = 200'000.0;
  auto jobs = generate_websearch_jobs(cfg);
  const double load = offered_load(jobs, cfg.horizon_ms, 16, 2.0);
  EXPECT_NEAR(load, 0.72, 0.03);
}

TEST(Generator, PremiumFractionAssignsWeights) {
  WorkloadConfig cfg;
  cfg.arrival_rate = 200.0;
  cfg.horizon_ms = 30'000.0;
  cfg.premium_fraction = 0.25;
  cfg.premium_weight = 4.0;
  auto jobs = generate_websearch_jobs(cfg);
  std::size_t premium = 0;
  for (const Job& j : jobs) {
    EXPECT_TRUE(j.weight == 1.0 || j.weight == 4.0);
    if (j.weight == 4.0) ++premium;
  }
  const double frac =
      static_cast<double>(premium) / static_cast<double>(jobs.size());
  EXPECT_NEAR(frac, 0.25, 0.03);
}

TEST(Diurnal, RateFollowsSinusoid) {
  DiurnalConfig cfg;
  cfg.base_rate = 100.0;
  cfg.amplitude = 0.5;
  cfg.period_ms = 10'000.0;
  // Trough at t=0, peak at half period.
  EXPECT_NEAR(diurnal_rate(cfg, 0.0), 50.0, 1e-9);
  EXPECT_NEAR(diurnal_rate(cfg, 5'000.0), 150.0, 1e-9);
  EXPECT_NEAR(diurnal_rate(cfg, 2'500.0), 100.0, 1e-9);
}

TEST(Diurnal, CountsTrackTheEnvelope) {
  DiurnalConfig cfg;
  cfg.base_rate = 200.0;
  cfg.amplitude = 0.8;
  cfg.period_ms = 20'000.0;
  cfg.horizon_ms = 200'000.0;  // 10 periods
  auto jobs = generate_diurnal_jobs(cfg);
  EXPECT_TRUE(deadlines_agreeable(jobs));
  // Total count ~ base_rate * horizon.
  EXPECT_NEAR(static_cast<double>(jobs.size()), 200.0 * 200.0,
              0.06 * 200.0 * 200.0);
  // Peak-half vs trough-half counts: with amplitude 0.8 the ratio of
  // expected arrivals (integrated over half-periods) is ~ (1+2*0.8/pi)
  // vs (1-2*0.8/pi) ~ 3.1x.
  std::size_t peak = 0, trough = 0;
  for (const Job& j : jobs) {
    const double phase = std::fmod(j.release, cfg.period_ms) /
                         cfg.period_ms;
    if (phase >= 0.25 && phase < 0.75) {
      ++peak;
    } else {
      ++trough;
    }
  }
  EXPECT_GT(static_cast<double>(peak),
            2.2 * static_cast<double>(trough));
  // Dense ids in arrival order.
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(jobs[k].id, k + 1);
  }
}

TEST(TraceIo, RoundTrip) {
  WorkloadConfig cfg;
  cfg.horizon_ms = 2'000.0;
  cfg.partial_fraction = 0.5;
  auto jobs = generate_websearch_jobs(cfg);
  std::stringstream ss;
  write_job_trace(ss, jobs);
  auto back = read_job_trace(ss);
  ASSERT_EQ(back.size(), jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_EQ(back[k].id, jobs[k].id);
    EXPECT_DOUBLE_EQ(back[k].release, jobs[k].release);
    EXPECT_DOUBLE_EQ(back[k].deadline, jobs[k].deadline);
    EXPECT_DOUBLE_EQ(back[k].demand, jobs[k].demand);
    EXPECT_EQ(back[k].partial_ok, jobs[k].partial_ok);
  }
}

TEST(TraceIo, RoundTripPreservesWeights) {
  WorkloadConfig cfg;
  cfg.horizon_ms = 3'000.0;
  cfg.premium_fraction = 0.4;
  auto jobs = generate_websearch_jobs(cfg);
  std::stringstream ss;
  write_job_trace(ss, jobs);
  auto back = read_job_trace(ss);
  ASSERT_EQ(back.size(), jobs.size());
  bool saw_premium = false;
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    EXPECT_DOUBLE_EQ(back[k].weight, jobs[k].weight);
    if (back[k].weight > 1.5) saw_premium = true;
  }
  EXPECT_TRUE(saw_premium);
}

TEST(TraceIo, ReadsLegacyV1Traces) {
  std::stringstream ss;
  ss << "id,release_ms,deadline_ms,demand_units,partial_ok\n";
  ss << "1,0.0,150.0,192.0,1\n";
  auto jobs = read_job_trace(ss);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_DOUBLE_EQ(jobs[0].weight, 1.0);
  EXPECT_TRUE(jobs[0].partial_ok);
}

TEST(TraceIo, RoundTripsEmptyTrace) {
  std::stringstream ss;
  write_job_trace(ss, std::vector<Job>{});
  const auto back = read_job_trace(ss);
  EXPECT_TRUE(back.empty());
}

TEST(TraceIo, RoundTripsSingleJobExactly) {
  // setprecision(17) must reproduce doubles bit for bit.
  std::vector<Job> jobs = {{.id = 1,
                            .release = 0.1,
                            .deadline = 150.1 + 1e-13,
                            .demand = 192.00000000000003,
                            .partial_ok = false,
                            .weight = 4.0}};
  std::stringstream ss;
  write_job_trace(ss, jobs);
  const auto back = read_job_trace(ss);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].id, 1u);
  EXPECT_EQ(back[0].release, jobs[0].release);
  EXPECT_EQ(back[0].deadline, jobs[0].deadline);
  EXPECT_EQ(back[0].demand, jobs[0].demand);
  EXPECT_FALSE(back[0].partial_ok);
  EXPECT_DOUBLE_EQ(back[0].weight, 4.0);
}

TEST(TraceIo, RoundTripsEqualReleaseTimes) {
  // Simultaneous arrivals (a burst) are legal: agreeable only requires
  // non-decreasing deadlines as ids increase.
  std::vector<Job> jobs = {
      {.id = 1, .release = 10.0, .deadline = 160.0, .demand = 100.0},
      {.id = 2, .release = 10.0, .deadline = 160.0, .demand = 200.0},
      {.id = 3, .release = 10.0, .deadline = 160.0, .demand = 300.0}};
  std::stringstream ss;
  write_job_trace(ss, jobs);
  const auto back = read_job_trace(ss);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(back[k].id, jobs[k].id);
    EXPECT_DOUBLE_EQ(back[k].release, 10.0);
    EXPECT_DOUBLE_EQ(back[k].deadline, 160.0);
    EXPECT_DOUBLE_EQ(back[k].demand, jobs[k].demand);
  }
  EXPECT_TRUE(deadlines_agreeable(back));
}

TEST(TraceIo, RejectsBadHeader) {
  std::stringstream ss("garbage\n1,2,3,4,1\n");
  EXPECT_THROW(read_job_trace(ss), std::runtime_error);
}

TEST(TraceIo, RejectsMalformedRow) {
  std::stringstream ss;
  ss << "id,release_ms,deadline_ms,demand_units,partial_ok\n";
  ss << "1,0.0,150.0\n";
  EXPECT_THROW(read_job_trace(ss), std::runtime_error);
}

}  // namespace
}  // namespace qes
