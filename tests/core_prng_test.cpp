#include "core/prng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace qes {
namespace {

TEST(Prng, Deterministic) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Prng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Prng, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Prng, OpenDoubleNeverZero) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.next_open_double(), 0.0);
  }
}

TEST(Prng, UniformMeanAndBounds) {
  Xoshiro256 rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(10.0, 20.0);
    EXPECT_GE(x, 10.0);
    EXPECT_LT(x, 20.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(Prng, ExponentialMean) {
  Xoshiro256 rng(13);
  const double lambda = 0.25;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(lambda);
  EXPECT_NEAR(sum / n, 1.0 / lambda, 0.05);
}

TEST(Prng, NormalMoments) {
  Xoshiro256 rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Prng, BernoulliFrequency) {
  Xoshiro256 rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Prng, UniformIndexInRange) {
  Xoshiro256 rng(23);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    ++counts[rng.uniform_index(7)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

}  // namespace
}  // namespace qes
