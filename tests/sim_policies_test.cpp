// Integration tests: DES and the baseline policies on short web-search
// workloads, asserting the paper's qualitative results at test scale.
#include <gtest/gtest.h>

#include "multicore/baseline_scheduler.hpp"
#include "multicore/des_scheduler.hpp"
#include "sim/experiment.hpp"

namespace qes {
namespace {

WorkloadConfig short_workload(double rate, double seconds = 20.0) {
  WorkloadConfig wl;
  wl.arrival_rate = rate;
  wl.horizon_ms = seconds * 1000.0;
  return wl;
}

RunStats run_des(double rate, Architecture arch,
                 double seconds = 20.0, std::uint64_t seed = 1) {
  EngineConfig cfg;
  WorkloadConfig wl = short_workload(rate, seconds);
  wl.seed = seed;
  return run_once(cfg, wl, [arch] {
    return make_des_policy({.arch = arch});
  });
}

RunStats run_baseline(double rate, BaselineOrder order, PowerDistribution pd,
                      double seconds = 20.0, std::uint64_t seed = 1) {
  EngineConfig cfg = baseline_engine_config(EngineConfig{});
  WorkloadConfig wl = short_workload(rate, seconds);
  wl.seed = seed;
  return run_once(cfg, wl, [order, pd] {
    return make_baseline_policy({.order = order, .power = pd});
  });
}

TEST(DesPolicy, LightLoadNearFullQuality) {
  auto s = run_des(100.0, Architecture::CDVFS);
  EXPECT_GT(s.normalized_quality, 0.97);
  // Energy well under the budget ceiling H * T.
  const Joules ceiling = 320.0 * s.end_time / 1000.0;
  EXPECT_LT(s.dynamic_energy, 0.85 * ceiling);
}

TEST(DesPolicy, NoDvfsBurnsTheFullBudget) {
  auto s = run_des(100.0, Architecture::NoDVFS);
  // The integral effectively starts at the first arrival (the paper's
  // r_1), so allow for the sub-100ms lead-in before the first replan.
  const Joules ceiling = 320.0 * s.end_time / 1000.0;
  EXPECT_GT(s.dynamic_energy, 0.995 * ceiling);
  EXPECT_LE(s.dynamic_energy, ceiling * (1.0 + 1e-6));
}

TEST(DesPolicy, ArchitectureEnergyOrdering) {
  // Fig. 3(b): E(C-DVFS) <= E(S-DVFS) <= E(No-DVFS) at light load, with
  // real separation between the tiers.
  const auto c = run_des(100.0, Architecture::CDVFS);
  const auto sd = run_des(100.0, Architecture::SDVFS);
  const auto nd = run_des(100.0, Architecture::NoDVFS);
  EXPECT_LT(c.dynamic_energy, sd.dynamic_energy);
  EXPECT_LT(sd.dynamic_energy, 0.9 * nd.dynamic_energy);
}

TEST(DesPolicy, ArchitectureQualityOrdering) {
  // Fig. 3(a): C-DVFS achieves the best quality of the three.
  const auto c = run_des(150.0, Architecture::CDVFS);
  const auto sd = run_des(150.0, Architecture::SDVFS);
  const auto nd = run_des(150.0, Architecture::NoDVFS);
  EXPECT_GE(c.normalized_quality, sd.normalized_quality - 1e-6);
  EXPECT_GE(c.normalized_quality, nd.normalized_quality - 1e-6);
}

TEST(DesPolicy, QualityDecreasesWithLoad) {
  double prev = 2.0;
  for (double rate : {100.0, 180.0, 260.0}) {
    const auto s = run_des(rate, Architecture::CDVFS);
    EXPECT_LT(s.normalized_quality, prev + 0.01);
    prev = s.normalized_quality;
  }
}

TEST(DesPolicy, HeavyLoadSaturatesTheBudget) {
  const auto s = run_des(260.0, Architecture::CDVFS);
  const Joules ceiling = 320.0 * s.end_time / 1000.0;
  // Overloaded: nearly all budget goes to computation.
  EXPECT_GT(s.dynamic_energy, 0.9 * ceiling);
  EXPECT_LT(s.normalized_quality, 0.95);
}

TEST(DesPolicy, BeatsBaselinesOnQuality) {
  // Fig. 5(a) shape at a moderate-heavy load.
  const double rate = 180.0;
  const auto des = run_des(rate, Architecture::CDVFS);
  for (BaselineOrder order :
       {BaselineOrder::FCFS, BaselineOrder::LJF, BaselineOrder::SJF}) {
    const auto b =
        run_baseline(rate, order, PowerDistribution::StaticEqual);
    EXPECT_GT(des.normalized_quality, b.normalized_quality - 0.005)
        << "vs " << to_string(order);
  }
}

TEST(DesPolicy, FcfsBeatsLjfAndSjfOnQuality) {
  // Fig. 5(a): FCFS respects deadline order and wins among baselines.
  const double rate = 200.0;
  const auto f = run_baseline(rate, BaselineOrder::FCFS,
                              PowerDistribution::StaticEqual);
  const auto l = run_baseline(rate, BaselineOrder::LJF,
                              PowerDistribution::StaticEqual);
  const auto s = run_baseline(rate, BaselineOrder::SJF,
                              PowerDistribution::StaticEqual);
  EXPECT_GT(f.normalized_quality, l.normalized_quality);
  EXPECT_GT(f.normalized_quality, s.normalized_quality);
}

TEST(DesPolicy, WaterFillingHelpsBaselinesAtLightLoad) {
  // Fig. 6 vs Fig. 5: WF lifts baseline quality under load variance.
  const double rate = 120.0;
  const auto stat = run_baseline(rate, BaselineOrder::FCFS,
                                 PowerDistribution::StaticEqual);
  const auto wf = run_baseline(rate, BaselineOrder::FCFS,
                               PowerDistribution::WaterFilling);
  EXPECT_GE(wf.normalized_quality, stat.normalized_quality - 1e-4);
}

TEST(DesPolicy, PartialEvaluationRaisesQualityUnderLoad) {
  // Fig. 4(a): more partial-evaluation support => more quality.
  EngineConfig cfg;
  WorkloadConfig wl = short_workload(190.0);
  double prev = -1.0;
  for (double frac : {0.0, 0.5, 1.0}) {
    wl.partial_fraction = frac;
    const auto s =
        run_once(cfg, wl, [] { return make_des_policy(); });
    EXPECT_GT(s.normalized_quality, prev - 0.01) << "frac=" << frac;
    prev = s.normalized_quality;
  }
}

TEST(DesPolicy, MoreConcaveQualityFunctionScoresHigher) {
  // Fig. 7(b): larger c (more concave) => higher normalized quality
  // under overload.
  WorkloadConfig wl = short_workload(220.0);
  double prev = -1.0;
  for (double c : {0.0005, 0.003, 0.009}) {
    EngineConfig cfg;
    cfg.quality = QualityFunction::exponential(c);
    const auto s = run_once(cfg, wl, [] { return make_des_policy(); });
    EXPECT_GT(s.normalized_quality, prev) << "c=" << c;
    prev = s.normalized_quality;
  }
}

TEST(DesPolicy, BiggerBudgetNeverHurts) {
  // Fig. 8: at heavy load, a larger power budget buys quality.
  WorkloadConfig wl = short_workload(220.0);
  EngineConfig lo;
  lo.power_budget = 160.0;
  EngineConfig hi;
  hi.power_budget = 640.0;
  const auto s_lo = run_once(lo, wl, [] { return make_des_policy(); });
  const auto s_hi = run_once(hi, wl, [] { return make_des_policy(); });
  EXPECT_GT(s_hi.normalized_quality, s_lo.normalized_quality + 0.01);
}

TEST(DesPolicy, DiscreteSpeedScalingCostsLittleQuality) {
  // Fig. 10: discrete DES loses only a little quality and does not use
  // more energy than continuous.
  EngineConfig cfg;
  WorkloadConfig wl = short_workload(140.0);
  const auto cont = run_once(cfg, wl, [] { return make_des_policy(); });
  const auto disc = run_once(cfg, wl, [] {
    return make_des_policy(
        {.speed_levels = DiscreteSpeedSet::opteron2380()});
  });
  EXPECT_LE(disc.normalized_quality, cont.normalized_quality + 1e-6);
  EXPECT_GT(disc.normalized_quality, cont.normalized_quality - 0.05);
  EXPECT_LT(disc.dynamic_energy, cont.dynamic_energy * 1.02);
}

TEST(DesPolicy, RigidJobsAreDiscardedWholesale) {
  EngineConfig cfg;
  WorkloadConfig wl = short_workload(230.0);
  wl.partial_fraction = 0.0;  // nothing supports partial evaluation
  const auto s = run_once(cfg, wl, [] { return make_des_policy(); });
  // Under overload some rigid jobs must fail, and every non-satisfied
  // job contributes exactly zero quality.
  EXPECT_GT(s.jobs_discarded_rigid, 0u);
  const auto f = QualityFunction::exponential(0.003);
  (void)f;
  EXPECT_LE(s.total_quality, s.max_quality);
}

TEST(DesPolicy, StaticPowerAblationIsNoBetter) {
  // WF should (weakly) dominate static sharing for DES under load.
  WorkloadConfig wl = short_workload(180.0);
  EngineConfig cfg;
  const auto wf = run_once(cfg, wl, [] { return make_des_policy(); });
  const auto st = run_once(cfg, wl, [] {
    return make_des_policy({.static_power = true});
  });
  EXPECT_GE(wf.normalized_quality, st.normalized_quality - 0.005);
}

TEST(DesPolicy, ResumeAblationRuns) {
  EngineConfig cfg;
  cfg.resume_passed_jobs = true;
  WorkloadConfig wl = short_workload(200.0, 10.0);
  const auto s = run_once(cfg, wl, [] { return make_des_policy(); });
  EXPECT_GT(s.normalized_quality, 0.3);
  EXPECT_LE(s.normalized_quality, 1.0 + 1e-9);
}

TEST(DesPolicy, EagerExecutionTradesEnergyForRobustness) {
  // The eager extension runs granted volumes flat-out: it must never
  // use less energy than stretched DES, and under heavy load it
  // recovers (some of) the myopia cost of stretching.
  WorkloadConfig wl = short_workload(220.0);
  EngineConfig cfg;
  const auto stretch = run_once(cfg, wl, [] { return make_des_policy(); });
  const auto eager = run_once(cfg, wl, [] {
    return make_des_policy({.eager_execution = true});
  });
  EXPECT_GE(eager.dynamic_energy, stretch.dynamic_energy * 0.99);
  EXPECT_GT(eager.normalized_quality, stretch.normalized_quality - 0.01);
  EXPECT_LE(eager.peak_power, 320.0 * (1.0 + 1e-6) + 1e-6);
}

TEST(DesPolicy, RebalanceUnstartedIsRoughlyNeutral) {
  // Re-dealing unstarted jobs every trigger churns placements without
  // using queue-depth information, so it lands within a few percent of
  // plain DES (the ablation's finding: non-migration costs little).
  WorkloadConfig wl = short_workload(200.0);
  EngineConfig cfg;
  const auto plain = run_once(cfg, wl, [] { return make_des_policy(); });
  const auto reb = run_once(cfg, wl, [] {
    return make_des_policy({.rebalance_unstarted = true});
  });
  EXPECT_NEAR(reb.normalized_quality, plain.normalized_quality, 0.04);
  EXPECT_LE(reb.peak_power, 320.0 * (1.0 + 1e-6) + 1e-6);
  EXPECT_EQ(reb.jobs_total, plain.jobs_total);
}

TEST(DesPolicy, WeightedModeProtectsPremiumClass) {
  // 20% of jobs carry weight 4; under overload the weighted planner must
  // give the premium class visibly higher per-job quality than plain DES
  // does, at similar overall throughput.
  WorkloadConfig wl = short_workload(230.0);
  wl.premium_fraction = 0.2;
  EngineConfig cfg;
  auto per_class = [&](const PolicyFactory& factory) {
    EngineConfig c = cfg;
    c.record_execution = false;
    Engine engine(c, generate_websearch_jobs(wl), factory());
    const RunResult run = engine.run();
    double qp = 0.0, np = 0.0, qr = 0.0, nr = 0.0;
    const auto f = QualityFunction::exponential(0.003);
    for (const JobState& st : run.jobs) {
      const double q = f(st.processed) / f(st.job.demand);
      if (st.job.weight > 1.5) {
        qp += q;
        np += 1.0;
      } else {
        qr += q;
        nr += 1.0;
      }
    }
    return std::pair<double, double>(qp / np, qr / nr);
  };
  const auto plain = per_class([] { return make_des_policy(); });
  const auto weighted =
      per_class([] { return make_des_policy({.weighted = true}); });
  // Plain DES is class-blind: both classes get similar quality.
  EXPECT_NEAR(plain.first, plain.second, 0.05);
  // Weighted DES lifts premium markedly above regular.
  EXPECT_GT(weighted.first, weighted.second + 0.05);
  EXPECT_GT(weighted.first, plain.first + 0.03);
}

TEST(DesPolicy, WeightedModeHarmlessWithUniformWeights) {
  // With every weight at 1 the weighted planner matches plain DES
  // closely (identical allocations up to numerical tolerance).
  WorkloadConfig wl = short_workload(180.0, 10.0);
  EngineConfig cfg;
  const auto plain = run_once(cfg, wl, [] { return make_des_policy(); });
  const auto weighted =
      run_once(cfg, wl, [] { return make_des_policy({.weighted = true}); });
  EXPECT_NEAR(weighted.normalized_quality, plain.normalized_quality, 0.02);
  EXPECT_LE(weighted.peak_power, 320.0 * (1.0 + 1e-6) + 1e-6);
}

TEST(DesPolicy, HeterogeneousCoreCapsRespected) {
  // big.LITTLE: 8 fast cores (3 GHz) + 8 slow cores (1 GHz). Every plan
  // segment must respect its core's cap (the engine asserts it), and the
  // run must stay healthy.
  EngineConfig cfg;
  cfg.per_core_max_speed.assign(8, 3.0);
  cfg.per_core_max_speed.insert(cfg.per_core_max_speed.end(), 8, 1.0);
  WorkloadConfig wl = short_workload(150.0);
  const auto s = run_once(cfg, wl, [] { return make_des_policy(); });
  EXPECT_GT(s.normalized_quality, 0.7);
  EXPECT_LE(s.peak_power, 320.0 * (1.0 + 1e-6) + 1e-6);
  EXPECT_EQ(s.jobs_total, s.jobs_satisfied + s.jobs_partial + s.jobs_zero);
  // Baselines handle heterogeneity too.
  const EngineConfig bcfg = baseline_engine_config(cfg);
  WorkloadConfig bwl = short_workload(120.0, 10.0);
  const auto b = run_once(bcfg, bwl, [] {
    return make_baseline_policy({.power = PowerDistribution::WaterFilling});
  });
  EXPECT_GT(b.normalized_quality, 0.5);
}

TEST(DesPolicy, WaterFillingShinesOnHeterogeneousCores) {
  // With static power sharing, slow cores cannot spend their 20 W share
  // (1 GHz needs only 5 W); WF reroutes the surplus to the fast cores.
  EngineConfig cfg;
  cfg.per_core_max_speed.assign(8, 3.0);
  cfg.per_core_max_speed.insert(cfg.per_core_max_speed.end(), 8, 1.0);
  WorkloadConfig wl = short_workload(170.0);
  const auto wf = run_once(cfg, wl, [] { return make_des_policy(); });
  const auto st = run_once(cfg, wl, [] {
    return make_des_policy({.static_power = true});
  });
  EXPECT_GT(wf.normalized_quality, st.normalized_quality + 0.01);
}

TEST(DesPolicy, CapacityAwareDealingRescuesBigLittle) {
  EngineConfig cfg;
  cfg.per_core_max_speed.assign(8, 3.0);
  cfg.per_core_max_speed.insert(cfg.per_core_max_speed.end(), 8, 1.0);
  WorkloadConfig wl = short_workload(150.0);
  const auto blind = run_once(cfg, wl, [] { return make_des_policy(); });
  const auto aware = run_once(cfg, wl, [] {
    return make_des_policy({.capacity_aware_distribution = true});
  });
  EXPECT_GT(aware.normalized_quality, blind.normalized_quality + 0.02);
  EXPECT_LE(aware.peak_power, 320.0 * (1.0 + 1e-6) + 1e-6);
}

TEST(Baselines, SjfDiscardsLongJobsUnderLoad) {
  // §V-E: SJF starves long jobs; its zero-volume count exceeds FCFS's.
  const double rate = 220.0;
  const auto f = run_baseline(rate, BaselineOrder::FCFS,
                              PowerDistribution::StaticEqual);
  const auto s = run_baseline(rate, BaselineOrder::SJF,
                              PowerDistribution::StaticEqual);
  EXPECT_GT(s.jobs_zero, f.jobs_zero);
}

TEST(Baselines, AllPoliciesRespectBudgetAndNormalization) {
  for (BaselineOrder order :
       {BaselineOrder::FCFS, BaselineOrder::LJF, BaselineOrder::SJF}) {
    for (PowerDistribution pd : {PowerDistribution::StaticEqual,
                                 PowerDistribution::WaterFilling}) {
      const auto s = run_baseline(160.0, order, pd, 10.0);
      EXPECT_LE(s.peak_power, 320.0 * (1.0 + 1e-6) + 1e-6);
      EXPECT_GE(s.normalized_quality, 0.0);
      EXPECT_LE(s.normalized_quality, 1.0 + 1e-9);
      EXPECT_EQ(s.jobs_total,
                s.jobs_satisfied + s.jobs_partial + s.jobs_zero);
    }
  }
}

TEST(Experiment, ThroughputAtQualityInterpolates) {
  std::vector<SweepPoint> sweep(3);
  sweep[0].arrival_rate = 100.0;
  sweep[0].stats.normalized_quality = 0.99;
  sweep[1].arrival_rate = 150.0;
  sweep[1].stats.normalized_quality = 0.95;
  sweep[2].arrival_rate = 200.0;
  sweep[2].stats.normalized_quality = 0.85;
  // Crossing 0.9 between 150 and 200: 150 + 50 * (0.05/0.10) = 175.
  EXPECT_NEAR(throughput_at_quality(sweep, 0.9), 175.0, 1e-9);
  EXPECT_NEAR(throughput_at_quality(sweep, 0.80), 200.0, 1e-9);
  EXPECT_NEAR(throughput_at_quality(sweep, 0.995), 0.0, 1e-9);
}

TEST(Experiment, AverageStatsAveragesQualityAndEnergy) {
  RunStats a, b;
  a.normalized_quality = 0.8;
  b.normalized_quality = 1.0;
  a.dynamic_energy = 100.0;
  b.dynamic_energy = 200.0;
  a.jobs_total = 10;
  b.jobs_total = 20;
  std::vector<RunStats> runs = {a, b};
  const auto avg = average_stats(runs);
  EXPECT_NEAR(avg.normalized_quality, 0.9, 1e-12);
  EXPECT_NEAR(avg.dynamic_energy, 150.0, 1e-12);
  EXPECT_EQ(avg.jobs_total, 30u);
}

TEST(Experiment, SeedAveragingIsDeterministic) {
  EngineConfig cfg;
  WorkloadConfig wl = short_workload(120.0, 5.0);
  const auto a =
      run_averaged(cfg, wl, [] { return make_des_policy(); }, 2);
  const auto b =
      run_averaged(cfg, wl, [] { return make_des_policy(); }, 2);
  EXPECT_DOUBLE_EQ(a.normalized_quality, b.normalized_quality);
  EXPECT_DOUBLE_EQ(a.dynamic_energy, b.dynamic_energy);
}

TEST(Experiment, ReplicatedStatsSpread) {
  EngineConfig cfg;
  WorkloadConfig wl = short_workload(140.0, 5.0);
  const auto r = run_replicated(cfg, wl, [] { return make_des_policy(); },
                                4);
  EXPECT_EQ(r.replicates, 4);
  EXPECT_GT(r.quality_stddev, 0.0);       // seeds differ
  EXPECT_LT(r.quality_stddev, 0.05);      // but not wildly
  EXPECT_GT(r.energy_stddev, 0.0);
  EXPECT_GT(r.quality_ci95(), 0.0);
  EXPECT_LT(r.quality_ci95(), r.quality_stddev * 1.96);
  // Mean matches run_averaged on the same seeds.
  const auto avg = run_averaged(cfg, wl, [] { return make_des_policy(); },
                                4);
  EXPECT_DOUBLE_EQ(r.mean.normalized_quality, avg.normalized_quality);
}

TEST(Metrics, LexicographicOrder) {
  EXPECT_TRUE(lex_better({0.9, 100.0}, {0.8, 50.0}));   // quality wins
  EXPECT_FALSE(lex_better({0.8, 50.0}, {0.9, 100.0}));
  EXPECT_TRUE(lex_better({0.9, 50.0}, {0.9, 100.0}));   // energy breaks tie
  EXPECT_FALSE(lex_better({0.9, 100.0}, {0.9, 100.0}));
  // Tolerance: 1e-12 quality difference counts as a tie.
  EXPECT_TRUE(lex_better({0.9 + 1e-13, 50.0}, {0.9, 100.0}, 1e-12));
}

}  // namespace
}  // namespace qes
