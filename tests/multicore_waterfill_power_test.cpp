#include "policy/power_waterfill.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/prng.hpp"

namespace qes {
namespace {

TEST(PowerWaterfill, PaperFigure2Shape) {
  // Fig. 2: core 4 requests less than the equal share and gets exactly
  // its demand; cores 1-3 split the rest equally.
  std::vector<Watts> req = {120.0, 100.0, 90.0, 10.0};
  auto a = waterfill_power(req, 100.0);
  EXPECT_NEAR(a[3], 10.0, 1e-9);
  EXPECT_NEAR(a[0], 30.0, 1e-9);
  EXPECT_NEAR(a[1], 30.0, 1e-9);
  EXPECT_NEAR(a[2], 30.0, 1e-9);
}

TEST(PowerWaterfill, AmpleBudgetGivesEveryoneTheirRequest) {
  std::vector<Watts> req = {20.0, 30.0, 10.0};
  auto a = waterfill_power(req, 320.0);
  EXPECT_NEAR(a[0], 20.0, 1e-9);
  EXPECT_NEAR(a[1], 30.0, 1e-9);
  EXPECT_NEAR(a[2], 10.0, 1e-9);
}

TEST(PowerWaterfill, EqualRequestsSplitEqually) {
  std::vector<Watts> req(16, 100.0);
  auto a = waterfill_power(req, 320.0);
  for (Watts w : a) EXPECT_NEAR(w, 20.0, 1e-9);
}

TEST(PowerWaterfill, ZeroRequestGetsNothing) {
  std::vector<Watts> req = {0.0, 50.0};
  auto a = waterfill_power(req, 20.0);
  EXPECT_NEAR(a[0], 0.0, 1e-9);
  EXPECT_NEAR(a[1], 20.0, 1e-9);
}

TEST(PowerWaterfill, EmptyInput) {
  std::vector<Watts> req;
  auto a = waterfill_power(req, 100.0);
  EXPECT_TRUE(a.empty());
}

class PowerWaterfillPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PowerWaterfillPropertyTest, ConservationAndCapRespect) {
  Xoshiro256 rng(GetParam());
  for (int rep = 0; rep < 100; ++rep) {
    const std::size_t m = 1 + rng.uniform_index(32);
    std::vector<Watts> req;
    Watts total_req = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      req.push_back(rng.bernoulli(0.2) ? 0.0 : rng.uniform(0.0, 100.0));
      total_req += req.back();
    }
    const Watts H = rng.uniform(0.0, 150.0 * static_cast<double>(m) / 4.0);
    auto a = waterfill_power(req, H);
    Watts sum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_GE(a[i], -1e-9);
      EXPECT_LE(a[i], req[i] + 1e-6);
      sum += a[i];
    }
    EXPECT_NEAR(sum, std::min(H, total_req), 1e-5);
  }
}

TEST_P(PowerWaterfillPropertyTest, MaxMinFairness) {
  // Any core receiving less than its request must receive at least as
  // much as every other core (the water level property).
  Xoshiro256 rng(GetParam() ^ 0xAAULL);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t m = 2 + rng.uniform_index(16);
    std::vector<Watts> req;
    for (std::size_t i = 0; i < m; ++i) req.push_back(rng.uniform(1.0, 80.0));
    const Watts H = rng.uniform(10.0, 40.0 * static_cast<double>(m) / 2.0);
    auto a = waterfill_power(req, H);
    for (std::size_t i = 0; i < m; ++i) {
      if (a[i] < req[i] - 1e-6) {
        for (std::size_t j = 0; j < m; ++j) {
          EXPECT_GE(a[i], a[j] - 1e-6)
              << "unsatisfied core " << i << " got less than core " << j;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerWaterfillPropertyTest,
                         ::testing::Values(1u, 2u, 3u));

TEST(RectifySpeeds, SnapsUpWhenBudgetAllows) {
  PowerModel pm = default_power_model();
  auto levels = DiscreteSpeedSet::opteron2380();
  // One core at 1.5 GHz (11.25 W), budget 20 W: snapping to 1.8 costs
  // 16.2 W <= 20 -> up.
  std::vector<Speed> cont = {1.5};
  auto r = rectify_speeds_discrete(cont, 20.0, levels, pm);
  ASSERT_TRUE(r[0].has_value());
  EXPECT_DOUBLE_EQ(*r[0], 1.8);
}

TEST(RectifySpeeds, FallsBackDownWhenBudgetTight) {
  PowerModel pm = default_power_model();
  auto levels = DiscreteSpeedSet::opteron2380();
  std::vector<Speed> cont = {1.5};
  // 1.8 GHz needs 16.2 W; only 12 W available -> 1.3 GHz (8.45 W).
  auto r = rectify_speeds_discrete(cont, 12.0, levels, pm);
  ASSERT_TRUE(r[0].has_value());
  EXPECT_DOUBLE_EQ(*r[0], 1.3);
}

TEST(RectifySpeeds, IdleCoreStaysIdle) {
  PowerModel pm = default_power_model();
  auto levels = DiscreteSpeedSet::opteron2380();
  std::vector<Speed> cont = {0.0, 2.0};
  auto r = rectify_speeds_discrete(cont, 320.0, levels, pm);
  EXPECT_FALSE(r[0].has_value());
  ASSERT_TRUE(r[1].has_value());
  EXPECT_DOUBLE_EQ(*r[1], 2.5);
}

TEST(RectifySpeeds, TotalPowerNeverExceedsBudget) {
  PowerModel pm = default_power_model();
  auto levels = DiscreteSpeedSet::opteron2380();
  Xoshiro256 rng(17);
  for (int rep = 0; rep < 100; ++rep) {
    const std::size_t m = 1 + rng.uniform_index(16);
    const Watts H = rng.uniform(20.0, 400.0);
    // Continuous speeds from a WF assignment: scale requests into H.
    std::vector<Watts> req;
    for (std::size_t i = 0; i < m; ++i) req.push_back(rng.uniform(0.0, 40.0));
    auto assigned = waterfill_power(req, H);
    std::vector<Speed> cont;
    for (Watts w : assigned) cont.push_back(pm.speed_for_power(w));
    auto r = rectify_speeds_discrete(cont, H, levels, pm);
    Watts total = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (r[i]) total += pm.dynamic_power(*r[i]);
    }
    EXPECT_LE(total, H + 1e-5);
  }
}

TEST(RectifySpeeds, LowestAssignedCoreRectifiedFirst) {
  PowerModel pm = default_power_model();
  auto levels = DiscreteSpeedSet::opteron2380();
  // Two cores at 1.5 GHz each (11.25 W each), budget 28.65 W: slack is
  // 6.15 W; snapping one core up to 1.8 costs 4.95 extra. The LOWER core
  // is processed first; with equal speeds the first in sort order wins,
  // leaving only 1.2 W slack so the second drops to 1.3.
  std::vector<Speed> cont = {1.5, 1.5};
  auto r = rectify_speeds_discrete(cont, 28.65, levels, pm);
  ASSERT_TRUE(r[0] && r[1]);
  EXPECT_DOUBLE_EQ(*r[0], 1.8);
  EXPECT_DOUBLE_EQ(*r[1], 1.3);
}

}  // namespace
}  // namespace qes
