// Randomized stress test: the engine plus every policy variant must
// uphold the global invariants on arbitrary (valid) configurations.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "core/prng.hpp"
#include "multicore/baseline_scheduler.hpp"
#include "multicore/des_scheduler.hpp"
#include "obs/registry.hpp"
#include "scenario/runner.hpp"
#include "scenario/spec.hpp"
#include "sim/experiment.hpp"

namespace qes {
namespace {

struct FuzzCase {
  EngineConfig cfg;
  WorkloadConfig wl;
  PolicyFactory factory;
  std::string label;
};

FuzzCase random_case(Xoshiro256& rng) {
  FuzzCase fc;
  fc.cfg.cores = 1 + static_cast<int>(rng.uniform_index(24));
  fc.cfg.power_budget = rng.uniform(5.0, 40.0) * fc.cfg.cores;
  fc.cfg.quantum_ms = rng.bernoulli(0.8) ? rng.uniform(100.0, 1000.0) : 0.0;
  fc.cfg.counter_trigger =
      rng.bernoulli(0.8) ? 1 + static_cast<int>(rng.uniform_index(16)) : 0;
  fc.cfg.quality = QualityFunction::exponential(rng.uniform(0.0005, 0.02));
  fc.cfg.resume_passed_jobs = rng.bernoulli(0.2);

  fc.wl.arrival_rate = rng.uniform(5.0, 18.0) * fc.cfg.cores;
  fc.wl.horizon_ms = 4'000.0;
  fc.wl.deadline_ms = rng.uniform(60.0, 400.0);
  fc.wl.partial_fraction = rng.uniform(0.0, 1.0);
  fc.wl.seed = rng.next_u64();

  const int kind = static_cast<int>(rng.uniform_index(6));
  switch (kind) {
    case 0: {
      DesOptions d;
      d.arch = Architecture::CDVFS;
      fc.factory = [d] { return make_des_policy(d); };
      fc.label = "des-cdvfs";
      break;
    }
    case 1: {
      DesOptions d;
      d.arch = rng.bernoulli(0.5) ? Architecture::SDVFS
                                  : Architecture::NoDVFS;
      fc.factory = [d] { return make_des_policy(d); };
      fc.label = "des-fixed-arch";
      break;
    }
    case 2: {
      DesOptions d;
      d.speed_levels = DiscreteSpeedSet::opteron2380();
      fc.cfg.max_core_speed = 2.5;
      fc.factory = [d] { return make_des_policy(d); };
      fc.label = "des-discrete";
      break;
    }
    case 3: {
      DesOptions d;
      d.eager_execution = rng.bernoulli(0.5);
      d.rebalance_unstarted = rng.bernoulli(0.5);
      d.static_power = rng.bernoulli(0.5);
      fc.factory = [d] { return make_des_policy(d); };
      fc.label = "des-variants";
      break;
    }
    default: {
      BaselineOptions b;
      b.order = kind == 4 ? BaselineOrder::FCFS
                          : (rng.bernoulli(0.5) ? BaselineOrder::LJF
                                                : BaselineOrder::SJF);
      b.power = rng.bernoulli(0.5) ? PowerDistribution::WaterFilling
                                   : PowerDistribution::StaticEqual;
      fc.cfg = baseline_engine_config(fc.cfg);
      fc.cfg.resume_passed_jobs = false;
      fc.factory = [b] { return make_baseline_policy(b); };
      fc.label = "baseline";
      break;
    }
  }
  return fc;
}

class EngineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzzTest, InvariantsHoldOnRandomConfigurations) {
  Xoshiro256 rng(GetParam());
  for (int rep = 0; rep < 8; ++rep) {
    FuzzCase fc = random_case(rng);
    SCOPED_TRACE(fc.label);
    obs::Registry reg;
    fc.cfg.registry = &reg;
    const RunStats s = run_once(fc.cfg, fc.wl, fc.factory);
    // Quality bounded and jobs conserved.
    EXPECT_GE(s.normalized_quality, 0.0);
    EXPECT_LE(s.normalized_quality, 1.0 + 1e-9);
    EXPECT_EQ(s.jobs_total,
              s.jobs_satisfied + s.jobs_partial + s.jobs_zero);
    // Power cap respected instant by instant, hence on average too.
    EXPECT_LE(s.peak_power, fc.cfg.power_budget * (1.0 + 1e-6) + 1e-6);
    EXPECT_LE(s.dynamic_energy,
              fc.cfg.power_budget * s.end_time / 1000.0 * (1.0 + 1e-6) +
                  1e-6);
    EXPECT_GE(s.dynamic_energy, 0.0);
    // Something actually happened.
    EXPECT_GT(s.jobs_total, 0u);
    EXPECT_GT(s.replans, 0u);
    // The mirrored obs instruments reconcile exactly with the run's
    // aggregates on every random configuration, not just happy paths.
    const obs::Histogram* hq = reg.find_histogram("qes_sim_job_quality");
    const obs::Histogram* hl = reg.find_histogram("qes_sim_job_latency_ms");
    ASSERT_NE(hq, nullptr);
    ASSERT_NE(hl, nullptr);
    EXPECT_EQ(hq->count(), s.jobs_total);
    EXPECT_EQ(hq->sum(), s.total_quality);  // bitwise: same order
    EXPECT_EQ(hl->count(), s.jobs_satisfied);
    auto outcome = [&](const char* o) {
      const obs::Counter* c =
          reg.find_counter("qes_sim_jobs_total", {{"outcome", o}});
      return c == nullptr ? 0.0 : c->value();
    };
    EXPECT_DOUBLE_EQ(outcome("satisfied") + outcome("partial") +
                         outcome("zero"),
                     static_cast<double>(s.jobs_total));
    EXPECT_DOUBLE_EQ(reg.find_counter("qes_sim_replans_total")->value(),
                     static_cast<double>(s.replans));
  }
}

TEST_P(EngineFuzzTest, DeterministicAcrossRepeatedRuns) {
  Xoshiro256 rng(GetParam() ^ 0xD5ULL);
  const FuzzCase fc = random_case(rng);
  const RunStats a = run_once(fc.cfg, fc.wl, fc.factory);
  const RunStats b = run_once(fc.cfg, fc.wl, fc.factory);
  EXPECT_DOUBLE_EQ(a.normalized_quality, b.normalized_quality);
  EXPECT_DOUBLE_EQ(a.dynamic_energy, b.dynamic_energy);
  EXPECT_EQ(a.replans, b.replans);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         ::testing::Values(1001u, 1002u, 1003u, 1004u,
                                           1005u, 1006u));

// Seed-corpus replay: every spec under tests/corpus/ runs through the
// scenario runner (the same path `qes_scenarios --replay <spec>`
// takes), so a corpus member that once crashed the engine or tripped an
// invariant stays pinned forever. Specs that fail validation are
// expected corpus members too — the parser rejecting them cleanly IS
// the covered behavior.
TEST(CorpusReplay, EveryCorpusSpecRunsOrRejectsCleanly) {
  namespace fs = std::filesystem;
  std::size_t ran = 0;
  std::size_t rejected = 0;
  for (const fs::directory_entry& e :
       fs::directory_iterator(QES_CORPUS_DIR)) {
    if (e.path().extension() != ".json") continue;
    SCOPED_TRACE(e.path().string());
    try {
      const scenario::ScenarioSpec spec =
          scenario::load_scenario_file(e.path().string());
      const scenario::ScenarioOutcome out = scenario::run_scenario(spec);
      EXPECT_GT(out.jobs, 0u);
      EXPECT_GT(out.norm_quality, 0.0);
      ++ran;
    } catch (const std::invalid_argument&) {
      ++rejected;  // malformed-by-design corpus member
    }
  }
  EXPECT_GE(ran, 4u);
  EXPECT_GE(rejected, 1u);
}

}  // namespace
}  // namespace qes
