// Unit tests of the cluster front-end routing policies. All three must
// skip unroutable nodes (+inf depth), return -1 only when every node is
// unroutable, and be deterministic given (depth vector, internal state).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "cluster/dispatch.hpp"

namespace qes::cluster {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(DispatchPolicyNames, ParseRoundTrip) {
  for (const DispatchPolicy p : {DispatchPolicy::CRR, DispatchPolicy::JSQ,
                                 DispatchPolicy::PowerOfTwo}) {
    const auto parsed = parse_dispatch_policy(dispatch_policy_name(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(parse_dispatch_policy("round-robin").has_value());
  EXPECT_FALSE(parse_dispatch_policy("").has_value());
}

TEST(CrrDispatch, DealsCyclicallyWithPersistentCursor) {
  Dispatcher d(3, DispatchPolicy::CRR);
  const std::vector<double> depths{5.0, 0.0, 2.0};  // depths are ignored
  EXPECT_EQ(d.route(depths), 0);
  EXPECT_EQ(d.route(depths), 1);
  EXPECT_EQ(d.route(depths), 2);
  EXPECT_EQ(d.route(depths), 0);  // cursor survives the wrap
}

TEST(CrrDispatch, SkipsUnroutableNodes) {
  Dispatcher d(3, DispatchPolicy::CRR);
  const std::vector<double> depths{1.0, kInf, 1.0};
  EXPECT_EQ(d.route(depths), 0);
  EXPECT_EQ(d.route(depths), 2);
  EXPECT_EQ(d.route(depths), 0);
}

TEST(CrrDispatch, AllUnroutableReturnsMinusOne) {
  Dispatcher d(2, DispatchPolicy::CRR);
  const std::vector<double> depths{kInf, kInf};
  EXPECT_EQ(d.route(depths), -1);
  // The dead interval must not desynchronize the cursor permanently.
  EXPECT_EQ(d.route({{1.0, 1.0}}), 0);
}

TEST(JsqDispatch, PicksShallowestTieToLowestIndex) {
  Dispatcher d(4, DispatchPolicy::JSQ);
  EXPECT_EQ(d.route({{3.0, 1.0, 2.0, 1.0}}), 1);  // tie 1 vs 3 -> 1
  EXPECT_EQ(d.route({{0.0, 0.0, 0.0, 0.0}}), 0);
  EXPECT_EQ(d.route({{kInf, 9.0, kInf, 2.0}}), 3);
  EXPECT_EQ(d.route({{kInf, kInf, kInf, kInf}}), -1);
}

TEST(P2cDispatch, SingleLiveNodeAndAllDead) {
  Dispatcher d(3, DispatchPolicy::PowerOfTwo, /*seed=*/42);
  EXPECT_EQ(d.route({{kInf, 4.0, kInf}}), 1);
  EXPECT_EQ(d.route({{kInf, kInf, kInf}}), -1);
}

TEST(P2cDispatch, NeverRoutesToUnroutableAndIsSeedDeterministic) {
  Dispatcher a(8, DispatchPolicy::PowerOfTwo, 7);
  Dispatcher b(8, DispatchPolicy::PowerOfTwo, 7);
  std::vector<double> depths{1.0, 2.0, kInf, 0.0, 5.0, kInf, 3.0, 4.0};
  for (int i = 0; i < 1000; ++i) {
    const int ra = a.route(depths);
    EXPECT_EQ(ra, b.route(depths));
    ASSERT_GE(ra, 0);
    EXPECT_TRUE(std::isfinite(depths[static_cast<std::size_t>(ra)]));
  }
}

TEST(P2cDispatch, PrefersShallowerOfTheTwoSamples) {
  // With exactly two live nodes, every draw compares the same pair, so
  // the shallower one must win every time.
  Dispatcher d(2, DispatchPolicy::PowerOfTwo, 3);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(d.route({{9.0, 1.0}}), 1);
  }
}

TEST(P2cDispatch, SpreadsLoadAcrossShallowNodes) {
  // Two shallow nodes (0, 1), two deep ones (2, 3). Both shallow nodes
  // must receive traffic (the sampler randomizes which pair it draws),
  // and node 3 can never win: any pair containing it either holds a
  // shallower node or ties with node 2 (ties break to the lower index).
  Dispatcher d(4, DispatchPolicy::PowerOfTwo, 11);
  std::vector<int> hits(4, 0);
  const std::vector<double> depths{1.0, 1.0, 9.0, 9.0};
  for (int i = 0; i < 4000; ++i) {
    ++hits[static_cast<std::size_t>(d.route(depths))];
  }
  EXPECT_GT(hits[0], 500);
  EXPECT_GT(hits[1], 500);
  EXPECT_EQ(hits[3], 0);
}

}  // namespace
}  // namespace qes::cluster
