// End-to-end loopback: the open-loop load generator drives a real
// runtime server over the wire, and the generator's client-side ledger
// must reconcile exactly with the server's final run statistics —
// nothing lost, nothing double-counted, quality sums equal.
#include <gtest/gtest.h>

#include <cmath>

#include "net/loadgen.hpp"
#include "runtime/server.hpp"

namespace qes {
namespace {

TEST(NetLoadgenE2E, ClientLedgerReconcilesWithServerStats) {
  runtime::ServerConfig sc;
  sc.model.cores = 8;
  sc.model.power_budget = 160.0;
  sc.time_scale = 20.0;
  sc.deadline_ms = 150.0;
  sc.listen_port = 0;
  sc.ingress_workers = 2;
  runtime::Server server(sc);
  server.start();
  ASSERT_GT(server.listen_port(), 0);

  net::LoadgenConfig lg;
  lg.port = server.listen_port();
  lg.rate = 1500.0;
  lg.duration_s = 1.0;
  lg.connections = 4;
  lg.arrival = net::ArrivalKind::kPoisson;
  lg.seed = 11;
  const net::LoadgenReport rep = net::run_loadgen(lg);

  const RunStats stats = server.drain_and_stop();

  // The wire contract: exactly one REPLY per SUBMIT.
  EXPECT_GT(rep.submitted, 0u);
  EXPECT_EQ(rep.lost, 0u);
  EXPECT_EQ(rep.replies, rep.submitted);
  EXPECT_EQ(rep.satisfied + rep.partial + rep.shed, rep.replies);

  // Client-side outcome counts == server-side accounting.
  EXPECT_EQ(rep.replies - rep.shed, stats.jobs_total);
  EXPECT_EQ(rep.shed, server.shed());
  EXPECT_EQ(rep.satisfied, stats.jobs_satisfied);
  // The REPLY frames carry the finalized quality; summed client-side
  // they reproduce the server's total (floating-point sum order aside).
  EXPECT_NEAR(rep.quality_sum, stats.total_quality,
              1e-6 * std::max(1.0, stats.total_quality));

  // Every reply latency was recorded against its scheduled send time.
  EXPECT_EQ(rep.latency.count, rep.replies);
  EXPECT_GE(rep.latency.max, 0.0);

  // The report serializes (consumed by scripts/record_bench.sh).
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"submitted\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(NetLoadgenE2E, MmppArrivalsDriveTheSameContract) {
  runtime::ServerConfig sc;
  sc.model.cores = 8;
  sc.model.power_budget = 160.0;
  sc.time_scale = 20.0;
  sc.listen_port = 0;
  sc.ingress_workers = 1;
  runtime::Server server(sc);
  server.start();

  net::LoadgenConfig lg;
  lg.port = server.listen_port();
  lg.rate = 800.0;
  lg.duration_s = 0.5;
  lg.connections = 2;
  lg.arrival = net::ArrivalKind::kMmpp;
  lg.mmpp_burst = 6.0;
  lg.mmpp_switch_hz = 4.0;
  lg.seed = 23;
  const net::LoadgenReport rep = net::run_loadgen(lg);
  const RunStats stats = server.drain_and_stop();

  EXPECT_GT(rep.submitted, 0u);
  EXPECT_EQ(rep.lost, 0u);
  EXPECT_EQ(rep.replies, rep.submitted);
  EXPECT_EQ(rep.replies - rep.shed, stats.jobs_total);
}

}  // namespace
}  // namespace qes
