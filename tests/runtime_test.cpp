// Tests for the qesd runtime building blocks (virtual clock, admission
// queue) and the live multi-threaded server. The live tests run
// time-dilated so a 30-virtual-second serve finishes in ~2 wall seconds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/prng.hpp"
#include "runtime/clock.hpp"
#include "runtime/mpmc_queue.hpp"
#include "runtime/server.hpp"
#include "workload/demand.hpp"

namespace qes::runtime {
namespace {

using std::chrono::milliseconds;

TEST(VirtualClock, AdvancesAtScale) {
  VirtualClock clock(50.0);
  std::this_thread::sleep_for(milliseconds(20));
  const Time t = clock.now();
  // 20 wall ms at scale 50 = 1000 virtual ms; allow generous scheduling
  // slack but require clear dilation.
  EXPECT_GE(t, 500.0);
  EXPECT_GT(clock.now(), t - 1e-9);  // monotone
  EXPECT_DOUBLE_EQ(clock.scale(), 50.0);
}

TEST(VirtualClock, WallDeadlineInvertsNow) {
  VirtualClock clock(8.0);
  const Time target = clock.now() + 400.0;  // 50 wall ms ahead
  std::this_thread::sleep_until(clock.wall_deadline(target));
  EXPECT_GE(clock.now(), target - 1.0);
}

TEST(BoundedMpmcQueue, FifoAndCapacity) {
  BoundedMpmcQueue<int> q(2);
  EXPECT_EQ(q.capacity(), 2u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_FALSE(q.push(3, milliseconds(1)));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedMpmcQueue, DrainAppendsInOrder) {
  BoundedMpmcQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  std::vector<int> out{-1};
  q.drain(out);
  ASSERT_EQ(out.size(), 6u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i) + 1], i);
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedMpmcQueue, CloseFailsPushesButDrainsBufferedItems) {
  BoundedMpmcQueue<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(8));
  EXPECT_FALSE(q.push(8, milliseconds(1)));
  EXPECT_EQ(q.try_pop().value(), 7);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedMpmcQueue, ConcurrentProducersConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedMpmcQueue<int> q(16);  // small: exercises blocking backpressure
  std::atomic<long> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      while (popped.load() < kProducers * kPerProducer) {
        if (auto v = q.try_pop()) {
          sum.fetch_add(*v);
          popped.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i, milliseconds(1000)));
      }
    });
  }
  for (auto& t : threads) t.join();
  const long n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

ServerConfig test_server_config(double time_scale) {
  ServerConfig sc;
  sc.model.cores = 8;
  sc.model.power_budget = 160.0;
  sc.time_scale = time_scale;
  sc.deadline_ms = 150.0;
  sc.metrics_interval_ms = 25.0;
  return sc;
}

TEST(Server, ServesDirectSubmissionsToCompletion) {
  Server server(test_server_config(8.0));
  server.start();
  // Light enough (12 x 100 units inside one 150 ms window on 8 cores at
  // 160 W) that the planner completes jobs rather than spreading partial
  // volume across everything.
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(server.submit({.demand = 100.0}, milliseconds(100)));
  }
  const RunStats stats = server.drain_and_stop();
  EXPECT_EQ(stats.jobs_total, 12u);
  EXPECT_GT(stats.total_quality, 0.0);
  EXPECT_GT(stats.jobs_satisfied, 0u);
  EXPECT_LE(stats.peak_power, 160.0 * (1.0 + 1e-6) + 1e-6);
  EXPECT_EQ(server.shed(), 0u);
}

TEST(Server, ShedsWhenAdmissionQueueStaysFull) {
  ServerConfig sc = test_server_config(8.0);
  sc.admission_capacity = 1;
  Server server(sc);
  // Submitting before start() makes the outcome deterministic: nothing
  // drains the queue, so exactly one request fits and three are shed.
  std::size_t accepted = 0;
  for (int i = 0; i < 4; ++i) {
    if (server.submit({.demand = 150.0}, milliseconds(0))) ++accepted;
  }
  EXPECT_EQ(accepted, 1u);
  EXPECT_EQ(server.shed(), 3u);
  server.start();
  const RunStats stats = server.drain_and_stop();
  EXPECT_EQ(stats.jobs_total, 1u);
  EXPECT_EQ(server.shed(), 3u);
}

// The acceptance scenario: a 30-virtual-second Poisson workload from
// multiple producers onto 8 worker threads, power budget respected in
// every published metrics snapshot.
TEST(Server, ThirtySecondPoissonWorkloadUnderBudget) {
  const double kScale = 16.0;
  const Time kDurationMs = 30'000.0;
  const double kRate = 120.0;  // requests per virtual second
  constexpr int kProducers = 4;

  Server server(test_server_config(kScale));
  server.start();
  std::atomic<std::size_t> produced{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Xoshiro256 rng(17 + static_cast<std::uint64_t>(p));
      const BoundedPareto demand = BoundedPareto::websearch();
      const double rate_per_ms = kRate / kProducers / 1000.0;
      while (server.now() < kDurationMs) {
        const double gap_ms = rng.exponential(rate_per_ms);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(gap_ms / kScale));
        if (server.now() >= kDurationMs) break;
        if (server.submit({.demand = demand.sample(rng)}, milliseconds(50))) {
          produced.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  const RunStats stats = server.drain_and_stop();

  EXPECT_EQ(stats.jobs_total, produced.load());
  EXPECT_GT(stats.jobs_total, 100u);  // ~3600 expected at rate 120
  EXPECT_GT(stats.jobs_satisfied, 0u);
  EXPECT_GT(stats.normalized_quality, 0.0);
  EXPECT_GT(stats.replans, 0u);

  // The paper's hard constraint: instantaneous power never exceeds H.
  const double budget = 160.0;
  EXPECT_LE(stats.peak_power, budget * (1.0 + 1e-6) + 1e-6);
  ASSERT_FALSE(server.snapshots().empty());
  for (const MetricsSnapshot& s : server.snapshots()) {
    EXPECT_LE(s.planned_power_w, budget + 1e-6);
    EXPECT_LE(s.peak_power_w, budget * (1.0 + 1e-6) + 1e-6);
    EXPECT_FALSE(s.to_json().empty());
  }
  // Workers actually paced jobs (not everything expired unserved).
  Time busy = 0.0;
  for (const WorkerStats& w : server.worker_stats()) busy += w.busy_virtual_ms;
  EXPECT_GT(busy, 0.0);
}

TEST(Server, SnapshotJsonHasExpectedKeys) {
  MetricsSnapshot s;
  s.t_virtual_ms = 1234.5;
  s.admitted = 10;
  const std::string j = s.to_json();
  EXPECT_NE(j.find("\"t_ms\": 1234.500"), std::string::npos);
  EXPECT_NE(j.find("\"admitted\": 10"), std::string::npos);
  EXPECT_NE(j.find("\"planned_power_w\""), std::string::npos);
  EXPECT_EQ(j.front(), '{');
  EXPECT_EQ(j.back(), '}');
}

}  // namespace
}  // namespace qes::runtime
