#include "core/power.hpp"

#include <gtest/gtest.h>

namespace qes {
namespace {

TEST(PowerModel, PaperDefaults) {
  PowerModel pm = default_power_model();
  EXPECT_DOUBLE_EQ(pm.a, 5.0);
  EXPECT_DOUBLE_EQ(pm.beta, 2.0);
  EXPECT_DOUBLE_EQ(pm.b, 0.0);
  // §V-B: H/m = 320/16 = 20 W per core => 2 GHz average speed.
  EXPECT_NEAR(pm.speed_for_power(20.0), 2.0, 1e-12);
  EXPECT_NEAR(pm.dynamic_power(2.0), 20.0, 1e-12);
}

TEST(PowerModel, SpeedPowerRoundTrip) {
  PowerModel pm{.a = 2.6075, .beta = 1.791, .b = 9.2562};
  for (double s : {0.8, 1.3, 1.8, 2.5}) {
    EXPECT_NEAR(pm.speed_for_power(pm.dynamic_power(s)), s, 1e-9);
  }
}

TEST(PowerModel, OpteronRegressionModelMatchesMeasurements) {
  // §V-G: fitted model vs the four measured (speed, power) points.
  PowerModel pm{.a = 2.6075, .beta = 1.791, .b = 9.2562};
  EXPECT_NEAR(pm.total_power(0.8), 11.06, 0.35);
  EXPECT_NEAR(pm.total_power(1.3), 13.275, 0.35);
  EXPECT_NEAR(pm.total_power(1.8), 16.85, 0.35);
  EXPECT_NEAR(pm.total_power(2.5), 22.69, 0.35);
}

TEST(PowerModel, ZeroOrNegativeBudgetMeansZeroSpeed) {
  PowerModel pm = default_power_model();
  EXPECT_DOUBLE_EQ(pm.speed_for_power(0.0), 0.0);
  EXPECT_DOUBLE_EQ(pm.speed_for_power(-5.0), 0.0);
}

TEST(PowerModel, EnergyIsPowerTimesSeconds) {
  PowerModel pm = default_power_model();
  // 2 GHz => 20 W; 500 ms => 10 J.
  EXPECT_NEAR(pm.dynamic_energy(2.0, 500.0), 10.0, 1e-12);
}

TEST(PowerModel, ConvexityOfDynamicPower) {
  PowerModel pm = default_power_model();
  // Equal sharing maximizes total speed: P(s1)+P(s2) >= 2 P((s1+s2)/2).
  const double s1 = 1.0, s2 = 3.0;
  EXPECT_GE(pm.dynamic_power(s1) + pm.dynamic_power(s2),
            2.0 * pm.dynamic_power((s1 + s2) / 2.0));
}

TEST(DiscreteSpeedSet, Opteron2380Levels) {
  auto set = DiscreteSpeedSet::opteron2380();
  ASSERT_EQ(set.size(), 4u);
  EXPECT_DOUBLE_EQ(set.min_speed(), 0.8);
  EXPECT_DOUBLE_EQ(set.max_speed(), 2.5);
}

TEST(DiscreteSpeedSet, SnapUp) {
  auto set = DiscreteSpeedSet::opteron2380();
  EXPECT_DOUBLE_EQ(*set.snap_up(0.1), 0.8);
  EXPECT_DOUBLE_EQ(*set.snap_up(0.8), 0.8);
  EXPECT_DOUBLE_EQ(*set.snap_up(0.81), 1.3);
  EXPECT_DOUBLE_EQ(*set.snap_up(2.5), 2.5);
  EXPECT_FALSE(set.snap_up(2.51).has_value());
}

TEST(DiscreteSpeedSet, SnapDown) {
  auto set = DiscreteSpeedSet::opteron2380();
  EXPECT_FALSE(set.snap_down(0.5).has_value());
  EXPECT_DOUBLE_EQ(*set.snap_down(0.8), 0.8);
  EXPECT_DOUBLE_EQ(*set.snap_down(1.79), 1.3);
  EXPECT_DOUBLE_EQ(*set.snap_down(99.0), 2.5);
}

TEST(DiscreteSpeedSet, RectifyPrefersSnapUpWithinBudget) {
  auto set = DiscreteSpeedSet::opteron2380();
  PowerModel pm = default_power_model();
  // Want 1.5 GHz; 1.8 GHz costs 16.2 W.
  EXPECT_DOUBLE_EQ(*set.rectify(1.5, 20.0, pm), 1.8);
  // Budget too small for 1.8 (16.2 W) but fits 1.3 (8.45 W).
  EXPECT_DOUBLE_EQ(*set.rectify(1.5, 10.0, pm), 1.3);
  // Budget fits nothing.
  EXPECT_FALSE(set.rectify(1.5, 1.0, pm).has_value());
  // Idle stays idle.
  EXPECT_FALSE(set.rectify(0.0, 100.0, pm).has_value());
}

TEST(DiscreteSpeedSet, ConstructorSortsAndDedups) {
  DiscreteSpeedSet set({2.0, 1.0, 2.0, 0.5});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_DOUBLE_EQ(set.levels()[0], 0.5);
  EXPECT_DOUBLE_EQ(set.levels()[2], 2.0);
}

}  // namespace
}  // namespace qes
