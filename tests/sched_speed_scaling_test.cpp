#include "sched/speed_scaling_online.hpp"

#include <gtest/gtest.h>

#include "core/prng.hpp"
#include "sched/yds.hpp"
#include "test_util.hpp"

namespace qes {
namespace {

PowerModel pm = default_power_model();

TEST(Avr, SingleJobRunsAtDensity) {
  AgreeableJobSet set({{.id = 1, .release = 0.0, .deadline = 100.0,
                        .demand = 150.0}});
  const auto profile = avr_speed_profile(set);
  ASSERT_EQ(profile.size(), 1u);
  EXPECT_NEAR(profile[0].speed, 1.5, 1e-12);
  const Schedule sched = avr_schedule(set);
  EXPECT_NEAR(sched.volume_of(1), 150.0, 1e-6);
}

TEST(Avr, OverlappingJobsSumDensities) {
  AgreeableJobSet set({
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 100.0},
      {.id = 2, .release = 50.0, .deadline = 150.0, .demand = 100.0},
  });
  const auto profile = avr_speed_profile(set);
  // [0,50): 1.0; [50,100): 2.0; [100,150): 1.0.
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_NEAR(profile[0].speed, 1.0, 1e-12);
  EXPECT_NEAR(profile[1].speed, 2.0, 1e-12);
  EXPECT_NEAR(profile[2].speed, 1.0, 1e-12);
}

TEST(Avr, ProfileEnergyMatchesClosedForm) {
  AgreeableJobSet set({{.id = 1, .release = 0.0, .deadline = 200.0,
                        .demand = 100.0}});
  const auto profile = avr_speed_profile(set);
  // speed 0.5 for 200 ms: 5 * 0.25 W * 0.2 s = 0.25 J.
  EXPECT_NEAR(profile_energy(profile, pm), 0.25, 1e-12);
}

TEST(Oa, MatchesYdsWhenAllJobsArriveTogether) {
  // With a single release event OA == YDS by construction.
  Xoshiro256 rng(3);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<Job> jobs;
    const std::size_t n = 2 + rng.uniform_index(10);
    for (std::size_t k = 0; k < n; ++k) {
      jobs.push_back({.id = k + 1,
                      .release = 0.0,
                      .deadline = rng.uniform(50.0, 400.0),
                      .demand = rng.uniform(20.0, 300.0)});
    }
    AgreeableJobSet set(jobs);
    const Schedule oa = oa_schedule(set);
    const YdsResult yds = yds_schedule(set);
    EXPECT_NEAR(oa.dynamic_energy(pm), yds.schedule.dynamic_energy(pm),
                1e-6);
  }
}

class SpeedScalingPropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpeedScalingPropertyTest, BothCompleteEverythingOnTime) {
  Xoshiro256 rng(GetParam());
  for (int rep = 0; rep < 8; ++rep) {
    auto jobs = (rep % 2 == 0)
                    ? test::random_agreeable_jobs(rng, 25, 800.0)
                    : test::random_agreeable_jobs_varwindow(rng, 25, 800.0);
    AgreeableJobSet set(jobs);
    for (const Schedule& sched : {avr_schedule(set), oa_schedule(set)}) {
      sched.check_well_formed();
      sched.check_respects_windows(set.jobs());
      for (std::size_t k = 0; k < set.size(); ++k) {
        EXPECT_NEAR(sched.volume_of(set[k].id), set[k].demand, 1e-4);
      }
    }
  }
}

TEST_P(SpeedScalingPropertyTest, YdsLowerBoundsBothOnlineAlgorithms) {
  // YDS is offline-optimal: AVR and OA must consume at least as much
  // energy, and stay within their theoretical competitive ratios
  // (beta = 2: OA <= 4x, AVR <= 8x; empirically much closer).
  Xoshiro256 rng(GetParam() ^ 0xC0FFEEULL);
  for (int rep = 0; rep < 8; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 20, 600.0);
    AgreeableJobSet set(jobs);
    const Joules opt = yds_schedule(set).schedule.dynamic_energy(pm);
    const Joules oa = oa_schedule(set).dynamic_energy(pm);
    const Joules avr = avr_schedule(set).dynamic_energy(pm);
    EXPECT_GE(oa, opt - 1e-6);
    EXPECT_GE(avr, opt - 1e-6);
    EXPECT_LE(oa, 4.0 * opt + 1e-6);
    EXPECT_LE(avr, 8.0 * opt + 1e-6);
  }
}

TEST_P(SpeedScalingPropertyTest, AvrScheduleConservesVolume) {
  // The executable EDF schedule performs exactly the total demand
  // (no work is lost or duplicated).
  Xoshiro256 rng(GetParam() ^ 0xF1F1ULL);
  auto jobs = test::random_agreeable_jobs(rng, 15, 500.0);
  AgreeableJobSet set(jobs);
  const Schedule sched = avr_schedule(set);
  Work sched_volume = 0.0;
  for (const auto& [id, v] : sched.volumes()) sched_volume += v;
  EXPECT_NEAR(sched_volume, total_demand(set.jobs()), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpeedScalingPropertyTest,
                         ::testing::Values(31u, 32u, 33u));

}  // namespace
}  // namespace qes
