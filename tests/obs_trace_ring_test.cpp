// TraceRing under concurrent producers: the cluster shares no ring
// between nodes, but each node's ring is pushed from the trigger thread
// while the scrape plane tail()s it live — and the stress tests run
// several producers against one ring on purpose. These tests pin down
// the ring's contract: bounded memory with exact dropped accounting,
// arrival-order drains, and non-consuming tails. Run under TSan via
// scripts/ci_sanitize.sh (ctest -L obs).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace qes {
namespace {

obs::TraceEvent stamped(std::uint64_t job, double value) {
  obs::TraceEvent e;
  e.kind = obs::TraceEvent::Kind::Exec;
  e.job = job;
  e.value = value;
  return e;
}

TEST(TraceRing, WraparoundKeepsNewestAndCountsDropped) {
  obs::TraceRing ring(8);
  for (int i = 0; i < 20; ++i) ring.push(stamped(1, i));
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);

  const std::vector<obs::TraceEvent> events = ring.drain();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(events[static_cast<std::size_t>(i)].value, 12.0 + i);
  }
  EXPECT_EQ(ring.size(), 0u);
}

TEST(TraceRing, TailPeeksNewestWithoutConsuming) {
  obs::TraceRing ring(16);
  for (int i = 0; i < 10; ++i) ring.push(stamped(1, i));

  const std::vector<obs::TraceEvent> last4 = ring.tail(4);
  ASSERT_EQ(last4.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(last4[static_cast<std::size_t>(i)].value, 6.0 + i);
  }
  EXPECT_EQ(ring.tail(100).size(), 10u);  // clamped to what is buffered
  EXPECT_EQ(ring.size(), 10u);            // tail consumed nothing
  EXPECT_EQ(ring.drain().size(), 10u);
}

TEST(TraceRing, ConcurrentPushersLoseNothingWhenSized) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  obs::TraceRing ring(kThreads * kPerThread);

  std::vector<std::thread> pushers;
  pushers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pushers.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.push(stamped(static_cast<std::uint64_t>(t + 1), i));
      }
    });
  }
  for (std::thread& t : pushers) t.join();

  EXPECT_EQ(ring.dropped(), 0u);
  const std::vector<obs::TraceEvent> events = ring.drain();
  ASSERT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);

  // Interleaving across threads is arbitrary, but each producer's own
  // events must come out in its push order (the drain is arrival-order
  // and push is atomic under the ring mutex).
  std::vector<double> next(kThreads, 0.0);
  std::vector<std::uint64_t> seen(kThreads, 0);
  for (const obs::TraceEvent& e : events) {
    const std::size_t t = static_cast<std::size_t>(e.job - 1);
    ASSERT_LT(t, static_cast<std::size_t>(kThreads));
    EXPECT_DOUBLE_EQ(e.value, next[t]);
    next[t] += 1.0;
    ++seen[t];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(t)],
              static_cast<std::uint64_t>(kPerThread));
  }
}

TEST(TraceRing, ConcurrentWraparoundAccountsEveryPushExactly) {
  constexpr int kThreads = 6;
  constexpr int kPerThread = 4000;
  constexpr std::size_t kCapacity = 512;  // far smaller than the traffic
  obs::TraceRing ring(kCapacity);

  std::vector<std::thread> pushers;
  pushers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pushers.emplace_back([&ring, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ring.push(stamped(static_cast<std::uint64_t>(t + 1), i));
      }
    });
  }
  // A concurrent reader exercising the live-scrape path; bounded output
  // whatever the interleaving.
  std::atomic<bool> stop{false};
  std::thread tailer([&ring, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      EXPECT_LE(ring.tail(64).size(), 64u);
    }
  });
  for (std::thread& t : pushers) t.join();
  stop.store(true, std::memory_order_release);
  tailer.join();

  // Conservation: every push either sits in the ring or was dropped.
  EXPECT_EQ(ring.size(), kCapacity);
  EXPECT_EQ(ring.size() + ring.dropped(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);

  // Survivors are still per-producer ordered after heavy wraparound.
  std::vector<double> last(kThreads, -1.0);
  for (const obs::TraceEvent& e : ring.drain()) {
    const std::size_t t = static_cast<std::size_t>(e.job - 1);
    EXPECT_GT(e.value, last[t]);
    last[t] = e.value;
  }
}

}  // namespace
}  // namespace qes
