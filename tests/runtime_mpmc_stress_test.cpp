// Stress tests of the admission queue (BoundedMpmcQueue) under real
// multi-producer/multi-consumer contention: sequence-numbered items must
// arrive exactly once (no loss, no duplication), forced backpressure
// must account every rejected push as shed, and the whole suite must be
// clean under ThreadSanitizer (scripts/ci_sanitize.sh runs it so).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/mpmc_queue.hpp"
#include "runtime/server.hpp"

namespace qes::runtime {
namespace {

struct SeqItem {
  int producer = 0;
  std::uint64_t seq = 0;
};

TEST(MpmcStress, NoLossNoDuplicationAcrossProducersAndConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr std::uint64_t kPerProducer = 20000;
  BoundedMpmcQueue<SeqItem> q(64);  // small: forces blocking both ways

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t s = 0; s < kPerProducer; ++s) {
        // Unbounded patience: every item must eventually land.
        while (!q.push(SeqItem{p, s}, std::chrono::milliseconds(100))) {
        }
      }
    });
  }

  // Consumers tally per-producer bitmaps of received sequence numbers;
  // a duplicate or a gap is then visible after the join.
  std::vector<std::vector<std::uint8_t>> seen(
      kConsumers, std::vector<std::uint8_t>(kProducers * kPerProducer, 0));
  std::atomic<bool> producers_done{false};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      for (;;) {
        std::optional<SeqItem> item = q.try_pop();
        if (!item) {
          if (producers_done.load(std::memory_order_acquire) &&
              q.size() == 0) {
            return;
          }
          std::this_thread::yield();
          continue;
        }
        ++seen[static_cast<std::size_t>(c)]
              [static_cast<std::size_t>(item->producer) * kPerProducer +
               item->seq];
      }
    });
  }

  for (auto& t : producers) t.join();
  producers_done.store(true, std::memory_order_release);
  for (auto& t : consumers) t.join();

  for (std::size_t i = 0; i < kProducers * kPerProducer; ++i) {
    unsigned total = 0;
    for (int c = 0; c < kConsumers; ++c) {
      total += seen[static_cast<std::size_t>(c)][i];
    }
    ASSERT_EQ(total, 1u) << "item " << i << " delivered " << total
                         << " times";
  }
}

TEST(MpmcStress, DrainConsumerSeesEveryItemInFifoOrderPerProducer) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  BoundedMpmcQueue<SeqItem> q(128);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t s = 0; s < kPerProducer; ++s) {
        while (!q.push(SeqItem{p, s}, std::chrono::milliseconds(100))) {
        }
      }
    });
  }

  // Single drain()-style consumer — the trigger thread's access pattern.
  std::vector<SeqItem> received;
  std::atomic<bool> done{false};
  std::thread consumer([&] {
    std::vector<SeqItem> batch;
    while (!done.load(std::memory_order_acquire) || q.size() != 0) {
      batch.clear();
      q.drain(batch);
      received.insert(received.end(), batch.begin(), batch.end());
      if (batch.empty()) std::this_thread::yield();
    }
    q.drain(received);
  });

  for (auto& t : producers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  ASSERT_EQ(received.size(), kProducers * kPerProducer);
  // Per producer the stream must arrive in order (FIFO of a single
  // producer is preserved through the shared queue).
  std::vector<std::uint64_t> next(kProducers, 0);
  for (const SeqItem& it : received) {
    EXPECT_EQ(it.seq, next[static_cast<std::size_t>(it.producer)]);
    ++next[static_cast<std::size_t>(it.producer)];
  }
}

TEST(MpmcStress, BackpressureShedsAreAccountedExactly) {
  // No consumer at all: after `capacity` successes every push must fail,
  // and successes + sheds must equal attempts for every producer.
  constexpr int kProducers = 4;
  constexpr int kAttempts = 500;
  constexpr std::size_t kCapacity = 32;
  BoundedMpmcQueue<int> q(kCapacity);
  std::atomic<std::uint64_t> pushed{0};
  std::atomic<std::uint64_t> shed{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kAttempts; ++i) {
        if (q.push(i, std::chrono::milliseconds(1))) {
          pushed.fetch_add(1, std::memory_order_relaxed);
        } else {
          shed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();

  EXPECT_EQ(pushed.load(), kCapacity);  // exactly the buffer fills
  EXPECT_EQ(pushed.load() + shed.load(),
            static_cast<std::uint64_t>(kProducers) * kAttempts);
  EXPECT_EQ(q.size(), kCapacity);
}

TEST(MpmcStress, CloseWakesBlockedProducersAndKeepsItemsPoppable) {
  BoundedMpmcQueue<int> q(2);
  ASSERT_TRUE(q.try_push(1));
  ASSERT_TRUE(q.try_push(2));
  std::thread blocked([&q] {
    // Blocks on a full queue until close() wakes it with failure.
    EXPECT_FALSE(q.push(3, std::chrono::seconds(30)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  blocked.join();
  EXPECT_FALSE(q.try_push(4));
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(MpmcStress, ServerShedAccountingUnderForcedBackpressure) {
  // A server with a tiny admission queue and many impatient producers:
  // every submit() either lands in the model or is counted as shed, and
  // the obs counter agrees with the atomic.
  ServerConfig sc;
  sc.model.cores = 2;
  sc.model.power_budget = 40.0;
  sc.time_scale = 50.0;
  sc.deadline_ms = 50.0;
  sc.admission_capacity = 4;
  sc.tick_wall_ms = 20.0;  // slow ticks leave the queue full
  runtime::Server server(sc);
  server.start();

  constexpr int kProducers = 8;
  constexpr int kPerProducer = 200;
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&server, &accepted] {
      for (int i = 0; i < kPerProducer; ++i) {
        Request r;
        r.demand = 10.0;
        if (server.submit(r, std::chrono::milliseconds(0))) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  const RunStats stats = server.drain_and_stop();

  const std::uint64_t attempts =
      static_cast<std::uint64_t>(kProducers) * kPerProducer;
  EXPECT_EQ(accepted.load() + server.shed(), attempts);
  EXPECT_EQ(stats.jobs_total, accepted.load());
  const obs::Counter* shed_c =
      server.registry().find_counter("qesd_shed_total");
  if (server.shed() > 0) {
    ASSERT_NE(shed_c, nullptr);
    EXPECT_DOUBLE_EQ(shed_c->value(),
                     static_cast<double>(server.shed()));
  }
}

}  // namespace
}  // namespace qes::runtime
