// Shared helpers for the qesched test suites: random agreeable job-set
// generation, brute-force reference schedulers, and quality/energy
// accounting used to cross-check the optimized algorithms.
#pragma once

#include <algorithm>
#include <vector>

#include "core/job.hpp"
#include "core/power.hpp"
#include "core/prng.hpp"
#include "core/quality.hpp"
#include "core/schedule.hpp"

namespace qes::test {

/// Random agreeable job set: arrivals spread over [0, horizon], each
/// deadline = release + window (constant window keeps deadlines
/// agreeable, matching interactive services), demands uniform in
/// [w_lo, w_hi].
inline std::vector<Job> random_agreeable_jobs(Xoshiro256& rng, std::size_t n,
                                              Time horizon = 1000.0,
                                              Time window = 150.0,
                                              Work w_lo = 20.0,
                                              Work w_hi = 400.0) {
  std::vector<Job> jobs;
  jobs.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    Job j;
    j.id = k + 1;
    j.release = rng.uniform(0.0, horizon);
    j.deadline = j.release + window;
    j.demand = rng.uniform(w_lo, w_hi);
    jobs.push_back(j);
  }
  sort_by_release(jobs);
  return jobs;
}

/// Variable-window agreeable set: windows grow with release order so
/// deadlines remain agreeable but are not simply release + constant.
inline std::vector<Job> random_agreeable_jobs_varwindow(Xoshiro256& rng,
                                                        std::size_t n,
                                                        Time horizon = 1000.0) {
  std::vector<Job> jobs;
  jobs.reserve(n);
  std::vector<Time> releases;
  for (std::size_t k = 0; k < n; ++k) {
    releases.push_back(rng.uniform(0.0, horizon));
  }
  std::sort(releases.begin(), releases.end());
  Time prev_deadline = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    Job j;
    j.id = k + 1;
    j.release = releases[k];
    const Time raw = releases[k] + rng.uniform(50.0, 300.0);
    j.deadline = std::max(raw, std::max(prev_deadline, j.release + 10.0));
    prev_deadline = j.deadline;
    j.demand = rng.uniform(20.0, 400.0);
    jobs.push_back(j);
  }
  return jobs;
}

/// Feasible greedy schedule: FIFO at a constant speed, truncating each
/// job at its deadline. Used as a reference point that any optimal
/// algorithm must dominate.
inline std::vector<Work> fifo_constant_speed_volumes(
    const AgreeableJobSet& set, Speed speed) {
  std::vector<Work> vol(set.size(), 0.0);
  Time t = set.empty() ? 0.0 : set[0].release;
  for (std::size_t k = 0; k < set.size(); ++k) {
    const Job& j = set[k];
    const Time start = std::max(t, j.release);
    if (start >= j.deadline) continue;
    const Work can = (j.deadline - start) * speed;
    vol[k] = std::min(j.demand, can);
    t = start + vol[k] / speed;
  }
  return vol;
}

}  // namespace qes::test
