// CalendarQueue property tests: pop order must match a reference
// std::priority_queue over randomized interleavings of push / pop /
// erase, including heavy timestamp ties (broken by sequence number),
// cursor rewinds (pushes earlier than the last pop), and bucket growth.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <queue>
#include <set>
#include <vector>

#include "core/prng.hpp"

namespace qes::sim {
namespace {

struct RefItem {
  double t;
  std::uint64_t seq;
  int value;
  // Reversed: priority_queue is a max-heap, we want min-(t, seq).
  bool operator<(const RefItem& o) const {
    if (t != o.t) return t > o.t;
    return seq > o.seq;
  }
};

// Reference model: a priority queue plus an erased-seq set (lazy
// deletion on pop, exactly what the calendar queue's erase must mimic
// eagerly).
class RefQueue {
 public:
  void push(double t, std::uint64_t seq, int value) {
    heap_.push(RefItem{t, seq, value});
    live_.insert(seq);
  }
  bool erase(std::uint64_t seq) { return live_.erase(seq) > 0; }
  [[nodiscard]] bool empty() const { return live_.empty(); }
  [[nodiscard]] std::size_t size() const { return live_.size(); }
  RefItem pop() {
    for (;;) {
      RefItem top = heap_.top();
      heap_.pop();
      if (live_.erase(top.seq) > 0) return top;
    }
  }

 private:
  std::priority_queue<RefItem> heap_;
  std::set<std::uint64_t> live_;
};

TEST(CalendarQueue, FifoAmongEqualTimestamps) {
  CalendarQueue<int> q(1.0, 4);
  for (int k = 0; k < 100; ++k) q.push(5.0, k);
  for (int k = 0; k < 100; ++k) {
    const auto item = q.pop();
    EXPECT_EQ(item.value, k);
    EXPECT_DOUBLE_EQ(item.t, 5.0);
  }
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, RewindOnEarlierPush) {
  CalendarQueue<int> q(1.0, 8);
  q.push(100.0, 1);
  EXPECT_EQ(q.pop().value, 1);  // cursor now far ahead
  q.push(2.0, 2);               // rewinds to the early bucket
  q.push(50.0, 3);
  EXPECT_EQ(q.pop().value, 2);
  EXPECT_EQ(q.pop().value, 3);
}

TEST(CalendarQueue, EraseBySeq) {
  CalendarQueue<int> q(4.0, 8);
  const std::uint64_t s1 = q.push(10.0, 1);
  const std::uint64_t s2 = q.push(11.0, 2);
  q.push(12.0, 3);
  EXPECT_TRUE(q.erase(11.0, s2));
  EXPECT_FALSE(q.erase(11.0, s2));  // already gone
  EXPECT_FALSE(q.erase(10.0, 999));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().seq, s1);
  EXPECT_EQ(q.pop().value, 3);
}

// The main property: random interleavings agree with the reference
// model exactly — same (t, seq, value) at every pop.
TEST(CalendarQueue, RandomInterleavingsMatchPriorityQueue) {
  Xoshiro256 rng(20260809);
  for (int trial = 0; trial < 40; ++trial) {
    // Vary bucket geometry so growth and collisions both get exercised.
    const double width = trial % 2 == 0 ? 1.0 : 7.5;
    const std::size_t buckets = trial % 3 == 0 ? 2 : 16;
    CalendarQueue<int> q(width, buckets);
    RefQueue ref;
    std::vector<std::pair<double, std::uint64_t>> live;  // for erase picks
    double clock = 0.0;
    int next_value = 0;

    for (int step = 0; step < 2000; ++step) {
      const double dice = rng.next_double();
      if (dice < 0.5 || ref.empty()) {
        // Push at/after the current virtual clock; coarse quantization
        // forces frequent exact ties.
        const double t =
            clock + std::floor(rng.next_double() * 16.0) * (width / 2.0);
        const int v = next_value++;
        const std::uint64_t seq = q.push(t, v);
        ref.push(t, seq, v);
        live.emplace_back(t, seq);
      } else if (dice < 0.85) {
        const auto got = q.pop();
        const RefItem want = ref.pop();
        ASSERT_EQ(got.t, want.t);
        ASSERT_EQ(got.seq, want.seq);
        ASSERT_EQ(got.value, want.value);
        ASSERT_GE(got.t, clock);  // pops are monotone given monotone pushes
        clock = got.t;
        std::erase(live, std::make_pair(got.t, got.seq));
      } else if (!live.empty()) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.next_double() * static_cast<double>(live.size()));
        const auto [t, seq] = live[pick];
        ASSERT_TRUE(q.erase(t, seq));
        ASSERT_TRUE(ref.erase(seq));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      ASSERT_EQ(q.size(), ref.size());
      ASSERT_EQ(q.empty(), ref.empty());
    }

    // Drain: full agreement to the end.
    while (!ref.empty()) {
      const auto got = q.pop();
      const RefItem want = ref.pop();
      ASSERT_EQ(got.t, want.t);
      ASSERT_EQ(got.seq, want.seq);
      ASSERT_EQ(got.value, want.value);
    }
    EXPECT_TRUE(q.empty());
  }
}

// Sparse far-future jumps: after draining the near bucket, the cursor
// must find an entry many laps ahead (exercises min_abs_bucket).
TEST(CalendarQueue, SparseFarFutureJump) {
  CalendarQueue<int> q(1.0, 4);
  q.push(0.5, 1);
  q.push(1e6, 2);
  q.push(3e6, 3);
  EXPECT_EQ(q.pop().value, 1);
  EXPECT_EQ(q.pop().value, 2);
  EXPECT_EQ(q.pop().value, 3);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace qes::sim
