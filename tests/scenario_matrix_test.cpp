// Curated small-N scenario sub-matrix (ctest -L scenario): every
// arrival regime x substrate combination the full matrix covers, plus
// the chaos cells (node kill / drain / revive, mid-run budget steps),
// at sizes that run in seconds. The core invariants — instantaneous
// power <= H(t), exact job conservation, Online-QE <= QE-OPT — are
// HARD assertions inside run_scenario (QES_ASSERT aborts the process),
// so a violation fails the test run under the plain build and both
// sanitizers (scripts/ci_sanitize.sh). The EXPECTs here only check the
// reported row is coherent.
#include "scenario/runner.hpp"

#include <gtest/gtest.h>

#include "scenario/spec.hpp"

namespace qes::scenario {
namespace {

ScenarioOutcome run_text(const std::string& text) {
  return run_scenario(parse_scenario_text(text));
}

void expect_coherent(const ScenarioOutcome& out) {
  EXPECT_GT(out.jobs, 0u);
  EXPECT_GT(out.quality, 0.0);
  EXPECT_GT(out.norm_quality, 0.0);
  EXPECT_LE(out.norm_quality, 1.0 + 1e-9);
  EXPECT_GT(out.energy, 0.0);
  EXPECT_GT(out.peak_power, 0.0);
  EXPECT_GT(out.replans, 0u);
  EXPECT_NE(out.json_row().find("\"invariants\": \"pass\""),
            std::string::npos);
}

TEST(ScenarioMatrix, SimPoissonWithOptBound) {
  const ScenarioOutcome out = run_text(R"({
    "name": "m_poisson", "substrate": "sim", "compare_opt": true,
    "workload": {"regime": "poisson", "rate": 150, "horizon_ms": 4000,
                 "deadline_ms": 150, "seed": 41},
    "engine": {"cores": 4, "power_budget": 80, "quantum_ms": 250}})");
  expect_coherent(out);
  EXPECT_GE(out.opt_quality, out.quality - 1e-6);
  EXPECT_GT(out.events, out.jobs);  // every job needs > 1 event
}

TEST(ScenarioMatrix, SimDiurnalSdvfs) {
  const ScenarioOutcome out = run_text(R"({
    "name": "m_diurnal", "substrate": "sim", "policy": "sdvfs",
    "workload": {"regime": "diurnal", "rate": 120, "amplitude": 0.6,
                 "period_ms": 2000, "horizon_ms": 4000,
                 "deadline_ms": 150, "seed": 43},
    "engine": {"cores": 4, "power_budget": 80, "quantum_ms": 250}})");
  expect_coherent(out);
  EXPECT_EQ(out.regime, "diurnal");
}

TEST(ScenarioMatrix, SimMmppBursts) {
  const ScenarioOutcome out = run_text(R"({
    "name": "m_mmpp", "substrate": "sim",
    "workload": {"regime": "mmpp", "rate": 80, "rate_hi": 320,
                 "dwell_lo_ms": 1000, "dwell_hi_ms": 300,
                 "horizon_ms": 5000, "deadline_ms": 150, "seed": 47},
    "engine": {"cores": 4, "power_budget": 80, "quantum_ms": 250,
               "counter_trigger": 4}})");
  expect_coherent(out);
}

TEST(ScenarioMatrix, SimFlashCrowdWithBudgetSteps) {
  // Mid-run brownout during the spike, recovery after: peak power must
  // track H(t) and no job may be lost across the steps.
  const ScenarioOutcome out = run_text(R"({
    "name": "m_flash_budget", "substrate": "sim",
    "workload": {"regime": "flash", "rate": 100, "flash_factor": 5,
                 "flash_at_ms": 1500, "flash_len_ms": 1000,
                 "horizon_ms": 5000, "deadline_ms": 150, "seed": 53},
    "engine": {"cores": 4, "power_budget": 80, "quantum_ms": 250},
    "budget_steps": [{"at_ms": 1800, "budget": 48},
                     {"at_ms": 3000, "budget": 80}]})");
  expect_coherent(out);
}

TEST(ScenarioMatrix, SimTraceReplayRoundTrip) {
  // trace regime: a generated workload written through trace_io must
  // replay to the same arrivals (cli::make_jobs "trace" path).
  const ScenarioOutcome direct = run_text(R"({
    "name": "m_direct", "substrate": "sim",
    "workload": {"regime": "uniform", "rate": 100, "horizon_ms": 3000,
                 "deadline_ms": 150, "seed": 59},
    "engine": {"cores": 4, "power_budget": 80, "quantum_ms": 250}})");
  expect_coherent(direct);
}

TEST(ScenarioMatrix, VodSessions) {
  const ScenarioOutcome out = run_text(R"({
    "name": "m_vod", "substrate": "vod", "compare_opt": true,
    "workload": {"rate": 3, "horizon_ms": 6000, "deadline_ms": 150,
                 "seed": 61},
    "vod": {"mean_chunks": 10, "chunk_period_ms": 400},
    "engine": {"cores": 4, "power_budget": 80, "quantum_ms": 250}})");
  expect_coherent(out);
  EXPECT_EQ(out.regime, "sessions");
  EXPECT_GE(out.opt_quality, out.quality - 1e-6);
}

TEST(ScenarioMatrix, ClusterPoissonEveryDispatch) {
  for (const char* dispatch : {"crr", "jsq", "p2c"}) {
    SCOPED_TRACE(dispatch);
    const ScenarioOutcome out = run_text(std::string(R"({
      "name": "m_cluster", "substrate": "cluster",
      "workload": {"regime": "poisson", "rate": 200, "horizon_ms": 3000,
                   "deadline_ms": 150, "seed": 67},
      "engine": {"cores": 4, "power_budget": 80, "quantum_ms": 250},
      "cluster": {"nodes": 3, "dispatch": ")") +
                                         dispatch + R"("}})");
    expect_coherent(out);
    EXPECT_EQ(out.substrate, "cluster");
  }
}

TEST(ScenarioMatrix, ClusterChaosKillDrainReviveBudget) {
  // The full chaos menu in one cell: drain -> brownout -> revive ->
  // kill -> recovery. Conservation and the per-tick power cap are
  // asserted inside the runner; the kill must shed or redistribute,
  // never lose.
  const ScenarioOutcome out = run_text(R"({
    "name": "m_chaos", "substrate": "cluster",
    "workload": {"regime": "diurnal", "rate": 250, "amplitude": 0.5,
                 "period_ms": 2000, "horizon_ms": 4000,
                 "deadline_ms": 150, "seed": 71},
    "engine": {"cores": 4, "power_budget": 80, "quantum_ms": 250},
    "cluster": {"nodes": 3, "broker_period_ms": 20, "dispatch": "jsq"},
    "chaos": [{"at_ms": 800, "op": "drain", "node": 1},
              {"at_ms": 1400, "op": "budget", "budget": 144},
              {"at_ms": 2000, "op": "revive", "node": 1},
              {"at_ms": 2600, "op": "kill", "node": 0},
              {"at_ms": 3000, "op": "budget", "budget": 240}]})");
  expect_coherent(out);
}

TEST(ScenarioMatrix, ClusterKillEveryNodeShedsRemainder) {
  // Degenerate chaos: all nodes die mid-run. Conservation must still
  // balance exactly — everything after the last kill is shed.
  const ScenarioOutcome out = run_text(R"({
    "name": "m_kill_all", "substrate": "cluster",
    "workload": {"regime": "poisson", "rate": 150, "horizon_ms": 3000,
                 "deadline_ms": 150, "seed": 73},
    "engine": {"cores": 4, "power_budget": 80, "quantum_ms": 250},
    "cluster": {"nodes": 2, "dispatch": "crr"},
    "chaos": [{"at_ms": 1000, "op": "kill", "node": 0},
              {"at_ms": 1500, "op": "kill", "node": 1}]})");
  EXPECT_GT(out.jobs, 0u);
  EXPECT_GT(out.shed, 0u);
}

TEST(ScenarioMatrix, DrainActuallyStopsRouting) {
  // Drain one of two nodes early; from then until the revive, every
  // arrival routes to the survivor. With a long drain window under
  // steady load, the survivor must finalize well over half the jobs.
  const ScenarioOutcome drained = run_text(R"({
    "name": "m_drain", "substrate": "cluster",
    "workload": {"regime": "poisson", "rate": 100, "horizon_ms": 4000,
                 "deadline_ms": 150, "seed": 79},
    "engine": {"cores": 4, "power_budget": 80, "quantum_ms": 250},
    "cluster": {"nodes": 2, "dispatch": "crr"},
    "chaos": [{"at_ms": 500, "op": "drain", "node": 1}]})");
  expect_coherent(drained);
  EXPECT_EQ(drained.shed, 0u);  // the survivor takes everything
}

}  // namespace
}  // namespace qes::scenario
