// HTTP exporter: protocol behavior of the standalone server, and the
// live scrape endpoints the runtime server and the cluster mount on it.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "obs/http_exporter.hpp"
#include "obs/promlint.hpp"
#include "obs/registry.hpp"
#include "runtime/server.hpp"

namespace qes {
namespace {

using std::chrono::milliseconds;

// Raw one-shot exchange for the non-GET / malformed cases http_get
// cannot produce. Returns the full response (status line included).
std::string raw_request(int port, const std::string& payload) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("cannot connect");
  }
  (void)::send(fd, payload.data(), payload.size(), 0);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(HttpExporter, ServesRegisteredRoutesOnEphemeralPort) {
  obs::HttpExporter exporter(0);
  int hits = 0;
  exporter.handle("/metrics", "text/plain; version=0.0.4", [&hits] {
    ++hits;
    return std::string("m 1\n");
  });
  exporter.handle("/healthz", "application/json",
                  [] { return std::string("{\"status\": \"ok\"}\n"); });
  exporter.start();
  ASSERT_GT(exporter.port(), 0);
  EXPECT_TRUE(exporter.running());

  std::string status;
  EXPECT_EQ(obs::http_get(exporter.port(), "/metrics", &status), "m 1\n");
  EXPECT_EQ(status, "HTTP/1.1 200 OK");
  // Handlers render on demand: every scrape re-evaluates.
  (void)obs::http_get(exporter.port(), "/metrics");
  EXPECT_EQ(hits, 2);
  // Query strings are stripped before route matching.
  EXPECT_EQ(obs::http_get(exporter.port(), "/metrics?format=prom"), "m 1\n");
  EXPECT_NE(obs::http_get(exporter.port(), "/healthz").find("ok"),
            std::string::npos);
  EXPECT_GE(exporter.requests_served(), 4u);

  exporter.stop();
  EXPECT_FALSE(exporter.running());
  exporter.stop();  // idempotent
  EXPECT_THROW((void)obs::http_get(exporter.port(), "/metrics"),
               std::runtime_error);
}

TEST(HttpExporter, RejectsUnknownPathMethodAndGarbage) {
  obs::HttpExporter exporter(0);
  exporter.handle("/metrics", "text/plain", [] { return std::string("m 1\n"); });
  exporter.start();

  std::string status;
  const std::string body =
      obs::http_get(exporter.port(), "/nope", &status);
  EXPECT_NE(status.find("404"), std::string::npos);
  EXPECT_NE(body.find("/metrics"), std::string::npos);  // lists known routes

  EXPECT_NE(raw_request(exporter.port(),
                        "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("405"),
            std::string::npos);
  EXPECT_NE(raw_request(exporter.port(), "garbage\r\n\r\n").find("400"),
            std::string::npos);
  exporter.stop();
}

TEST(HttpExporter, SlowScraperDoesNotStallOtherClients) {
  // Regression: the exporter used to serve one connection at a time, so
  // a client that connected and never finished its request blocked every
  // later scrape until it went away. The ready-connection sweep must
  // answer healthy clients while stalled ones sit on half a request.
  obs::HttpExporter exporter(0);
  exporter.handle("/healthz", "application/json",
                  [] { return std::string("{\"status\": \"ok\"}\n"); });
  exporter.start();

  // Three stalled scrapers: connected, half a request line sent, no
  // terminating blank line — and they stay open for the whole test.
  std::vector<int> stalled;
  for (int i = 0; i < 3; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(exporter.port()));
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const char half[] = "GET /healthz HT";
    ASSERT_GT(::send(fd, half, sizeof(half) - 1, 0), 0);
    stalled.push_back(fd);
  }
  // Give the exporter time to accept the stalled trio first.
  std::this_thread::sleep_for(milliseconds(100));

  // A healthy client must still be served promptly (http_get's 2 s
  // socket timeout would throw if it were queued behind the stall).
  std::string status;
  const std::string body = obs::http_get(exporter.port(), "/healthz", &status);
  EXPECT_NE(status.find("200"), std::string::npos);
  EXPECT_NE(body.find("\"ok\""), std::string::npos);

  for (int fd : stalled) ::close(fd);
  exporter.stop();
}

runtime::ServerConfig scrape_server_config() {
  runtime::ServerConfig sc;
  sc.model.cores = 8;
  sc.model.power_budget = 160.0;
  sc.time_scale = 8.0;
  sc.deadline_ms = 150.0;
  sc.metrics_interval_ms = 25.0;
  sc.http_port = 0;
  return sc;
}

TEST(HttpExporter, RuntimeServerServesLiveScrapePlane) {
  runtime::ServerConfig sc = scrape_server_config();
  obs::TraceRing trace(1u << 12);
  sc.model.trace = &trace;
  runtime::Server server(sc);
  server.start();
  ASSERT_GT(server.http_port(), 0);

  for (int i = 0; i < 20; ++i) {
    (void)server.submit(runtime::Request{.demand = 20.0},
                        milliseconds(50));
  }
  std::this_thread::sleep_for(milliseconds(50));

  const std::string prom = obs::http_get(server.http_port(), "/metrics");
  EXPECT_NE(prom.find("qesd_jobs_total"), std::string::npos);
  const obs::PromLintResult lint = obs::prom_lint(prom);
  EXPECT_TRUE(lint.ok()) << lint.error_text();

  EXPECT_NE(obs::http_get(server.http_port(), "/metrics.json")
                .find("\"counters\""),
            std::string::npos);
  EXPECT_NE(obs::http_get(server.http_port(), "/healthz")
                .find("\"status\": \"ok\""),
            std::string::npos);
  // The live trace peek is NDJSON of the newest events.
  EXPECT_NE(obs::http_get(server.http_port(), "/tracez").find("\"kind\""),
            std::string::npos);

  const int port = server.http_port();
  (void)server.drain_and_stop();
  // The exporter is torn down with the server: the port goes dark.
  EXPECT_THROW((void)obs::http_get(port, "/metrics"), std::runtime_error);
}

TEST(HttpExporter, ClusterServesAggregateAndPerNodeEndpoints) {
  cluster::ClusterConfig cc;
  cc.node = scrape_server_config();
  cc.node.http_port = -1;  // overridden per node from node_http_base_port
  cc.nodes = 2;
  cc.total_budget = 320.0;
  cc.http_port = 0;
  cc.node_http_base_port = 0;
  cc.node_trace_capacity = 1u << 12;
  cluster::Cluster cluster(cc);
  cluster.start();
  ASSERT_GT(cluster.http_port(), 0);

  for (int i = 0; i < 20; ++i) {
    (void)cluster.submit(runtime::Request{.demand = 20.0});
  }
  std::this_thread::sleep_for(milliseconds(60));

  // Aggregate endpoint: cluster registry only, lint-clean.
  const std::string prom = obs::http_get(cluster.http_port(), "/metrics");
  EXPECT_NE(prom.find("qes_cluster_node_budget_watts"), std::string::npos);
  EXPECT_EQ(prom.find("qesd_"), std::string::npos);
  const obs::PromLintResult lint = obs::prom_lint(prom);
  EXPECT_TRUE(lint.ok()) << lint.error_text();
  EXPECT_NE(obs::http_get(cluster.http_port(), "/healthz")
                .find("\"node_http_ports\""),
            std::string::npos);

  // Every node answers its own scrape with its own qesd registry.
  for (int i = 0; i < cluster.nodes(); ++i) {
    const int port = cluster.node_server(i).http_port();
    ASSERT_GT(port, 0);
    EXPECT_NE(port, cluster.http_port());
    const std::string node_prom = obs::http_get(port, "/metrics");
    EXPECT_NE(node_prom.find("qesd_jobs_total"), std::string::npos);
    const obs::PromLintResult node_lint = obs::prom_lint(node_prom);
    EXPECT_TRUE(node_lint.ok()) << node_lint.error_text();
  }
  EXPECT_NE(cluster.node_server(0).http_port(),
            cluster.node_server(1).http_port());

  (void)cluster.drain_and_stop();
}

}  // namespace
}  // namespace qes
