#include "alloc/marginal.hpp"

#include <gtest/gtest.h>

#include "alloc/waterfill.hpp"
#include "core/prng.hpp"

namespace qes {
namespace {

TEST(MarginalAlloc, AmpleCapacitySatisfiesAll) {
  std::vector<Work> caps = {100.0, 50.0};
  std::vector<QualityFunction> fs = {QualityFunction::exponential(0.003),
                                     QualityFunction::exponential(0.01)};
  auto r = marginal_allocate(caps, fs, 500.0);
  EXPECT_NEAR(r.alloc[0], 100.0, 1e-9);
  EXPECT_NEAR(r.alloc[1], 50.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.lambda, 0.0);
}

TEST(MarginalAlloc, IdenticalFunctionsReduceToWaterfill) {
  Xoshiro256 rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    const std::size_t n = 2 + rng.uniform_index(8);
    std::vector<Work> caps;
    Work total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      caps.push_back(rng.uniform(20.0, 300.0));
      total += caps.back();
    }
    const Work C = rng.uniform(total * 0.3, total * 0.8);
    std::vector<QualityFunction> fs(n, QualityFunction::exponential(0.003));
    const auto m = marginal_allocate(caps, fs, C);
    const auto w = waterfill_volumes(caps, C);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(m.alloc[i], w.alloc[i], 0.5) << "item " << i;
    }
  }
}

TEST(MarginalAlloc, SteeperFunctionWinsScarceCapacity) {
  // f with larger c has a higher marginal at low volume: under scarcity
  // it should receive more than a flat-marginal competitor.
  std::vector<Work> caps = {1000.0, 1000.0};
  std::vector<QualityFunction> fs = {QualityFunction::exponential(0.009),
                                     QualityFunction::exponential(0.0005)};
  auto r = marginal_allocate(caps, fs, 300.0);
  EXPECT_GT(r.alloc[0], r.alloc[1]);
  EXPECT_NEAR(r.used, 300.0, 1e-3);
}

TEST(MarginalAlloc, MatchesBruteForceOnTwoItems) {
  Xoshiro256 rng(11);
  for (int rep = 0; rep < 8; ++rep) {
    std::vector<Work> caps = {rng.uniform(50.0, 400.0),
                              rng.uniform(50.0, 400.0)};
    std::vector<QualityFunction> fs = {
        QualityFunction::exponential(rng.uniform(0.001, 0.01)),
        QualityFunction::sqrt(rng.uniform(500.0, 1500.0))};
    const Work C = rng.uniform(30.0, caps[0] + caps[1] - 10.0);
    const auto r = marginal_allocate(caps, fs, C);
    // Brute force: grid over p0.
    double best = -1.0;
    const Work lo = std::max(0.0, C - caps[1]);
    const Work hi = std::min(caps[0], C);
    for (int g = 0; g <= 2000; ++g) {
      const Work p0 = lo + (hi - lo) * g / 2000.0;
      const Work p1 = std::min(caps[1], C - p0);
      best = std::max(best, fs[0](p0) + fs[1](p1));
    }
    const double got = fs[0](r.alloc[0]) + fs[1](r.alloc[1]);
    EXPECT_NEAR(got, best, 2e-4) << "rep " << rep;
  }
}

TEST(MarginalAlloc, DominatesRandomFeasibleAllocations) {
  Xoshiro256 rng(13);
  for (int rep = 0; rep < 6; ++rep) {
    const std::size_t n = 3 + rng.uniform_index(5);
    std::vector<Work> caps;
    std::vector<QualityFunction> fs;
    Work total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      caps.push_back(rng.uniform(50.0, 300.0));
      total += caps.back();
      fs.push_back(rng.bernoulli(0.5)
                       ? QualityFunction::exponential(rng.uniform(0.001, 0.01))
                       : QualityFunction::log1p(0.01, 1000.0));
    }
    const Work C = rng.uniform(total * 0.2, total * 0.7);
    const auto r = marginal_allocate(caps, fs, C);
    double opt = 0.0;
    for (std::size_t i = 0; i < n; ++i) opt += fs[i](r.alloc[i]);
    for (int attempt = 0; attempt < 40; ++attempt) {
      std::vector<double> weight(n);
      double sum = 0.0;
      for (auto& w : weight) {
        w = rng.uniform(0.01, 1.0);
        sum += w;
      }
      double q = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        q += fs[i](std::min(caps[i], C * weight[i] / sum));
      }
      EXPECT_LE(q, opt + 1e-4);
    }
  }
}

TEST(MarginalAlloc, ConservationAndBounds) {
  Xoshiro256 rng(17);
  for (int rep = 0; rep < 20; ++rep) {
    const std::size_t n = 1 + rng.uniform_index(10);
    std::vector<Work> caps;
    std::vector<QualityFunction> fs;
    Work total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      caps.push_back(rng.uniform(10.0, 200.0));
      total += caps.back();
      fs.push_back(QualityFunction::exponential(rng.uniform(0.001, 0.02)));
    }
    const Work C = rng.uniform(0.0, total * 1.2);
    const auto r = marginal_allocate(caps, fs, C);
    Work used = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(r.alloc[i], -1e-9);
      EXPECT_LE(r.alloc[i], caps[i] + 1e-6);
      used += r.alloc[i];
    }
    EXPECT_NEAR(used, std::min(C, total), 0.2);
    EXPECT_NEAR(used, r.used, 1e-6);
  }
}

TEST(MarginalAlloc, EmptyAndZeroCapacity) {
  std::vector<Work> caps;
  std::vector<QualityFunction> fs;
  auto r = marginal_allocate(caps, fs, 100.0);
  EXPECT_TRUE(r.alloc.empty());
  std::vector<Work> caps2 = {10.0};
  std::vector<QualityFunction> fs2 = {QualityFunction::exponential(0.003)};
  auto r2 = marginal_allocate(caps2, fs2, 0.0);
  EXPECT_DOUBLE_EQ(r2.alloc[0], 0.0);
}

}  // namespace
}  // namespace qes
