// Live-cluster stress: many producers hammer the front end while the
// broker re-water-fills and (in the fault cases) a node dies mid-run.
// Pins the dispatcher/accounting contract: no job is lost or
// duplicated, and sheds are accounted exactly —
//
//   K == route_shed + node_shed + redistribute_shed + Σ node jobs_total
//
// for K front-end submissions (an abandoned job leaves its victim's
// accounting and lands exactly once at a survivor or as a shed).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.hpp"
#include "core/prng.hpp"
#include "workload/demand.hpp"

namespace qes::cluster {
namespace {

constexpr double kPowerTol = 1e-6;

ClusterConfig small_cluster(int nodes, DispatchPolicy policy) {
  ClusterConfig cc;
  cc.node.model.cores = 4;
  cc.node.model.power_budget = 80.0;  // overridden by the broker
  cc.node.time_scale = 50.0;          // compress wall time
  cc.node.deadline_ms = 150.0;
  cc.node.metrics_interval_ms = 50.0;
  cc.nodes = nodes;
  cc.total_budget = 80.0 * nodes;
  cc.broker_period_wall_ms = 5.0;
  cc.dispatch = policy;
  cc.submit_timeout = std::chrono::milliseconds(50);
  return cc;
}

// Each producer fires `count` requests with ~0.1 ms wall gaps; returns
// how many submit() accepted (the rest are route- or node-shed).
std::size_t produce(Cluster& cluster, std::uint64_t seed, int count) {
  Xoshiro256 rng(seed);
  const BoundedPareto demand(1.1, 20.0, 600.0);
  std::size_t accepted = 0;
  for (int i = 0; i < count; ++i) {
    runtime::Request r;
    r.demand = demand.sample(rng);
    r.partial_ok = rng.bernoulli(0.9);
    if (cluster.submit(r)) ++accepted;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return accepted;
}

void expect_conservation(const ClusterRunStats& s, std::size_t submitted) {
  std::size_t landed = s.route_shed + s.node_shed + s.redistribute_shed;
  for (const RunStats& ns : s.node_stats) landed += ns.jobs_total;
  EXPECT_EQ(landed, submitted) << "jobs lost or duplicated";
}

class ClusterStress : public ::testing::TestWithParam<DispatchPolicy> {};

TEST_P(ClusterStress, NoLossNoDuplicationUnderConcurrency) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 250;
  Cluster cluster(small_cluster(3, GetParam()));
  cluster.start();
  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&cluster, &accepted, p] {
      accepted.fetch_add(
          produce(cluster, 1000 + static_cast<std::uint64_t>(p), kPerProducer),
          std::memory_order_relaxed);
    });
  }
  for (std::thread& t : producers) t.join();
  const ClusterRunStats s = cluster.drain_and_stop();

  expect_conservation(s, kProducers * kPerProducer);
  // With every node live, accepted requests are exactly the finalized
  // ones and rejections are exactly the sheds.
  EXPECT_EQ(s.jobs_total, accepted.load());
  EXPECT_EQ(s.redistributed, 0u);
  EXPECT_EQ(s.redistribute_shed, 0u);
  EXPECT_GT(s.jobs_total, 0u);
  // Every broker decision handed out exactly H across the live nodes.
  for (const ClusterRunStats::BrokerDecision& d : s.broker_log) {
    double total = 0.0;
    for (const Watts b : d.budgets) total += b;
    EXPECT_NEAR(total, 3 * 80.0, kPowerTol);
  }
  EXPECT_LE(s.max_cluster_power, 3 * 80.0 + kPowerTol);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ClusterStress,
                         ::testing::Values(DispatchPolicy::CRR,
                                           DispatchPolicy::JSQ,
                                           DispatchPolicy::PowerOfTwo),
                         [](const auto& param_info) {
                           return std::string(
                               dispatch_policy_name(param_info.param));
                         });

TEST(ClusterKill, MidRunKillKeepsExactAccounting) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  Cluster cluster(small_cluster(3, DispatchPolicy::CRR));
  cluster.start();
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&cluster, p] {
      (void)produce(cluster, 2000 + static_cast<std::uint64_t>(p),
                    kPerProducer);
    });
  }
  // Let traffic build, then hard-stop node 1 while producers still run.
  std::this_thread::sleep_for(std::chrono::milliseconds(8));
  cluster.kill_node(1);
  cluster.kill_node(1);  // idempotent
  for (std::thread& t : producers) t.join();
  const ClusterRunStats s = cluster.drain_and_stop();

  ASSERT_TRUE(s.killed[1]);
  EXPECT_FALSE(s.killed[0]);
  EXPECT_FALSE(s.killed[2]);
  expect_conservation(s, kProducers * kPerProducer);
  // The dead node's budget went to the survivors: the decisions after
  // the kill zero node 1 and still hand out exactly H.
  ASSERT_FALSE(s.broker_log.empty());
  const ClusterRunStats::BrokerDecision& last = s.broker_log.back();
  EXPECT_EQ(last.budgets[1], 0.0);
  EXPECT_NEAR(last.budgets[0] + last.budgets[2], 3 * 80.0, kPowerTol);
  EXPECT_LE(s.max_cluster_power, 3 * 80.0 + kPowerTol);
}

TEST(ClusterKill, KillingEveryNodeShedsTheRest) {
  Cluster cluster(small_cluster(2, DispatchPolicy::JSQ));
  cluster.start();
  std::thread producer([&cluster] { (void)produce(cluster, 3000, 300); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  cluster.kill_node(0);
  cluster.kill_node(1);
  producer.join();
  const ClusterRunStats s = cluster.drain_and_stop();
  ASSERT_TRUE(s.killed[0]);
  ASSERT_TRUE(s.killed[1]);
  // Post-massacre arrivals are route-shed, not lost.
  EXPECT_GT(s.route_shed, 0u);
  expect_conservation(s, 300);
}

TEST(ClusterDrain, DrainedNodeFinishesItsQueueButTakesNoTraffic) {
  Cluster cluster(small_cluster(2, DispatchPolicy::CRR));
  cluster.start();
  (void)produce(cluster, 4000, 50);
  cluster.drain_node(0);
  const std::size_t accepted_after = produce(cluster, 4001, 100);
  const ClusterRunStats s = cluster.drain_and_stop();
  expect_conservation(s, 150);
  // Node 0 still reports the work it had; everything admitted after the
  // drain went to node 1 (CRR skips unroutable nodes).
  EXPECT_GE(s.node_stats[1].jobs_total, accepted_after);
  EXPECT_FALSE(s.killed[0]);
}

}  // namespace
}  // namespace qes::cluster
