#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "multicore/baseline_scheduler.hpp"
#include "multicore/des_scheduler.hpp"
#include "workload/generator.hpp"

namespace qes {
namespace {

// A policy exposing a hand-written plan function, used to drive the
// engine deterministically in unit tests.
class ScriptedPolicy final : public SchedulingPolicy {
 public:
  using Fn = std::function<void(Engine&)>;
  explicit ScriptedPolicy(Fn fn) : fn_(std::move(fn)) {}
  void replan(Engine& eng) override { fn_(eng); }
  [[nodiscard]] std::string name() const override { return "scripted"; }

 private:
  Fn fn_;
};

EngineConfig small_config(int cores = 2, Watts budget = 40.0) {
  EngineConfig cfg;
  cfg.cores = cores;
  cfg.power_budget = budget;
  cfg.quantum_ms = 100.0;
  cfg.counter_trigger = 0;
  return cfg;
}

TEST(Engine, SingleJobCompletesAndAccountsEnergy) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 100.0}};
  auto policy = std::make_unique<ScriptedPolicy>([](Engine& eng) {
    if (eng.waiting().empty()) return;
    const JobId id = eng.waiting().front();
    eng.assign_to_core(id, 0);
    Schedule plan;
    plan.push({eng.now(), eng.now() + 100.0, id, 1.0});  // 100 units @ 1 GHz
    eng.set_core_plan(0, std::move(plan));
  });
  Engine engine(small_config(), jobs, std::move(policy));
  auto result = engine.run();
  EXPECT_EQ(result.stats.jobs_satisfied, 1u);
  // 1 GHz => 5 W for 0.1 s => 0.5 J.
  EXPECT_NEAR(result.stats.dynamic_energy, 0.5, 1e-9);
  EXPECT_NEAR(result.stats.normalized_quality, 1.0, 1e-9);
  EXPECT_NEAR(result.jobs[0].processed, 100.0, 1e-6);
  ASSERT_EQ(result.executed.size(), 2u);
  EXPECT_NEAR(result.executed[0].volume_of(1), 100.0, 1e-6);
}

TEST(Engine, UnassignedJobExpiresWithZeroQuality) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 100.0}};
  auto policy = std::make_unique<ScriptedPolicy>([](Engine&) {});
  Engine engine(small_config(), jobs, std::move(policy));
  auto result = engine.run();
  EXPECT_EQ(result.stats.jobs_zero, 1u);
  EXPECT_NEAR(result.stats.total_quality, 0.0, 1e-12);
  EXPECT_NEAR(result.jobs[0].finalized_at, 150.0, 1e-6);
}

TEST(Engine, PartialExecutionYieldsPartialQuality) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 200.0}};
  auto policy = std::make_unique<ScriptedPolicy>([](Engine& eng) {
    if (eng.waiting().empty()) return;
    const JobId id = eng.waiting().front();
    eng.assign_to_core(id, 0);
    Schedule plan;
    plan.push({eng.now(), eng.now() + 50.0, id, 1.0});  // only 50 units
    eng.set_core_plan(0, std::move(plan));
  });
  Engine engine(small_config(), jobs, std::move(policy));
  auto result = engine.run();
  EXPECT_EQ(result.stats.jobs_partial, 1u);
  const auto f = QualityFunction::exponential(0.003);
  EXPECT_NEAR(result.stats.total_quality, f(50.0), 1e-9);
  // Passed-over partial job is finalized when the plan moves past it,
  // not at its deadline.
  EXPECT_NEAR(result.jobs[0].finalized_at, 50.0, 1e-6);
}

TEST(Engine, RigidJobGetsZeroQualityWhenIncomplete) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 200.0,
       .partial_ok = false}};
  auto policy = std::make_unique<ScriptedPolicy>([](Engine& eng) {
    if (eng.waiting().empty()) return;
    const JobId id = eng.waiting().front();
    eng.assign_to_core(id, 0);
    Schedule plan;
    plan.push({eng.now(), eng.now() + 50.0, id, 1.0});
    eng.set_core_plan(0, std::move(plan));
  });
  Engine engine(small_config(), jobs, std::move(policy));
  auto result = engine.run();
  EXPECT_NEAR(result.stats.total_quality, 0.0, 1e-12);
  EXPECT_EQ(result.stats.jobs_discarded_rigid, 1u);
}

TEST(Engine, IdlePowerIsIntegratedToTheLastDeadline) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 1000.0, .demand = 10.0}};
  auto policy = std::make_unique<ScriptedPolicy>([](Engine& eng) {
    for (int i = 0; i < eng.cores(); ++i) {
      eng.set_core_idle_power(i, 10.0);  // No-DVFS style constant burn
    }
    if (eng.waiting().empty()) return;
    const JobId id = eng.waiting().front();
    eng.assign_to_core(id, 0);
    Schedule plan;
    plan.push({eng.now(), eng.now() + 10.0, id, 1.0});
    eng.set_core_plan(0, std::move(plan));
  });
  Engine engine(small_config(), jobs, std::move(policy));
  auto result = engine.run();
  // Core 0: 5 W for 10 ms + 10 W for 990 ms; core 1: 10 W for 1000 ms.
  const double expected = (5.0 * 0.01) + (10.0 * 0.99) + (10.0 * 1.0);
  EXPECT_NEAR(result.stats.dynamic_energy, expected, 1e-6);
  EXPECT_NEAR(result.stats.end_time, 1000.0, 1e-9);
}

TEST(Engine, PowerBudgetViolationDies) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 100.0}};
  auto policy = std::make_unique<ScriptedPolicy>([](Engine& eng) {
    if (eng.waiting().empty()) return;
    const JobId id = eng.waiting().front();
    eng.assign_to_core(id, 0);
    Schedule plan;
    plan.push({eng.now(), eng.now() + 20.0, id, 5.0});  // 125 W > 40 W
    eng.set_core_plan(0, std::move(plan));
  });
  Engine engine(small_config(), jobs, std::move(policy));
  EXPECT_DEATH(engine.run(), "power exceeded");
}

TEST(Engine, PlanPastDeadlineDies) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 400.0}};
  auto policy = std::make_unique<ScriptedPolicy>([](Engine& eng) {
    if (eng.waiting().empty()) return;
    const JobId id = eng.waiting().front();
    eng.assign_to_core(id, 0);
    Schedule plan;
    plan.push({eng.now(), eng.now() + 200.0, id, 2.0});
    eng.set_core_plan(0, std::move(plan));
  });
  Engine engine(small_config(), jobs, std::move(policy));
  EXPECT_DEATH(engine.run(), "deadline");
}

TEST(Engine, AssigningNonWaitingJobDies) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 100.0}};
  auto policy = std::make_unique<ScriptedPolicy>([](Engine& eng) {
    if (eng.waiting().empty()) return;
    eng.assign_to_core(1, 0);
    eng.assign_to_core(1, 1);  // already assigned
  });
  Engine engine(small_config(), jobs, std::move(policy));
  EXPECT_DEATH(engine.run(), "waiting");
}

TEST(EngineConfig, CoreSpeedCapValidatesItsArguments) {
  EngineConfig cfg;
  cfg.cores = 4;
  cfg.max_core_speed = 2.5;
  EXPECT_DOUBLE_EQ(cfg.core_speed_cap(0), 2.5);
  cfg.per_core_max_speed = {2.0, 2.0, 1.0, 1.0};
  EXPECT_DOUBLE_EQ(cfg.core_speed_cap(3), 1.0);
  EXPECT_DEATH((void)cfg.core_speed_cap(4), "out of range");
  EXPECT_DEATH((void)cfg.core_speed_cap(-1), "out of range");
  // A partially filled per-core vector must die, not silently index.
  cfg.per_core_max_speed = {2.0, 2.0};
  EXPECT_DEATH((void)cfg.core_speed_cap(3), "one entry per core");
  EXPECT_DEATH((void)cfg.core_speed_cap(0), "one entry per core");
}

TEST(Engine, PerCoreCapSizeMismatchDies) {
  EngineConfig cfg = small_config(2);
  cfg.per_core_max_speed = {2.0};  // 2 cores, 1 entry
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 10.0}};
  EXPECT_DEATH(Engine(cfg, jobs,
                      std::make_unique<ScriptedPolicy>([](Engine&) {})),
               "per_core_max_speed");
}

TEST(Engine, PerCoreCapViolationDies) {
  EngineConfig cfg = small_config(2);
  cfg.per_core_max_speed = {2.0, 0.5};
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 10.0}};
  auto policy = std::make_unique<ScriptedPolicy>([](Engine& eng) {
    if (eng.waiting().empty()) return;
    eng.assign_to_core(1, 1);
    Schedule plan;
    plan.push({eng.now(), eng.now() + 10.0, 1, 1.0});  // cap is 0.5
    eng.set_core_plan(1, std::move(plan));
  });
  Engine engine(cfg, jobs, std::move(policy));
  EXPECT_DEATH(engine.run(), "hardware cap");
}

TEST(Engine, RequiresDenseIds) {
  std::vector<Job> jobs = {
      {.id = 7, .release = 0.0, .deadline = 150.0, .demand = 100.0}};
  EXPECT_DEATH(Engine(small_config(), jobs,
                      std::make_unique<ScriptedPolicy>([](Engine&) {})),
               "dense ids");
}

TEST(Engine, ResumeModeKeepsPassedJobsAlive) {
  EngineConfig cfg = small_config();
  cfg.resume_passed_jobs = true;
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 200.0}};
  int replans = 0;
  auto policy = std::make_unique<ScriptedPolicy>([&replans](Engine& eng) {
    ++replans;
    if (!eng.waiting().empty()) {
      eng.assign_to_core(eng.waiting().front(), 0);
    }
    if (eng.assigned(0).empty()) return;
    const JobId id = eng.assigned(0).front();
    const JobState& st = eng.job(id);
    // Plan 50 units per quantum; the job survives being passed over.
    const Work chunk = std::min(50.0, st.job.demand - st.processed);
    if (chunk <= 0.0) return;
    Schedule plan;
    plan.push({eng.now(), eng.now() + chunk, id, 1.0});
    eng.set_core_plan(0, std::move(plan));
  });
  Engine engine(cfg, jobs, std::move(policy));
  auto result = engine.run();
  // Quantum fires at 100ms; first (idle-trigger) replan at arrival plans
  // 50 units [0,50]; second at 100ms plans 50 more; deadline at 150
  // finalizes with 100 processed.
  EXPECT_NEAR(result.jobs[0].processed, 100.0, 1e-6);
  EXPECT_EQ(result.stats.jobs_partial, 1u);
  EXPECT_GE(replans, 2);
}

TEST(Engine, LatencyStatisticsForSatisfiedJobs) {
  // Two jobs completing at known times; the partial third is excluded
  // from latency stats.
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 50.0},
      {.id = 2, .release = 0.0, .deadline = 150.0, .demand = 50.0},
      {.id = 3, .release = 500.0, .deadline = 650.0, .demand = 500.0}};
  auto policy = std::make_unique<ScriptedPolicy>([](Engine& eng) {
    while (!eng.waiting().empty()) {
      eng.assign_to_core(eng.waiting().front(), 0);
    }
    Schedule plan;
    Time t = eng.now();
    for (JobId id : eng.assigned(0)) {
      const JobState& st = eng.job(id);
      const Work rem = st.job.demand - st.processed;
      const Work exec = std::min(rem, (st.job.deadline - t) * 1.0);
      if (exec <= 0.0) continue;
      plan.push({t, t + exec / 1.0, id, 1.0});
      t += exec / 1.0;
    }
    eng.set_core_plan(0, std::move(plan));
  });
  EngineConfig cfg = small_config(1);
  Engine engine(cfg, jobs, std::move(policy));
  auto result = engine.run();
  // Job 1 finishes at 50, job 2 at 100; job 3 is partial (150 of 500).
  EXPECT_EQ(result.stats.jobs_satisfied, 2u);
  EXPECT_NEAR(result.stats.mean_latency, 75.0, 1e-6);
  EXPECT_NEAR(result.stats.p50_latency, 100.0, 1e-6);
  EXPECT_NEAR(result.stats.p99_latency, 100.0, 1e-6);
}

TEST(Engine, LatencyZeroWhenNothingSatisfied) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 100.0}};
  Engine engine(small_config(), jobs,
                std::make_unique<ScriptedPolicy>([](Engine&) {}));
  auto result = engine.run();
  EXPECT_DOUBLE_EQ(result.stats.mean_latency, 0.0);
  EXPECT_DOUBLE_EQ(result.stats.p99_latency, 0.0);
}

TEST(Engine, ConservationAcrossFullDesRun) {
  WorkloadConfig wl;
  wl.arrival_rate = 150.0;
  wl.horizon_ms = 10'000.0;
  auto jobs = generate_websearch_jobs(wl);
  EngineConfig cfg;  // paper defaults: 16 cores, 320 W
  Engine engine(cfg, jobs, make_des_policy());
  auto result = engine.run();

  // Volume conservation: per-job processed == executed segment volumes.
  std::map<JobId, Work> executed;
  for (const Schedule& s : result.executed) {
    for (const auto& [id, v] : s.volumes()) executed[id] += v;
  }
  for (const JobState& st : result.jobs) {
    const Work ex = executed.count(st.job.id) ? executed[st.job.id] : 0.0;
    EXPECT_NEAR(ex, st.processed, 1e-4 + 1e-6 * st.job.demand);
    EXPECT_LE(st.processed, st.job.demand + 1e-5);
    EXPECT_GE(st.quality, 0.0);
  }

  // Energy conservation: integrated energy == sum over executed segments
  // (DES on C-DVFS has zero idle power).
  Joules seg_energy = 0.0;
  for (const Schedule& s : result.executed) {
    seg_energy += s.dynamic_energy(cfg.power_model);
  }
  EXPECT_NEAR(seg_energy, result.stats.dynamic_energy,
              1e-6 * result.stats.dynamic_energy + 1e-6);

  // Budget respected.
  EXPECT_LE(result.stats.peak_power, cfg.power_budget * (1.0 + 1e-6) + 1e-6);
  // Quality normalized into [0, 1].
  EXPECT_GE(result.stats.normalized_quality, 0.0);
  EXPECT_LE(result.stats.normalized_quality, 1.0 + 1e-9);
  EXPECT_EQ(result.stats.jobs_total, jobs.size());
  EXPECT_EQ(result.stats.jobs_satisfied + result.stats.jobs_partial +
                result.stats.jobs_zero,
            jobs.size());
}

}  // namespace
}  // namespace qes
