// Wire-level shed accounting: blast a tiny-admission-queue server with
// more SUBMITs than it can take and verify the three shed ledgers agree
// exactly — REPLY(shed) frames observed by the client, the ingress's
// shed_on_wire counter, Server::shed() / qesd_shed_total, and the final
// RunStats (submitted == jobs_total + shed).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/socket_util.hpp"
#include "obs/registry.hpp"
#include "runtime/server.hpp"

namespace qes {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

runtime::ServerConfig tiny_queue_config() {
  runtime::ServerConfig sc;
  sc.model.cores = 8;
  sc.model.power_budget = 160.0;
  sc.time_scale = 20.0;
  sc.deadline_ms = 150.0;
  // The shed pressure: a blast of hundreds of SUBMITs meets an
  // admission queue of 8 drained every 50 wall ms.
  sc.admission_capacity = 8;
  sc.tick_wall_ms = 50.0;
  sc.metrics_interval_ms = 10000.0;
  sc.listen_port = 0;
  sc.ingress_workers = 1;
  return sc;
}

TEST(NetIngressShed, WireShedsReconcileWithServerAccounting) {
  constexpr std::uint64_t kBlast = 500;

  runtime::Server server(tiny_queue_config());
  server.start();
  ASSERT_GT(server.listen_port(), 0);

  const int fd = net::connect_loopback(server.listen_port());
  net::set_tcp_nodelay(fd);
  std::string wire;
  for (std::uint64_t i = 0; i < kBlast; ++i) {
    net::SubmitFrame f;
    f.req_id = i;
    f.demand = 200.0;
    f.partial_ok = true;
    net::encode_submit(f, wire);
  }
  ASSERT_TRUE(net::send_all(fd, wire));

  // Every request resolves as either a shed or a finalized job.
  const steady_clock::time_point deadline =
      steady_clock::now() + milliseconds(5000);
  for (;;) {
    const runtime::MetricsSnapshot snap = server.snapshot();
    if (snap.shed + snap.finalized >= kBlast) break;
    ASSERT_LT(steady_clock::now(), deadline)
        << "shed=" << snap.shed << " finalized=" << snap.finalized;
    std::this_thread::sleep_for(milliseconds(5));
  }

  const RunStats stats = server.drain_and_stop();

  // drain_and_stop() flushed the reply buffers and closed the sockets,
  // so the client's view is complete at EOF.
  const std::string raw = net::recv_until_eof(fd);
  ::close(fd);
  net::FrameDecoder dec;
  dec.feed(raw.data(), raw.size());
  net::Frame frame;
  std::uint64_t replies = 0;
  std::uint64_t wire_shed = 0;
  while (dec.next(&frame) == net::FrameDecoder::Result::kFrame) {
    ASSERT_EQ(frame.type, net::FrameType::kReply);
    ++replies;
    if (frame.reply.status == net::ReplyStatus::kShed) ++wire_shed;
  }

  // One REPLY per SUBMIT, no loss, no duplication.
  EXPECT_EQ(replies, kBlast);
  EXPECT_GT(wire_shed, 0u) << "blast failed to overload the tiny queue";

  // The four ledgers: client-observed sheds, ingress wire counter,
  // server counter (+ registry mirror), and the run statistics.
  ASSERT_NE(server.ingress(), nullptr);
  EXPECT_EQ(server.ingress()->shed_on_wire_total(), wire_shed);
  EXPECT_EQ(server.shed(), wire_shed);
  const obs::Counter* shed_counter =
      server.registry().find_counter("qesd_shed_total");
  ASSERT_NE(shed_counter, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(shed_counter->value()), wire_shed);
  EXPECT_EQ(stats.jobs_total + wire_shed, kBlast);
  EXPECT_EQ(server.ingress()->replies_total(), kBlast);
}

}  // namespace
}  // namespace qes
