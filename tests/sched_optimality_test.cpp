// Stronger optimality evidence for Quality-OPT / QE-OPT via the
// feasibility polytope.
//
// For agreeable deadlines, a volume vector (p_1..p_n) is EDF-feasible at
// fixed speed s iff every interval constraint holds:
//     sum_{[r_k,d_k] subseteq [r_i,d_j]} p_k <= s * (d_j - r_i).
// Maximizing the concave sum f(p_k) over this polytope is a concave
// program, so LOCAL optimality implies GLOBAL optimality. These tests
// verify no feasible ascent direction exists at Quality-OPT's solution:
// no single-job increase and no pairwise volume transfer improves the
// total quality.
#include <gtest/gtest.h>

#include "core/prng.hpp"
#include "core/quality.hpp"
#include "multicore/des_scheduler.hpp"
#include "obs/registry.hpp"
#include "sched/qe_opt.hpp"
#include "sched/quality_opt.hpp"
#include "sched/yds.hpp"
#include "sim/engine.hpp"
#include "test_util.hpp"

namespace qes {
namespace {

// Checks all interval constraints for a volume vector.
bool volumes_feasible(const AgreeableJobSet& set,
                      std::span<const Work> volumes, Speed speed) {
  const std::size_t n = set.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const Time z = set[i].release;
      const Time z2 = set[j].deadline;
      Work contained = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        if (set[k].release >= z - kTimeEps &&
            set[k].deadline <= z2 + kTimeEps) {
          contained += volumes[k];
        }
      }
      if (contained > speed * (z2 - z) + 1e-6) return false;
    }
  }
  return true;
}

class OptimalityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimalityTest, QualityOptVolumesAreFeasible) {
  Xoshiro256 rng(GetParam());
  for (int rep = 0; rep < 6; ++rep) {
    auto jobs = test::random_agreeable_jobs_varwindow(rng, 15, 400.0);
    AgreeableJobSet set(jobs);
    const Speed s = rng.uniform(0.4, 2.0);
    const auto r = quality_opt_schedule(set, s);
    EXPECT_TRUE(volumes_feasible(set, r.volumes, s));
  }
}

TEST_P(OptimalityTest, NoSingleJobIncreaseIsFeasibleOrProfitable) {
  // Every job is either saturated (p == w) or blocked by a tight
  // interval constraint: otherwise adding volume would raise quality
  // (f strictly increasing), contradicting optimality.
  Xoshiro256 rng(GetParam() ^ 0x51ULL);
  for (int rep = 0; rep < 6; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 12, 300.0);
    AgreeableJobSet set(jobs);
    const Speed s = rng.uniform(0.4, 1.5);
    const auto r = quality_opt_schedule(set, s);
    const double eps = 0.5;
    for (std::size_t k = 0; k < set.size(); ++k) {
      if (r.volumes[k] + eps > set[k].demand) continue;  // saturated
      auto bumped = r.volumes;
      bumped[k] += eps;
      EXPECT_FALSE(volumes_feasible(set, bumped, s))
          << "job " << set[k].id << " could have received more volume";
    }
  }
}

TEST_P(OptimalityTest, NoPairwiseTransferImprovesQuality) {
  // Moving volume between two jobs while staying feasible must not
  // increase sum f(p) — checked for several concave f simultaneously,
  // since Quality-OPT's allocation is f-independent.
  Xoshiro256 rng(GetParam() ^ 0x52ULL);
  const std::vector<QualityFunction> fs = {
      QualityFunction::exponential(0.003),
      QualityFunction::exponential(0.012), QualityFunction::sqrt(1000.0)};
  for (int rep = 0; rep < 4; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 10, 250.0);
    AgreeableJobSet set(jobs);
    const Speed s = rng.uniform(0.4, 1.2);
    const auto r = quality_opt_schedule(set, s);
    const std::vector<double> base_q = [&] {
      std::vector<double> q;
      for (const auto& f : fs) q.push_back(total_quality(r.volumes, f));
      return q;
    }();
    for (double eps : {2.0, 10.0}) {
      for (std::size_t a = 0; a < set.size(); ++a) {
        for (std::size_t b = 0; b < set.size(); ++b) {
          if (a == b || r.volumes[a] < eps) continue;
          auto moved = r.volumes;
          moved[a] -= eps;
          moved[b] = std::min(moved[b] + eps, set[b].demand);
          if (!volumes_feasible(set, moved, s)) continue;
          for (std::size_t fi = 0; fi < fs.size(); ++fi) {
            EXPECT_LE(total_quality(moved, fs[fi]), base_q[fi] + 1e-7)
                << "transfer " << set[a].id << "->" << set[b].id
                << " improved " << fs[fi].name();
          }
        }
      }
    }
  }
}

TEST_P(OptimalityTest, YdsNoPairwiseSpeedSwapReducesEnergy) {
  // Energy-side local optimality: slowing one job down and speeding a
  // neighbour up (keeping the FIFO timetable feasible) must not reduce
  // total energy.
  Xoshiro256 rng(GetParam() ^ 0x53ULL);
  const PowerModel pm = default_power_model();
  for (int rep = 0; rep < 5; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 10, 300.0);
    AgreeableJobSet set(jobs);
    const auto r = yds_schedule(set);
    const Joules base = yds_energy(set, r, pm);
    for (double factor : {0.9, 0.95, 1.05, 1.1}) {
      for (std::size_t k = 0; k < set.size(); ++k) {
        auto speeds = r.speeds;
        speeds[k] *= factor;
        // Rebuild the FIFO timetable; skip if infeasible.
        Time t = set[0].release;
        bool feasible = true;
        Joules energy = 0.0;
        for (std::size_t i = 0; i < set.size(); ++i) {
          const Time start = std::max(t, set[i].release);
          const Time dur = set[i].demand / speeds[i];
          if (start + dur > set[i].deadline + 1e-9) {
            feasible = false;
            break;
          }
          energy += pm.dynamic_energy(speeds[i], dur);
          t = start + dur;
        }
        if (feasible) {
          EXPECT_GE(energy, base - 1e-9)
              << "scaling job " << set[k].id << " by " << factor
              << " reduced energy";
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimalityTest,
                         ::testing::Values(71u, 72u, 73u, 74u));

// ---- Online vs offline differential ----------------------------------
//
// The engine driving Online-QE on a single core is an *online* feasible
// schedule at the budget-supported speed, so its executed volume vector
// lies inside the feasibility polytope above; QE-OPT maximizes the
// concave quality sum over that polytope. Hence on every trace:
// online quality <= offline-optimal quality, and the instantaneous power
// cap bounds the integrated energy by H * T. With a registry attached
// the mirrored histograms must reconcile exactly with the RunStats of
// the same run (the obs layer is a pure observer).

class OnlineOfflineDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OnlineOfflineDifferentialTest,
       OnlineQeBoundedByQeOptOnRandomTraces) {
  // 60 traces per seed instance, 4 instances => 240 random traces.
  Xoshiro256 rng(GetParam() ^ 0xD1FFULL);
  for (int rep = 0; rep < 60; ++rep) {
    const std::size_t n = 4 + rng.uniform_index(12);
    const Time horizon = rng.uniform(300.0, 900.0);
    const Time window = rng.uniform(80.0, 250.0);
    std::vector<Job> jobs =
        test::random_agreeable_jobs(rng, n, horizon, window);
    // The engine wants dense ids 1..n in arrival order; the generator
    // numbers before sorting by release.
    for (std::size_t k = 0; k < jobs.size(); ++k) jobs[k].id = k + 1;
    const Watts H = rng.uniform(10.0, 60.0);

    EngineConfig cfg;
    cfg.cores = 1;
    cfg.power_budget = H;
    cfg.record_execution = false;
    obs::Registry reg;
    cfg.registry = &reg;
    Engine engine(cfg, jobs, make_des_policy());
    const RunStats s = engine.run().stats;
    ASSERT_EQ(s.jobs_total, jobs.size());

    const Speed smax = cfg.power_model.speed_for_power(H);
    const auto opt = qe_opt_schedule(AgreeableJobSet(jobs), smax);
    const double opt_q = total_quality(opt.volumes, cfg.quality);
    EXPECT_LE(s.total_quality, opt_q + 1e-6)
        << "online beat the offline optimum (seed=" << GetParam()
        << " rep=" << rep << ")";

    // Energy within the budget over the accounted window, and the cap
    // held instant by instant.
    EXPECT_LE(s.peak_power, H * (1.0 + 1e-9) + 1e-9);
    EXPECT_LE(s.dynamic_energy,
              H * s.end_time / 1000.0 * (1.0 + 1e-9) + 1e-9);

    // Obs reconciliation: histogram totals match the aggregates exactly.
    const obs::Histogram* hq = reg.find_histogram("qes_sim_job_quality");
    const obs::Histogram* hl =
        reg.find_histogram("qes_sim_job_latency_ms");
    ASSERT_NE(hq, nullptr);
    ASSERT_NE(hl, nullptr);
    EXPECT_EQ(hq->count(), s.jobs_total);
    EXPECT_EQ(hq->sum(), s.total_quality);  // bitwise
    EXPECT_EQ(hl->count(), s.jobs_satisfied);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OnlineOfflineDifferentialTest,
                         ::testing::Values(211u, 212u, 213u, 214u));

}  // namespace
}  // namespace qes
