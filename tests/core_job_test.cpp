#include "core/job.hpp"

#include <gtest/gtest.h>

#include "core/prng.hpp"
#include "test_util.hpp"

namespace qes {
namespace {

TEST(Job, WindowLength) {
  Job j{.id = 1, .release = 10.0, .deadline = 160.0, .demand = 100.0};
  EXPECT_DOUBLE_EQ(j.window(), 150.0);
}

TEST(Job, AgreeableDetection) {
  std::vector<Job> ok = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 1.0},
      {.id = 2, .release = 50.0, .deadline = 200.0, .demand = 1.0},
      {.id = 3, .release = 50.0, .deadline = 220.0, .demand = 1.0},
  };
  EXPECT_TRUE(deadlines_agreeable(ok));

  std::vector<Job> bad = {
      {.id = 1, .release = 0.0, .deadline = 300.0, .demand = 1.0},
      {.id = 2, .release = 50.0, .deadline = 200.0, .demand = 1.0},
  };
  EXPECT_FALSE(deadlines_agreeable(bad));
}

TEST(Job, AgreeableWithEqualDeadlines) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 1.0},
      {.id = 2, .release = 10.0, .deadline = 150.0, .demand = 1.0},
  };
  EXPECT_TRUE(deadlines_agreeable(jobs));
}

TEST(Job, SortByRelease) {
  std::vector<Job> jobs = {
      {.id = 2, .release = 50.0, .deadline = 200.0, .demand = 1.0},
      {.id = 1, .release = 0.0, .deadline = 150.0, .demand = 1.0},
      {.id = 3, .release = 50.0, .deadline = 180.0, .demand = 1.0},
  };
  sort_by_release(jobs);
  EXPECT_EQ(jobs[0].id, 1u);
  EXPECT_EQ(jobs[1].id, 3u);  // same release, earlier deadline first
  EXPECT_EQ(jobs[2].id, 2u);
}

TEST(Job, TotalDemand) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 1.0, .demand = 10.0},
      {.id = 2, .release = 0.0, .deadline = 1.0, .demand = 32.5},
  };
  EXPECT_DOUBLE_EQ(total_demand(jobs), 42.5);
}

TEST(AgreeableJobSet, PrefixSumsAndIntensity) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 50.0},
      {.id = 2, .release = 20.0, .deadline = 120.0, .demand = 30.0},
      {.id = 3, .release = 60.0, .deadline = 160.0, .demand = 20.0},
  };
  AgreeableJobSet set(jobs);
  EXPECT_DOUBLE_EQ(set.demand_between(0, 2), 100.0);
  EXPECT_DOUBLE_EQ(set.demand_between(1, 1), 30.0);
  // g([r_0, d_1]) = (50 + 30) / (120 - 0)
  EXPECT_NEAR(set.intensity(0, 1), 80.0 / 120.0, 1e-12);
}

TEST(AgreeableJobSet, SortsOnConstruction) {
  std::vector<Job> jobs = {
      {.id = 2, .release = 20.0, .deadline = 120.0, .demand = 30.0},
      {.id = 1, .release = 0.0, .deadline = 100.0, .demand = 50.0},
  };
  AgreeableJobSet set(jobs);
  EXPECT_EQ(set[0].id, 1u);
  EXPECT_EQ(set[1].id, 2u);
}

TEST(AgreeableJobSet, RejectsNonAgreeable) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 0.0, .deadline = 300.0, .demand = 1.0},
      {.id = 2, .release = 50.0, .deadline = 200.0, .demand = 1.0},
  };
  EXPECT_DEATH({ AgreeableJobSet set(jobs); }, "agreeable");
}

TEST(AgreeableJobSet, RejectsEmptyWindow) {
  std::vector<Job> jobs = {
      {.id = 1, .release = 10.0, .deadline = 10.0, .demand = 1.0},
  };
  EXPECT_DEATH({ AgreeableJobSet set(jobs); }, "window");
}

TEST(JobGenerators, RandomAgreeableSetsAreAgreeable) {
  Xoshiro256 rng(42);
  for (int rep = 0; rep < 20; ++rep) {
    auto jobs = test::random_agreeable_jobs(rng, 30);
    EXPECT_TRUE(deadlines_agreeable(jobs));
    auto varied = test::random_agreeable_jobs_varwindow(rng, 30);
    EXPECT_TRUE(deadlines_agreeable(varied));
  }
}

}  // namespace
}  // namespace qes
