// Property tests of the hierarchical water-fill broker, pinning the two
// invariants documented in src/cluster/budget_broker.hpp:
//
//   conservation   Σ filled == min(H, Σ demand) and Σ budgets == H over
//                  the live nodes, for any demand vector
//   monotonicity   a node's final budget never decreases when only its
//                  own reported load grows
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "cluster/budget_broker.hpp"
#include "core/prng.hpp"

namespace qes::cluster {
namespace {

constexpr double kTol = 1e-9;

double live_sum(const std::vector<Watts>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

std::vector<Watts> random_demands(Xoshiro256& rng, std::size_t n,
                                  double scale) {
  std::vector<Watts> d(n);
  for (Watts& x : d) {
    // Mix of idle, light, and heavy nodes, occasionally exactly zero.
    const double u = rng.uniform(0.0, 1.0);
    x = u < 0.1 ? 0.0 : u * scale;
  }
  return d;
}

TEST(BrokerSplit, ConservationOverRandomLoads) {
  Xoshiro256 rng(17);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t n = 1 + rng.uniform_index(8);
    const double h = 10.0 + rng.uniform(0.0, 1.0) * 600.0;
    const std::vector<Watts> demands =
        random_demands(rng, n, /*scale=*/2.0 * h / static_cast<double>(n));
    const BrokerSplit s = broker_split(demands, h);
    ASSERT_EQ(s.filled.size(), n);
    ASSERT_EQ(s.budgets.size(), n);
    // Water-fill conservation: exactly min(H, Σ demand) is allocated.
    const double want = std::min(h, live_sum(demands));
    EXPECT_NEAR(live_sum(s.filled), want, kTol * std::max(1.0, want));
    // Headroom hand-back: the final budgets always sum to exactly H.
    EXPECT_NEAR(live_sum(s.budgets), h, kTol * h);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(s.filled[i], -kTol);
      // No node is filled past its own request.
      EXPECT_LE(s.filled[i], demands[i] + kTol);
      EXPECT_GE(s.budgets[i], s.filled[i] - kTol);
    }
  }
}

TEST(BrokerSplit, BudgetMonotoneInOwnLoad) {
  Xoshiro256 rng(23);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t n = 2 + rng.uniform_index(7);
    const double h = 50.0 + rng.uniform(0.0, 1.0) * 500.0;
    std::vector<Watts> demands =
        random_demands(rng, n, /*scale=*/2.0 * h / static_cast<double>(n));
    const std::size_t i = rng.uniform_index(n);
    const BrokerSplit before = broker_split(demands, h);
    // Grow only node i's reported load; everyone else unchanged.
    demands[i] += rng.uniform(0.0, 1.0) * h;
    const BrokerSplit after = broker_split(demands, h);
    EXPECT_GE(after.budgets[i], before.budgets[i] - kTol * h)
        << "reporting more load cost node " << i << " power";
  }
}

TEST(BrokerSplit, DeadNodesGetZeroAndSurvivorsSplitH) {
  const double h = 300.0;
  const std::vector<Watts> demands{120.0, -1.0, 40.0, -1.0};
  const BrokerSplit s = broker_split(demands, h);
  EXPECT_EQ(s.filled[1], 0.0);
  EXPECT_EQ(s.budgets[1], 0.0);
  EXPECT_EQ(s.filled[3], 0.0);
  EXPECT_EQ(s.budgets[3], 0.0);
  // The live pair is unsaturated (160 < 300): both fully filled, and the
  // headroom comes back in equal shares so the budgets still sum to H.
  EXPECT_NEAR(s.filled[0], 120.0, kTol);
  EXPECT_NEAR(s.filled[2], 40.0, kTol);
  EXPECT_NEAR(s.budgets[0] + s.budgets[2], h, kTol);
  EXPECT_NEAR(s.budgets[0] - s.filled[0], s.budgets[2] - s.filled[2], kTol);
}

TEST(BrokerSplit, SaturatedSplitIsWaterLevel) {
  // Demands far beyond H: water-filling converges to an equal split for
  // symmetric demands, and never allocates more than the request.
  const double h = 100.0;
  const BrokerSplit s = broker_split({500.0, 500.0}, h);
  EXPECT_NEAR(s.budgets[0], 50.0, kTol);
  EXPECT_NEAR(s.budgets[1], 50.0, kTol);
  // Asymmetric saturation: the small demand is fully covered, the rest
  // of H goes to the big one.
  const BrokerSplit t = broker_split({10.0, 500.0}, h);
  EXPECT_NEAR(t.filled[0], 10.0, kTol);
  EXPECT_NEAR(t.filled[1], 90.0, kTol);
  EXPECT_NEAR(t.budgets[0] + t.budgets[1], h, kTol);
}

TEST(BrokerSplit, SingleLiveNodeAlwaysGetsH) {
  // The N=1 identity the cluster conformance relies on: whatever the
  // node reports, its budget is H up to one ulp of surplus arithmetic
  // (filled + (H - filled)); the lockstep's change threshold absorbs
  // that noise, so the lone node never sees a budget change.
  for (const double demand : {0.0, 1.0, 99.5, 1e6}) {
    const BrokerSplit s = broker_split({demand}, 320.0);
    EXPECT_NEAR(s.budgets[0], 320.0, 1e-10);
  }
  const BrokerSplit s = broker_split({-1.0, 42.0, -1.0}, 320.0);
  EXPECT_NEAR(s.budgets[1], 320.0, 1e-10);
}

TEST(BudgetBroker, HoldsConfiguration) {
  const BudgetBroker broker(640.0, 25.0);
  EXPECT_EQ(broker.total_budget(), 640.0);
  EXPECT_EQ(broker.period_ms(), 25.0);
  const BrokerSplit s = broker.split({100.0, 100.0});
  EXPECT_NEAR(s.budgets[0] + s.budgets[1], 640.0, kTol);
}

}  // namespace
}  // namespace qes::cluster
