// Exposition lint: the in-repo Prometheus text parser must accept every
// exposition Registry::to_prometheus() can produce — via the string API
// and via a live /metrics scrape — and must reject the format
// violations it documents.
#include <gtest/gtest.h>

#include <string>

#include "obs/http_exporter.hpp"
#include "obs/promlint.hpp"
#include "obs/registry.hpp"

namespace qes {
namespace {

// A registry exercising every exposition feature: help-less
// instruments, label escaping, multi-series families, histograms.
void populate(obs::Registry& reg) {
  reg.counter("qes_jobs_total", "jobs admitted").add(42.0);
  reg.counter("qes_jobs_total", "jobs admitted", {{"outcome", "satisfied"}})
      .add(40.0);
  reg.counter("qes_no_help_total").inc();
  reg.gauge("qes_queue_depth", "waiting jobs").set(7.0);
  reg.gauge("qes_path", "label-escaping probe",
            {{"dir", "a\\b"}, {"quote", "say \"hi\"\nbye"}})
      .set(1.0);
  obs::Histogram& h =
      reg.histogram("qes_latency_ms", "per-job latency", {},
                    obs::Histogram(0.5, 2.0, 6));
  for (double v : {0.3, 1.0, 7.5, 900.0}) h.record(v);
  reg.histogram("qes_latency_ms", "per-job latency", {{"node", "1"}},
                obs::Histogram(0.5, 2.0, 6))
      .record(2.0);
}

TEST(PromLint, RegistryExpositionIsClean) {
  obs::Registry reg;
  populate(reg);
  const obs::PromLintResult r = obs::prom_lint(reg.to_prometheus());
  EXPECT_TRUE(r.ok()) << r.error_text();

  // Families come back in exposition order with their declared shape.
  ASSERT_EQ(r.families.size(), 5u);
  EXPECT_EQ(r.families[0].name, "qes_jobs_total");
  EXPECT_EQ(r.families[0].type, "counter");
  EXPECT_EQ(r.families[0].help, "jobs admitted");
  EXPECT_EQ(r.families[0].samples.size(), 2u);
  EXPECT_DOUBLE_EQ(r.families[0].samples[0].value, 42.0);

  // Escaped label values round-trip back to the original strings.
  bool found_probe = false;
  for (const obs::PromFamily& f : r.families) {
    if (f.name != "qes_path") continue;
    found_probe = true;
    ASSERT_EQ(f.samples.size(), 1u);
    const obs::Labels& ls = f.samples[0].labels;
    ASSERT_EQ(ls.size(), 2u);
    EXPECT_EQ(ls[0].second, "a\\b");
    EXPECT_EQ(ls[1].second, "say \"hi\"\nbye");
  }
  EXPECT_TRUE(found_probe);

  // The histogram family carries both label sets' bucket series.
  const obs::PromFamily& hist = r.families.back();
  EXPECT_EQ(hist.name, "qes_latency_ms");
  EXPECT_EQ(hist.type, "histogram");
  std::size_t inf_buckets = 0;
  for (const obs::PromSample& s : hist.samples) {
    if (s.name != "qes_latency_ms_bucket") continue;
    for (const auto& [k, v] : s.labels) {
      if (k == "le" && v == "+Inf") ++inf_buckets;
    }
  }
  EXPECT_EQ(inf_buckets, 2u);
}

TEST(PromLint, LiveScrapeOnEphemeralPortIsClean) {
  obs::Registry reg;
  populate(reg);
  obs::HttpExporter exporter(0);
  exporter.handle("/metrics", "text/plain; version=0.0.4",
                  [&reg] { return reg.to_prometheus(); });
  exporter.start();
  ASSERT_GT(exporter.port(), 0);

  std::string status;
  const std::string body = obs::http_get(exporter.port(), "/metrics", &status);
  EXPECT_NE(status.find("200"), std::string::npos) << status;
  EXPECT_EQ(body, reg.to_prometheus());
  const obs::PromLintResult r = obs::prom_lint(body);
  EXPECT_TRUE(r.ok()) << r.error_text();
  exporter.stop();
}

TEST(PromLint, RejectsBadMetricName) {
  const obs::PromLintResult r = obs::prom_lint("9bad_name 1\n");
  EXPECT_FALSE(r.ok());
}

TEST(PromLint, RejectsBadLabelNameAndBadEscape) {
  EXPECT_FALSE(obs::prom_lint("# TYPE m gauge\nm{9l=\"v\"} 1\n").ok());
  EXPECT_FALSE(obs::prom_lint("# TYPE m gauge\nm{l=\"\\q\"} 1\n").ok());
  EXPECT_FALSE(obs::prom_lint("# TYPE m gauge\nm{l=\"a\",l=\"b\"} 1\n").ok());
  EXPECT_TRUE(obs::prom_lint("# TYPE m gauge\nm{l=\"a\\\\b\\n\"} 1\n").ok());
}

TEST(PromLint, RejectsSampleWithoutType) {
  EXPECT_FALSE(obs::prom_lint("m 1\n").ok());
}

TEST(PromLint, RejectsLateOrDuplicateMetadata) {
  // TYPE after the family already emitted samples.
  EXPECT_FALSE(obs::prom_lint("m 1\n# TYPE m counter\nm 2\n").ok());
  EXPECT_FALSE(
      obs::prom_lint("# TYPE m counter\n# TYPE m counter\nm 1\n").ok());
  EXPECT_FALSE(obs::prom_lint("# HELP m a\n# TYPE m counter\n"
                              "m 1\n# HELP m b\n")
                   .ok());
}

TEST(PromLint, RejectsInterleavedFamilies) {
  const obs::PromLintResult r = obs::prom_lint(
      "# TYPE a counter\na 1\n"
      "# TYPE b counter\nb 1\n"
      "a{x=\"1\"} 2\n");
  EXPECT_FALSE(r.ok());
}

TEST(PromLint, RejectsUnparsableValue) {
  EXPECT_FALSE(obs::prom_lint("# TYPE m gauge\nm notanumber\n").ok());
  EXPECT_TRUE(obs::prom_lint("# TYPE m gauge\nm +Inf\n"
                             "# TYPE n gauge\nn NaN\n")
                  .ok());
}

TEST(PromLint, RejectsMalformedHistograms) {
  // No +Inf terminator.
  EXPECT_FALSE(obs::prom_lint("# TYPE h histogram\n"
                              "h_bucket{le=\"1\"} 1\n"
                              "h_sum 1\nh_count 1\n")
                   .ok());
  // Decreasing cumulative counts.
  EXPECT_FALSE(obs::prom_lint("# TYPE h histogram\n"
                              "h_bucket{le=\"1\"} 5\n"
                              "h_bucket{le=\"2\"} 3\n"
                              "h_bucket{le=\"+Inf\"} 5\n"
                              "h_sum 1\nh_count 5\n")
                   .ok());
  // +Inf bucket disagrees with _count.
  EXPECT_FALSE(obs::prom_lint("# TYPE h histogram\n"
                              "h_bucket{le=\"+Inf\"} 5\n"
                              "h_sum 1\nh_count 4\n")
                   .ok());
  // The well-formed version of the same family passes.
  EXPECT_TRUE(obs::prom_lint("# TYPE h histogram\n"
                             "h_bucket{le=\"1\"} 3\n"
                             "h_bucket{le=\"2\"} 4\n"
                             "h_bucket{le=\"+Inf\"} 5\n"
                             "h_sum 9.5\nh_count 5\n")
                  .ok());
}

}  // namespace
}  // namespace qes
