// Request spans assembled from the trace stream. The load-bearing
// property: a complete trace's spans, reconciled in job-id order,
// reproduce RunStats' quality and latency aggregates bitwise — for the
// deterministic sim engine and for the live multi-threaded runtime.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "multicore/des_scheduler.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/server.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace qes {
namespace {

using std::chrono::milliseconds;

std::size_t count_of(const std::string& haystack, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Span, SimEngineSpansReconcileBitwiseWithRunStats) {
  obs::TraceRing ring(1u << 20);
  EngineConfig cfg;
  cfg.cores = 4;
  cfg.power_budget = 80.0;
  cfg.record_execution = false;
  cfg.trace = &ring;
  WorkloadConfig wl;
  wl.arrival_rate = 150.0;
  wl.horizon_ms = 3000.0;
  wl.seed = 7;
  Engine engine(cfg, generate_websearch_jobs(wl), make_des_policy());
  const RunStats stats = engine.run().stats;
  ASSERT_GT(stats.jobs_total, 0u);
  ASSERT_EQ(ring.dropped(), 0u) << "ring undersized for the run";

  const std::vector<obs::RequestSpan> spans =
      obs::assemble_spans(ring.drain());
  EXPECT_EQ(spans.size(), stats.jobs_total);

  const obs::SpanReconciliation rec = obs::reconcile_spans(spans);
  EXPECT_EQ(rec.finalized, stats.jobs_total);
  EXPECT_EQ(rec.satisfied, stats.jobs_satisfied);
  // Same summation order as RunAccumulator: bitwise equality, not just
  // within tolerance.
  EXPECT_EQ(rec.total_quality, stats.total_quality);
  EXPECT_EQ(rec.mean_latency, stats.mean_latency);
  EXPECT_TRUE(rec.matches(stats));

  for (const obs::RequestSpan& s : spans) {
    EXPECT_TRUE(s.finalized());
    EXPECT_EQ(s.node, -1);
    EXPECT_GE(s.queue_wait(), 0.0);
    EXPECT_GE(s.service(), 0.0);
    EXPECT_GE(s.total_latency(), s.queue_wait() - 1e-9);
    for (const obs::ExecSlice& e : s.slices) {
      EXPECT_GE(e.t1, e.t0);
      EXPECT_GT(e.speed, 0.0);
      EXPECT_GE(e.core, 0);
    }
  }
}

TEST(Span, LiveRuntimeSpansReconcileWithFinalStats) {
  obs::TraceRing ring(1u << 20);
  runtime::ServerConfig sc;
  sc.model.cores = 8;
  sc.model.power_budget = 160.0;
  sc.model.trace = &ring;
  sc.time_scale = 8.0;
  sc.deadline_ms = 150.0;
  runtime::Server server(sc);
  server.start();
  for (int i = 0; i < 60; ++i) {
    (void)server.submit(runtime::Request{.demand = 15.0 + (i % 7) * 5.0,
                                         .partial_ok = (i % 3) != 0},
                        milliseconds(50));
  }
  const RunStats stats = server.drain_and_stop();
  ASSERT_GT(stats.jobs_total, 0u);
  ASSERT_EQ(ring.dropped(), 0u);

  const std::vector<obs::RequestSpan> spans =
      obs::assemble_spans(ring.drain());
  EXPECT_EQ(spans.size(), stats.jobs_total);
  const obs::SpanReconciliation rec = obs::reconcile_spans(spans);
  EXPECT_EQ(rec.finalized, stats.jobs_total);
  EXPECT_EQ(rec.satisfied, stats.jobs_satisfied);
  EXPECT_EQ(rec.total_quality, stats.total_quality);
  EXPECT_EQ(rec.mean_latency, stats.mean_latency);
  EXPECT_TRUE(rec.matches(stats));

  std::size_t satisfied_flags = 0;
  for (const obs::RequestSpan& s : spans) {
    if (s.satisfied) ++satisfied_flags;
  }
  EXPECT_EQ(satisfied_flags, stats.jobs_satisfied);
}

TEST(Span, UnfinalizedSpansAreExcludedFromReconciliation) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent rel;
  rel.kind = obs::TraceEvent::Kind::Release;
  rel.t = 0.0;
  rel.job = 1;
  events.push_back(rel);
  obs::TraceEvent assign = rel;
  assign.kind = obs::TraceEvent::Kind::Assign;
  assign.t = 1.0;
  assign.core = 2;
  events.push_back(assign);  // job 1: assigned, never finalized

  rel.job = 2;
  rel.t = 0.5;
  events.push_back(rel);
  obs::TraceEvent fin;
  fin.kind = obs::TraceEvent::Kind::Finalize;
  fin.t = 10.5;
  fin.job = 2;
  fin.value = 0.75;
  fin.satisfied = true;
  events.push_back(fin);

  const std::vector<obs::RequestSpan> spans = obs::assemble_spans(events, 3);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].job, 1u);
  EXPECT_FALSE(spans[0].finalized());
  EXPECT_EQ(spans[0].core, 2);
  EXPECT_EQ(spans[0].node, 3);
  EXPECT_TRUE(spans[1].finalized());
  EXPECT_DOUBLE_EQ(spans[1].total_latency(), 10.0);
  EXPECT_DOUBLE_EQ(spans[1].queue_wait(), 10.0);  // never assigned

  const obs::SpanReconciliation rec = obs::reconcile_spans(spans);
  EXPECT_EQ(rec.finalized, 1u);
  EXPECT_EQ(rec.satisfied, 1u);
  EXPECT_DOUBLE_EQ(rec.total_quality, 0.75);
  EXPECT_DOUBLE_EQ(rec.mean_latency, 10.0);

  EXPECT_NE(obs::span_to_json(spans[1]).find("\"job\": 2"),
            std::string::npos);
}

TEST(Span, ChromeExportCarriesProcessesThreadsAndBalancedAsyncPairs) {
  obs::TraceRing ring(1u << 18);
  EngineConfig cfg;
  cfg.cores = 4;
  cfg.power_budget = 80.0;
  cfg.record_execution = false;
  cfg.trace = &ring;
  WorkloadConfig wl;
  wl.arrival_rate = 80.0;
  wl.horizon_ms = 1000.0;
  wl.seed = 3;
  Engine engine(cfg, generate_websearch_jobs(wl), make_des_policy());
  (void)engine.run();

  const std::vector<obs::RequestSpan> spans =
      obs::assemble_spans(ring.drain(), 2);
  ASSERT_FALSE(spans.empty());
  const std::string chrome = obs::spans_to_chrome_json(spans);

  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(chrome.find("process_name"), std::string::npos);
  EXPECT_NE(chrome.find("\"pid\": 2"), std::string::npos);
  // Every request window opens and closes; ids carry the node so two
  // nodes' job 1 cannot collide.
  EXPECT_EQ(count_of(chrome, "\"ph\": \"b\""), count_of(chrome, "\"ph\": \"e\""));
  EXPECT_EQ(count_of(chrome, "\"ph\": \"b\""), spans.size());
  EXPECT_NE(chrome.find("\"id\": \"n2.j"), std::string::npos);
  // Exec slices are complete events on the core threads.
  EXPECT_NE(chrome.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_EQ(chrome.back(), '\n');
}

}  // namespace
}  // namespace qes
