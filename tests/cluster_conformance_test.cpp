// Cluster lockstep conformance.
//
// The headline invariant (acceptance criterion for the cluster
// subsystem): an N=1 cluster performs the bitwise-identical sequence of
// advance/submit/replan operations as a standalone runtime lockstep run
// — broker ticks are budget-only and the broker hands a single node
// exactly H — so quality agrees exactly and energy to floating-point
// noise on the same trace. Plus the fault-injection contract: killing a
// node mid-run re-water-fills H across the survivors within one broker
// period, and total cluster power never exceeds H.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cluster/lockstep.hpp"
#include "runtime/conformance.hpp"
#include "workload/generator.hpp"

namespace qes::cluster {
namespace {

// Same tolerance tiering as tests/runtime_conformance_test.cpp: relative
// bounds for accumulated fp quantities, absolute for possibly-zero ones,
// exact equality for counts.
constexpr double kRelTol = 1e-9;        // accumulated quality/energy/power
constexpr double kAbsTolMs = 1e-9;      // clock readings
constexpr double kAbsTolJoules = 1e-9;  // energies expected to be zero
constexpr double kPowerTol = 1e-6;      // Σ budgets == H checks (watts)

runtime::RuntimeConfig node_config() {
  runtime::RuntimeConfig rc;
  rc.cores = 8;
  rc.power_budget = 999.0;  // ignored: the broker owns the budget
  return rc;
}

std::vector<Job> trace(double rate, Time horizon_ms, std::uint64_t seed,
                       double partial_fraction = 1.0) {
  WorkloadConfig wl;
  wl.arrival_rate = rate;
  wl.horizon_ms = horizon_ms;
  wl.partial_fraction = partial_fraction;
  wl.seed = seed;
  return generate_websearch_jobs(wl);
}

LockstepClusterConfig single_node_config(Watts h) {
  LockstepClusterConfig cc;
  cc.node = node_config();
  cc.nodes = 1;
  cc.total_budget = h;
  cc.broker_period_ms = 20.0;
  return cc;
}

TEST(ClusterConformance, SingleNodeMatchesStandaloneRuntimeExactly) {
  const std::vector<Job> jobs = trace(150.0, 3'000.0, 7);
  ASSERT_GT(jobs.size(), 100u);

  runtime::RuntimeConfig standalone = node_config();
  standalone.power_budget = 160.0;
  const RunStats single = runtime::run_lockstep(standalone, jobs);
  const ClusterRunStats clustered =
      run_cluster_lockstep(single_node_config(160.0), jobs);

  ASSERT_EQ(clustered.node_stats.size(), 1u);
  // Quality agreement is exact (acceptance criterion) and, because the
  // operation sequences are identical, so is everything else up to fp
  // accumulation noise.
  EXPECT_NEAR(clustered.total_quality, single.total_quality,
              kRelTol * std::max(1.0, single.total_quality));
  EXPECT_NEAR(clustered.dynamic_energy, single.dynamic_energy,
              kRelTol * std::max(1.0, single.dynamic_energy));
  EXPECT_NEAR(clustered.static_energy, single.static_energy, kAbsTolJoules);
  EXPECT_NEAR(clustered.end_time, single.end_time, kAbsTolMs);
  EXPECT_NEAR(clustered.peak_node_power, single.peak_power,
              kRelTol * std::max(1.0, single.peak_power));
  EXPECT_EQ(clustered.jobs_total, single.jobs_total);
  EXPECT_EQ(clustered.jobs_satisfied, single.jobs_satisfied);
  EXPECT_EQ(clustered.jobs_partial, single.jobs_partial);
  EXPECT_EQ(clustered.jobs_zero, single.jobs_zero);
  EXPECT_EQ(clustered.jobs_discarded_rigid, single.jobs_discarded_rigid);
  EXPECT_EQ(clustered.replans, single.replans);
  EXPECT_EQ(clustered.route_shed, 0u);
  // The broker handed the lone node H (to surplus-arithmetic ulp noise,
  // below the lockstep's budget-change threshold) at every decision.
  for (const ClusterRunStats::BrokerDecision& d : clustered.broker_log) {
    ASSERT_EQ(d.budgets.size(), 1u);
    EXPECT_NEAR(d.budgets[0], 160.0, 1e-10);
  }
}

TEST(ClusterConformance, SingleNodeExactUnderTightTriggersAndRigidJobs) {
  runtime::RuntimeConfig rc = node_config();
  rc.cores = 4;
  rc.quantum_ms = 100.0;
  rc.counter_trigger = 3;
  const std::vector<Job> jobs =
      trace(250.0, 2'000.0, 11, /*partial_fraction=*/0.6);

  runtime::RuntimeConfig standalone = rc;
  standalone.power_budget = 60.0;  // scarce power: WF + rigid discards
  const RunStats single = runtime::run_lockstep(standalone, jobs);

  LockstepClusterConfig cc = single_node_config(60.0);
  cc.node = rc;
  const ClusterRunStats clustered = run_cluster_lockstep(cc, jobs);
  EXPECT_NEAR(clustered.total_quality, single.total_quality,
              kRelTol * std::max(1.0, single.total_quality));
  EXPECT_NEAR(clustered.dynamic_energy, single.dynamic_energy,
              kRelTol * std::max(1.0, single.dynamic_energy));
  EXPECT_EQ(clustered.jobs_discarded_rigid, single.jobs_discarded_rigid);
  EXPECT_EQ(clustered.replans, single.replans);
}

TEST(ClusterConformance, MultiNodePreservesWorkAndQualityScales) {
  // Not an exactness statement (routing changes per-node schedules) but
  // the conservation + sanity contract: every job lands somewhere, and
  // four 160 W nodes serve 2x the traffic one 160 W node handles well.
  const std::vector<Job> jobs = trace(300.0, 3'000.0, 13);
  LockstepClusterConfig cc = single_node_config(4 * 160.0);
  cc.nodes = 4;
  const ClusterRunStats s = run_cluster_lockstep(cc, jobs);
  std::size_t landed = s.route_shed + s.redistribute_shed;
  for (const RunStats& ns : s.node_stats) landed += ns.jobs_total;
  EXPECT_EQ(landed, jobs.size());
  EXPECT_GT(s.normalized_quality, 0.9);
  EXPECT_LE(s.max_cluster_power, 4 * 160.0 + kPowerTol);
  for (const ClusterRunStats::BrokerDecision& d : s.broker_log) {
    double total = 0.0;
    for (const Watts b : d.budgets) total += b;
    EXPECT_NEAR(total, 4 * 160.0, kPowerTol);
  }
}

TEST(ClusterConformance, KillRewaterfillsWithinOnePeriodAndBoundsPower) {
  // Acceptance criterion: node killed mid-run -> the broker re-splits H
  // across the survivors at the kill instant (within one broker period)
  // and total cluster power never exceeds H.
  const Watts h = 3 * 160.0;
  const Time t_kill = 1'000.0;
  const std::vector<Job> jobs = trace(250.0, 3'000.0, 19);
  LockstepClusterConfig cc = single_node_config(h);
  cc.nodes = 3;
  cc.broker_period_ms = 20.0;
  const ClusterRunStats s = run_cluster_lockstep(cc, jobs, {{t_kill, 1}});

  ASSERT_TRUE(s.killed[1]);
  EXPECT_FALSE(s.killed[0]);
  EXPECT_FALSE(s.killed[2]);
  EXPECT_LE(s.max_cluster_power, h + kPowerTol);

  // The kill triggers an immediate re-split: the first decision at or
  // after t_kill zeroes the victim and still hands out exactly H.
  bool saw_post_kill = false;
  for (const ClusterRunStats::BrokerDecision& d : s.broker_log) {
    double total = 0.0;
    for (const Watts b : d.budgets) total += b;
    EXPECT_NEAR(total, h, kPowerTol);
    if (d.t >= t_kill && !saw_post_kill) {
      saw_post_kill = true;
      EXPECT_LE(d.t, t_kill + cc.broker_period_ms);  // within one period
      EXPECT_EQ(d.budgets[1], 0.0);
      EXPECT_NEAR(d.budgets[0] + d.budgets[2], h, kPowerTol);
    }
    if (d.t < t_kill) {
      EXPECT_GT(d.budgets[1], 0.0);  // alive until the fault
    }
  }
  ASSERT_TRUE(saw_post_kill);

  // The victim's clock froze at the kill; its finalized work stays in
  // its own stats and the orphans were re-dispatched or shed.
  EXPECT_NEAR(s.node_stats[1].end_time, t_kill, kAbsTolMs);
  EXPECT_GT(s.redistributed + s.redistribute_shed, 0u);
  // Conservation: abandoned jobs leave the victim's accounting and land
  // exactly once — at their new node or as redistribute_shed.
  std::size_t landed = s.route_shed + s.redistribute_shed;
  for (const RunStats& ns : s.node_stats) landed += ns.jobs_total;
  EXPECT_EQ(landed, jobs.size());
}

TEST(ClusterConformance, KillingEveryNodeShedsTheRemainingWork) {
  const std::vector<Job> jobs = trace(150.0, 2'000.0, 3);
  LockstepClusterConfig cc = single_node_config(2 * 160.0);
  cc.nodes = 2;
  const ClusterRunStats s =
      run_cluster_lockstep(cc, jobs, {{500.0, 0}, {500.0, 1}});
  ASSERT_TRUE(s.killed[0]);
  ASSERT_TRUE(s.killed[1]);
  // Arrivals after the massacre have no routable node.
  EXPECT_GT(s.route_shed, 0u);
  std::size_t landed = s.route_shed + s.redistribute_shed;
  for (const RunStats& ns : s.node_stats) landed += ns.jobs_total;
  EXPECT_EQ(landed, jobs.size());
}

}  // namespace
}  // namespace qes::cluster
