// qes_loadgen: open-loop load generator for the qesd wire plane.
//
//   $ qesd --duration-s 10 --listen-port 7400 --producers 0 &
//   $ qes_loadgen --port 7400 --rate 5000 --duration-s 5
//
// Drives SUBMIT frames at the configured aggregate rate over N
// persistent loopback connections and prints one JSON report line. The
// arrival schedule is fixed on the monotonic clock before each send
// (open-loop), so a stalling server inflates the recorded latencies
// instead of silencing them — see src/net/loadgen.hpp for the
// coordinated-omission rationale.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/loadgen.hpp"

namespace {

using qes::net::ArrivalKind;
using qes::net::LoadgenConfig;

[[noreturn]] void fail(const std::string& why) {
  throw std::invalid_argument(why);
}

void usage() {
  std::fputs(R"(usage: qes_loadgen --port P [options]

  --port P                    qesd --listen-port to drive (required)
  --rate R        (1000)      mean aggregate arrival rate, req/s
  --duration-s S  (1)         send window, wall seconds
  --connections N (4)         persistent loopback connections
  --arrival K     (poisson)   poisson | uniform | mmpp
  --mmpp-burst B  (4)         MMPP high-phase rate = B * low-phase rate
  --mmpp-switch-hz F (1)      MMPP phase switches per second
  --deadline-ms D (0)         per-request relative deadline (0 = server
                              default)
  --partial-fraction F (1)    fraction of requests with partial_ok
  --want-ack                  request an ACK frame per SUBMIT
  --seed N        (1)         PRNG seed (schedule + demands)
  --drain-timeout-s S (10)    wait for outstanding replies after the
                              send window
  --help                      this text

Prints one JSON object: submitted/replies/satisfied/partial/shed/lost
counts, quality_sum, offered and reply rates, max_send_lag_ms
(generator health), and the latency distribution measured from each
request's SCHEDULED send instant.
)",
             stdout);
}

double to_double(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) fail(flag + ": malformed number '" + v + "'");
    return d;
  } catch (const std::invalid_argument&) {
    fail(flag + ": malformed number '" + v + "'");
  } catch (const std::out_of_range&) {
    fail(flag + ": out of range '" + v + "'");
  }
}

int to_int(const std::string& flag, const std::string& v) {
  const double d = to_double(flag, v);
  // The range check must precede the cast: float-to-int conversion of a
  // value outside int's range is undefined behavior.
  if (d < static_cast<double>(std::numeric_limits<int>::min()) ||
      d > static_cast<double>(std::numeric_limits<int>::max())) {
    fail(flag + ": out of range '" + v + "'");
  }
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) fail(flag + ": expected an integer");
  return i;
}

std::uint64_t to_u64(const std::string& flag, const std::string& v) {
  if (v.empty() || v[0] == '-') {
    fail(flag + ": expected a non-negative integer, got '" + v + "'");
  }
  try {
    std::size_t pos = 0;
    const std::uint64_t u = std::stoull(v, &pos);
    if (pos != v.size()) fail(flag + ": malformed number '" + v + "'");
    return u;
  } catch (const std::invalid_argument&) {
    fail(flag + ": malformed number '" + v + "'");
  } catch (const std::out_of_range&) {
    fail(flag + ": out of range '" + v + "'");
  }
}

LoadgenConfig parse(const std::vector<std::string>& args, bool* help) {
  LoadgenConfig cfg;
  cfg.port = -1;
  auto need_value = [&args](std::size_t& i, const std::string& flag) {
    if (i + 1 >= args.size()) fail(flag + ": missing value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      *help = true;
      return cfg;
    } else if (a == "--port") {
      cfg.port = to_int(a, need_value(i, a));
      if (cfg.port < 1 || cfg.port > 65535) {
        fail("--port: must be in [1, 65535]");
      }
    } else if (a == "--rate") {
      cfg.rate = to_double(a, need_value(i, a));
      if (cfg.rate <= 0.0) fail("--rate: must be positive");
    } else if (a == "--duration-s") {
      cfg.duration_s = to_double(a, need_value(i, a));
      if (cfg.duration_s <= 0.0) fail("--duration-s: must be positive");
    } else if (a == "--connections") {
      cfg.connections = to_int(a, need_value(i, a));
      if (cfg.connections < 1 || cfg.connections > 1024) {
        fail("--connections: must be in [1, 1024]");
      }
    } else if (a == "--arrival") {
      const std::string v = need_value(i, a);
      if (v == "poisson") {
        cfg.arrival = ArrivalKind::kPoisson;
      } else if (v == "uniform") {
        cfg.arrival = ArrivalKind::kUniform;
      } else if (v == "mmpp") {
        cfg.arrival = ArrivalKind::kMmpp;
      } else {
        fail("--arrival: expected poisson, uniform, or mmpp, got '" + v +
             "'");
      }
    } else if (a == "--mmpp-burst") {
      cfg.mmpp_burst = to_double(a, need_value(i, a));
      if (cfg.mmpp_burst < 1.0) fail("--mmpp-burst: must be >= 1");
    } else if (a == "--mmpp-switch-hz") {
      cfg.mmpp_switch_hz = to_double(a, need_value(i, a));
      if (cfg.mmpp_switch_hz <= 0.0) {
        fail("--mmpp-switch-hz: must be positive");
      }
    } else if (a == "--deadline-ms") {
      cfg.deadline_ms = to_double(a, need_value(i, a));
      if (cfg.deadline_ms < 0.0) fail("--deadline-ms: must be >= 0");
    } else if (a == "--partial-fraction") {
      cfg.partial_fraction = to_double(a, need_value(i, a));
      if (cfg.partial_fraction < 0.0 || cfg.partial_fraction > 1.0) {
        fail("--partial-fraction: must be in [0, 1]");
      }
    } else if (a == "--want-ack") {
      cfg.want_ack = true;
    } else if (a == "--seed") {
      cfg.seed = to_u64(a, need_value(i, a));
    } else if (a == "--drain-timeout-s") {
      cfg.drain_timeout_s = to_double(a, need_value(i, a));
      if (cfg.drain_timeout_s < 0.0) fail("--drain-timeout-s: must be >= 0");
    } else {
      fail("unknown flag '" + a + "' (try --help)");
    }
  }
  if (!*help && cfg.port < 0) fail("--port is required");
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  bool help = false;
  LoadgenConfig cfg;
  try {
    cfg = parse(std::vector<std::string>(argv + 1, argv + argc), &help);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qes_loadgen: %s\n", e.what());
    return 2;
  }
  if (help) {
    usage();
    return 0;
  }
  try {
    const qes::net::LoadgenReport rep = qes::net::run_loadgen(cfg);
    std::printf("%s\n", rep.to_json().c_str());
    // Lost replies mean the server dropped requests on the floor — a
    // protocol violation worth a nonzero exit even though the report
    // already counts them.
    return rep.lost == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qes_loadgen: %s\n", e.what());
    return 1;
  }
}
