// Shared SIGUSR1 dump plumbing for the serving drivers (qesd and
// qes_cluster): `kill -USR1 <pid>` dumps a caller-supplied rendering
// (typically the obs registry in Prometheus text) to stdout at any
// point in the run.
//
// Async-signal-safety: a signal handler may only call async-signal-safe
// functions (POSIX 2017, 2.4.3) — no stdio, no malloc, no locks, which
// rules out rendering anything from the handler itself. The handler
// here performs exactly one operation: a relaxed store to a lock-free
// std::atomic<bool> (guaranteed async-signal-safe by [support.signal]/3
// for lock-free atomics; the static_assert below keeps that guarantee
// honest). The watcher thread polls the flag every 50 ms and does all
// the formatting and printing in normal thread context.
#pragma once

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>

namespace qes::tools {

inline std::atomic<bool> g_dump_requested{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "the SIGUSR1 handler requires a lock-free flag to stay "
              "async-signal-safe");

extern "C" inline void qes_handle_dump_signal(int) {
  g_dump_requested.store(true, std::memory_order_relaxed);
}

/// Installs the SIGUSR1 handler and runs the watcher thread for its own
/// lifetime. `render` is called on the watcher thread (never from the
/// handler) once per received signal; its result goes to stdout.
class SignalDumpWatcher {
 public:
  explicit SignalDumpWatcher(std::function<std::string()> render)
      : render_(std::move(render)) {
    std::signal(SIGUSR1, qes_handle_dump_signal);
    thread_ = std::thread([this] { loop(); });
  }

  ~SignalDumpWatcher() { stop(); }

  SignalDumpWatcher(const SignalDumpWatcher&) = delete;
  SignalDumpWatcher& operator=(const SignalDumpWatcher&) = delete;

  /// Joins the watcher (serving one last pending request, so a signal
  /// delivered just before shutdown is not lost). Idempotent.
  void stop() {
    if (!thread_.joinable()) return;
    stop_.store(true, std::memory_order_release);
    thread_.join();
  }

 private:
  void loop() {
    for (;;) {
      const bool stopping = stop_.load(std::memory_order_acquire);
      if (g_dump_requested.exchange(false, std::memory_order_relaxed)) {
        std::fputs(render_().c_str(), stdout);
        std::fflush(stdout);
      }
      if (stopping) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  std::function<std::string()> render_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace qes::tools
