// qes_cluster: sharded multi-node serving driver with a global
// power-budget broker.
//
//   $ qes_cluster --nodes 4 --duration-s 10 --arrival-rate 400
//   $ qes_cluster --nodes 4 --kill-node 1 --kill-at-s 3
//   $ qes_cluster --compare-dispatch --nodes 4 --duration-s 20
//
// Live mode runs N in-process runtime::Servers behind the cluster front
// end: producer threads feed Poisson traffic through the dispatcher,
// the broker thread re-water-fills --total-budget across the nodes
// every --broker-period-ms, and --kill-node/--kill-at-s hard-stops one
// node mid-run (its work is re-dispatched to the survivors). The run
// report prints per-node finals, the cluster aggregate, and — with
// --metrics-format prom — the cluster and per-node obs registries.
//
// --compare-dispatch instead replays one generated trace through the
// deterministic cluster lockstep under each dispatch policy (crr, jsq,
// p2c) and prints a comparison table, so the policies see identical
// arrivals.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "cli/options.hpp"
#include "cli/workload_source.hpp"
#include "cluster/cluster.hpp"
#include "cluster/lockstep.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "report/table.hpp"
#include "signal_dump.hpp"
#include "workload/demand.hpp"
#include "workload/generator.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace qes;

runtime::RuntimeConfig make_runtime_config(const cli::Options& opt) {
  runtime::RuntimeConfig rc;
  rc.cores = opt.engine.cores;
  rc.power_budget = opt.engine.power_budget;
  rc.power_model = opt.engine.power_model;
  rc.quality = QualityFunction::exponential(opt.quality_c);
  rc.quantum_ms = opt.engine.quantum_ms;
  rc.counter_trigger = opt.engine.counter_trigger;
  rc.idle_trigger = opt.engine.idle_trigger;
  rc.max_core_speed = opt.engine.max_core_speed;
  return rc;
}

Watts total_budget(const cli::Options& opt) {
  return opt.total_budget > 0.0
             ? opt.total_budget
             : opt.engine.power_budget * static_cast<double>(opt.nodes);
}

std::vector<Job> make_jobs(const cli::Options& opt) {
  cli::WorkloadSourceSpec spec;
  if (opt.trace_in) {
    spec.regime = "trace";
    spec.trace_path = *opt.trace_in;
  } else {
    spec.workload = opt.workload;
    spec.workload.horizon_ms = opt.duration_s * 1000.0;
  }
  return cli::make_jobs(spec);
}

int run_compare(const cli::Options& opt) {
  const std::vector<Job> jobs = make_jobs(opt);
  cluster::LockstepClusterConfig cc;
  cc.node = make_runtime_config(opt);
  cc.nodes = opt.nodes;
  cc.total_budget = total_budget(opt);
  cc.broker_period_ms = opt.broker_period_ms;
  std::vector<cluster::NodeKill> kills;
  if (opt.kill_node >= 0) {
    kills.push_back({opt.kill_at_s * 1000.0, opt.kill_node});
  }

  Table table({"dispatch", "quality", "norm_q", "energy_j", "route_shed",
               "max_power_w", "replans"});
  for (const cluster::DispatchPolicy p :
       {cluster::DispatchPolicy::CRR, cluster::DispatchPolicy::JSQ,
        cluster::DispatchPolicy::PowerOfTwo}) {
    cc.dispatch = p;
    cc.dispatch_seed = opt.workload.seed;
    const cluster::ClusterRunStats s =
        cluster::run_cluster_lockstep(cc, jobs, kills);
    table.add_row({cluster::dispatch_policy_name(p), fmt(s.total_quality, 2),
                   fmt(s.normalized_quality, 4),
                   fmt_sci(s.dynamic_energy + s.static_energy),
                   std::to_string(s.route_shed), fmt(s.max_cluster_power, 1),
                   std::to_string(s.replans)});
    if (opt.json) {
      std::printf("%s %s\n", cluster::dispatch_policy_name(p),
                  cluster::cluster_stats_to_json(s).c_str());
    }
  }
  table.print(std::cout);
  return 0;
}

void produce(cluster::Cluster& cluster, const cli::Options& opt, int producer,
             Time duration_ms) {
  // Same producer-stream split as qesd: producer p draws from the
  // seed + 1000003*(p+1) Poisson stream, so the aggregate offered rate
  // stays --arrival-rate and runs are reproducible per --seed.
  Xoshiro256 rng(opt.workload.seed +
                 1000003ULL * static_cast<std::uint64_t>(producer + 1));
  const BoundedPareto demand(opt.workload.pareto_alpha,
                             opt.workload.demand_min, opt.workload.demand_max);
  const double rate_per_ms =
      opt.workload.arrival_rate / static_cast<double>(opt.producers) / 1000.0;
  while (cluster.now() < duration_ms) {
    const double gap_virtual_ms = rng.exponential(rate_per_ms);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        gap_virtual_ms / opt.time_scale));
    if (cluster.now() >= duration_ms) break;
    runtime::Request r;
    r.demand = demand.sample(rng);
    r.partial_ok = rng.bernoulli(opt.workload.partial_fraction);
    r.weight = rng.bernoulli(opt.workload.premium_fraction)
                   ? opt.workload.premium_weight
                   : 1.0;
    (void)cluster.submit(r);
  }
}

int run_live(const cli::Options& opt) {
  cluster::ClusterConfig cc;
  cc.node.model = make_runtime_config(opt);
  cc.node.time_scale = opt.time_scale;
  cc.node.deadline_ms = opt.workload.deadline_ms;
  cc.node.metrics_interval_ms = opt.metrics_interval_ms;
  cc.nodes = opt.nodes;
  cc.total_budget = total_budget(opt);
  cc.broker_period_wall_ms = opt.broker_period_ms;
  cc.dispatch = *cluster::parse_dispatch_policy(opt.dispatch);
  cc.dispatch_seed = opt.workload.seed;
  cc.http_port = opt.http_port;
  cc.node_http_base_port = opt.node_http_base_port;
  cc.node_listen_base_port = opt.node_listen_base_port;
  cc.node.ingress_workers = opt.ingress_workers;
  if (opt.trace_chrome) cc.node_trace_capacity = 1u << 20;
  cluster::Cluster cluster(cc);
  cluster.start();
  if (cluster.http_port() >= 0 || opt.node_http_base_port >= 0) {
    std::string node_ports;
    for (int i = 0; i < cluster.nodes(); ++i) {
      if (!node_ports.empty()) node_ports += ", ";
      node_ports += std::to_string(cluster.node_server(i).http_port());
    }
    std::printf("http {\"cluster_port\": %d, \"node_ports\": [%s]}\n",
                cluster.http_port(), node_ports.c_str());
    std::fflush(stdout);
  }
  if (opt.node_listen_base_port >= 0) {
    std::string listen_ports;
    for (int i = 0; i < cluster.nodes(); ++i) {
      if (!listen_ports.empty()) listen_ports += ", ";
      listen_ports += std::to_string(cluster.node_server(i).listen_port());
    }
    std::printf("listen {\"node_ports\": [%s]}\n", listen_ports.c_str());
    std::fflush(stdout);
  }

  // kill -USR1 <pid> dumps the cluster registry followed by every
  // node's own registry (same async-signal-safe flag scheme as qesd).
  tools::SignalDumpWatcher watcher([&cluster] {
    std::string out = cluster.registry().to_prometheus();
    for (int i = 0; i < cluster.nodes(); ++i) {
      out += "# node " + std::to_string(i) + "\n";
      out += cluster.node_server(i).registry().to_prometheus();
    }
    return out;
  });

  const Time duration_ms = opt.duration_s * 1000.0;
  std::thread killer;
  if (opt.kill_node >= 0) {
    killer = std::thread([&cluster, &opt] {
      const Time kill_ms = opt.kill_at_s * 1000.0;
      while (cluster.now() < kill_ms) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      cluster.kill_node(opt.kill_node);
    });
  }
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(opt.producers));
  for (int p = 0; p < opt.producers; ++p) {
    producers.emplace_back([&cluster, &opt, p, duration_ms] {
      produce(cluster, opt, p, duration_ms);
    });
  }
  for (std::thread& t : producers) t.join();
  // Wire-driven runs (--node-listen-base-port) must keep serving the full
  // window even when no in-process producer advances past the duration.
  if (opt.node_listen_base_port >= 0) {
    while (cluster.now() < duration_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  if (killer.joinable()) killer.join();
  const cluster::ClusterRunStats stats = cluster.drain_and_stop();
  watcher.stop();

  if (opt.trace_chrome) {
    // One span set per node (per-node job ids are dense 1..n, so each
    // ring is assembled separately with its node id), concatenated into
    // a single Chrome trace: one Perfetto "process" per node.
    std::vector<obs::RequestSpan> spans;
    std::uint64_t dropped = 0;
    for (int i = 0; i < cluster.nodes(); ++i) {
      obs::TraceRing* ring = cluster.node_trace(i);
      if (ring == nullptr) continue;
      dropped += ring->dropped();
      const std::vector<obs::RequestSpan> node_spans =
          obs::assemble_spans(ring->drain(), i);
      spans.insert(spans.end(), node_spans.begin(), node_spans.end());
    }
    std::FILE* f = std::fopen(opt.trace_chrome->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "qes_cluster: cannot open %s\n",
                   opt.trace_chrome->c_str());
      return 1;
    }
    std::fputs(obs::spans_to_chrome_json(spans).c_str(), f);
    std::fclose(f);
    if (dropped > 0) {
      std::fprintf(stderr, "qes_cluster: trace rings dropped %llu events\n",
                   static_cast<unsigned long long>(dropped));
    }
    std::printf("spans {\"count\": %zu, \"nodes\": %d}\n", spans.size(),
                cluster.nodes());
  }

  for (std::size_t i = 0; i < stats.node_stats.size(); ++i) {
    std::printf("node %zu%s %s\n", i, stats.killed[i] ? " (killed)" : "",
                stats_to_json(stats.node_stats[i]).c_str());
  }
  std::printf("cluster %s\n", cluster::cluster_stats_to_json(stats).c_str());
  std::printf(
      "server {\"nodes\": %d, \"producers\": %d, \"time_scale\": %g, "
      "\"broker_decisions\": %zu}\n",
      opt.nodes, opt.producers, opt.time_scale, stats.broker_log.size());
  if (opt.metrics_format == "prom") {
    std::fputs(cluster.registry().to_prometheus().c_str(), stdout);
    for (int i = 0; i < cluster.nodes(); ++i) {
      std::fputs(cluster.node_server(i).registry().to_prometheus().c_str(),
                 stdout);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qes;
  cli::Options opt;
  try {
    opt = cli::parse_options(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qes_cluster: %s\n", e.what());
    return 2;
  }
  if (opt.help) {
    std::fputs(cli::usage().c_str(), stdout);
    return 0;
  }
  try {
    return opt.compare_dispatch ? run_compare(opt) : run_live(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qes_cluster: %s\n", e.what());
    return 1;
  }
}
