// qesd: real-time serving daemon driver for the qes runtime.
//
//   $ qesd --duration-s 30 --arrival-rate 150 --producers 4
//   $ qesd --duration-s 5 --time-scale 20 --metrics-interval-ms 100
//   $ qesd --conform --duration-s 10 --seed 3
//
// Live mode spins up N producer threads feeding Poisson traffic into the
// server for --duration-s virtual seconds, then drains and prints the
// collected metrics snapshots plus the final run report. --conform mode
// replays one generated trace through sim::Engine and through the
// runtime core in lockstep and reports how closely they agree (exit 1
// when they do not).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "cli/options.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"
#include "runtime/conformance.hpp"
#include "runtime/server.hpp"
#include "signal_dump.hpp"
#include "workload/demand.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace qes;

runtime::RuntimeConfig make_runtime_config(const cli::Options& opt) {
  runtime::RuntimeConfig rc;
  rc.cores = opt.engine.cores;
  rc.power_budget = opt.engine.power_budget;
  rc.power_model = opt.engine.power_model;
  rc.quality = QualityFunction::exponential(opt.quality_c);
  rc.quantum_ms = opt.engine.quantum_ms;
  rc.counter_trigger = opt.engine.counter_trigger;
  rc.idle_trigger = opt.engine.idle_trigger;
  rc.max_core_speed = opt.engine.max_core_speed;
  return rc;
}

int run_conform(const cli::Options& opt) {
  std::vector<Job> jobs;
  if (opt.trace_in) {
    jobs = load_job_trace(*opt.trace_in);
  } else {
    WorkloadConfig wl = opt.workload;
    wl.horizon_ms = opt.duration_s * 1000.0;
    jobs = generate_websearch_jobs(wl);
  }
  const runtime::ConformanceResult r =
      runtime::run_conformance(make_runtime_config(opt), std::move(jobs));
  std::printf("sim     %s\n", stats_to_json(r.sim).c_str());
  std::printf("runtime %s\n", stats_to_json(r.runtime).c_str());
  std::printf(
      "conform {\"quality_abs_diff\": %.9f, \"energy_rel_diff\": %.9f}\n",
      r.quality_abs_diff(), r.energy_rel_diff());
  const double quality_tol = 1e-6 * std::max(1.0, r.sim.total_quality);
  const bool ok =
      r.quality_abs_diff() <= quality_tol && r.energy_rel_diff() <= 0.05;
  if (!ok) std::fprintf(stderr, "qesd: conformance FAILED\n");
  return ok ? 0 : 1;
}

void produce(runtime::Server& server, const cli::Options& opt, int producer,
             Time duration_ms) {
  // Splitting the Poisson process across producers keeps the aggregate
  // arrival rate at --arrival-rate (superposition of Poisson streams).
  Xoshiro256 rng(opt.workload.seed + 1000003ULL *
                                        static_cast<std::uint64_t>(producer + 1));
  const BoundedPareto demand(opt.workload.pareto_alpha,
                             opt.workload.demand_min, opt.workload.demand_max);
  const double rate_per_ms =
      opt.workload.arrival_rate / static_cast<double>(opt.producers) / 1000.0;
  while (server.now() < duration_ms) {
    const double gap_virtual_ms = rng.exponential(rate_per_ms);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        gap_virtual_ms / opt.time_scale));
    if (server.now() >= duration_ms) break;
    runtime::Request r;
    r.demand = demand.sample(rng);
    r.partial_ok = rng.bernoulli(opt.workload.partial_fraction);
    r.weight = rng.bernoulli(opt.workload.premium_fraction)
                   ? opt.workload.premium_weight
                   : 1.0;
    (void)server.submit(r, std::chrono::milliseconds(100));
  }
}

int run_live(const cli::Options& opt) {
  runtime::ServerConfig sc;
  sc.model = make_runtime_config(opt);
  sc.time_scale = opt.time_scale;
  sc.deadline_ms = opt.workload.deadline_ms;
  sc.metrics_interval_ms = opt.metrics_interval_ms;
  sc.http_port = opt.http_port;
  sc.listen_port = opt.listen_port;
  sc.ingress_workers = opt.ingress_workers;
  std::unique_ptr<obs::TraceRing> trace;
  if (opt.trace_out || opt.trace_chrome) {
    trace = std::make_unique<obs::TraceRing>(1u << 20);
    sc.model.trace = trace.get();
  }
  runtime::Server server(sc);
  server.start();
  if (server.http_port() >= 0) {
    std::printf("http {\"port\": %d}\n", server.http_port());
    std::fflush(stdout);
  }
  if (server.listen_port() >= 0) {
    std::printf("listen {\"port\": %d}\n", server.listen_port());
    std::fflush(stdout);
  }

  // kill -USR1 <pid> dumps the registry in Prometheus text at any time.
  tools::SignalDumpWatcher watcher(
      [&server] { return server.registry().to_prometheus(); });

  const Time duration_ms = opt.duration_s * 1000.0;
  std::vector<std::thread> producers;
  producers.reserve(static_cast<std::size_t>(opt.producers));
  for (int p = 0; p < opt.producers; ++p) {
    producers.emplace_back(
        [&server, &opt, p, duration_ms] { produce(server, opt, p, duration_ms); });
  }
  for (std::thread& t : producers) t.join();
  // With no (or few) producers the virtual clock may not have reached the
  // duration yet; a wire-driven run (--listen-port) must keep serving the
  // full window before draining.
  if (server.listen_port() >= 0) {
    while (server.now() < duration_ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  const RunStats stats = server.drain_and_stop();
  watcher.stop();

  for (const runtime::MetricsSnapshot& s : server.snapshots()) {
    std::printf("snapshot %s\n", s.to_json().c_str());
  }
  std::printf("final %s\n", stats_to_json(stats).c_str());
  if (opt.metrics_format == "prom") {
    std::fputs(server.registry().to_prometheus().c_str(), stdout);
  }
  if (trace) {
    const std::uint64_t dropped = trace->dropped();
    const std::vector<obs::TraceEvent> events = trace->drain();
    if (dropped > 0) {
      std::fprintf(stderr, "qesd: trace ring dropped %llu events\n",
                   static_cast<unsigned long long>(dropped));
    }
    if (opt.trace_out) {
      std::FILE* f = std::fopen(opt.trace_out->c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "qesd: cannot open %s\n", opt.trace_out->c_str());
        return 1;
      }
      for (const obs::TraceEvent& e : events) {
        std::fputs(obs::to_json(e).c_str(), f);
        std::fputc('\n', f);
      }
      std::fclose(f);
    }
    if (opt.trace_chrome) {
      const std::vector<obs::RequestSpan> spans = obs::assemble_spans(events);
      std::FILE* f = std::fopen(opt.trace_chrome->c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "qesd: cannot open %s\n",
                     opt.trace_chrome->c_str());
        return 1;
      }
      std::fputs(obs::spans_to_chrome_json(spans).c_str(), f);
      std::fclose(f);
      // The span view must agree with the run report; a dropped-events
      // ring (undersized for the run) is the one legitimate mismatch.
      const obs::SpanReconciliation rec = obs::reconcile_spans(spans);
      std::printf(
          "spans {\"count\": %zu, \"finalized\": %llu, "
          "\"reconciles_with_final\": %s}\n",
          spans.size(), static_cast<unsigned long long>(rec.finalized),
          dropped == 0 && rec.matches(stats) ? "true" : "false");
    }
  }
  double busy_ms = 0.0;
  std::uint64_t slices = 0;
  for (const runtime::WorkerStats& w : server.worker_stats()) {
    busy_ms += w.busy_virtual_ms;
    slices += w.slices;
  }
  std::printf(
      "server {\"shed\": %zu, \"producers\": %d, \"time_scale\": %g, "
      "\"worker_busy_virtual_ms\": %.3f, \"worker_slices\": %llu}\n",
      server.shed(), opt.producers, opt.time_scale, busy_ms,
      static_cast<unsigned long long>(slices));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qes;
  cli::Options opt;
  try {
    opt = cli::parse_options(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qesd: %s\n", e.what());
    return 2;
  }
  if (opt.help) {
    std::fputs(cli::usage().c_str(), stdout);
    return 0;
  }
  try {
    return opt.conform ? run_conform(opt) : run_live(opt);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qesd: %s\n", e.what());
    return 1;
  }
}
