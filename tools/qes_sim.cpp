// qes_sim: command-line driver for the qesched simulator.
//
//   $ qes_sim --policy des --rate 180 --seconds 120
//   $ qes_sim --policy fcfs --wf --sweep 80:260:20 --seeds 3 --json
//   $ qes_sim --trace-out jobs.csv && qes_sim --trace-in jobs.csv
//
// See --help for the full option list.
#include <cstdio>
#include <iostream>

#include "cli/options.hpp"
#include "cli/workload_source.hpp"
#include "report/table.hpp"
#include "sim/experiment.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace qes;

void print_json_stats(double rate, const RunStats& s, bool last) {
  std::printf(
      "  {\"arrival_rate\": %g, \"normalized_quality\": %.6f, "
      "\"dynamic_energy_j\": %.3f, \"static_energy_j\": %.3f, "
      "\"peak_power_w\": %.3f, \"jobs\": %zu, \"satisfied\": %zu, "
      "\"partial\": %zu, \"unserved\": %zu, \"p95_latency_ms\": %.3f, "
      "\"replans\": %zu}%s\n",
      rate, s.normalized_quality, s.dynamic_energy, s.static_energy,
      s.peak_power, s.jobs_total, s.jobs_satisfied, s.jobs_partial,
      s.jobs_zero, s.p95_latency, s.replans, last ? "" : ",");
}

RunStats run_spec(const cli::Options& opt, const EngineConfig& cfg,
                  double rate) {
  if (opt.trace_in) {
    // Trace replay: one run, fixed jobs, via the shared workload source.
    cli::WorkloadSourceSpec spec;
    spec.regime = "trace";
    spec.trace_path = *opt.trace_in;
    Engine engine(cfg, cli::make_jobs(spec), cli::make_policy(opt));
    return engine.run().stats;
  }
  WorkloadConfig wl = opt.workload;
  wl.arrival_rate = rate;
  return run_averaged(cfg, wl, [&opt] { return cli::make_policy(opt); },
                      opt.seeds, wl.seed);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qes;
  cli::Options opt;
  try {
    opt = cli::parse_options(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qes_sim: %s\n", e.what());
    return 2;
  }
  if (opt.help) {
    std::fputs(cli::usage().c_str(), stdout);
    return 0;
  }

  try {
    if (opt.trace_out) {
      save_job_trace(*opt.trace_out,
                     generate_websearch_jobs(opt.workload));
      std::printf("trace written to %s\n", opt.trace_out->c_str());
      if (!opt.trace_in && opt.sweep_rates.empty()) return 0;
    }

    const EngineConfig cfg = cli::make_engine_config(opt);
    const std::string label = cli::policy_label(opt);
    std::vector<double> rates = opt.sweep_rates;
    if (rates.empty()) rates.push_back(opt.workload.arrival_rate);

    std::vector<RunStats> results;
    results.reserve(rates.size());
    for (double r : rates) results.push_back(run_spec(opt, cfg, r));

    if (opt.json) {
      std::printf("{\n \"policy\": \"%s\", \"cores\": %d, "
                  "\"budget_w\": %g,\n \"points\": [\n",
                  label.c_str(), cfg.cores, cfg.power_budget);
      for (std::size_t i = 0; i < rates.size(); ++i) {
        print_json_stats(rates[i], results[i], i + 1 == rates.size());
      }
      std::printf(" ]\n}\n");
      return 0;
    }

    std::printf("policy %s on %d cores, %.0f W budget, %d seed(s)\n\n",
                label.c_str(), cfg.cores, cfg.power_budget, opt.seeds);
    Table t({"rate", "quality", "dyn_energy_J", "peak_W", "satisfied",
             "partial", "unserved", "p95_ms", "replans"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
      const RunStats& s = results[i];
      t.add_row({fmt(rates[i], 0), fmt(s.normalized_quality, 4),
                 fmt_sci(s.dynamic_energy), fmt(s.peak_power, 1),
                 std::to_string(s.jobs_satisfied),
                 std::to_string(s.jobs_partial),
                 std::to_string(s.jobs_zero), fmt(s.p95_latency, 1),
                 std::to_string(s.replans)});
    }
    t.print(std::cout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qes_sim: %s\n", e.what());
    return 1;
  }
  return 0;
}
