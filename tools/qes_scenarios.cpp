// qes_scenarios: declarative scenario runner (docs/SCENARIOS.md).
//
//   $ qes_scenarios --spec scenarios/diurnal_small.json
//   $ qes_scenarios --spec a.json --spec b.json        # several cells
//   $ qes_scenarios --replay tests/corpus/mmpp_tiny.json
//   $ qes_scenarios --print-spec scenarios/chaos_kill_revive.json
//
// Each --spec runs one cell — workload regime x substrate x chaos
// schedule — with the core invariants asserted inline (power cap, exact
// job conservation, Online-QE <= QE-OPT where enabled) and prints one
// comparable JSON row prefixed by RESULT_JSON, which
// scripts/record_bench.sh distills into BENCH_<tag>.json.
//
// --replay is the fuzz-reproduction entry point: identical to --spec
// (it exists so a corpus file name in a failure report can be rerun
// verbatim), but any invalid-spec error exits 0 after reporting — a
// corpus member that fails validation is a parser finding, not a crash.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/runner.hpp"
#include "scenario/spec.hpp"

namespace {

constexpr const char* kUsage = R"(qes_scenarios: run declarative scenario cells

  --spec <file.json>        run one cell (repeatable; see docs/SCENARIOS.md)
  --replay <file.json>      rerun a fuzz-corpus spec (validation errors
                            report and exit 0; crashes still crash)
  --print-spec <file.json>  parse + validate only, echo the resolved cell
  --help                    this text
)";

int print_spec(const std::string& path) {
  const qes::scenario::ScenarioSpec s =
      qes::scenario::load_scenario_file(path);
  std::printf(
      "spec {\"name\": \"%s\", \"substrate\": \"%s\", \"regime\": \"%s\", "
      "\"policy\": \"%s\", \"cores\": %d, \"power_budget\": %.1f, "
      "\"nodes\": %d, \"budget_steps\": %zu, \"chaos\": %zu, "
      "\"compare_opt\": %s}\n",
      s.name.c_str(), s.substrate.c_str(), s.workload.regime.c_str(),
      s.policy.c_str(), s.cores, s.power_budget, s.nodes,
      s.budget_steps.size(), s.chaos.size(),
      s.compare_opt ? "true" : "false");
  return 0;
}

int run_spec(const std::string& path, bool replay) {
  qes::scenario::ScenarioSpec spec;
  try {
    spec = qes::scenario::load_scenario_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qes_scenarios: %s: %s\n", path.c_str(), e.what());
    // A corpus spec rejected by validation is the expected outcome of a
    // fuzz round — only crashes count as findings under --replay.
    return replay ? 0 : 2;
  }
  const qes::scenario::ScenarioOutcome out =
      qes::scenario::run_scenario(spec);
  std::printf("RESULT_JSON %s\n", out.json_row().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::pair<std::string, std::string>> actions;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (arg == "--spec" || arg == "--replay" || arg == "--print-spec") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "qes_scenarios: %s needs a file\n", arg.c_str());
        return 2;
      }
      actions.emplace_back(arg, argv[++i]);
      continue;
    }
    std::fprintf(stderr, "qes_scenarios: unknown flag %s\n%s", arg.c_str(),
                 kUsage);
    return 2;
  }
  if (actions.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  for (const auto& [verb, path] : actions) {
    try {
      const int rc = verb == "--print-spec" ? print_spec(path)
                                            : run_spec(path, verb == "--replay");
      if (rc != 0) return rc;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "qes_scenarios: %s: %s\n", path.c_str(), e.what());
      return 1;
    }
  }
  return 0;
}
