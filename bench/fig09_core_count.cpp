// Figure 9: effect of the number of cores at a fixed budget and load
// (§V-F; arrival rate 90, H = 320 W, m = 2^x).
//
// Expected shape: few cores => poor quality and high energy (convex
// power punishes fast cores); both improve as cores are added, and
// saturate around 16 cores for this workload.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  print_header("Figure 9: core count m = 2,4,...,64 at arrival rate 90",
               "quality rises / energy falls with more cores, saturating "
               "around m = 16");

  WorkloadConfig wl = paper_workload(sim_seconds());
  wl.arrival_rate = 90.0;

  Table t({"cores", "quality", "dyn_energy_J", "satisfied", "partial",
           "zero"});
  for (int x = 1; x <= 6; ++x) {
    const int m = 1 << x;
    EngineConfig cfg = paper_engine();
    cfg.cores = m;
    const RunStats s =
        run_averaged(cfg, wl, [] { return make_des_policy(); }, seeds());
    t.add_row({std::to_string(m), fmt(s.normalized_quality, 4),
               fmt_sci(s.dynamic_energy), std::to_string(s.jobs_satisfied),
               std::to_string(s.jobs_partial), std::to_string(s.jobs_zero)});
  }
  t.print(std::cout);
  std::printf("\nnote: with few cores each core must run fast; the convex "
              "power P = a*s^2 makes that both quality- and "
              "energy-inefficient.\n");
  return 0;
}
