// Extension: differentiated service classes (premium vs regular).
//
// The paper weighs every request equally; production services do not.
// This bench overloads a core with a mix of 20% premium (weight 4) and
// 80% regular (weight 1) requests and compares the weight-blind
// Quality-OPT allocation against the weighted generalization: premium
// quality rises sharply for a modest regular-class cost, and the
// weighted objective strictly improves.
#include <iostream>

#include "bench_util.hpp"
#include "sched/quality_opt.hpp"
#include "sched/weighted_quality.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  std::printf("=== Extension: weighted quality for service classes ===\n");
  std::printf("20%% premium (weight 4) / 80%% regular (weight 1), one "
              "core, shared 150 ms window\n\n");

  const auto f = QualityFunction::exponential(0.003);
  Xoshiro256 rng(21);

  Table t({"load x capacity", "q_premium(blind)", "q_premium(weighted)",
           "q_regular(blind)", "q_regular(weighted)", "weighted objective "
           "gain %"});
  for (double load : {1.2, 1.6, 2.0, 3.0}) {
    double qp_blind = 0.0, qp_w = 0.0, qr_blind = 0.0, qr_w = 0.0;
    double obj_blind = 0.0, obj_w = 0.0;
    double np_total = 0.0, nr_total = 0.0;
    const int reps = 20;
    for (int rep = 0; rep < reps; ++rep) {
      // A burst sharing one 150 ms window on a 2 GHz core: capacity 300.
      const Work capacity = 300.0;
      std::vector<Job> jobs;
      std::vector<double> weights;
      Work total = 0.0;
      std::size_t k = 0;
      while (total < load * capacity) {
        Job j;
        j.id = ++k;
        j.release = 0.0;
        j.deadline = 150.0;
        j.demand = rng.uniform(80.0, 300.0);
        total += j.demand;
        jobs.push_back(j);
        weights.push_back(rng.bernoulli(0.2) ? 4.0 : 1.0);
      }
      AgreeableJobSet set(jobs);
      // NOTE: AgreeableJobSet sorts; same release/deadline => id order,
      // which matches the construction order, so weights stay aligned.
      const auto blind = quality_opt_schedule(set, 2.0);
      const auto smart = weighted_quality_opt_schedule(set, 2.0, weights, f);
      for (std::size_t i = 0; i < set.size(); ++i) {
        const bool premium = weights[i] > 1.5;
        const double qb = f(blind.volumes[i]) / f(set[i].demand);
        const double qw = f(smart.volumes[i]) / f(set[i].demand);
        if (premium) {
          qp_blind += qb;
          qp_w += qw;
          np_total += 1.0;
        } else {
          qr_blind += qb;
          qr_w += qw;
          nr_total += 1.0;
        }
        obj_blind += weights[i] * f(blind.volumes[i]);
        obj_w += weights[i] * f(smart.volumes[i]);
      }
    }
    t.add_row({fmt(load, 1), fmt(qp_blind / np_total, 4),
               fmt(qp_w / np_total, 4), fmt(qr_blind / nr_total, 4),
               fmt(qr_w / nr_total, 4),
               fmt(100.0 * (obj_w - obj_blind) / obj_blind, 2)});
  }
  t.print(std::cout);
  std::printf("\n(the weighted allocator equalizes omega*f'(p): premium "
              "jobs sit ln(omega)/c ~ %0.f units above regular ones at "
              "interior optima)\n\n", std::log(4.0) / 0.003);

  // Server level: full DES on 16 cores with weighted planning enabled.
  std::printf("--- server level: DES vs DES[weighted], 16 cores ---\n");
  {
    const double secs = std::min(sim_seconds(), 120.0);
    Table t2({"rate", "premium q (DES)", "premium q (weighted)",
              "regular q (DES)", "regular q (weighted)"});
    for (double rate : {200.0, 230.0, 260.0}) {
      WorkloadConfig wl = paper_workload(secs);
      wl.arrival_rate = rate;
      wl.premium_fraction = 0.2;
      auto per_class = [&wl](const PolicyFactory& factory) {
        EngineConfig c;
        c.record_execution = false;
        Engine engine(c, generate_websearch_jobs(wl), factory());
        const RunResult run = engine.run();
        const auto fq = QualityFunction::exponential(0.003);
        double qp = 0.0, np = 0.0, qr = 0.0, nr = 0.0;
        for (const JobState& st : run.jobs) {
          const double q = fq(st.processed) / fq(st.job.demand);
          if (st.job.weight > 1.5) {
            qp += q;
            np += 1.0;
          } else {
            qr += q;
            nr += 1.0;
          }
        }
        return std::pair<double, double>(qp / np, qr / nr);
      };
      const auto plain = per_class([] { return make_des_policy(); });
      const auto smart =
          per_class([] { return make_des_policy({.weighted = true}); });
      t2.add_row({fmt(rate, 0), fmt(plain.first, 4), fmt(smart.first, 4),
                  fmt(plain.second, 4), fmt(smart.second, 4)});
    }
    t2.print(std::cout);
  }
  return 0;
}
