// Figure 1: the example quality function mapping processing time to
// quality value (150 ms deadline motivation, §I).
#include <iostream>

#include "core/quality.hpp"
#include "report/table.hpp"

int main() {
  using namespace qes;
  std::printf("=== Figure 1: example quality function ===\n");
  std::printf("q(x) = (1 - e^{-cx}) / (1 - e^{-1000c}), c = 0.003\n\n");
  const auto f = QualityFunction::exponential(0.003);
  Table t({"processing_units", "quality"});
  for (int x = 0; x <= 1000; x += 100) {
    t.add_row({std::to_string(x), fmt(f(x), 4)});
  }
  t.print(std::cout);
  std::printf(
      "\nshape check: monotone increasing, strictly concave -> %s\n",
      f.check_shape(1000.0) ? "PASS" : "FAIL");
  return 0;
}
