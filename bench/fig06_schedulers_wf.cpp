// Figure 6: DES vs the baselines ENHANCED with "WF" dynamic power
// distribution (§V-E, second experiment).
//
// Expected shape: WF lifts all baselines to near-full quality at light
// load; DES keeps its advantage under heavy load thanks to its global
// view (it schedules all ready jobs, the baselines one per core).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  print_header("Figure 6: DES vs FCFS+WF / LJF+WF / SJF+WF",
               "WF lifts baselines to near-full quality at light load; "
               "DES still leads under heavy load");

  const auto rates = rate_grid();
  const EngineConfig des_cfg = paper_engine();
  const EngineConfig base_cfg = baseline_engine_config(paper_engine());
  const WorkloadConfig wl = paper_workload(sim_seconds());

  auto des = sweep_rates(des_cfg, wl, rates,
                         [] { return make_des_policy(); }, seeds());
  std::vector<std::vector<SweepPoint>> base;
  for (BaselineOrder order :
       {BaselineOrder::FCFS, BaselineOrder::LJF, BaselineOrder::SJF}) {
    base.push_back(sweep_rates(
        base_cfg, wl, rates,
        [order] {
          return make_baseline_policy(
              {.order = order, .power = PowerDistribution::WaterFilling});
        },
        seeds()));
  }

  Table t({"rate", "q(DES)", "q(FCFS+WF)", "q(LJF+WF)", "q(SJF+WF)",
           "E(DES)", "E(FCFS+WF)", "E(LJF+WF)", "E(SJF+WF)"});
  for (std::size_t k = 0; k < rates.size(); ++k) {
    t.add_row({fmt(rates[k], 0), fmt(des[k].stats.normalized_quality, 4),
               fmt(base[0][k].stats.normalized_quality, 4),
               fmt(base[1][k].stats.normalized_quality, 4),
               fmt(base[2][k].stats.normalized_quality, 4),
               fmt_sci(des[k].stats.dynamic_energy),
               fmt_sci(base[0][k].stats.dynamic_energy),
               fmt_sci(base[1][k].stats.dynamic_energy),
               fmt_sci(base[2][k].stats.dynamic_energy)});
  }
  t.print(std::cout);
  return 0;
}
