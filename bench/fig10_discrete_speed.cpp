// Figure 10: continuous vs discrete speed scaling (§V-F).
//
// Expected shape: the discrete implementation loses ~1% quality at light
// load (long requests cannot exceed the top level) and uses somewhat
// less energy; the gaps shrink under heavy load.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  print_header("Figure 10: continuous vs discrete speed scaling",
               "discrete loses ~1% quality and some energy at light load; "
               "differences vanish under overload");

  const auto rates = rate_grid(80.0, 260.0, 20.0);
  const EngineConfig cfg = paper_engine();
  const WorkloadConfig wl = paper_workload(sim_seconds());

  auto cont = sweep_rates(cfg, wl, rates,
                          [] { return make_des_policy(); }, seeds());
  auto disc = sweep_rates(
      cfg, wl, rates,
      [] {
        return make_des_policy(
            {.speed_levels = DiscreteSpeedSet::opteron2380()});
      },
      seeds());

  Table t({"rate", "q(continuous)", "q(discrete)", "dq%", "E(continuous)",
           "E(discrete)", "dE%"});
  for (std::size_t k = 0; k < rates.size(); ++k) {
    const double qc = cont[k].stats.normalized_quality;
    const double qd = disc[k].stats.normalized_quality;
    const double ec = cont[k].stats.dynamic_energy;
    const double ed = disc[k].stats.dynamic_energy;
    t.add_row({fmt(rates[k], 0), fmt(qc, 4), fmt(qd, 4),
               fmt(100.0 * (qc - qd), 2), fmt_sci(ec), fmt_sci(ed),
               fmt(100.0 * (ec - ed) / ec, 2)});
  }
  t.print(std::cout);
  std::printf("\ndiscrete levels: {0.8, 1.3, 1.8, 2.5} GHz "
              "(Opteron 2380, the paper's validation part).\n");
  return 0;
}
