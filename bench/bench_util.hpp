// Shared setup for the figure-reproduction benches: the paper's §V-B
// simulation defaults plus environment overrides.
//
//   QES_SIM_SECONDS  simulated seconds per run   (default 600; paper 1800)
//   QES_SEEDS        replicates averaged per point (default 3)
//   QES_CSV=1        print CSV instead of aligned tables
#pragma once

#include <cstdio>
#include <vector>

#include "multicore/baseline_scheduler.hpp"
#include "multicore/des_scheduler.hpp"
#include "report/table.hpp"
#include "sim/experiment.hpp"

namespace qes::bench {

inline EngineConfig paper_engine() {
  return EngineConfig{};  // 16 cores, 320 W, a=5 beta=2, c=0.003, GS triggers
}

inline WorkloadConfig paper_workload(double sim_seconds) {
  WorkloadConfig wl;
  wl.horizon_ms = sim_seconds * 1000.0;
  return wl;
}

inline double sim_seconds() { return env_sim_seconds(600.0); }
inline int seeds() { return env_seeds(3); }

/// The arrival-rate grid the paper's x-axes span (requests per second).
inline std::vector<double> rate_grid(double lo = 80.0, double hi = 260.0,
                                     double step = 20.0) {
  std::vector<double> rates;
  for (double r = lo; r <= hi + 1e-9; r += step) rates.push_back(r);
  return rates;
}

inline void print_header(const char* figure, const char* claim) {
  std::printf("=== %s ===\n", figure);
  std::printf("paper: %s\n", claim);
  std::printf("setup: %.0f simulated seconds, %d seed(s) averaged\n\n",
              sim_seconds(), seeds());
}

}  // namespace qes::bench
