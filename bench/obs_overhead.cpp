// Observability overhead: what does leaving the scrape plane on cost?
//
// Runs the identical DES simulation three ways — bare, with the metrics
// registry + phase profiler attached, and additionally with the trace
// ring + end-of-run span assembly — and prints the wall-time overhead of
// each relative to the bare run. The always-on instrumentation
// (registry + phase profiler) must stay under 3% (ISSUE acceptance);
// the trace ring is opt-in, so its cost is reported but not bounded.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "obs/registry.hpp"
#include "obs/span.hpp"
#include "obs/trace.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  using clock = std::chrono::steady_clock;

  const double seconds = env_sim_seconds(60.0);
  const int reps = env_seeds(5);
  std::printf("=== Observability overhead ===\n");
  std::printf(
      "setup: %.0f simulated seconds, %d repetition(s), best-of timing\n\n",
      seconds, reps);

  EngineConfig cfg = paper_engine();
  cfg.record_execution = false;
  WorkloadConfig wl = paper_workload(seconds);
  wl.arrival_rate = 200.0;
  const std::vector<Job> jobs = generate_websearch_jobs(wl);

  // Best-of-N wall time of one full engine run; `mode` attaches the obs
  // hooks and optionally post-processes the trace into spans, which is
  // exactly what --trace-chrome does after a run.
  enum class Mode { Bare, Metrics, MetricsAndTrace };
  double quality = 0.0;  // keep the runs honest: all modes must agree
  auto best_ms = [&](Mode mode) {
    double best = 1e300;
    for (int r = 0; r < reps + 1; ++r) {  // first rep is warmup
      EngineConfig c = cfg;
      obs::Registry registry;
      std::unique_ptr<obs::TraceRing> ring;
      if (mode != Mode::Bare) c.registry = &registry;
      if (mode == Mode::MetricsAndTrace) {
        ring = std::make_unique<obs::TraceRing>(1u << 22);
        c.trace = ring.get();
      }
      const auto t0 = clock::now();
      Engine engine(c, jobs, make_des_policy());
      const RunStats s = engine.run().stats;
      if (mode == Mode::MetricsAndTrace) {
        const auto spans = obs::assemble_spans(ring->drain());
        if (!obs::reconcile_spans(spans).matches(s)) {
          std::fprintf(stderr, "obs_overhead: span reconciliation FAILED\n");
        }
      }
      const auto t1 = clock::now();
      quality = s.total_quality;
      if (r == 0) continue;
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (ms < best) best = ms;
    }
    return best;
  };

  const double bare_ms = best_ms(Mode::Bare);
  const double metrics_ms = best_ms(Mode::Metrics);
  const double trace_ms = best_ms(Mode::MetricsAndTrace);
  const auto rel = [bare_ms](double ms) {
    return 100.0 * (ms - bare_ms) / bare_ms;
  };

  std::printf("%-34s %10s %10s\n", "configuration", "wall_ms", "overhead");
  std::printf("%-34s %10.2f %9s%%\n", "bare engine", bare_ms, "");
  std::printf("%-34s %10.2f %+9.2f%%\n", "registry + phase profiler",
              metrics_ms, rel(metrics_ms));
  std::printf("%-34s %10.2f %+9.2f%%\n", "  + trace ring + span assembly",
              trace_ms, rel(trace_ms));
  std::printf("\ntotal quality (all modes identical): %.3f\n", quality);

  const bool ok = rel(metrics_ms) < 3.0;
  std::printf("always-on overhead %s the 3%% budget\n",
              ok ? "within" : "EXCEEDS");
  return ok ? 0 : 1;
}
