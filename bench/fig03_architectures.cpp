// Figure 3: quality and energy of DES on No-DVFS / S-DVFS / C-DVFS
// architectures as the arrival rate grows (§V-C).
//
// Expected shape: C-DVFS has the best quality at every rate (~2% ahead
// at light load) and the lowest energy; S-DVFS saves substantially over
// No-DVFS (paper: >= 35.6% of dynamic energy at light load, C-DVFS a
// further ~7%); all converge under heavy load.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  print_header("Figure 3: DES on No-DVFS / S-DVFS / C-DVFS",
               "C-DVFS best quality & lowest energy; S-DVFS saves >=35.6% "
               "dynamic energy vs No-DVFS at light load; convergence under "
               "overload");

  const auto rates = rate_grid();
  const EngineConfig cfg = paper_engine();
  const WorkloadConfig wl = paper_workload(sim_seconds());

  struct Series {
    Architecture arch;
    std::vector<SweepPoint> points;
  };
  std::vector<Series> series;
  for (Architecture arch :
       {Architecture::CDVFS, Architecture::SDVFS, Architecture::NoDVFS}) {
    series.push_back({arch, sweep_rates(cfg, wl, rates,
                                        [arch] {
                                          return make_des_policy(
                                              {.arch = arch});
                                        },
                                        seeds())});
  }

  Table t({"rate", "q(C-DVFS)", "q(S-DVFS)", "q(No-DVFS)", "E(C-DVFS)",
           "E(S-DVFS)", "E(No-DVFS)"});
  for (std::size_t k = 0; k < rates.size(); ++k) {
    t.add_row({fmt(rates[k], 0),
               fmt(series[0].points[k].stats.normalized_quality, 4),
               fmt(series[1].points[k].stats.normalized_quality, 4),
               fmt(series[2].points[k].stats.normalized_quality, 4),
               fmt_sci(series[0].points[k].stats.dynamic_energy),
               fmt_sci(series[1].points[k].stats.dynamic_energy),
               fmt_sci(series[2].points[k].stats.dynamic_energy)});
  }
  t.print(std::cout);

  // Headline numbers at light load (rate 100).
  std::size_t light = 1;  // rate 100 in the default grid
  const double e_c = series[0].points[light].stats.dynamic_energy;
  const double e_s = series[1].points[light].stats.dynamic_energy;
  const double e_n = series[2].points[light].stats.dynamic_energy;
  std::printf("\nlight load (rate %.0f):\n", rates[light]);
  std::printf("  S-DVFS saves %.1f%% of dynamic energy vs No-DVFS "
              "(paper: >=35.6%%)\n",
              100.0 * (1.0 - e_s / e_n));
  std::printf("  C-DVFS saves a further %.1f%% vs S-DVFS (paper: ~6.8%%)\n",
              100.0 * (1.0 - e_c / e_s));
  std::printf("  quality gap C-DVFS vs No-DVFS: %+.2f%% (paper: ~+2%%)\n",
              100.0 * (series[0].points[light].stats.normalized_quality -
                       series[2].points[light].stats.normalized_quality));
  return 0;
}
