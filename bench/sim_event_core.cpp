// Event-core throughput and the steady-state allocation gate.
//
// The calendar-queue engine (src/sim/event_queue.hpp + sim/engine.cpp)
// plus the scratch-based replan kernel promise that a long simulation's
// heap traffic is a warm-up high-water mark, NOT per-event or per-job
// work. This bench checks that promise differentially: the same diurnal
// workload shape is simulated for 1x and 4x the horizon (so ~4x the
// jobs), and the global operator-new COUNT may grow only by a small
// constant between the two (hard gate, exit 1 on violation) — millions
// of extra jobs, effectively zero extra allocations.
//
// It also reports the raw event-core throughput (events and jobs per
// wall second) that scripts/record_bench.sh's scenario section tracks.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <utility>
#include <vector>

#include "multicore/des_scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

struct CellResult {
  std::size_t jobs = 0;
  std::uint64_t events = 0;
  std::uint64_t replans = 0;
  std::uint64_t allocs = 0;  // engine construction + full run
  double wall_s = 0.0;
};

// One diurnal cell with the long-run recording knobs off — the same
// shape scenarios/diurnal_10m.json scales up to the 10M-job day.
CellResult run_cell(double horizon_s) {
  using namespace qes;
  using clock = std::chrono::steady_clock;

  DiurnalConfig dc;
  dc.base_rate = 240.0;
  dc.amplitude = 0.6;
  dc.period_ms = 60'000.0;
  dc.horizon_ms = horizon_s * 1000.0;
  dc.seed = 7;
  std::vector<Job> jobs = generate_diurnal_jobs(dc);

  EngineConfig cfg;
  cfg.cores = 16;
  cfg.quantum_ms = 100.0;
  cfg.counter_trigger = 8;
  cfg.idle_trigger = false;
  cfg.record_execution = false;
  cfg.record_replan_times = false;

  CellResult r;
  r.jobs = jobs.size();
  const std::uint64_t a0 = alloc_count();
  const auto t0 = clock::now();
  Engine eng(cfg, std::move(jobs), make_des_policy());
  const RunResult res = eng.run();
  r.wall_s = std::chrono::duration<double>(clock::now() - t0).count();
  r.allocs = alloc_count() - a0;
  r.events = eng.events_processed();
  r.replans = static_cast<std::uint64_t>(res.stats.replans);
  return r;
}

}  // namespace

int main() {
  std::printf("=== sim event core: throughput + steady-state allocs ===\n");
  std::printf("setup: 16 cores, diurnal 240 req/s +-60%%, quantum 100 ms, "
              "counter trigger 8, recording off\n\n");

  (void)run_cell(10.0);  // warm up code paths outside the comparison

  const CellResult a = run_cell(60.0);
  const CellResult b = run_cell(240.0);

  for (const auto& [tag, c] : {std::pair{" 60 s", a}, std::pair{"240 s", b}}) {
    std::printf("%s horizon: %8zu jobs  %9llu events  %6llu replans  "
                "%7.3f s wall  %9.0f events/s  %8llu allocs\n",
                tag, c.jobs, static_cast<unsigned long long>(c.events),
                static_cast<unsigned long long>(c.replans), c.wall_s,
                static_cast<double>(c.events) / c.wall_s,
                static_cast<unsigned long long>(c.allocs));
  }

  const std::uint64_t extra_allocs = b.allocs > a.allocs
                                         ? b.allocs - a.allocs
                                         : 0;
  const std::size_t extra_jobs = b.jobs - a.jobs;
  std::printf("\n4x horizon delta: +%zu jobs, +%llu allocations\n",
              extra_jobs, static_cast<unsigned long long>(extra_allocs));

  // Hard gate: heap traffic must be a high-water phenomenon. A per-job
  // or per-event allocation would add ~extra_jobs (tens of thousands)
  // allocations here; genuine high-water growth (calendar-queue bucket
  // doubling, a deeper transient backlog) stays far under this bound.
  constexpr std::uint64_t kAllocSlack = 2048;
  if (extra_allocs > kAllocSlack) {
    std::printf("FAIL: steady-state loop allocated (+%llu allocs > %llu "
                "for 4x the jobs)\n",
                static_cast<unsigned long long>(extra_allocs),
                static_cast<unsigned long long>(kAllocSlack));
    return 1;
  }
  std::printf("PASS: steady-state event loop + replans stay off the heap\n");
  return 0;
}
