// Ablation: which DES component buys what? (design choices of §IV)
//
//   C-RR vs plain RR           — cumulative cursor vs restart-at-core-0
//   WF vs static power         — dynamic vs equal power split
//   discard vs resume          — paper's passed-job semantics vs re-plan
//   GS vs IS triggers          — grouped vs immediate scheduling
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  print_header("Ablation: DES component contributions",
               "each row disables one DES design choice");

  const auto rates = rate_grid(100.0, 220.0, 40.0);
  const WorkloadConfig wl = paper_workload(sim_seconds());
  const EngineConfig cfg = paper_engine();

  struct Variant {
    const char* name;
    EngineConfig cfg;
    PolicyFactory factory;
  };
  EngineConfig resume_cfg = cfg;
  resume_cfg.resume_passed_jobs = true;
  EngineConfig is_cfg = cfg;
  is_cfg.counter_trigger = 1;  // replan on (almost) every arrival
  const std::vector<Variant> variants = {
      {"DES (full)", cfg, [] { return make_des_policy(); }},
      {"plain RR", cfg,
       [] { return make_des_policy({.plain_round_robin = true}); }},
      {"static power", cfg,
       [] { return make_des_policy({.static_power = true}); }},
      {"resume passed jobs", resume_cfg, [] { return make_des_policy(); }},
      {"eager execution", cfg,
       [] { return make_des_policy({.eager_execution = true}); }},
      {"rebalance unstarted", cfg,
       [] { return make_des_policy({.rebalance_unstarted = true}); }},
      {"immediate scheduling", is_cfg, [] { return make_des_policy(); }},
  };

  for (const Variant& v : variants) {
    std::printf("--- %s ---\n", v.name);
    Table t({"rate", "quality", "dyn_energy_J", "replans"});
    for (double rate : rates) {
      WorkloadConfig w = wl;
      w.arrival_rate = rate;
      const RunStats s = run_averaged(v.cfg, w, v.factory, seeds());
      t.add_row({fmt(rate, 0), fmt(s.normalized_quality, 4),
                 fmt_sci(s.dynamic_energy), std::to_string(s.replans)});
    }
    t.print(std::cout);
    std::printf("\n");
  }
  return 0;
}
