// The §V-E throughput comparison (reported inline in the paper): the
// maximum arrival rate each scheduler sustains at normalized quality 0.9.
//
// Paper numbers: DES 196, FCFS 164, LJF 132, SJF 116 — DES's throughput
// is ~20% / ~48% / ~69% higher. The reproduced shape is the ordering and
// the rough magnitude of those gaps.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  print_header("Table: throughput at target quality 0.9 (§V-E)",
               "DES 196 vs FCFS 164 / LJF 132 / SJF 116 (+20% / +48% / +69%)");

  const auto rates = rate_grid(80.0, 260.0, 10.0);
  const EngineConfig des_cfg = paper_engine();
  const EngineConfig base_cfg = baseline_engine_config(paper_engine());
  const WorkloadConfig wl = paper_workload(sim_seconds());

  const double des_tp = throughput_at_quality(
      sweep_rates(des_cfg, wl, rates, [] { return make_des_policy(); },
                  seeds()),
      0.9);

  struct Row {
    const char* name;
    double tp;
    double paper;
  };
  std::vector<Row> rows = {{"DES", des_tp, 196.0}};
  const double paper_tp[] = {164.0, 132.0, 116.0};
  int pi = 0;
  for (BaselineOrder order :
       {BaselineOrder::FCFS, BaselineOrder::LJF, BaselineOrder::SJF}) {
    const double tp = throughput_at_quality(
        sweep_rates(base_cfg, wl, rates,
                    [order] {
                      return make_baseline_policy({.order = order});
                    },
                    seeds()),
        0.9);
    rows.push_back({to_string(order), tp, paper_tp[pi++]});
  }

  Table t({"scheduler", "throughput@0.9", "DES advantage", "paper tput",
           "paper advantage"});
  for (const Row& r : rows) {
    const double adv =
        r.tp > 0.0 ? 100.0 * (rows[0].tp / r.tp - 1.0) : 0.0;
    const double paper_adv = 100.0 * (rows[0].paper / r.paper - 1.0);
    t.add_row({r.name, fmt(r.tp, 1),
               r.name == std::string("DES") ? "-" : fmt(adv, 1) + "%",
               fmt(r.paper, 0),
               r.name == std::string("DES") ? "-"
                                            : fmt(paper_adv, 0) + "%"});
  }
  t.print(std::cout);
  return 0;
}
