// Empirical competitive ratio of the online stack (beyond the paper):
// single-core Online-QE (as run by DES on one core) against the
// clairvoyant offline optimum QE-OPT over the whole trace, plus the
// energy-side comparison of YDS vs the classic online algorithms OA and
// AVR on feasible (completable) traces.
#include <iostream>

#include "bench_util.hpp"
#include "sched/qe_opt.hpp"
#include "sched/quality_opt.hpp"
#include "sched/speed_scaling_online.hpp"
#include "sched/yds.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  std::printf("=== Online vs clairvoyant offline (single core) ===\n");
  std::printf("Online-QE is myopically optimal; how much does not knowing "
              "the future cost?\n\n");

  // Clairvoyant QE-OPT is cubic in the trace length; 20 s at these
  // single-core rates keeps the offline solves tractable.
  const double secs = std::min(env_sim_seconds(20.0), 20.0);
  const int reps = seeds();
  const PowerModel pm = default_power_model();
  const auto f = QualityFunction::exponential(0.003);

  {
    Table t({"rate(1 core)", "q(online)", "q(eager)", "q(offline-OPT)",
             "quality ratio", "E(online)", "E(eager)", "E(offline-OPT)"});
    for (double rate : {4.0, 8.0, 12.0, 16.0, 20.0}) {
      double q_on = 0.0, q_eager = 0.0, q_off = 0.0;
      double e_on = 0.0, e_eager = 0.0, e_off = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        WorkloadConfig wl;
        wl.arrival_rate = rate;
        wl.horizon_ms = secs * 1000.0;
        wl.seed = 100 + static_cast<std::uint64_t>(rep);
        auto jobs = generate_websearch_jobs(wl);
        if (jobs.empty()) continue;

        // Online: DES on a single core (C-RR and WF are trivial there,
        // so this isolates Online-QE).
        EngineConfig cfg;
        cfg.cores = 1;
        cfg.power_budget = 20.0;  // one core's share => 2 GHz max
        cfg.record_execution = false;
        {
          Engine engine(cfg, jobs, make_des_policy());
          const RunStats s = engine.run().stats;
          q_on += s.normalized_quality;
          e_on += s.dynamic_energy;
        }
        {
          Engine engine(cfg, jobs,
                        make_des_policy({.eager_execution = true}));
          const RunStats s = engine.run().stats;
          q_eager += s.normalized_quality;
          e_eager += s.dynamic_energy;
        }

        // Offline: QE-OPT over the full trace at the same max speed.
        const AgreeableJobSet set(jobs);
        const auto opt = qe_opt_schedule(set, pm.speed_for_power(20.0));
        double qo = 0.0, qmax = 0.0;
        for (std::size_t k = 0; k < set.size(); ++k) {
          qo += f(opt.volumes[k]);
          qmax += f(set[k].demand);
        }
        q_off += qo / qmax;
        e_off += opt.schedule.dynamic_energy(pm);
      }
      q_on /= reps;
      q_eager /= reps;
      q_off /= reps;
      e_on /= reps;
      e_eager /= reps;
      e_off /= reps;
      t.add_row({fmt(rate, 0), fmt(q_on, 4), fmt(q_eager, 4), fmt(q_off, 4),
                 fmt(q_on / q_off, 4), fmt_sci(e_on), fmt_sci(e_eager),
                 fmt_sci(e_off)});
    }
    t.print(std::cout);
    std::printf("\n(quality ratio <= 1 by offline optimality; the eager "
                "column shows how much of the gap is Online-QE's "
                "energy-stretch delaying later arrivals)\n\n");
  }

  std::printf("=== Energy-only online algorithms vs YDS (OA, AVR) ===\n");
  {
    Table t({"rate(1 core)", "E(YDS)=OPT", "E(OA)", "OA ratio", "E(AVR)",
             "AVR ratio"});
    for (double rate : {2.0, 4.0, 6.0, 8.0}) {
      double e_yds = 0.0, e_oa = 0.0, e_avr = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        WorkloadConfig wl;
        wl.arrival_rate = rate;
        wl.horizon_ms = secs * 1000.0;
        wl.seed = 500 + static_cast<std::uint64_t>(rep);
        auto jobs = generate_websearch_jobs(wl);
        if (jobs.empty()) continue;
        const AgreeableJobSet set(jobs);
        e_yds += yds_schedule(set).schedule.dynamic_energy(pm);
        e_oa += oa_schedule(set).dynamic_energy(pm);
        e_avr += avr_schedule(set).dynamic_energy(pm);
      }
      t.add_row({fmt(rate, 0), fmt_sci(e_yds), fmt_sci(e_oa),
                 fmt(e_oa / e_yds, 3), fmt_sci(e_avr),
                 fmt(e_avr / e_yds, 3)});
    }
    t.print(std::cout);
    std::printf("\n(theory: OA <= beta^beta = 4x, AVR <= 2^(beta-1) "
                "beta^beta = 8x at beta = 2; typical traces sit near 1)\n");
  }
  return 0;
}
