// Wire-plane throughput on loopback.
//
// Scenario 1 (echo sink): the epoll ingress with a sink that admits and
// completes every request inside submit_batch — no runtime behind it —
// measures the raw socket -> decode -> batch -> reply path. The client
// blasts pre-encoded SUBMIT blocks and counts REPLYs; the figure of
// merit is aggregate requests/second (target: >= 500k/s on loopback).
//
// Scenario 2 (through the runtime server): qes_loadgen's engine drives
// a real Server over the wire at an open-loop offered rate, reporting
// the achieved reply rate, scheduled-send latency percentiles, and the
// exact reconciliation (submitted == jobs_total + shed).
//
// Environment: QES_NET_REQS (echo blast size, default 1500000),
// QES_NET_RATE (scenario 2 offered req/s, default 8000),
// QES_NET_SECONDS (scenario 2 send window, default 2).
//
// The last stdout line is `RESULT_JSON {...}` — scripts/record_bench.sh
// lifts it into BENCH_*.json.
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/ingress.hpp"
#include "net/loadgen.hpp"
#include "net/socket_util.hpp"
#include "runtime/server.hpp"

namespace {

using namespace qes;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::atof(v) : fallback;
}

// Admits everything and replies immediately from the ingress worker's
// own sweep: the cheapest legal sink, isolating the wire plane itself.
class EchoSink : public net::IngressSink {
 public:
  explicit EchoSink(net::Ingress** ingress) : ingress_(ingress) {}

  std::size_t submit_batch(const net::IngressRequest* reqs,
                           std::size_t count) override {
    completions_.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      completions_[i].token = reqs[i].token;
      completions_[i].status = net::ReplyStatus::kSatisfied;
      completions_[i].quality = 1.0;
      completions_[i].latency_ms = 0.0;
    }
    (*ingress_)->complete_batch(completions_.data(), count);
    return count;
  }

 private:
  net::Ingress** ingress_;
  // Reused across batches; submit_batch is serialized per worker and
  // this bench runs one worker.
  std::vector<net::Completion> completions_;
};

struct EchoResult {
  double rps = 0.0;
  double seconds = 0.0;
  std::uint64_t requests = 0;
};

EchoResult run_echo_blast(std::uint64_t total) {
  net::Ingress* ingress_ptr = nullptr;
  EchoSink sink(&ingress_ptr);
  net::IngressConfig cfg;
  cfg.port = 0;
  cfg.workers = 1;
  net::Ingress ingress(cfg, &sink);
  ingress_ptr = &ingress;
  ingress.start();

  // One pre-encoded block, re-sent until `total` SUBMITs are out. The
  // reply counter, not per-request ids, is the ledger (ids repeat).
  std::string block;
  for (int i = 0; i < 1024; ++i) {
    net::SubmitFrame f;
    f.req_id = static_cast<std::uint64_t>(i);
    f.demand = 200.0;
    f.deadline_ms = 100.0;
    f.partial_ok = true;
    net::encode_submit(f, block);
  }
  const std::uint64_t per_block = 1024;
  const std::uint64_t blocks = (total + per_block - 1) / per_block;
  const std::uint64_t to_send = blocks * per_block;

  const int fd = net::connect_loopback(ingress.port());
  net::set_tcp_nodelay(fd);
  (void)net::set_nonblocking(fd);

  // Outstanding-request window: the ingress caps a connection's write
  // buffer (slow consumers are dropped), so the client must not let
  // more replies accumulate than it is draining. 64k outstanding
  // REPLYs is ~1.9 MB, comfortably under the 4 MB default cap.
  constexpr std::uint64_t kWindow = 64 * 1024;

  std::uint64_t sent_blocks = 0;
  std::size_t block_off = 0;
  std::uint64_t replies = 0;
  net::FrameDecoder dec;
  char buf[1 << 16];
  net::Frame frame;

  const auto t0 = std::chrono::steady_clock::now();
  while (replies < to_send) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    const bool sending = sent_blocks < blocks &&
                         sent_blocks * per_block - replies < kWindow;
    if (sending) p.events |= POLLOUT;
    if (::poll(&p, 1, 2000) <= 0) {
      throw std::runtime_error("echo blast stalled (poll timeout)");
    }
    if (sending && (p.revents & POLLOUT) != 0) {
      // Keep writing whole blocks while the socket takes them and the
      // window has room.
      while (sent_blocks < blocks &&
             sent_blocks * per_block - replies < kWindow) {
        const ssize_t n =
            ::send(fd, block.data() + block_off, block.size() - block_off,
                   MSG_NOSIGNAL);
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) throw std::runtime_error("echo blast send failed");
        block_off += static_cast<std::size_t>(n);
        if (block_off == block.size()) {
          block_off = 0;
          ++sent_blocks;
        }
      }
    }
    if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) throw std::runtime_error("echo blast: server closed");
        dec.feed(buf, static_cast<std::size_t>(n));
        while (dec.next(&frame) == net::FrameDecoder::Result::kFrame) {
          ++replies;
        }
        if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      }
    }
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ::close(fd);
  ingress.stop();

  EchoResult r;
  r.requests = replies;
  r.seconds = secs;
  r.rps = static_cast<double>(replies) / secs;
  return r;
}

}  // namespace

int main() {
  const std::uint64_t echo_reqs =
      static_cast<std::uint64_t>(env_double("QES_NET_REQS", 1.5e6));
  const double rate = env_double("QES_NET_RATE", 8000.0);
  const double seconds = env_double("QES_NET_SECONDS", 2.0);

  std::printf("=== Wire-plane loopback throughput ===\n\n");

  std::printf("[1/2] echo-sink blast: %llu SUBMITs, 1 ingress worker, "
              "1 connection\n",
              static_cast<unsigned long long>(echo_reqs));
  const EchoResult echo = run_echo_blast(echo_reqs);
  std::printf("  %llu replies in %.3f s -> %.0f req/s %s\n\n",
              static_cast<unsigned long long>(echo.requests), echo.seconds,
              echo.rps, echo.rps >= 500e3 ? "(target 500k: PASS)"
                                          : "(target 500k: MISS)");

  std::printf("[2/2] open-loop through runtime server: %.0f req/s offered "
              "for %.1f s\n",
              rate, seconds);
  runtime::ServerConfig sc;
  sc.model.cores = 8;
  sc.model.power_budget = 160.0;
  sc.time_scale = 20.0;
  sc.deadline_ms = 150.0;
  sc.listen_port = 0;
  sc.ingress_workers = 1;
  runtime::Server server(sc);
  server.start();

  net::LoadgenConfig lg;
  lg.port = server.listen_port();
  lg.rate = rate;
  lg.duration_s = seconds;
  lg.connections = 4;
  lg.seed = 17;
  const net::LoadgenReport rep = net::run_loadgen(lg);
  const RunStats stats = server.drain_and_stop();

  std::printf("  loadgen %s\n", rep.to_json().c_str());
  const bool reconciled = rep.lost == 0 && rep.replies == rep.submitted &&
                          rep.replies - rep.shed == stats.jobs_total;
  std::printf("  reconcile: submitted=%llu replies=%llu shed=%llu "
              "jobs_total=%zu -> %s\n\n",
              static_cast<unsigned long long>(rep.submitted),
              static_cast<unsigned long long>(rep.replies),
              static_cast<unsigned long long>(rep.shed), stats.jobs_total,
              reconciled ? "EXACT" : "MISMATCH");

  std::printf(
      "RESULT_JSON {\"echo_rps\": %.0f, \"echo_requests\": %llu, "
      "\"echo_seconds\": %.3f, \"server_offered_rps\": %.0f, "
      "\"server_reply_rps\": %.0f, \"server_submitted\": %llu, "
      "\"server_shed\": %llu, \"server_lost\": %llu, "
      "\"latency_p50_ms\": %.4f, \"latency_p99_ms\": %.4f, "
      "\"max_send_lag_ms\": %.3f, \"reconciled\": %s}\n",
      echo.rps, static_cast<unsigned long long>(echo.requests), echo.seconds,
      rep.offered_rate, rep.reply_rate,
      static_cast<unsigned long long>(rep.submitted),
      static_cast<unsigned long long>(rep.shed),
      static_cast<unsigned long long>(rep.lost), rep.latency.quantile(0.5),
      rep.latency.quantile(0.99), rep.max_send_lag_ms,
      reconciled ? "true" : "false");
  return reconciled && echo.requests > 0 ? 0 : 1;
}
