// Replan kernel latency: what does one DesPlanner::plan_c_dvfs cost at
// 8 / 32 / 128 ready jobs (8 cores), and does the steady-state
// view-refill path really stay off the heap?
//
// Every replan is timed end to end and through the kernel's own phase
// histograms (qes_replan_phase_ms{plane="bench"}), so the printed
// per-phase means are exactly what a live scrape of any plane reports.
// A global operator-new counter checks the two scratch contracts:
//  - refilling the WorldView and resetting the PlanOutcome after warmup
//    performs ZERO allocations (hard gate, exit 1 on violation);
//  - the full replan's allocation count is reported per load level (the
//    single-core sub-algorithms keep their value-returning interfaces,
//    so a full replan is not allocation-free by design).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/power.hpp"
#include "core/quality.hpp"
#include "obs/registry.hpp"
#include "policy/des_planner.hpp"
#include "policy/world_view.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

int main() {
  using namespace qes;
  using clock = std::chrono::steady_clock;

  constexpr std::size_t kCores = 8;
  constexpr int kReplans = 2000;
  constexpr int kWarmup = 16;
  const PowerModel pm = default_power_model();

  std::printf("=== DES replan kernel latency ===\n");
  std::printf("setup: %zu cores, %d replans per load level, "
              "budget at half the budget-free request\n\n",
              kCores, kReplans);

  obs::Registry registry;
  policy::DesPlanner planner(&registry, "bench");
  policy::WorldView view;
  policy::PlanOutcome out;

  // Steady-state refill: the head job on each core carries prior
  // volume, deadlines are agreeable, demands cycle through a small set
  // so Quality-OPT sees unequal marginal qualities.
  auto refill = [&](std::size_t jobs_per_core, Watts budget) {
    view.reset(0.0, budget, kCores);
    view.power_model = &pm;
    JobId id = 1;
    for (std::size_t c = 0; c < kCores; ++c) {
      for (std::size_t k = 0; k < jobs_per_core; ++k) {
        view.cores[c].jobs.push_back(policy::ViewJob{
            .id = id++,
            .deadline = 50.0 + 25.0 * static_cast<double>(k),
            .demand = 20.0 + 7.0 * static_cast<double>((k + c) % 5),
            .processed = k == 0 ? 4.0 : 0.0});
      }
    }
  };

  bool refill_clean = true;
  std::printf("%-12s %12s %12s %14s %16s\n", "ready_jobs", "mean_us",
              "best_us", "refill_allocs", "replan_allocs");

  for (const std::size_t jobs_per_core : {1u, 4u, 16u}) {
    const std::size_t ready = kCores * jobs_per_core;
    // Pin the budget at half the budget-free request so every replan
    // walks the full pipeline (YDS -> WF -> bounded Online-QE) instead
    // of the all-fits fast path.
    refill(jobs_per_core, 1.0);
    const Watts budget = 0.5 * planner.total_power_request(view);

    double total_ms = 0.0;
    double best_ms = 1e300;
    std::uint64_t refill_allocs = 0;
    std::uint64_t replan_allocs = 0;
    for (int r = 0; r < kWarmup + kReplans; ++r) {
      const std::uint64_t a0 = alloc_count();
      refill(jobs_per_core, budget);
      out.reset(kCores);
      const std::uint64_t a1 = alloc_count();
      const auto t0 = clock::now();
      planner.plan_c_dvfs(view, policy::PlanOptions{}, out);
      const auto t1 = clock::now();
      if (r < kWarmup) continue;
      refill_allocs += a1 - a0;
      replan_allocs += alloc_count() - a1;
      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      total_ms += ms;
      if (ms < best_ms) best_ms = ms;
    }
    if (refill_allocs != 0) refill_clean = false;
    std::printf("%-12zu %12.2f %12.2f %14llu %16.1f\n", ready,
                1e3 * total_ms / kReplans, 1e3 * best_ms,
                static_cast<unsigned long long>(refill_allocs),
                static_cast<double>(replan_allocs) / kReplans);
  }

  std::printf("\nper-phase means from qes_replan_phase_ms{plane=\"bench\"} "
              "(all load levels pooled):\n");
  for (const char* phase : {"yds", "wf", "online_qe"}) {
    const obs::Histogram* h = registry.find_histogram(
        policy::kReplanPhaseMetric, {{"plane", "bench"}, {"phase", phase}});
    if (h == nullptr || h->count() == 0) continue;
    std::printf("  %-10s %10.2f us over %llu replans\n", phase,
                1e3 * h->sum() / static_cast<double>(h->count()),
                static_cast<unsigned long long>(h->count()));
  }

  std::printf("\nsteady-state view refill %s the heap\n",
              refill_clean ? "never touches" : "ALLOCATES ON");
  return refill_clean ? 0 : 1;
}
