// Figure 7: effect of the quality function's concavity (§V-F).
// (a) the function family for c in {0.0005 .. 0.009};
// (b) DES quality vs arrival rate for each c — more concave (larger c)
//     functions harvest more quality from the same schedule; energy is
//     unaffected by the quality function.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  print_header("Figure 7: quality-function concavity sweep",
               "larger c (more concave) => higher normalized quality; "
               "energy unaffected");

  const std::vector<double> cs = {0.0005, 0.001, 0.002, 0.003, 0.005, 0.009};

  std::printf("--- (a) the function family q(x) ---\n");
  {
    std::vector<std::string> hdr = {"x"};
    for (double c : cs) hdr.push_back("c=" + fmt(c, 4));
    Table t(hdr);
    for (int x = 0; x <= 1000; x += 125) {
      std::vector<std::string> row = {std::to_string(x)};
      for (double c : cs) {
        row.push_back(fmt(QualityFunction::exponential(c)(x), 3));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  std::printf("\n--- (b) DES quality vs arrival rate ---\n");
  const auto rates = rate_grid(100.0, 260.0, 40.0);
  const WorkloadConfig wl = paper_workload(sim_seconds());
  std::vector<std::string> hdr = {"rate"};
  for (double c : cs) hdr.push_back("q(c=" + fmt(c, 4) + ")");
  hdr.push_back("E (any c)");
  Table t(hdr);
  std::vector<std::vector<SweepPoint>> sweeps;
  for (double c : cs) {
    EngineConfig cfg = paper_engine();
    cfg.quality = QualityFunction::exponential(c);
    sweeps.push_back(sweep_rates(cfg, wl, rates,
                                 [] { return make_des_policy(); }, seeds()));
  }
  for (std::size_t k = 0; k < rates.size(); ++k) {
    std::vector<std::string> row = {fmt(rates[k], 0)};
    for (std::size_t i = 0; i < cs.size(); ++i) {
      row.push_back(fmt(sweeps[i][k].stats.normalized_quality, 4));
    }
    row.push_back(fmt_sci(sweeps.back()[k].stats.dynamic_energy));
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::printf("\nnote: the scheduler's decisions (hence energy) do not "
              "depend on c — only the harvested quality does.\n");
  return 0;
}
