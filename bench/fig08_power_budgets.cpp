// Figure 8: effect of the total power budget H (§V-F).
//
// Expected shape: under heavy load a larger budget buys quality (or
// sustains higher load at the same quality); energy grows with load
// until the budget saturates, then flattens while quality degrades.
#include <iostream>

#include "bench_util.hpp"
#include "obs/registry.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  print_header("Figure 8: power budgets H = 80..640 W",
               "more budget => more quality under heavy load; energy "
               "plateaus at H*T once saturated");

  const std::vector<double> budgets = {80.0, 160.0, 320.0, 480.0, 640.0};
  const auto rates = rate_grid(80.0, 260.0, 30.0);
  const WorkloadConfig wl = paper_workload(sim_seconds());

  std::vector<std::vector<SweepPoint>> sweeps;
  for (double H : budgets) {
    EngineConfig cfg = paper_engine();
    cfg.power_budget = H;
    sweeps.push_back(sweep_rates(cfg, wl, rates,
                                 [] { return make_des_policy(); }, seeds()));
  }

  std::vector<std::string> hdr = {"rate"};
  for (double H : budgets) hdr.push_back("q(H=" + fmt(H, 0) + ")");
  for (double H : budgets) hdr.push_back("E(H=" + fmt(H, 0) + ")");
  Table t(hdr);
  for (std::size_t k = 0; k < rates.size(); ++k) {
    std::vector<std::string> row = {fmt(rates[k], 0)};
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      row.push_back(fmt(sweeps[i][k].stats.normalized_quality, 4));
    }
    for (std::size_t i = 0; i < budgets.size(); ++i) {
      row.push_back(fmt_sci(sweeps[i][k].stats.dynamic_energy));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  std::printf("\nmax rate sustaining quality 0.9 per budget:\n");
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    std::printf("  H = %3.0f W: %.0f req/s\n", budgets[i],
                throughput_at_quality(sweeps[i], 0.9));
  }

  // Self-validation of the obs plumbing: rerun one point with a metrics
  // registry attached and check the emitted histograms reconcile exactly
  // with the RunStats aggregates of the same run.
  obs::Registry registry;
  EngineConfig vcfg = paper_engine();
  vcfg.power_budget = 320.0;
  vcfg.registry = &registry;
  WorkloadConfig vwl = wl;
  vwl.arrival_rate = 150.0;
  const RunStats vs =
      run_once(vcfg, vwl, [] { return make_des_policy(); });
  const obs::Histogram* hq = registry.find_histogram("qes_sim_job_quality");
  const obs::Histogram* hl =
      registry.find_histogram("qes_sim_job_latency_ms");
  const bool ok = hq != nullptr && hl != nullptr &&
                  hq->count() == vs.jobs_total &&
                  hq->sum() == vs.total_quality &&
                  hl->count() == vs.jobs_satisfied;
  std::printf(
      "\nobs histogram validation (H=320, rate=150): quality "
      "count=%llu/%zu sum=%.9g/%.9g, latency count=%llu/%zu -> %s\n",
      static_cast<unsigned long long>(hq ? hq->count() : 0), vs.jobs_total,
      hq ? hq->sum() : 0.0, vs.total_quality,
      static_cast<unsigned long long>(hl ? hl->count() : 0),
      vs.jobs_satisfied, ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}
