// Substrate validation: the paper ASSUMES web-search quality is a
// concave function of processing (Fig. 1, Eq. 1). This bench derives
// that curve from the search-engine substrate — impact-ordered early
// termination over a Zipfian corpus — and reports how well the paper's
// exponential family fits the measurement, plus how the real query cost
// distribution compares with the bounded-Pareto stand-in.
#include <cmath>
#include <iostream>

#include "core/prng.hpp"
#include "report/table.hpp"
#include "search/profile.hpp"
#include "workload/demand.hpp"

int main() {
  using namespace qes;
  std::printf("=== Substrate check: measured quality(work) vs Eq. (1) ===\n");
  std::printf("paper: quality is increasing & concave in processing "
              "(assumed); here it is measured\n\n");

  search::CorpusConfig cc;
  cc.num_documents = 10'000;
  cc.vocabulary = 4'000;
  const search::Corpus corpus(cc);
  const search::InvertedIndex index(corpus);
  search::ProfileConfig pc;
  pc.num_queries = 300;
  const auto prof = search::profile_quality(index, corpus, pc);

  // The primary metric is the top-k score MASS accumulated (concave in
  // expectation under impact ordering); identity-based score recall is shown
  // as a diagnostic — its "resolution tail" (exact top-k membership only
  // settles near full work) makes it S-shaped.
  const auto fitted = prof.fitted_function();
  const search::QueryExecutor exec(index);
  Xoshiro256 rng(99);
  std::vector<double> recall(prof.work_units.size(), 0.0);
  int counted = 0;
  for (int rep = 0; rep < 120; ++rep) {
    const auto q = search::sample_query(corpus, rng);
    const std::size_t cost = exec.full_cost(q);
    if (cost < 40) continue;
    std::vector<std::size_t> budgets;
    for (std::size_t g = 1; g <= prof.work_units.size(); ++g) {
      budgets.push_back(cost * g / prof.work_units.size());
    }
    const auto snaps = exec.execute_prefixes(q, 10, budgets);
    for (std::size_t g = 0; g < snaps.size(); ++g) {
      recall[g] += search::QueryExecutor::score_recall(snaps[g], snaps.back());
    }
    ++counted;
  }
  for (double& r : recall) r /= counted;

  Table t({"work_units", "topk_mass (primary)", "fitted_Eq1", "abs_err",
           "identity_recall (diagnostic)"});
  for (std::size_t g = 0; g < prof.work_units.size(); ++g) {
    const double m = prof.mean_quality[g];
    const double f = fitted(prof.work_units[g]);
    t.add_row({fmt(prof.work_units[g], 0), fmt(m, 4), fmt(f, 4),
               fmt(std::fabs(m - f), 4), fmt(recall[g], 4)});
  }
  t.print(std::cout);

  std::printf("\nmeasured curve concave & monotone : %s\n",
              prof.measured_curve_concave() ? "yes" : "NO");
  std::printf("fitted c = %.5f (paper's default assumption: 0.003), "
              "fit rmse = %.4f\n", prof.fitted_c, prof.fit_rmse);
  std::printf("query cost (units): min %.0f / mean %.0f / max %.0f  "
              "(paper's bounded-Pareto: 130 / ~192 / 1000)\n",
              prof.demand_min, prof.demand_mean, prof.demand_max);
  const BoundedPareto paper = BoundedPareto::websearch();
  std::printf("bounded-Pareto analytic mean: %.1f units\n", paper.mean());
  std::printf("\nconclusion: the best-effort model the scheduler relies on "
              "emerges from the application, it is not baked in.\n");
  return 0;
}
