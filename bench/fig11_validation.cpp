// Figure 11: energy comparison between the simulation and the "real
// system" (§V-G).
//
// The paper replays DES (discrete scaling, practical power model
// P = 2.6075 s^1.791 + 9.2562 fitted from PowerPack measurements on an
// Opteron 2380 cluster, 152 W budget) and finds measured energy close to
// simulated energy. Lacking the cluster, we replay the executed schedule
// on a synthetic machine whose ground truth is the measured speed/power
// TABLE plus DVFS/scheduler overheads and sampled, noisy metering — the
// same gap sources as the paper's.
#include <iostream>

#include "bench_util.hpp"
#include "validation/opteron.hpp"
#include "validation/regression.hpp"
#include "validation/replay.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  const double secs = env_sim_seconds(600.0);  // paper: 10 min per rate
  std::printf("=== Figure 11: simulation vs real-system energy (§V-G) ===\n");
  std::printf("paper: measured and simulated energy nearly coincide\n");
  std::printf("setup: 8 cores, Opteron-2380 power model, H = 152 W total, "
              "%.0f simulated seconds\n\n", secs);

  // Reproduce the regression step from the measured table.
  std::vector<std::pair<Speed, Watts>> samples;
  for (const auto& p : kOpteron2380Measured) {
    samples.emplace_back(p.ghz, p.watts);
  }
  const auto fit = fit_power_model(samples);
  std::printf("regression over measured points: a=%.4f beta=%.3f b=%.4f "
              "(paper: a=2.6075 beta=1.791 b=9.2562, rmse=%.3f W)\n\n",
              fit.model.a, fit.model.beta, fit.model.b, fit.rmse);

  EngineConfig cfg;
  cfg.cores = 8;
  cfg.power_model = opteron_fitted_model();
  cfg.power_budget = 152.0 - cfg.cores * cfg.power_model.b;  // dynamic share
  cfg.max_core_speed = 2.5;
  cfg.record_execution = true;

  Table t({"rate", "sim_energy_J", "replayed_'measured'_J", "gap_%",
           "transitions"});
  for (double rate : {40.0, 60.0, 80.0, 100.0, 120.0}) {
    WorkloadConfig wl;
    wl.arrival_rate = rate;
    wl.horizon_ms = secs * 1000.0;
    Engine engine(cfg, generate_websearch_jobs(wl),
                  make_des_policy(
                      {.speed_levels = DiscreteSpeedSet::opteron2380()}));
    const RunResult run = engine.run();
    const ReplayResult r = replay_on_real_system(run, cfg);
    t.add_row({fmt(rate, 0), fmt_sci(r.model_energy),
               fmt_sci(r.measured_energy),
               fmt(100.0 * (r.measured_energy - r.model_energy) /
                       r.model_energy,
                   2),
               std::to_string(r.speed_transitions)});
  }
  t.print(std::cout);
  std::printf("\n(gap sources, as on real hardware: fitted-model-vs-table "
              "residuals, DVFS transitions, scheduler overhead, sampled "
              "noisy metering)\n");
  return 0;
}
