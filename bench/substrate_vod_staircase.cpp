// Substrate check #2: video-on-demand and the smooth-concavity
// assumption.
//
// The paper's model maps processed volume to quality through a smooth
// concave function. Layered video is best-effort but its TRUE quality is
// a staircase — partially transcoded enhancement layers are worthless.
// This bench schedules streaming sessions with DES (whose allocation is
// quality-function-agnostic under the identical-concave assumption) and
// scores the same execution under (a) the smooth envelope the model
// assumes and (b) the truthful staircase, quantifying the model-fidelity
// gap and how it grows with load.
#include <iostream>

#include "alloc/waterfill.hpp"
#include "bench_util.hpp"
#include "core/prng.hpp"
#include "vod/allocate.hpp"
#include "vod/session.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  std::printf("=== Substrate check: VoD layered quality vs the smooth "
              "model ===\n");
  std::printf("paper: quality(work) smooth & concave; layered video: "
              "concave STAIRCASE\n\n");

  const double secs = std::min(sim_seconds(), 120.0);
  const vod::LayeredVideoModel model;

  std::printf("chunk model: %zu layers, cumulative (work -> utility):",
              model.layers().size());
  Work w = 0.0;
  double u = 0.0;
  for (const auto& layer : model.layers()) {
    w += layer.work;
    u += layer.utility;
    std::printf(" (%.0f, %.2f)", w, u);
  }
  std::printf("\n\n");

  Table t({"sessions/s", "chunk req/s", "q(envelope)", "q(staircase)",
           "wasted partial-layer work %"});
  for (double rate : {10.0, 20.0, 30.0, 40.0, 50.0}) {
    vod::SessionWorkloadConfig wl;
    wl.session_rate = rate;
    wl.horizon_ms = secs * 1000.0;
    const auto workload = vod::generate_sessions(model, wl);
    if (workload.jobs.empty()) continue;

    EngineConfig cfg;  // 16 cores, 320 W
    cfg.quality = model.envelope_function();
    cfg.record_execution = false;
    Engine engine(cfg, workload.jobs, make_des_policy());
    const RunResult run = engine.run();

    std::vector<Work> processed;
    processed.reserve(run.jobs.size());
    for (const JobState& st : run.jobs) processed.push_back(st.processed);
    const double env = vod::scaled_quality(model, workload, processed,
                                           /*staircase=*/false);
    const double stair = vod::scaled_quality(model, workload, processed,
                                             /*staircase=*/true);
    // Work spent beyond the last completed layer is wasted under the
    // staircase.
    Work done = 0.0, banked = 0.0;
    for (std::size_t k = 0; k < processed.size(); ++k) {
      const Work v = processed[k] / workload.complexity[k];
      done += v;
      banked += model.round_to_layer(v);
    }
    const double req_rate =
        static_cast<double>(workload.jobs.size()) / secs;
    t.add_row({fmt(rate, 0), fmt(req_rate, 0), fmt(env, 4), fmt(stair, 4),
               fmt(done > 0.0 ? 100.0 * (1.0 - banked / done) : 0.0, 1)});
  }
  t.print(std::cout);
  std::printf(
      "\nreading: the envelope column is what the paper's model believes; "
      "the staircase column is what viewers see; the last column is work "
      "stranded inside unfinished layers.\n\n");

  // Extension: a layer-aware allocator closes the gap. Single-interval
  // comparison — N concurrent chunks share a fixed capacity; smooth
  // water-filling (the paper) vs greedy-by-density whole layers.
  std::printf("--- layer-aware allocation (extension), single interval ---\n");
  {
    Xoshiro256 rng(7);
    Table t2({"chunks", "capacity/chunk", "U(waterfill, truthful)",
              "U(layer-aware)", "gain %"});
    for (double frac : {0.3, 0.5, 0.7}) {
      const std::size_t n = 24;
      std::vector<double> cx;
      Work total = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        cx.push_back(rng.uniform(0.6, 2.2));
        total += cx.back() * model.total_work();
      }
      const Work C = frac * total;
      std::vector<Work> caps;
      for (double c : cx) caps.push_back(c * model.total_work());
      const auto smooth = waterfill_volumes(caps, C);
      double u_smooth = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        u_smooth += model.staircase_utility(smooth.alloc[j] / cx[j]);
      }
      const auto smart = vod::layer_aware_allocate(model, cx, C);
      t2.add_row({std::to_string(n), fmt(frac * model.total_work(), 0),
                  fmt(u_smooth / n, 4), fmt(smart.total_utility / n, 4),
                  fmt(100.0 * (smart.total_utility - u_smooth) /
                          std::max(u_smooth, 1e-9),
                      1)});
    }
    t2.print(std::cout);
  }
  std::printf("\nwhole-layer allocation recovers the stranded work -- the "
              "natural follow-up the paper's smooth model leaves open.\n");
  return 0;
}
