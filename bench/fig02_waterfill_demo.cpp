// Figure 2: the Water-Filling power-distribution worked example — a
// 4-core system where core 4 requests less than the equal share and the
// other three split the remainder (§IV-C).
#include <iostream>

#include "policy/power_waterfill.hpp"
#include "report/table.hpp"

int main() {
  using namespace qes;
  std::printf("=== Figure 2: \"WF\" power distribution across 4 cores ===\n");
  std::printf("total budget H = 100 W\n\n");

  const std::vector<Watts> requested = {60.0, 45.0, 40.0, 10.0};
  const auto assigned = waterfill_power(requested, 100.0);

  Table t({"core", "requested_W", "assigned_W", "note"});
  Watts total = 0.0;
  for (std::size_t i = 0; i < requested.size(); ++i) {
    total += assigned[i];
    const bool satisfied = assigned[i] + 1e-9 >= requested[i];
    t.add_row({std::to_string(i + 1), fmt(requested[i], 2),
               fmt(assigned[i], 2),
               satisfied ? "demand met" : "levelled (shares remainder)"});
  }
  t.print(std::cout);
  std::printf("\nassigned total = %.2f W (== budget; conservation holds)\n",
              total);
  std::printf("cores 1-3 sit at the common water level; core 4 got "
              "exactly its demand.\n");
  return 0;
}
