// Cluster weak scaling: N nodes, offered load and global budget both
// scaled with N (150 req/s and 320 W per node), replayed through the
// deterministic cluster lockstep under each dispatch policy.
//
// Expected shape: normalized quality stays roughly flat as the cluster
// grows (each node sees the single-node operating point of Figure 5),
// the broker keeps max cluster power at H = 320*N, and the queue-aware
// policies (jsq, p2c) track crr closely at this balanced load — the
// dispatch policy matters under skew, not under uniform Poisson.
#include <iostream>
#include <string>

#include "bench_util.hpp"
#include "cluster/lockstep.hpp"
#include "workload/generator.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  const double secs = env_sim_seconds(60.0);
  const int reps = env_seeds(3);
  std::printf(
      "=== Cluster weak scaling: N = 1,2,4,8 nodes x (150 req/s, 320 W) "
      "===\n");
  std::printf(
      "claim: per-node quality holds as shards are added; the broker keeps "
      "cluster power at H\n");
  std::printf("setup: %.0f simulated seconds, %d seed(s) averaged\n\n", secs,
              reps);

  Table t({"nodes", "dispatch", "norm_quality", "dyn_energy_J",
           "max_power_W", "budget_H_W", "route_shed", "replans"});
  for (const int n : {1, 2, 4, 8}) {
    cluster::LockstepClusterConfig cc;
    cc.node.cores = 16;
    cc.nodes = n;
    cc.total_budget = 320.0 * n;
    for (const cluster::DispatchPolicy p :
         {cluster::DispatchPolicy::CRR, cluster::DispatchPolicy::JSQ,
          cluster::DispatchPolicy::PowerOfTwo}) {
      cc.dispatch = p;
      double quality = 0.0, energy = 0.0, max_power = 0.0;
      std::size_t shed = 0, replans = 0;
      for (int seed = 1; seed <= reps; ++seed) {
        WorkloadConfig wl;
        wl.arrival_rate = 150.0 * n;
        wl.horizon_ms = secs * 1000.0;
        wl.seed = static_cast<std::uint64_t>(seed);
        const cluster::ClusterRunStats s = cluster::run_cluster_lockstep(
            cc, generate_websearch_jobs(wl));
        quality += s.normalized_quality;
        energy += s.dynamic_energy + s.static_energy;
        max_power = std::max(max_power, s.max_cluster_power);
        shed += s.route_shed;
        replans += s.replans;
      }
      const double k = static_cast<double>(reps);
      t.add_row({std::to_string(n), cluster::dispatch_policy_name(p),
                 fmt(quality / k, 4), fmt_sci(energy / k), fmt(max_power, 1),
                 fmt(cc.total_budget, 0), std::to_string(shed),
                 std::to_string(replans)});
    }
  }
  t.print(std::cout);
  std::printf(
      "\nnote: max_power_W is sampled at broker decisions and never exceeds "
      "budget_H_W — the broker redistributes headroom but the sum of node "
      "budgets is pinned to H.\n");
  return 0;
}
