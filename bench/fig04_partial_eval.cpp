// Figure 4: DES with different proportions of jobs supporting partial
// evaluation — 0%, 50%, 100% (§V-D).
//
// Expected shape: more partial-evaluation support => higher quality and
// (slightly) more energy; at quality 0.9 the 100% case sustains the
// highest arrival rate (paper: 194 vs 168 vs 158).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  print_header("Figure 4: partial-evaluation support 0% / 50% / 100%",
               "more partial support => higher quality under load; "
               "quality-0.9 rates ~158 / ~168 / ~194");

  const auto rates = rate_grid(100.0, 240.0, 10.0);
  const EngineConfig cfg = paper_engine();

  const std::vector<double> fracs = {0.0, 0.5, 1.0};
  std::vector<std::vector<SweepPoint>> sweeps;
  for (double frac : fracs) {
    WorkloadConfig wl = paper_workload(sim_seconds());
    wl.partial_fraction = frac;
    sweeps.push_back(sweep_rates(cfg, wl, rates,
                                 [] { return make_des_policy(); }, seeds()));
  }

  Table t({"rate", "q(0%)", "q(50%)", "q(100%)", "E(0%)", "E(50%)",
           "E(100%)"});
  for (std::size_t k = 0; k < rates.size(); ++k) {
    t.add_row({fmt(rates[k], 0),
               fmt(sweeps[0][k].stats.normalized_quality, 4),
               fmt(sweeps[1][k].stats.normalized_quality, 4),
               fmt(sweeps[2][k].stats.normalized_quality, 4),
               fmt_sci(sweeps[0][k].stats.dynamic_energy),
               fmt_sci(sweeps[1][k].stats.dynamic_energy),
               fmt_sci(sweeps[2][k].stats.dynamic_energy)});
  }
  t.print(std::cout);

  std::printf("\nmax arrival rate sustaining normalized quality 0.9:\n");
  for (std::size_t i = 0; i < fracs.size(); ++i) {
    std::printf("  %3.0f%% partial: %.0f req/s\n", 100.0 * fracs[i],
                throughput_at_quality(sweeps[i], 0.9));
  }
  std::printf("(paper: 158 / 168 / 194 — the ordering and ~13-19%% spread "
              "are the reproduced shape)\n");
  return 0;
}
