// Figure 5: DES vs FCFS / LJF / SJF with static equal power sharing
// (§V-E, first experiment).
//
// Expected shape: DES leads quality at every rate (~2% even under light
// load); FCFS beats LJF and SJF; SJF's energy falls under overload
// because it starves long jobs.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  print_header("Figure 5: DES vs FCFS/LJF/SJF (static power sharing)",
               "quality: DES > FCFS > LJF > SJF; SJF energy drops under "
               "overload (it starves long jobs)");

  const auto rates = rate_grid();
  const EngineConfig des_cfg = paper_engine();
  const EngineConfig base_cfg = baseline_engine_config(paper_engine());
  const WorkloadConfig wl = paper_workload(sim_seconds());

  auto des = sweep_rates(des_cfg, wl, rates,
                         [] { return make_des_policy(); }, seeds());
  std::vector<std::vector<SweepPoint>> base;
  for (BaselineOrder order :
       {BaselineOrder::FCFS, BaselineOrder::LJF, BaselineOrder::SJF}) {
    base.push_back(sweep_rates(
        base_cfg, wl, rates,
        [order] {
          return make_baseline_policy(
              {.order = order, .power = PowerDistribution::StaticEqual});
        },
        seeds()));
  }

  Table t({"rate", "q(DES)", "q(FCFS)", "q(LJF)", "q(SJF)", "E(DES)",
           "E(FCFS)", "E(LJF)", "E(SJF)"});
  for (std::size_t k = 0; k < rates.size(); ++k) {
    t.add_row({fmt(rates[k], 0), fmt(des[k].stats.normalized_quality, 4),
               fmt(base[0][k].stats.normalized_quality, 4),
               fmt(base[1][k].stats.normalized_quality, 4),
               fmt(base[2][k].stats.normalized_quality, 4),
               fmt_sci(des[k].stats.dynamic_energy),
               fmt_sci(base[0][k].stats.dynamic_energy),
               fmt_sci(base[1][k].stats.dynamic_energy),
               fmt_sci(base[2][k].stats.dynamic_energy)});
  }
  t.print(std::cout);
  return 0;
}
