// Extension: heterogeneous (big.LITTLE) servers.
//
// The paper assumes identical cores. Real parts mix fast and slow cores;
// per-core DVFS plus Water-Filling handles the asymmetry naturally —
// slow cores cannot spend an equal power share (1 GHz needs 5 W of the
// 20 W slice under P = 5 s^2), so WF reroutes the surplus to the fast
// cores, while static sharing strands it.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace qes;
  using namespace qes::bench;
  print_header("Extension: big.LITTLE (8x 3 GHz + 8x 1 GHz, 320 W)",
               "WF reroutes the power that slow cores cannot use; static "
               "sharing strands it");

  EngineConfig hetero;
  hetero.per_core_max_speed.assign(8, 3.0);
  hetero.per_core_max_speed.insert(hetero.per_core_max_speed.end(), 8, 1.0);
  const EngineConfig homo = paper_engine();  // 16 uncapped cores
  const WorkloadConfig wl = paper_workload(std::min(sim_seconds(), 300.0));
  const auto rates = rate_grid(100.0, 220.0, 40.0);

  auto het_wf = sweep_rates(hetero, wl, rates,
                            [] { return make_des_policy(); }, seeds());
  auto het_static = sweep_rates(
      hetero, wl, rates,
      [] { return make_des_policy({.static_power = true}); }, seeds());
  auto homo_wf = sweep_rates(homo, wl, rates,
                             [] { return make_des_policy(); }, seeds());
  auto het_aware = sweep_rates(
      hetero, wl, rates,
      [] { return make_des_policy({.capacity_aware_distribution = true}); },
      seeds());

  Table t({"rate", "q(hetero, WF)", "q(hetero, static)",
           "q(hetero, cap-aware)", "q(homo)", "E(hetero, WF)",
           "E(hetero, cap-aware)"});
  for (std::size_t k = 0; k < rates.size(); ++k) {
    t.add_row({fmt(rates[k], 0),
               fmt(het_wf[k].stats.normalized_quality, 4),
               fmt(het_static[k].stats.normalized_quality, 4),
               fmt(het_aware[k].stats.normalized_quality, 4),
               fmt(homo_wf[k].stats.normalized_quality, 4),
               fmt_sci(het_wf[k].stats.dynamic_energy),
               fmt_sci(het_aware[k].stats.dynamic_energy)});
  }
  t.print(std::cout);
  std::printf("\nreading: plain C-RR deals jobs BLINDLY, so half the "
              "traffic lands on 1 GHz cores that cannot finish a "
              "mean-sized request in 150 ms; WF can only soften that. "
              "Capacity-aware dealing (smooth weighted round robin, "
              "proportional to core speed) recovers most of the gap to "
              "the homogeneous server — the equal-sharing principle, "
              "generalized to unequal cores.\n");
  return 0;
}
