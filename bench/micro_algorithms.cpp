// Micro-benchmarks (google-benchmark) of the core scheduling algorithms:
// the per-invocation costs that bound DES's scheduling overhead.
#include <benchmark/benchmark.h>

#include "alloc/waterfill.hpp"
#include "core/prng.hpp"
#include "multicore/des_scheduler.hpp"
#include "policy/power_waterfill.hpp"
#include "sched/online_qe.hpp"
#include "sched/qe_opt.hpp"
#include "sched/quality_opt.hpp"
#include "sched/yds.hpp"
#include "sim/experiment.hpp"

namespace {

using namespace qes;

std::vector<Job> make_jobs(std::size_t n, bool same_release,
                           std::uint64_t seed = 7) {
  Xoshiro256 rng(seed);
  std::vector<Job> jobs;
  for (std::size_t k = 0; k < n; ++k) {
    Job j;
    j.id = k + 1;
    j.release = same_release ? 0.0 : rng.uniform(0.0, 1000.0);
    j.deadline = j.release + 150.0;
    j.demand = rng.uniform(130.0, 1000.0);
    jobs.push_back(j);
  }
  sort_by_release(jobs);
  return jobs;
}

void BM_Yds_Offline(benchmark::State& state) {
  const AgreeableJobSet set(
      make_jobs(static_cast<std::size_t>(state.range(0)), false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(yds_schedule(set));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Yds_Offline)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_Yds_Online(benchmark::State& state) {
  // All releases equal: the DES step-2 case.
  const AgreeableJobSet set(
      make_jobs(static_cast<std::size_t>(state.range(0)), true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(yds_schedule(set));
  }
}
BENCHMARK(BM_Yds_Online)->RangeMultiplier(2)->Range(8, 128);

void BM_QualityOpt(benchmark::State& state) {
  const AgreeableJobSet set(
      make_jobs(static_cast<std::size_t>(state.range(0)), true));
  for (auto _ : state) {
    benchmark::DoNotOptimize(quality_opt_schedule(set, 2.0));
  }
}
BENCHMARK(BM_QualityOpt)->RangeMultiplier(2)->Range(8, 128);

void BM_QeOpt(benchmark::State& state) {
  const AgreeableJobSet set(
      make_jobs(static_cast<std::size_t>(state.range(0)), false));
  for (auto _ : state) {
    benchmark::DoNotOptimize(qe_opt_schedule(set, 2.0));
  }
}
BENCHMARK(BM_QeOpt)->RangeMultiplier(2)->Range(8, 64);

void BM_OnlineQe(benchmark::State& state) {
  // The per-core, per-trigger call inside DES.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(5);
  std::vector<ReadyJob> ready;
  for (std::size_t k = 0; k < n; ++k) {
    ready.push_back({.id = k + 1,
                     .deadline = 10.0 + rng.uniform(0.0, 140.0),
                     .demand = rng.uniform(130.0, 1000.0)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(online_qe(0.0, ready, 2.0));
  }
}
BENCHMARK(BM_OnlineQe)->RangeMultiplier(2)->Range(2, 64);

void BM_VolumeWaterfill(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(3);
  std::vector<Work> caps;
  Work total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    caps.push_back(rng.uniform(10.0, 1000.0));
    total += caps.back();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(waterfill_volumes(caps, total * 0.6));
  }
}
BENCHMARK(BM_VolumeWaterfill)->RangeMultiplier(4)->Range(16, 1024);

void BM_PowerWaterfill(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  Xoshiro256 rng(3);
  std::vector<Watts> req;
  for (std::size_t k = 0; k < m; ++k) req.push_back(rng.uniform(0.0, 60.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(waterfill_power(req, 320.0));
  }
}
BENCHMARK(BM_PowerWaterfill)->RangeMultiplier(4)->Range(4, 256);

void BM_FullSimulationSecond(benchmark::State& state) {
  // Wall time to simulate one second of server operation under DES at
  // the given arrival rate.
  const double rate = static_cast<double>(state.range(0));
  for (auto _ : state) {
    WorkloadConfig wl;
    wl.arrival_rate = rate;
    wl.horizon_ms = 1000.0;
    EngineConfig cfg;
    benchmark::DoNotOptimize(
        run_once(cfg, wl, [] { return make_des_policy(); }));
  }
}
BENCHMARK(BM_FullSimulationSecond)->Arg(100)->Arg(200)->Arg(260);

}  // namespace

BENCHMARK_MAIN();
