#include "validation/replay.hpp"

#include <cmath>

#include "core/assert.hpp"
#include "core/prng.hpp"
#include "validation/opteron.hpp"

namespace qes {

ReplayResult replay_on_real_system(const RunResult& run,
                                   const EngineConfig& cfg,
                                   ReplayOptions opt) {
  QES_ASSERT_MSG(!run.executed.empty(),
                 "replay needs a run recorded with record_execution");
  QES_ASSERT_MSG(run.executed.size() == static_cast<std::size_t>(cfg.cores),
                 "run and config disagree on the core count");
  QES_ASSERT(opt.sampling_hz > 0.0);
  ReplayResult out;
  Xoshiro256 rng(opt.seed);

  const Time end = run.stats.end_time;
  const Time dt = 1000.0 / opt.sampling_hz;  // sample period, ms
  const std::size_t samples =
      static_cast<std::size_t>(std::ceil(end / dt));
  out.power_samples = samples;

  // Sampled integral of the measured-table power, core by core.
  Joules busy_energy = 0.0;
  for (const Schedule& sched : run.executed) {
    std::size_t seg = 0;
    const auto& segs = sched.segments();
    for (std::size_t k = 0; k < samples; ++k) {
      const Time t = (static_cast<double>(k) + 0.5) * dt;
      while (seg < segs.size() && segs[seg].t1 <= t) ++seg;
      Speed s = 0.0;
      if (seg < segs.size() && segs[seg].t0 <= t) s = segs[seg].speed;
      busy_energy += joules(opteron_measured_power(s), dt);
    }
    // DVFS transitions: one per speed change (including idle<->busy).
    Speed prev = 0.0;
    for (const Segment& sg : segs) {
      if (!approx_eq(sg.speed, prev)) {
        ++out.speed_transitions;
        // During the stall the core burns the target level's power but
        // performs no work; charge the extra time.
        busy_energy += joules(opteron_measured_power(sg.speed),
                              opt.dvfs_transition_ms);
      }
      prev = sg.speed;
    }
    if (prev > 0.0) ++out.speed_transitions;  // final drop to idle
  }

  // Scheduler invocations execute on some core at top speed.
  const Watts top_power = opteron_measured_power(2.5);
  busy_energy += joules(top_power, opt.scheduler_overhead_ms) *
                 static_cast<double>(run.replan_times.size());

  // Sensor noise on each total-power sample.
  Joules noise_energy = 0.0;
  for (std::size_t k = 0; k < samples; ++k) {
    noise_energy += joules(rng.normal(0.0, opt.noise_stddev_watts), dt);
  }

  out.measured_energy = busy_energy + noise_energy;
  out.model_energy = run.stats.dynamic_energy + run.stats.static_energy;
  return out;
}

}  // namespace qes
