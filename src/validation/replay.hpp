// "Real-system" replay substrate for the §V-G validation experiment.
//
// The paper replays DES scheduling traces on an instrumented Opteron
// cluster and compares measured energy against the simulation. Lacking
// that hardware, this module re-executes a simulation's per-core executed
// schedule against a synthetic machine whose ground-truth power is the
// *measured speed/power table* (not the fitted a*s^beta + b model the
// simulator uses), with the artifacts a physical measurement would add:
//   - static power on every core at all times,
//   - DVFS transition overhead on every per-core speed change,
//   - per-invocation scheduling overhead,
//   - PowerPack-style finite-rate sampling with Gaussian sensor noise.
// The gap between model_energy and measured_energy therefore has the
// same sources as the paper's Fig. 11 gap (fit residuals + overheads).
#pragma once

#include <cstdint>

#include "sim/engine.hpp"

namespace qes {

struct ReplayOptions {
  /// Stall on every per-core speed transition (µs-scale on real parts).
  Time dvfs_transition_ms = 0.1;
  /// Power-meter sampling rate (PowerPack samples at ~1 kHz).
  double sampling_hz = 1000.0;
  /// Per-sample Gaussian noise on the total power reading (watts).
  double noise_stddev_watts = 1.0;
  /// CPU cost of one scheduler invocation, charged at top-level power.
  Time scheduler_overhead_ms = 0.05;
  std::uint64_t seed = 42;
};

struct ReplayResult {
  /// Energy the instrumented "real system" reports (includes static).
  Joules measured_energy = 0.0;
  /// Energy the simulator's fitted model predicts (includes static).
  Joules model_energy = 0.0;
  std::size_t speed_transitions = 0;
  std::size_t power_samples = 0;
};

/// Replays the executed schedules of `run` (produced with
/// EngineConfig::record_execution) on the synthetic Opteron machine.
/// `cfg` must be the config the run used (for core count and the fitted
/// power model).
[[nodiscard]] ReplayResult replay_on_real_system(const RunResult& run,
                                                 const EngineConfig& cfg,
                                                 ReplayOptions opt = {});

}  // namespace qes
