// Power-model regression (paper §V-G): fit P(s) = a * s^beta + b to a set
// of measured (speed, power) samples, as the authors did to drive their
// simulator with a realistic model.
//
// For a fixed beta the problem is linear least squares in (a, b); beta is
// then found by golden-section search on the residual, which is smooth
// and unimodal over the physical range.
#pragma once

#include <span>
#include <utility>

#include "core/power.hpp"

namespace qes {

struct PowerFit {
  PowerModel model;
  double rmse = 0.0;  ///< root mean squared residual (watts)
};

/// Fits (a, beta, b) to the samples. Requires >= 3 samples with distinct
/// speeds; beta is searched in [beta_lo, beta_hi].
[[nodiscard]] PowerFit fit_power_model(
    std::span<const std::pair<Speed, Watts>> samples, double beta_lo = 1.05,
    double beta_hi = 3.5);

}  // namespace qes
