// The paper's validation hardware (§V-G): 8-node cluster of Quad-Core
// AMD Opteron 2380, per-core discrete speeds with measured total power,
// instrumented with PowerPack. We reproduce the measured table and the
// paper's regression-fitted model P = a s^beta + b.
#pragma once

#include <array>

#include "core/assert.hpp"
#include "core/power.hpp"

namespace qes {

struct MeasuredPowerPoint {
  Speed ghz;
  Watts watts;  ///< total per-core power (dynamic + static)
};

/// Measured (speed, power) pairs from §V-G.
inline constexpr std::array<MeasuredPowerPoint, 4> kOpteron2380Measured = {{
    {0.8, 11.06},
    {1.3, 13.275},
    {1.8, 16.85},
    {2.5, 22.69},
}};

/// The paper's regression result over the measured pairs.
[[nodiscard]] inline PowerModel opteron_fitted_model() {
  return PowerModel{.a = 2.6075, .beta = 1.791, .b = 9.2562};
}

/// Total per-core power at a given speed according to the measured table
/// (linear interpolation between levels; 0 speed = static-only power
/// using the fitted b, since an idle core is clock-gated).
[[nodiscard]] inline Watts opteron_measured_power(Speed s) {
  QES_ASSERT(s >= 0.0);
  if (s <= kTimeEps) return opteron_fitted_model().b;
  const auto& tab = kOpteron2380Measured;
  if (s <= tab.front().ghz) return tab.front().watts;
  for (std::size_t i = 1; i < tab.size(); ++i) {
    if (s <= tab[i].ghz + kTimeEps) {
      const double f = (s - tab[i - 1].ghz) / (tab[i].ghz - tab[i - 1].ghz);
      return tab[i - 1].watts + f * (tab[i].watts - tab[i - 1].watts);
    }
  }
  return tab.back().watts;
}

}  // namespace qes
