#include "validation/regression.hpp"

#include <cmath>

#include "core/assert.hpp"

namespace qes {

namespace {

// Linear least squares P = a * x + b with x = s^beta; returns RMSE.
double solve_linear(std::span<const std::pair<Speed, Watts>> samples,
                    double beta, double& a, double& b) {
  const double n = static_cast<double>(samples.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (const auto& [s, p] : samples) {
    const double x = std::pow(s, beta);
    sx += x;
    sy += p;
    sxx += x * x;
    sxy += x * p;
  }
  const double det = n * sxx - sx * sx;
  QES_ASSERT_MSG(std::fabs(det) > 1e-12,
                 "regression needs samples with distinct speeds");
  a = (n * sxy - sx * sy) / det;
  b = (sy - a * sx) / n;
  double sse = 0.0;
  for (const auto& [s, p] : samples) {
    const double r = a * std::pow(s, beta) + b - p;
    sse += r * r;
  }
  return std::sqrt(sse / n);
}

}  // namespace

PowerFit fit_power_model(std::span<const std::pair<Speed, Watts>> samples,
                         double beta_lo, double beta_hi) {
  QES_ASSERT(samples.size() >= 3);
  QES_ASSERT(beta_lo > 0.0 && beta_hi > beta_lo);

  // Golden-section search for the beta minimizing the linear-fit RMSE.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = beta_lo, hi = beta_hi;
  double a = 0.0, b = 0.0;
  double x1 = hi - phi * (hi - lo);
  double x2 = lo + phi * (hi - lo);
  double f1 = solve_linear(samples, x1, a, b);
  double f2 = solve_linear(samples, x2, a, b);
  for (int iter = 0; iter < 100 && hi - lo > 1e-7; ++iter) {
    if (f1 < f2) {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = solve_linear(samples, x1, a, b);
    } else {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = solve_linear(samples, x2, a, b);
    }
  }
  const double beta = (lo + hi) / 2.0;
  PowerFit fit;
  fit.rmse = solve_linear(samples, beta, a, b);
  fit.model = PowerModel{.a = a, .beta = beta, .b = b};
  return fit;
}

}  // namespace qes
