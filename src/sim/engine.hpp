// Discrete-event simulation engine for multicore scheduling under a
// power budget (paper §V).
//
// The engine is architecture-agnostic: a SchedulingPolicy installs, per
// core, a piecewise-constant (job, speed) plan plus an "idle power" that
// the core burns when no segment is active (0 for core-level DVFS; the
// common chip power for S-DVFS; the fixed full power for No-DVFS). The
// engine advances time event by event — arrivals, trigger firings,
// segment boundaries, deadline expiries — integrating processed volumes
// and energy exactly (power is constant between consecutive events) and
// asserting the instantaneous power cap.
//
// Job lifecycle: Waiting (arrived, in the global queue) -> Assigned (on a
// core, never migrates) -> Finalized. A job finalizes when it completes,
// when its deadline passes, when the policy discards it, or — under the
// paper's execution model — when its core finishes the job's planned
// partial volume and moves past it ("discarded due to partial
// evaluation", §IV-B). Setting resume_passed_jobs keeps passed-over jobs
// alive for re-planning instead (the ablation model).
#pragma once

#include <deque>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/assert.hpp"
#include "core/job.hpp"
#include "core/power.hpp"
#include "core/quality.hpp"
#include "core/schedule.hpp"
#include "sim/metrics.hpp"

namespace qes::obs {
class Registry;
class TraceRing;
}  // namespace qes::obs

namespace qes {

struct EngineConfig {
  int cores = 16;
  /// Total *dynamic* power budget H in watts (§V-B: 320 W).
  Watts power_budget = 320.0;
  PowerModel power_model = default_power_model();
  QualityFunction quality = QualityFunction::exponential(0.003);
  /// Grouped-scheduling triggers (§IV-E). quantum_ms <= 0 disables the
  /// quantum trigger; counter_trigger <= 0 disables the counter trigger.
  Time quantum_ms = 500.0;
  int counter_trigger = 8;
  bool idle_trigger = true;
  /// Hardware cap on any core's speed (GHz); infinity = power-bound only.
  Speed max_core_speed = std::numeric_limits<double>::infinity();
  /// Heterogeneous (big.LITTLE) servers: per-core speed caps overriding
  /// max_core_speed when non-empty (size must equal `cores`; extension).
  std::vector<Speed> per_core_max_speed;

  /// Effective hardware speed cap of core `i`.
  [[nodiscard]] Speed core_speed_cap(int i) const {
    QES_ASSERT_MSG(i >= 0 && i < cores, "core index out of range");
    if (per_core_max_speed.empty()) return max_core_speed;
    QES_ASSERT_MSG(
        per_core_max_speed.size() == static_cast<std::size_t>(cores),
        "per_core_max_speed must have one entry per core");
    return per_core_max_speed[static_cast<std::size_t>(i)];
  }
  /// Keep partially executed, passed-over jobs alive for re-planning
  /// (ablation; the paper discards them).
  bool resume_passed_jobs = false;
  /// Record the executed per-core schedules in the RunResult (needed by
  /// the validation replay; costs memory on long runs).
  bool record_execution = true;
  /// Optional observability hooks (not owned). When set, end-of-run
  /// aggregates are mirrored into `registry` under the "qes_sim" prefix
  /// and lifecycle events are pushed into `trace` (see src/obs/).
  obs::Registry* registry = nullptr;
  obs::TraceRing* trace = nullptr;
};

class Engine;

/// Strategy invoked at every trigger firing to (re)plan the system.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual void replan(Engine& engine) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Engine-side view of one job.
struct JobState {
  Job job;
  enum class Phase { Waiting, Assigned, Finalized } phase = Phase::Waiting;
  int core = -1;              ///< assigned core, -1 while waiting
  Work processed = 0.0;       ///< volume executed so far
  double quality = 0.0;       ///< set at finalization
  bool satisfied = false;     ///< processed == demand at finalization
  Time finalized_at = -1.0;
};

struct RunResult {
  RunStats stats;
  /// Actually executed segments per core (empty if !record_execution).
  std::vector<Schedule> executed;
  /// Times at which the policy was invoked.
  std::vector<Time> replan_times;
  /// Final per-job states, in job-id order.
  std::vector<JobState> jobs;
};

class Engine {
 public:
  /// Jobs must have dense ids 1..n in arrival order (as produced by the
  /// workload generator) and agreeable deadlines.
  Engine(EngineConfig config, std::vector<Job> jobs,
         std::unique_ptr<SchedulingPolicy> policy);

  /// Runs the simulation to completion (all jobs finalized) and returns
  /// the collected statistics.
  [[nodiscard]] RunResult run();

  // ---- policy-facing API (valid during SchedulingPolicy::replan) ----

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }
  [[nodiscard]] int cores() const { return cfg_.cores; }

  /// Waiting (arrived, unassigned, unexpired) jobs in arrival order.
  [[nodiscard]] std::span<const JobId> waiting() const { return waiting_; }

  /// Live jobs assigned to `core`, in arrival (== deadline) order.
  [[nodiscard]] const std::deque<JobId>& assigned(int core) const;

  /// Read one job's state.
  [[nodiscard]] const JobState& job(JobId id) const;

  /// True when the core has exhausted its current plan.
  [[nodiscard]] bool core_idle(int core) const;

  /// Move a waiting job onto a core (C-RR / baseline pick). The job must
  /// currently be waiting.
  void assign_to_core(JobId id, int core);

  /// Finalize a job right now with its accumulated volume (zero quality
  /// if the job does not support partial evaluation and is incomplete).
  void discard_job(JobId id);

  /// Return an assigned but UNSTARTED job to the waiting queue (used by
  /// the rebalancing ablation; the paper's DES never migrates). Clears
  /// the core's plan — the policy must install a fresh one.
  void unassign_from_core(JobId id);

  /// Replace the core's plan from now() onward. Segments must start at
  /// or after now(), reference live jobs assigned to this core, and
  /// respect their windows.
  void set_core_plan(int core, Schedule plan);

  /// Dynamic power the core burns when no segment is active (until the
  /// next replan that changes it).
  void set_core_idle_power(int core, Watts watts);

 private:
  struct CoreRuntime {
    Schedule plan;
    std::size_t next_seg = 0;
    Watts idle_power = 0.0;
    std::deque<JobId> queue;  // live assigned jobs, arrival order
  };

  JobState& state(JobId id);
  void advance_to(Time t);
  void finalize(JobId id, bool force_zero_quality = false);
  void expire_due_jobs();
  [[nodiscard]] bool all_finalized() const {
    return finalized_count_ == jobs_.size();
  }

  EngineConfig cfg_;
  std::unique_ptr<SchedulingPolicy> policy_;
  std::vector<JobState> jobs_;     // index = id - 1
  std::vector<CoreRuntime> cores_;
  std::vector<JobId> waiting_;
  std::size_t next_arrival_ = 0;   // index into jobs_ (arrival order)
  std::size_t first_live_ = 0;     // earliest possibly-unfinalized job
  std::size_t finalized_count_ = 0;
  Time now_ = 0.0;
  Time next_quantum_ = 0.0;
  Joules dynamic_energy_ = 0.0;
  Watts peak_power_ = 0.0;
  RunResult result_;
};

}  // namespace qes
