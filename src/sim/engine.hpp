// Discrete-event simulation engine for multicore scheduling under a
// power budget (paper §V).
//
// The engine is architecture-agnostic: a SchedulingPolicy installs, per
// core, a piecewise-constant (job, speed) plan plus an "idle power" that
// the core burns when no segment is active (0 for core-level DVFS; the
// common chip power for S-DVFS; the fixed full power for No-DVFS). The
// engine advances time event by event — arrivals, trigger firings,
// segment boundaries, deadline expiries — integrating processed volumes
// and energy exactly (power is constant between consecutive events) and
// asserting the instantaneous power cap.
//
// The pending-event set is a bucketed calendar queue (sim/event_queue.hpp)
// holding one entry per event SOURCE — the next arrival, the next quantum
// firing, the earliest live deadline, the next budget step, and one wake
// per core with a pending segment boundary. Sources are monotone, so a
// small cache of what was last pushed keeps the queue population bounded
// by O(cores); entries invalidated by state changes (a replan replacing a
// plan, a deadline expiring early) are detected lazily at pop time and
// discarded without running an iteration. Together with capacity-reusing
// job/plan containers this makes the steady-state event loop allocation
// free (gated by bench/sim_event_core); the result is bitwise identical
// to the legacy scan-all-sources loop (tests/sim_engine_golden_test).
//
// Job lifecycle: Waiting (arrived, in the global queue) -> Assigned (on a
// core, never migrates) -> Finalized. A job finalizes when it completes,
// when its deadline passes, when the policy discards it, or — under the
// paper's execution model — when its core finishes the job's planned
// partial volume and moves past it ("discarded due to partial
// evaluation", §IV-B). Setting resume_passed_jobs keeps passed-over jobs
// alive for re-planning instead (the ablation model).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/assert.hpp"
#include "core/job.hpp"
#include "core/power.hpp"
#include "core/quality.hpp"
#include "core/schedule.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"

namespace qes::obs {
class Registry;
class TraceRing;
}  // namespace qes::obs

namespace qes {

/// A scheduled change of the power budget H (chaos / brownout
/// scenarios). The engine applies the step when simulated time reaches
/// `at` and fires a replan so the policy can re-fit its plans to the new
/// budget.
struct EngineBudgetStep {
  Time at = 0.0;
  Watts budget = 0.0;
};

struct EngineConfig {
  int cores = 16;
  /// Total *dynamic* power budget H in watts (§V-B: 320 W).
  Watts power_budget = 320.0;
  PowerModel power_model = default_power_model();
  QualityFunction quality = QualityFunction::exponential(0.003);
  /// Grouped-scheduling triggers (§IV-E). quantum_ms <= 0 disables the
  /// quantum trigger; counter_trigger <= 0 disables the counter trigger.
  Time quantum_ms = 500.0;
  int counter_trigger = 8;
  bool idle_trigger = true;
  /// Hardware cap on any core's speed (GHz); infinity = power-bound only.
  Speed max_core_speed = std::numeric_limits<double>::infinity();
  /// Heterogeneous (big.LITTLE) servers: per-core speed caps overriding
  /// max_core_speed when non-empty (size must equal `cores`; extension).
  std::vector<Speed> per_core_max_speed;

  /// Effective hardware speed cap of core `i`.
  [[nodiscard]] Speed core_speed_cap(int i) const {
    QES_ASSERT_MSG(i >= 0 && i < cores, "core index out of range");
    if (per_core_max_speed.empty()) return max_core_speed;
    QES_ASSERT_MSG(
        per_core_max_speed.size() == static_cast<std::size_t>(cores),
        "per_core_max_speed must have one entry per core");
    return per_core_max_speed[static_cast<std::size_t>(i)];
  }
  /// Keep partially executed, passed-over jobs alive for re-planning
  /// (ablation; the paper discards them).
  bool resume_passed_jobs = false;
  /// Record the executed per-core schedules in the RunResult (needed by
  /// the validation replay; costs memory on long runs).
  bool record_execution = true;
  /// Record each replan instant in RunResult::replan_times (needed by
  /// the validation replay; costs memory on long runs — the replans
  /// COUNT in RunStats is kept either way).
  bool record_replan_times = true;
  /// Scheduled power-budget changes, sorted ascending by `at`. Empty
  /// (the default) keeps H constant and leaves the run bit-for-bit
  /// unchanged. Steps due after the last job finalizes never apply.
  std::vector<EngineBudgetStep> budget_steps;
  /// Optional observability hooks (not owned). When set, end-of-run
  /// aggregates are mirrored into `registry` under the "qes_sim" prefix
  /// and lifecycle events are pushed into `trace` (see src/obs/).
  obs::Registry* registry = nullptr;
  obs::TraceRing* trace = nullptr;
};

class Engine;

/// Strategy invoked at every trigger firing to (re)plan the system.
class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;
  virtual void replan(Engine& engine) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Engine-side view of one job.
struct JobState {
  Job job;
  enum class Phase { Waiting, Assigned, Finalized } phase = Phase::Waiting;
  int core = -1;              ///< assigned core, -1 while waiting
  Work processed = 0.0;       ///< volume executed so far
  double quality = 0.0;       ///< set at finalization
  bool satisfied = false;     ///< processed == demand at finalization
  Time finalized_at = -1.0;
};

struct RunResult {
  RunStats stats;
  /// Actually executed segments per core (empty if !record_execution).
  std::vector<Schedule> executed;
  /// Times at which the policy was invoked (empty if
  /// !record_replan_times).
  std::vector<Time> replan_times;
  /// Final per-job states, in job-id order.
  std::vector<JobState> jobs;
};

class Engine {
 public:
  /// Jobs must have dense ids 1..n in arrival order (as produced by the
  /// workload generator) and agreeable deadlines.
  Engine(EngineConfig config, std::vector<Job> jobs,
         std::unique_ptr<SchedulingPolicy> policy);

  /// Runs the simulation to completion (all jobs finalized) and returns
  /// the collected statistics.
  [[nodiscard]] RunResult run();

  // ---- policy-facing API (valid during SchedulingPolicy::replan) ----

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const EngineConfig& config() const { return cfg_; }
  [[nodiscard]] int cores() const { return cfg_.cores; }

  /// Calendar-queue entries popped so far (valid + lazily discarded);
  /// the event-rate denominator for throughput reporting.
  [[nodiscard]] std::uint64_t events_processed() const {
    return events_processed_;
  }

  /// Waiting (arrived, unassigned, unexpired) jobs in arrival order.
  [[nodiscard]] std::span<const JobId> waiting() const { return waiting_; }

  /// Live jobs assigned to `core`, in arrival (== deadline) order.
  [[nodiscard]] std::span<const JobId> assigned(int core) const;

  /// Read one job's state.
  [[nodiscard]] const JobState& job(JobId id) const;

  /// True when the core has exhausted its current plan.
  [[nodiscard]] bool core_idle(int core) const;

  /// Move a waiting job onto a core (C-RR / baseline pick). The job must
  /// currently be waiting.
  void assign_to_core(JobId id, int core);

  /// Finalize a job right now with its accumulated volume (zero quality
  /// if the job does not support partial evaluation and is incomplete).
  void discard_job(JobId id);

  /// Return an assigned but UNSTARTED job to the waiting queue (used by
  /// the rebalancing ablation; the paper's DES never migrates). Clears
  /// the core's plan — the policy must install a fresh one.
  void unassign_from_core(JobId id);

  /// Replace the core's plan from now() onward. Segments must start at
  /// or after now(), reference live jobs assigned to this core, and
  /// respect their windows. The plan is copied into a capacity-reusing
  /// slot, so callers may keep (and refill) their own Schedule buffer.
  void set_core_plan(int core, const Schedule& plan);

  /// Dynamic power the core burns when no segment is active (until the
  /// next replan that changes it).
  void set_core_idle_power(int core, Watts watts);

 private:
  struct CoreRuntime {
    Schedule plan;
    std::size_t next_seg = 0;
    Watts idle_power = 0.0;
    std::vector<JobId> queue;  // live assigned jobs, arrival (== id) order
    std::uint64_t wake_gen = 0;  // bumping it invalidates queued wakes
    bool dirty = false;          // wake candidate must be re-armed
    bool in_live = false;        // member of live_
    // dynamic_power(speed) of segment power_seg, cached so integration
    // sub-steps do not re-evaluate pow() for an unchanged segment (the
    // cached double is the exact same value, so sums stay bitwise
    // identical).
    std::size_t power_seg = SIZE_MAX;
    Watts power_w = 0.0;
  };

  /// One calendar-queue entry. Validity is re-checked at pop against the
  /// current state; stale entries are discarded without running an event
  /// iteration.
  struct Ev {
    enum class Kind : std::uint8_t {
      Arrival,     // idx = arrival index; valid while idx == next_arrival_
      Quantum,     // valid while its time still equals next_quantum_
      Deadline,    // idx = job index; valid while idx == first_live_
      CoreWake,    // core's next segment boundary; idx = wake generation
      BudgetStep,  // idx = step index; valid while idx == next_budget_step_
    };
    Kind kind = Kind::Arrival;
    std::uint32_t core = 0;
    std::uint64_t idx = 0;
  };

  JobState& state(JobId id);
  void advance_to(Time t);
  void finalize(JobId id, bool force_zero_quality = false);
  void expire_due_jobs();
  /// Re-arms queue entries for sources whose candidate time changed
  /// since the last call (push caches keep one entry per source).
  void refresh_events();
  void mark_dirty(int core);
  void enter_live(int core);
  /// The legacy loop's per-core candidate: the pending segment's start
  /// if still ahead, else its end. Requires a pending segment.
  [[nodiscard]] Time core_wake_candidate(const CoreRuntime& c) const {
    const Segment& s = c.plan[c.next_seg];
    return s.t0 > now_ + kTimeEps ? s.t0 : s.t1;
  }
  [[nodiscard]] bool all_finalized() const {
    return finalized_count_ == jobs_.size();
  }

  EngineConfig cfg_;
  std::unique_ptr<SchedulingPolicy> policy_;
  std::vector<JobState> jobs_;     // index = id - 1
  std::vector<CoreRuntime> cores_;
  std::vector<JobId> waiting_;
  std::size_t next_arrival_ = 0;   // index into jobs_ (arrival order)
  std::size_t first_live_ = 0;     // earliest possibly-unfinalized job
  std::size_t next_budget_step_ = 0;
  std::size_t finalized_count_ = 0;
  std::size_t replan_count_ = 0;
  std::uint64_t events_processed_ = 0;
  Time now_ = 0.0;
  Time next_quantum_ = 0.0;
  Joules dynamic_energy_ = 0.0;
  Watts peak_power_ = 0.0;
  sim::CalendarQueue<Ev> events_{8.0, 256};
  /// Cores with pending segments or positive idle power, ascending, so
  /// power summation keeps the legacy all-cores index order (skipped
  /// cores contribute an exact +0.0).
  std::vector<int> live_;
  std::vector<int> dirty_cores_;
  // Last pushed value per monotone event source (one entry outstanding).
  std::size_t pushed_arrival_ = SIZE_MAX;
  std::size_t pushed_deadline_ = SIZE_MAX;
  std::size_t pushed_budget_ = SIZE_MAX;
  Time pushed_quantum_ = -1.0;
  RunResult result_;
};

}  // namespace qes
