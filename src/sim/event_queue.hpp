// CalendarQueue: a bucketed calendar queue (Brown '88 style) for the
// discrete-event engine's pending-event set.
//
// Entries are (time, seq, payload) with seq a monotonically increasing
// push counter; pop() always returns the minimum by (time, seq), i.e.
// FIFO among equal timestamps — the total order a deterministic
// simulator needs. Times map to fixed-width buckets by floor(t / width)
// and collide modulo the (power-of-two) bucket count; pop scans only the
// current bucket for entries belonging to the current "lap", advancing
// bucket by bucket and jumping straight to the earliest populated bucket
// when a sparse stretch would otherwise cost a full lap of empty hops.
//
// Pushing an entry earlier than the current bucket rewinds the cursor to
// that entry's bucket (O(1)); the engine only does this within
// floating-point fuzz of `now`, but correctness does not depend on that.
//
// Buckets are plain vectors that keep their capacity, so a simulation in
// steady state (bounded pending-event population) pushes and pops with
// zero heap allocations; the table only reallocates while growing toward
// its high-water mark. sim_event_queue_test property-checks the ordering
// against std::priority_queue.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/assert.hpp"

namespace qes::sim {

template <typename T>
class CalendarQueue {
 public:
  struct Item {
    double t = 0.0;
    std::uint64_t seq = 0;
    T value{};
  };

  /// `bucket_width` is the time span one bucket covers; `bucket_count`
  /// is rounded up to a power of two. The defaults suit millisecond
  /// timestamps with sub-second event spacing; correctness holds for any
  /// positive width.
  explicit CalendarQueue(double bucket_width = 8.0,
                         std::size_t bucket_count = 256)
      : width_(bucket_width) {
    QES_ASSERT(bucket_width > 0.0);
    std::size_t n = 1;
    while (n < bucket_count) n <<= 1;
    buckets_.resize(n);
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Inserts `value` at time `t` (t >= 0) and returns its sequence
  /// number, usable with erase().
  std::uint64_t push(double t, const T& value) {
    QES_ASSERT(t >= 0.0);
    const std::uint64_t seq = next_seq_++;
    const std::uint64_t b = abs_bucket(t);
    if (size_ == 0 || b < cur_abs_) cur_abs_ = b;  // (re)anchor the cursor
    bucket_of(b).push_back(Item{t, seq, value});
    ++size_;
    if (size_ > buckets_.size() * 4) grow();
    return seq;
  }

  /// Removes and returns the earliest entry by (t, seq).
  Item pop() {
    QES_ASSERT_MSG(size_ > 0, "pop on an empty CalendarQueue");
    for (std::size_t hops = 0;; ++hops) {
      std::vector<Item>& bucket = bucket_of(cur_abs_);
      std::size_t best = bucket.size();
      for (std::size_t i = 0; i < bucket.size(); ++i) {
        const Item& e = bucket[i];
        if (abs_bucket(e.t) != cur_abs_) continue;  // a future lap
        if (best == bucket.size() || e.t < bucket[best].t ||
            (e.t == bucket[best].t && e.seq < bucket[best].seq)) {
          best = i;
        }
      }
      if (best != bucket.size()) {
        const Item out = bucket[best];
        bucket[best] = bucket.back();  // buckets are unordered
        bucket.pop_back();
        --size_;
        return out;
      }
      if (hops == buckets_.size()) {
        cur_abs_ = min_abs_bucket();  // sparse stretch: jump, don't lap
      } else {
        ++cur_abs_;
      }
    }
  }

  /// Removes the entry with the given time and sequence number (as
  /// returned by push). Returns false if it is no longer queued.
  bool erase(double t, std::uint64_t seq) {
    std::vector<Item>& bucket = bucket_of(abs_bucket(t));
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (bucket[i].seq != seq) continue;
      bucket[i] = bucket.back();
      bucket.pop_back();
      --size_;
      return true;
    }
    return false;
  }

 private:
  [[nodiscard]] std::uint64_t abs_bucket(double t) const {
    return static_cast<std::uint64_t>(t / width_);
  }
  [[nodiscard]] std::vector<Item>& bucket_of(std::uint64_t abs) {
    return buckets_[abs & (buckets_.size() - 1)];
  }

  [[nodiscard]] std::uint64_t min_abs_bucket() const {
    std::uint64_t best = 0;
    bool found = false;
    for (const std::vector<Item>& bucket : buckets_) {
      for (const Item& e : bucket) {
        const std::uint64_t b = abs_bucket(e.t);
        if (!found || b < best) {
          best = b;
          found = true;
        }
      }
    }
    QES_ASSERT(found);
    return best;
  }

  void grow() {
    std::vector<std::vector<Item>> old = std::move(buckets_);
    buckets_.assign(old.size() * 2, {});
    for (std::vector<Item>& bucket : old) {
      for (const Item& e : bucket) bucket_of(abs_bucket(e.t)).push_back(e);
    }
  }

  double width_;
  std::vector<std::vector<Item>> buckets_;
  std::uint64_t cur_abs_ = 0;   // bucket the cursor is scanning
  std::uint64_t next_seq_ = 0;
  std::size_t size_ = 0;
};

}  // namespace qes::sim
