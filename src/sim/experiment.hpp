// Experiment harness shared by the figure benches and examples: run one
// simulation, sweep arrival rates over several seeds, and locate the
// maximum sustainable rate for a target quality (the paper's
// "throughput at quality 0.9" comparison, §V-E).
#pragma once

#include <functional>
#include <vector>

#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace qes {

/// Creates a fresh policy per run (policies hold per-run state such as
/// the C-RR cursor).
using PolicyFactory = std::function<std::unique_ptr<SchedulingPolicy>()>;

/// Generates the workload for `wl`, runs it through `engine_cfg` +
/// `make_policy`, returns the stats.
[[nodiscard]] RunStats run_once(const EngineConfig& engine_cfg,
                                const WorkloadConfig& wl,
                                const PolicyFactory& make_policy);

/// Component-wise mean of several runs' stats.
[[nodiscard]] RunStats average_stats(std::span<const RunStats> runs);

/// Runs `seeds` replicates (seeds base_seed, base_seed+1, ...) at one
/// arrival rate and averages.
[[nodiscard]] RunStats run_averaged(const EngineConfig& engine_cfg,
                                    WorkloadConfig wl,
                                    const PolicyFactory& make_policy,
                                    int seeds, std::uint64_t base_seed = 1);

/// Replicate statistics: mean stats plus the across-seed spread of the
/// two headline metrics (sample stddev; 95% CI via normal approximation,
/// adequate for the >= 3 replicates the benches use).
struct ReplicatedStats {
  RunStats mean;
  double quality_stddev = 0.0;
  Joules energy_stddev = 0.0;
  int replicates = 0;

  [[nodiscard]] double quality_ci95() const;
  [[nodiscard]] Joules energy_ci95() const;
};

/// Runs `seeds` replicates and reports mean + spread.
[[nodiscard]] ReplicatedStats run_replicated(const EngineConfig& engine_cfg,
                                             WorkloadConfig wl,
                                             const PolicyFactory& make_policy,
                                             int seeds,
                                             std::uint64_t base_seed = 1);

struct SweepPoint {
  double arrival_rate = 0.0;
  RunStats stats;
};

/// Sweeps arrival rates, averaging over seeds per point.
[[nodiscard]] std::vector<SweepPoint> sweep_rates(
    const EngineConfig& engine_cfg, WorkloadConfig wl,
    std::span<const double> rates, const PolicyFactory& make_policy,
    int seeds);

/// Largest arrival rate sustaining normalized quality >= target, linearly
/// interpolated between sweep points (0 if even the lowest rate fails).
[[nodiscard]] double throughput_at_quality(std::span<const SweepPoint> sweep,
                                           double target_quality);

/// Environment overrides for the benches: QES_SIM_SECONDS (simulated
/// duration) and QES_SEEDS (replicates per point).
[[nodiscard]] double env_sim_seconds(double fallback);
[[nodiscard]] int env_seeds(int fallback);

}  // namespace qes
