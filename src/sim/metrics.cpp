#include "sim/metrics.hpp"

#include <cmath>

namespace qes {

bool lex_better(const QualityEnergy& a, const QualityEnergy& b,
                double quality_tol) {
  if (a.quality > b.quality + quality_tol) return true;
  if (a.quality < b.quality - quality_tol) return false;
  return a.energy < b.energy;
}

}  // namespace qes
