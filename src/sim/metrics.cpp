#include "sim/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace qes {

bool lex_better(const QualityEnergy& a, const QualityEnergy& b,
                double quality_tol) {
  if (a.quality > b.quality + quality_tol) return true;
  if (a.quality < b.quality - quality_tol) return false;
  return a.energy < b.energy;
}

std::string stats_to_json(const RunStats& s) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"total_quality\": %.6f, \"max_quality\": %.6f, "
      "\"normalized_quality\": %.6f, \"dynamic_energy_j\": %.3f, "
      "\"static_energy_j\": %.3f, \"total_energy_j\": %.3f, "
      "\"peak_power_w\": %.3f, \"end_time_ms\": %.3f, "
      "\"jobs_total\": %zu, \"jobs_satisfied\": %zu, "
      "\"jobs_partial\": %zu, \"jobs_zero\": %zu, "
      "\"jobs_discarded_rigid\": %zu, "
      "\"mean_latency_ms\": %.3f, \"p50_latency_ms\": %.3f, "
      "\"p95_latency_ms\": %.3f, \"p99_latency_ms\": %.3f, "
      "\"replans\": %zu}",
      s.total_quality, s.max_quality, s.normalized_quality, s.dynamic_energy,
      s.static_energy, s.total_energy(), s.peak_power, s.end_time,
      s.jobs_total, s.jobs_satisfied, s.jobs_partial, s.jobs_zero,
      s.jobs_discarded_rigid, s.mean_latency, s.p50_latency, s.p95_latency,
      s.p99_latency, s.replans);
  return buf;
}

}  // namespace qes
