// Run statistics and the paper's composite <quality, energy> metric
// (paper §II-C): schedules are ranked lexicographically — higher total
// quality first, lower energy among quality ties.
#pragma once

#include <cstddef>
#include <string>

#include "core/time.hpp"

namespace qes {

struct QualityEnergy {
  double quality = 0.0;
  Joules energy = 0.0;
};

/// Lexicographic comparison: true if `a` is strictly better than `b`
/// under <quality, energy>. Qualities within `quality_tol` count as tied.
[[nodiscard]] bool lex_better(const QualityEnergy& a, const QualityEnergy& b,
                              double quality_tol = 1e-9);

struct RunStats {
  // Quality.
  double total_quality = 0.0;       ///< sum of f(p_j) (0 for failed rigid jobs)
  double max_quality = 0.0;         ///< sum of f(w_j): the attainable maximum
  double normalized_quality = 0.0;  ///< total / max

  // Energy (dynamic integrated over [0, end_time]; static = m*b*end_time).
  Joules dynamic_energy = 0.0;
  Joules static_energy = 0.0;
  [[nodiscard]] Joules total_energy() const {
    return dynamic_energy + static_energy;
  }
  Watts peak_power = 0.0;
  Time end_time = 0.0;  ///< last deadline (the d_n of E's integral)

  // Job outcomes.
  std::size_t jobs_total = 0;
  std::size_t jobs_satisfied = 0;   ///< completed in full
  std::size_t jobs_partial = 0;     ///< got some volume, not all
  std::size_t jobs_zero = 0;        ///< no volume at all
  std::size_t jobs_discarded_rigid = 0;  ///< non-partial jobs that failed

  // Response-time statistics of SATISFIED jobs (finalize - release, ms).
  // Zero when nothing was satisfied. Interactive services watch the tail.
  Time mean_latency = 0.0;
  Time p50_latency = 0.0;
  Time p95_latency = 0.0;
  Time p99_latency = 0.0;

  // Scheduler activity.
  std::size_t replans = 0;

  [[nodiscard]] QualityEnergy quality_energy() const {
    return {normalized_quality, dynamic_energy + static_energy};
  }
};

/// One-line JSON rendering of a RunStats (used by qes_sim --json and the
/// qesd runtime's final report).
[[nodiscard]] std::string stats_to_json(const RunStats& s);

}  // namespace qes
