#include "sim/experiment.hpp"

#include <cmath>
#include <cstdlib>
#include <string>

#include "core/assert.hpp"

namespace qes {

RunStats run_once(const EngineConfig& engine_cfg, const WorkloadConfig& wl,
                  const PolicyFactory& make_policy) {
  EngineConfig cfg = engine_cfg;
  cfg.record_execution = false;  // stats only; replay callers use Engine
  Engine engine(cfg, generate_websearch_jobs(wl), make_policy());
  return engine.run().stats;
}

RunStats average_stats(std::span<const RunStats> runs) {
  QES_ASSERT(!runs.empty());
  RunStats avg;
  const double n = static_cast<double>(runs.size());
  for (const RunStats& r : runs) {
    avg.total_quality += r.total_quality / n;
    avg.max_quality += r.max_quality / n;
    avg.normalized_quality += r.normalized_quality / n;
    avg.dynamic_energy += r.dynamic_energy / n;
    avg.static_energy += r.static_energy / n;
    avg.peak_power = std::max(avg.peak_power, r.peak_power);
    avg.end_time = std::max(avg.end_time, r.end_time);
    avg.mean_latency += r.mean_latency / n;
    avg.p50_latency += r.p50_latency / n;
    avg.p95_latency += r.p95_latency / n;
    avg.p99_latency += r.p99_latency / n;
    avg.jobs_total += r.jobs_total;
    avg.jobs_satisfied += r.jobs_satisfied;
    avg.jobs_partial += r.jobs_partial;
    avg.jobs_zero += r.jobs_zero;
    avg.jobs_discarded_rigid += r.jobs_discarded_rigid;
    avg.replans += r.replans;
  }
  return avg;
}

RunStats run_averaged(const EngineConfig& engine_cfg, WorkloadConfig wl,
                      const PolicyFactory& make_policy, int seeds,
                      std::uint64_t base_seed) {
  QES_ASSERT(seeds >= 1);
  std::vector<RunStats> runs;
  runs.reserve(static_cast<std::size_t>(seeds));
  for (int s = 0; s < seeds; ++s) {
    wl.seed = base_seed + static_cast<std::uint64_t>(s);
    runs.push_back(run_once(engine_cfg, wl, make_policy));
  }
  return average_stats(runs);
}

double ReplicatedStats::quality_ci95() const {
  return replicates > 1
             ? 1.96 * quality_stddev / std::sqrt(static_cast<double>(replicates))
             : 0.0;
}

Joules ReplicatedStats::energy_ci95() const {
  return replicates > 1
             ? 1.96 * energy_stddev / std::sqrt(static_cast<double>(replicates))
             : 0.0;
}

ReplicatedStats run_replicated(const EngineConfig& engine_cfg,
                               WorkloadConfig wl,
                               const PolicyFactory& make_policy, int seeds,
                               std::uint64_t base_seed) {
  QES_ASSERT(seeds >= 1);
  std::vector<RunStats> runs;
  runs.reserve(static_cast<std::size_t>(seeds));
  for (int s = 0; s < seeds; ++s) {
    wl.seed = base_seed + static_cast<std::uint64_t>(s);
    runs.push_back(run_once(engine_cfg, wl, make_policy));
  }
  ReplicatedStats out;
  out.mean = average_stats(runs);
  out.replicates = seeds;
  if (seeds > 1) {
    double qs = 0.0, es = 0.0;
    for (const RunStats& r : runs) {
      const double dq = r.normalized_quality - out.mean.normalized_quality;
      const double de = r.dynamic_energy - out.mean.dynamic_energy;
      qs += dq * dq;
      es += de * de;
    }
    out.quality_stddev = std::sqrt(qs / (seeds - 1));
    out.energy_stddev = std::sqrt(es / (seeds - 1));
  }
  return out;
}

std::vector<SweepPoint> sweep_rates(const EngineConfig& engine_cfg,
                                    WorkloadConfig wl,
                                    std::span<const double> rates,
                                    const PolicyFactory& make_policy,
                                    int seeds) {
  std::vector<SweepPoint> out;
  out.reserve(rates.size());
  for (double rate : rates) {
    wl.arrival_rate = rate;
    out.push_back({rate, run_averaged(engine_cfg, wl, make_policy, seeds)});
  }
  return out;
}

double throughput_at_quality(std::span<const SweepPoint> sweep,
                             double target_quality) {
  QES_ASSERT(!sweep.empty());
  double best = 0.0;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const double q = sweep[i].stats.normalized_quality;
    if (q >= target_quality) {
      best = sweep[i].arrival_rate;
      // Interpolate into the next segment if quality crosses the target.
      if (i + 1 < sweep.size()) {
        const double q2 = sweep[i + 1].stats.normalized_quality;
        if (q2 < target_quality && q > q2) {
          const double frac = (q - target_quality) / (q - q2);
          best = sweep[i].arrival_rate +
                 frac * (sweep[i + 1].arrival_rate - sweep[i].arrival_rate);
        }
      }
    }
  }
  return best;
}

double env_sim_seconds(double fallback) {
  if (const char* v = std::getenv("QES_SIM_SECONDS")) {
    const double s = std::atof(v);
    if (s > 0.0) return s;
  }
  return fallback;
}

int env_seeds(int fallback) {
  if (const char* v = std::getenv("QES_SEEDS")) {
    const int s = std::atoi(v);
    if (s > 0) return s;
  }
  return fallback;
}

}  // namespace qes
