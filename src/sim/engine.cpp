#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/run_accumulator.hpp"
#include "obs/trace.hpp"

namespace qes {

Engine::Engine(EngineConfig config, std::vector<Job> jobs,
               std::unique_ptr<SchedulingPolicy> policy)
    : cfg_(std::move(config)), policy_(std::move(policy)) {
  QES_ASSERT(cfg_.cores > 0 && cfg_.power_budget > 0.0);
  QES_ASSERT_MSG(cfg_.per_core_max_speed.empty() ||
                     cfg_.per_core_max_speed.size() ==
                         static_cast<std::size_t>(cfg_.cores),
                 "per_core_max_speed must have one entry per core");
  for (Speed cap : cfg_.per_core_max_speed) QES_ASSERT(cap > 0.0);
  QES_ASSERT(policy_ != nullptr);
  for (std::size_t k = 0; k < cfg_.budget_steps.size(); ++k) {
    QES_ASSERT_MSG(cfg_.budget_steps[k].budget > 0.0,
                   "budget steps must keep H positive");
    QES_ASSERT_MSG(cfg_.budget_steps[k].at >= 0.0 &&
                       (k == 0 || cfg_.budget_steps[k].at >=
                                      cfg_.budget_steps[k - 1].at),
                   "budget steps must be sorted by time");
  }
  sort_by_release(jobs);
  QES_ASSERT_MSG(deadlines_agreeable(jobs),
                 "engine requires agreeable deadlines");
  jobs_.reserve(jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    QES_ASSERT_MSG(jobs[k].id == k + 1,
                   "jobs must carry dense ids 1..n in arrival order");
    QES_ASSERT(jobs[k].demand > 0.0 && jobs[k].deadline > jobs[k].release);
    jobs_.push_back(JobState{.job = jobs[k]});
  }
  cores_.resize(static_cast<std::size_t>(cfg_.cores));
  live_.reserve(cores_.size());
  dirty_cores_.reserve(cores_.size());
}

JobState& Engine::state(JobId id) {
  QES_ASSERT(id >= 1 && id <= jobs_.size());
  return jobs_[id - 1];
}

const JobState& Engine::job(JobId id) const {
  QES_ASSERT(id >= 1 && id <= jobs_.size());
  return jobs_[id - 1];
}

std::span<const JobId> Engine::assigned(int core) const {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  return cores_[static_cast<std::size_t>(core)].queue;
}

bool Engine::core_idle(int core) const {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  const CoreRuntime& c = cores_[static_cast<std::size_t>(core)];
  return c.next_seg >= c.plan.size();
}

void Engine::mark_dirty(int core) {
  CoreRuntime& c = cores_[static_cast<std::size_t>(core)];
  if (!c.dirty) {
    c.dirty = true;
    dirty_cores_.push_back(core);
  }
}

void Engine::enter_live(int core) {
  CoreRuntime& c = cores_[static_cast<std::size_t>(core)];
  if (c.in_live) return;
  c.in_live = true;
  live_.insert(std::lower_bound(live_.begin(), live_.end(), core), core);
}

void Engine::assign_to_core(JobId id, int core) {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  JobState& st = state(id);
  QES_ASSERT_MSG(st.phase == JobState::Phase::Waiting,
                 "only waiting jobs can be assigned");
  auto it = std::lower_bound(waiting_.begin(), waiting_.end(), id);
  QES_ASSERT(it != waiting_.end() && *it == id);
  waiting_.erase(it);
  st.phase = JobState::Phase::Assigned;
  st.core = core;
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Assign,
                      .t = now_,
                      .job = id,
                      .core = core});
  }
  // Keep the queue in id (== arrival == deadline) order; rebalanced jobs
  // may slot in ahead of later arrivals.
  auto& q = cores_[static_cast<std::size_t>(core)].queue;
  q.insert(std::lower_bound(q.begin(), q.end(), id), id);
}

void Engine::discard_job(JobId id) { finalize(id); }

void Engine::unassign_from_core(JobId id) {
  JobState& st = state(id);
  QES_ASSERT_MSG(st.phase == JobState::Phase::Assigned,
                 "only assigned jobs can be unassigned");
  QES_ASSERT_MSG(st.processed <= kTimeEps,
                 "started jobs never migrate (non-migratory model)");
  const int core = st.core;
  CoreRuntime& c = cores_[static_cast<std::size_t>(core)];
  auto it = std::lower_bound(c.queue.begin(), c.queue.end(), id);
  QES_ASSERT(it != c.queue.end() && *it == id);
  c.queue.erase(it);
  c.plan.clear();
  c.next_seg = 0;
  c.power_seg = SIZE_MAX;
  mark_dirty(core);
  st.phase = JobState::Phase::Waiting;
  st.core = -1;
  // Waiting stays in arrival (== id) order.
  auto pos = std::lower_bound(waiting_.begin(), waiting_.end(), id);
  waiting_.insert(pos, id);
}

void Engine::set_core_plan(int core, const Schedule& plan) {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  CoreRuntime& c = cores_[static_cast<std::size_t>(core)];
  plan.check_well_formed();
  for (const Segment& s : plan.segments()) {
    QES_ASSERT_MSG(s.t0 >= now_ - kPlanSlackEps,
                   "plan must start at or after now");
    const JobState& st = job(s.job);
    QES_ASSERT_MSG(st.phase == JobState::Phase::Assigned && st.core == core,
                   "plan segment must reference a live job on this core");
    QES_ASSERT_MSG(s.t1 <= st.job.deadline + kPlanSlackEps,
                   "plan segment must end by the job's deadline");
    QES_ASSERT_MSG(s.speed <= cfg_.core_speed_cap(core) + 1e-6,
                   "plan speed exceeds the core's hardware cap");
  }
  c.plan = plan;  // copy-assign: the slot's capacity is reused
  c.next_seg = 0;
  c.power_seg = SIZE_MAX;
  mark_dirty(core);
  if (!c.plan.empty()) enter_live(core);
}

void Engine::set_core_idle_power(int core, Watts watts) {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  QES_ASSERT(watts >= 0.0);
  cores_[static_cast<std::size_t>(core)].idle_power = watts;
  if (watts > 0.0) enter_live(core);
}

void Engine::finalize(JobId id, bool force_zero_quality) {
  JobState& st = state(id);
  QES_ASSERT(st.phase != JobState::Phase::Finalized);
  if (st.phase == JobState::Phase::Waiting) {
    auto it = std::lower_bound(waiting_.begin(), waiting_.end(), id);
    if (it != waiting_.end() && *it == id) waiting_.erase(it);
  } else {
    auto& q = cores_[static_cast<std::size_t>(st.core)].queue;
    auto it = std::lower_bound(q.begin(), q.end(), id);
    QES_ASSERT(it != q.end() && *it == id);
    q.erase(it);
  }
  st.processed = std::min(st.processed, st.job.demand);
  st.satisfied =
      st.processed + kCompletionRelEps * std::max(1.0, st.job.demand) >=
      st.job.demand;
  if (force_zero_quality) {
    st.quality = 0.0;
  } else if (!st.job.partial_ok) {
    st.quality =
        st.satisfied ? st.job.weight * cfg_.quality(st.job.demand) : 0.0;
  } else {
    st.quality = st.job.weight * cfg_.quality(st.processed);
  }
  st.phase = JobState::Phase::Finalized;
  st.finalized_at = now_;
  ++finalized_count_;
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Finalize,
                      .t = now_,
                      .job = id,
                      .value = st.quality,
                      .satisfied = st.satisfied});
  }
}

void Engine::expire_due_jobs() {
  while (first_live_ < jobs_.size()) {
    JobState& st = jobs_[first_live_];
    if (st.phase == JobState::Phase::Finalized) {
      ++first_live_;
      continue;
    }
    if (first_live_ >= next_arrival_) break;  // not yet arrived
    if (st.job.deadline <= now_ + kTimeEps) {
      finalize(st.job.id);
      ++first_live_;
      continue;
    }
    break;
  }
}

void Engine::refresh_events() {
  if (next_arrival_ < jobs_.size() && pushed_arrival_ != next_arrival_) {
    pushed_arrival_ = next_arrival_;
    events_.push(jobs_[next_arrival_].job.release,
                 Ev{Ev::Kind::Arrival, 0, next_arrival_});
  }
  if (cfg_.quantum_ms > 0.0 && pushed_quantum_ != next_quantum_) {
    pushed_quantum_ = next_quantum_;
    events_.push(next_quantum_, Ev{Ev::Kind::Quantum, 0, 0});
  }
  if (first_live_ < next_arrival_ && pushed_deadline_ != first_live_) {
    pushed_deadline_ = first_live_;
    events_.push(jobs_[first_live_].job.deadline,
                 Ev{Ev::Kind::Deadline, 0, first_live_});
  }
  if (next_budget_step_ < cfg_.budget_steps.size() &&
      pushed_budget_ != next_budget_step_) {
    pushed_budget_ = next_budget_step_;
    events_.push(cfg_.budget_steps[next_budget_step_].at,
                 Ev{Ev::Kind::BudgetStep, 0, next_budget_step_});
  }
  for (int i : dirty_cores_) {
    CoreRuntime& c = cores_[static_cast<std::size_t>(i)];
    c.dirty = false;
    ++c.wake_gen;  // orphan any queued wake for the stale candidate
    if (c.next_seg < c.plan.size()) {
      events_.push(
          core_wake_candidate(c),
          Ev{Ev::Kind::CoreWake, static_cast<std::uint32_t>(i), c.wake_gen});
    }
  }
  dirty_cores_.clear();
}

void Engine::advance_to(Time target) {
  QES_ASSERT(target >= now_ - kTimeEps);
  while (true) {
    // Sub-step end: the earliest segment boundary across cores, capped at
    // the target. Power is constant within the sub-step. Cores outside
    // live_ have no pending segments and zero idle power, so skipping
    // them leaves both the boundary scan and the power sum (an exact
    // +0.0 per skipped core) unchanged.
    Time step_end = target;
    for (int i : live_) {
      const CoreRuntime& c = cores_[static_cast<std::size_t>(i)];
      if (c.next_seg >= c.plan.size()) continue;
      const Segment& s = c.plan[c.next_seg];
      step_end = std::min(step_end, s.t0 > now_ + kTimeEps ? s.t0 : s.t1);
    }

    if (step_end > now_ + kTimeEps) {
      const Time dt = step_end - now_;
      Watts total_power = 0.0;
      for (int idx : live_) {
        const std::size_t i = static_cast<std::size_t>(idx);
        CoreRuntime& c = cores_[i];
        const bool active = c.next_seg < c.plan.size() &&
                            c.plan[c.next_seg].t0 <= now_ + kTimeEps;
        if (active) {
          const Segment& s = c.plan[c.next_seg];
          if (c.power_seg != c.next_seg) {
            c.power_seg = c.next_seg;
            c.power_w = cfg_.power_model.dynamic_power(s.speed);
          }
          total_power += c.power_w;
          state(s.job).processed += s.speed * dt;
          if (cfg_.record_execution) {
            result_.executed[i].push({now_, step_end, s.job, s.speed});
          }
          if (cfg_.trace != nullptr) {
            cfg_.trace->push({.kind = obs::TraceEvent::Kind::Exec,
                              .t = now_,
                              .job = s.job,
                              .core = idx,
                              .t0 = now_,
                              .t1 = step_end,
                              .speed = s.speed});
          }
        } else {
          total_power += c.idle_power;
        }
      }
      QES_ASSERT_MSG(
          total_power <= cfg_.power_budget * (1.0 + 1e-6) + 1e-6,
          "instantaneous power exceeded the budget");
      dynamic_energy_ += joules(total_power, dt);
      peak_power_ = std::max(peak_power_, total_power);
      now_ = step_end;
    }

    // Process segment completions at now_, compacting spent cores out of
    // the live list in place (ascending order — i.e. the legacy power
    // summation order — is preserved).
    std::size_t w = 0;
    for (std::size_t r = 0; r < live_.size(); ++r) {
      const int idx = live_[r];
      CoreRuntime& c = cores_[static_cast<std::size_t>(idx)];
      bool moved = false;
      while (c.next_seg < c.plan.size() &&
             c.plan[c.next_seg].t1 <= now_ + kTimeEps) {
        const Segment done = c.plan[c.next_seg];
        ++c.next_seg;
        moved = true;
        JobState& st = state(done.job);
        if (st.phase == JobState::Phase::Finalized) continue;
        const bool complete =
            st.processed + kCompletionRelEps * std::max(1.0, st.job.demand) >=
            st.job.demand;
        bool more_planned = false;
        for (std::size_t k = c.next_seg; k < c.plan.size(); ++k) {
          if (c.plan[k].job == done.job) {
            more_planned = true;
            break;
          }
        }
        if (complete) {
          finalize(done.job);
        } else if (!more_planned && !cfg_.resume_passed_jobs) {
          // The core moves past a partially executed job: discarded due
          // to partial evaluation (paper §IV-B).
          finalize(done.job);
        }
      }
      if (moved) mark_dirty(idx);
      if (c.next_seg < c.plan.size() || c.idle_power > 0.0) {
        live_[w++] = idx;
      } else {
        c.in_live = false;
      }
    }
    live_.resize(w);

    if (now_ >= target - kTimeEps) break;
  }
  now_ = std::max(now_, target);
}

RunResult Engine::run() {
  const std::size_t n = jobs_.size();
  if (cfg_.record_execution) {
    result_.executed.resize(cores_.size());
  }
  if (n == 0) return std::move(result_);

  next_quantum_ = cfg_.quantum_ms > 0.0
                      ? cfg_.quantum_ms
                      : std::numeric_limits<double>::infinity();
  const Time final_deadline = jobs_.back().job.deadline;

  refresh_events();
  while (!all_finalized()) {
    QES_ASSERT_MSG(!events_.empty(), "event loop stalled with live jobs");
    const auto item = events_.pop();
    const Ev ev = item.value;
    ++events_processed_;

    // Lazy invalidation: run an iteration only if the entry still names
    // its source's CURRENT candidate time — then and only then would the
    // legacy scan-all-sources loop have stopped here, so energy
    // integration splits at exactly the same instants.
    bool valid = false;
    switch (ev.kind) {
      case Ev::Kind::Arrival:
        valid = ev.idx == next_arrival_;
        break;
      case Ev::Kind::Quantum:
        valid = cfg_.quantum_ms > 0.0 && item.t == next_quantum_;
        break;
      case Ev::Kind::Deadline:
        // Deliberately no finalized check: the legacy loop also stops at
        // the stale deadline of a policy-discarded job still at
        // first_live_ (expiry advances past it only afterwards).
        valid = ev.idx == first_live_ && first_live_ < next_arrival_;
        break;
      case Ev::Kind::BudgetStep:
        valid = ev.idx == next_budget_step_;
        break;
      case Ev::Kind::CoreWake: {
        CoreRuntime& c = cores_[static_cast<std::size_t>(ev.core)];
        if (ev.idx != c.wake_gen) break;         // superseded by a re-arm
        if (c.next_seg >= c.plan.size()) break;  // plan exhausted
        const Time cand = core_wake_candidate(c);
        if (cand != item.t) {
          // The boundary slid from segment start to segment end (now_
          // crossed t0 without touching this core): re-arm at the
          // current candidate without running an iteration.
          ++c.wake_gen;
          events_.push(cand, Ev{Ev::Kind::CoreWake, ev.core, c.wake_gen});
          break;
        }
        valid = true;
        mark_dirty(static_cast<int>(ev.core));  // re-arm after this body
        break;
      }
    }
    if (!valid) continue;

    advance_to(std::max(item.t, now_));

    // Arrivals at the current time.
    while (next_arrival_ < n &&
           jobs_[next_arrival_].job.release <= now_ + kTimeEps) {
      waiting_.push_back(jobs_[next_arrival_].job.id);
      if (cfg_.trace != nullptr) {
        cfg_.trace->push({.kind = obs::TraceEvent::Kind::Release,
                          .t = now_,
                          .job = jobs_[next_arrival_].job.id});
      }
      ++next_arrival_;
    }

    expire_due_jobs();

    bool replan = false;

    // Scheduled budget changes take effect before the triggers so the
    // forced replan plans against the new H.
    while (next_budget_step_ < cfg_.budget_steps.size() &&
           cfg_.budget_steps[next_budget_step_].at <= now_ + kTimeEps) {
      cfg_.power_budget = cfg_.budget_steps[next_budget_step_].budget;
      ++next_budget_step_;
      replan = true;
    }

    // Grouped-scheduling triggers (§IV-E).
    if (cfg_.quantum_ms > 0.0 && now_ >= next_quantum_ - kTimeEps) {
      while (next_quantum_ <= now_ + kTimeEps) next_quantum_ += cfg_.quantum_ms;
      replan = true;
    }
    if (cfg_.counter_trigger > 0 &&
        waiting_.size() >= static_cast<std::size_t>(cfg_.counter_trigger)) {
      replan = true;
    }
    if (cfg_.idle_trigger && !waiting_.empty()) {
      for (int i = 0; i < cfg_.cores; ++i) {
        if (core_idle(i)) {
          replan = true;
          break;
        }
      }
    }

    if (replan) {
      ++replan_count_;
      if (cfg_.record_replan_times) result_.replan_times.push_back(now_);
      if (cfg_.trace != nullptr) {
        cfg_.trace->push({.kind = obs::TraceEvent::Kind::Replan,
                          .t = now_,
                          .value = static_cast<double>(waiting_.size())});
      }
      policy_->replan(*this);
    }

    refresh_events();
  }

  // Keep integrating idle power to the last deadline: the paper's energy
  // runs from r_1 to d_n (matters for No-DVFS, whose cores never sleep).
  advance_to(final_deadline);

  // End-of-run aggregation, shared with the runtime (src/obs/). Jobs are
  // fed in id order so registry-mirrored histogram totals reconcile
  // exactly with the RunStats aggregates.
  obs::RunAccumulator acc(cfg_.registry, "qes_sim");
  for (const JobState& st : jobs_) {
    acc.on_job(st.quality, st.job.weight * cfg_.quality(st.job.demand),
               st.satisfied, st.processed > kTimeEps,
               !st.job.partial_ok && !st.satisfied,
               st.finalized_at - st.job.release);
  }
  result_.stats = acc.finish(
      dynamic_energy_,
      cfg_.cores * cfg_.power_model.b * final_deadline / 1000.0,
      peak_power_, final_deadline, replan_count_);
  result_.jobs = std::move(jobs_);
  return std::move(result_);
}

}  // namespace qes
