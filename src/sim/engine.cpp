#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/run_accumulator.hpp"
#include "obs/trace.hpp"

namespace qes {

Engine::Engine(EngineConfig config, std::vector<Job> jobs,
               std::unique_ptr<SchedulingPolicy> policy)
    : cfg_(std::move(config)), policy_(std::move(policy)) {
  QES_ASSERT(cfg_.cores > 0 && cfg_.power_budget > 0.0);
  QES_ASSERT_MSG(cfg_.per_core_max_speed.empty() ||
                     cfg_.per_core_max_speed.size() ==
                         static_cast<std::size_t>(cfg_.cores),
                 "per_core_max_speed must have one entry per core");
  for (Speed cap : cfg_.per_core_max_speed) QES_ASSERT(cap > 0.0);
  QES_ASSERT(policy_ != nullptr);
  sort_by_release(jobs);
  QES_ASSERT_MSG(deadlines_agreeable(jobs),
                 "engine requires agreeable deadlines");
  jobs_.reserve(jobs.size());
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    QES_ASSERT_MSG(jobs[k].id == k + 1,
                   "jobs must carry dense ids 1..n in arrival order");
    QES_ASSERT(jobs[k].demand > 0.0 && jobs[k].deadline > jobs[k].release);
    jobs_.push_back(JobState{.job = jobs[k]});
  }
  cores_.resize(static_cast<std::size_t>(cfg_.cores));
}

JobState& Engine::state(JobId id) {
  QES_ASSERT(id >= 1 && id <= jobs_.size());
  return jobs_[id - 1];
}

const JobState& Engine::job(JobId id) const {
  QES_ASSERT(id >= 1 && id <= jobs_.size());
  return jobs_[id - 1];
}

const std::deque<JobId>& Engine::assigned(int core) const {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  return cores_[static_cast<std::size_t>(core)].queue;
}

bool Engine::core_idle(int core) const {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  const CoreRuntime& c = cores_[static_cast<std::size_t>(core)];
  return c.next_seg >= c.plan.size();
}

void Engine::assign_to_core(JobId id, int core) {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  JobState& st = state(id);
  QES_ASSERT_MSG(st.phase == JobState::Phase::Waiting,
                 "only waiting jobs can be assigned");
  auto it = std::find(waiting_.begin(), waiting_.end(), id);
  QES_ASSERT(it != waiting_.end());
  waiting_.erase(it);
  st.phase = JobState::Phase::Assigned;
  st.core = core;
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Assign,
                      .t = now_,
                      .job = id,
                      .core = core});
  }
  // Keep the queue in id (== arrival == deadline) order; rebalanced jobs
  // may slot in ahead of later arrivals.
  auto& q = cores_[static_cast<std::size_t>(core)].queue;
  q.insert(std::lower_bound(q.begin(), q.end(), id), id);
}

void Engine::discard_job(JobId id) { finalize(id); }

void Engine::unassign_from_core(JobId id) {
  JobState& st = state(id);
  QES_ASSERT_MSG(st.phase == JobState::Phase::Assigned,
                 "only assigned jobs can be unassigned");
  QES_ASSERT_MSG(st.processed <= kTimeEps,
                 "started jobs never migrate (non-migratory model)");
  CoreRuntime& c = cores_[static_cast<std::size_t>(st.core)];
  auto it = std::find(c.queue.begin(), c.queue.end(), id);
  QES_ASSERT(it != c.queue.end());
  c.queue.erase(it);
  c.plan = Schedule{};
  c.next_seg = 0;
  st.phase = JobState::Phase::Waiting;
  st.core = -1;
  // Waiting stays in arrival (== id) order.
  auto pos = std::lower_bound(waiting_.begin(), waiting_.end(), id);
  waiting_.insert(pos, id);
}

void Engine::set_core_plan(int core, Schedule plan) {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  CoreRuntime& c = cores_[static_cast<std::size_t>(core)];
  plan.check_well_formed();
  for (const Segment& s : plan.segments()) {
    QES_ASSERT_MSG(s.t0 >= now_ - kPlanSlackEps,
                   "plan must start at or after now");
    const JobState& st = job(s.job);
    QES_ASSERT_MSG(st.phase == JobState::Phase::Assigned && st.core == core,
                   "plan segment must reference a live job on this core");
    QES_ASSERT_MSG(s.t1 <= st.job.deadline + kPlanSlackEps,
                   "plan segment must end by the job's deadline");
    QES_ASSERT_MSG(s.speed <= cfg_.core_speed_cap(core) + 1e-6,
                   "plan speed exceeds the core's hardware cap");
  }
  c.plan = std::move(plan);
  c.next_seg = 0;
}

void Engine::set_core_idle_power(int core, Watts watts) {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  QES_ASSERT(watts >= 0.0);
  cores_[static_cast<std::size_t>(core)].idle_power = watts;
}

void Engine::finalize(JobId id, bool force_zero_quality) {
  JobState& st = state(id);
  QES_ASSERT(st.phase != JobState::Phase::Finalized);
  if (st.phase == JobState::Phase::Waiting) {
    auto it = std::find(waiting_.begin(), waiting_.end(), id);
    if (it != waiting_.end()) waiting_.erase(it);
  } else {
    auto& q = cores_[static_cast<std::size_t>(st.core)].queue;
    auto it = std::find(q.begin(), q.end(), id);
    QES_ASSERT(it != q.end());
    q.erase(it);
  }
  st.processed = std::min(st.processed, st.job.demand);
  st.satisfied =
      st.processed + kCompletionRelEps * std::max(1.0, st.job.demand) >=
      st.job.demand;
  if (force_zero_quality) {
    st.quality = 0.0;
  } else if (!st.job.partial_ok) {
    st.quality =
        st.satisfied ? st.job.weight * cfg_.quality(st.job.demand) : 0.0;
  } else {
    st.quality = st.job.weight * cfg_.quality(st.processed);
  }
  st.phase = JobState::Phase::Finalized;
  st.finalized_at = now_;
  ++finalized_count_;
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Finalize,
                      .t = now_,
                      .job = id,
                      .value = st.quality,
                      .satisfied = st.satisfied});
  }
}

void Engine::expire_due_jobs() {
  while (first_live_ < jobs_.size()) {
    JobState& st = jobs_[first_live_];
    if (st.phase == JobState::Phase::Finalized) {
      ++first_live_;
      continue;
    }
    if (first_live_ >= next_arrival_) break;  // not yet arrived
    if (st.job.deadline <= now_ + kTimeEps) {
      finalize(st.job.id);
      ++first_live_;
      continue;
    }
    break;
  }
}

void Engine::advance_to(Time target) {
  QES_ASSERT(target >= now_ - kTimeEps);
  while (true) {
    // Sub-step end: the earliest segment boundary across cores, capped at
    // the target. Power is constant within the sub-step.
    Time step_end = target;
    for (const CoreRuntime& c : cores_) {
      if (c.next_seg >= c.plan.size()) continue;
      const Segment& s = c.plan[c.next_seg];
      step_end = std::min(step_end, s.t0 > now_ + kTimeEps ? s.t0 : s.t1);
    }

    if (step_end > now_ + kTimeEps) {
      const Time dt = step_end - now_;
      Watts total_power = 0.0;
      for (std::size_t i = 0; i < cores_.size(); ++i) {
        CoreRuntime& c = cores_[i];
        const bool active = c.next_seg < c.plan.size() &&
                            c.plan[c.next_seg].t0 <= now_ + kTimeEps;
        if (active) {
          const Segment& s = c.plan[c.next_seg];
          total_power += cfg_.power_model.dynamic_power(s.speed);
          state(s.job).processed += s.speed * dt;
          if (cfg_.record_execution) {
            result_.executed[i].push({now_, step_end, s.job, s.speed});
          }
          if (cfg_.trace != nullptr) {
            cfg_.trace->push({.kind = obs::TraceEvent::Kind::Exec,
                              .t = now_,
                              .job = s.job,
                              .core = static_cast<int>(i),
                              .t0 = now_,
                              .t1 = step_end,
                              .speed = s.speed});
          }
        } else {
          total_power += c.idle_power;
        }
      }
      QES_ASSERT_MSG(
          total_power <= cfg_.power_budget * (1.0 + 1e-6) + 1e-6,
          "instantaneous power exceeded the budget");
      dynamic_energy_ += joules(total_power, dt);
      peak_power_ = std::max(peak_power_, total_power);
      now_ = step_end;
    }

    // Process segment completions at now_.
    for (CoreRuntime& c : cores_) {
      while (c.next_seg < c.plan.size() &&
             c.plan[c.next_seg].t1 <= now_ + kTimeEps) {
        const Segment done = c.plan[c.next_seg];
        ++c.next_seg;
        JobState& st = state(done.job);
        if (st.phase == JobState::Phase::Finalized) continue;
        const bool complete =
            st.processed + kCompletionRelEps * std::max(1.0, st.job.demand) >=
            st.job.demand;
        bool more_planned = false;
        for (std::size_t k = c.next_seg; k < c.plan.size(); ++k) {
          if (c.plan[k].job == done.job) {
            more_planned = true;
            break;
          }
        }
        if (complete) {
          finalize(done.job);
        } else if (!more_planned && !cfg_.resume_passed_jobs) {
          // The core moves past a partially executed job: discarded due
          // to partial evaluation (paper §IV-B).
          finalize(done.job);
        }
      }
    }

    if (now_ >= target - kTimeEps) break;
  }
  now_ = std::max(now_, target);
}

RunResult Engine::run() {
  const std::size_t n = jobs_.size();
  if (cfg_.record_execution) {
    result_.executed.resize(cores_.size());
  }
  if (n == 0) return std::move(result_);

  next_quantum_ = cfg_.quantum_ms > 0.0
                      ? cfg_.quantum_ms
                      : std::numeric_limits<double>::infinity();
  const Time final_deadline = jobs_.back().job.deadline;

  while (!all_finalized()) {
    // Next event: arrival, quantum firing, earliest live deadline, or the
    // next segment boundary on any core.
    Time t = std::numeric_limits<double>::infinity();
    if (next_arrival_ < n) t = std::min(t, jobs_[next_arrival_].job.release);
    if (cfg_.quantum_ms > 0.0) t = std::min(t, next_quantum_);
    if (first_live_ < n && first_live_ < next_arrival_) {
      t = std::min(t, jobs_[first_live_].job.deadline);
    }
    for (const CoreRuntime& c : cores_) {
      if (c.next_seg >= c.plan.size()) continue;
      const Segment& s = c.plan[c.next_seg];
      t = std::min(t, s.t0 > now_ + kTimeEps ? s.t0 : s.t1);
    }
    QES_ASSERT_MSG(std::isfinite(t), "event loop stalled with live jobs");

    advance_to(std::max(t, now_));

    // Arrivals at the current time.
    while (next_arrival_ < n &&
           jobs_[next_arrival_].job.release <= now_ + kTimeEps) {
      waiting_.push_back(jobs_[next_arrival_].job.id);
      if (cfg_.trace != nullptr) {
        cfg_.trace->push({.kind = obs::TraceEvent::Kind::Release,
                          .t = now_,
                          .job = jobs_[next_arrival_].job.id});
      }
      ++next_arrival_;
    }

    expire_due_jobs();

    // Grouped-scheduling triggers (§IV-E).
    bool replan = false;
    if (cfg_.quantum_ms > 0.0 && now_ >= next_quantum_ - kTimeEps) {
      while (next_quantum_ <= now_ + kTimeEps) next_quantum_ += cfg_.quantum_ms;
      replan = true;
    }
    if (cfg_.counter_trigger > 0 &&
        waiting_.size() >= static_cast<std::size_t>(cfg_.counter_trigger)) {
      replan = true;
    }
    if (cfg_.idle_trigger && !waiting_.empty()) {
      for (int i = 0; i < cfg_.cores; ++i) {
        if (core_idle(i)) {
          replan = true;
          break;
        }
      }
    }

    if (replan) {
      result_.replan_times.push_back(now_);
      if (cfg_.trace != nullptr) {
        cfg_.trace->push({.kind = obs::TraceEvent::Kind::Replan,
                          .t = now_,
                          .value = static_cast<double>(waiting_.size())});
      }
      policy_->replan(*this);
    }
  }

  // Keep integrating idle power to the last deadline: the paper's energy
  // runs from r_1 to d_n (matters for No-DVFS, whose cores never sleep).
  advance_to(final_deadline);

  // End-of-run aggregation, shared with the runtime (src/obs/). Jobs are
  // fed in id order so registry-mirrored histogram totals reconcile
  // exactly with the RunStats aggregates.
  obs::RunAccumulator acc(cfg_.registry, "qes_sim");
  for (const JobState& st : jobs_) {
    acc.on_job(st.quality, st.job.weight * cfg_.quality(st.job.demand),
               st.satisfied, st.processed > kTimeEps,
               !st.job.partial_ok && !st.satisfied,
               st.finalized_at - st.job.release);
  }
  result_.stats = acc.finish(
      dynamic_energy_,
      cfg_.cores * cfg_.power_model.b * final_deadline / 1000.0,
      peak_power_, final_deadline, result_.replan_times.size());
  result_.jobs = jobs_;
  return std::move(result_);
}

}  // namespace qes
