#include "obs/phase_profiler.hpp"

#include "obs/registry.hpp"

namespace qes::obs {

PhaseProfiler::PhaseProfiler(
    Registry* registry, std::string metric, std::string help,
    std::vector<std::pair<std::string, std::string>> base_labels)
    : registry_(registry),
      metric_(std::move(metric)),
      help_(std::move(help)),
      base_labels_(std::move(base_labels)) {}

Histogram* PhaseProfiler::phase_histogram(const std::string& name) {
  if (registry_ == nullptr) return nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(name);
    if (it != cache_.end()) return it->second;
  }
  // First use of this phase name: resolve through the registry (which
  // hands back a stable reference) outside our own lock, then publish.
  Labels labels = base_labels_;
  labels.emplace_back("phase", name);
  Histogram& hist =
      registry_->histogram(metric_, help_, std::move(labels),
                           phase_ms_buckets());
  std::lock_guard<std::mutex> lock(mu_);
  cache_.emplace(name, &hist);
  return &hist;
}

}  // namespace qes::obs
