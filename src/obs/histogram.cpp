#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "core/assert.hpp"

namespace qes::obs {

Histogram::Histogram(double lo, double growth, std::size_t buckets) {
  QES_ASSERT(lo > 0.0 && growth > 1.0 && buckets > 0);
  upper_bounds_.reserve(buckets);
  double bound = lo;
  for (std::size_t i = 0; i < buckets; ++i) {
    upper_bounds_.push_back(bound);
    bound *= growth;
  }
  counts_.assign(buckets + 1, 0);
}

Histogram::Histogram(Histogram&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  upper_bounds_ = std::move(other.upper_bounds_);
  counts_ = std::move(other.counts_);
  count_ = other.count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
}

Histogram Histogram::latency_ms() { return Histogram(1.0, 1.5, 24); }

Histogram Histogram::quality() { return Histogram(0.01, 1.4, 20); }

void Histogram::record(double value) {
  const auto it = std::lower_bound(upper_bounds_.begin(), upper_bounds_.end(),
                                   value);
  const std::size_t idx =
      static_cast<std::size_t>(it - upper_bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[idx];
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.upper_bounds = upper_bounds_;
  std::lock_guard<std::mutex> lock(mu_);
  s.counts = counts_;
  s.count = count_;
  s.sum = sum_;
  s.min = min_;
  s.max = max_;
  return s;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double HistogramSnapshot::quantile(double q) const {
  QES_ASSERT(q >= 0.0 && q <= 1.0);
  if (count == 0) return 0.0;
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    // The rank-th observation lies in bucket i: interpolate on a log
    // scale between the bucket's bounds (the overflow bucket and bucket
    // 0 fall back to the observed extremes on their open side).
    const double hi = i < upper_bounds.size() ? upper_bounds[i] : max;
    const double lo = i > 0 ? upper_bounds[i - 1] : std::max(min, 1e-12);
    const double frac = static_cast<double>(rank - seen) /
                        static_cast<double>(counts[i]);
    double v;
    if (hi <= lo) {
      v = hi;
    } else {
      v = lo * std::pow(hi / lo, frac);
    }
    return std::clamp(v, min, max);
  }
  return max;
}

}  // namespace qes::obs
