#include "obs/run_accumulator.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace qes::obs {

RunAccumulator::RunAccumulator(Registry* registry, std::string prefix)
    : registry_(registry), prefix_(std::move(prefix)) {
  if (registry_ == nullptr) return;
  // Register every instrument up front so the exposition carries the full
  // schema (and a deterministic series order) even for outcomes that never
  // occur in a given run — e.g. the latency histogram when no job is
  // satisfied. The returned references are kept (registry entries are
  // never removed) so on_job() skips the name+label lookup on its
  // once-per-finalized-job hot path.
  const char* outcomes[] = {"satisfied", "partial", "zero"};
  for (int i = 0; i < 3; ++i) {
    outcome_jobs_[i] =
        &registry_->counter(prefix_ + "_jobs_total",
                            "finalized jobs by outcome",
                            {{"outcome", outcomes[i]}});
  }
  discarded_rigid_ = &registry_->counter(
      prefix_ + "_jobs_discarded_rigid_total",
      "rigid (non-partial) jobs that missed their demand");
  quality_total_ = &registry_->counter(prefix_ + "_quality_total",
                                       "sum of achieved job quality");
  quality_max_total_ = &registry_->counter(prefix_ + "_quality_max_total",
                                           "sum of attainable job quality");
  job_quality_ =
      &registry_->histogram(prefix_ + "_job_quality",
                            "per-job achieved quality", {},
                            Histogram::quality());
  job_latency_ms_ =
      &registry_->histogram(prefix_ + "_job_latency_ms",
                            "response time of satisfied jobs (ms)", {},
                            Histogram::latency_ms());
}

void RunAccumulator::on_job(double quality, double max_quality,
                            bool satisfied, bool got_volume,
                            bool rigid_failed, Time latency_ms) {
  ++stats_.jobs_total;
  stats_.total_quality += quality;
  stats_.max_quality += max_quality;
  int outcome;
  if (satisfied) {
    ++stats_.jobs_satisfied;
    outcome = 0;
    latency_sum_ += latency_ms;
    latencies_.push_back(latency_ms);
  } else if (got_volume) {
    ++stats_.jobs_partial;
    outcome = 1;
  } else {
    ++stats_.jobs_zero;
    outcome = 2;
  }
  if (rigid_failed) ++stats_.jobs_discarded_rigid;

  if (registry_ == nullptr) return;
  outcome_jobs_[outcome]->inc();
  if (rigid_failed) discarded_rigid_->inc();
  quality_total_->add(quality);
  quality_max_total_->add(max_quality);
  job_quality_->record(quality);
  if (satisfied) job_latency_ms_->record(latency_ms);
}

RunStats RunAccumulator::finish(Joules dynamic_energy, Joules static_energy,
                                Watts peak_power, Time end_time,
                                std::size_t replans) {
  stats_.normalized_quality = stats_.max_quality > 0.0
                                  ? stats_.total_quality / stats_.max_quality
                                  : 0.0;
  if (!latencies_.empty()) {
    std::sort(latencies_.begin(), latencies_.end());
    stats_.mean_latency =
        latency_sum_ / static_cast<double>(latencies_.size());
    // Nearest-rank percentiles, matching the engine's historical formula.
    auto pct = [&](double p) {
      const std::size_t idx = std::min(
          latencies_.size() - 1,
          static_cast<std::size_t>(p *
                                   static_cast<double>(latencies_.size())));
      return latencies_[idx];
    };
    stats_.p50_latency = pct(0.50);
    stats_.p95_latency = pct(0.95);
    stats_.p99_latency = pct(0.99);
  }
  stats_.dynamic_energy = dynamic_energy;
  stats_.static_energy = static_energy;
  stats_.peak_power = peak_power;
  stats_.end_time = end_time;
  stats_.replans = replans;

  if (registry_ != nullptr) {
    registry_
        ->gauge(prefix_ + "_dynamic_energy_joules",
                "integrated dynamic energy over the run")
        .set(dynamic_energy);
    registry_
        ->gauge(prefix_ + "_static_energy_joules",
                "static energy over the run")
        .set(static_energy);
    registry_
        ->gauge(prefix_ + "_peak_power_watts",
                "maximum instantaneous total power")
        .set(peak_power);
    registry_->gauge(prefix_ + "_end_time_ms", "end of the accounted window")
        .set(end_time);
    registry_
        ->counter(prefix_ + "_replans_total", "scheduler invocations")
        .add(static_cast<double>(replans));
  }
  return stats_;
}

}  // namespace qes::obs
