// RunAccumulator: the single implementation of end-of-run statistics,
// shared by sim::Engine and runtime::RuntimeCore.
//
// Both stacks used to aggregate RunStats with private copies of the same
// ~40-line loop; conformance then depended on the two copies staying
// textually identical. The accumulator centralizes the arithmetic: the
// caller feeds one on_job() per finalized job (in job-id order) plus the
// run-level energy/power/replan figures, and finish() produces the
// RunStats that stats_to_json renders — unchanged JSON shape.
//
// When a Registry is attached, every observation is mirrored into obs
// instruments as it is recorded — the same values, in the same order, so
// histogram count/sum totals reconcile exactly with the RunStats
// aggregates (see docs/USAGE.md "Metric reference"):
//
//   <prefix>_job_latency_ms   histogram  latency of satisfied jobs
//   <prefix>_job_quality      histogram  per-job quality w*f(p)
//   <prefix>_jobs_total       counter    {outcome=satisfied|partial|zero}
//   <prefix>_jobs_discarded_rigid_total  counter
//   <prefix>_quality_total / _quality_max_total        counters
//   <prefix>_dynamic_energy_joules / _static_energy_joules  gauges
//   <prefix>_peak_power_watts / _end_time_ms           gauges
//   <prefix>_replans_total                             counter
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "sim/metrics.hpp"

namespace qes::obs {

class Counter;
class Histogram;
class Registry;

class RunAccumulator {
 public:
  /// `registry` may be nullptr (stats only, no metrics mirroring);
  /// `prefix` namespaces the mirrored instruments ("qes_sim", "qesd").
  explicit RunAccumulator(Registry* registry = nullptr,
                          std::string prefix = "qes_sim");

  /// One finalized job. `latency_ms` is finalize-time minus release for
  /// satisfied jobs and ignored otherwise. `got_volume` distinguishes
  /// partial from zero outcomes; `rigid_failed` counts non-partial jobs
  /// that missed their full demand.
  void on_job(double quality, double max_quality, bool satisfied,
              bool got_volume, bool rigid_failed, Time latency_ms);

  /// Folds in the run-level figures and returns the final RunStats.
  [[nodiscard]] RunStats finish(Joules dynamic_energy, Joules static_energy,
                                Watts peak_power, Time end_time,
                                std::size_t replans);

 private:
  Registry* registry_;
  std::string prefix_;
  // Instrument pointers resolved once at construction (registry entries
  // are never removed, so they stay valid): on_job() runs once per
  // finalized job and must not pay a name+label lookup each time.
  Counter* outcome_jobs_[3] = {};  // satisfied, partial, zero
  Counter* discarded_rigid_ = nullptr;
  Counter* quality_total_ = nullptr;
  Counter* quality_max_total_ = nullptr;
  Histogram* job_quality_ = nullptr;
  Histogram* job_latency_ms_ = nullptr;
  RunStats stats_;
  Time latency_sum_ = 0.0;
  std::vector<Time> latencies_;
};

}  // namespace qes::obs
