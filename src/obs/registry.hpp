// Metrics registry: named counters, gauges, and log-bucketed histograms
// with text exposition in Prometheus format and JSON.
//
// Instruments are created once (typically at construction of the owning
// component) and then recorded into from hot paths. Creation takes the
// registry mutex; recording touches only the instrument itself — plain
// atomics for counters/gauges, a short per-histogram mutex — so the
// registry is cheap enough to leave enabled in production runs. Returned
// instrument references stay valid for the registry's lifetime
// (instruments are heap-allocated and never removed).
//
// Naming follows Prometheus conventions: snake_case with a unit suffix
// (`qes_job_latency_ms`, `qesd_shed_total`). An instrument may carry a
// fixed label set ({{"outcome","satisfied"}}); instruments sharing a
// name must share a kind and are emitted as one metric family.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace qes::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

/// Escapes `s` for embedding inside a JSON string literal: `"` and `\`
/// are backslash-escaped, control characters become \n/\r/\t/\u00XX.
/// Used by every JSON exposition in the repo; exposed for tests.
[[nodiscard]] std::string json_escape(const std::string& s);

class Counter {
 public:
  void add(double delta) {
    // fetch_add on atomic<double> needs C++20 + hardware support;
    // a CAS loop is portable and the counter is nearly uncontended.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  void inc() { add(1.0); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the instrument registered under (name, labels), creating it
  /// on first use. Re-registering an existing (name, labels) pair with a
  /// different kind aborts.
  Counter& counter(const std::string& name, const std::string& help = "",
                   Labels labels = {});
  Gauge& gauge(const std::string& name, const std::string& help = "",
               Labels labels = {});
  /// `prototype` supplies the bucket scheme on first registration (its
  /// recorded state is ignored).
  Histogram& histogram(const std::string& name, const std::string& help = "",
                       Labels labels = {},
                       Histogram prototype = Histogram::latency_ms());

  /// Looks up an existing instrument; nullptr when absent. Used by tests
  /// and exposition consumers that must not create instruments.
  [[nodiscard]] const Counter* find_counter(const std::string& name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name,
                                        const Labels& labels = {}) const;
  [[nodiscard]] const Histogram* find_histogram(
      const std::string& name, const Labels& labels = {}) const;

  /// Prometheus text exposition (HELP/TYPE lines, histogram buckets as
  /// cumulative `le` series with a `+Inf` terminator, `_sum`/`_count`).
  [[nodiscard]] std::string to_prometheus() const;

  /// JSON exposition: {"counters": {...}, "gauges": {...},
  /// "histograms": {"name": {"count":..,"sum":..,"min":..,"max":..,
  /// "p50":..,"p95":..,"p99":..,"buckets":[[le,count],...]}}}.
  /// Label sets are folded into the key as name{k="v",...}.
  [[nodiscard]] std::string to_json() const;

 private:
  enum class Kind { Counter, Gauge, Histogram };
  struct Entry {
    std::string name;
    Labels labels;
    std::string help;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* find_entry(const std::string& name, const Labels& labels,
                    Kind kind) const;

  mutable std::mutex mu_;  // guards entries_ layout, not instrument state
  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
};

}  // namespace qes::obs
