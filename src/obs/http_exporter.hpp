// Dependency-free HTTP/1.1 scrape endpoint for the obs layer.
//
// One exporter = one listening socket (127.0.0.1, fixed or ephemeral
// port) served by one poll-based thread. Routes are registered before
// start() as (path, content-type, handler) triples; each handler renders
// the full response body on demand, so a scrape always observes the
// instruments' current values. The server speaks just enough HTTP/1.1
// for Prometheus scrapers and curl: GET only, Connection: close, no
// keep-alive, bounded request size. Scrapes are rare and cheap compared
// to the serving hot paths, so one thread serves them all — but with a
// ready-connection sweep (poll over the listener plus every accepted
// fd, nonblocking I/O, per-connection deadline) rather than one blocking
// client at a time, so a slow or stalled scraper can never wedge
// /healthz for everyone else. No connection ever touches model state
// except through the registered (thread-safe) handlers. The raw socket
// plumbing is shared with the net ingress via net/socket_util.
//
// The runtime::Server and cluster::Cluster own their exporters and stop
// them during teardown; tests bind port 0 and read the kernel-assigned
// port back via port().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace qes::obs {

class HttpExporter {
 public:
  /// `port` 0 binds an ephemeral port (read it back via port() after
  /// start()); any other value binds that port exactly.
  explicit HttpExporter(int port);
  ~HttpExporter();

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Registers `handler` for exact-match GETs of `path` (query strings
  /// are stripped before matching). Must be called before start().
  void handle(std::string path, std::string content_type,
              std::function<std::string()> handler);

  /// Binds, listens, and launches the exporter thread. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Stops the exporter thread and closes the socket. Idempotent; also
  /// run by the destructor.
  void stop();

  /// The bound port (the kernel-assigned one when constructed with 0).
  /// Valid after start().
  [[nodiscard]] int port() const { return bound_port_; }

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Total requests answered (any status); exported on /healthz.
  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string path;
    std::string content_type;
    std::function<std::string()> handler;
  };

  // One in-flight scrape connection (nonblocking; swept by poll).
  struct Conn {
    int fd = -1;
    std::string in;
    std::string out;
    std::size_t out_off = 0;
    bool responded = false;
    /// Wall deadline (steady-clock ms) after which the peer is dropped.
    double deadline_ms = 0.0;
  };

  void serve_loop();
  /// Renders the full HTTP response for a buffered request head.
  [[nodiscard]] std::string respond(const std::string& request);

  int requested_port_;
  int bound_port_ = -1;
  int listen_fd_ = -1;
  std::vector<Route> routes_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
  bool started_ = false;
};

/// One-shot HTTP GET against 127.0.0.1:`port` (2 s timeout); returns the
/// response body and stores the status line in `*status_line` when given.
/// Used by tests and the exposition-lint live-scrape check; throws
/// std::runtime_error on connection failure.
[[nodiscard]] std::string http_get(int port, const std::string& path,
                                   std::string* status_line = nullptr);

}  // namespace qes::obs
