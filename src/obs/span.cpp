#include "obs/span.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <unordered_map>

namespace qes::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::vector<RequestSpan> assemble_spans(const std::vector<TraceEvent>& events,
                                        int node) {
  std::vector<RequestSpan> spans;
  std::unordered_map<JobId, std::size_t> index;
  for (const TraceEvent& e : events) {
    if (e.kind == TraceEvent::Kind::Shed ||
        e.kind == TraceEvent::Kind::Replan) {
      continue;  // not job-scoped
    }
    auto [it, fresh] = index.emplace(e.job, spans.size());
    if (fresh) {
      RequestSpan s;
      s.job = e.job;
      s.node = node;
      // Fallback when ring wraparound dropped the release event; the
      // explicit Release case below overwrites it.
      s.release = e.t;
      spans.push_back(std::move(s));
    }
    RequestSpan& s = spans[it->second];
    switch (e.kind) {
      case TraceEvent::Kind::Release:
        s.release = e.t;
        break;
      case TraceEvent::Kind::Assign:
        // Jobs never migrate; keep the first placement if a trace ever
        // carried more than one.
        if (s.assign < 0.0) {
          s.assign = e.t;
          s.core = e.core;
        }
        break;
      case TraceEvent::Kind::Exec:
        s.slices.push_back({e.t0, e.t1, e.speed, e.core});
        break;
      case TraceEvent::Kind::Finalize:
        s.finalize = e.t;
        s.quality = e.value;
        s.satisfied = e.satisfied;
        break;
      default:
        break;
    }
  }
  std::sort(spans.begin(), spans.end(),
            [](const RequestSpan& a, const RequestSpan& b) {
              return a.node != b.node ? a.node < b.node : a.job < b.job;
            });
  return spans;
}

bool SpanReconciliation::matches(const RunStats& stats, double tol) const {
  return finalized == stats.jobs_total && satisfied == stats.jobs_satisfied &&
         std::fabs(total_quality - stats.total_quality) <= tol &&
         std::fabs(mean_latency - stats.mean_latency) <= tol;
}

SpanReconciliation reconcile_spans(const std::vector<RequestSpan>& spans) {
  // Walk in (node, job-id) order regardless of input order: within one
  // node that is exactly the order RunAccumulator::on_job consumed the
  // finalized jobs in, so the fp accumulation sequence is identical.
  std::vector<const RequestSpan*> ordered;
  ordered.reserve(spans.size());
  for (const RequestSpan& s : spans) ordered.push_back(&s);
  std::sort(ordered.begin(), ordered.end(),
            [](const RequestSpan* a, const RequestSpan* b) {
              return a->node != b->node ? a->node < b->node : a->job < b->job;
            });
  SpanReconciliation r;
  for (const RequestSpan* s : ordered) {
    if (!s->finalized()) continue;  // abandoned or truncated: not in RunStats
    ++r.finalized;
    r.total_quality += s->quality;
    if (s->satisfied) {
      ++r.satisfied;
      r.latency_sum += s->total_latency();
    }
  }
  r.mean_latency =
      r.satisfied > 0 ? r.latency_sum / static_cast<double>(r.satisfied) : 0.0;
  return r;
}

std::string span_to_json(const RequestSpan& s) {
  std::string out;
  appendf(out,
          "{\"job\": %llu, \"node\": %d, \"release\": %.3f, "
          "\"assign\": %.3f, \"finalize\": %.3f, \"core\": %d, "
          "\"quality\": %.6f, \"satisfied\": %s, \"queue_wait\": %.3f, "
          "\"service\": %.3f, \"latency\": %.3f, \"slices\": [",
          static_cast<unsigned long long>(s.job), s.node, s.release, s.assign,
          s.finalize, s.core, s.quality, s.satisfied ? "true" : "false",
          s.queue_wait(), s.service(), s.total_latency());
  for (std::size_t i = 0; i < s.slices.size(); ++i) {
    const ExecSlice& e = s.slices[i];
    appendf(out,
            "%s{\"t0\": %.3f, \"t1\": %.3f, \"speed\": %.6f, \"core\": %d}",
            i == 0 ? "" : ", ", e.t0, e.t1, e.speed, e.core);
  }
  out += "]}";
  return out;
}

std::string spans_to_chrome_json(const std::vector<RequestSpan>& spans) {
  // Chrome trace-event timestamps are microseconds; model time is
  // virtual ms.
  constexpr double kUs = 1000.0;
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",";
    first = false;
    out += "\n";
  };
  const auto pid = [](const RequestSpan& s) { return s.node < 0 ? 0 : s.node; };

  // Metadata: name each node's process, its per-core threads, and the
  // virtual "requests" thread (tid 0; cores are tid core+1).
  std::vector<std::pair<int, int>> named;  // (pid, tid) pairs emitted
  auto name_thread = [&](int p, int tid, const std::string& name) {
    if (std::find(named.begin(), named.end(), std::make_pair(p, tid)) !=
        named.end()) {
      return;
    }
    named.emplace_back(p, tid);
    sep();
    appendf(out,
            "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": %d, "
            "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
            p, tid, name.c_str());
  };
  std::vector<int> named_pids;
  for (const RequestSpan& s : spans) {
    const int p = pid(s);
    if (std::find(named_pids.begin(), named_pids.end(), p) ==
        named_pids.end()) {
      named_pids.push_back(p);
      sep();
      appendf(out,
              "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": %d, "
              "\"args\": {\"name\": \"%s %d\"}}",
              p, s.node < 0 ? "qes" : "node", p);
      name_thread(p, 0, "requests");
    }
    for (const ExecSlice& e : s.slices) {
      name_thread(p, e.core + 1, "core " + std::to_string(e.core));
    }
  }

  for (const RequestSpan& s : spans) {
    const int p = pid(s);
    // Request window: async begin/end pair; the id string scopes the
    // pair to its node so equal per-node job ids cannot cross-match.
    if (s.finalized()) {
      sep();
      appendf(out,
              "{\"ph\": \"b\", \"cat\": \"request\", \"id\": \"n%d.j%llu\", "
              "\"name\": \"job %llu\", \"pid\": %d, \"tid\": 0, "
              "\"ts\": %.3f, \"args\": {\"quality\": %.6f, "
              "\"satisfied\": %s, \"queue_wait_ms\": %.3f, "
              "\"service_ms\": %.3f}}",
              p, static_cast<unsigned long long>(s.job),
              static_cast<unsigned long long>(s.job), p, s.release * kUs,
              s.quality, s.satisfied ? "true" : "false", s.queue_wait(),
              s.service());
      sep();
      appendf(out,
              "{\"ph\": \"e\", \"cat\": \"request\", \"id\": \"n%d.j%llu\", "
              "\"name\": \"job %llu\", \"pid\": %d, \"tid\": 0, "
              "\"ts\": %.3f}",
              p, static_cast<unsigned long long>(s.job),
              static_cast<unsigned long long>(s.job), p, s.finalize * kUs);
    }
    for (const ExecSlice& e : s.slices) {
      sep();
      appendf(out,
              "{\"ph\": \"X\", \"cat\": \"exec\", \"name\": \"job %llu\", "
              "\"pid\": %d, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, "
              "\"args\": {\"speed_ghz\": %.6f}}",
              static_cast<unsigned long long>(s.job), p, e.core + 1,
              e.t0 * kUs, (e.t1 - e.t0) * kUs, e.speed);
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace qes::obs
