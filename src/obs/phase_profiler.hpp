// Always-on RAII phase timers for the scheduler pipeline.
//
// The replan pipeline (paper §IV/§V-D) has four phases — C-RR
// distribution, budget-free YDS, water-filling power split, and the
// budget-bounded Online-QE install loop — and the cluster broker adds a
// fifth (the budget re-split tick). Per-phase cost is what every perf
// PR on the ROADMAP needs to see, so the profiler is designed to stay
// enabled in production: phase() returns a Scope that reads the
// monotonic clock twice (construction/destruction) and records the
// elapsed wall milliseconds into a registry histogram labeled
// {phase="<name>"}. With no registry attached every Scope is inert — no
// clock reads, no locks — so the bare sim/runtime constructions pay a
// branch per phase and nothing else (bench/obs_overhead measures the
// enabled cost end to end).
//
// Histograms are resolved once per phase name and cached, so the steady
// state takes one small mutex per phase to protect the cache lookup and
// the histogram's own record() lock — both uncontended on the replan
// path, which is single-threaded in every stack.
#pragma once

#include <chrono>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace qes::obs {

class Registry;

class PhaseProfiler {
 public:
  /// `registry` may be nullptr (profiling disabled, Scopes inert);
  /// `metric` names the histogram family, e.g. "qes_replan_phase_ms".
  /// `base_labels` are attached to every phase histogram in addition to
  /// {phase="<name>"} — the planner kernel uses them to fold all
  /// execution planes into one family distinguished by a `plane` label.
  PhaseProfiler(Registry* registry, std::string metric, std::string help,
                std::vector<std::pair<std::string, std::string>> base_labels =
                    {});

  PhaseProfiler(const PhaseProfiler&) = delete;
  PhaseProfiler& operator=(const PhaseProfiler&) = delete;

  /// Records elapsed wall ms into its histogram when destroyed.
  class Scope {
   public:
    explicit Scope(Histogram* hist) : hist_(hist) {
      if (hist_ != nullptr) t0_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (hist_ == nullptr) return;
      const auto dt = std::chrono::steady_clock::now() - t0_;
      hist_->record(
          std::chrono::duration<double, std::milli>(dt).count());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Histogram* hist_;
    std::chrono::steady_clock::time_point t0_;
  };

  /// Starts timing one phase: `auto s = profiler.phase("wf");`. The
  /// histogram carries the label {phase="<name>"}.
  [[nodiscard]] Scope phase(const std::string& name) {
    return Scope(phase_histogram(name));
  }

  /// The histogram backing phase `name` (nullptr when profiling is
  /// disabled) — for callers that manage Scope lifetime manually, e.g.
  /// through std::optional<Scope>::emplace.
  [[nodiscard]] Histogram* phase_histogram(const std::string& name);

  [[nodiscard]] bool enabled() const { return registry_ != nullptr; }

  /// Bucket scheme for phase timings: 1 µs .. ~8.4 s, factor-2 buckets
  /// (replan phases sit in the µs range; the wide top end catches
  /// pathological stalls).
  [[nodiscard]] static Histogram phase_ms_buckets() {
    return Histogram(0.001, 2.0, 24);
  }

 private:
  Registry* registry_;
  const std::string metric_;
  const std::string help_;
  const std::vector<std::pair<std::string, std::string>> base_labels_;
  std::mutex mu_;  // guards cache_ layout only
  std::unordered_map<std::string, Histogram*> cache_;
};

}  // namespace qes::obs
