#include "obs/promlint.hpp"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>

namespace qes::obs {

namespace {

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  if (!head(s[0])) return false;
  for (char c : s) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

bool valid_label_name(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!head(s[0])) return false;
  for (char c : s) {
    if (!head(c) && !std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Parses a sample value ("1.5", "+Inf", "NaN", "1e-3"); false when the
/// token is not fully consumed.
bool parse_value(const std::string& s, double* out) {
  if (s.empty()) return false;
  const char* cs = s.c_str();
  char* end = nullptr;
  *out = std::strtod(cs, &end);
  return end == cs + s.size();
}

struct FamilyState {
  std::string type;  // empty until TYPE seen
  std::string help;
  bool closed = false;  // a different family's block has started since
  bool has_samples = false;
  std::size_t index = 0;  // into PromLintResult::families
};

/// The family a series belongs to: histogram series drop their
/// _bucket/_sum/_count suffix when that base family is typed histogram.
std::string family_of(const std::string& series,
                      const std::map<std::string, FamilyState>& families) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::size_t n = std::strlen(suffix);
    if (series.size() > n &&
        series.compare(series.size() - n, n, suffix) == 0) {
      const std::string base = series.substr(0, series.size() - n);
      auto it = families.find(base);
      if (it != families.end() && it->second.type == "histogram") return base;
    }
  }
  return series;
}

}  // namespace

std::string PromLintResult::error_text() const {
  std::string out;
  for (const std::string& e : errors) {
    out += e;
    out += '\n';
  }
  return out;
}

PromLintResult prom_lint(const std::string& exposition) {
  PromLintResult result;
  std::map<std::string, FamilyState> families;
  std::string current;  // family whose block is open

  auto fail = [&](std::size_t lineno, const std::string& msg) {
    result.errors.push_back("line " + std::to_string(lineno) + ": " + msg);
  };

  auto family_state = [&](const std::string& name) -> FamilyState& {
    auto [it, fresh] = families.emplace(name, FamilyState{});
    if (fresh) {
      it->second.index = result.families.size();
      result.families.push_back({name, "untyped", "", {}});
    }
    return it->second;
  };

  // Opening family `name`'s block closes the previous one; reopening a
  // closed family is the contiguity violation.
  auto open_block = [&](const std::string& name, std::size_t lineno) {
    if (current == name) return;
    if (!current.empty()) families[current].closed = true;
    FamilyState& st = family_state(name);
    if (st.closed) {
      fail(lineno, "family " + name +
                       " is not contiguous (block reopened after another "
                       "family started)");
      st.closed = false;
    }
    current = name;
  };

  std::istringstream in(exposition);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name type"; any other comment is
      // ignored per the format.
      std::istringstream ls(line);
      std::string hash, keyword, name;
      ls >> hash >> keyword >> name;
      if (keyword != "HELP" && keyword != "TYPE") continue;
      if (!valid_metric_name(name)) {
        fail(lineno, "invalid metric name in " + keyword + ": '" + name + "'");
        continue;
      }
      open_block(name, lineno);
      FamilyState& st = family_state(name);
      std::string rest;
      std::getline(ls, rest);
      while (!rest.empty() && rest[0] == ' ') rest.erase(0, 1);
      if (keyword == "HELP") {
        if (!st.help.empty()) fail(lineno, "duplicate HELP for " + name);
        if (st.has_samples) fail(lineno, "HELP for " + name + " after samples");
        st.help = rest;
        result.families[st.index].help = rest;
      } else {
        if (!st.type.empty()) fail(lineno, "duplicate TYPE for " + name);
        if (st.has_samples) fail(lineno, "TYPE for " + name + " after samples");
        if (rest != "counter" && rest != "gauge" && rest != "histogram" &&
            rest != "summary" && rest != "untyped") {
          fail(lineno, "unknown TYPE '" + rest + "' for " + name);
        }
        st.type = rest;
        result.families[st.index].type = rest;
      }
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t pos = 0;
    while (pos < line.size() && line[pos] != '{' && line[pos] != ' ') ++pos;
    const std::string series = line.substr(0, pos);
    if (!valid_metric_name(series)) {
      fail(lineno, "invalid series name '" + series + "'");
      continue;
    }
    PromSample sample;
    sample.name = series;
    bool bad = false;
    if (pos < line.size() && line[pos] == '{') {
      ++pos;
      std::vector<std::string> seen_names;
      while (pos < line.size() && line[pos] != '}') {
        std::size_t eq = line.find('=', pos);
        if (eq == std::string::npos) {
          fail(lineno, "malformed label block");
          bad = true;
          break;
        }
        const std::string lname = line.substr(pos, eq - pos);
        if (!valid_label_name(lname)) {
          fail(lineno, "invalid label name '" + lname + "'");
          bad = true;
        }
        for (const std::string& prev : seen_names) {
          if (prev == lname) {
            fail(lineno, "duplicate label name '" + lname + "'");
            bad = true;
          }
        }
        seen_names.push_back(lname);
        if (eq + 1 >= line.size() || line[eq + 1] != '"') {
          fail(lineno, "label value for '" + lname + "' is not quoted");
          bad = true;
          break;
        }
        // Unescape the value; only \\ \" \n are legal escapes.
        std::string value;
        pos = eq + 2;
        bool closed_quote = false;
        while (pos < line.size()) {
          const char c = line[pos];
          if (c == '"') {
            closed_quote = true;
            ++pos;
            break;
          }
          if (c == '\\') {
            if (pos + 1 >= line.size()) break;
            const char esc = line[pos + 1];
            if (esc == '\\') value += '\\';
            else if (esc == '"') value += '"';
            else if (esc == 'n') value += '\n';
            else {
              fail(lineno, std::string("invalid escape '\\") + esc +
                               "' in label value");
              bad = true;
              value += esc;
            }
            pos += 2;
            continue;
          }
          value += c;
          ++pos;
        }
        if (!closed_quote) {
          fail(lineno, "unterminated label value");
          bad = true;
          break;
        }
        sample.labels.emplace_back(lname, value);
        if (pos < line.size() && line[pos] == ',') ++pos;
      }
      if (bad) continue;
      if (pos >= line.size() || line[pos] != '}') {
        fail(lineno, "unterminated label block");
        continue;
      }
      ++pos;
    }
    while (pos < line.size() && line[pos] == ' ') ++pos;
    std::size_t vend = pos;
    while (vend < line.size() && line[vend] != ' ') ++vend;
    if (!parse_value(line.substr(pos, vend - pos), &sample.value)) {
      fail(lineno,
           "unparsable value '" + line.substr(pos, vend - pos) + "'");
      continue;
    }

    const std::string fname = family_of(series, families);
    if (families.find(fname) == families.end() ||
        families[fname].type.empty()) {
      fail(lineno, "sample for " + series + " before any TYPE line");
    }
    open_block(fname, lineno);
    FamilyState& st = family_state(fname);
    st.has_samples = true;
    result.families[st.index].samples.push_back(std::move(sample));
  }

  // Histogram shape checks, one series group per non-`le` label set.
  for (const PromFamily& fam : result.families) {
    if (fam.type != "histogram") continue;
    struct Group {
      std::vector<std::pair<double, double>> buckets;  // (le, cum count)
      bool has_inf = false;
      double inf_count = 0.0;
      bool has_sum = false;
      bool has_count = false;
      double count = 0.0;
    };
    std::map<std::string, Group> groups;
    auto group_key = [](const Labels& labels) {
      std::string key;
      for (const auto& [k, v] : labels) {
        if (k == "le") continue;
        key += k + "=" + v + ",";
      }
      return key;
    };
    for (const PromSample& s : fam.samples) {
      Group& g = groups[group_key(s.labels)];
      if (s.name == fam.name + "_sum") {
        g.has_sum = true;
      } else if (s.name == fam.name + "_count") {
        g.has_count = true;
        g.count = s.value;
      } else if (s.name == fam.name + "_bucket") {
        std::string le;
        for (const auto& [k, v] : s.labels) {
          if (k == "le") le = v;
        }
        if (le.empty()) {
          result.errors.push_back("histogram " + fam.name +
                                  " has a _bucket sample without le");
          continue;
        }
        if (le == "+Inf") {
          g.has_inf = true;
          g.inf_count = s.value;
        } else {
          double bound = 0.0;
          if (!parse_value(le, &bound)) {
            result.errors.push_back("histogram " + fam.name +
                                    " has unparsable le '" + le + "'");
            continue;
          }
          if (g.has_inf) {
            result.errors.push_back("histogram " + fam.name +
                                    " has buckets after +Inf");
          }
          g.buckets.emplace_back(bound, s.value);
        }
      } else {
        result.errors.push_back("histogram " + fam.name +
                                " has unexpected series " + s.name);
      }
    }
    for (const auto& [key, g] : groups) {
      const std::string where =
          fam.name + (key.empty() ? "" : "{" + key + "}");
      for (std::size_t i = 1; i < g.buckets.size(); ++i) {
        if (g.buckets[i].first <= g.buckets[i - 1].first) {
          result.errors.push_back("histogram " + where +
                                  " bucket bounds not increasing");
        }
        if (g.buckets[i].second < g.buckets[i - 1].second) {
          result.errors.push_back("histogram " + where +
                                  " bucket counts not cumulative");
        }
      }
      if (!g.has_inf) {
        result.errors.push_back("histogram " + where + " missing +Inf bucket");
      } else {
        if (!g.buckets.empty() && g.inf_count < g.buckets.back().second) {
          result.errors.push_back("histogram " + where +
                                  " +Inf bucket below last finite bucket");
        }
        if (g.has_count && g.inf_count != g.count) {
          result.errors.push_back("histogram " + where +
                                  " +Inf bucket disagrees with _count");
        }
      }
      if (!g.has_sum) {
        result.errors.push_back("histogram " + where + " missing _sum");
      }
      if (!g.has_count) {
        result.errors.push_back("histogram " + where + " missing _count");
      }
    }
  }

  return result;
}

}  // namespace qes::obs
