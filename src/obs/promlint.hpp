// In-repo Prometheus text-format parser and linter.
//
// The obs layer promises that its expositions are scrapable by a real
// Prometheus server, but CI has no Prometheus to scrape with — so this
// is the next best thing: an independent parser of the documented text
// format (name/label grammar, HELP/TYPE comment lines, histogram
// bucket/sum/count series) that re-reads what Registry::to_prometheus()
// wrote and reports every violation it can detect:
//
//   - metric names not matching  [a-zA-Z_:][a-zA-Z0-9_:]*
//   - label names not matching   [a-zA-Z_][a-zA-Z0-9_]*   or duplicated
//   - label values with invalid escapes (only \\ \" \n are legal)
//   - samples before their TYPE line, duplicate or late HELP/TYPE
//   - non-contiguous families (series of one family interleaved with
//     another family's block)
//   - unparsable sample values
//   - histogram shape: per series (grouped by non-`le` labels) buckets
//     must have strictly increasing `le` bounds, non-decreasing
//     cumulative counts, a final +Inf bucket, and _sum/_count series
//     whose count equals the +Inf bucket
//
// parse() never throws: malformed input produces errors, and whatever
// was parseable is still returned so tests can assert on both.
#pragma once

#include <string>
#include <vector>

#include "obs/registry.hpp"

namespace qes::obs {

/// One parsed sample line: series name (family name plus any
/// _bucket/_sum/_count suffix), labels in appearance order, value.
struct PromSample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct PromFamily {
  std::string name;
  std::string type;  ///< counter | gauge | histogram | summary | untyped
  std::string help;  ///< empty when no HELP line was present
  std::vector<PromSample> samples;
};

struct PromLintResult {
  std::vector<PromFamily> families;  ///< in exposition order
  std::vector<std::string> errors;   ///< empty = exposition is clean

  [[nodiscard]] bool ok() const { return errors.empty(); }

  /// All errors joined with newlines — for test failure messages.
  [[nodiscard]] std::string error_text() const;
};

/// Parses and lints one exposition (the full /metrics body).
[[nodiscard]] PromLintResult prom_lint(const std::string& exposition);

}  // namespace qes::obs
