#include "obs/trace.hpp"

#include <cstdio>

#include "core/assert.hpp"

namespace qes::obs {

const char* to_string(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::Release: return "release";
    case TraceEvent::Kind::Shed: return "shed";
    case TraceEvent::Kind::Assign: return "assign";
    case TraceEvent::Kind::Exec: return "exec";
    case TraceEvent::Kind::Finalize: return "finalize";
    case TraceEvent::Kind::Replan: return "replan";
  }
  return "unknown";
}

std::string to_json(const TraceEvent& e) {
  char buf[256];
  switch (e.kind) {
    case TraceEvent::Kind::Exec:
      std::snprintf(buf, sizeof(buf),
                    "{\"kind\": \"exec\", \"t\": %.3f, \"job\": %llu, "
                    "\"core\": %d, \"t0\": %.3f, \"t1\": %.3f, "
                    "\"speed\": %.6f}",
                    e.t, static_cast<unsigned long long>(e.job), e.core,
                    e.t0, e.t1, e.speed);
      break;
    case TraceEvent::Kind::Assign:
      std::snprintf(buf, sizeof(buf),
                    "{\"kind\": \"assign\", \"t\": %.3f, \"job\": %llu, "
                    "\"core\": %d}",
                    e.t, static_cast<unsigned long long>(e.job), e.core);
      break;
    case TraceEvent::Kind::Finalize:
      std::snprintf(buf, sizeof(buf),
                    "{\"kind\": \"finalize\", \"t\": %.3f, \"job\": %llu, "
                    "\"quality\": %.6f, \"satisfied\": %s}",
                    e.t, static_cast<unsigned long long>(e.job), e.value,
                    e.satisfied ? "true" : "false");
      break;
    case TraceEvent::Kind::Replan:
      std::snprintf(buf, sizeof(buf),
                    "{\"kind\": \"replan\", \"t\": %.3f, \"waiting\": %.0f}",
                    e.t, e.value);
      break;
    default:
      std::snprintf(buf, sizeof(buf),
                    "{\"kind\": \"%s\", \"t\": %.3f, \"job\": %llu}",
                    to_string(e.kind), e.t,
                    static_cast<unsigned long long>(e.job));
      break;
  }
  return buf;
}

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  QES_ASSERT(capacity > 0);
}

void TraceRing::push(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    events_.pop_front();
    ++dropped_;
  }
  events_.push_back(event);
}

std::vector<TraceEvent> TraceRing::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> out(events_.begin(), events_.end());
  events_.clear();
  return out;
}

std::vector<TraceEvent> TraceRing::tail(std::size_t max_events) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = std::min(max_events, events_.size());
  return std::vector<TraceEvent>(events_.end() - static_cast<std::ptrdiff_t>(n),
                                 events_.end());
}

std::uint64_t TraceRing::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::size_t TraceRing::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceRing::drain_jsonl() {
  std::string out;
  for (const TraceEvent& e : drain()) {
    out += to_json(e);
    out += '\n';
  }
  return out;
}

}  // namespace qes::obs
