// Log-bucketed histogram for latency/quality/size distributions.
//
// Buckets are geometric: upper bounds b_i = lo * growth^i for
// i = 0..n-1, plus a final +infinity overflow bucket. A value v lands in
// the first bucket whose upper bound is >= v (so everything in [0, lo]
// lands in bucket 0, and values beyond the last finite bound land in the
// overflow). Geometric bounds give constant *relative* resolution —
// the right shape for response times, whose interesting range spans
// orders of magnitude — at a fixed, small memory cost.
//
// Alongside the bucket counts the histogram keeps exact count/sum/min/
// max accumulated in recording order, which is what lets the obs layer
// reconcile bit-for-bit against the legacy RunStats aggregates computed
// from the same observation stream. Quantiles are estimated by
// log-linear interpolation inside the owning bucket and clamped to the
// observed [min, max].
//
// Thread safety: record() and all readers take an internal mutex, so a
// single Histogram may be shared between the runtime's trigger thread
// and the metrics thread. The lock is uncontended in the common case
// and held for a handful of arithmetic operations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace qes::obs {

struct HistogramSnapshot {
  std::vector<double> upper_bounds;  ///< finite bounds; overflow is implicit
  std::vector<std::uint64_t> counts; ///< size = upper_bounds.size() + 1
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;  ///< 0 when empty

  /// Quantile estimate (q in [0,1]): log-interpolated within the bucket
  /// holding the ceil(q * count)-th observation, clamped to [min, max].
  [[nodiscard]] double quantile(double q) const;
};

class Histogram {
 public:
  /// `lo` is the first upper bound, `growth` > 1 the geometric ratio,
  /// `buckets` the number of finite buckets (the +Inf overflow bucket is
  /// added on top).
  Histogram(double lo, double growth, std::size_t buckets);

  /// Movable so bucket-scheme prototypes can be passed into
  /// Registry::histogram(); the mutex is freshly constructed.
  Histogram(Histogram&& other) noexcept;
  Histogram& operator=(Histogram&&) = delete;

  /// Default latency scheme: 1 ms .. ~8.9 s in 24 buckets (growth 1.5),
  /// i.e. constant ~50% relative resolution.
  [[nodiscard]] static Histogram latency_ms();

  /// Default per-job quality scheme: 0.01 .. ~8.3 in 20 buckets
  /// (growth 1.4); per-job quality is weight * f(p), typically <= weight.
  [[nodiscard]] static Histogram quality();

  void record(double value);

  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;

 private:
  std::vector<double> upper_bounds_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> counts_;  // finite buckets + overflow
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace qes::obs
