// Per-request spans assembled from the TraceRing event stream.
//
// A flat trace answers "what happened at time t"; a span answers "where
// did THIS request's latency go". assemble_spans() folds the per-job
// lifecycle events (release → assign → exec slices → finalize) into one
// RequestSpan per job, with the queue-wait / service / total-latency
// breakdown derived from the same timestamps the engines recorded — no
// re-measurement, so the numbers cannot drift from the trace.
//
// Self-validation: reconcile_spans() re-derives the run-level quality
// and latency aggregates from the spans by walking them in job-id order
// — the exact order (and therefore the exact floating-point op
// sequence) RunAccumulator used — so a complete trace reconciles
// bitwise with RunStats. A span without a finalize event (job abandoned
// by a node kill, or trace truncated by ring wraparound) is excluded,
// mirroring RunAccumulator, which never saw such a job either.
//
// Export: spans_to_chrome_json() renders the Chrome trace-event format
// (Perfetto / chrome://tracing loadable): one process per node, one
// thread per core carrying the exec slices as complete ("X") events,
// and a "requests" thread carrying each request's release→finalize
// window as an async ("b"/"e") pair keyed by job id. Model time is in
// virtual ms; Chrome wants microseconds, so timestamps are scaled by
// 1000. The JSONL side (span_to_json) is one object per span, schema in
// docs/OBSERVABILITY.md.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "core/time.hpp"
#include "obs/trace.hpp"
#include "sim/metrics.hpp"

namespace qes::obs {

/// One contiguous execution interval of a job on a core.
struct ExecSlice {
  Time t0 = 0.0;
  Time t1 = 0.0;
  double speed = 0.0;  ///< GHz
  int core = -1;
};

/// The assembled lifecycle of one request.
struct RequestSpan {
  JobId job = 0;
  int node = -1;  ///< cluster node id; -1 in single-node runs
  Time release = 0.0;
  Time assign = -1.0;    ///< first placement on a core; -1 if never assigned
  Time finalize = -1.0;  ///< -1 when the trace holds no finalize event
  int core = -1;         ///< core of the first assignment
  double quality = 0.0;
  bool satisfied = false;
  std::vector<ExecSlice> slices;

  [[nodiscard]] bool finalized() const { return finalize >= 0.0; }

  /// Release to first core placement (to finalize when never assigned —
  /// the whole span was spent queued).
  [[nodiscard]] Time queue_wait() const {
    if (assign >= 0.0) return assign - release;
    return finalized() ? finalize - release : 0.0;
  }

  /// Total executed time: sum of exec-slice durations.
  [[nodiscard]] Time service() const {
    Time s = 0.0;
    for (const ExecSlice& e : slices) s += e.t1 - e.t0;
    return s;
  }

  /// Release to finalize; 0 for unfinalized spans.
  [[nodiscard]] Time total_latency() const {
    return finalized() ? finalize - release : 0.0;
  }
};

/// Folds a trace-event stream (as drained or tailed from a TraceRing)
/// into spans, one per distinct job id, sorted by job id. Shed/Replan
/// events are not job-scoped and are skipped. `node` tags every span
/// (cluster callers assemble each node's ring separately — per-node job
/// ids are dense from 1, so rings must not be mixed).
[[nodiscard]] std::vector<RequestSpan> assemble_spans(
    const std::vector<TraceEvent>& events, int node = -1);

/// Run-level aggregates re-derived from spans in job-id order — the
/// same order RunAccumulator consumed the jobs in, so on a complete
/// trace these match RunStats bitwise (see matches()).
struct SpanReconciliation {
  std::size_t finalized = 0;  ///< spans carrying a finalize event
  std::size_t satisfied = 0;
  double total_quality = 0.0;
  Time latency_sum = 0.0;    ///< satisfied spans only, job-id order
  Time mean_latency = 0.0;   ///< latency_sum / satisfied (0 when none)

  /// True when the span totals agree with `stats` within `tol`
  /// (defaults beyond fp round-off only as a guard; equality is
  /// expected bitwise).
  [[nodiscard]] bool matches(const RunStats& stats, double tol = 1e-9) const;
};

[[nodiscard]] SpanReconciliation reconcile_spans(
    const std::vector<RequestSpan>& spans);

/// One JSON object (single line, no trailing newline).
[[nodiscard]] std::string span_to_json(const RequestSpan& span);

/// Chrome trace-event JSON for the whole span set; pass spans from
/// several nodes concatenated to get one process per node.
[[nodiscard]] std::string spans_to_chrome_json(
    const std::vector<RequestSpan>& spans);

}  // namespace qes::obs
