#include "obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "core/assert.hpp"

namespace qes::obs {

namespace {

// Bounded request size: a scrape request line plus headers fits easily;
// anything larger is a client error.
constexpr std::size_t kMaxRequestBytes = 8192;

// Poll granularity of the accept loop — bounds stop() latency.
constexpr int kPollMs = 50;

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a scraper hanging up mid-response must not SIGPIPE
    // the process.
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // client went away; nothing to clean up
    off += static_cast<std::size_t>(n);
  }
}

std::string response(const std::string& status, const std::string& type,
                     const std::string& body) {
  std::string out = "HTTP/1.1 " + status + "\r\n";
  out += "Content-Type: " + type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpExporter::HttpExporter(int port) : requested_port_(port) {
  QES_ASSERT_MSG(port >= 0 && port <= 65535, "port must be in [0, 65535]");
}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::handle(std::string path, std::string content_type,
                          std::function<std::string()> handler) {
  QES_ASSERT_MSG(!started_, "routes must be registered before start()");
  QES_ASSERT_MSG(!path.empty() && path[0] == '/', "path must start with /");
  routes_.push_back(
      {std::move(path), std::move(content_type), std::move(handler)});
}

void HttpExporter::start() {
  QES_ASSERT_MSG(!started_, "start() may be called once");
  started_ = true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("http exporter: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(requested_port_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("http exporter: cannot listen on port " +
                             std::to_string(requested_port_) + ": " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  bound_port_ = static_cast<int>(ntohs(addr.sin_port));

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpExporter::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void HttpExporter::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, kPollMs);
    if (r <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    // A stuck client must not wedge the exporter: bound both directions.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    serve_one(client);
    ::close(client);
  }
}

void HttpExporter::serve_one(int client_fd) {
  std::string req;
  char buf[1024];
  while (req.size() < kMaxRequestBytes &&
         req.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    req.append(buf, static_cast<std::size_t>(n));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t eol = req.find("\r\n");
  const std::string line = eol == std::string::npos ? req : req.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    send_all(client_fd, response("400 Bad Request", "text/plain",
                                 "malformed request line\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    send_all(client_fd, response("405 Method Not Allowed", "text/plain",
                                 "only GET is supported\n"));
    return;
  }
  for (const Route& route : routes_) {
    if (route.path != path) continue;
    send_all(client_fd,
             response("200 OK", route.content_type, route.handler()));
    return;
  }
  std::string known;
  for (const Route& route : routes_) known += route.path + "\n";
  send_all(client_fd,
           response("404 Not Found", "text/plain",
                    "no handler for " + path + "; try:\n" + known));
}

std::string http_get(int port, const std::string& path,
                     std::string* status_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http_get: socket() failed");
  timeval tv{};
  tv.tv_sec = 2;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("http_get: cannot connect to port " +
                             std::to_string(port));
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  send_all(fd, req);
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t eol = resp.find("\r\n");
  if (status_line != nullptr) {
    *status_line = eol == std::string::npos ? resp : resp.substr(0, eol);
  }
  const std::size_t body = resp.find("\r\n\r\n");
  return body == std::string::npos ? std::string() : resp.substr(body + 4);
}

}  // namespace qes::obs
