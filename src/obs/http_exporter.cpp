#include "obs/http_exporter.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <vector>

#include "core/assert.hpp"
#include "net/socket_util.hpp"

namespace qes::obs {

namespace {

// Bounded request size: a scrape request line plus headers fits easily;
// anything larger is a client error.
constexpr std::size_t kMaxRequestBytes = 8192;

// Poll granularity of the sweep — bounds stop() latency.
constexpr int kPollMs = 50;

// A connection that has not produced a full request (or taken delivery
// of its response) within this window is dropped.
constexpr double kConnDeadlineMs = 2000.0;

double steady_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string response(const std::string& status, const std::string& type,
                     const std::string& body) {
  std::string out = "HTTP/1.1 " + status + "\r\n";
  out += "Content-Type: " + type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

HttpExporter::HttpExporter(int port) : requested_port_(port) {
  QES_ASSERT_MSG(port >= 0 && port <= 65535, "port must be in [0, 65535]");
}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::handle(std::string path, std::string content_type,
                          std::function<std::string()> handler) {
  QES_ASSERT_MSG(!started_, "routes must be registered before start()");
  QES_ASSERT_MSG(!path.empty() && path[0] == '/', "path must start with /");
  routes_.push_back(
      {std::move(path), std::move(content_type), std::move(handler)});
}

void HttpExporter::start() {
  QES_ASSERT_MSG(!started_, "start() may be called once");
  started_ = true;
  net::ListenOptions lo;
  lo.backlog = 16;
  lo.nonblocking = true;
  const net::Listener listener = net::listen_loopback(requested_port_, lo);
  listen_fd_ = listener.fd;
  bound_port_ = listener.port;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpExporter::stop() {
  if (!started_) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void HttpExporter::serve_loop() {
  // The ready-connection sweep: every accepted fd progresses whenever it
  // is ready, so one stalled scraper cannot stall the rest (regression:
  // obs_http_test.SlowScraperDoesNotStallOtherClients).
  std::vector<Conn> conns;
  std::vector<pollfd> pfds;
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const Conn& c : conns) {
      short events = POLLIN;
      if (c.out_off < c.out.size()) events |= POLLOUT;
      pfds.push_back({c.fd, events, 0});
    }
    (void)::poll(pfds.data(), pfds.size(), kPollMs);
    if (stop_.load(std::memory_order_acquire)) break;
    const double now = steady_ms();

    // Only the connections that existed when pfds was built have a
    // pollfd slot; ones accepted below are swept next iteration.
    const std::size_t swept = conns.size();
    if ((pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        const int client = ::accept(listen_fd_, nullptr, nullptr);
        if (client < 0) break;
        (void)net::set_nonblocking(client);
        Conn c;
        c.fd = client;
        c.deadline_ms = now + kConnDeadlineMs;
        conns.push_back(std::move(c));
      }
    }

    for (std::size_t i = 0; i < swept; ++i) {
      Conn& c = conns[i];
      const short rev = pfds[i + 1].revents;
      bool drop = now >= c.deadline_ms;
      if (!drop && (rev & (POLLIN | POLLHUP | POLLERR)) != 0 &&
          !c.responded) {
        char buf[1024];
        for (;;) {
          const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          if (n <= 0) {
            drop = true;  // peer went away before completing a request
            break;
          }
          c.in.append(buf, static_cast<std::size_t>(n));
          if (c.in.size() >= kMaxRequestBytes) break;
        }
        if (!drop && (c.in.find("\r\n\r\n") != std::string::npos ||
                      c.in.size() >= kMaxRequestBytes)) {
          c.out = respond(c.in);
          c.responded = true;
          requests_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!drop && c.responded && c.out_off < c.out.size()) {
        while (c.out_off < c.out.size()) {
          const ssize_t n = ::send(c.fd, c.out.data() + c.out_off,
                                   c.out.size() - c.out_off, MSG_NOSIGNAL);
          if (n > 0) {
            c.out_off += static_cast<std::size_t>(n);
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          drop = true;
          break;
        }
      }
      if (drop || (c.responded && c.out_off >= c.out.size())) {
        ::close(c.fd);
        c.fd = -1;
      }
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const Conn& c) { return c.fd < 0; }),
                conns.end());
  }
  for (Conn& c : conns) {
    if (c.fd >= 0) ::close(c.fd);
  }
}

std::string HttpExporter::respond(const std::string& req) {
  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t eol = req.find("\r\n");
  const std::string line = eol == std::string::npos ? req : req.substr(0, eol);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return response("400 Bad Request", "text/plain",
                    "malformed request line\n");
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    return response("405 Method Not Allowed", "text/plain",
                    "only GET is supported\n");
  }
  for (const Route& route : routes_) {
    if (route.path != path) continue;
    return response("200 OK", route.content_type, route.handler());
  }
  std::string known;
  for (const Route& route : routes_) known += route.path + "\n";
  return response("404 Not Found", "text/plain",
                  "no handler for " + path + "; try:\n" + known);
}

std::string http_get(int port, const std::string& path,
                     std::string* status_line) {
  int fd = -1;
  try {
    fd = net::connect_loopback(port);
  } catch (const std::runtime_error&) {
    throw std::runtime_error("http_get: cannot connect to port " +
                             std::to_string(port));
  }
  const std::string req = "GET " + path +
                          " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                          "Connection: close\r\n\r\n";
  (void)net::send_all(fd, req);
  const std::string resp = net::recv_until_eof(fd);
  ::close(fd);
  const std::size_t eol = resp.find("\r\n");
  if (status_line != nullptr) {
    *status_line = eol == std::string::npos ? resp : resp.substr(0, eol);
  }
  const std::size_t body = resp.find("\r\n\r\n");
  return body == std::string::npos ? std::string() : resp.substr(body + 4);
}

}  // namespace qes::obs
