#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/assert.hpp"

namespace qes::obs {

namespace {

// Shortest round-trip-safe rendering of a double (Prometheus and JSON
// both accept plain decimal/exponent notation).
std::string fmt_num(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim to the shortest representation that still round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char trial[64];
    std::snprintf(trial, sizeof(trial), "%.*g", prec, v);
    if (std::strtod(trial, nullptr) == v) return trial;
  }
  return buf;
}

// Prometheus text format: label values escape backslash, double-quote,
// and newline.
std::string prom_label_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string label_block(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + prom_label_escape(labels[i].second) + "\"";
  }
  out += "}";
  return out;
}

// Histogram bucket series needs the instrument labels merged with `le`.
std::string label_block_with_le(const Labels& labels, const std::string& le) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += k + "=\"" + prom_label_escape(v) + "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

Registry::Entry* Registry::find_entry(const std::string& name,
                                      const Labels& labels, Kind kind) const {
  for (const auto& e : entries_) {
    if (e->name == name && e->labels == labels) {
      QES_ASSERT_MSG(e->kind == kind,
                     "metric re-registered with a different kind");
      return e.get();
    }
  }
  return nullptr;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find_entry(name, labels, Kind::Counter)) return *e->counter;
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = std::move(labels);
  e->help = help;
  e->kind = Kind::Counter;
  e->counter = std::make_unique<Counter>();
  Counter& out = *e->counter;
  entries_.push_back(std::move(e));
  return out;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       Labels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find_entry(name, labels, Kind::Gauge)) return *e->gauge;
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = std::move(labels);
  e->help = help;
  e->kind = Kind::Gauge;
  e->gauge = std::make_unique<Gauge>();
  Gauge& out = *e->gauge;
  entries_.push_back(std::move(e));
  return out;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help, Labels labels,
                               Histogram prototype) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = find_entry(name, labels, Kind::Histogram)) {
    return *e->histogram;
  }
  auto e = std::make_unique<Entry>();
  e->name = name;
  e->labels = std::move(labels);
  e->help = help;
  e->kind = Kind::Histogram;
  e->histogram = std::make_unique<Histogram>(std::move(prototype));
  Histogram& out = *e->histogram;
  entries_.push_back(std::move(e));
  return out;
}

const Counter* Registry::find_counter(const std::string& name,
                                      const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find_entry(name, labels, Kind::Counter);
  return e ? e->counter.get() : nullptr;
}

const Gauge* Registry::find_gauge(const std::string& name,
                                  const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find_entry(name, labels, Kind::Gauge);
  return e ? e->gauge.get() : nullptr;
}

const Histogram* Registry::find_histogram(const std::string& name,
                                          const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Entry* e = find_entry(name, labels, Kind::Histogram);
  return e ? e->histogram.get() : nullptr;
}

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // The exposition format requires every series of a family in one
  // contiguous group, but labeled series register lazily in observation
  // order — so walk families in first-seen order and gather their
  // entries.
  std::vector<std::string> families;
  for (const auto& e : entries_) {
    if (std::find(families.begin(), families.end(), e->name) ==
        families.end()) {
      families.push_back(e->name);
    }
  }
  for (const std::string& family : families) {
    bool first_of_family = true;
    for (const auto& e : entries_) {
      if (e->name != family) continue;
      if (first_of_family) {
        first_of_family = false;
        if (!e->help.empty()) {
          out += "# HELP " + e->name + " " + e->help + "\n";
        }
        out += "# TYPE " + e->name + " ";
        out += e->kind == Kind::Counter ? "counter"
               : e->kind == Kind::Gauge ? "gauge"
                                        : "histogram";
        out += "\n";
      }
      switch (e->kind) {
      case Kind::Counter:
        out += e->name + label_block(e->labels) + " " +
               fmt_num(e->counter->value()) + "\n";
        break;
      case Kind::Gauge:
        out += e->name + label_block(e->labels) + " " +
               fmt_num(e->gauge->value()) + "\n";
        break;
      case Kind::Histogram: {
        const HistogramSnapshot s = e->histogram->snapshot();
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < s.upper_bounds.size(); ++i) {
          cum += s.counts[i];
          out += e->name + "_bucket" +
                 label_block_with_le(e->labels, fmt_num(s.upper_bounds[i])) +
                 " " + std::to_string(cum) + "\n";
        }
        cum += s.counts.back();
        out += e->name + "_bucket" + label_block_with_le(e->labels, "+Inf") +
               " " + std::to_string(cum) + "\n";
        out += e->name + "_sum" + label_block(e->labels) + " " +
               fmt_num(s.sum) + "\n";
        out += e->name + "_count" + label_block(e->labels) + " " +
               std::to_string(s.count) + "\n";
        break;
      }
      }
    }
  }
  return out;
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string counters, gauges, histograms;
  for (const auto& e : entries_) {
    // The key is the Prometheus-style series name, escaped as a JSON
    // string (a metric or label containing `"` must stay valid JSON).
    const std::string key =
        "\"" + json_escape(e->name + label_block(e->labels)) + "\"";
    switch (e->kind) {
      case Kind::Counter:
        if (!counters.empty()) counters += ", ";
        counters += key + ": " + fmt_num(e->counter->value());
        break;
      case Kind::Gauge:
        if (!gauges.empty()) gauges += ", ";
        gauges += key + ": " + fmt_num(e->gauge->value());
        break;
      case Kind::Histogram: {
        const HistogramSnapshot s = e->histogram->snapshot();
        if (!histograms.empty()) histograms += ", ";
        std::string buckets;
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < s.upper_bounds.size(); ++i) {
          cum += s.counts[i];
          if (!buckets.empty()) buckets += ", ";
          buckets += "[" + fmt_num(s.upper_bounds[i]) + ", " +
                     std::to_string(cum) + "]";
        }
        histograms += key + ": {\"count\": " + std::to_string(s.count) +
                      ", \"sum\": " + fmt_num(s.sum) +
                      ", \"min\": " + fmt_num(s.min) +
                      ", \"max\": " + fmt_num(s.max) +
                      ", \"p50\": " + fmt_num(s.quantile(0.50)) +
                      ", \"p95\": " + fmt_num(s.quantile(0.95)) +
                      ", \"p99\": " + fmt_num(s.quantile(0.99)) +
                      ", \"buckets\": [" + buckets + "]}";
        break;
      }
    }
  }
  return "{\"counters\": {" + counters + "}, \"gauges\": {" + gauges +
         "}, \"histograms\": {" + histograms + "}}";
}

}  // namespace qes::obs
