// Bounded per-job lifecycle trace ring.
//
// Both execution stacks emit the same event stream: a job is released
// (sim arrival) or admitted/shed (runtime), assigned to a core, executed
// in per-quantum (speed, [t0, t1]) slices, and finalized at its deadline
// or completion; replans mark trigger firings. The ring is bounded — when
// full, the oldest events are overwritten and counted as dropped — so
// tracing is safe to leave on under heavy traffic. drain() empties the
// ring in arrival order; to_jsonl() renders events one JSON object per
// line (the schema is documented in docs/USAGE.md).
//
// Thread safety: push/drain/tail/dropped take an internal mutex, so any
// number of producers may share one ring (cluster nodes pushing
// concurrently included) and the scrape plane may tail() it live. In the
// common single-producer case (the engine or the runtime's trigger
// thread) the lock is effectively uncontended.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "core/job.hpp"
#include "core/time.hpp"

namespace qes::obs {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    Release,   ///< job entered the system (sim arrival / runtime admit)
    Shed,      ///< request rejected at admission (runtime only; job = 0)
    Assign,    ///< job placed on a core
    Exec,      ///< execution slice [t0, t1] at `speed` on `core`
    Finalize,  ///< job left the system; value = quality
    Replan,    ///< trigger fired; value = waiting-queue depth
  };

  Kind kind = Kind::Release;
  Time t = 0.0;       ///< virtual/model time of the event
  JobId job = 0;      ///< 0 when not job-scoped
  int core = -1;      ///< -1 when not core-scoped
  Time t0 = 0.0;      ///< Exec slice start
  Time t1 = 0.0;      ///< Exec slice end
  double speed = 0.0; ///< Exec slice speed (GHz)
  double value = 0.0; ///< kind-specific payload (see Kind comments)
  bool satisfied = false;  ///< Finalize: job completed its full demand
};

[[nodiscard]] const char* to_string(TraceEvent::Kind kind);

/// One JSON object (single line, no trailing newline).
[[nodiscard]] std::string to_json(const TraceEvent& e);

class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void push(const TraceEvent& event);

  /// Removes and returns all buffered events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> drain();

  /// Copies the newest `max_events` buffered events (oldest first)
  /// without consuming them — the live /tracez endpoint's peek.
  [[nodiscard]] std::vector<TraceEvent> tail(std::size_t max_events) const;

  /// Events overwritten because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Drains the ring and renders one JSON object per line.
  [[nodiscard]] std::string drain_jsonl();

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

}  // namespace qes::obs
