// Deterministic cluster replay: N RuntimeCores, one Dispatcher, one
// BudgetBroker, driven by a single merged event loop — the cluster
// analogue of runtime::run_lockstep (PR-1's conformance harness).
//
// The event menu per node is exactly the single-node one (arrivals
// routed to it, quantum firings, deadline expiries, plan-segment
// boundaries); the cluster adds broker ticks and kill events. Broker
// ticks are budget-only: they never advance a node's clock, so they
// cannot split a node's energy integral. Combined with the broker
// handing an N=1 cluster exactly H every period (no budget change → no
// forced replan), an N=1 cluster performs the *bitwise identical*
// sequence of advance/submit/replan operations as run_lockstep — which
// is what the cluster conformance test pins down.
//
// A kill at time t advances the victim to t, freezes its accounting
// (work finalized there stays there), re-dispatches the abandoned
// remainders to the survivors as fresh admissions (release t, deadline
// at least t + redispatch_deadline_ms, bumped to keep per-node
// deadlines agreeable), and immediately re-water-fills H across the
// survivors — so the budget reconverges within one broker period by
// construction, and Σ live budgets == H at every instant, which is what
// bounds total cluster power by H (each RuntimeCore asserts its own
// budget at every advance).
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/budget_broker.hpp"
#include "cluster/dispatch.hpp"
#include "cluster/stats.hpp"
#include "core/job.hpp"
#include "runtime/core.hpp"

namespace qes::cluster {

struct LockstepClusterConfig {
  /// Per-node model; power_budget is ignored (the broker owns it).
  runtime::RuntimeConfig node;
  int nodes = 2;
  /// Global power budget H split across nodes by the broker.
  Watts total_budget = 640.0;
  Time broker_period_ms = 20.0;
  /// Relative deadline stamped on re-dispatched (kill-orphaned) jobs.
  Time redispatch_deadline_ms = 150.0;
  DispatchPolicy dispatch = DispatchPolicy::CRR;
  std::uint64_t dispatch_seed = 1;
};

/// Fault injection: node `node` dies at virtual time `t`.
struct NodeKill {
  Time t = 0.0;
  int node = 0;
};

/// One entry of a chaos schedule, applied when virtual time reaches `t`:
///   Kill        node `node` dies permanently (work re-dispatched, as
///               NodeKill).
///   Drain       node `node` stops receiving new routes but finishes its
///               assigned work (maintenance mode).
///   Revive      un-drains node `node` (no-op on a dead or never-drained
///               node — kills are permanent, state is lost).
///   BudgetStep  the global budget becomes `budget` watts; the broker
///               re-splits immediately, forcing replans on every node
///               whose slice changed (so Σ budgets == H(t) always).
struct ChaosEvent {
  enum class Kind { Kill, Drain, Revive, BudgetStep };
  Time t = 0.0;
  Kind kind = Kind::Kill;
  int node = 0;
  Watts budget = 0.0;
};

/// Replays `jobs` (dense ids 1..n in arrival order, agreeable deadlines)
/// through the cluster. `kills` must be sorted by time; a kill after the
/// run drains is a no-op. Killing every node sheds the remaining work.
[[nodiscard]] ClusterRunStats run_cluster_lockstep(
    const LockstepClusterConfig& config, std::vector<Job> jobs,
    std::vector<NodeKill> kills = {});

/// Chaos-schedule variant: `chaos` must be sorted by time. With an empty
/// schedule this is exactly run_cluster_lockstep with no kills.
[[nodiscard]] ClusterRunStats run_cluster_lockstep_chaos(
    const LockstepClusterConfig& config, std::vector<Job> jobs,
    std::vector<ChaosEvent> chaos);

}  // namespace qes::cluster
