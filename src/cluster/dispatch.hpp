// Cluster-level request routing (the front end's "which node" decision).
//
// Three pluggable policies, all consuming the per-node queue-depth
// signal the nodes already export as obs gauges:
//
//   crr  cluster-level Cumulative Round-Robin — the paper's §IV-B job
//        distribution lifted one level up: the dealing cursor persists
//        across requests, so long-run per-node request counts stay
//        balanced with zero state exchange.
//   jsq  join-shortest-queue — route to the node with the smallest
//        admission-queue depth (ties break to the lowest index, so the
//        decision is deterministic given the depth vector).
//   p2c  power-of-two-choices — sample two distinct live nodes with the
//        dispatcher's own deterministic PRNG and take the shallower
//        queue; near-JSQ balance at O(1) state reads.
//
// A node is marked unroutable (draining or dead) by reporting an
// infinite depth; route() never selects it. The dispatcher itself is
// NOT thread-safe — the cluster front end serializes route() calls.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "core/prng.hpp"

namespace qes::cluster {

enum class DispatchPolicy { CRR, JSQ, PowerOfTwo };

/// Parses "crr" / "jsq" / "p2c"; nullopt on anything else.
[[nodiscard]] std::optional<DispatchPolicy> parse_dispatch_policy(
    const std::string& name);

[[nodiscard]] const char* dispatch_policy_name(DispatchPolicy policy);

class Dispatcher {
 public:
  /// `seed` feeds the p2c sampler only; crr/jsq are PRNG-free.
  Dispatcher(std::size_t nodes, DispatchPolicy policy, std::uint64_t seed = 1);

  /// Picks a node for the next request. `depths[i]` is node i's
  /// admission-queue depth; +infinity marks the node unroutable.
  /// Returns -1 when every node is unroutable.
  [[nodiscard]] int route(std::span<const double> depths);

  [[nodiscard]] DispatchPolicy policy() const { return policy_; }
  [[nodiscard]] std::size_t nodes() const { return nodes_; }

 private:
  [[nodiscard]] int route_crr(std::span<const double> depths);
  [[nodiscard]] int route_jsq(std::span<const double> depths) const;
  [[nodiscard]] int route_p2c(std::span<const double> depths);

  std::size_t nodes_;
  DispatchPolicy policy_;
  std::size_t cursor_ = 0;  // crr's persistent dealing cursor
  Xoshiro256 rng_;
};

}  // namespace qes::cluster
