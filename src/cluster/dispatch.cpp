#include "cluster/dispatch.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/assert.hpp"

namespace qes::cluster {

std::optional<DispatchPolicy> parse_dispatch_policy(const std::string& name) {
  if (name == "crr") return DispatchPolicy::CRR;
  if (name == "jsq") return DispatchPolicy::JSQ;
  if (name == "p2c") return DispatchPolicy::PowerOfTwo;
  return std::nullopt;
}

const char* dispatch_policy_name(DispatchPolicy policy) {
  switch (policy) {
    case DispatchPolicy::CRR: return "crr";
    case DispatchPolicy::JSQ: return "jsq";
    case DispatchPolicy::PowerOfTwo: return "p2c";
  }
  return "?";
}

Dispatcher::Dispatcher(std::size_t nodes, DispatchPolicy policy,
                       std::uint64_t seed)
    : nodes_(nodes), policy_(policy), rng_(seed) {
  QES_ASSERT(nodes > 0);
}

int Dispatcher::route(std::span<const double> depths) {
  QES_ASSERT(depths.size() == nodes_);
  switch (policy_) {
    case DispatchPolicy::CRR: return route_crr(depths);
    case DispatchPolicy::JSQ: return route_jsq(depths);
    case DispatchPolicy::PowerOfTwo: return route_p2c(depths);
  }
  return -1;
}

int Dispatcher::route_crr(std::span<const double> depths) {
  // Deal from the persistent cursor, skipping unroutable nodes; the
  // cursor advances past the chosen node exactly as C-RR's does.
  for (std::size_t k = 0; k < nodes_; ++k) {
    const std::size_t i = (cursor_ + k) % nodes_;
    if (std::isinf(depths[i])) continue;
    cursor_ = (i + 1) % nodes_;
    return static_cast<int>(i);
  }
  return -1;
}

int Dispatcher::route_jsq(std::span<const double> depths) const {
  int best = -1;
  for (std::size_t i = 0; i < nodes_; ++i) {
    if (std::isinf(depths[i])) continue;
    if (best < 0 || depths[i] < depths[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    }
  }
  return best;
}

int Dispatcher::route_p2c(std::span<const double> depths) {
  std::vector<std::size_t> live;
  live.reserve(nodes_);
  for (std::size_t i = 0; i < nodes_; ++i) {
    if (!std::isinf(depths[i])) live.push_back(i);
  }
  if (live.empty()) return -1;
  if (live.size() == 1) return static_cast<int>(live[0]);
  // Two distinct choices: the second draw samples [0, n-1) and skips
  // over the first draw's position.
  const std::size_t pos_a = rng_.uniform_index(live.size());
  std::size_t pos_b = rng_.uniform_index(live.size() - 1);
  if (pos_b >= pos_a) ++pos_b;
  const std::size_t a = live[pos_a];
  const std::size_t b = live[pos_b];
  const std::size_t pick =
      depths[b] < depths[a] ? b : (depths[a] < depths[b] ? a : std::min(a, b));
  return static_cast<int>(pick);
}

}  // namespace qes::cluster
