#include "cluster/stats.hpp"

#include <algorithm>
#include <cstdio>

namespace qes::cluster {

void finalize_aggregates(ClusterRunStats& stats) {
  stats.total_quality = 0.0;
  stats.max_quality = 0.0;
  stats.dynamic_energy = 0.0;
  stats.static_energy = 0.0;
  stats.peak_node_power = 0.0;
  stats.end_time = 0.0;
  stats.jobs_total = 0;
  stats.jobs_satisfied = 0;
  stats.jobs_partial = 0;
  stats.jobs_zero = 0;
  stats.jobs_discarded_rigid = 0;
  stats.replans = 0;
  for (const RunStats& s : stats.node_stats) {
    stats.total_quality += s.total_quality;
    stats.max_quality += s.max_quality;
    stats.dynamic_energy += s.dynamic_energy;
    stats.static_energy += s.static_energy;
    stats.peak_node_power = std::max(stats.peak_node_power, s.peak_power);
    stats.end_time = std::max(stats.end_time, s.end_time);
    stats.jobs_total += s.jobs_total;
    stats.jobs_satisfied += s.jobs_satisfied;
    stats.jobs_partial += s.jobs_partial;
    stats.jobs_zero += s.jobs_zero;
    stats.jobs_discarded_rigid += s.jobs_discarded_rigid;
    stats.replans += s.replans;
  }
  stats.normalized_quality =
      stats.max_quality > 0.0 ? stats.total_quality / stats.max_quality : 0.0;
}

std::string cluster_stats_to_json(const ClusterRunStats& stats) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"nodes\": %zu, \"total_quality\": %.6f, \"max_quality\": %.6f, "
      "\"normalized_quality\": %.6f, \"dynamic_energy_j\": %.3f, "
      "\"static_energy_j\": %.3f, \"peak_node_power_w\": %.3f, "
      "\"max_cluster_power_w\": %.3f, \"end_time_ms\": %.3f, "
      "\"jobs_total\": %zu, \"jobs_satisfied\": %zu, \"jobs_partial\": %zu, "
      "\"jobs_zero\": %zu, \"jobs_discarded_rigid\": %zu, "
      "\"replans\": %zu, \"route_shed\": %zu, \"node_shed\": %zu, "
      "\"redistributed\": %zu, \"redistribute_shed\": %zu, "
      "\"broker_decisions\": %zu",
      stats.node_stats.size(), stats.total_quality, stats.max_quality,
      stats.normalized_quality, stats.dynamic_energy, stats.static_energy,
      stats.peak_node_power, stats.max_cluster_power, stats.end_time,
      stats.jobs_total, stats.jobs_satisfied, stats.jobs_partial,
      stats.jobs_zero, stats.jobs_discarded_rigid, stats.replans,
      stats.route_shed, stats.node_shed, stats.redistributed,
      stats.redistribute_shed, stats.broker_log.size());
  std::string out = buf;
  out += ", \"node_stats\": [";
  for (std::size_t i = 0; i < stats.node_stats.size(); ++i) {
    if (i > 0) out += ", ";
    out += stats_to_json(stats.node_stats[i]);
  }
  out += "], \"killed\": [";
  for (std::size_t i = 0; i < stats.killed.size(); ++i) {
    if (i > 0) out += ", ";
    out += stats.killed[i] ? "true" : "false";
  }
  out += "]}";
  return out;
}

}  // namespace qes::cluster
