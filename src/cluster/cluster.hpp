// Live sharded cluster: N in-process runtime::Servers behind one front
// end, a broker thread re-water-filling the global budget H, and node
// lifecycle (start / drain / kill) with fault injection.
//
// Thread/ownership model (on top of each node's own, see
// src/runtime/README.md):
//
//   producers (any)  submit(): route under the cluster mutex (the
//                    Dispatcher consumes the nodes' queue-depth gauges),
//                    then push into the chosen node's admission queue —
//                    the node's own backpressure applies unchanged
//   broker (1)       every period: read each live node's budget-free
//                    power request, water-fill H across them
//                    (BudgetBroker), push changed budgets into the nodes
//                    (Server::set_power_budget replans under the node's
//                    model lock), export per-node gauges, and log the
//                    decision
//   lifecycle        drain_node() marks a node unroutable (it keeps its
//                    budget share and finishes its queue); kill_node()
//                    hard-stops it, re-dispatches its orphaned work to
//                    the survivors, and immediately re-water-fills H —
//                    so the budget reconverges within one broker period
//
// The cluster mutex serializes routing, lifecycle, and broker ticks;
// the per-node hot paths (admission, pacing workers) never touch it.
// Σ live node budgets == H after every broker decision, and each node's
// RuntimeCore asserts its instantaneous power against its own budget at
// every advance — together that bounds total cluster power by H.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/budget_broker.hpp"
#include "cluster/dispatch.hpp"
#include "cluster/stats.hpp"
#include "obs/http_exporter.hpp"
#include "obs/phase_profiler.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/server.hpp"

namespace qes::cluster {

struct ClusterConfig {
  /// Per-node server configuration; model.power_budget is overridden by
  /// the broker (nodes start at an equal share of total_budget).
  runtime::ServerConfig node;
  int nodes = 2;
  /// Global power budget H (watts), water-filled across the nodes.
  Watts total_budget = 640.0;
  /// Broker cadence (wall ms).
  double broker_period_wall_ms = 20.0;
  DispatchPolicy dispatch = DispatchPolicy::CRR;
  std::uint64_t dispatch_seed = 1;
  /// Admission-push timeout applied per routed request.
  std::chrono::milliseconds submit_timeout{5};
  /// Cluster-aggregate scrape endpoint (serves the qes_cluster registry):
  /// -1 disables, 0 binds an ephemeral port, else that port.
  int http_port = -1;
  /// Per-node scrape endpoints (each node's own qesd registry): -1
  /// disables, 0 gives every node an ephemeral port, else node i binds
  /// base + i. Read ports back via node_server(i).http_port().
  int node_http_base_port = -1;
  /// Per-node wire ingress (src/net/): -1 disables, 0 gives every node
  /// an ephemeral listener, else node i binds base + i. Read ports back
  /// via node_server(i).listen_port(). Clients address one node's
  /// request plane directly; cross-node balancing stays with the
  /// dispatcher (in-process submit()).
  int node_listen_base_port = -1;
  /// When > 0 and node.model.trace is unset, the cluster owns one
  /// TraceRing of this capacity per node (per-node job ids are dense
  /// 1..n, so nodes must not share a ring); see node_trace().
  std::size_t node_trace_capacity = 0;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts every node server and the broker thread.
  void start();

  /// Routes the request to a node and pushes it into that node's
  /// admission queue. Returns false when no node is routable (counted
  /// as route_shed) or the node's queue stayed full (the node counts it
  /// as shed). Safe from any number of producer threads.
  bool submit(const runtime::Request& request);

  /// Marks the node unroutable; it keeps serving its queue and is
  /// collected normally by drain_and_stop().
  void drain_node(int node);

  /// Fault injection: hard-stops the node, re-dispatches its orphaned
  /// jobs and queued requests to the surviving nodes, and immediately
  /// re-water-fills H across the survivors.
  void kill_node(int node);

  /// Stops the broker, drains every surviving node, and returns the
  /// cluster statistics. Idempotent.
  ClusterRunStats drain_and_stop();

  [[nodiscard]] int nodes() const { return cfg_.nodes; }
  [[nodiscard]] std::size_t route_shed() const { return route_shed_.load(); }

  /// Cluster virtual time: max over the nodes' clocks. Lock-free (the
  /// node set is fixed at construction and Server::now is thread-safe).
  [[nodiscard]] Time now() const;

  /// The cluster-level registry ("qes_cluster" prefix): per-node budget
  /// and demand gauges, routing/redistribution counters, planned power.
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }
  [[nodiscard]] obs::Registry& registry() { return registry_; }

  /// Per-node server access (e.g. each node's own "qesd" registry).
  [[nodiscard]] const runtime::Server& node_server(int node) const;

  /// The cluster-aggregate scrape port, or -1 when disabled. Valid
  /// after start(). (Per-node ports: node_server(i).http_port().)
  [[nodiscard]] int http_port() const;

  /// The cluster-owned trace ring of one node (nullptr unless
  /// node_trace_capacity > 0). Spans assembled from it must be tagged
  /// with the node id — see obs::assemble_spans.
  [[nodiscard]] obs::TraceRing* node_trace(int node) const;

 private:
  enum class NodeState { Live, Draining, Dead };
  struct Node {
    std::unique_ptr<runtime::Server> server;
    NodeState state = NodeState::Live;
    Watts budget = 0.0;
  };

  void broker_loop();
  /// Requires mu_. One broker decision over the current live set.
  void broker_tick_locked();
  /// Requires mu_. Queue depths from the nodes' obs gauges (+inf for
  /// unroutable nodes).
  [[nodiscard]] std::vector<double> depths_locked() const;

  ClusterConfig cfg_;
  BudgetBroker broker_;

  obs::Registry registry_;
  obs::PhaseProfiler profiler_;
  // One ring per node (declared before nodes_: each node's RuntimeConfig
  // points at its ring). Empty unless node_trace_capacity > 0.
  std::vector<std::unique_ptr<obs::TraceRing>> traces_;

  mutable std::mutex mu_;  // nodes' lifecycle state, dispatcher, broker log
  std::vector<Node> nodes_;
  Dispatcher dispatcher_;
  std::vector<RunStats> killed_stats_;
  std::vector<bool> killed_;
  std::vector<ClusterRunStats::BrokerDecision> broker_log_;
  Watts max_cluster_power_ = 0.0;
  std::size_t redistributed_ = 0;
  std::size_t redistribute_shed_ = 0;

  ClusterRunStats final_;  // cached by drain_and_stop()

  std::atomic<std::size_t> route_shed_{0};
  std::unique_ptr<obs::HttpExporter> exporter_;  // cluster-aggregate endpoint
  std::atomic<bool> stop_broker_{false};
  std::mutex broker_wake_mu_;
  std::condition_variable broker_wake_cv_;
  std::thread broker_thread_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace qes::cluster
