#include "cluster/lockstep.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/assert.hpp"

namespace qes::cluster {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Budget changes below this are ignored (no forced replan): it absorbs
// the fp noise of the broker's surplus arithmetic, so an N=1 cluster —
// whose split is exactly H every tick — never replans off-schedule.
constexpr double kBudgetTol = 1e-9;

// Applied-budget floor for live nodes: a saturated split gives an idle
// node 0 W, but RuntimeCore requires a positive budget (and the node
// may be routed work before the next broker decision). Never active for
// N=1, where the split is always exactly H.
constexpr Watts kMinLiveBudget = 1e-9;

}  // namespace

ClusterRunStats run_cluster_lockstep(const LockstepClusterConfig& config,
                                     std::vector<Job> jobs,
                                     std::vector<NodeKill> kills) {
  std::vector<ChaosEvent> chaos;
  chaos.reserve(kills.size());
  for (const NodeKill& k : kills) {
    chaos.push_back({k.t, ChaosEvent::Kind::Kill, k.node, 0.0});
  }
  return run_cluster_lockstep_chaos(config, std::move(jobs),
                                    std::move(chaos));
}

ClusterRunStats run_cluster_lockstep_chaos(const LockstepClusterConfig& config,
                                           std::vector<Job> jobs,
                                           std::vector<ChaosEvent> chaos) {
  QES_ASSERT(config.nodes >= 1 && config.total_budget > 0.0 &&
             config.broker_period_ms > 0.0 &&
             config.redispatch_deadline_ms > 0.0);
  const std::size_t nn = static_cast<std::size_t>(config.nodes);
  sort_by_release(jobs);
  QES_ASSERT_MSG(deadlines_agreeable(jobs),
                 "cluster replay requires agreeable deadlines");
  QES_ASSERT(std::is_sorted(
      chaos.begin(), chaos.end(),
      [](const ChaosEvent& a, const ChaosEvent& b) { return a.t < b.t; }));

  // Every node starts at the broker's zero-demand split: an equal share
  // of H (== H exactly for N=1, matching a standalone run_lockstep).
  runtime::RuntimeConfig node_cfg = config.node;
  node_cfg.power_budget = config.total_budget / static_cast<double>(nn);
  std::vector<runtime::RuntimeCore> cores;
  cores.reserve(nn);
  for (std::size_t i = 0; i < nn; ++i) cores.emplace_back(node_cfg);

  std::vector<bool> dead(nn, false);
  std::vector<bool> drained(nn, false);
  std::vector<Watts> budget(nn, node_cfg.power_budget);
  Dispatcher dispatcher(nn, config.dispatch, config.dispatch_seed);
  BudgetBroker broker(config.total_budget, config.broker_period_ms);

  ClusterRunStats out;
  out.node_stats.resize(nn);
  out.killed.assign(nn, false);

  // Routing signal: live jobs on the node (what the obs queue-depth
  // gauges report live); infinite depth marks a dead or drained node
  // unroutable.
  auto depths = [&] {
    std::vector<double> d(nn);
    for (std::size_t i = 0; i < nn; ++i) {
      if (dead[i] || drained[i]) {
        d[i] = kInf;
      } else {
        const runtime::CoreCounters c = cores[i].counters();
        d[i] = static_cast<double>(c.waiting + c.assigned);
      }
    }
    return d;
  };

  auto sample_cluster_power = [&](Time t) {
    Watts total = 0.0;
    for (std::size_t i = 0; i < nn; ++i) {
      if (!dead[i]) total += cores[i].counters().planned_power;
    }
    out.max_cluster_power = std::max(out.max_cluster_power, total);
    out.power_samples.push_back({t, total, broker.total_budget()});
  };

  // One broker decision: re-water-fill H from the nodes' budget-free
  // power requests. Budget-only — never advances a node's clock. A node
  // whose budget changed replans immediately (mandatory on decrease so
  // installed plans never exceed the new bound). Drained nodes still get
  // budget: they keep executing their assigned work.
  auto apply_broker = [&](Time t) {
    std::vector<Watts> demands(nn);
    std::size_t live = 0;
    for (std::size_t i = 0; i < nn; ++i) {
      demands[i] = dead[i] ? -1.0 : cores[i].power_request();
      if (!dead[i]) ++live;
    }
    if (live == 0) return;
    const BrokerSplit split = broker.split(demands);
    for (std::size_t i = 0; i < nn; ++i) {
      if (dead[i]) continue;
      const Watts granted = std::max(split.budgets[i], kMinLiveBudget);
      if (std::fabs(granted - budget[i]) > kBudgetTol) {
        budget[i] = granted;
        cores[i].set_power_budget(granted);
        cores[i].replan();
      }
    }
    out.broker_log.push_back({t, split.budgets});
    sample_cluster_power(t);
  };

  auto all_done = [&] {
    for (std::size_t i = 0; i < nn; ++i) {
      if (!dead[i] && !cores[i].all_finalized()) return false;
    }
    return true;
  };

  // A live node's own event menu — identical to run_lockstep's.
  auto node_event = [&](std::size_t i) {
    Time ev = kInf;
    if (node_cfg.quantum_ms > 0.0) ev = std::min(ev, cores[i].next_quantum());
    ev = std::min(ev, cores[i].earliest_live_deadline());
    ev = std::min(ev, cores[i].next_plan_event());
    return ev;
  };

  const std::size_t n = jobs.size();
  const Time final_deadline = jobs.empty() ? 0.0 : jobs.back().deadline;
  std::size_t next = 0;
  std::size_t chaos_idx = 0;
  Time next_broker = config.broker_period_ms;
  apply_broker(0.0);  // log the initial equal split

  while (next < n || !all_done()) {
    Time t_nodes = kInf;
    if (next < n) t_nodes = std::min(t_nodes, jobs[next].release);
    for (std::size_t i = 0; i < nn; ++i) {
      if (!dead[i]) t_nodes = std::min(t_nodes, node_event(i));
    }
    const Time t_chaos = chaos_idx < chaos.size() ? chaos[chaos_idx].t : kInf;
    const Time t = std::min({t_nodes, t_chaos, next_broker});
    QES_ASSERT_MSG(std::isfinite(t), "cluster event loop stalled");

    if (t_chaos <= t + kTimeEps) {
      const ChaosEvent ev = chaos[chaos_idx];
      ++chaos_idx;

      if (ev.kind == ChaosEvent::Kind::BudgetStep) {
        broker.set_total_budget(ev.budget);
        // Re-split immediately: no node may keep planning against the
        // old H for even one event.
        apply_broker(ev.t);
        continue;
      }

      QES_ASSERT(ev.node >= 0 && static_cast<std::size_t>(ev.node) < nn);
      const std::size_t ks = static_cast<std::size_t>(ev.node);

      if (ev.kind == ChaosEvent::Kind::Drain) {
        if (!dead[ks]) drained[ks] = true;
        continue;
      }
      if (ev.kind == ChaosEvent::Kind::Revive) {
        if (!dead[ks]) drained[ks] = false;
        continue;
      }

      // Kill.
      if (dead[ks]) continue;
      runtime::RuntimeCore& victim = cores[ks];
      victim.advance(std::max(ev.t, victim.now()));
      const std::vector<runtime::AbandonedJob> orphans =
          victim.abandon_unfinalized();
      out.node_stats[ks] = victim.finish(victim.now());
      dead[ks] = true;
      out.killed[ks] = true;
      // Orphans become fresh admissions on the survivors: release now,
      // deadline pushed out by the redispatch window (bumped up to the
      // destination's last deadline to stay agreeable).
      std::vector<bool> touched(nn, false);
      for (const runtime::AbandonedJob& ab : orphans) {
        const int j = dispatcher.route(depths());
        if (j < 0) {
          ++out.redistribute_shed;
          continue;
        }
        ++out.redistributed;
        runtime::RuntimeCore& dst = cores[static_cast<std::size_t>(j)];
        dst.advance(std::max(ev.t, dst.now()));
        Job nj;
        nj.id = dst.admitted() + 1;
        nj.release = dst.now();
        nj.deadline =
            std::max(ev.t + config.redispatch_deadline_ms, dst.horizon());
        nj.demand = ab.remaining;
        nj.partial_ok = ab.partial_ok;
        nj.weight = ab.weight;
        dst.submit(nj);
        touched[static_cast<std::size_t>(j)] = true;
      }
      for (std::size_t i = 0; i < nn; ++i) {
        if (touched[i] && cores[i].check_triggers()) cores[i].replan();
      }
      // The dead node's budget is redistributed immediately — the
      // broker reconverges within one period by construction.
      apply_broker(ev.t);
      continue;
    }

    if (next_broker <= t + kTimeEps) {
      apply_broker(next_broker);
      next_broker += config.broker_period_ms;
      continue;
    }

    // Normal node event(s) and/or arrivals at t — each involved node
    // performs exactly run_lockstep's advance/submit/trigger sequence.
    std::vector<bool> touched(nn, false);
    for (std::size_t i = 0; i < nn; ++i) {
      if (!dead[i] && node_event(i) <= t + kTimeEps) {
        cores[i].advance(std::max(t, cores[i].now()));
        touched[i] = true;
      }
    }
    while (next < n && jobs[next].release <= t + kTimeEps) {
      const int j = dispatcher.route(depths());
      if (j < 0) {
        ++out.route_shed;
        ++next;
        continue;
      }
      runtime::RuntimeCore& dst = cores[static_cast<std::size_t>(j)];
      dst.advance(std::max(t, dst.now()));
      touched[static_cast<std::size_t>(j)] = true;
      Job nj = jobs[next];
      nj.id = dst.admitted() + 1;
      dst.submit(nj);
      ++next;
    }
    for (std::size_t i = 0; i < nn; ++i) {
      if (touched[i] && cores[i].check_triggers()) cores[i].replan();
    }
  }

  for (std::size_t i = 0; i < nn; ++i) {
    if (dead[i]) continue;
    out.node_stats[i] =
        cores[i].finish(std::max(final_deadline, cores[i].horizon()));
  }

  finalize_aggregates(out);
  return out;
}

}  // namespace qes::cluster
