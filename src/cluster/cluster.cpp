#include "cluster/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "core/assert.hpp"
#include "policy/des_planner.hpp"

namespace qes::cluster {

namespace {

// Budget pushes below this are skipped (no forced replan on the node);
// absorbs the broker's surplus-arithmetic fp noise.
constexpr double kBudgetTol = 1e-9;

// A saturated split can hand an idle live node exactly 0 W, but a live
// node must keep a positive budget (RuntimeCore requires it, and the
// node may receive work before the next broker period). The applied
// budget is floored at a negligible trickle; the logged decision stays
// the pure water-fill split.
constexpr Watts kMinLiveBudget = 1e-9;

}  // namespace

Cluster::Cluster(ClusterConfig config)
    : cfg_(std::move(config)),
      broker_(cfg_.total_budget, cfg_.broker_period_wall_ms),
      profiler_(&registry_, policy::kReplanPhaseMetric,
                policy::kReplanPhaseHelp, {{"plane", "cluster"}}),
      dispatcher_(static_cast<std::size_t>(std::max(cfg_.nodes, 1)),
                  cfg_.dispatch, cfg_.dispatch_seed) {
  QES_ASSERT(cfg_.nodes >= 1 && cfg_.total_budget > 0.0 &&
             cfg_.broker_period_wall_ms > 0.0);
  const Watts share = cfg_.total_budget / static_cast<double>(cfg_.nodes);
  nodes_.resize(static_cast<std::size_t>(cfg_.nodes));
  killed_stats_.resize(nodes_.size());
  killed_.assign(nodes_.size(), false);
  int node_id = 0;
  for (Node& n : nodes_) {
    runtime::ServerConfig sc = cfg_.node;
    sc.model.power_budget = share;
    if (cfg_.node_trace_capacity > 0 && sc.model.trace == nullptr) {
      traces_.push_back(
          std::make_unique<obs::TraceRing>(cfg_.node_trace_capacity));
      sc.model.trace = traces_.back().get();
    }
    if (cfg_.node_http_base_port >= 0) {
      sc.http_port = cfg_.node_http_base_port == 0
                         ? 0
                         : cfg_.node_http_base_port + node_id;
    }
    if (cfg_.node_listen_base_port >= 0) {
      sc.listen_port = cfg_.node_listen_base_port == 0
                           ? 0
                           : cfg_.node_listen_base_port + node_id;
    }
    n.server = std::make_unique<runtime::Server>(std::move(sc));
    n.budget = share;
    ++node_id;
  }
}

Cluster::~Cluster() {
  if (started_ && !stopped_) (void)drain_and_stop();
}

void Cluster::start() {
  QES_ASSERT_MSG(!started_, "start() may be called once");
  started_ = true;
  for (Node& n : nodes_) n.server->start();
  if (cfg_.http_port >= 0) {
    // The aggregate endpoint serves ONLY the cluster registry
    // (qes_cluster_*): concatenating the node registries here would
    // repeat the qesd_* families and break the exposition format — each
    // node's qesd registry is scraped on its own listener instead.
    exporter_ = std::make_unique<obs::HttpExporter>(cfg_.http_port);
    exporter_->handle("/metrics", "text/plain; version=0.0.4",
                      [this] { return registry_.to_prometheus(); });
    exporter_->handle("/metrics.json", "application/json",
                      [this] { return registry_.to_json(); });
    exporter_->handle("/healthz", "application/json", [this] {
      std::string ports;
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        if (!ports.empty()) ports += ", ";
        ports += std::to_string(nodes_[i].server->http_port());
      }
      return "{\"status\": \"ok\", \"nodes\": " +
             std::to_string(nodes_.size()) +
             ", \"t_virtual_ms\": " + std::to_string(now()) +
             ", \"node_http_ports\": [" + ports + "]}\n";
    });
    exporter_->handle("/tracez", "application/x-ndjson", [this] {
      std::string out;
      for (std::size_t i = 0; i < traces_.size(); ++i) {
        for (const obs::TraceEvent& e : traces_[i]->tail(64)) {
          out += "{\"node\": " + std::to_string(i) +
                 ", \"event\": " + obs::to_json(e) + "}\n";
        }
      }
      return out;
    });
    exporter_->start();
  }
  broker_thread_ = std::thread([this] { broker_loop(); });
}

int Cluster::http_port() const {
  return exporter_ ? exporter_->port() : -1;
}

obs::TraceRing* Cluster::node_trace(int node) const {
  QES_ASSERT(node >= 0 && node < cfg_.nodes);
  const std::size_t k = static_cast<std::size_t>(node);
  return k < traces_.size() ? traces_[k].get() : nullptr;
}

std::vector<double> Cluster::depths_locked() const {
  std::vector<double> d(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].state != NodeState::Live) {
      d[i] = std::numeric_limits<double>::infinity();
      continue;
    }
    // The routing signal the nodes already export: the admission
    // queue-depth gauge, refreshed by each node's trigger tick.
    const obs::Gauge* g = nodes_[i].server->registry().find_gauge(
        "qesd_admission_queue_depth");
    d[i] = g != nullptr ? g->value() : 0.0;
  }
  return d;
}

bool Cluster::submit(const runtime::Request& request) {
  int target = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    target = dispatcher_.route(depths_locked());
    if (target < 0) {
      route_shed_.fetch_add(1, std::memory_order_relaxed);
      registry_
          .counter("qes_cluster_route_shed_total",
                   "requests with no routable node")
          .inc();
      return false;
    }
  }
  // Push outside the cluster mutex: the node's own backpressure (and
  // shed accounting) applies. A node killed between route and push just
  // sheds the request at its closed admission queue.
  return nodes_[static_cast<std::size_t>(target)].server->submit(
      request, cfg_.submit_timeout);
}

void Cluster::drain_node(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  QES_ASSERT(node >= 0 && node < cfg_.nodes);
  Node& n = nodes_[static_cast<std::size_t>(node)];
  if (n.state == NodeState::Live) n.state = NodeState::Draining;
}

void Cluster::kill_node(int node) {
  std::lock_guard<std::mutex> lock(mu_);
  QES_ASSERT(node >= 0 && node < cfg_.nodes);
  const std::size_t k = static_cast<std::size_t>(node);
  Node& victim = nodes_[k];
  if (victim.state == NodeState::Dead) return;
  victim.state = NodeState::Dead;
  runtime::Server::KillReport report = victim.server->kill();
  killed_[k] = true;
  killed_stats_[k] = report.stats;

  // Re-dispatch the orphans: abandoned jobs re-enter as fresh requests
  // with their remaining demand (the destination stamps a fresh
  // deadline at admission), never-admitted queued requests go verbatim.
  auto redispatch = [&](const runtime::Request& r) {
    const int j = dispatcher_.route(depths_locked());
    if (j < 0) {
      ++redistribute_shed_;
      registry_
          .counter("qes_cluster_redistribute_shed_total",
                   "kill-orphaned work with no surviving node")
          .inc();
      return;
    }
    ++redistributed_;
    registry_
        .counter("qes_cluster_redistributed_total",
                 "kill-orphaned work re-dispatched to a survivor")
        .inc();
    // A full destination queue sheds at the destination (its counter).
    (void)nodes_[static_cast<std::size_t>(j)].server->submit(
        r, cfg_.submit_timeout);
  };
  for (const runtime::AbandonedJob& ab : report.abandoned) {
    redispatch(runtime::Request{.demand = ab.remaining,
                                .partial_ok = ab.partial_ok,
                                .weight = ab.weight});
  }
  for (const runtime::Request& r : report.pending) redispatch(r);

  // The dead node's budget share is re-water-filled immediately — the
  // cluster reconverges within one broker period of the fault.
  broker_tick_locked();
}

void Cluster::broker_tick_locked() {
  auto timer = profiler_.phase("broker_tick");
  const std::size_t nn = nodes_.size();
  std::vector<Watts> demands(nn);
  std::size_t live = 0;
  Time t = 0.0;
  for (std::size_t i = 0; i < nn; ++i) {
    if (nodes_[i].state == NodeState::Dead) {
      demands[i] = -1.0;
      continue;
    }
    demands[i] = nodes_[i].server->power_request();
    t = std::max(t, nodes_[i].server->now());
    ++live;
  }
  if (live == 0) return;
  const BrokerSplit split = broker_.split(demands);

  for (std::size_t i = 0; i < nn; ++i) {
    const obs::Labels label{{"node", std::to_string(i)}};
    registry_
        .gauge("qes_cluster_node_demand_watts",
               "budget-free power request reported by the node", label)
        .set(std::max(demands[i], 0.0));
    registry_
        .gauge("qes_cluster_node_budget_watts",
               "power budget the broker granted the node", label)
        .set(split.budgets[i]);
    if (nodes_[i].state == NodeState::Dead) continue;
    const Watts granted = std::max(split.budgets[i], kMinLiveBudget);
    if (std::fabs(granted - nodes_[i].budget) > kBudgetTol) {
      nodes_[i].budget = granted;
      nodes_[i].server->set_power_budget(granted);
    }
  }
  // Sample only after every node holds its new budget: Σ budgets == H
  // and each node plans within its own budget, so Σ planned <= H.
  Watts planned = 0.0;
  for (std::size_t i = 0; i < nn; ++i) {
    if (nodes_[i].state == NodeState::Dead) continue;
    planned += nodes_[i].server->snapshot().planned_power_w;
  }
  max_cluster_power_ = std::max(max_cluster_power_, planned);
  registry_
      .gauge("qes_cluster_planned_power_watts",
             "instantaneous planned power summed over live nodes")
      .set(planned);
  registry_.gauge("qes_cluster_live_nodes", "nodes accepting budget")
      .set(static_cast<double>(live));
  broker_log_.push_back({t, split.budgets});
}

void Cluster::broker_loop() {
  const auto period = std::chrono::duration<double, std::milli>(
      cfg_.broker_period_wall_ms);
  while (!stop_broker_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lock(broker_wake_mu_);
      broker_wake_cv_.wait_for(lock, period, [this] {
        return stop_broker_.load(std::memory_order_acquire);
      });
    }
    if (stop_broker_.load(std::memory_order_acquire)) break;
    std::lock_guard<std::mutex> lock(mu_);
    broker_tick_locked();
  }
}

ClusterRunStats Cluster::drain_and_stop() {
  QES_ASSERT_MSG(started_, "drain_and_stop() requires start()");
  if (stopped_) return final_;
  {
    std::lock_guard<std::mutex> lock(broker_wake_mu_);
    stop_broker_.store(true, std::memory_order_release);
  }
  broker_wake_cv_.notify_all();
  if (broker_thread_.joinable()) broker_thread_.join();

  ClusterRunStats out;
  out.node_stats.resize(nodes_.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    out.node_stats[i] = killed_[i] ? killed_stats_[i]
                                   : nodes_[i].server->drain_and_stop();
    out.node_shed += nodes_[i].server->shed();
  }
  out.killed = killed_;
  out.route_shed = route_shed_.load(std::memory_order_relaxed);
  out.redistributed = redistributed_;
  out.redistribute_shed = redistribute_shed_;
  out.max_cluster_power = max_cluster_power_;
  out.broker_log = broker_log_;
  finalize_aggregates(out);
  stopped_ = true;
  final_ = out;
  // Stop the aggregate endpoint last: it stays scrapable while the
  // nodes drain (their own exporters stop as each node finishes).
  if (exporter_) exporter_->stop();
  return out;
}

Time Cluster::now() const {
  Time t = 0.0;
  for (const Node& n : nodes_) t = std::max(t, n.server->now());
  return t;
}

const runtime::Server& Cluster::node_server(int node) const {
  QES_ASSERT(node >= 0 && node < cfg_.nodes);
  return *nodes_[static_cast<std::size_t>(node)].server;
}

}  // namespace qes::cluster
