#include "cluster/budget_broker.hpp"

#include <span>

#include "alloc/waterfill.hpp"
#include "core/assert.hpp"

namespace qes::cluster {

BudgetBroker::BudgetBroker(Watts total_budget, Time period_ms)
    : total_budget_(total_budget), period_ms_(period_ms) {
  QES_ASSERT(total_budget > 0.0 && period_ms > 0.0);
}

void BudgetBroker::set_total_budget(Watts h) {
  QES_ASSERT_MSG(h > 0.0, "budget step must keep H positive");
  total_budget_ = h;
}

BrokerSplit broker_split(const std::vector<Watts>& demands,
                         Watts total_budget) {
  QES_ASSERT(total_budget > 0.0 && !demands.empty());
  const std::size_t n = demands.size();

  std::vector<std::size_t> live;
  std::vector<Work> caps;
  live.reserve(n);
  caps.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (demands[i] < 0.0) continue;  // dead node
    live.push_back(i);
    caps.push_back(demands[i]);
  }
  QES_ASSERT_MSG(!live.empty(), "broker_split needs at least one live node");

  // Level 1 of the hierarchy: water-fill H across the live nodes'
  // demands — the same primitive the per-node replan uses across cores.
  const WaterfillResult wf =
      waterfill_volumes(std::span<const Work>(caps), total_budget);

  BrokerSplit out;
  out.filled.assign(n, 0.0);
  out.budgets.assign(n, 0.0);
  Watts used = 0.0;
  for (std::size_t k = 0; k < live.size(); ++k) {
    out.filled[live[k]] = wf.alloc[k];
    used += wf.alloc[k];
  }
  // Unclaimed headroom goes back in equal shares so Σ budgets == H:
  // slack stays usable between broker periods, and an N=1 cluster runs
  // at exactly H. Equal shares keep the split monotone in each node's
  // own demand (WF share is monotone; the surplus term only shrinks by
  // the amount every node's shrinks).
  const Watts surplus =
      (total_budget - used) / static_cast<double>(live.size());
  for (std::size_t i : live) {
    out.budgets[i] = out.filled[i] + std::max(surplus, 0.0);
  }
  return out;
}

}  // namespace qes::cluster
