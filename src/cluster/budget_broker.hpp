// BudgetBroker: hierarchical water-filling of the global power budget.
//
// The paper splits one server's budget H across its cores by
// water-filling the per-core power requests (§IV-C); Vaze & Nair show
// the same structure is optimal for splitting a *sum* power constraint
// across servers. So the cluster runs WF twice: the broker water-fills
// H across nodes from their reported budget-free power requests
// (RuntimeCore::power_request()), and each node's own replan
// water-fills its slice across cores. The node demand is the exact
// quantity its next replan would compute as `total_request`, so a node
// whose slice covers its demand plans exactly as it would standalone.
//
// Two invariants the property tests pin down (tests/cluster_broker_test):
//
//   conservation  Σ filled == min(H, Σ demand)   (from alloc/waterfill)
//   monotonicity  a node's budget never decreases when only its own
//                 demand grows (fairness: reporting more load never
//                 costs you power)
//
// The headroom H − Σ filled is handed back in equal shares, so the live
// budgets always sum to exactly H: a node hit by a load spike between
// broker periods can use slack the others did not claim, and an N=1
// cluster always runs at budget H — which is what makes the N=1
// lockstep conformance against a standalone server *exact*.
//
// A saturated split (zero headroom) can hand an idle live node exactly
// 0 W; the owners floor the *applied* budget at a negligible positive
// trickle, because a live RuntimeCore requires budget > 0 and may be
// routed work before the next decision. The split itself stays pure.
#pragma once

#include <vector>

#include "core/time.hpp"

namespace qes::cluster {

/// One broker decision. `filled` is the raw water-fill allocation
/// (Σ == min(H, Σ demand)); `budgets` adds the equal-share headroom
/// (Σ == H across live nodes). Dead nodes (negative demand) get zero in
/// both.
struct BrokerSplit {
  std::vector<Watts> filled;
  std::vector<Watts> budgets;
};

/// Splits `total_budget` across nodes from their reported demands.
/// demands[i] < 0 marks node i dead (allocated zero); at least one node
/// must be live.
[[nodiscard]] BrokerSplit broker_split(const std::vector<Watts>& demands,
                                       Watts total_budget);

/// The periodic re-water-filling policy: holds the global budget H and
/// the cadence; the owner (cluster::Cluster live, cluster lockstep in
/// sim) supplies the clock and the demand reports.
class BudgetBroker {
 public:
  BudgetBroker(Watts total_budget, Time period_ms);

  [[nodiscard]] BrokerSplit split(const std::vector<Watts>& demands) const {
    return broker_split(demands, total_budget_);
  }

  [[nodiscard]] Watts total_budget() const { return total_budget_; }
  [[nodiscard]] Time period_ms() const { return period_ms_; }

  /// Mid-run budget step (brownout / recovery chaos): subsequent splits
  /// water-fill the new H. The owner must force a re-split immediately
  /// so no node keeps running against the old bound.
  void set_total_budget(Watts h);

 private:
  Watts total_budget_;
  Time period_ms_;
};

}  // namespace qes::cluster
