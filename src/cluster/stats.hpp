// Cluster-level run statistics: per-node RunStats plus the aggregates
// and cluster-only accounting (routing sheds, kill redistribution, the
// broker decision log). Shared by the deterministic lockstep replay
// (lockstep.hpp) and the live multi-threaded cluster (cluster.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/time.hpp"
#include "sim/metrics.hpp"

namespace qes::cluster {

struct ClusterRunStats {
  std::vector<RunStats> node_stats;
  std::vector<bool> killed;

  // Cluster aggregates, filled by finalize_aggregates() (sums over
  // nodes unless noted).
  double total_quality = 0.0;
  double max_quality = 0.0;
  double normalized_quality = 0.0;  ///< total / max
  Joules dynamic_energy = 0.0;
  Joules static_energy = 0.0;
  Watts peak_node_power = 0.0;  ///< max over nodes of per-node peak
  Time end_time = 0.0;          ///< max over nodes
  std::size_t jobs_total = 0;
  std::size_t jobs_satisfied = 0;
  std::size_t jobs_partial = 0;
  std::size_t jobs_zero = 0;
  std::size_t jobs_discarded_rigid = 0;
  std::size_t replans = 0;

  // Cluster-level accounting. Conservation, with K submitted requests
  // (lockstep; the live cluster adds per-node admission sheds):
  //   K == route_shed + redistribute_shed [+ Σ node shed] + Σ jobs_total
  // — every request lands in exactly one node's statistics or is shed.
  std::size_t route_shed = 0;         ///< arrivals with no routable node
  std::size_t redistributed = 0;      ///< kill-orphans re-dispatched
  std::size_t redistribute_shed = 0;  ///< kill-orphans with no survivor
  std::size_t node_shed = 0;          ///< Σ per-node admission sheds (live)

  /// Total planned cluster power sampled at every broker decision;
  /// bounded by H (each node's advance asserts its own budget).
  Watts max_cluster_power = 0.0;

  /// Every broker decision (initial split, periodic ticks, kill
  /// re-splits), in time order. budgets[i] == 0 for dead nodes.
  struct BrokerDecision {
    Time t = 0.0;
    std::vector<Watts> budgets;
  };
  std::vector<BrokerDecision> broker_log;

  /// Total planned cluster power and the global budget H in force,
  /// sampled at every broker decision — the observable form of the
  /// "Σ applied power <= H at every broker tick" invariant (H varies
  /// under budget-step chaos).
  struct PowerSample {
    Time t = 0.0;
    Watts power = 0.0;
    Watts budget = 0.0;
  };
  std::vector<PowerSample> power_samples;
};

/// Recomputes the aggregate fields from node_stats.
void finalize_aggregates(ClusterRunStats& stats);

/// One-line JSON rendering: cluster aggregates plus a per-node array of
/// stats_to_json objects.
[[nodiscard]] std::string cluster_stats_to_json(const ClusterRunStats& stats);

}  // namespace qes::cluster
