// Volume water-filling: the concave allocation core of Quality-OPT.
//
// Given items with demand caps w_j, optional baseline (already processed)
// volumes b_j, and a work capacity C, allocate incremental volumes x_j >= 0
// with b_j + x_j <= w_j and sum(x_j) <= C so as to maximize sum f(b_j + x_j)
// for ANY shared concave increasing f. The optimum fills all items to a
// common level L (clamped to their caps): this level is exactly the
// paper's "d-mean" of an interval when baselines are zero (§III-A).
#pragma once

#include <span>
#include <vector>

#include "core/time.hpp"

namespace qes {

struct WaterfillResult {
  /// Incremental allocation per item (excludes the baseline).
  std::vector<Work> alloc;
  /// Final water level L. +infinity when the capacity satisfies every
  /// item (the paper defines the d-mean of such an interval as infinite).
  double level = 0.0;
  /// True when every item reached its cap.
  bool all_satisfied = false;
  /// Work actually allocated: min(C, sum of remaining demand).
  Work used = 0.0;
};

/// Water-fill with per-item baselines. Preconditions: caps.size() ==
/// baselines.size(), 0 <= baselines[i] <= caps[i], capacity >= 0.
[[nodiscard]] WaterfillResult waterfill_volumes(std::span<const Work> caps,
                                                std::span<const Work> baselines,
                                                Work capacity);

/// Water-fill with zero baselines (the Quality-OPT d-mean computation).
[[nodiscard]] WaterfillResult waterfill_volumes(std::span<const Work> caps,
                                                Work capacity);

/// Reusable buffers for the scratch variant below (contents are
/// implementation detail; callers just keep one alive across calls).
struct WaterfillScratch {
  struct Event {
    double value;
    int delta;  // +1 item starts filling, -1 item saturates
  };
  std::vector<Event> events;
  std::vector<Work> zeros;
};

/// Identical arithmetic to waterfill_volumes, but fills `out` and draws
/// temporaries from `scratch` so steady-state callers stay off the heap.
void waterfill_volumes_into(std::span<const Work> caps,
                            std::span<const Work> baselines, Work capacity,
                            WaterfillScratch& scratch, WaterfillResult& out);

/// Zero-baseline scratch variant.
void waterfill_volumes_into(std::span<const Work> caps, Work capacity,
                            WaterfillScratch& scratch, WaterfillResult& out);

}  // namespace qes
