// Marginal-equalizing allocation for HETEROGENEOUS concave quality
// functions (extension; the paper assumes one shared f, §II-A).
//
// Maximize sum_j f_j(p_j) s.t. sum_j p_j <= C, 0 <= p_j <= w_j, with each
// f_j concave and increasing. KKT: there is a level lambda >= 0 with
//   p_j = clamp( (f_j')^{-1}(lambda), 0, w_j ),
// found here by bisection on lambda (marginals are evaluated by central
// finite differences, so any smooth f works, including the measured
// curves from the search substrate). With identical f_j this reduces to
// the volume water-filling of alloc/waterfill.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/quality.hpp"
#include "core/time.hpp"

namespace qes {

struct MarginalAllocResult {
  std::vector<Work> alloc;
  /// The common marginal value lambda at the optimum (0 when capacity
  /// satisfies everyone).
  double lambda = 0.0;
  Work used = 0.0;
};

/// Allocates `capacity` across items with caps `caps` and per-item
/// quality functions `fs` (fs.size() == caps.size()). `fs` entries are
/// plain value->quality callables. Optional `baselines` hold volume each
/// item already received: the optimum then maximizes
/// sum f_j(b_j + x_j) over the NEW volume x_j (returned in alloc).
[[nodiscard]] MarginalAllocResult marginal_allocate(
    std::span<const Work> caps,
    std::span<const std::function<double(Work)>> fs, Work capacity,
    std::span<const Work> baselines = {});

/// Convenience overload for QualityFunction objects.
[[nodiscard]] MarginalAllocResult marginal_allocate(
    std::span<const Work> caps, std::span<const QualityFunction> fs,
    Work capacity);

}  // namespace qes
