#include "alloc/waterfill.hpp"

#include <algorithm>
#include <limits>

#include "core/assert.hpp"

namespace qes {

namespace {

Work clamp_alloc(double level, Work baseline, Work cap) {
  return std::clamp(level - baseline, 0.0, cap - baseline);
}

}  // namespace

WaterfillResult waterfill_volumes(std::span<const Work> caps,
                                  std::span<const Work> baselines,
                                  Work capacity) {
  QES_ASSERT(caps.size() == baselines.size());
  const std::size_t n = caps.size();
  WaterfillResult r;
  r.alloc.assign(n, 0.0);

  Work remaining_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    QES_ASSERT_MSG(baselines[i] >= -kTimeEps &&
                       baselines[i] <= caps[i] + kTimeEps,
                   "baseline must lie in [0, cap]");
    remaining_total += std::max(0.0, caps[i] - baselines[i]);
  }

  if (capacity + kTimeEps >= remaining_total) {
    for (std::size_t i = 0; i < n; ++i) {
      r.alloc[i] = std::max(0.0, caps[i] - baselines[i]);
    }
    r.level = std::numeric_limits<double>::infinity();
    r.all_satisfied = true;
    r.used = remaining_total;
    return r;
  }
  if (capacity <= 0.0 || n == 0) {
    double min_base = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (caps[i] > baselines[i] + kTimeEps) {
        min_base = std::min(min_base, static_cast<double>(baselines[i]));
      }
    }
    r.level = std::isfinite(min_base) ? min_base : 0.0;
    return r;
  }

  // Sweep the water level across the breakpoints {b_i} (item becomes
  // active) and {w_i} (item saturates); between breakpoints the fill rate
  // is the number of active items.
  struct Event {
    double value;
    int delta;  // +1 item starts filling, -1 item saturates
  };
  std::vector<Event> events;
  events.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (caps[i] > baselines[i] + kTimeEps) {
      events.push_back({static_cast<double>(baselines[i]), +1});
      events.push_back({static_cast<double>(caps[i]), -1});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.delta > b.delta;  // starts before ends at the same level
  });

  double level = events.front().value;
  Work poured = 0.0;
  int active = 0;
  std::size_t k = 0;
  while (k < events.size()) {
    // Apply all events at the current level.
    while (k < events.size() && events[k].value <= level + kTimeEps) {
      active += events[k].delta;
      ++k;
    }
    if (k == events.size()) break;
    const double next = events[k].value;
    if (active > 0) {
      const Work span_volume = active * (next - level);
      if (poured + span_volume >= capacity - kTimeEps) {
        level += (capacity - poured) / active;
        poured = capacity;
        break;
      }
      poured += span_volume;
    }
    level = next;
  }
  QES_ASSERT_MSG(poured <= capacity + kTimeEps,
                 "water-fill must not exceed capacity");

  r.level = level;
  for (std::size_t i = 0; i < n; ++i) {
    r.alloc[i] = clamp_alloc(level, baselines[i], caps[i]);
    r.used += r.alloc[i];
  }
  return r;
}

WaterfillResult waterfill_volumes(std::span<const Work> caps, Work capacity) {
  const std::vector<Work> zeros(caps.size(), 0.0);
  return waterfill_volumes(caps, zeros, capacity);
}

}  // namespace qes
