#include "alloc/waterfill.hpp"

#include <algorithm>
#include <limits>

#include "core/assert.hpp"

namespace qes {

namespace {

Work clamp_alloc(double level, Work baseline, Work cap) {
  return std::clamp(level - baseline, 0.0, cap - baseline);
}

}  // namespace

void waterfill_volumes_into(std::span<const Work> caps,
                            std::span<const Work> baselines, Work capacity,
                            WaterfillScratch& scratch, WaterfillResult& out) {
  QES_ASSERT(caps.size() == baselines.size());
  const std::size_t n = caps.size();
  out.alloc.assign(n, 0.0);
  out.level = 0.0;
  out.all_satisfied = false;
  out.used = 0.0;

  Work remaining_total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    QES_ASSERT_MSG(baselines[i] >= -kTimeEps &&
                       baselines[i] <= caps[i] + kTimeEps,
                   "baseline must lie in [0, cap]");
    remaining_total += std::max(0.0, caps[i] - baselines[i]);
  }

  if (capacity + kTimeEps >= remaining_total) {
    for (std::size_t i = 0; i < n; ++i) {
      out.alloc[i] = std::max(0.0, caps[i] - baselines[i]);
    }
    out.level = std::numeric_limits<double>::infinity();
    out.all_satisfied = true;
    out.used = remaining_total;
    return;
  }
  if (capacity <= 0.0 || n == 0) {
    double min_base = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (caps[i] > baselines[i] + kTimeEps) {
        min_base = std::min(min_base, static_cast<double>(baselines[i]));
      }
    }
    out.level = std::isfinite(min_base) ? min_base : 0.0;
    return;
  }

  // Sweep the water level across the breakpoints {b_i} (item becomes
  // active) and {w_i} (item saturates); between breakpoints the fill rate
  // is the number of active items.
  using Event = WaterfillScratch::Event;
  std::vector<Event>& events = scratch.events;
  events.clear();
  events.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    if (caps[i] > baselines[i] + kTimeEps) {
      events.push_back({static_cast<double>(baselines[i]), +1});
      events.push_back({static_cast<double>(caps[i]), -1});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.delta > b.delta;  // starts before ends at the same level
  });

  double level = events.front().value;
  Work poured = 0.0;
  int active = 0;
  std::size_t k = 0;
  while (k < events.size()) {
    // Apply all events at the current level.
    while (k < events.size() && events[k].value <= level + kTimeEps) {
      active += events[k].delta;
      ++k;
    }
    if (k == events.size()) break;
    const double next = events[k].value;
    if (active > 0) {
      const Work span_volume = active * (next - level);
      if (poured + span_volume >= capacity - kTimeEps) {
        level += (capacity - poured) / active;
        poured = capacity;
        break;
      }
      poured += span_volume;
    }
    level = next;
  }
  QES_ASSERT_MSG(poured <= capacity + kTimeEps,
                 "water-fill must not exceed capacity");

  out.level = level;
  for (std::size_t i = 0; i < n; ++i) {
    out.alloc[i] = clamp_alloc(level, baselines[i], caps[i]);
    out.used += out.alloc[i];
  }
}

void waterfill_volumes_into(std::span<const Work> caps, Work capacity,
                            WaterfillScratch& scratch, WaterfillResult& out) {
  scratch.zeros.assign(caps.size(), 0.0);
  waterfill_volumes_into(caps, scratch.zeros, capacity, scratch, out);
}

WaterfillResult waterfill_volumes(std::span<const Work> caps,
                                  std::span<const Work> baselines,
                                  Work capacity) {
  WaterfillScratch scratch;
  WaterfillResult r;
  waterfill_volumes_into(caps, baselines, capacity, scratch, r);
  return r;
}

WaterfillResult waterfill_volumes(std::span<const Work> caps, Work capacity) {
  WaterfillScratch scratch;
  WaterfillResult r;
  waterfill_volumes_into(caps, capacity, scratch, r);
  return r;
}

}  // namespace qes
