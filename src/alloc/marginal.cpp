#include "alloc/marginal.hpp"

#include <algorithm>
#include <cmath>

#include "core/assert.hpp"

namespace qes {

namespace {

// Central-difference derivative, shrinking the step near the domain
// boundaries [0, cap].
double derivative(const std::function<double(Work)>& f, Work x, Work cap) {
  const double h = std::max(1e-4, cap * 1e-6);
  const double lo = std::max(0.0, x - h);
  const double hi = std::min(cap, x + h);
  QES_ASSERT(hi > lo);
  return (f(hi) - f(lo)) / (hi - lo);
}

// Largest p in [0, cap] with f'(p) >= lambda; 0 if even f'(0) < lambda.
// f concave => f' non-increasing => bisection applies.
Work inverse_marginal(const std::function<double(Work)>& f, Work cap,
                      double lambda) {
  if (derivative(f, 0.0, cap) < lambda) return 0.0;
  if (derivative(f, cap, cap) >= lambda) return cap;
  Work lo = 0.0, hi = cap;
  for (int it = 0; it < 60; ++it) {
    const Work mid = (lo + hi) / 2.0;
    if (derivative(f, mid, cap) >= lambda) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace

MarginalAllocResult marginal_allocate(
    std::span<const Work> caps,
    std::span<const std::function<double(Work)>> fs, Work capacity,
    std::span<const Work> baselines) {
  QES_ASSERT(caps.size() == fs.size());
  QES_ASSERT(baselines.empty() || baselines.size() == caps.size());
  const std::size_t n = caps.size();
  MarginalAllocResult out;
  out.alloc.assign(n, 0.0);
  if (n == 0 || capacity <= 0.0) return out;

  auto base = [&](std::size_t i) {
    return baselines.empty() ? 0.0 : baselines[i];
  };
  Work total_remaining = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    QES_ASSERT(caps[i] >= 0.0 && base(i) >= 0.0 &&
               base(i) <= caps[i] + kTimeEps);
    total_remaining += std::max(0.0, caps[i] - base(i));
  }
  if (capacity + kTimeEps >= total_remaining) {
    for (std::size_t i = 0; i < n; ++i) {
      out.alloc[i] = std::max(0.0, caps[i] - base(i));
    }
    out.used = total_remaining;
    out.lambda = 0.0;
    return out;
  }

  // Incremental allocation at level lambda: target total volume is
  // (f_i')^{-1}(lambda), minus what the item already holds.
  auto alloc_at = [&](std::size_t i, double lambda) {
    const Work target = inverse_marginal(fs[i], caps[i], lambda);
    return std::clamp(target - base(i), 0.0, caps[i] - base(i));
  };
  // Bisection on lambda: allocation volume is non-increasing in lambda.
  auto volume_at = [&](double lambda) {
    Work v = 0.0;
    for (std::size_t i = 0; i < n; ++i) v += alloc_at(i, lambda);
    return v;
  };
  double lambda_lo = 0.0;  // full caps => too much volume
  double lambda_hi = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    lambda_hi = std::max(lambda_hi, derivative(fs[i], 0.0, caps[i]));
  }
  lambda_hi *= 1.0 + 1e-9;
  for (int it = 0; it < 80; ++it) {
    const double mid = (lambda_lo + lambda_hi) / 2.0;
    if (volume_at(mid) > capacity) {
      lambda_lo = mid;
    } else {
      lambda_hi = mid;
    }
  }
  out.lambda = (lambda_lo + lambda_hi) / 2.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.alloc[i] = alloc_at(i, out.lambda);
    out.used += out.alloc[i];
  }
  // Flat marginals can leave slack at the bisected lambda; spend it
  // greedily on unsaturated items (harmless for correctness: quality is
  // non-decreasing in volume).
  Work slack = capacity - out.used;
  for (std::size_t i = 0; i < n && slack > kTimeEps; ++i) {
    const Work add =
        std::min(slack, caps[i] - base(i) - out.alloc[i]);
    if (add <= 0.0) continue;
    out.alloc[i] += add;
    out.used += add;
    slack -= add;
  }
  return out;
}

MarginalAllocResult marginal_allocate(std::span<const Work> caps,
                                      std::span<const QualityFunction> fs,
                                      Work capacity) {
  std::vector<std::function<double(Work)>> wrapped;
  wrapped.reserve(fs.size());
  for (const QualityFunction& f : fs) {
    wrapped.emplace_back([&f](Work x) { return f(x); });
  }
  return marginal_allocate(caps, wrapped, capacity);
}

}  // namespace qes
