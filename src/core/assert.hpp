// Lightweight always-on invariant checking.
//
// Simulation correctness bugs (overlapping segments, budget violations)
// silently corrupt results, so invariants stay enabled in release builds.
// The cost is negligible next to the scheduling math.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace qes::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "qesched invariant violated: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace qes::detail

#define QES_ASSERT(expr)                                              \
  ((expr) ? (void)0                                                   \
          : ::qes::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr))

#define QES_ASSERT_MSG(expr, msg)                                     \
  ((expr) ? (void)0                                                   \
          : ::qes::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)))
