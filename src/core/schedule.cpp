#include "core/schedule.hpp"

#include <algorithm>

namespace qes {

Schedule::Schedule(std::vector<Segment> segments) {
  std::sort(segments.begin(), segments.end(),
            [](const Segment& a, const Segment& b) { return a.t0 < b.t0; });
  for (const Segment& s : segments) push(s);
}

void Schedule::push(Segment seg) {
  if (seg.duration() <= kTimeEps || seg.speed <= 0.0) return;
  QES_ASSERT_MSG(segments_.empty() ||
                     seg.t0 + kTimeEps >= segments_.back().t1,
                 "segments must be appended in time order");
  if (!segments_.empty()) {
    Segment& last = segments_.back();
    if (last.job == seg.job && approx_eq(last.speed, seg.speed) &&
        approx_eq(last.t1, seg.t0)) {
      last.t1 = seg.t1;
      return;
    }
    // Snap tiny gaps caused by floating point so downstream overlap
    // checks stay exact.
    if (seg.t0 < last.t1) seg.t0 = last.t1;
  }
  segments_.push_back(seg);
}

std::map<JobId, Work> Schedule::volumes() const {
  std::map<JobId, Work> v;
  for (const Segment& s : segments_) v[s.job] += s.volume();
  return v;
}

Work Schedule::volume_of(JobId id) const {
  Work v = 0.0;
  for (const Segment& s : segments_) {
    if (s.job == id) v += s.volume();
  }
  return v;
}

Joules Schedule::dynamic_energy(const PowerModel& pm) const {
  Joules e = 0.0;
  for (const Segment& s : segments_) {
    e += pm.dynamic_energy(s.speed, s.duration());
  }
  return e;
}

Speed Schedule::speed_at(Time t) const {
  for (const Segment& s : segments_) {
    if (t >= s.t0 && t < s.t1) return s.speed;
  }
  return 0.0;
}

Speed Schedule::max_speed() const {
  Speed m = 0.0;
  for (const Segment& s : segments_) m = std::max(m, s.speed);
  return m;
}

Time Schedule::makespan() const {
  return segments_.empty() ? 0.0 : segments_.back().t1;
}

void Schedule::check_well_formed() const {
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    QES_ASSERT_MSG(s.t1 > s.t0, "segment must have positive duration");
    QES_ASSERT_MSG(s.speed > 0.0, "segment must have positive speed");
    if (i > 0) {
      QES_ASSERT_MSG(approx_ge(s.t0, segments_[i - 1].t1),
                     "segments must not overlap");
    }
  }
}

void Schedule::check_respects_windows(std::span<const Job> jobs) const {
  std::map<JobId, const Job*> by_id;
  for (const Job& j : jobs) by_id[j.id] = &j;
  for (const Segment& s : segments_) {
    auto it = by_id.find(s.job);
    QES_ASSERT_MSG(it != by_id.end(), "segment references unknown job");
    QES_ASSERT_MSG(approx_ge(s.t0, it->second->release, 1e-5),
                   "segment starts before job release");
    QES_ASSERT_MSG(approx_le(s.t1, it->second->deadline, 1e-5),
                   "segment ends after job deadline");
  }
}

}  // namespace qes
