// FlatVolumeMap: a sorted-vector map from JobId to a planned Work
// volume, replacing std::map<JobId, Work> on the replan hot path.
//
// The planners insert volumes in ascending id order (FIFO/EDF over
// agreeable jobs), so insertion is an O(1) append in the common case
// with an O(n) sorted-insert fallback. Iteration yields std::pair<JobId,
// Work> in ascending id order — exactly std::map's order — so every
// consumer (rigid-discard loop, eager timetable, volume reconciliation,
// tests) sees identical sequences. clear() keeps capacity, which is what
// lets a steady-state replan run without heap allocations.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "core/job.hpp"

namespace qes {

class FlatVolumeMap {
 public:
  using value_type = std::pair<JobId, Work>;
  using iterator = std::vector<value_type>::iterator;
  using const_iterator = std::vector<value_type>::const_iterator;

  [[nodiscard]] bool empty() const { return items_.empty(); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  void clear() { items_.clear(); }

  [[nodiscard]] iterator begin() { return items_.begin(); }
  [[nodiscard]] iterator end() { return items_.end(); }
  [[nodiscard]] const_iterator begin() const { return items_.begin(); }
  [[nodiscard]] const_iterator end() const { return items_.end(); }

  [[nodiscard]] const_iterator find(JobId id) const {
    const auto it = lower(id);
    return it != items_.end() && it->first == id ? it : items_.end();
  }

  [[nodiscard]] std::size_t count(JobId id) const {
    return find(id) == items_.end() ? 0 : 1;
  }

  /// Inserts (default 0.0) or finds; appends in O(1) when ids arrive in
  /// ascending order, as the planners produce them.
  [[nodiscard]] Work& operator[](JobId id) {
    if (items_.empty() || items_.back().first < id) {
      items_.emplace_back(id, 0.0);
      return items_.back().second;
    }
    auto it = items_.begin() + (lower(id) - items_.cbegin());
    if (it == items_.end() || it->first != id) {
      it = items_.insert(it, {id, 0.0});
    }
    return it->second;
  }

 private:
  [[nodiscard]] const_iterator lower(JobId id) const {
    return std::lower_bound(
        items_.begin(), items_.end(), id,
        [](const value_type& a, JobId b) { return a.first < b; });
  }

  std::vector<value_type> items_;  // sorted by JobId
};

}  // namespace qes
