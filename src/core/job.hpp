// Job model for best-effort interactive services (paper §II-A).
//
// A job J_j is (release r_j, deadline d_j, service demand w_j). Deadlines
// are *agreeable*: a later release implies a later (or equal) deadline.
// Jobs support partial evaluation unless flagged all-or-nothing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "core/assert.hpp"
#include "core/time.hpp"

namespace qes {

/// Stable identity of a job across the whole simulation.
using JobId = std::uint64_t;

struct Job {
  JobId id = 0;
  Time release = 0.0;
  Time deadline = 0.0;
  Work demand = 0.0;
  /// When false the job is all-or-nothing: partial volume yields zero
  /// quality (paper §V-D varies the fraction of such jobs).
  bool partial_ok = true;
  /// Service-class weight: the job contributes weight * f(p) quality
  /// (extension; 1.0 everywhere in the paper's experiments).
  double weight = 1.0;

  [[nodiscard]] Time window() const { return deadline - release; }
};

/// True if every pair of jobs has agreeable deadlines once sorted by
/// release time (ties resolved by deadline).
[[nodiscard]] bool deadlines_agreeable(std::span<const Job> jobs);

/// Sort ascending by (release, deadline, id). All single-core algorithms
/// assume this order on input.
void sort_by_release(std::vector<Job>& jobs);

/// Sum of demands.
[[nodiscard]] Work total_demand(std::span<const Job> jobs);

/// A sorted, agreeable job set with prefix demand sums, giving O(1)
/// interval intensities g([r_i, d_j]) = (W_j - W_{i-1}) / (d_j - r_i)
/// used by both Energy-OPT and Quality-OPT interval searches.
class AgreeableJobSet {
 public:
  AgreeableJobSet() = default;
  explicit AgreeableJobSet(std::vector<Job> jobs);

  /// Rebuilds the set from `jobs` in place, reusing capacity (scratch
  /// reuse on the replan hot path). Exactly the constructor's semantics.
  void assign(std::span<const Job> jobs);

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }
  [[nodiscard]] bool empty() const { return jobs_.empty(); }
  [[nodiscard]] const Job& operator[](std::size_t i) const { return jobs_[i]; }
  [[nodiscard]] std::span<const Job> jobs() const { return jobs_; }

  /// Total demand of jobs with indices in [i, j] inclusive.
  [[nodiscard]] Work demand_between(std::size_t i, std::size_t j) const {
    QES_ASSERT(i <= j && j < jobs_.size());
    return prefix_[j + 1] - prefix_[i];
  }

  /// Interval intensity g([r_i, d_j]) (paper §III-A). Jobs fully contained
  /// in [r_i, d_j] are exactly indices i..j because the set is sorted and
  /// agreeable.
  [[nodiscard]] double intensity(std::size_t i, std::size_t j) const {
    const Time len = jobs_[j].deadline - jobs_[i].release;
    QES_ASSERT(len > 0.0);
    return demand_between(i, j) / len;
  }

 private:
  std::vector<Job> jobs_;
  std::vector<Work> prefix_;  // prefix_[k] = sum of demands of jobs_[0..k)
};

}  // namespace qes
