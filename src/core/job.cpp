#include "core/job.hpp"

namespace qes {

bool deadlines_agreeable(std::span<const Job> jobs) {
  std::vector<Job> sorted(jobs.begin(), jobs.end());
  sort_by_release(sorted);
  for (std::size_t k = 1; k < sorted.size(); ++k) {
    if (sorted[k].deadline < sorted[k - 1].deadline - kTimeEps) return false;
  }
  return true;
}

void sort_by_release(std::vector<Job>& jobs) {
  std::sort(jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
    if (a.release != b.release) return a.release < b.release;
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return a.id < b.id;
  });
}

Work total_demand(std::span<const Job> jobs) {
  return std::accumulate(jobs.begin(), jobs.end(), Work{0},
                         [](Work acc, const Job& j) { return acc + j.demand; });
}

AgreeableJobSet::AgreeableJobSet(std::vector<Job> jobs)
    : jobs_(std::move(jobs)) {
  sort_by_release(jobs_);
  for (std::size_t k = 1; k < jobs_.size(); ++k) {
    QES_ASSERT_MSG(jobs_[k].deadline >= jobs_[k - 1].deadline - kTimeEps,
                   "job set must have agreeable deadlines");
  }
  for (const Job& j : jobs_) {
    QES_ASSERT_MSG(j.demand >= 0.0 && j.deadline > j.release,
                   "job must have non-negative demand and a positive window");
  }
  prefix_.resize(jobs_.size() + 1, 0.0);
  for (std::size_t k = 0; k < jobs_.size(); ++k) {
    prefix_[k + 1] = prefix_[k] + jobs_[k].demand;
  }
}

void AgreeableJobSet::assign(std::span<const Job> jobs) {
  jobs_.assign(jobs.begin(), jobs.end());
  sort_by_release(jobs_);
  for (std::size_t k = 1; k < jobs_.size(); ++k) {
    QES_ASSERT_MSG(jobs_[k].deadline >= jobs_[k - 1].deadline - kTimeEps,
                   "job set must have agreeable deadlines");
  }
  for (const Job& j : jobs_) {
    QES_ASSERT_MSG(j.demand >= 0.0 && j.deadline > j.release,
                   "job must have non-negative demand and a positive window");
  }
  prefix_.assign(jobs_.size() + 1, 0.0);
  for (std::size_t k = 0; k < jobs_.size(); ++k) {
    prefix_[k + 1] = prefix_[k] + jobs_[k].demand;
  }
}

}  // namespace qes
