// Deterministic, seedable PRNG and explicit distributions.
//
// std::mt19937 + standard-library distributions are not bit-reproducible
// across standard libraries; experiments must replay identically anywhere,
// so we ship xoshiro256** (seeded via SplitMix64) and hand-rolled
// inverse-transform samplers.
#pragma once

#include <cmath>
#include <cstdint>

#include "core/assert.hpp"

namespace qes {

/// SplitMix64 — used only to expand a seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna), public-domain reference algorithm.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 random bits.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; safe as input to log().
  double next_open_double() { return 1.0 - next_double(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    QES_ASSERT(hi >= lo);
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    QES_ASSERT(n > 0);
    return next_u64() % n;  // modulo bias negligible for n << 2^64
  }

  /// Bernoulli(p).
  bool bernoulli(double p) { return next_double() < p; }

  /// Exponential with rate `lambda` (mean 1/lambda) via inverse transform.
  double exponential(double lambda) {
    QES_ASSERT(lambda > 0.0);
    return -std::log(next_open_double()) / lambda;
  }

  /// Standard normal via Box–Muller (one value per call; simple > fast
  /// here — only the validation noise model uses it).
  double normal(double mean = 0.0, double stddev = 1.0) {
    const double u1 = next_open_double();
    const double u2 = next_double();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    return mean + stddev * z;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace qes
