// Power models and discrete speed scaling (paper §II-B, §V-F, §V-G).
//
// Dynamic power of a core at speed s is P_dyn(s) = a * s^beta with a > 0,
// beta > 1 (convex); static power is a constant b (zero in the simulation
// setup, non-zero for the Opteron validation model). The inverse map
// speed_for_power is used everywhere a power budget caps a core's speed.
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "core/assert.hpp"
#include "core/time.hpp"

namespace qes {

struct PowerModel {
  double a = 5.0;     ///< dynamic scaling factor (paper default)
  double beta = 2.0;  ///< power exponent (paper default)
  Watts b = 0.0;      ///< static power per core (0 in §V-B..F)

  /// Dynamic power at speed `s` (GHz).
  [[nodiscard]] Watts dynamic_power(Speed s) const {
    QES_ASSERT(s >= 0.0);
    return a * std::pow(s, beta);
  }

  /// Total power (dynamic + static) at speed `s`.
  [[nodiscard]] Watts total_power(Speed s) const {
    return dynamic_power(s) + b;
  }

  /// Largest speed whose *dynamic* power fits within `p_dyn` watts.
  [[nodiscard]] Speed speed_for_power(Watts p_dyn) const {
    if (p_dyn <= 0.0) return 0.0;
    return std::pow(p_dyn / a, 1.0 / beta);
  }

  /// Dynamic energy of running at speed `s` for `duration_ms`.
  [[nodiscard]] Joules dynamic_energy(Speed s, Time duration_ms) const {
    return joules(dynamic_power(s), duration_ms);
  }
};

/// The default simulated server of §V-B: a=5, beta=2, no static power.
[[nodiscard]] inline PowerModel default_power_model() { return {}; }

/// An ordered set of supported discrete speeds (paper §V-F / §V-G).
class DiscreteSpeedSet {
 public:
  DiscreteSpeedSet() = default;
  explicit DiscreteSpeedSet(std::vector<Speed> levels);

  /// The AMD Opteron 2380 levels used in the paper's validation (§V-G).
  [[nodiscard]] static DiscreteSpeedSet opteron2380();

  [[nodiscard]] bool empty() const { return levels_.empty(); }
  [[nodiscard]] std::size_t size() const { return levels_.size(); }
  [[nodiscard]] const std::vector<Speed>& levels() const { return levels_; }
  [[nodiscard]] Speed max_speed() const {
    QES_ASSERT(!levels_.empty());
    return levels_.back();
  }
  [[nodiscard]] Speed min_speed() const {
    QES_ASSERT(!levels_.empty());
    return levels_.front();
  }

  /// Smallest level >= s, or nullopt if s exceeds the top level.
  [[nodiscard]] std::optional<Speed> snap_up(Speed s) const;

  /// Largest level <= s, or nullopt if s is below the bottom level.
  /// (A core may always run at speed 0, i.e. stay idle; callers handle
  /// the nullopt case as "idle".)
  [[nodiscard]] std::optional<Speed> snap_down(Speed s) const;

  /// The paper's §V-F rectification: the discrete value closest to but
  /// not less than `s`, unless the power budget `p_cap` cannot support it,
  /// in which case the next lower level (possibly 0 => nullopt).
  [[nodiscard]] std::optional<Speed> rectify(Speed s, Watts p_cap,
                                             const PowerModel& pm) const;

 private:
  std::vector<Speed> levels_;  // ascending, unique, positive
};

}  // namespace qes
