#include "core/power.hpp"

namespace qes {

DiscreteSpeedSet::DiscreteSpeedSet(std::vector<Speed> levels)
    : levels_(std::move(levels)) {
  std::sort(levels_.begin(), levels_.end());
  levels_.erase(std::unique(levels_.begin(), levels_.end()), levels_.end());
  for (Speed s : levels_) {
    QES_ASSERT_MSG(s > 0.0, "discrete speed levels must be positive");
  }
}

DiscreteSpeedSet DiscreteSpeedSet::opteron2380() {
  return DiscreteSpeedSet({0.8, 1.3, 1.8, 2.5});
}

std::optional<Speed> DiscreteSpeedSet::snap_up(Speed s) const {
  QES_ASSERT(!levels_.empty());
  auto it = std::lower_bound(levels_.begin(), levels_.end(), s - kTimeEps);
  if (it == levels_.end()) return std::nullopt;
  return *it;
}

std::optional<Speed> DiscreteSpeedSet::snap_down(Speed s) const {
  QES_ASSERT(!levels_.empty());
  auto it = std::upper_bound(levels_.begin(), levels_.end(), s + kTimeEps);
  if (it == levels_.begin()) return std::nullopt;
  return *(it - 1);
}

std::optional<Speed> DiscreteSpeedSet::rectify(Speed s, Watts p_cap,
                                               const PowerModel& pm) const {
  if (s <= 0.0) return std::nullopt;  // idle stays idle
  std::optional<Speed> up = snap_up(s);
  if (up && pm.dynamic_power(*up) <= p_cap + kTimeEps) return up;
  // Walk down from the level below `s` until one fits the budget.
  auto it = std::upper_bound(levels_.begin(), levels_.end(), s + kTimeEps);
  while (it != levels_.begin()) {
    --it;
    if (pm.dynamic_power(*it) <= p_cap + kTimeEps) return *it;
  }
  return std::nullopt;
}

}  // namespace qes
