// Time conventions for the qesched library.
//
// All timestamps and durations are double-precision milliseconds. A core
// running at `s` GHz processes `s` work units per millisecond (the paper
// defines 1 GHz == 1000 processing units per second), so speeds expressed
// in GHz double as units-per-millisecond rates.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace qes {

/// Timestamp or duration in milliseconds.
using Time = double;

/// Work volume in processing units (1 unit == 1 GHz-millisecond).
using Work = double;

/// Core speed in GHz (equivalently, work units per millisecond).
using Speed = double;

/// Power in watts.
using Watts = double;

/// Energy in joules.
using Joules = double;

inline constexpr Time kNoDeadline = std::numeric_limits<Time>::infinity();

/// Absolute tolerance used when comparing schedule timestamps/volumes.
/// Schedules are built from divisions of demands by speeds, so exact
/// equality is never expected; 1e-6 ms (one nanosecond) is far below any
/// quantity the model distinguishes.
inline constexpr double kTimeEps = 1e-6;

/// Named tolerance set shared by the DES planner kernel (src/policy/)
/// and both execution planes (sim::Engine, runtime::RuntimeCore). The
/// planes must make bitwise-identical decisions, so these live in one
/// place instead of as per-file aliases that could drift apart.
///
/// Slack allowed between a plan segment and a job's window (segment end
/// vs deadline, segment start vs now). Plans are rebuilt from chains of
/// divisions, so boundaries can overshoot kTimeEps by a few ulps.
inline constexpr double kPlanSlackEps = 1e-5;
/// Absolute slack when deciding whether granted volume completes a
/// rigid (all-or-nothing) job in the §V-D discard loop.
inline constexpr double kRigidVolumeEps = 1e-6;
/// Relative tolerance (scaled by max(1, demand)) at which processed
/// volume counts as full completion at finalization.
inline constexpr double kCompletionRelEps = 1e-6;

/// `a <= b` up to tolerance.
[[nodiscard]] inline bool approx_le(double a, double b, double eps = 1e-6) {
  return a <= b + eps;
}

/// `a >= b` up to tolerance.
[[nodiscard]] inline bool approx_ge(double a, double b, double eps = 1e-6) {
  return a + eps >= b;
}

/// `a == b` up to a tolerance that scales with the magnitudes involved.
[[nodiscard]] inline bool approx_eq(double a, double b, double eps = 1e-6) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= eps * scale;
}

/// Convert a (watts, milliseconds) product into joules.
[[nodiscard]] inline Joules joules(Watts p, Time duration_ms) {
  return p * duration_ms / 1000.0;
}

}  // namespace qes
