#include "core/quality.hpp"

#include <cmath>

namespace qes {

QualityFunction QualityFunction::exponential(double c) {
  QES_ASSERT(c > 0.0);
  const double norm = 1.0 - std::exp(-1000.0 * c);
  return QualityFunction(
      "exp(c=" + std::to_string(c) + ")",
      [c, norm](Work x) { return (1.0 - std::exp(-c * x)) / norm; },
      /*strictly_concave=*/true);
}

QualityFunction QualityFunction::linear(double x_norm) {
  QES_ASSERT(x_norm > 0.0);
  return QualityFunction(
      "linear", [x_norm](Work x) { return x / x_norm; },
      /*strictly_concave=*/false);
}

QualityFunction QualityFunction::sqrt(double x_norm) {
  QES_ASSERT(x_norm > 0.0);
  return QualityFunction(
      "sqrt", [x_norm](Work x) { return std::sqrt(x / x_norm); },
      /*strictly_concave=*/true);
}

QualityFunction QualityFunction::log1p(double k, double x_norm) {
  QES_ASSERT(k > 0.0 && x_norm > 0.0);
  const double norm = std::log1p(k * x_norm);
  return QualityFunction(
      "log1p", [k, norm](Work x) { return std::log1p(k * x) / norm; },
      /*strictly_concave=*/true);
}

QualityFunction QualityFunction::step(double threshold) {
  QES_ASSERT(threshold > 0.0);
  return QualityFunction(
      "step",
      [threshold](Work x) { return x + kTimeEps >= threshold ? 1.0 : 0.0; },
      /*strictly_concave=*/false);
}

QualityFunction QualityFunction::custom(std::string name,
                                        std::function<double(Work)> f,
                                        bool strictly_concave) {
  return QualityFunction(std::move(name), std::move(f), strictly_concave);
}

bool QualityFunction::check_shape(Work max_volume, int samples) const {
  QES_ASSERT(max_volume > 0.0 && samples >= 3);
  const double h = max_volume / samples;
  double prev = f_(0.0);
  double prev_slope = std::numeric_limits<double>::infinity();
  for (int i = 1; i <= samples; ++i) {
    const double y = f_(i * h);
    const double slope = (y - prev) / h;
    if (y < prev - 1e-12) return false;                    // monotone
    if (slope > prev_slope + 1e-9) return false;           // concave
    prev = y;
    prev_slope = slope;
  }
  return true;
}

}  // namespace qes
