// Single-core schedules as piecewise-constant (job, speed) segments.
//
// Every single-core algorithm (YDS, Quality-OPT, QE-OPT, Online-QE, and
// the per-job baseline policies) emits a Schedule; the simulation engine
// executes its segments. Segments are half-open [t0, t1), sorted, and
// non-overlapping on one core.
#pragma once

#include <map>
#include <span>
#include <vector>

#include "core/job.hpp"
#include "core/power.hpp"
#include "core/time.hpp"

namespace qes {

struct Segment {
  Time t0 = 0.0;
  Time t1 = 0.0;
  JobId job = 0;
  Speed speed = 0.0;

  [[nodiscard]] Time duration() const { return t1 - t0; }
  [[nodiscard]] Work volume() const { return speed * duration(); }
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::vector<Segment> segments);

  [[nodiscard]] bool empty() const { return segments_.empty(); }
  [[nodiscard]] std::size_t size() const { return segments_.size(); }
  [[nodiscard]] std::span<const Segment> segments() const { return segments_; }
  [[nodiscard]] const Segment& operator[](std::size_t i) const {
    return segments_[i];
  }

  /// Append a segment; zero-duration or zero-volume segments are dropped.
  /// Adjacent segments with the same job and speed are merged.
  void push(Segment seg);

  /// Drops all segments, keeping capacity (scratch reuse on the replan
  /// hot path).
  void clear() { segments_.clear(); }

  /// Total processed volume per job.
  [[nodiscard]] std::map<JobId, Work> volumes() const;

  /// Processed volume of one job.
  [[nodiscard]] Work volume_of(JobId id) const;

  /// Dynamic energy of executing the schedule under `pm`.
  [[nodiscard]] Joules dynamic_energy(const PowerModel& pm) const;

  /// Speed in effect at time t (0 if idle). Boundaries resolve to the
  /// segment starting at t.
  [[nodiscard]] Speed speed_at(Time t) const;

  /// Maximum instantaneous speed over all segments.
  [[nodiscard]] Speed max_speed() const;

  /// End of the last segment (0 when empty).
  [[nodiscard]] Time makespan() const;

  /// Validates structural invariants: sorted, non-overlapping,
  /// positive-duration segments with non-negative speeds. Aborts via
  /// QES_ASSERT on violation (used in tests and debug paths).
  void check_well_formed() const;

  /// Checks the schedule against the job windows: every segment of job j
  /// lies within [r_j, d_j]. Aborts on violation.
  void check_respects_windows(std::span<const Job> jobs) const;

 private:
  std::vector<Segment> segments_;  // sorted by t0
};

}  // namespace qes
