// Quality functions mapping processed volume to response quality
// (paper §II-A, Eq. 1, Fig. 1 and Fig. 7a).
//
// A quality function f is monotonically increasing and strictly concave
// with f(0) = 0; every job in a workload shares the same f. The paper's
// family is q(x) = (1 - e^{-cx}) / (1 - e^{-1000 c}).
#pragma once

#include <cmath>
#include <functional>
#include <string>

#include "core/assert.hpp"
#include "core/time.hpp"

namespace qes {

class QualityFunction {
 public:
  /// The paper's exponential family (Eq. 1). Larger `c` means more
  /// concave; the default c = 0.003 matches §V-B.
  [[nodiscard]] static QualityFunction exponential(double c = 0.003);

  /// f(x) = x / x_norm. Linear (not strictly concave); used to study the
  /// degenerate case and in tests.
  [[nodiscard]] static QualityFunction linear(double x_norm = 1000.0);

  /// f(x) = sqrt(x / x_norm).
  [[nodiscard]] static QualityFunction sqrt(double x_norm = 1000.0);

  /// f(x) = log(1 + kx) / log(1 + k x_norm).
  [[nodiscard]] static QualityFunction log1p(double k = 0.01,
                                             double x_norm = 1000.0);

  /// All-or-nothing step at the job's own demand is modelled at the job
  /// level (Job::partial_ok), not here; `step` provides a fixed-threshold
  /// variant for tests.
  [[nodiscard]] static QualityFunction step(double threshold);

  /// Arbitrary user function; `strictly_concave` documents whether the
  /// volume water-filling optimality argument applies.
  [[nodiscard]] static QualityFunction custom(std::string name,
                                              std::function<double(Work)> f,
                                              bool strictly_concave);

  [[nodiscard]] double operator()(Work volume) const {
    QES_ASSERT(volume >= -kTimeEps);
    return f_(std::max(volume, 0.0));
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool strictly_concave() const { return strictly_concave_; }

  /// Numerically verify monotonicity and (weak) concavity on a grid over
  /// [0, max_volume]. Used by tests and by the engine's debug mode.
  [[nodiscard]] bool check_shape(Work max_volume, int samples = 256) const;

 private:
  QualityFunction(std::string name, std::function<double(Work)> f,
                  bool strictly_concave)
      : name_(std::move(name)),
        f_(std::move(f)),
        strictly_concave_(strictly_concave) {}

  std::string name_;
  std::function<double(Work)> f_;
  bool strictly_concave_ = true;
};

}  // namespace qes
