// Declarative workload source shared by the CLI tools (qes_sim,
// qes_cluster) and the scenario runner (tools/qes_scenarios): one spec
// names either a synthetic arrival regime (poisson / uniform / diurnal
// / mmpp / flash) or a CSV trace file, and make_jobs() validates it and
// materializes the job list. The tools used to hand-roll this choice
// independently; keeping it here means every front end rejects
// malformed specs with the same errors (cli_workload_source_test).
#pragma once

#include <string>
#include <vector>

#include "core/job.hpp"
#include "workload/generator.hpp"

namespace qes::cli {

struct WorkloadSourceSpec {
  /// Arrival regime: "poisson", "uniform", "diurnal", "mmpp", "flash",
  /// or "trace" (replay trace_path verbatim).
  std::string regime = "poisson";
  /// Base parameters — rate, horizon, deadline, demand distribution,
  /// partial/premium fractions, seed — shared by every regime.
  WorkloadConfig workload;

  // diurnal: rate(t) = rate * (1 + amplitude * sin(2*pi*t/period - pi/2))
  double diurnal_amplitude = 0.6;
  Time diurnal_period_ms = 60'000.0;

  // mmpp: workload.arrival_rate is the LOW state; <= 0 defaults below
  // to 4x the low rate.
  double mmpp_rate_hi = 0.0;
  Time mmpp_dwell_lo_ms = 20'000.0;
  Time mmpp_dwell_hi_ms = 5'000.0;

  // flash: spike window defaults (when <= 0) to the middle half-quarter
  // of the horizon.
  double flash_factor = 4.0;
  Time flash_at_ms = 0.0;
  Time flash_len_ms = 0.0;

  // trace
  std::string trace_path;
};

/// Validates `spec` and builds the job list. Throws
/// std::invalid_argument on a malformed spec (unknown regime,
/// non-positive rate / horizon / deadline, out-of-range fractions,
/// missing trace path) and std::runtime_error when the trace file
/// cannot be read.
[[nodiscard]] std::vector<Job> make_jobs(const WorkloadSourceSpec& spec);

/// The regime names make_jobs accepts, for help text and error messages.
[[nodiscard]] const std::vector<std::string>& workload_regimes();

}  // namespace qes::cli
