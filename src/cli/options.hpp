// Command-line front end for the simulator (used by tools/qes_sim).
//
// Parsing lives in the library so it is unit-testable; the binary is a
// thin main(). Unknown flags raise std::invalid_argument with a message
// naming the flag.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "multicore/architecture.hpp"
#include "multicore/des_scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/generator.hpp"

namespace qes::cli {

enum class PolicyKind { DES, FCFS, LJF, SJF };

struct Options {
  PolicyKind policy = PolicyKind::DES;
  Architecture arch = Architecture::CDVFS;
  PowerDistribution baseline_power = PowerDistribution::StaticEqual;
  bool discrete = false;
  bool eager = false;
  bool resume = false;
  bool rebalance = false;
  bool plain_rr = false;
  bool static_power = false;
  bool weighted = false;
  /// big.LITTLE: this many of the cores are capped at little_cap GHz.
  int little_cores = 0;
  double little_cap = 1.0;

  EngineConfig engine;
  WorkloadConfig workload{.arrival_rate = 150.0, .horizon_ms = 60'000.0};
  double quality_c = 0.003;

  /// Rate sweep lo:hi:step; empty = single run at workload.arrival_rate.
  std::vector<double> sweep_rates;
  int seeds = 1;

  /// Load jobs from a CSV trace instead of generating them.
  std::optional<std::string> trace_in;
  /// Save the generated workload to a CSV trace.
  std::optional<std::string> trace_out;

  // qesd live-runtime driver (ignored by qes_sim).
  /// Virtual seconds of admitted traffic.
  double duration_s = 30.0;
  /// Producer threads generating Poisson arrivals.
  int producers = 4;
  /// Wall milliseconds between metrics snapshots.
  double metrics_interval_ms = 1000.0;
  /// Virtual ms per wall ms (>1 compresses wall time).
  double time_scale = 1.0;
  /// Run the sim-vs-runtime conformance replay instead of serving live.
  bool conform = false;
  /// Final-metrics exposition: "json" (legacy shape) or "prom"
  /// (Prometheus text, qesd only).
  std::string metrics_format = "json";
  /// Live HTTP scrape endpoint (/metrics, /metrics.json, /healthz,
  /// /tracez): -1 disables, 0 binds an ephemeral port.
  int http_port = -1;
  /// Write a Chrome-trace-event (Perfetto-loadable) export of the
  /// request spans assembled from the lifecycle trace.
  std::optional<std::string> trace_chrome;
  /// Wire-level ingress (SUBMIT/REPLY frames + HTTP POST /submit):
  /// -1 disables, 0 binds an ephemeral port.
  int listen_port = -1;
  /// epoll ingress workers (SO_REUSEPORT accept sharding).
  int ingress_workers = 2;

  // qes_cluster driver (ignored by qes_sim and qesd).
  /// Number of in-process server shards.
  int nodes = 2;
  /// Global power budget H water-filled across the nodes; <= 0 means
  /// nodes * engine.power_budget.
  double total_budget = -1.0;
  /// Dispatch policy: "crr", "jsq", or "p2c".
  std::string dispatch = "crr";
  /// Broker re-water-fill cadence (wall ms live, virtual ms in replay).
  double broker_period_ms = 20.0;
  /// Per-node scrape endpoints: node i binds this port + i (0 gives
  /// every node an ephemeral port; -1 disables).
  int node_http_base_port = -1;
  /// Per-node wire ingress: node i listens on this port + i (0 gives
  /// every node an ephemeral port; -1 disables).
  int node_listen_base_port = -1;
  /// Fault injection: kill this node at --kill-at-s (both or neither).
  int kill_node = -1;
  double kill_at_s = -1.0;
  /// Run every dispatch policy on the same traffic and print a table.
  bool compare_dispatch = false;

  bool json = false;
  bool help = false;
};

/// Parses argv (argv[0] ignored). Throws std::invalid_argument on
/// malformed input.
[[nodiscard]] Options parse_options(const std::vector<std::string>& args);

/// The --help text.
[[nodiscard]] std::string usage();

/// Builds the engine config (applying quality_c, discrete cap, etc.) and
/// a policy factory from parsed options.
[[nodiscard]] EngineConfig make_engine_config(const Options& opt);
[[nodiscard]] std::unique_ptr<SchedulingPolicy> make_policy(
    const Options& opt);

/// Human-readable policy label ("DES[C-DVFS]", "FCFS+WF", ...).
[[nodiscard]] std::string policy_label(const Options& opt);

}  // namespace qes::cli
