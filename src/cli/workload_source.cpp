#include "cli/workload_source.hpp"

#include <stdexcept>

#include "workload/trace_io.hpp"

namespace qes::cli {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("workload spec: " + what);
}

void validate_common(const WorkloadConfig& wl) {
  require(wl.arrival_rate > 0.0, "arrival rate must be positive");
  require(wl.horizon_ms > 0.0, "horizon must be positive");
  require(wl.deadline_ms > 0.0, "deadline must be positive");
  require(wl.partial_fraction >= 0.0 && wl.partial_fraction <= 1.0,
          "partial fraction must be in [0, 1]");
  require(wl.premium_fraction >= 0.0 && wl.premium_fraction <= 1.0,
          "premium fraction must be in [0, 1]");
  require(wl.pareto_alpha > 0.0, "pareto alpha must be positive");
  require(wl.demand_min > 0.0 && wl.demand_max >= wl.demand_min,
          "demand bounds must satisfy 0 < min <= max");
}

}  // namespace

const std::vector<std::string>& workload_regimes() {
  static const std::vector<std::string> kRegimes = {
      "poisson", "uniform", "diurnal", "mmpp", "flash", "trace"};
  return kRegimes;
}

std::vector<Job> make_jobs(const WorkloadSourceSpec& spec) {
  const WorkloadConfig& wl = spec.workload;

  if (spec.regime == "trace") {
    require(!spec.trace_path.empty(), "trace regime needs a trace path");
    return load_job_trace(spec.trace_path);  // throws if unreadable
  }

  validate_common(wl);

  if (spec.regime == "poisson") {
    return generate_websearch_jobs(wl);
  }

  if (spec.regime == "uniform") {
    // Evenly spaced arrivals with the websearch demand model: assemble
    // through the generic arrival interface.
    Xoshiro256 rng(wl.seed);
    const UniformArrivals arrivals(wl.arrival_rate);
    const BoundedPareto demands(wl.pareto_alpha, wl.demand_min,
                                wl.demand_max);
    std::vector<Job> jobs;
    JobId next_id = 1;
    for (Time t : generate_arrivals(arrivals, wl.horizon_ms, rng)) {
      Job j;
      j.id = next_id++;
      j.release = t;
      j.deadline = t + wl.deadline_ms;
      j.demand = demands.sample(rng);
      j.partial_ok = rng.bernoulli(wl.partial_fraction);
      jobs.push_back(j);
    }
    return jobs;
  }

  if (spec.regime == "diurnal") {
    require(spec.diurnal_amplitude >= 0.0 && spec.diurnal_amplitude < 1.0,
            "diurnal amplitude must be in [0, 1)");
    require(spec.diurnal_period_ms > 0.0,
            "diurnal period must be positive");
    DiurnalConfig dc;
    dc.base_rate = wl.arrival_rate;
    dc.amplitude = spec.diurnal_amplitude;
    dc.period_ms = spec.diurnal_period_ms;
    dc.horizon_ms = wl.horizon_ms;
    dc.deadline_ms = wl.deadline_ms;
    dc.partial_fraction = wl.partial_fraction;
    dc.pareto_alpha = wl.pareto_alpha;
    dc.demand_min = wl.demand_min;
    dc.demand_max = wl.demand_max;
    dc.seed = wl.seed;
    return generate_diurnal_jobs(dc);
  }

  if (spec.regime == "mmpp") {
    const double hi = spec.mmpp_rate_hi > 0.0 ? spec.mmpp_rate_hi
                                              : 4.0 * wl.arrival_rate;
    require(hi >= wl.arrival_rate,
            "mmpp high rate must be at least the low rate");
    require(spec.mmpp_dwell_lo_ms > 0.0 && spec.mmpp_dwell_hi_ms > 0.0,
            "mmpp dwell times must be positive");
    MmppConfig mc;
    mc.rate_lo = wl.arrival_rate;
    mc.rate_hi = hi;
    mc.dwell_lo_ms = spec.mmpp_dwell_lo_ms;
    mc.dwell_hi_ms = spec.mmpp_dwell_hi_ms;
    mc.horizon_ms = wl.horizon_ms;
    mc.deadline_ms = wl.deadline_ms;
    mc.partial_fraction = wl.partial_fraction;
    mc.pareto_alpha = wl.pareto_alpha;
    mc.demand_min = wl.demand_min;
    mc.demand_max = wl.demand_max;
    mc.seed = wl.seed;
    return generate_mmpp_jobs(mc);
  }

  if (spec.regime == "flash") {
    require(spec.flash_factor >= 1.0, "flash factor must be >= 1");
    FlashConfig fc;
    fc.base_rate = wl.arrival_rate;
    fc.spike_factor = spec.flash_factor;
    fc.spike_at_ms =
        spec.flash_at_ms > 0.0 ? spec.flash_at_ms : wl.horizon_ms / 4.0;
    fc.spike_len_ms =
        spec.flash_len_ms > 0.0 ? spec.flash_len_ms : wl.horizon_ms / 8.0;
    require(fc.spike_at_ms < wl.horizon_ms,
            "flash spike must start inside the horizon");
    fc.horizon_ms = wl.horizon_ms;
    fc.deadline_ms = wl.deadline_ms;
    fc.partial_fraction = wl.partial_fraction;
    fc.pareto_alpha = wl.pareto_alpha;
    fc.demand_min = wl.demand_min;
    fc.demand_max = wl.demand_max;
    fc.seed = wl.seed;
    return generate_flash_jobs(fc);
  }

  std::string known;
  for (const std::string& r : workload_regimes()) {
    if (!known.empty()) known += ", ";
    known += r;
  }
  throw std::invalid_argument("workload spec: unknown arrival regime \"" +
                              spec.regime + "\" (expected one of: " + known +
                              ")");
}

}  // namespace qes::cli
