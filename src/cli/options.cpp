#include "cli/options.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "multicore/baseline_scheduler.hpp"

namespace qes::cli {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::invalid_argument(msg);
}

double to_double(const std::string& flag, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double x = std::stod(v, &pos);
    if (pos != v.size()) fail(flag + ": trailing junk in '" + v + "'");
    return x;
  } catch (const std::invalid_argument&) {
    fail(flag + ": expected a number, got '" + v + "'");
  } catch (const std::out_of_range&) {
    fail(flag + ": out of range: '" + v + "'");
  }
}

int to_int(const std::string& flag, const std::string& v) {
  const double x = to_double(flag, v);
  const int i = static_cast<int>(x);
  if (static_cast<double>(i) != x) fail(flag + ": expected an integer");
  return i;
}

}  // namespace

Options parse_options(const std::vector<std::string>& args) {
  Options opt;
  auto need_value = [&](std::size_t& i, const std::string& flag) {
    if (i + 1 >= args.size()) fail(flag + ": missing value");
    return args[++i];
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      opt.help = true;
    } else if (a == "--policy") {
      const std::string v = need_value(i, a);
      if (v == "des") opt.policy = PolicyKind::DES;
      else if (v == "fcfs") opt.policy = PolicyKind::FCFS;
      else if (v == "ljf") opt.policy = PolicyKind::LJF;
      else if (v == "sjf") opt.policy = PolicyKind::SJF;
      else fail("--policy: unknown policy '" + v + "'");
    } else if (a == "--arch") {
      const std::string v = need_value(i, a);
      if (v == "cdvfs") opt.arch = Architecture::CDVFS;
      else if (v == "sdvfs") opt.arch = Architecture::SDVFS;
      else if (v == "nodvfs") opt.arch = Architecture::NoDVFS;
      else fail("--arch: unknown architecture '" + v + "'");
    } else if (a == "--wf") {
      opt.baseline_power = PowerDistribution::WaterFilling;
    } else if (a == "--static") {
      opt.baseline_power = PowerDistribution::StaticEqual;
      opt.static_power = true;
    } else if (a == "--cores") {
      opt.engine.cores = to_int(a, need_value(i, a));
      if (opt.engine.cores <= 0) fail("--cores: must be positive");
    } else if (a == "--budget") {
      opt.engine.power_budget = to_double(a, need_value(i, a));
      if (opt.engine.power_budget <= 0.0) fail("--budget: must be positive");
    } else if (a == "--quantum") {
      opt.engine.quantum_ms = to_double(a, need_value(i, a));
    } else if (a == "--counter") {
      opt.engine.counter_trigger = to_int(a, need_value(i, a));
    } else if (a == "--rate") {
      opt.workload.arrival_rate = to_double(a, need_value(i, a));
      if (opt.workload.arrival_rate <= 0.0) fail("--rate: must be positive");
    } else if (a == "--seconds") {
      const double s = to_double(a, need_value(i, a));
      if (s <= 0.0) fail("--seconds: must be positive");
      opt.workload.horizon_ms = s * 1000.0;
    } else if (a == "--deadline") {
      opt.workload.deadline_ms = to_double(a, need_value(i, a));
      if (opt.workload.deadline_ms <= 0.0) fail("--deadline: must be positive");
    } else if (a == "--partial") {
      opt.workload.partial_fraction = to_double(a, need_value(i, a));
      if (opt.workload.partial_fraction < 0.0 ||
          opt.workload.partial_fraction > 1.0) {
        fail("--partial: must be in [0, 1]");
      }
    } else if (a == "--seed") {
      opt.workload.seed = static_cast<std::uint64_t>(
          to_int(a, need_value(i, a)));
    } else if (a == "--seeds") {
      opt.seeds = to_int(a, need_value(i, a));
      if (opt.seeds <= 0) fail("--seeds: must be positive");
    } else if (a == "--c") {
      opt.quality_c = to_double(a, need_value(i, a));
      if (opt.quality_c <= 0.0) fail("--c: must be positive");
    } else if (a == "--discrete") {
      opt.discrete = true;
    } else if (a == "--eager") {
      opt.eager = true;
    } else if (a == "--resume") {
      opt.resume = true;
    } else if (a == "--rebalance") {
      opt.rebalance = true;
    } else if (a == "--rr") {
      opt.plain_rr = true;
    } else if (a == "--weighted") {
      opt.weighted = true;
    } else if (a == "--premium") {
      opt.workload.premium_fraction = to_double(a, need_value(i, a));
      if (opt.workload.premium_fraction < 0.0 ||
          opt.workload.premium_fraction > 1.0) {
        fail("--premium: must be in [0, 1]");
      }
    } else if (a == "--little") {
      opt.little_cores = to_int(a, need_value(i, a));
      if (opt.little_cores < 0) fail("--little: must be >= 0");
    } else if (a == "--little-cap") {
      opt.little_cap = to_double(a, need_value(i, a));
      if (opt.little_cap <= 0.0) fail("--little-cap: must be positive");
    } else if (a == "--premium-weight") {
      opt.workload.premium_weight = to_double(a, need_value(i, a));
      if (opt.workload.premium_weight <= 0.0) {
        fail("--premium-weight: must be positive");
      }
    } else if (a == "--sweep") {
      const std::string v = need_value(i, a);
      double lo = 0.0, hi = 0.0, step = 0.0;
      char c1 = 0, c2 = 0;
      std::istringstream ss(v);
      if (!(ss >> lo >> c1 >> hi >> c2 >> step) || c1 != ':' || c2 != ':' ||
          step <= 0.0 || hi < lo) {
        fail("--sweep: expected LO:HI:STEP with STEP>0, got '" + v + "'");
      }
      for (double r = lo; r <= hi + 1e-9; r += step) {
        opt.sweep_rates.push_back(r);
      }
    } else if (a == "--duration-s") {
      opt.duration_s = to_double(a, need_value(i, a));
      if (opt.duration_s <= 0.0) fail("--duration-s: must be positive");
    } else if (a == "--arrival-rate") {
      // qesd spelling of --rate; both feed workload.arrival_rate.
      opt.workload.arrival_rate = to_double(a, need_value(i, a));
      if (opt.workload.arrival_rate <= 0.0) {
        fail("--arrival-rate: must be positive");
      }
    } else if (a == "--producers") {
      opt.producers = to_int(a, need_value(i, a));
      // 0 is legal: a wire-driven run (--listen-port) needs no in-process
      // producers.
      if (opt.producers < 0) fail("--producers: must be >= 0");
    } else if (a == "--metrics-interval-ms") {
      opt.metrics_interval_ms = to_double(a, need_value(i, a));
      if (opt.metrics_interval_ms <= 0.0) {
        fail("--metrics-interval-ms: must be positive");
      }
    } else if (a == "--time-scale") {
      opt.time_scale = to_double(a, need_value(i, a));
      if (opt.time_scale <= 0.0) fail("--time-scale: must be positive");
    } else if (a == "--conform") {
      opt.conform = true;
    } else if (a == "--metrics-format") {
      opt.metrics_format = need_value(i, a);
      if (opt.metrics_format != "json" && opt.metrics_format != "prom") {
        fail("--metrics-format: expected json or prom, got '" +
             opt.metrics_format + "'");
      }
    } else if (a == "--http-port") {
      opt.http_port = to_int(a, need_value(i, a));
      if (opt.http_port < 0 || opt.http_port > 65535) {
        fail("--http-port: must be in [0, 65535] (0 = ephemeral)");
      }
    } else if (a == "--node-http-base-port") {
      opt.node_http_base_port = to_int(a, need_value(i, a));
      if (opt.node_http_base_port < 0 || opt.node_http_base_port > 65535) {
        fail("--node-http-base-port: must be in [0, 65535] (0 = ephemeral)");
      }
    } else if (a == "--listen-port") {
      opt.listen_port = to_int(a, need_value(i, a));
      if (opt.listen_port < 0 || opt.listen_port > 65535) {
        fail("--listen-port: must be in [0, 65535] (0 = ephemeral)");
      }
    } else if (a == "--ingress-workers") {
      opt.ingress_workers = to_int(a, need_value(i, a));
      if (opt.ingress_workers <= 0 || opt.ingress_workers > 64) {
        fail("--ingress-workers: must be in [1, 64]");
      }
    } else if (a == "--node-listen-base-port") {
      opt.node_listen_base_port = to_int(a, need_value(i, a));
      if (opt.node_listen_base_port < 0 || opt.node_listen_base_port > 65535) {
        fail("--node-listen-base-port: must be in [0, 65535] (0 = ephemeral)");
      }
    } else if (a == "--trace-chrome") {
      opt.trace_chrome = need_value(i, a);
      if (opt.trace_chrome->empty()) fail("--trace-chrome: empty path");
    } else if (a == "--nodes") {
      opt.nodes = to_int(a, need_value(i, a));
      if (opt.nodes <= 0) fail("--nodes: must be positive");
    } else if (a == "--total-budget") {
      opt.total_budget = to_double(a, need_value(i, a));
      if (opt.total_budget <= 0.0) fail("--total-budget: must be positive");
    } else if (a == "--dispatch") {
      opt.dispatch = need_value(i, a);
      if (opt.dispatch != "crr" && opt.dispatch != "jsq" &&
          opt.dispatch != "p2c") {
        fail("--dispatch: expected crr, jsq, or p2c, got '" + opt.dispatch +
             "'");
      }
    } else if (a == "--broker-period-ms") {
      opt.broker_period_ms = to_double(a, need_value(i, a));
      if (opt.broker_period_ms <= 0.0) {
        fail("--broker-period-ms: must be positive");
      }
    } else if (a == "--kill-node") {
      opt.kill_node = to_int(a, need_value(i, a));
      if (opt.kill_node < 0) fail("--kill-node: must be >= 0");
    } else if (a == "--kill-at-s") {
      opt.kill_at_s = to_double(a, need_value(i, a));
      if (opt.kill_at_s <= 0.0) fail("--kill-at-s: must be positive");
    } else if (a == "--compare-dispatch") {
      opt.compare_dispatch = true;
    } else if (a == "--trace-in") {
      opt.trace_in = need_value(i, a);
    } else if (a == "--trace-out") {
      opt.trace_out = need_value(i, a);
    } else if (a == "--json") {
      opt.json = true;
    } else {
      fail("unknown flag '" + a + "' (see --help)");
    }
  }
  if (opt.policy != PolicyKind::DES &&
      (opt.discrete || opt.eager || opt.resume || opt.rebalance ||
       opt.plain_rr || opt.weighted || opt.arch != Architecture::CDVFS)) {
    fail("DES-only flags used with a baseline policy");
  }
  if (opt.weighted && (opt.discrete || opt.arch != Architecture::CDVFS)) {
    fail("--weighted requires continuous C-DVFS");
  }
  if (opt.little_cores > opt.engine.cores) {
    fail("--little: more little cores than cores");
  }
  if ((opt.kill_node >= 0) != (opt.kill_at_s > 0.0)) {
    fail("--kill-node and --kill-at-s must be given together");
  }
  if (opt.kill_node >= opt.nodes) {
    fail("--kill-node: node index out of range");
  }
  return opt;
}

std::string usage() {
  return R"(qes_sim - web-search scheduling simulator (IPDPS'13 reproduction)

usage: qes_sim [options]

scheduling:
  --policy des|fcfs|ljf|sjf   scheduler (default des)
  --arch cdvfs|sdvfs|nodvfs   DVFS architecture for DES (default cdvfs)
  --wf                        water-filling power for baselines
  --static                    static equal power (DES ablation / baselines)
  --discrete                  Opteron {0.8,1.3,1.8,2.5} GHz speed levels
  --eager --resume --rebalance --rr    DES extensions/ablations
  --weighted                  weighted quality planning (uses job weights)

server (defaults = paper Sec V-B):
  --cores N       (16)        --budget W    (320)
  --quantum MS    (500)       --counter N   (8)
  --c VALUE       (0.003)     quality-function concavity

workload:
  --rate R        (150)       requests/second
  --seconds S     (60)        simulated duration
  --deadline MS   (150)       relative deadline
  --partial F     (1.0)       fraction supporting partial evaluation
  --premium F     (0.0)       fraction of premium (weighted) jobs
  --premium-weight W (4.0)    weight carried by premium jobs
  --little N      (0)         big.LITTLE: N cores capped at --little-cap
  --little-cap G  (1.0)       speed cap of the little cores (GHz)
  --seed N        (1)         workload seed
  --trace-in FILE             replay a CSV job trace instead
  --trace-out FILE            save the generated trace

experiment:
  --sweep LO:HI:STEP          sweep arrival rates instead of one run
  --seeds N       (1)         replicates averaged per point
  --json                      machine-readable output

qesd runtime driver (ignored by qes_sim):
  --duration-s S  (30)        virtual seconds of admitted traffic
  --arrival-rate R (150)      requests/virtual second (alias of --rate)
  --producers N   (4)         producer threads
  --metrics-interval-ms MS (1000)  wall ms between metrics snapshots
  --time-scale K  (1)         virtual ms per wall ms (time dilation)
  --conform                   replay sim vs runtime, report agreement
  --metrics-format json|prom  final metrics exposition (default json);
                              prom additionally dumps the obs registry in
                              Prometheus text format
  --http-port P               serve /metrics, /metrics.json, /healthz,
                              /tracez on 127.0.0.1:P while the run is
                              live (0 = ephemeral port, printed at start)
  --listen-port P             accept wire-level requests (SUBMIT/REPLY
                              frames or HTTP POST /submit) on
                              127.0.0.1:P (0 = ephemeral, printed at
                              start); pairs with qes_loadgen
  --ingress-workers N (2)     epoll ingress workers (SO_REUSEPORT
                              accept sharding)
  --trace-chrome FILE         write the request spans as a Chrome
                              trace-event file (load in Perfetto)
  --trace-out FILE            (qesd) write the job lifecycle trace as
                              JSONL instead of saving a workload CSV
  --seed N        (1)         also seeds the qesd/qes_cluster Poisson
                              producers (producer p draws from stream
                              seed + 1000003*(p+1)); same seed + rate
                              + duration => same offered traffic

qes_cluster driver (ignored by qes_sim and qesd):
  --nodes N       (2)         in-process server shards
  --total-budget W            global budget H water-filled across nodes
                              (default: nodes * --budget)
  --dispatch crr|jsq|p2c      routing policy (cluster C-RR default)
  --broker-period-ms MS (20)  budget re-water-fill cadence
  --node-http-base-port P     per-node scrape endpoints: node i serves
                              on P + i (0 = ephemeral ports); --http-port
                              adds the cluster-aggregate endpoint
  --node-listen-base-port P   per-node wire ingress: node i accepts
                              SUBMIT frames on P + i (0 = ephemeral
                              ports)
  --kill-node I --kill-at-s S fault injection: node I dies at S virtual
                              seconds (both flags required together)
  --compare-dispatch          run crr, jsq, and p2c on identical traffic
                              and print a comparison table
)";
}

EngineConfig make_engine_config(const Options& opt) {
  EngineConfig cfg = opt.engine;
  cfg.quality = QualityFunction::exponential(opt.quality_c);
  if (opt.little_cores > 0) {
    const Speed big_cap = opt.discrete
                              ? DiscreteSpeedSet::opteron2380().max_speed()
                              : cfg.max_core_speed;
    cfg.per_core_max_speed.assign(
        static_cast<std::size_t>(cfg.cores - opt.little_cores), big_cap);
    cfg.per_core_max_speed.insert(
        cfg.per_core_max_speed.end(),
        static_cast<std::size_t>(opt.little_cores), opt.little_cap);
  }
  cfg.resume_passed_jobs = opt.resume;
  cfg.record_execution = false;
  if (opt.discrete) {
    cfg.max_core_speed = DiscreteSpeedSet::opteron2380().max_speed();
  }
  if (opt.policy != PolicyKind::DES) {
    cfg = baseline_engine_config(cfg);
  }
  return cfg;
}

std::unique_ptr<SchedulingPolicy> make_policy(const Options& opt) {
  if (opt.policy == PolicyKind::DES) {
    DesOptions d;
    d.arch = opt.arch;
    if (opt.discrete) d.speed_levels = DiscreteSpeedSet::opteron2380();
    d.plain_round_robin = opt.plain_rr;
    d.static_power = opt.static_power;
    d.eager_execution = opt.eager;
    d.rebalance_unstarted = opt.rebalance;
    d.weighted = opt.weighted;
    return make_des_policy(d);
  }
  BaselineOptions b;
  b.order = opt.policy == PolicyKind::FCFS  ? BaselineOrder::FCFS
            : opt.policy == PolicyKind::LJF ? BaselineOrder::LJF
                                            : BaselineOrder::SJF;
  b.power = opt.baseline_power;
  return make_baseline_policy(b);
}

std::string policy_label(const Options& opt) {
  if (opt.policy == PolicyKind::DES) {
    std::string s = "DES[";
    s += to_string(opt.arch);
    if (opt.discrete) s += ",discrete";
    if (opt.static_power) s += ",static";
    if (opt.eager) s += ",eager";
    if (opt.resume) s += ",resume";
    if (opt.rebalance) s += ",rebalance";
    if (opt.weighted) s += ",weighted";
    if (opt.plain_rr) s += ",RR";
    s += "]";
    return s;
  }
  std::string s = opt.policy == PolicyKind::FCFS  ? "FCFS"
                  : opt.policy == PolicyKind::LJF ? "LJF"
                                                  : "SJF";
  if (opt.baseline_power == PowerDistribution::WaterFilling) s += "+WF";
  return s;
}

}  // namespace qes::cli
