#include "multicore/des_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/assert.hpp"
#include "multicore/crr.hpp"
#include "multicore/power_waterfill.hpp"
#include "obs/phase_profiler.hpp"
#include "sched/online_qe.hpp"
#include "sched/quality_opt.hpp"
#include "sched/weighted_quality.hpp"
#include "sched/yds.hpp"

namespace qes {

namespace {

// Planned additional volume per job plus the executable timetable.
struct CorePlan {
  Schedule plan;
  std::map<JobId, Work> planned;
};

// Snapshot of one core's live jobs as the single-core algorithms see it.
std::vector<ReadyJob> ready_snapshot(const Engine& eng, int core) {
  std::vector<ReadyJob> ready;
  const Time now = eng.now();
  bool first = true;
  for (JobId id : eng.assigned(core)) {
    const JobState& st = eng.job(id);
    QES_ASSERT(st.job.deadline > now + kTimeEps);
    ReadyJob rj;
    rj.id = id;
    rj.deadline = st.job.deadline;
    rj.demand = st.job.demand;
    rj.processed = st.processed;
    rj.running = first && st.processed > kTimeEps;
    first = false;
    ready.push_back(rj);
  }
  return ready;
}

// Budget-free per-core YDS (DES step 2): remaining demands, all released
// now. Returns the plan, its power request at `now`, and its top speed.
struct BudgetFree {
  Schedule plan;
  Watts power_at_now = 0.0;
  Speed max_speed = 0.0;
};

BudgetFree budget_free_plan(const Engine& eng, int core) {
  BudgetFree out;
  const Time now = eng.now();
  std::vector<Job> jobs;
  for (JobId id : eng.assigned(core)) {
    const JobState& st = eng.job(id);
    const Work remaining = st.job.demand - st.processed;
    if (remaining <= kTimeEps) continue;
    jobs.push_back(Job{.id = id,
                       .release = now,
                       .deadline = st.job.deadline,
                       .demand = remaining});
  }
  if (jobs.empty()) return out;
  YdsResult y = yds_schedule(AgreeableJobSet(std::move(jobs)));
  out.max_speed = y.critical_speed;
  out.power_at_now =
      eng.config().power_model.dynamic_power(y.schedule.speed_at(now));
  out.plan = std::move(y.schedule);
  return out;
}

// Fixed-speed planning used by the No-DVFS and S-DVFS variants: run
// Quality-OPT (with the running job's release rewound exactly as in
// Online-QE step 1) and lay the granted volumes out FIFO from `now`.
CorePlan fixed_speed_plan(const Engine& eng, int core, Speed speed,
                          bool baseline_mode) {
  CorePlan out;
  if (speed <= kTimeEps) return out;
  const Time now = eng.now();
  const auto ready = ready_snapshot(eng, core);
  if (ready.empty()) return out;

  std::vector<Job> adjusted;
  std::vector<Work> baselines;
  for (const ReadyJob& rj : ready) {
    Job j{.id = rj.id, .release = now, .deadline = rj.deadline,
          .demand = rj.demand};
    if (!baseline_mode && rj.running) {
      j.release = now - rj.processed / speed;
    }
    baselines.push_back(rj.processed);
    adjusted.push_back(j);
  }
  const AgreeableJobSet set(std::move(adjusted));
  const QualityOptResult q =
      baseline_mode ? quality_opt_schedule(set, speed, baselines)
                    : quality_opt_schedule(set, speed);

  Time t = now;
  for (std::size_t k = 0; k < set.size(); ++k) {
    Work rem = q.volumes[k];
    if (set[k].release < now - kTimeEps) {
      rem -= (now - set[k].release) * speed;  // running job's prior volume
    }
    if (rem <= kTimeEps) continue;
    const Time finish = t + rem / speed;
    QES_ASSERT_MSG(approx_le(finish, set[k].deadline, 1e-5),
                   "fixed-speed plan must meet deadlines");
    out.plan.push({t, finish, set[k].id, speed});
    out.planned[set[k].id] = rem;
    t = finish;
  }
  return out;
}

// Budget-bounded planning for one core (DES step 4). In the paper's
// execution model this is Online-QE; in the resume ablation the
// baseline-aware Quality-OPT + YDS pair replaces it so previously served
// non-running jobs keep their credit.
// Re-time granted volumes flat-out at the core's max speed (the eager
// ablation): jobs only finish earlier than in the stretched plan, so
// deadlines keep holding.
Schedule eager_timetable(const Engine& eng, int core, Time now,
                         const std::map<JobId, Work>& planned,
                         Speed max_speed) {
  Schedule out;
  Time t = now;
  for (JobId id : eng.assigned(core)) {
    const auto it = planned.find(id);
    if (it == planned.end() || it->second <= kTimeEps) continue;
    const Time finish = t + it->second / max_speed;
    QES_ASSERT_MSG(approx_le(finish, eng.job(id).job.deadline, 1e-5),
                   "eager timetable must meet deadlines");
    out.push({t, finish, id, max_speed});
    t = finish;
  }
  return out;
}

CorePlan budget_bounded_plan(const Engine& eng, int core, Speed max_speed,
                             bool eager, bool baseline_mode) {
  CorePlan out;
  if (max_speed <= kTimeEps) return out;
  const Time now = eng.now();

  // The paper's Online-QE rewinds the running job's release, which
  // requires the earliest-deadline job to be the one with prior volume.
  // Rebalancing and the resume ablation can violate that, so they use
  // the baseline-aware Quality-OPT + YDS pair instead.
  if (!baseline_mode) {
    OnlineQeResult r = online_qe(now, ready_snapshot(eng, core), max_speed);
    out.plan = std::move(r.schedule);
    out.planned = std::move(r.planned);
    if (eager) {
      out.plan = eager_timetable(eng, core, now, out.planned, max_speed);
    }
    return out;
  }

  // Baseline mode: every job may carry prior volume as a baseline.
  std::vector<Job> jobs;
  std::vector<Work> baselines;
  for (JobId id : eng.assigned(core)) {
    const JobState& st = eng.job(id);
    jobs.push_back(Job{.id = id,
                       .release = now,
                       .deadline = st.job.deadline,
                       .demand = st.job.demand});
    baselines.push_back(st.processed);
  }
  if (jobs.empty()) return out;
  const AgreeableJobSet set(std::move(jobs));
  const QualityOptResult q = quality_opt_schedule(set, max_speed, baselines);

  std::vector<Job> step2;
  for (std::size_t k = 0; k < set.size(); ++k) {
    if (q.volumes[k] <= kTimeEps) continue;
    Job j = set[k];
    j.demand = q.volumes[k];
    out.planned[j.id] = q.volumes[k];
    step2.push_back(j);
  }
  if (step2.empty()) return out;
  YdsResult y =
      yds_schedule_capped(AgreeableJobSet(std::move(step2)), max_speed);
  out.plan = std::move(y.schedule);
  for (auto& [id, planned] : out.planned) {
    planned = std::min(planned, out.plan.volume_of(id));
  }
  return out;
}

// Weighted budget-bounded planning (extension): allocate volumes by
// weighted quality (baseline-aware, so mid-queue prior volume is fine),
// then YDS the granted volumes.
CorePlan weighted_budget_bounded_plan(const Engine& eng, int core,
                                      Speed max_speed, bool eager) {
  CorePlan out;
  if (max_speed <= kTimeEps) return out;
  const Time now = eng.now();
  std::vector<Job> jobs;
  std::vector<Work> baselines;
  std::vector<double> weights;
  for (JobId id : eng.assigned(core)) {
    const JobState& st = eng.job(id);
    jobs.push_back(Job{.id = id,
                       .release = now,
                       .deadline = st.job.deadline,
                       .demand = st.job.demand,
                       .weight = st.job.weight});
    baselines.push_back(st.processed);
    weights.push_back(st.job.weight);
  }
  if (jobs.empty()) return out;
  const AgreeableJobSet set(std::move(jobs));
  // AgreeableJobSet sorts; re-align weights/baselines with sorted order.
  std::vector<double> w_sorted(set.size());
  std::vector<Work> b_sorted(set.size());
  for (std::size_t k = 0; k < set.size(); ++k) {
    const JobState& st = eng.job(set[k].id);
    w_sorted[k] = st.job.weight;
    b_sorted[k] = st.processed;
  }
  const auto q = weighted_quality_opt_schedule(
      set, max_speed, w_sorted, eng.config().quality, b_sorted);

  std::vector<Job> step2;
  for (std::size_t k = 0; k < set.size(); ++k) {
    if (q.volumes[k] <= kTimeEps) continue;
    Job j = set[k];
    j.demand = q.volumes[k];
    out.planned[j.id] = q.volumes[k];
    step2.push_back(j);
  }
  if (step2.empty()) return out;
  if (eager) {
    out.plan = eager_timetable(eng, core, now, out.planned, max_speed);
    return out;
  }
  YdsResult y =
      yds_schedule_capped(AgreeableJobSet(std::move(step2)), max_speed);
  out.plan = std::move(y.schedule);
  for (auto& [id, planned] : out.planned) {
    planned = std::min(planned, out.plan.volume_of(id));
  }
  return out;
}

// Re-time a plan onto discrete speed levels: each segment's volume runs
// at the snapped-up level (never above `cap`, itself a level), packed
// back-to-back from `now`. Jobs only finish earlier, so deadlines hold.
Schedule quantize_plan(const Schedule& plan, Time now,
                       const DiscreteSpeedSet& levels, Speed cap) {
  Schedule out;
  Time t = now;
  for (const Segment& s : plan.segments()) {
    const auto snapped = levels.snap_up(s.speed);
    QES_ASSERT_MSG(snapped && *snapped <= cap + kTimeEps,
                   "quantized speed must stay within the rectified level");
    const Time dur = s.volume() / *snapped;
    out.push({t, t + dur, s.job, *snapped});
    t += dur;
  }
  return out;
}

class DesPolicy final : public SchedulingPolicy {
 public:
  explicit DesPolicy(DesOptions opt) : opt_(opt) {}

  [[nodiscard]] std::string name() const override {
    std::string n = "DES[";
    n += to_string(opt_.arch);
    if (opt_.speed_levels) n += ",discrete";
    if (opt_.plain_round_robin) n += ",RR";
    if (opt_.static_power) n += ",static";
    if (opt_.rebalance_unstarted) n += ",rebalance";
    if (opt_.weighted) n += ",weighted";
    if (opt_.capacity_aware_distribution) n += ",cap-aware";
    if (opt_.eager_execution) n += ",eager";
    n += "]";
    return n;
  }

  void replan(Engine& eng) override {
    if (!crr_) crr_ = std::make_unique<CumulativeRoundRobin>(
        static_cast<std::size_t>(eng.cores()));
    if (!profiler_) {
      profiler_ = std::make_unique<obs::PhaseProfiler>(
          eng.config().registry, "qes_sim_replan_phase_ms",
          "wall time per DES replan phase (ms)");
    }

    // Step 1: ready-job distribution.
    {
      auto timer = profiler_->phase("crr");
      distribute_jobs(eng);
    }

    switch (opt_.arch) {
      case Architecture::NoDVFS: replan_no_dvfs(eng); break;
      case Architecture::SDVFS: replan_s_dvfs(eng); break;
      case Architecture::CDVFS: replan_c_dvfs(eng); break;
    }
  }

 private:
  // Weighted dealer for capacity-aware distribution, built lazily from
  // the per-core speed caps (uncapped cores weigh as the largest finite
  // cap, or 1 if none is finite).
  SmoothWeightedRoundRobin& capacity_dealer(const Engine& eng) {
    if (!swrr_) {
      std::vector<double> weights;
      double max_finite = 0.0;
      for (int i = 0; i < eng.cores(); ++i) {
        const Speed cap = eng.config().core_speed_cap(i);
        if (std::isfinite(cap)) max_finite = std::max(max_finite, cap);
      }
      if (max_finite <= 0.0) max_finite = 1.0;
      for (int i = 0; i < eng.cores(); ++i) {
        const Speed cap = eng.config().core_speed_cap(i);
        weights.push_back(std::isfinite(cap) ? cap : max_finite);
      }
      swrr_ = std::make_unique<SmoothWeightedRoundRobin>(std::move(weights));
    }
    return *swrr_;
  }

  void distribute_jobs(Engine& eng) {
    if (opt_.rebalance_unstarted) {
      std::vector<JobId> pull;
      for (int i = 0; i < eng.cores(); ++i) {
        for (JobId id : eng.assigned(i)) {
          if (eng.job(id).processed <= kTimeEps) pull.push_back(id);
        }
      }
      for (JobId id : pull) eng.unassign_from_core(id);
    }
    const std::vector<JobId> waiting(eng.waiting().begin(),
                                     eng.waiting().end());
    std::vector<std::size_t> targets;
    if (opt_.capacity_aware_distribution) {
      targets = capacity_dealer(eng).distribute(waiting.size());
    } else if (opt_.plain_round_robin) {
      targets = PlainRoundRobin(static_cast<std::size_t>(eng.cores()))
                    .distribute(waiting.size());
    } else {
      targets = crr_->distribute(waiting.size());
    }
    for (std::size_t k = 0; k < waiting.size(); ++k) {
      eng.assign_to_core(waiting[k], static_cast<int>(targets[k]));
    }
  }

  // Installs a plan, discarding rigid (non-partial) jobs the plan cannot
  // complete and recomputing until stable (§V-D).
  template <typename PlanFn>
  void install_with_rigid_check(Engine& eng, int core, PlanFn make_plan) {
    for (;;) {
      CorePlan p = make_plan();
      JobId to_discard = 0;
      for (JobId id : eng.assigned(core)) {
        const JobState& st = eng.job(id);
        if (st.job.partial_ok) continue;
        const auto it = p.planned.find(id);
        const Work planned = it == p.planned.end() ? 0.0 : it->second;
        if (st.processed + planned + 1e-6 < st.job.demand) {
          to_discard = id;
          break;
        }
      }
      if (to_discard == 0) {
        // A partially executed job granted no further volume has been
        // dropped from the ready set by Online-QE (its fair share is
        // already met); under the paper's execution model it is
        // discarded now and never resumed.
        if (!eng.config().resume_passed_jobs) {
          std::vector<JobId> drop;
          for (JobId id : eng.assigned(core)) {
            if (eng.job(id).processed > kTimeEps && !p.planned.count(id)) {
              drop.push_back(id);
            }
          }
          for (JobId id : drop) eng.discard_job(id);
        }
        eng.set_core_plan(core, std::move(p.plan));
        return;
      }
      eng.discard_job(to_discard);
    }
  }

  void replan_no_dvfs(Engine& eng) {
    const EngineConfig& cfg = eng.config();
    const Speed share =
        cfg.power_model.speed_for_power(cfg.power_budget / cfg.cores);
    for (int i = 0; i < eng.cores(); ++i) {
      const Speed s0 = std::min(share, cfg.core_speed_cap(i));
      install_with_rigid_check(eng, i, [&] {
        return fixed_speed_plan(eng, i, s0, baseline_mode(eng));
      });
      eng.set_core_idle_power(i, cfg.power_model.dynamic_power(s0));
    }
  }

  void replan_s_dvfs(Engine& eng) {
    const EngineConfig& cfg = eng.config();
    // Step 2 with the chip-wide constraint: every core is granted the
    // hungriest core's request, clamped to the equal share H/m.
    Watts max_request = 0.0;
    for (int i = 0; i < eng.cores(); ++i) {
      max_request = std::max(max_request, budget_free_plan(eng, i).power_at_now);
    }
    const Watts common = std::min(max_request, cfg.power_budget / cfg.cores);
    for (int i = 0; i < eng.cores(); ++i) {
      const Speed sc = std::min(cfg.power_model.speed_for_power(common),
                                cfg.core_speed_cap(i));
      install_with_rigid_check(eng, i, [&] {
        return fixed_speed_plan(eng, i, sc, baseline_mode(eng));
      });
      // DVFS-capable cores draw no dynamic power while idle (clock
      // gating): only executing cores are charged at the common speed.
      eng.set_core_idle_power(i, 0.0);
    }
  }

  void replan_c_dvfs(Engine& eng) {
    const EngineConfig& cfg = eng.config();
    const int m = eng.cores();

    // Step 2: budget-free YDS per core.
    std::vector<BudgetFree> free_plans;
    free_plans.reserve(static_cast<std::size_t>(m));
    Watts total_request = 0.0;
    Speed top_speed = 0.0;
    {
      auto timer = profiler_->phase("yds");
      for (int i = 0; i < m; ++i) {
        free_plans.push_back(budget_free_plan(eng, i));
        total_request += free_plans.back().power_at_now;
        top_speed = std::max(top_speed, free_plans.back().max_speed);
      }
    }

    const bool continuous = !opt_.speed_levels.has_value();
    Speed min_core_cap = cfg.max_core_speed;
    for (int i = 0; i < m; ++i) {
      min_core_cap = std::min(min_core_cap, cfg.core_speed_cap(i));
    }
    if (continuous && !opt_.static_power && !opt_.eager_execution &&
        total_request <= cfg.power_budget + kTimeEps &&
        top_speed <= min_core_cap + kTimeEps) {
      // The optimistic schedules fit the budget: everyone completes.
      auto timer = profiler_->phase("online_qe");
      for (int i = 0; i < m; ++i) {
        eng.set_core_plan(i, std::move(free_plans[static_cast<std::size_t>(i)].plan));
        eng.set_core_idle_power(i, 0.0);
      }
      return;
    }

    // Step 3: power distribution. (Scope via optional so the WF timer
    // closes before step 4's timer opens, without re-nesting the code.)
    std::optional<obs::PhaseProfiler::Scope> timer;
    timer.emplace(profiler_->phase_histogram("wf"));
    std::vector<Watts> budgets;
    if (opt_.static_power) {
      budgets.assign(static_cast<std::size_t>(m), cfg.power_budget / m);
    } else {
      std::vector<Watts> requests;
      requests.reserve(static_cast<std::size_t>(m));
      for (const BudgetFree& f : free_plans) {
        requests.push_back(f.power_at_now);
      }
      budgets = waterfill_power(requests, cfg.power_budget);
      if (opt_.eager_execution) {
        // Requests reflect the energy-stretched plans; eager execution
        // wants to finish early, so hand the WF surplus to the active
        // cores in equal shares (the total stays within H).
        Watts assigned = 0.0;
        int active = 0;
        for (int i = 0; i < m; ++i) {
          assigned += budgets[static_cast<std::size_t>(i)];
          if (!eng.assigned(i).empty()) ++active;
        }
        if (active > 0 && cfg.power_budget > assigned + kTimeEps) {
          const Watts bonus = (cfg.power_budget - assigned) / active;
          for (int i = 0; i < m; ++i) {
            if (!eng.assigned(i).empty()) {
              budgets[static_cast<std::size_t>(i)] += bonus;
            }
          }
        }
      }
    }

    // Step 4: budget-bounded per-core planning.
    timer.emplace(profiler_->phase_histogram("online_qe"));
    if (continuous) {
      for (int i = 0; i < m; ++i) {
        const Speed cap = std::min(
            cfg.power_model.speed_for_power(budgets[static_cast<std::size_t>(i)]),
            cfg.core_speed_cap(i));
        install_with_rigid_check(eng, i, [&] {
          return opt_.weighted
                     ? weighted_budget_bounded_plan(eng, i, cap,
                                                    opt_.eager_execution)
                     : budget_bounded_plan(eng, i, cap,
                                           opt_.eager_execution,
                                           baseline_mode(eng));
        });
        eng.set_core_idle_power(i, 0.0);
      }
      return;
    }

    // Discrete scaling (§V-F): rectify the WF speeds onto the level set,
    // plan under the rectified cap, then re-time segments onto levels.
    const DiscreteSpeedSet& levels = *opt_.speed_levels;
    std::vector<Speed> continuous_speeds;
    continuous_speeds.reserve(static_cast<std::size_t>(m));
    for (int i = 0; i < m; ++i) {
      continuous_speeds.push_back(std::min(
          cfg.power_model.speed_for_power(budgets[static_cast<std::size_t>(i)]),
          std::min(cfg.core_speed_cap(i), levels.max_speed())));
    }
    const auto rectified = rectify_speeds_discrete(
        continuous_speeds, cfg.power_budget, levels, cfg.power_model);
    for (int i = 0; i < m; ++i) {
      const auto cap = rectified[static_cast<std::size_t>(i)];
      if (!cap) {
        eng.set_core_plan(i, Schedule{});
        eng.set_core_idle_power(i, 0.0);
        continue;
      }
      install_with_rigid_check(eng, i, [&] {
        CorePlan p = budget_bounded_plan(eng, i, *cap, opt_.eager_execution,
                                         baseline_mode(eng));
        p.plan = quantize_plan(p.plan, eng.now(), levels, *cap);
        return p;
      });
      eng.set_core_idle_power(i, 0.0);
    }
  }

  [[nodiscard]] bool baseline_mode(const Engine& eng) const {
    return eng.config().resume_passed_jobs || opt_.rebalance_unstarted;
  }

  DesOptions opt_;
  std::unique_ptr<CumulativeRoundRobin> crr_;
  std::unique_ptr<obs::PhaseProfiler> profiler_;
  std::unique_ptr<SmoothWeightedRoundRobin> swrr_;
};

}  // namespace

std::unique_ptr<SchedulingPolicy> make_des_policy(DesOptions options) {
  QES_ASSERT_MSG(!(options.speed_levels && options.arch != Architecture::CDVFS),
                 "discrete scaling is modelled for C-DVFS only");
  QES_ASSERT_MSG(!(options.weighted &&
                   (options.arch != Architecture::CDVFS ||
                    options.speed_levels)),
                 "weighted planning is continuous C-DVFS only");
  return std::make_unique<DesPolicy>(options);
}

}  // namespace qes
