#include "multicore/des_scheduler.hpp"

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "core/assert.hpp"
#include "policy/crr.hpp"
#include "policy/des_planner.hpp"
#include "policy/world_view.hpp"

namespace qes {

namespace {

// The sim-plane adapter: DES plan construction (budget-free YDS, WF
// escalation, budget-bounded Online-QE, quantization) lives in the
// engine-agnostic kernel (src/policy/des_planner.hpp); this policy only
// distributes waiting jobs (step 1 mutates engine assignment state),
// reduces the engine to a WorldView, and applies the PlanOutcome back.
class DesPolicy final : public SchedulingPolicy {
 public:
  explicit DesPolicy(DesOptions opt) : opt_(opt) {}

  [[nodiscard]] std::string name() const override {
    std::string n = "DES[";
    n += to_string(opt_.arch);
    if (opt_.speed_levels) n += ",discrete";
    if (opt_.plain_round_robin) n += ",RR";
    if (opt_.static_power) n += ",static";
    if (opt_.rebalance_unstarted) n += ",rebalance";
    if (opt_.weighted) n += ",weighted";
    if (opt_.capacity_aware_distribution) n += ",cap-aware";
    if (opt_.eager_execution) n += ",eager";
    n += "]";
    return n;
  }

  void replan(Engine& eng) override {
    if (!crr_) crr_ = std::make_unique<CumulativeRoundRobin>(
        static_cast<std::size_t>(eng.cores()));
    if (!planner_) {
      planner_ = std::make_unique<policy::DesPlanner>(
          eng.config().registry, "sim");
    }

    // Step 1: ready-job distribution.
    {
      auto timer = planner_->profiler().phase("crr");
      distribute_jobs(eng);
    }

    build_view(eng);
    const policy::PlanOptions popt = plan_options(eng);
    switch (opt_.arch) {
      case Architecture::NoDVFS:
        planner_->plan_no_dvfs(view_, popt, out_);
        break;
      case Architecture::SDVFS:
        planner_->plan_s_dvfs(view_, popt, out_);
        break;
      case Architecture::CDVFS:
        planner_->plan_c_dvfs(view_, popt, out_);
        break;
    }
    apply_outcome(eng);
  }

 private:
  // Weighted dealer for capacity-aware distribution, built lazily from
  // the per-core speed caps (uncapped cores weigh as the largest finite
  // cap, or 1 if none is finite).
  SmoothWeightedRoundRobin& capacity_dealer(const Engine& eng) {
    if (!swrr_) {
      std::vector<double> weights;
      double max_finite = 0.0;
      for (int i = 0; i < eng.cores(); ++i) {
        const Speed cap = eng.config().core_speed_cap(i);
        if (std::isfinite(cap)) max_finite = std::max(max_finite, cap);
      }
      if (max_finite <= 0.0) max_finite = 1.0;
      for (int i = 0; i < eng.cores(); ++i) {
        const Speed cap = eng.config().core_speed_cap(i);
        weights.push_back(std::isfinite(cap) ? cap : max_finite);
      }
      swrr_ = std::make_unique<SmoothWeightedRoundRobin>(std::move(weights));
    }
    return *swrr_;
  }

  void distribute_jobs(Engine& eng) {
    if (opt_.rebalance_unstarted) {
      std::vector<JobId>& pull = pull_;
      pull.clear();
      for (int i = 0; i < eng.cores(); ++i) {
        for (JobId id : eng.assigned(i)) {
          if (eng.job(id).processed <= kTimeEps) pull.push_back(id);
        }
      }
      for (JobId id : pull) eng.unassign_from_core(id);
    }
    std::vector<JobId>& waiting = waiting_;
    waiting.assign(eng.waiting().begin(), eng.waiting().end());
    std::vector<std::size_t>& targets = targets_;
    if (opt_.capacity_aware_distribution) {
      capacity_dealer(eng).distribute_into(waiting.size(), targets);
    } else if (opt_.plain_round_robin) {
      PlainRoundRobin(static_cast<std::size_t>(eng.cores()))
          .distribute_into(waiting.size(), targets);
    } else {
      crr_->distribute_into(waiting.size(), targets);
    }
    for (std::size_t k = 0; k < waiting.size(); ++k) {
      eng.assign_to_core(waiting[k], static_cast<int>(targets[k]));
    }
  }

  void build_view(const Engine& eng) {
    const EngineConfig& cfg = eng.config();
    view_.reset(eng.now(), cfg.power_budget,
                static_cast<std::size_t>(eng.cores()));
    view_.power_model = &cfg.power_model;
    view_.quality = &cfg.quality;
    for (int i = 0; i < eng.cores(); ++i) {
      policy::CoreView& core = view_.cores[static_cast<std::size_t>(i)];
      core.speed_cap = cfg.core_speed_cap(i);
      for (JobId id : eng.assigned(i)) {
        const JobState& st = eng.job(id);
        core.jobs.push_back(policy::ViewJob{.id = id,
                                            .deadline = st.job.deadline,
                                            .demand = st.job.demand,
                                            .processed = st.processed,
                                            .weight = st.job.weight,
                                            .partial_ok = st.job.partial_ok});
      }
    }
  }

  [[nodiscard]] policy::PlanOptions plan_options(const Engine& eng) const {
    policy::PlanOptions p;
    p.speed_levels = opt_.speed_levels ? &*opt_.speed_levels : nullptr;
    p.static_power = opt_.static_power;
    p.weighted = opt_.weighted;
    p.eager_execution = opt_.eager_execution;
    // The paper's Online-QE assumes only the queue head carries prior
    // volume; the resume ablation and rebalancing break that, switching
    // planning to the baseline-aware Quality-OPT + YDS pair.
    p.baseline_mode =
        eng.config().resume_passed_jobs || opt_.rebalance_unstarted;
    p.resume_passed_jobs = eng.config().resume_passed_jobs;
    return p;
  }

  // Per core, in order: rigid discards (§V-D loop, discovery order),
  // passed-over drops (queue order), then the plan + idle power. This is
  // the exact legacy finalization sequence, so quality accumulation
  // stays bitwise identical.
  void apply_outcome(Engine& eng) {
    for (int i = 0; i < eng.cores(); ++i) {
      policy::CoreOutcome& c = out_.cores[static_cast<std::size_t>(i)];
      for (JobId id : c.rigid_discards) eng.discard_job(id);
      for (JobId id : c.passed_over) eng.discard_job(id);
      eng.set_core_plan(i, c.plan);
      eng.set_core_idle_power(i, c.idle_power);
    }
  }

  DesOptions opt_;
  std::unique_ptr<CumulativeRoundRobin> crr_;
  std::unique_ptr<policy::DesPlanner> planner_;
  std::unique_ptr<SmoothWeightedRoundRobin> swrr_;
  // Reused across replans so steady-state view refills stay off the heap.
  policy::WorldView view_;
  policy::PlanOutcome out_;
  std::vector<JobId> pull_;
  std::vector<JobId> waiting_;
  std::vector<std::size_t> targets_;
};

}  // namespace

std::unique_ptr<SchedulingPolicy> make_des_policy(DesOptions options) {
  QES_ASSERT_MSG(!(options.speed_levels && options.arch != Architecture::CDVFS),
                 "discrete scaling is modelled for C-DVFS only");
  QES_ASSERT_MSG(!(options.weighted &&
                   (options.arch != Architecture::CDVFS ||
                    options.speed_levels)),
                 "weighted planning is continuous C-DVFS only");
  return std::make_unique<DesPolicy>(options);
}

}  // namespace qes
