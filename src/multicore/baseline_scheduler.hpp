// Baseline schedulers FCFS / LJF / SJF (paper §V-A, §V-E).
//
// Triggered whenever a core becomes idle, each policy hands the idle core
// one job from the ready queue (earliest release / largest demand /
// smallest demand) and runs it at the SLOWEST speed that finishes it by
// its deadline under the core's power cap; if the cap cannot finish it,
// the job runs at the highest available speed until the deadline (partial
// result). Power is shared statically (H/m each) by default, or via WF
// over the per-core requests when wf_power is set (§V-E second
// experiment). Rigid (non-partial) jobs that cannot finish are discarded
// at pick time.
#pragma once

#include <memory>

#include "multicore/architecture.hpp"
#include "sim/engine.hpp"

namespace qes {

struct BaselineOptions {
  BaselineOrder order = BaselineOrder::FCFS;
  PowerDistribution power = PowerDistribution::StaticEqual;
};

[[nodiscard]] std::unique_ptr<SchedulingPolicy> make_baseline_policy(
    BaselineOptions options = {});

/// Engine trigger configuration matching the paper's baseline setup:
/// idle-core trigger only (plus a coarse quantum as a safety net for
/// expiry sweeps), no counter batching.
[[nodiscard]] EngineConfig baseline_engine_config(EngineConfig base);

}  // namespace qes
