// DES (Dynamic Equal Sharing): the paper's multicore online scheduler
// (§IV-D), DES = C-RR + WF + Online-QE.
//
// At every trigger firing:
//   1. Ready-job distribution: C-RR deals waiting jobs to cores.
//   2. Budget-free scheduling: per-core YDS assuming unlimited power
//      yields each core's requested power P_i(t).
//   3. Dynamic power distribution: if sum P_i(t) > H, WF splits H.
//   4. Budget-bounded scheduling: per-core Online-QE under the assigned
//      budget produces the executable plan.
//
// The same class implements the paper's No-DVFS and S-DVFS variants
// (§V-A): No-DVFS pins all cores at the equal-share speed and plans with
// Quality-OPT; S-DVFS gives every core the hungriest core's requested
// power (clamped to H/m) and also plans with Quality-OPT at that common
// speed, skipping the Online-QE energy step.
#pragma once

#include <memory>
#include <optional>

#include "core/power.hpp"
#include "multicore/architecture.hpp"
#include "sim/engine.hpp"

namespace qes {

struct DesOptions {
  Architecture arch = Architecture::CDVFS;
  /// Discrete speed levels (§V-F); nullopt = continuous scaling.
  std::optional<DiscreteSpeedSet> speed_levels;
  /// Distribute jobs with plain (non-cumulative) round robin — ablation
  /// of the C in C-RR.
  bool plain_round_robin = false;
  /// Replace WF with static equal power sharing — ablation of the WF
  /// component (only meaningful on C-DVFS).
  bool static_power = false;
  /// Deal jobs in proportion to each core's speed cap instead of equally
  /// (smooth weighted round robin; extension for heterogeneous servers).
  /// Falls back to C-RR when every core has the same cap.
  bool capacity_aware_distribution = false;
  /// Pull every assigned-but-unstarted job back into the global queue
  /// before each C-RR distribution (relaxes the non-migratory rule for
  /// jobs that have not begun executing; extension/ablation).
  bool rebalance_unstarted = false;
  /// Allocate per-core volumes by WEIGHTED quality (uses Job::weight;
  /// extension for service classes). Implies the baseline-aware planning
  /// path; C-DVFS only.
  bool weighted = false;
  /// Skip Online-QE's energy step: execute each core's granted volumes
  /// flat-out at the core's max speed instead of the YDS stretch.
  /// Trades energy for robustness against future arrivals (an
  /// extension; quantifies deviation #2 in EXPERIMENTS.md).
  bool eager_execution = false;
};

[[nodiscard]] std::unique_ptr<SchedulingPolicy> make_des_policy(
    DesOptions options = {});

}  // namespace qes
