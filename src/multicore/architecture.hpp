// Architecture and policy option enums (paper §V-A).
#pragma once

#include <optional>
#include <string>

#include "core/power.hpp"

namespace qes {

/// DVFS capability of the simulated processor (§V-A).
enum class Architecture {
  NoDVFS,  ///< every core pinned at the equal-share speed, busy or idle
  SDVFS,   ///< one chip-wide speed, set to the hungriest core's request
  CDVFS,   ///< independent per-core speeds (DES's target architecture)
};

/// How the power budget is shared among cores.
enum class PowerDistribution {
  StaticEqual,   ///< every core owns H/m
  WaterFilling,  ///< dynamic WF over per-core requests (§IV-C)
};

/// Job pick order for the baseline schedulers (§V-A).
enum class BaselineOrder {
  FCFS,  ///< earliest release first (== EDF under agreeable deadlines)
  LJF,   ///< largest service demand first
  SJF,   ///< smallest service demand first
};

[[nodiscard]] constexpr const char* to_string(Architecture a) {
  switch (a) {
    case Architecture::NoDVFS: return "No-DVFS";
    case Architecture::SDVFS: return "S-DVFS";
    case Architecture::CDVFS: return "C-DVFS";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(PowerDistribution p) {
  switch (p) {
    case PowerDistribution::StaticEqual: return "static";
    case PowerDistribution::WaterFilling: return "WF";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(BaselineOrder o) {
  switch (o) {
    case BaselineOrder::FCFS: return "FCFS";
    case BaselineOrder::LJF: return "LJF";
    case BaselineOrder::SJF: return "SJF";
  }
  return "?";
}

}  // namespace qes
