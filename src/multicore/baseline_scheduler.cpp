#include "multicore/baseline_scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/assert.hpp"
#include "policy/power_waterfill.hpp"

namespace qes {

namespace {

class BaselinePolicy final : public SchedulingPolicy {
 public:
  explicit BaselinePolicy(BaselineOptions opt) : opt_(opt) {}

  [[nodiscard]] std::string name() const override {
    std::string n = to_string(opt_.order);
    if (opt_.power == PowerDistribution::WaterFilling) n += "+WF";
    return n;
  }

  void replan(Engine& eng) override {
    const EngineConfig& cfg = eng.config();
    const int m = eng.cores();
    const Time now = eng.now();

    // Hand one job to every idle core, discarding rigid jobs that cannot
    // complete even at the core's best-case speed.
    const Speed power_speed = cfg.power_model.speed_for_power(
        opt_.power == PowerDistribution::StaticEqual ? cfg.power_budget / m
                                                     : cfg.power_budget);
    for (int i = 0; i < m; ++i) {
      const Speed best_case_speed =
          std::min(cfg.core_speed_cap(i), power_speed);
      while (eng.assigned(i).empty() && !eng.waiting().empty()) {
        const JobId id = pick(eng);
        const JobState& st = eng.job(id);
        const Speed needed =
            (st.job.demand - st.processed) / (st.job.deadline - now);
        if (!st.job.partial_ok && needed > best_case_speed + kTimeEps) {
          eng.discard_job(id);
          continue;
        }
        eng.assign_to_core(id, i);
      }
    }

    // Per-core speed requirement for the (single) job on each core.
    std::vector<Speed> needed(static_cast<std::size_t>(m), 0.0);
    std::vector<Watts> requests(static_cast<std::size_t>(m), 0.0);
    for (int i = 0; i < m; ++i) {
      if (eng.assigned(i).empty()) continue;
      const JobState& st = eng.job(eng.assigned(i).front());
      QES_ASSERT(st.job.deadline > now + kTimeEps);
      const Work remaining = st.job.demand - st.processed;
      needed[static_cast<std::size_t>(i)] =
          remaining / (st.job.deadline - now);
      requests[static_cast<std::size_t>(i)] = cfg.power_model.dynamic_power(
          std::min(needed[static_cast<std::size_t>(i)],
                   cfg.core_speed_cap(i)));
    }

    std::vector<Watts> caps;
    if (opt_.power == PowerDistribution::StaticEqual) {
      caps.assign(static_cast<std::size_t>(m), cfg.power_budget / m);
    } else {
      caps = waterfill_power(requests, cfg.power_budget);
    }

    for (int i = 0; i < m; ++i) {
      Schedule plan;
      if (!eng.assigned(i).empty()) {
        const JobState& st = eng.job(eng.assigned(i).front());
        const Work remaining = st.job.demand - st.processed;
        const Speed cap_speed = std::min(
            cfg.power_model.speed_for_power(caps[static_cast<std::size_t>(i)]),
            cfg.core_speed_cap(i));
        const Speed want = needed[static_cast<std::size_t>(i)];
        if (cap_speed + kTimeEps >= want) {
          // Slowest speed that meets the deadline.
          plan.push({now, now + remaining / want, st.job.id, want});
        } else if (cap_speed > kTimeEps) {
          // Not enough power: flat out until the deadline (partial).
          plan.push({now, st.job.deadline, st.job.id, cap_speed});
        }
      }
      eng.set_core_plan(i, std::move(plan));
      eng.set_core_idle_power(i, 0.0);
    }
  }

 private:
  // Chooses (but does not remove) the next waiting job per the policy.
  [[nodiscard]] JobId pick(const Engine& eng) const {
    const auto waiting = eng.waiting();
    QES_ASSERT(!waiting.empty());
    switch (opt_.order) {
      case BaselineOrder::FCFS:
        return waiting.front();  // arrival order is maintained
      case BaselineOrder::LJF: {
        JobId best = waiting.front();
        for (JobId id : waiting) {
          if (eng.job(id).job.demand > eng.job(best).job.demand) best = id;
        }
        return best;
      }
      case BaselineOrder::SJF: {
        JobId best = waiting.front();
        for (JobId id : waiting) {
          if (eng.job(id).job.demand < eng.job(best).job.demand) best = id;
        }
        return best;
      }
    }
    QES_ASSERT(false);
    return 0;
  }

  BaselineOptions opt_;
};

}  // namespace

std::unique_ptr<SchedulingPolicy> make_baseline_policy(
    BaselineOptions options) {
  return std::make_unique<BaselinePolicy>(options);
}

EngineConfig baseline_engine_config(EngineConfig base) {
  base.quantum_ms = 0.0;    // no grouped scheduling
  base.counter_trigger = 0;
  base.idle_trigger = true;  // "triggered whenever a core becomes idle"
  return base;
}

}  // namespace qes
