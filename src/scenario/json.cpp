#include "scenario/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace qes::scenario {

namespace {

[[noreturn]] void fail(std::size_t at, const std::string& what) {
  throw std::runtime_error("json: " + what + " at byte " +
                           std::to_string(at));
}

[[noreturn]] void type_fail(const char* want) {
  throw std::runtime_error(std::string("json: value is not a ") + want);
}

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.type_ = Type::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::Number;
  j.num_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.type_ = Type::String;
  j.str_ = std::move(s);
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::Bool) type_fail("boolean");
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::Number) type_fail("number");
  return num_;
}

const std::string& Json::as_string() const {
  if (type_ != Type::String) type_fail("string");
  return str_;
}

const std::vector<Json>& Json::as_array() const {
  if (type_ != Type::Array) type_fail("array");
  return arr_;
}

const std::map<std::string, Json>& Json::as_object() const {
  if (type_ != Type::Object) type_fail("object");
  return obj_;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::Object) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json* f = find(key);
  return f == nullptr ? fallback : f->as_number();
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json* f = find(key);
  return f == nullptr ? fallback : f->as_bool();
}

std::string Json::string_or(const std::string& key,
                            std::string fallback) const {
  const Json* f = find(key);
  return f == nullptr ? std::move(fallback) : f->as_string();
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t len = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail(pos_, "bad literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail(pos_, "bad literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail(pos_, "bad literal");
        return Json::null();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json j;
    j.type_ = Json::Type::Object;
    if (peek() == '}') {
      ++pos_;
      return j;
    }
    for (;;) {
      if (peek() != '"') fail(pos_, "expected object key");
      std::string key = parse_string();
      expect(':');
      j.obj_.emplace(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return j;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  Json parse_array() {
    expect('[');
    Json j;
    j.type_ = Json::Type::Array;
    if (peek() == ']') {
      ++pos_;
      return j;
    }
    for (;;) {
      j.arr_.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return j;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "bad \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail(pos_ - 1, "bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (specs are ASCII in
          // practice; surrogate pairs are out of scope).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail(pos_ - 1, "bad escape");
      }
    }
    fail(pos_, "unterminated string");
  }

  Json parse_number() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail(start, "expected a value");
    const std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail(start, "bad number");
    return Json::number(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace qes::scenario
