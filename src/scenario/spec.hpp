// Declarative scenario cells (docs/SCENARIOS.md): one JSON spec names a
// substrate (standalone sim, VOD sessions, or the lockstep cluster), an
// arrival regime (via cli::WorkloadSourceSpec), the engine/cluster
// configuration, and an optional chaos schedule (node kill / drain /
// revive, mid-run budget steps). parse_scenario validates the spec and
// run_scenario (runner.hpp) executes the cell with the core invariants
// asserted inline.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "cli/workload_source.hpp"
#include "cluster/lockstep.hpp"
#include "core/time.hpp"
#include "scenario/json.hpp"
#include "sim/engine.hpp"

namespace qes::scenario {

struct ScenarioSpec {
  std::string name = "cell";
  /// "sim" (standalone search engine), "vod" (streaming sessions on the
  /// same engine), or "cluster" (multi-node lockstep replay).
  std::string substrate = "sim";
  /// Scheduling policy: "des" (C-DVFS), "sdvfs", or "nodvfs".
  std::string policy = "des";

  /// Arrival regime + base workload knobs (poisson / uniform / diurnal
  /// / mmpp / flash / trace).
  cli::WorkloadSourceSpec workload;

  // Engine knobs (per node, for the cluster substrate).
  int cores = 16;
  Watts power_budget = 320.0;
  Time quantum_ms = 500.0;
  int counter_trigger = 8;
  bool idle_trigger = true;
  double quality_c = 0.003;
  Speed max_core_speed = std::numeric_limits<double>::infinity();
  /// Record executed schedules / replan instants (off by default: the
  /// matrix cells only need the aggregate statistics).
  bool record = false;

  /// Mid-run power-budget steps, sorted ascending (sim / vod substrate;
  /// the cluster substrate expresses budget steps as chaos events).
  std::vector<EngineBudgetStep> budget_steps;

  // Cluster knobs.
  int nodes = 2;
  /// 0 => nodes * power_budget.
  Watts total_budget = 0.0;
  Time broker_period_ms = 20.0;
  std::string dispatch = "crr";
  std::vector<cluster::ChaosEvent> chaos;

  // VOD knobs (substrate "vod"): session arrivals reuse
  // workload.arrival_rate (sessions/s), deadline, horizon, and seed.
  double vod_mean_chunks = 30.0;
  Time vod_chunk_period_ms = 500.0;

  /// Also compute the QE-OPT offline bound at the aggregate speed the
  /// budget supports and assert online quality <= it. O(n log n) in the
  /// job count — enable on small cells, not on 10M-job runs.
  bool compare_opt = false;
};

/// Builds a spec from parsed JSON. Throws std::invalid_argument on
/// unknown substrates / policies / chaos ops / regimes and malformed
/// schedules (workload parameter validation happens in cli::make_jobs
/// when the cell runs).
[[nodiscard]] ScenarioSpec parse_scenario(const Json& j);

/// Parses the JSON text and builds the spec (std::runtime_error on a
/// JSON syntax error, std::invalid_argument on a bad spec).
[[nodiscard]] ScenarioSpec parse_scenario_text(const std::string& text);

/// Reads the file and parses it; std::runtime_error when unreadable.
[[nodiscard]] ScenarioSpec load_scenario_file(const std::string& path);

}  // namespace qes::scenario
