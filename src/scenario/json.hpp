// Minimal JSON value + recursive-descent parser for the scenario specs
// (tools/qes_scenarios). Supports the full JSON grammar the specs need —
// objects, arrays, strings (with escapes), numbers, booleans, null —
// and nothing more (no comments, no trailing commas). Parse errors
// throw std::runtime_error with a byte offset; type mismatches on
// accessors throw too, so spec validation can surface every mistake as
// one clean exception instead of a crash.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qes::scenario {

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }

  /// Typed accessors; throw std::runtime_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& as_array() const;
  [[nodiscard]] const std::map<std::string, Json>& as_object() const;

  /// Object field lookup; returns nullptr when absent (or not an object).
  [[nodiscard]] const Json* find(const std::string& key) const;

  /// Convenience lookups with defaults (throw only on type mismatch of a
  /// PRESENT field — absent fields yield the fallback).
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] bool bool_or(const std::string& key, bool fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      std::string fallback) const;

  /// Parses a complete JSON document; trailing non-whitespace is an
  /// error. Throws std::runtime_error.
  static Json parse(const std::string& text);

 private:
  friend class Parser;
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

}  // namespace qes::scenario
