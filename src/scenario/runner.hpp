// Executes one scenario cell (spec.hpp) and asserts the core invariants
// inline, aborting the process on any violation (QES_ASSERT — the
// scenario matrix runs these as hard assertions under ctest and the
// sanitizers):
//
//   power cap      instantaneous power never exceeds the budget in
//                  force — the engine asserts it at every integration
//                  step; the cluster additionally checks every broker
//                  tick's sampled Σ planned power against H(t).
//   conservation   no job is lost, exactly: every arrival is finalized
//                  by some node or counted shed (cluster routing /
//                  redistribution sheds).
//   optimality     with compare_opt, online quality <= the QE-OPT
//                  offline bound at the aggregate speed the budget
//                  supports (a relaxation of the partitioned multicore
//                  problem, so always an upper bound).
//
// Each cell returns one comparable row; json_row() renders it as a
// single-line JSON object for scripts/record_bench.sh.
#pragma once

#include <cstdint>
#include <string>

#include "scenario/spec.hpp"

namespace qes::scenario {

struct ScenarioOutcome {
  std::string name;
  std::string substrate;
  std::string regime;
  std::string policy;

  std::size_t jobs = 0;  ///< arrivals offered to the cell
  std::size_t shed = 0;  ///< cluster routing + redistribution sheds
  std::size_t satisfied = 0;
  double quality = 0.0;
  double norm_quality = 0.0;
  Joules energy = 0.0;
  Watts peak_power = 0.0;
  std::size_t replans = 0;
  /// Calendar-queue pops (sim / vod substrate; 0 for cluster cells).
  std::uint64_t events = 0;
  /// QE-OPT bound when compare_opt was set, else -1.
  double opt_quality = -1.0;

  double gen_wall_s = 0.0;  ///< workload generation
  double run_wall_s = 0.0;  ///< simulation proper
  double peak_rss_mb = 0.0;

  [[nodiscard]] std::string json_row() const;
};

/// Runs the cell. Invariant violations abort (QES_ASSERT); malformed
/// workloads throw (std::invalid_argument / std::runtime_error from
/// cli::make_jobs).
[[nodiscard]] ScenarioOutcome run_scenario(const ScenarioSpec& spec);

}  // namespace qes::scenario
