#include "scenario/runner.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "cluster/dispatch.hpp"
#include "core/assert.hpp"
#include "multicore/des_scheduler.hpp"
#include "sched/qe_opt.hpp"
#include "sched/quality_opt.hpp"
#include "vod/session.hpp"
#include "vod/video.hpp"

namespace qes::scenario {

namespace {

double wall_seconds_since(
    const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB -> MiB
}

DesOptions policy_options(const ScenarioSpec& spec) {
  DesOptions d;
  if (spec.policy == "sdvfs") {
    d.arch = Architecture::SDVFS;
  } else if (spec.policy == "nodvfs") {
    d.arch = Architecture::NoDVFS;
  } else {
    d.arch = Architecture::CDVFS;
  }
  return d;
}

EngineConfig engine_config(const ScenarioSpec& spec,
                           const QualityFunction& quality) {
  EngineConfig cfg;
  cfg.cores = spec.cores;
  cfg.power_budget = spec.power_budget;
  cfg.quality = quality;
  cfg.quantum_ms = spec.quantum_ms;
  cfg.counter_trigger = spec.counter_trigger;
  cfg.idle_trigger = spec.idle_trigger;
  cfg.max_core_speed = spec.max_core_speed;
  cfg.record_execution = spec.record;
  cfg.record_replan_times = spec.record;
  cfg.budget_steps = spec.budget_steps;
  return cfg;
}

/// QE-OPT quality bound at the aggregate speed the budget supports:
/// with convex dynamic power, m cores under budget H jointly run at
/// most m * speed_for_power(H / m) work-units per unit time, and one
/// migratory core at that speed relaxes the partitioned problem — so
/// Quality-OPT's total at that speed upper-bounds any online multicore
/// schedule. H under budget steps is bounded by the largest H in force.
double qe_opt_bound(const std::vector<Job>& jobs, const EngineConfig& cfg,
                    int total_cores) {
  Watts h = cfg.power_budget;
  for (const EngineBudgetStep& s : cfg.budget_steps) {
    h = std::max(h, s.budget);
  }
  const double m = static_cast<double>(total_cores);
  const Speed aggregate = m * cfg.power_model.speed_for_power(h / m);
  const auto opt = qe_opt_schedule(AgreeableJobSet(jobs), aggregate);
  return total_quality(opt.volumes, cfg.quality);
}

void assert_engine_invariants(const RunStats& s, std::size_t arrived,
                              const EngineConfig& cfg) {
  QES_ASSERT_MSG(s.jobs_total == arrived,
                 "scenario invariant: every arrival must be finalized");
  QES_ASSERT_MSG(
      s.jobs_satisfied + s.jobs_partial + s.jobs_zero == s.jobs_total,
      "scenario invariant: job outcomes must partition the arrivals");
  Watts h_max = cfg.power_budget;
  for (const EngineBudgetStep& st : cfg.budget_steps) {
    h_max = std::max(h_max, st.budget);
  }
  QES_ASSERT_MSG(s.peak_power <= h_max * (1.0 + 1e-9) + 1e-9,
                 "scenario invariant: peak power must respect the budget");
}

ScenarioOutcome run_engine_cell(const ScenarioSpec& spec,
                                std::vector<Job> jobs,
                                const QualityFunction& quality,
                                ScenarioOutcome out) {
  const EngineConfig cfg = engine_config(spec, quality);
  const std::size_t arrived = jobs.size();
  double opt_q = -1.0;
  if (spec.compare_opt) {
    opt_q = qe_opt_bound(jobs, cfg, spec.cores);
  }

  const auto t0 = std::chrono::steady_clock::now();
  Engine engine(cfg, std::move(jobs), make_des_policy(policy_options(spec)));
  const RunResult result = engine.run();
  out.run_wall_s = wall_seconds_since(t0);
  const RunStats& s = result.stats;

  assert_engine_invariants(s, arrived, cfg);
  if (spec.compare_opt) {
    QES_ASSERT_MSG(s.total_quality <= opt_q + 1e-6,
                   "scenario invariant: online quality must not beat the "
                   "QE-OPT offline bound");
  }

  out.jobs = arrived;
  out.satisfied = s.jobs_satisfied;
  out.quality = s.total_quality;
  out.norm_quality = s.normalized_quality;
  out.energy = s.total_energy();
  out.peak_power = s.peak_power;
  out.replans = s.replans;
  out.events = engine.events_processed();
  out.opt_quality = opt_q;
  return out;
}

ScenarioOutcome run_cluster_cell(const ScenarioSpec& spec,
                                 std::vector<Job> jobs,
                                 ScenarioOutcome out) {
  cluster::LockstepClusterConfig cc;
  cc.node.cores = spec.cores;
  cc.node.power_budget = spec.power_budget;
  cc.node.quality = QualityFunction::exponential(spec.quality_c);
  cc.node.quantum_ms = spec.quantum_ms;
  cc.node.counter_trigger = spec.counter_trigger;
  cc.node.idle_trigger = spec.idle_trigger;
  cc.node.max_core_speed = spec.max_core_speed;
  cc.nodes = spec.nodes;
  cc.total_budget = spec.total_budget > 0.0
                        ? spec.total_budget
                        : spec.power_budget * static_cast<double>(spec.nodes);
  cc.broker_period_ms = spec.broker_period_ms;
  cc.redispatch_deadline_ms = spec.workload.workload.deadline_ms;
  cc.dispatch = *cluster::parse_dispatch_policy(spec.dispatch);
  cc.dispatch_seed = spec.workload.workload.seed;

  const std::size_t arrived = jobs.size();
  double opt_q = -1.0;
  if (spec.compare_opt) {
    EngineConfig probe;
    probe.power_budget = cc.total_budget;
    probe.quality = cc.node.quality;
    opt_q = qe_opt_bound(jobs, probe, spec.nodes * spec.cores);
  }

  const auto t0 = std::chrono::steady_clock::now();
  const cluster::ClusterRunStats s =
      cluster::run_cluster_lockstep_chaos(cc, std::move(jobs), spec.chaos);
  out.run_wall_s = wall_seconds_since(t0);

  // Conservation: every arrival is finalized by exactly one node or
  // counted shed. A killed node's statistics hold only the jobs it
  // FINALIZED before dying; each abandoned job is either re-admitted to
  // exactly one survivor (landing in that node's jobs_total) or counted
  // in redistribute_shed — so redistribution moves jobs without ever
  // double-counting them.
  QES_ASSERT_MSG(
      arrived == s.route_shed + s.redistribute_shed + s.jobs_total,
      "scenario invariant: cluster job conservation must hold exactly");
  // Σ planned power <= H(t) at every broker tick (H varies under budget
  // chaos; each node also asserts its own slice internally).
  for (const cluster::ClusterRunStats::PowerSample& ps : s.power_samples) {
    QES_ASSERT_MSG(ps.power <= ps.budget * (1.0 + 1e-9) + 1e-9,
                   "scenario invariant: cluster power must respect H at "
                   "every broker tick");
  }
  if (spec.compare_opt) {
    QES_ASSERT_MSG(s.total_quality <= opt_q + 1e-6,
                   "scenario invariant: online quality must not beat the "
                   "QE-OPT offline bound");
  }

  out.jobs = arrived;
  out.shed = s.route_shed + s.redistribute_shed;
  out.satisfied = s.jobs_satisfied;
  out.quality = s.total_quality;
  out.norm_quality = s.normalized_quality;
  out.energy = s.dynamic_energy + s.static_energy;
  out.peak_power = s.max_cluster_power;
  out.replans = s.replans;
  out.opt_quality = opt_q;
  return out;
}

}  // namespace

std::string ScenarioOutcome::json_row() const {
  char buf[768];
  std::snprintf(
      buf, sizeof buf,
      "{\"name\": \"%s\", \"substrate\": \"%s\", \"regime\": \"%s\", "
      "\"policy\": \"%s\", \"jobs\": %zu, \"shed\": %zu, "
      "\"satisfied\": %zu, \"quality\": %.6f, \"norm_quality\": %.6f, "
      "\"energy_j\": %.6e, \"peak_power_w\": %.3f, \"replans\": %zu, "
      "\"events\": %llu, \"opt_quality\": %.6f, \"gen_wall_s\": %.3f, "
      "\"run_wall_s\": %.3f, \"events_per_sec\": %.0f, "
      "\"peak_rss_mb\": %.1f, \"invariants\": \"pass\"}",
      name.c_str(), substrate.c_str(), regime.c_str(), policy.c_str(), jobs,
      shed, satisfied, quality, norm_quality, energy, peak_power, replans,
      static_cast<unsigned long long>(events), opt_quality, gen_wall_s,
      run_wall_s,
      run_wall_s > 0.0 ? static_cast<double>(events) / run_wall_s : 0.0,
      peak_rss_mb);
  return buf;
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec) {
  ScenarioOutcome out;
  out.name = spec.name;
  out.substrate = spec.substrate;
  out.regime = spec.workload.regime;
  out.policy = spec.policy;

  const auto g0 = std::chrono::steady_clock::now();
  if (spec.substrate == "vod") {
    // Streaming sessions: chunk requests under the layered video
    // model's concave envelope quality.
    vod::LayeredVideoModel model;
    vod::SessionWorkloadConfig sc;
    sc.session_rate = spec.workload.workload.arrival_rate;
    sc.mean_chunks = spec.vod_mean_chunks;
    sc.chunk_period_ms = spec.vod_chunk_period_ms;
    sc.deadline_ms = spec.workload.workload.deadline_ms;
    sc.horizon_ms = spec.workload.workload.horizon_ms;
    sc.seed = spec.workload.workload.seed;
    vod::SessionWorkload wl = vod::generate_sessions(model, sc);
    out.gen_wall_s = wall_seconds_since(g0);
    out.regime = "sessions";
    out = run_engine_cell(spec, std::move(wl.jobs),
                          model.envelope_function(), std::move(out));
  } else {
    std::vector<Job> jobs = cli::make_jobs(spec.workload);
    out.gen_wall_s = wall_seconds_since(g0);
    if (spec.substrate == "cluster") {
      out = run_cluster_cell(spec, std::move(jobs), std::move(out));
    } else {
      out = run_engine_cell(spec, std::move(jobs),
                            QualityFunction::exponential(spec.quality_c),
                            std::move(out));
    }
  }
  out.peak_rss_mb = peak_rss_mb();
  return out;
}

}  // namespace qes::scenario
