#include "scenario/spec.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace qes::scenario {

namespace {

void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument("scenario spec: " + what);
}

void parse_workload(const Json& j, cli::WorkloadSourceSpec& w) {
  w.regime = j.string_or("regime", w.regime);
  w.workload.arrival_rate = j.number_or("rate", w.workload.arrival_rate);
  w.workload.horizon_ms = j.number_or("horizon_ms", w.workload.horizon_ms);
  w.workload.deadline_ms = j.number_or("deadline_ms", w.workload.deadline_ms);
  w.workload.partial_fraction =
      j.number_or("partial_fraction", w.workload.partial_fraction);
  w.workload.premium_fraction =
      j.number_or("premium_fraction", w.workload.premium_fraction);
  w.workload.pareto_alpha =
      j.number_or("pareto_alpha", w.workload.pareto_alpha);
  w.workload.demand_min = j.number_or("demand_min", w.workload.demand_min);
  w.workload.demand_max = j.number_or("demand_max", w.workload.demand_max);
  w.workload.seed = static_cast<std::uint64_t>(
      j.number_or("seed", static_cast<double>(w.workload.seed)));
  w.diurnal_amplitude = j.number_or("amplitude", w.diurnal_amplitude);
  w.diurnal_period_ms = j.number_or("period_ms", w.diurnal_period_ms);
  w.mmpp_rate_hi = j.number_or("rate_hi", w.mmpp_rate_hi);
  w.mmpp_dwell_lo_ms = j.number_or("dwell_lo_ms", w.mmpp_dwell_lo_ms);
  w.mmpp_dwell_hi_ms = j.number_or("dwell_hi_ms", w.mmpp_dwell_hi_ms);
  w.flash_factor = j.number_or("flash_factor", w.flash_factor);
  w.flash_at_ms = j.number_or("flash_at_ms", w.flash_at_ms);
  w.flash_len_ms = j.number_or("flash_len_ms", w.flash_len_ms);
  w.trace_path = j.string_or("trace", w.trace_path);
  const auto& known = cli::workload_regimes();
  require(std::find(known.begin(), known.end(), w.regime) != known.end(),
          "unknown arrival regime \"" + w.regime + "\"");
}

cluster::ChaosEvent parse_chaos_event(const Json& j) {
  cluster::ChaosEvent ev;
  ev.t = j.number_or("at_ms", -1.0);
  require(ev.t >= 0.0, "chaos event needs a non-negative at_ms");
  const std::string op = j.string_or("op", "");
  if (op == "kill") {
    ev.kind = cluster::ChaosEvent::Kind::Kill;
  } else if (op == "drain") {
    ev.kind = cluster::ChaosEvent::Kind::Drain;
  } else if (op == "revive") {
    ev.kind = cluster::ChaosEvent::Kind::Revive;
  } else if (op == "budget") {
    ev.kind = cluster::ChaosEvent::Kind::BudgetStep;
    ev.budget = j.number_or("budget", 0.0);
    require(ev.budget > 0.0, "budget chaos event needs a positive budget");
    return ev;
  } else {
    require(false, "unknown chaos op \"" + op +
                       "\" (expected kill, drain, revive, or budget)");
  }
  ev.node = static_cast<int>(j.number_or("node", -1.0));
  require(ev.node >= 0, "chaos event needs a node index");
  return ev;
}

}  // namespace

ScenarioSpec parse_scenario(const Json& j) {
  require(j.is_object(), "top level must be a JSON object");
  ScenarioSpec s;
  s.name = j.string_or("name", s.name);
  s.substrate = j.string_or("substrate", s.substrate);
  require(s.substrate == "sim" || s.substrate == "vod" ||
              s.substrate == "cluster",
          "unknown substrate \"" + s.substrate +
              "\" (expected sim, vod, or cluster)");
  s.policy = j.string_or("policy", s.policy);
  require(s.policy == "des" || s.policy == "sdvfs" || s.policy == "nodvfs",
          "unknown policy \"" + s.policy +
              "\" (expected des, sdvfs, or nodvfs)");

  if (const Json* w = j.find("workload")) parse_workload(*w, s.workload);

  if (const Json* e = j.find("engine")) {
    s.cores = static_cast<int>(e->number_or("cores", s.cores));
    s.power_budget = e->number_or("power_budget", s.power_budget);
    s.quantum_ms = e->number_or("quantum_ms", s.quantum_ms);
    s.counter_trigger =
        static_cast<int>(e->number_or("counter_trigger", s.counter_trigger));
    s.idle_trigger = e->bool_or("idle_trigger", s.idle_trigger);
    s.quality_c = e->number_or("quality_c", s.quality_c);
    s.max_core_speed = e->number_or("max_core_speed", s.max_core_speed);
    s.record = e->bool_or("record", s.record);
    require(s.cores >= 1, "engine needs at least one core");
    require(s.power_budget > 0.0, "power budget must be positive");
    require(s.quality_c > 0.0, "quality_c must be positive");
  }

  if (const Json* b = j.find("budget_steps")) {
    for (const Json& e : b->as_array()) {
      EngineBudgetStep step;
      step.at = e.number_or("at_ms", -1.0);
      step.budget = e.number_or("budget", 0.0);
      require(step.at >= 0.0, "budget step needs a non-negative at_ms");
      require(step.budget > 0.0, "budget step needs a positive budget");
      s.budget_steps.push_back(step);
    }
    require(std::is_sorted(s.budget_steps.begin(), s.budget_steps.end(),
                           [](const EngineBudgetStep& a,
                              const EngineBudgetStep& b2) {
                             return a.at < b2.at;
                           }),
            "budget steps must be sorted by at_ms");
  }

  if (const Json* c = j.find("cluster")) {
    s.nodes = static_cast<int>(c->number_or("nodes", s.nodes));
    s.total_budget = c->number_or("total_budget", s.total_budget);
    s.broker_period_ms = c->number_or("broker_period_ms", s.broker_period_ms);
    s.dispatch = c->string_or("dispatch", s.dispatch);
    require(s.nodes >= 1, "cluster needs at least one node");
    require(s.broker_period_ms > 0.0, "broker period must be positive");
    require(s.dispatch == "crr" || s.dispatch == "jsq" || s.dispatch == "p2c",
            "unknown dispatch \"" + s.dispatch +
                "\" (expected crr, jsq, or p2c)");
  }

  if (const Json* c = j.find("chaos")) {
    require(s.substrate == "cluster",
            "chaos schedules require the cluster substrate "
            "(sim cells express budget steps via budget_steps)");
    for (const Json& e : c->as_array()) {
      s.chaos.push_back(parse_chaos_event(e));
    }
    require(
        std::is_sorted(s.chaos.begin(), s.chaos.end(),
                       [](const cluster::ChaosEvent& a,
                          const cluster::ChaosEvent& b) { return a.t < b.t; }),
        "chaos events must be sorted by at_ms");
  }

  if (const Json* v = j.find("vod")) {
    s.vod_mean_chunks = v->number_or("mean_chunks", s.vod_mean_chunks);
    s.vod_chunk_period_ms =
        v->number_or("chunk_period_ms", s.vod_chunk_period_ms);
    require(s.vod_mean_chunks > 0.0 && s.vod_chunk_period_ms > 0.0,
            "vod session parameters must be positive");
  }

  s.compare_opt = j.bool_or("compare_opt", s.compare_opt);
  require(!(s.compare_opt && s.substrate == "cluster" && !s.chaos.empty()),
          "compare_opt is undefined for chaos cells (kills rewrite the "
          "job set)");
  return s;
}

ScenarioSpec parse_scenario_text(const std::string& text) {
  return parse_scenario(Json::parse(text));
}

ScenarioSpec load_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("scenario spec: cannot read " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_scenario_text(buf.str());
}

}  // namespace qes::scenario
