#include "workload/generator.hpp"

#include <cmath>

namespace qes {

std::vector<Job> generate_websearch_jobs(const WorkloadConfig& cfg) {
  QES_ASSERT(cfg.partial_fraction >= 0.0 && cfg.partial_fraction <= 1.0);
  QES_ASSERT(cfg.premium_fraction >= 0.0 && cfg.premium_fraction <= 1.0 &&
             cfg.premium_weight > 0.0);
  Xoshiro256 rng(cfg.seed);
  const PoissonArrivals arrivals(cfg.arrival_rate);
  const BoundedPareto demands(cfg.pareto_alpha, cfg.demand_min,
                              cfg.demand_max);
  std::vector<Job> jobs;
  Time t = arrivals.next_gap(rng);
  JobId next_id = 1;
  while (t < cfg.horizon_ms) {
    Job j;
    j.id = next_id++;
    j.release = t;
    j.deadline = t + cfg.deadline_ms;
    j.demand = demands.sample(rng);
    j.partial_ok = rng.bernoulli(cfg.partial_fraction);
    if (cfg.premium_fraction > 0.0 && rng.bernoulli(cfg.premium_fraction)) {
      j.weight = cfg.premium_weight;
    }
    jobs.push_back(j);
    t += arrivals.next_gap(rng);
  }
  return jobs;
}

double diurnal_rate(const DiurnalConfig& cfg, Time t) {
  constexpr double kPi = 3.14159265358979323846;
  return cfg.base_rate *
         (1.0 + cfg.amplitude *
                    std::sin(2.0 * kPi * t / cfg.period_ms - kPi / 2.0));
}

std::vector<Job> generate_diurnal_jobs(const DiurnalConfig& cfg) {
  QES_ASSERT(cfg.base_rate > 0.0 && cfg.amplitude >= 0.0 &&
             cfg.amplitude < 1.0);
  QES_ASSERT(cfg.period_ms > 0.0 && cfg.horizon_ms > 0.0);
  Xoshiro256 rng(cfg.seed);
  const BoundedPareto demands(cfg.pareto_alpha, cfg.demand_min,
                              cfg.demand_max);
  const double max_rate = cfg.base_rate * (1.0 + cfg.amplitude);
  std::vector<Job> jobs;
  Time t = 0.0;
  JobId next_id = 1;
  for (;;) {
    // Thinning: candidates at the max rate, accepted with rate(t)/max.
    t += rng.exponential(max_rate / 1000.0);
    if (t >= cfg.horizon_ms) break;
    if (!rng.bernoulli(diurnal_rate(cfg, t) / max_rate)) continue;
    Job j;
    j.id = next_id++;
    j.release = t;
    j.deadline = t + cfg.deadline_ms;
    j.demand = demands.sample(rng);
    j.partial_ok = rng.bernoulli(cfg.partial_fraction);
    jobs.push_back(j);
  }
  return jobs;
}

std::vector<Job> generate_mmpp_jobs(const MmppConfig& cfg) {
  QES_ASSERT(cfg.rate_lo > 0.0 && cfg.rate_hi > 0.0);
  QES_ASSERT(cfg.dwell_lo_ms > 0.0 && cfg.dwell_hi_ms > 0.0);
  QES_ASSERT(cfg.horizon_ms > 0.0 && cfg.deadline_ms > 0.0);
  Xoshiro256 rng(cfg.seed);
  const BoundedPareto demands(cfg.pareto_alpha, cfg.demand_min,
                              cfg.demand_max);
  std::vector<Job> jobs;
  bool high = false;
  Time t = 0.0;
  JobId next_id = 1;
  for (;;) {
    // Competing exponentials in the current state: the next event is an
    // arrival (rate r) or a state switch (rate 1/dwell), whichever
    // fires first — an exact MMPP sample path.
    const double arrival_per_ms =
        (high ? cfg.rate_hi : cfg.rate_lo) / 1000.0;
    const double switch_per_ms =
        1.0 / (high ? cfg.dwell_hi_ms : cfg.dwell_lo_ms);
    t += rng.exponential(arrival_per_ms + switch_per_ms);
    if (t >= cfg.horizon_ms) break;
    if (!rng.bernoulli(arrival_per_ms / (arrival_per_ms + switch_per_ms))) {
      high = !high;
      continue;
    }
    Job j;
    j.id = next_id++;
    j.release = t;
    j.deadline = t + cfg.deadline_ms;
    j.demand = demands.sample(rng);
    j.partial_ok = rng.bernoulli(cfg.partial_fraction);
    jobs.push_back(j);
  }
  return jobs;
}

double flash_rate(const FlashConfig& cfg, Time t) {
  const bool in_spike =
      t >= cfg.spike_at_ms && t < cfg.spike_at_ms + cfg.spike_len_ms;
  return cfg.base_rate * (in_spike ? cfg.spike_factor : 1.0);
}

std::vector<Job> generate_flash_jobs(const FlashConfig& cfg) {
  QES_ASSERT(cfg.base_rate > 0.0 && cfg.spike_factor >= 1.0);
  QES_ASSERT(cfg.spike_at_ms >= 0.0 && cfg.spike_len_ms >= 0.0);
  QES_ASSERT(cfg.horizon_ms > 0.0 && cfg.deadline_ms > 0.0);
  Xoshiro256 rng(cfg.seed);
  const BoundedPareto demands(cfg.pareto_alpha, cfg.demand_min,
                              cfg.demand_max);
  const double max_rate = cfg.base_rate * cfg.spike_factor;
  std::vector<Job> jobs;
  Time t = 0.0;
  JobId next_id = 1;
  for (;;) {
    // Thinning: candidates at the spike rate, accepted with rate(t)/max.
    t += rng.exponential(max_rate / 1000.0);
    if (t >= cfg.horizon_ms) break;
    if (!rng.bernoulli(flash_rate(cfg, t) / max_rate)) continue;
    Job j;
    j.id = next_id++;
    j.release = t;
    j.deadline = t + cfg.deadline_ms;
    j.demand = demands.sample(rng);
    j.partial_ok = rng.bernoulli(cfg.partial_fraction);
    jobs.push_back(j);
  }
  return jobs;
}

double offered_load(std::span<const Job> jobs, Time horizon_ms, int cores,
                    Speed per_core_speed) {
  QES_ASSERT(cores > 0 && per_core_speed > 0.0 && horizon_ms > 0.0);
  const Work capacity = cores * per_core_speed * horizon_ms;
  return total_demand(jobs) / capacity;
}

}  // namespace qes
