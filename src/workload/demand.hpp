// Service-demand distributions (paper §V-B).
//
// The web-search workload draws demands from a bounded Pareto
// distribution with index alpha = 3, lower bound 130 and upper bound 1000
// processing units (mean ~192). Deterministic and uniform samplers exist
// for tests and ablations.
#pragma once

#include <memory>
#include <string>

#include "core/prng.hpp"
#include "core/time.hpp"

namespace qes {

/// Interface for demand samplers. Implementations must be deterministic
/// given the RNG stream.
class DemandDistribution {
 public:
  virtual ~DemandDistribution() = default;
  [[nodiscard]] virtual Work sample(Xoshiro256& rng) const = 0;
  [[nodiscard]] virtual double mean() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Bounded Pareto(alpha, x_min, x_max) via inverse-transform sampling.
class BoundedPareto final : public DemandDistribution {
 public:
  BoundedPareto(double alpha, Work x_min, Work x_max);

  /// The paper's web-search demand model: alpha=3, [130, 1000] units.
  [[nodiscard]] static BoundedPareto websearch();

  [[nodiscard]] Work sample(Xoshiro256& rng) const override;
  [[nodiscard]] double mean() const override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] Work x_min() const { return x_min_; }
  [[nodiscard]] Work x_max() const { return x_max_; }

 private:
  double alpha_;
  Work x_min_;
  Work x_max_;
  double tail_;  // 1 - (x_min / x_max)^alpha, cached
};

/// Every job has the same demand; useful for analytic test oracles.
class FixedDemand final : public DemandDistribution {
 public:
  explicit FixedDemand(Work w) : w_(w) { QES_ASSERT(w > 0.0); }
  [[nodiscard]] Work sample(Xoshiro256&) const override { return w_; }
  [[nodiscard]] double mean() const override { return w_; }
  [[nodiscard]] std::string name() const override { return "fixed"; }

 private:
  Work w_;
};

/// Uniform demand in [lo, hi].
class UniformDemand final : public DemandDistribution {
 public:
  UniformDemand(Work lo, Work hi) : lo_(lo), hi_(hi) {
    QES_ASSERT(0.0 < lo && lo <= hi);
  }
  [[nodiscard]] Work sample(Xoshiro256& rng) const override {
    return rng.uniform(lo_, hi_);
  }
  [[nodiscard]] double mean() const override { return (lo_ + hi_) / 2.0; }
  [[nodiscard]] std::string name() const override { return "uniform"; }

 private:
  Work lo_;
  Work hi_;
};

}  // namespace qes
