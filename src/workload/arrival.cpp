#include "workload/arrival.hpp"

namespace qes {

std::vector<Time> generate_arrivals(const ArrivalProcess& proc,
                                    Time horizon_ms, Xoshiro256& rng) {
  std::vector<Time> arrivals;
  Time t = proc.next_gap(rng);
  while (t < horizon_ms) {
    arrivals.push_back(t);
    t += proc.next_gap(rng);
  }
  return arrivals;
}

}  // namespace qes
