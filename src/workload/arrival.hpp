// Arrival processes (paper §V-B: Poisson arrivals at rate lambda req/s).
#pragma once

#include <string>
#include <vector>

#include "core/prng.hpp"
#include "core/time.hpp"

namespace qes {

/// Interface for arrival processes; next_gap returns the time (ms) until
/// the next arrival.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  [[nodiscard]] virtual Time next_gap(Xoshiro256& rng) const = 0;
  [[nodiscard]] virtual double rate_per_second() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Poisson process: exponential inter-arrival gaps.
class PoissonArrivals final : public ArrivalProcess {
 public:
  explicit PoissonArrivals(double rate_per_second)
      : rate_(rate_per_second) {
    QES_ASSERT(rate_ > 0.0);
  }
  [[nodiscard]] Time next_gap(Xoshiro256& rng) const override {
    return rng.exponential(rate_ / 1000.0);  // rate per ms
  }
  [[nodiscard]] double rate_per_second() const override { return rate_; }
  [[nodiscard]] std::string name() const override { return "poisson"; }

 private:
  double rate_;
};

/// Evenly spaced arrivals; handy for analytic test oracles.
class UniformArrivals final : public ArrivalProcess {
 public:
  explicit UniformArrivals(double rate_per_second)
      : rate_(rate_per_second) {
    QES_ASSERT(rate_ > 0.0);
  }
  [[nodiscard]] Time next_gap(Xoshiro256&) const override {
    return 1000.0 / rate_;
  }
  [[nodiscard]] double rate_per_second() const override { return rate_; }
  [[nodiscard]] std::string name() const override { return "uniform"; }

 private:
  double rate_;
};

/// Generate arrival timestamps in [0, horizon_ms).
[[nodiscard]] std::vector<Time> generate_arrivals(const ArrivalProcess& proc,
                                                  Time horizon_ms,
                                                  Xoshiro256& rng);

}  // namespace qes
