#include "workload/trace_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace qes {

namespace {
// v2 adds the service-class weight column; v1 traces (without it) are
// still readable and default every weight to 1.
constexpr const char* kHeaderV1 =
    "id,release_ms,deadline_ms,demand_units,partial_ok";
constexpr const char* kHeaderV2 =
    "id,release_ms,deadline_ms,demand_units,partial_ok,weight";
}

void write_job_trace(std::ostream& os, std::span<const Job> jobs) {
  os << kHeaderV2 << '\n';
  os << std::setprecision(17);
  for (const Job& j : jobs) {
    os << j.id << ',' << j.release << ',' << j.deadline << ',' << j.demand
       << ',' << (j.partial_ok ? 1 : 0) << ',' << j.weight << '\n';
  }
}

std::vector<Job> read_job_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) {
    throw std::runtime_error("job trace: bad or missing header");
  }
  bool v2 = false;
  if (line == kHeaderV2) {
    v2 = true;
  } else if (line != kHeaderV1) {
    throw std::runtime_error("job trace: bad or missing header");
  }
  std::vector<Job> jobs;
  std::size_t row = 1;
  while (std::getline(is, line)) {
    ++row;
    if (line.empty()) continue;
    std::istringstream ss(line);
    Job j;
    char c1, c2, c3, c4, c5;
    int partial = 0;
    bool ok = static_cast<bool>(ss >> j.id >> c1 >> j.release >> c2 >>
                                j.deadline >> c3 >> j.demand >> c4 >>
                                partial) &&
              c1 == ',' && c2 == ',' && c3 == ',' && c4 == ',';
    if (ok && v2) {
      ok = static_cast<bool>(ss >> c5 >> j.weight) && c5 == ',' &&
           j.weight > 0.0;
    }
    if (!ok) {
      throw std::runtime_error("job trace: malformed row " +
                               std::to_string(row));
    }
    j.partial_ok = partial != 0;
    jobs.push_back(j);
  }
  return jobs;
}

void save_job_trace(const std::string& path, std::span<const Job> jobs) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_job_trace(out, jobs);
  if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<Job> load_job_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return read_job_trace(in);
}

}  // namespace qes
