#include "workload/demand.hpp"

#include <cmath>

namespace qes {

BoundedPareto::BoundedPareto(double alpha, Work x_min, Work x_max)
    : alpha_(alpha), x_min_(x_min), x_max_(x_max) {
  QES_ASSERT_MSG(alpha > 0.0 && alpha != 1.0,
                 "alpha must be positive and != 1 (mean formula)");
  QES_ASSERT(0.0 < x_min && x_min < x_max);
  tail_ = 1.0 - std::pow(x_min_ / x_max_, alpha_);
}

BoundedPareto BoundedPareto::websearch() {
  return BoundedPareto(3.0, 130.0, 1000.0);
}

Work BoundedPareto::sample(Xoshiro256& rng) const {
  const double u = rng.next_double();  // [0, 1)
  // Inverse CDF of the bounded Pareto: F(x) = (1-(x_min/x)^a) / tail.
  const Work x = x_min_ / std::pow(1.0 - u * tail_, 1.0 / alpha_);
  return std::min(x, x_max_);
}

double BoundedPareto::mean() const {
  // E[X] = a x_min^a / (tail (a-1)) * (x_min^{1-a} - x_max^{1-a}).
  return alpha_ * std::pow(x_min_, alpha_) / (tail_ * (alpha_ - 1.0)) *
         (std::pow(x_min_, 1.0 - alpha_) - std::pow(x_max_, 1.0 - alpha_));
}

std::string BoundedPareto::name() const {
  return "bounded_pareto(a=" + std::to_string(alpha_) + ")";
}

}  // namespace qes
