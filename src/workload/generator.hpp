// Workload generator: turns an arrival process + demand distribution +
// deadline policy into a concrete job trace (paper §V-B).
#pragma once

#include <vector>

#include "core/job.hpp"
#include "core/prng.hpp"
#include "workload/arrival.hpp"
#include "workload/demand.hpp"

namespace qes {

struct WorkloadConfig {
  /// Arrival rate lambda in requests per second.
  double arrival_rate = 120.0;
  /// Simulated duration in milliseconds (paper: 1800 s).
  Time horizon_ms = 1'800'000.0;
  /// Relative deadline: every request must respond within this window.
  Time deadline_ms = 150.0;
  /// Fraction of jobs supporting partial evaluation (§V-D; default all).
  double partial_fraction = 1.0;
  /// Bounded-Pareto demand parameters (§V-B defaults).
  double pareto_alpha = 3.0;
  Work demand_min = 130.0;
  Work demand_max = 1000.0;
  /// Service classes (extension): this fraction of jobs carries
  /// premium_weight instead of weight 1.
  double premium_fraction = 0.0;
  double premium_weight = 4.0;
  /// RNG seed; a fixed seed reproduces the exact trace.
  std::uint64_t seed = 1;
};

/// Generates a job trace under `cfg`: Poisson arrivals, bounded-Pareto
/// demands, deadline = arrival + deadline_ms (hence agreeable), and the
/// requested fraction of partial-evaluation support. Job ids are 1..n in
/// arrival order.
[[nodiscard]] std::vector<Job> generate_websearch_jobs(
    const WorkloadConfig& cfg);

/// Total demand / (capacity of m cores at `per_core_speed` over the
/// horizon); the paper's notion of offered load (72% at lambda=120).
[[nodiscard]] double offered_load(std::span<const Job> jobs, Time horizon_ms,
                                  int cores, Speed per_core_speed);

/// Diurnal (time-varying Poisson) traffic: the instantaneous rate is
///   rate(t) = base_rate * (1 + amplitude * sin(2*pi*t/period - pi/2)),
/// i.e. the trough is at t = 0 and the peak at t = period/2. Sampled by
/// thinning, so the process is an exact inhomogeneous Poisson process.
struct DiurnalConfig {
  double base_rate = 120.0;   ///< mean requests per second
  double amplitude = 0.6;     ///< in [0, 1): peak/trough swing
  Time period_ms = 60'000.0;  ///< one "day"
  Time horizon_ms = 120'000.0;
  Time deadline_ms = 150.0;
  double partial_fraction = 1.0;
  double pareto_alpha = 3.0;
  Work demand_min = 130.0;
  Work demand_max = 1000.0;
  std::uint64_t seed = 1;
};

[[nodiscard]] std::vector<Job> generate_diurnal_jobs(
    const DiurnalConfig& cfg);

/// The instantaneous arrival rate of the diurnal model at time t.
[[nodiscard]] double diurnal_rate(const DiurnalConfig& cfg, Time t);

/// 2-state Markov-modulated Poisson process (MMPP-2): the arrival rate
/// alternates between a low and a high state, each held for an
/// exponentially distributed dwell time. Simulated exactly by competing
/// exponentials (arrival vs. state switch), starting in the low state.
struct MmppConfig {
  double rate_lo = 80.0;        ///< requests per second, low state
  double rate_hi = 320.0;       ///< requests per second, high state
  Time dwell_lo_ms = 20'000.0;  ///< mean low-state dwell
  Time dwell_hi_ms = 5'000.0;   ///< mean high-state dwell
  Time horizon_ms = 120'000.0;
  Time deadline_ms = 150.0;
  double partial_fraction = 1.0;
  double pareto_alpha = 3.0;
  Work demand_min = 130.0;
  Work demand_max = 1000.0;
  std::uint64_t seed = 1;
};

[[nodiscard]] std::vector<Job> generate_mmpp_jobs(const MmppConfig& cfg);

/// Flash crowd: Poisson at base_rate, multiplied by spike_factor inside
/// the window [spike_at_ms, spike_at_ms + spike_len_ms). Sampled by
/// thinning against the spike rate, so the process is an exact
/// piecewise-homogeneous Poisson process.
struct FlashConfig {
  double base_rate = 120.0;    ///< requests per second outside the spike
  double spike_factor = 4.0;   ///< >= 1: rate multiplier inside the spike
  Time spike_at_ms = 30'000.0;
  Time spike_len_ms = 10'000.0;
  Time horizon_ms = 120'000.0;
  Time deadline_ms = 150.0;
  double partial_fraction = 1.0;
  double pareto_alpha = 3.0;
  Work demand_min = 130.0;
  Work demand_max = 1000.0;
  std::uint64_t seed = 1;
};

[[nodiscard]] std::vector<Job> generate_flash_jobs(const FlashConfig& cfg);

/// The instantaneous arrival rate of the flash-crowd model at time t.
[[nodiscard]] double flash_rate(const FlashConfig& cfg, Time t);

}  // namespace qes
