// CSV job-trace I/O: lets experiments snapshot a workload and replay the
// exact same trace (used by the validation substrate and by users who
// want to feed real traces into the simulator).
//
// Format: header "id,release_ms,deadline_ms,demand_units,partial_ok"
// followed by one row per job.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/job.hpp"

namespace qes {

void write_job_trace(std::ostream& os, std::span<const Job> jobs);
[[nodiscard]] std::vector<Job> read_job_trace(std::istream& is);

/// File conveniences; throw std::runtime_error on I/O failure.
void save_job_trace(const std::string& path, std::span<const Job> jobs);
[[nodiscard]] std::vector<Job> load_job_trace(const std::string& path);

}  // namespace qes
