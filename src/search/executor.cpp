#include "search/executor.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "core/assert.hpp"

namespace qes::search {

Query sample_query(const Corpus& corpus, Xoshiro256& rng,
                   std::size_t min_terms, std::size_t max_terms) {
  QES_ASSERT(1 <= min_terms && min_terms <= max_terms);
  const std::size_t want =
      min_terms + rng.uniform_index(max_terms - min_terms + 1);
  std::set<TermId> terms;
  // Bounded retry: popular terms collide often.
  for (int attempt = 0; attempt < 64 && terms.size() < want; ++attempt) {
    terms.insert(corpus.sample_term(rng));
  }
  Query q;
  q.terms.assign(terms.begin(), terms.end());
  return q;
}

SearchResult QueryExecutor::execute(const Query& query, std::size_t k,
                                    std::size_t budget_postings) const {
  SearchResult out;
  // Cursor-per-list merge in descending impact order.
  struct Cursor {
    const std::vector<Posting>* list;
    std::size_t pos;
  };
  auto cmp = [](const Cursor& a, const Cursor& b) {
    return (*a.list)[a.pos].impact < (*b.list)[b.pos].impact;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> heap(cmp);
  std::size_t remaining_total = 0;
  for (TermId t : query.terms) {
    const auto& list = index_->postings(t);
    remaining_total += list.size();
    if (!list.empty()) heap.push({&list, 0});
  }

  std::map<DocId, double> acc;
  while (!heap.empty() && out.postings_processed < budget_postings) {
    Cursor c = heap.top();
    heap.pop();
    const Posting& p = (*c.list)[c.pos];
    acc[p.doc] += static_cast<double>(p.impact);
    ++out.postings_processed;
    if (++c.pos < c.list->size()) heap.push(c);
  }
  out.complete = out.postings_processed == remaining_total;

  out.hits.assign(acc.begin(), acc.end());
  std::sort(out.hits.begin(), out.hits.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (out.hits.size() > k) out.hits.resize(k);
  return out;
}

std::vector<SearchResult> QueryExecutor::execute_prefixes(
    const Query& query, std::size_t k,
    std::span<const std::size_t> budgets) const {
  for (std::size_t i = 1; i < budgets.size(); ++i) {
    QES_ASSERT_MSG(budgets[i] >= budgets[i - 1],
                   "prefix budgets must be ascending");
  }
  struct Cursor {
    const std::vector<Posting>* list;
    std::size_t pos;
  };
  auto cmp = [](const Cursor& a, const Cursor& b) {
    return (*a.list)[a.pos].impact < (*b.list)[b.pos].impact;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> heap(cmp);
  std::size_t remaining_total = 0;
  for (TermId t : query.terms) {
    const auto& list = index_->postings(t);
    remaining_total += list.size();
    if (!list.empty()) heap.push({&list, 0});
  }

  auto snapshot = [&](const std::map<DocId, double>& acc,
                      std::size_t processed) {
    SearchResult r;
    r.postings_processed = processed;
    r.complete = processed == remaining_total;
    r.hits.assign(acc.begin(), acc.end());
    std::sort(r.hits.begin(), r.hits.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (r.hits.size() > k) r.hits.resize(k);
    return r;
  };

  std::vector<SearchResult> out;
  out.reserve(budgets.size());
  std::map<DocId, double> acc;
  std::size_t processed = 0;
  for (std::size_t budget : budgets) {
    while (!heap.empty() && processed < budget) {
      Cursor c = heap.top();
      heap.pop();
      const Posting& p = (*c.list)[c.pos];
      acc[p.doc] += static_cast<double>(p.impact);
      ++processed;
      if (++c.pos < c.list->size()) heap.push(c);
    }
    out.push_back(snapshot(acc, processed));
  }
  return out;
}

std::size_t QueryExecutor::full_cost(const Query& query) const {
  std::size_t total = 0;
  for (TermId t : query.terms) total += index_->postings(t).size();
  return total;
}

double QueryExecutor::quality(const Query& query, const SearchResult& partial,
                              std::size_t k) const {
  return score_recall(partial, execute(query, k));
}

double QueryExecutor::score_recall(const SearchResult& partial,
                                   const SearchResult& full) {
  if (full.hits.empty()) return 1.0;  // nothing to find
  std::map<DocId, double> true_scores;
  double denom = 0.0;
  for (const auto& [doc, score] : full.hits) {
    true_scores[doc] = score;
    denom += score;
  }
  QES_ASSERT(denom > 0.0);
  double num = 0.0;
  for (const auto& [doc, score] : partial.hits) {
    const auto it = true_scores.find(doc);
    if (it != true_scores.end()) num += it->second;
  }
  return num / denom;
}

std::vector<double> QueryExecutor::topk_mass_curve(
    const Query& query, std::size_t k,
    std::span<const std::size_t> budgets) const {
  // Pass 1: the true top-k and its total score mass.
  const SearchResult full = execute(query, k);
  std::set<DocId> topk;
  double denom = 0.0;
  for (const auto& [doc, score] : full.hits) {
    topk.insert(doc);
    denom += score;
  }
  if (topk.empty() || denom <= 0.0) {
    return std::vector<double>(budgets.size(), 1.0);
  }

  // Pass 2: re-merge, accumulating only top-k docs' impacts.
  struct Cursor {
    const std::vector<Posting>* list;
    std::size_t pos;
  };
  auto cmp = [](const Cursor& a, const Cursor& b) {
    return (*a.list)[a.pos].impact < (*b.list)[b.pos].impact;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(cmp)> heap(cmp);
  for (TermId t : query.terms) {
    const auto& list = index_->postings(t);
    if (!list.empty()) heap.push({&list, 0});
  }
  std::vector<double> out;
  out.reserve(budgets.size());
  double mass = 0.0;
  std::size_t processed = 0;
  for (std::size_t budget : budgets) {
    while (!heap.empty() && processed < budget) {
      Cursor c = heap.top();
      heap.pop();
      const Posting& p = (*c.list)[c.pos];
      if (topk.count(p.doc)) mass += static_cast<double>(p.impact);
      ++processed;
      if (++c.pos < c.list->size()) heap.push(c);
    }
    out.push_back(mass / denom);
  }
  return out;
}

}  // namespace qes::search
