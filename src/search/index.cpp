#include "search/index.hpp"

#include <algorithm>
#include <cmath>

#include "core/assert.hpp"

namespace qes::search {

InvertedIndex::InvertedIndex(const Corpus& corpus)
    : num_docs_(corpus.size()) {
  const std::uint32_t vocab = corpus.config().vocabulary;
  postings_.resize(vocab);
  doc_freq_.assign(vocab, 0);

  for (const Document& doc : corpus.documents()) {
    for (const auto& [term, tf] : doc.terms) {
      ++doc_freq_[term];
      (void)tf;
    }
  }
  for (const Document& doc : corpus.documents()) {
    for (const auto& [term, tf] : doc.terms) {
      // Standard tf-idf with length normalization.
      const double w = (1.0 + std::log(static_cast<double>(tf))) *
                       idf(term) /
                       std::sqrt(static_cast<double>(doc.length));
      postings_[term].push_back({doc.id, static_cast<float>(w)});
    }
  }
  for (auto& list : postings_) {
    std::sort(list.begin(), list.end(), [](const Posting& a, const Posting& b) {
      if (a.impact != b.impact) return a.impact > b.impact;
      return a.doc < b.doc;
    });
    total_ += list.size();
  }
}

const std::vector<Posting>& InvertedIndex::postings(TermId term) const {
  QES_ASSERT(term < postings_.size());
  return postings_[term];
}

double InvertedIndex::idf(TermId term) const {
  QES_ASSERT(term < doc_freq_.size());
  const double df = std::max<std::uint32_t>(doc_freq_[term], 1);
  return std::log(1.0 + static_cast<double>(num_docs_) / df);
}

}  // namespace qes::search
