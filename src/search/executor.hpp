// Budgeted (early-terminating) query execution over the impact-ordered
// index — the best-effort request the paper schedules.
//
// A query evaluates postings from its terms' lists in globally
// descending impact order; stopping after any prefix yields a valid
// partial result. Result quality is measured against the full
// evaluation, so quality(work) curves can be profiled per query.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/prng.hpp"
#include "search/index.hpp"

namespace qes::search {

struct Query {
  std::vector<TermId> terms;
};

/// Samples a realistic multi-term query: terms drawn from the corpus's
/// Zipf popularity, deduplicated.
[[nodiscard]] Query sample_query(const Corpus& corpus, Xoshiro256& rng,
                                 std::size_t min_terms = 2,
                                 std::size_t max_terms = 4);

struct SearchResult {
  /// Top documents by accumulated score, descending.
  std::vector<std::pair<DocId, double>> hits;
  std::size_t postings_processed = 0;
  bool complete = false;  ///< every posting of every term was evaluated
};

class QueryExecutor {
 public:
  explicit QueryExecutor(const InvertedIndex& index) : index_(&index) {}

  /// Evaluates at most `budget_postings` postings (impact order across
  /// the query's lists) and returns the top-k accumulated documents.
  [[nodiscard]] SearchResult execute(
      const Query& query, std::size_t k,
      std::size_t budget_postings = SIZE_MAX) const;

  /// Evaluates the query once, snapshotting the top-k at each of the
  /// given posting budgets (ascending). Returns one SearchResult per
  /// budget; budgets beyond the full cost yield the complete result.
  /// Far cheaper than calling execute() per budget when profiling
  /// quality(work) curves.
  [[nodiscard]] std::vector<SearchResult> execute_prefixes(
      const Query& query, std::size_t k,
      std::span<const std::size_t> budgets) const;

  /// Total postings a full evaluation of this query touches — the
  /// query's service demand in substrate units.
  [[nodiscard]] std::size_t full_cost(const Query& query) const;

  /// Score-weighted recall of `partial` against the full evaluation:
  /// (sum of true scores of returned docs that belong to the true top-k)
  /// / (sum of true top-k scores). In [0, 1], 1 iff the true top-k was
  /// found.
  [[nodiscard]] double quality(const Query& query, const SearchResult& partial,
                               std::size_t k) const;

  /// Same metric with a precomputed full result (profiling fast path).
  [[nodiscard]] static double score_recall(const SearchResult& partial,
                                           const SearchResult& full);

  /// Fraction of the TRUE top-k score mass accumulated after each
  /// posting budget (ascending). Monotone in work by construction, and
  /// concave in expectation because impacts are processed in descending
  /// order (individual queries can have locally convex stretches when
  /// their top-k postings cluster late) — the substrate-level origin of
  /// the paper's Fig. 1 curve. Ends at 1 when the last budget covers the
  /// full cost.
  [[nodiscard]] std::vector<double> topk_mass_curve(
      const Query& query, std::size_t k,
      std::span<const std::size_t> budgets) const;

 private:
  const InvertedIndex* index_;
};

}  // namespace qes::search
