// Quality profiling: measure quality(work) on the search substrate and
// bridge it to the scheduler's model.
//
// This closes the loop the paper assumes: it runs real early-terminated
// queries, measures the mean quality as a function of work, verifies the
// curve is increasing and concave, fits the paper's Eq. (1) family to
// it, and emits a scheduler workload whose service demands are the
// actual per-query evaluation costs (instead of the bounded-Pareto
// stand-in).
#pragma once

#include <vector>

#include "core/job.hpp"
#include "core/quality.hpp"
#include "search/executor.hpp"

namespace qes::search {

struct ProfileConfig {
  std::size_t num_queries = 200;
  std::size_t top_k = 10;
  /// Work-fraction grid at which quality is sampled per query.
  std::size_t grid_points = 20;
  /// Calibration: mean full query cost maps to this many scheduler
  /// processing units (paper's mean demand ~192).
  Work target_mean_units = 192.0;
  std::uint64_t seed = 7;
};

struct QualityProfile {
  /// Work grid in scheduler units (absolute) and the measured mean
  /// quality at each point.
  std::vector<Work> work_units;
  std::vector<double> mean_quality;
  /// Eq. (1) parameter fitted to the measured curve, and its RMSE.
  double fitted_c = 0.0;
  double fit_rmse = 0.0;
  /// Normalization point of the fitted curve (the mean demand).
  Work x_norm = 0.0;
  /// Calibration: scheduler units per evaluated posting.
  double units_per_posting = 0.0;
  /// Demand statistics over the profiled queries (in units).
  Work demand_mean = 0.0;
  Work demand_min = 0.0;
  Work demand_max = 0.0;

  /// The fitted member of the paper's quality family.
  [[nodiscard]] QualityFunction fitted_function() const;

  /// Piecewise-linear interpolation of the *measured* curve.
  [[nodiscard]] QualityFunction measured_function() const;

  /// True if the measured curve is monotone and concave up to sampling
  /// noise: each slope may exceed its predecessor by at most `slack`
  /// relatively and must never exceed the initial slope.
  [[nodiscard]] bool measured_curve_concave(double slack = 0.25) const;
};

/// Runs the profiler over randomly sampled queries.
[[nodiscard]] QualityProfile profile_quality(const InvertedIndex& index,
                                             const Corpus& corpus,
                                             const ProfileConfig& config = {});

/// Generates a scheduler job trace whose demands are real query costs
/// (converted with the profile's calibration): Poisson arrivals at
/// `rate_per_second` over `horizon_ms`, deadline = arrival + deadline_ms.
[[nodiscard]] std::vector<Job> search_workload(const InvertedIndex& index,
                                               const Corpus& corpus,
                                               const QualityProfile& profile,
                                               double rate_per_second,
                                               Time horizon_ms,
                                               Time deadline_ms = 150.0,
                                               std::uint64_t seed = 1);

}  // namespace qes::search
