#include "search/profile.hpp"

#include <algorithm>
#include <cmath>

#include "core/assert.hpp"

namespace qes::search {

namespace {

// Least-squares fit of q(x) = (1 - e^{-cx}) / (1 - e^{-c x_norm}) to the
// sample points, by golden-section search over c.
double fit_c(const std::vector<Work>& xs, const std::vector<double>& qs,
             Work x_norm, double& rmse_out) {
  QES_ASSERT(xs.size() == qs.size() && !xs.empty() && x_norm > 0.0);
  auto rmse = [&](double c) {
    const double norm = 1.0 - std::exp(-c * x_norm);
    double sse = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double q = (1.0 - std::exp(-c * xs[i])) / norm;
      sse += (q - qs[i]) * (q - qs[i]);
    }
    return std::sqrt(sse / static_cast<double>(xs.size()));
  };
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double lo = 1e-5, hi = 0.2;
  double x1 = hi - phi * (hi - lo), x2 = lo + phi * (hi - lo);
  double f1 = rmse(x1), f2 = rmse(x2);
  for (int it = 0; it < 200 && hi - lo > 1e-9; ++it) {
    if (f1 < f2) {
      hi = x2; x2 = x1; f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = rmse(x1);
    } else {
      lo = x1; x1 = x2; f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = rmse(x2);
    }
  }
  const double c = (lo + hi) / 2.0;
  rmse_out = rmse(c);
  return c;
}

}  // namespace

QualityFunction QualityProfile::fitted_function() const {
  QES_ASSERT(fitted_c > 0.0);
  return QualityFunction::exponential(fitted_c);
}

QualityFunction QualityProfile::measured_function() const {
  QES_ASSERT(work_units.size() == mean_quality.size() && !work_units.empty());
  auto xs = work_units;
  auto qs = mean_quality;
  return QualityFunction::custom(
      "search-measured",
      [xs, qs](Work x) {
        if (x <= xs.front()) {
          return xs.front() > 0.0 ? qs.front() * (x / xs.front())
                                  : qs.front();
        }
        if (x >= xs.back()) return qs.back();
        const auto it = std::lower_bound(xs.begin(), xs.end(), x);
        const std::size_t i = static_cast<std::size_t>(it - xs.begin());
        const double f = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
        return qs[i - 1] + f * (qs[i] - qs[i - 1]);
      },
      /*strictly_concave=*/measured_curve_concave());
}

bool QualityProfile::measured_curve_concave(double slack) const {
  // The curve is a Monte-Carlo estimate, so successive slopes jitter;
  // tolerate a bounded relative increase but require every slope to stay
  // below the initial one (global concave trend).
  double prev_slope = std::numeric_limits<double>::infinity();
  double first_slope = 0.0;
  for (std::size_t i = 0; i < work_units.size(); ++i) {
    const double q_prev = i == 0 ? 0.0 : mean_quality[i - 1];
    const double x_prev = i == 0 ? 0.0 : work_units[i - 1];
    const double dq = mean_quality[i] - q_prev;
    const double dx = work_units[i] - x_prev;
    if (dq < -1e-6) return false;  // not monotone
    const double slope = dq / dx;
    if (i == 0) {
      first_slope = slope;
    } else {
      if (slope > prev_slope * (1.0 + slack) + 1e-9) return false;
      if (slope > first_slope + 1e-9) return false;
    }
    prev_slope = slope;
  }
  return true;
}

QualityProfile profile_quality(const InvertedIndex& index,
                               const Corpus& corpus,
                               const ProfileConfig& config) {
  QES_ASSERT(config.num_queries > 0 && config.grid_points >= 2);
  Xoshiro256 rng(config.seed);
  const QueryExecutor exec(index);

  // Sample queries and their full costs (in postings).
  std::vector<Query> queries;
  std::vector<std::size_t> costs;
  double mean_cost = 0.0;
  for (std::size_t i = 0; i < config.num_queries; ++i) {
    Query q = sample_query(corpus, rng);
    const std::size_t cost = exec.full_cost(q);
    if (cost == 0) continue;  // all terms unseen; skip
    mean_cost += static_cast<double>(cost);
    costs.push_back(cost);
    queries.push_back(std::move(q));
  }
  QES_ASSERT_MSG(!queries.empty(), "corpus produced no evaluable queries");
  mean_cost /= static_cast<double>(queries.size());

  QualityProfile out;
  out.units_per_posting = config.target_mean_units / mean_cost;

  // Measure mean quality at each work fraction; also collect absolute
  // (units, quality) samples for the Eq. (1) fit.
  std::vector<Work> fit_x;
  std::vector<double> fit_q;
  out.work_units.resize(config.grid_points);
  out.mean_quality.assign(config.grid_points, 0.0);
  Work max_units = 0.0, min_units = std::numeric_limits<double>::infinity();
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const Work full_units =
        static_cast<double>(costs[qi]) * out.units_per_posting;
    max_units = std::max(max_units, full_units);
    min_units = std::min(min_units, full_units);
    std::vector<std::size_t> budgets;
    for (std::size_t g = 0; g < config.grid_points; ++g) {
      const double frac =
          static_cast<double>(g + 1) / static_cast<double>(config.grid_points);
      budgets.push_back(static_cast<std::size_t>(
          std::ceil(frac * static_cast<double>(costs[qi]))));
    }
    const auto curve =
        exec.topk_mass_curve(queries[qi], config.top_k, budgets);
    QES_ASSERT(std::fabs(curve.back() - 1.0) < 1e-9);
    for (std::size_t g = 0; g < config.grid_points; ++g) {
      const double frac =
          static_cast<double>(g + 1) / static_cast<double>(config.grid_points);
      out.mean_quality[g] += curve[g] / static_cast<double>(queries.size());
      fit_x.push_back(frac * full_units);
      fit_q.push_back(curve[g]);
    }
  }
  // The grid is expressed at the mean demand scale.
  for (std::size_t g = 0; g < config.grid_points; ++g) {
    out.work_units[g] = config.target_mean_units *
                        static_cast<double>(g + 1) /
                        static_cast<double>(config.grid_points);
  }
  // Fit Eq. (1) to the MEAN curve: per-query samples scatter widely
  // because quality is really a function of each query's work FRACTION
  // (see the substrate bench), while the scheduler's model wants one
  // absolute-volume function.
  (void)fit_x;
  (void)fit_q;
  out.x_norm = config.target_mean_units;
  out.fitted_c =
      fit_c(out.work_units, out.mean_quality, out.x_norm, out.fit_rmse);
  out.demand_mean = config.target_mean_units;
  out.demand_min = min_units;
  out.demand_max = max_units;
  return out;
}

std::vector<Job> search_workload(const InvertedIndex& index,
                                 const Corpus& corpus,
                                 const QualityProfile& profile,
                                 double rate_per_second, Time horizon_ms,
                                 Time deadline_ms, std::uint64_t seed) {
  QES_ASSERT(rate_per_second > 0.0 && horizon_ms > 0.0 && deadline_ms > 0.0);
  QES_ASSERT(profile.units_per_posting > 0.0);
  Xoshiro256 rng(seed);
  const QueryExecutor exec(index);
  std::vector<Job> jobs;
  Time t = rng.exponential(rate_per_second / 1000.0);
  JobId next_id = 1;
  while (t < horizon_ms) {
    std::size_t cost = 0;
    for (int attempt = 0; attempt < 16 && cost == 0; ++attempt) {
      cost = exec.full_cost(sample_query(corpus, rng));
    }
    QES_ASSERT(cost > 0);
    Job j;
    j.id = next_id++;
    j.release = t;
    j.deadline = t + deadline_ms;
    j.demand = static_cast<double>(cost) * profile.units_per_posting;
    jobs.push_back(j);
    t += rng.exponential(rate_per_second / 1000.0);
  }
  return jobs;
}

}  // namespace qes::search
