// Impact-ordered inverted index.
//
// Each term's posting list stores (doc, score-impact) pairs sorted by
// DESCENDING impact, the layout early-termination engines use: scanning
// a prefix of each list already surfaces the highest-scoring documents,
// so result quality is a concave function of postings processed — the
// application-level origin of the paper's quality curves.
#pragma once

#include <vector>

#include "search/corpus.hpp"

namespace qes::search {

struct Posting {
  DocId doc = 0;
  float impact = 0.0f;  ///< tf-idf score contribution of this term in doc
};

class InvertedIndex {
 public:
  explicit InvertedIndex(const Corpus& corpus);

  [[nodiscard]] std::size_t vocabulary() const { return postings_.size(); }
  [[nodiscard]] std::size_t num_documents() const { return num_docs_; }

  /// Posting list for a term, impact-descending. Empty for unseen terms.
  [[nodiscard]] const std::vector<Posting>& postings(TermId term) const;

  /// Total postings across all lists (index size).
  [[nodiscard]] std::size_t total_postings() const { return total_; }

  /// idf weight used for impacts (available for tests/diagnostics).
  [[nodiscard]] double idf(TermId term) const;

 private:
  std::vector<std::vector<Posting>> postings_;
  std::vector<std::uint32_t> doc_freq_;
  std::size_t num_docs_ = 0;
  std::size_t total_ = 0;
};

}  // namespace qes::search
