// Synthetic document corpus for the web-search substrate.
//
// The paper's driving workload is "requests from web search engine"; to
// ground the best-effort model in an actual application, this module
// generates a deterministic corpus with the two statistical properties
// that make search best-effort-friendly:
//   - Zipfian term popularity (a few terms occur in many documents), and
//   - skewed within-document term frequencies,
// so that impact-ordered query evaluation (search/executor) has steeply
// diminishing returns — the origin of the concave quality function.
#pragma once

#include <cstdint>
#include <vector>

#include "core/prng.hpp"

namespace qes::search {

using TermId = std::uint32_t;
using DocId = std::uint32_t;

struct CorpusConfig {
  std::uint32_t num_documents = 20'000;
  std::uint32_t vocabulary = 5'000;
  /// Zipf exponent of term popularity (~1 for natural text).
  double zipf_s = 1.1;
  /// Document length range (number of term occurrences).
  std::uint32_t min_terms = 40;
  std::uint32_t max_terms = 400;
  std::uint64_t seed = 2013;
};

/// One document as a bag of (term, frequency) pairs.
struct Document {
  DocId id = 0;
  std::vector<std::pair<TermId, std::uint32_t>> terms;  // sorted by term
  std::uint32_t length = 0;  ///< total term occurrences
};

class Corpus {
 public:
  explicit Corpus(const CorpusConfig& config);

  [[nodiscard]] const CorpusConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t size() const { return docs_.size(); }
  [[nodiscard]] const Document& doc(DocId id) const;
  [[nodiscard]] const std::vector<Document>& documents() const {
    return docs_;
  }

  /// Samples a term according to the Zipfian popularity (used both for
  /// document generation and query generation, so queries hit real
  /// content).
  [[nodiscard]] TermId sample_term(Xoshiro256& rng) const;

 private:
  CorpusConfig cfg_;
  std::vector<Document> docs_;
  std::vector<double> zipf_cdf_;  // cumulative popularity per term
};

}  // namespace qes::search
