#include "search/corpus.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/assert.hpp"

namespace qes::search {

Corpus::Corpus(const CorpusConfig& config) : cfg_(config) {
  QES_ASSERT(cfg_.num_documents > 0 && cfg_.vocabulary > 0);
  QES_ASSERT(cfg_.min_terms > 0 && cfg_.min_terms <= cfg_.max_terms);

  // Zipfian popularity: p(t) ~ 1 / (t+1)^s, as a CDF for sampling.
  zipf_cdf_.resize(cfg_.vocabulary);
  double acc = 0.0;
  for (std::uint32_t t = 0; t < cfg_.vocabulary; ++t) {
    acc += 1.0 / std::pow(static_cast<double>(t + 1), cfg_.zipf_s);
    zipf_cdf_[t] = acc;
  }
  for (double& v : zipf_cdf_) v /= acc;

  Xoshiro256 rng(cfg_.seed);
  docs_.reserve(cfg_.num_documents);
  for (DocId d = 0; d < cfg_.num_documents; ++d) {
    const auto len = static_cast<std::uint32_t>(
        rng.uniform(static_cast<double>(cfg_.min_terms),
                    static_cast<double>(cfg_.max_terms) + 1.0));
    std::map<TermId, std::uint32_t> bag;
    for (std::uint32_t k = 0; k < len; ++k) {
      ++bag[sample_term(rng)];
    }
    Document doc;
    doc.id = d;
    doc.length = len;
    doc.terms.assign(bag.begin(), bag.end());
    docs_.push_back(std::move(doc));
  }
}

const Document& Corpus::doc(DocId id) const {
  QES_ASSERT(id < docs_.size());
  return docs_[id];
}

TermId Corpus::sample_term(Xoshiro256& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  return static_cast<TermId>(it - zipf_cdf_.begin());
}

}  // namespace qes::search
