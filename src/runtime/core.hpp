// RuntimeCore: the deterministic heart of the qesd serving runtime.
//
// The live runtime must make the SAME decisions as the discrete-event
// simulator (DES = C-RR + WF + Online-QE on continuous C-DVFS, paper
// §IV-D) — that is what makes it trustworthy. To get there, everything
// that affects quality or energy lives in this single-threaded state
// machine: job admission, plan integration (volume + energy accounting),
// deadline expiry, the §IV-E triggers, and the replanning pipeline. The
// threaded server (server.hpp) drives it under one mutex from wall-clock
// time; the conformance harness (conformance.hpp) drives it in lockstep
// with the exact event sequence of sim::Engine and checks that quality
// and energy agree. Worker threads only *pace* execution against the
// published plans — they never touch this state, so the live and
// simulated runs share every arithmetic operation.
//
// Supported policy surface: the paper's default DES on homogeneous
// continuous C-DVFS cores (no discrete levels, ablations, or service
// classes — the simulator remains the tool for those studies).
#pragma once

#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "core/job.hpp"
#include "core/power.hpp"
#include "core/quality.hpp"
#include "core/schedule.hpp"
#include "policy/crr.hpp"
#include "policy/des_planner.hpp"
#include "policy/world_view.hpp"
#include "sim/metrics.hpp"

namespace qes::obs {
class Registry;
class TraceRing;
}  // namespace qes::obs

namespace qes::runtime {

struct RuntimeConfig {
  int cores = 16;
  /// Total dynamic power budget H in watts (paper §V-B: 320 W).
  Watts power_budget = 320.0;
  PowerModel power_model = default_power_model();
  QualityFunction quality = QualityFunction::exponential(0.003);
  /// Grouped-scheduling triggers (§IV-E); semantics match EngineConfig.
  Time quantum_ms = 500.0;
  int counter_trigger = 8;
  bool idle_trigger = true;
  /// Hardware cap on any core's speed (GHz).
  Speed max_core_speed = std::numeric_limits<double>::infinity();
  /// Optional observability hooks (not owned). When set, finish()
  /// mirrors the run aggregates into `registry` under the "qesd" prefix,
  /// replan() records per-phase wall time into
  /// qes_replan_phase_ms{plane="runtime"}, and lifecycle events are
  /// pushed into `trace` (see src/obs/).
  obs::Registry* registry = nullptr;
  obs::TraceRing* trace = nullptr;
  /// When set, finalize() appends a JobCompletion per finalized job
  /// (abandoned jobs excluded) for drain_completions() — the hook the
  /// wire ingress uses to send REPLY frames. Off by default: lockstep
  /// conformance and the plain producer path never pay for it.
  bool record_completions = false;
};

/// One finalized job's outcome (only recorded when record_completions
/// is set). latency_ms is virtual time from release to finalization.
struct JobCompletion {
  JobId id = 0;
  bool satisfied = false;
  double quality = 0.0;
  Time latency_ms = 0.0;
};

/// Runtime-side view of one admitted job (mirrors sim::JobState).
struct JobRecord {
  Job job;
  enum class Phase { Waiting, Assigned, Finalized } phase = Phase::Waiting;
  int core = -1;
  Work processed = 0.0;
  double quality = 0.0;
  bool satisfied = false;
  /// Extracted by abandon_unfinalized() (node kill): finalized for state
  /// bookkeeping but excluded from the run statistics — the job is
  /// re-dispatched and accounted at whichever node serves it.
  bool abandoned = false;
  Time finalized_at = -1.0;
};

/// Unserved remainder of a job pulled off a killed node, ready to be
/// re-submitted elsewhere (the new node stamps fresh release/deadline).
struct AbandonedJob {
  Work remaining = 0.0;
  bool partial_ok = true;
  double weight = 1.0;
};

/// Aggregate counters cheap enough to copy under a lock every metrics
/// tick. planned_power is the instantaneous dynamic power implied by the
/// installed plans at the current virtual time; WF guarantees it never
/// exceeds the budget H.
struct CoreCounters {
  Time now = 0.0;
  std::size_t admitted = 0;
  std::size_t waiting = 0;
  std::size_t assigned = 0;
  std::size_t finalized = 0;
  std::size_t satisfied = 0;
  double quality_sum = 0.0;
  Joules dynamic_energy = 0.0;
  Watts planned_power = 0.0;
  Watts peak_power = 0.0;
  std::size_t replans = 0;
};

class RuntimeCore {
 public:
  explicit RuntimeCore(RuntimeConfig config);

  // ---- admission ----

  /// Admits a job. Ids must be dense 1..n in admission order and
  /// (release, deadline) must be agreeable with previously admitted jobs
  /// — both hold automatically when the server stamps release/deadline
  /// at admission time.
  void submit(const Job& job);

  // ---- time (every mutation below expects monotone timestamps) ----

  /// Integrates all core plans from the current time to `t`, charging
  /// processed volume and dynamic energy segment by segment (power is
  /// constant between consecutive plan boundaries), finalizing jobs whose
  /// segments complete, and asserting the instantaneous power budget.
  /// Then finalizes jobs whose deadline has passed.
  void advance(Time t);

  /// Evaluates the §IV-E triggers at the current time: quantum (advances
  /// the quantum phase), counter (waiting >= threshold), and idle core.
  /// Returns true when a replan is due.
  [[nodiscard]] bool check_triggers();

  /// Runs the DES pipeline at the current time: C-RR distribution,
  /// budget-free per-core YDS, WF power split, and budget-bounded
  /// Online-QE planning with the rigid-job discard loop (§V-D).
  void replan();

  /// Final accounting: integrates idle time out to `end_time` (the last
  /// deadline) and returns the run statistics, matching sim::Engine's
  /// RunStats field for field. All jobs must be finalized. Abandoned jobs
  /// (node kill) are excluded — they are accounted where they re-land.
  [[nodiscard]] RunStats finish(Time end_time);

  // ---- cluster hooks (src/cluster/) ----

  /// Replaces the power budget H (watts). Takes effect at the next
  /// replan(); callers that lower the budget must replan before the next
  /// advance() so installed plans never exceed the new bound.
  void set_power_budget(Watts budget);

  /// The budget-free power request: total dynamic power the per-core YDS
  /// schedules would draw right now if H were unlimited (DES step 2's
  /// `total_request`). This is the node's load signal to the cluster
  /// budget broker — when the allocated budget covers it, the node's
  /// plans are identical to the unconstrained ones.
  [[nodiscard]] Watts power_request() const;

  /// Extracts every unfinalized job for re-dispatch after a node kill:
  /// jobs within completion tolerance are finalized normally (their
  /// quality is kept here); the rest are marked abandoned — finalized for
  /// bookkeeping, excluded from finish() — and returned with their
  /// remaining demand. Installed plans are cleared.
  [[nodiscard]] std::vector<AbandonedJob> abandon_unfinalized();

  // ---- observers ----

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] const RuntimeConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t admitted() const { return jobs_.size(); }
  [[nodiscard]] bool all_finalized() const {
    return finalized_count_ == jobs_.size();
  }
  [[nodiscard]] const JobRecord& job(JobId id) const;
  [[nodiscard]] const Schedule& plan(int core) const;

  /// Earliest deadline among admitted, unfinalized jobs (infinity when
  /// none) — the next expiry event.
  [[nodiscard]] Time earliest_live_deadline() const;

  /// Next plan-segment boundary across cores (infinity when all idle).
  [[nodiscard]] Time next_plan_event() const;

  /// Next quantum-trigger firing time (infinity when disabled).
  [[nodiscard]] Time next_quantum() const { return next_quantum_; }

  /// Deadline (== finalization bound) of the last admitted job, or the
  /// current time when nothing was admitted. Used as finish()'s horizon.
  [[nodiscard]] Time horizon() const;

  [[nodiscard]] CoreCounters counters() const;

  /// Moves every completion recorded since the last call into `out`
  /// (appending, finalization order). Empty unless record_completions.
  void drain_completions(std::vector<JobCompletion>& out);

 private:
  struct CoreState {
    Schedule plan;
    std::size_t next_seg = 0;
    std::deque<JobId> queue;  // live assigned jobs, arrival order
  };

  JobRecord& state(JobId id);
  void assign_to_core(JobId id, int core);
  void finalize(JobId id);
  void expire_due_jobs();
  void set_core_plan(int core, Schedule plan);
  /// Reduces the live per-core queues to the planner's WorldView
  /// (refilling view_'s buffers in place — no steady-state allocation).
  void build_view() const;
  [[nodiscard]] bool core_idle(int core) const;
  [[nodiscard]] Watts planned_power_now() const;

  RuntimeConfig cfg_;
  CumulativeRoundRobin crr_;
  // The shared DES planner kernel (src/policy/), heap-held so
  // RuntimeCore stays movable (the cluster lockstep keeps cores in a
  // vector); the planner's phase profiler pins a mutex and its histogram
  // cache. All plan construction — budget-free YDS, WF escalation,
  // budget-bounded Online-QE, the §V-D rigid loop — happens in there;
  // this class only owns state and applies outcomes.
  std::unique_ptr<policy::DesPlanner> planner_;
  // Scratch snapshot + outcome, reused across replans. Mutable because
  // power_request() (a const observer in the cluster-broker protocol)
  // refills the view to compute the budget-free demand signal.
  mutable policy::WorldView view_;
  policy::PlanOutcome plan_out_;
  std::vector<JobCompletion> completions_;  // pending drain_completions()
  std::vector<JobRecord> jobs_;  // index = id - 1
  std::vector<CoreState> cores_;
  std::vector<JobId> waiting_;   // arrived, unassigned, arrival order
  std::size_t first_live_ = 0;
  std::size_t finalized_count_ = 0;
  std::size_t satisfied_count_ = 0;
  double quality_sum_ = 0.0;
  Time now_ = 0.0;
  Time next_quantum_;
  Joules dynamic_energy_ = 0.0;
  Watts peak_power_ = 0.0;
  std::size_t replans_ = 0;
};

}  // namespace qes::runtime
