// qesd server: the concurrent shell around RuntimeCore.
//
// Thread/ownership model (see src/runtime/README.md for the full story):
//
//   producers (N)  --Request-->  BoundedMpmcQueue (admission, bounded =
//                                backpressure; failed pushes are "shed")
//   trigger (1)    every tick: drains admission, advances RuntimeCore to
//                  the current virtual time, evaluates the paper's
//                  triggers, replans, and publishes per-core plans as
//                  immutable shared_ptr snapshots swapped under a
//                  per-core mutex held for nanoseconds
//   workers (m)    one per core: grab the published plan snapshot,
//                  sleep/yield through each segment at the time-dilated
//                  virtual speed (a worker at speed s advances its job at
//                  s * 1000 units per wall second / time_scale), poke the
//                  trigger at segment boundaries and when their plan runs
//                  dry (the idle-core trigger)
//   metrics (1)    periodic JSON snapshots of the live counters
//
// All model state (RuntimeCore) is guarded by one mutex, mutated only by
// the trigger thread and read by the metrics thread; workers touch
// nothing but the immutable plan snapshots and per-worker atomics. That
// split keeps the hot paths lock-free, makes the whole server trivially
// TSan-clean, and — because every quality/energy number is computed by
// the same deterministic RuntimeCore the conformance harness drives in
// lockstep against sim::Engine — keeps the live runtime's accounting
// anchored to the simulator.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/ingress.hpp"
#include "obs/http_exporter.hpp"
#include "obs/registry.hpp"
#include "runtime/clock.hpp"
#include "runtime/core.hpp"
#include "runtime/mpmc_queue.hpp"

namespace qes::runtime {

/// A client request; release/deadline/id are stamped at admission.
struct Request {
  Work demand = 0.0;
  bool partial_ok = true;
  double weight = 1.0;
  /// Relative deadline override (virtual ms); 0 uses the server default.
  /// Stamped deadlines are clamped to stay agreeable (never earlier than
  /// an already-admitted job's), matching the paper's job model.
  Time deadline_ms = 0.0;
  /// Opaque completion routing tag (the wire ingress token); 0 = none.
  std::uint64_t tag = 0;
};

struct ServerConfig {
  RuntimeConfig model;
  /// Virtual milliseconds per wall millisecond (>1 compresses wall time).
  double time_scale = 1.0;
  /// Relative deadline stamped at admission (virtual ms).
  Time deadline_ms = 150.0;
  /// Admission queue bound; pushes beyond it block, then shed.
  std::size_t admission_capacity = 4096;
  /// Trigger-thread cadence (wall ms).
  double tick_wall_ms = 2.0;
  /// Metrics snapshot cadence (wall ms).
  double metrics_interval_ms = 1000.0;
  /// Worker pacing granularity (wall ms).
  double worker_slice_wall_ms = 1.0;
  /// HTTP scrape endpoint: -1 disables it, 0 binds an ephemeral port
  /// (read back via Server::http_port()), anything else binds that port.
  /// Serves /metrics, /metrics.json, /healthz, and /tracez on 127.0.0.1
  /// from start() until the final statistics exist.
  int http_port = -1;
  /// Wire-level request plane (src/net/): -1 disables it, 0 binds an
  /// ephemeral port (read back via Server::listen_port()), anything else
  /// binds that port. Jobs submitted over the wire get REPLY frames on
  /// finalization; admission overload sheds on the wire.
  int listen_port = -1;
  /// Ingress accept-sharding worker threads (listen_port >= 0 only).
  int ingress_workers = 2;
  /// Per-ingress-worker connection cap.
  int ingress_max_connections = 4096;
};

/// One periodic observation of the live system.
struct MetricsSnapshot {
  Time t_virtual_ms = 0.0;
  std::size_t admitted = 0;
  std::size_t waiting = 0;
  std::size_t assigned = 0;
  std::size_t finalized = 0;
  std::size_t satisfied = 0;
  std::size_t shed = 0;
  double quality_sum = 0.0;
  Joules dynamic_energy_j = 0.0;
  Watts planned_power_w = 0.0;
  Watts peak_power_w = 0.0;
  std::size_t replans = 0;
  int busy_workers = 0;

  [[nodiscard]] std::string to_json() const;
};

/// Per-worker execution counters (written only by the owning worker
/// thread; read after the workers have been joined).
struct WorkerStats {
  std::uint64_t slices = 0;
  Time busy_virtual_ms = 0.0;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Launches the worker, trigger, and metrics threads.
  void start();

  /// Producer-facing admission. Blocks up to `timeout` for queue space;
  /// returns false (and counts the request as shed) when the queue stays
  /// full or the server is draining.
  bool submit(const Request& request, std::chrono::milliseconds timeout);

  /// Closes admission, serves every admitted request to finalization
  /// (the last deadline passes at most deadline_ms virtual ms after the
  /// final admission), stops all threads, and returns the final run
  /// statistics. Idempotent.
  RunStats drain_and_stop();

  // ---- cluster hooks (src/cluster/) ----

  /// Everything the cluster must redistribute after a kill(): admitted
  /// jobs cut short (with their remaining demand) and queued requests
  /// that were never admitted, plus this node's final accounting.
  struct KillReport {
    std::vector<AbandonedJob> abandoned;
    std::vector<Request> pending;
    RunStats stats;
  };

  /// Replaces the node's power budget H (watts) and atomically replans
  /// and republishes under the model lock, so the installed plans never
  /// exceed the new bound. No-op once the final statistics exist.
  void set_power_budget(Watts budget);

  /// Current node budget H (watts).
  [[nodiscard]] Watts power_budget() const;

  /// The node's load signal for the cluster budget broker:
  /// RuntimeCore's budget-free power request (see core.hpp).
  [[nodiscard]] Watts power_request() const;

  /// Fault injection: hard-stops the node NOW. Admission closes, every
  /// thread stops, unfinished admitted jobs are abandoned, and the
  /// node's final statistics cover only the work finalized here (a later
  /// drain_and_stop() returns the same stats). Call once, and never
  /// concurrently with drain_and_stop().
  [[nodiscard]] KillReport kill();

  [[nodiscard]] const VirtualClock& clock() const { return clock_; }
  [[nodiscard]] Time now() const { return clock_.now(); }
  [[nodiscard]] std::size_t shed() const { return shed_.load(); }

  /// Live counters (thread-safe at any point in the server's life).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Collected periodic snapshots / per-worker stats; call after
  /// drain_and_stop().
  [[nodiscard]] const std::vector<MetricsSnapshot>& snapshots() const;
  [[nodiscard]] const std::vector<WorkerStats>& worker_stats() const;

  /// The server-owned metrics registry ("qesd" prefix): live server
  /// instruments (queue depth, shed, replan-publish latency, power and
  /// energy gauges) plus RuntimeCore's end-of-run aggregates. Safe to
  /// render (to_prometheus()/to_json()) from any thread at any time.
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }
  [[nodiscard]] obs::Registry& registry() { return registry_; }

  /// The bound scrape port, or -1 when the exporter is disabled. Valid
  /// after start().
  [[nodiscard]] int http_port() const;

  /// The bound wire-ingress port, or -1 when disabled. Valid after
  /// start().
  [[nodiscard]] int listen_port() const;

  /// The wire ingress (nullptr when disabled); exposed for tests that
  /// reconcile wire-level counters against the run statistics.
  [[nodiscard]] const net::Ingress* ingress() const { return ingress_.get(); }

 private:
  friend class ServerIngressSink;
  struct PlanSnapshot {
    Schedule plan;
    std::uint64_t gen = 0;
  };
  // One published plan per core, swapped under a per-core mutex. The
  // mutex guards only the shared_ptr swap (the snapshot itself is
  // immutable), so it is held for nanoseconds by one worker and the
  // trigger thread; std::atomic<shared_ptr> would do the same job but
  // libstdc++ 12's _Sp_atomic trips ThreadSanitizer.
  struct PlanSlot {
    mutable std::mutex mu;
    std::shared_ptr<const PlanSnapshot> snap;
  };

  void trigger_loop();
  void worker_loop(int core);
  void metrics_loop();
  void process_tick();
  /// IngressSink admission: batched try-push with exact shed accounting.
  std::size_t ingress_admit(const net::IngressRequest* reqs,
                            std::size_t count);
  /// Forwards pending finalizations to the wire (trigger thread only).
  void forward_completions();
  void publish_plans();  // requires mu_
  void poke_trigger();
  void take_snapshot();
  /// Waits until `tp`, a plan generation other than `seen_gen`, or stop.
  void wait_wall(VirtualClock::WallClock::time_point tp,
                 std::uint64_t seen_gen);

  ServerConfig cfg_;
  VirtualClock clock_;
  BoundedMpmcQueue<Request> admission_;

  // Declared before core_: the constructor points cfg_.model.registry at
  // it so RuntimeCore::finish() mirrors its aggregates here.
  obs::Registry registry_;

  mutable std::mutex mu_;  // guards core_, tags_, last_deadline_
  RuntimeCore core_;
  /// Completion routing tag per admitted job (index = id - 1); 0 for
  /// in-process submissions.
  std::vector<std::uint64_t> tags_;
  /// Latest stamped absolute deadline — per-request deadlines are
  /// clamped to keep admissions agreeable (core asserts it).
  Time last_deadline_ = 0.0;
  // Scratch for forward_completions (trigger thread only).
  std::vector<JobCompletion> completions_scratch_;
  std::vector<net::Completion> wire_completions_;
  // finish() records into the registry, so it must run exactly once;
  // drain_and_stop() caches its result for repeat callers.
  bool final_stats_valid_ = false;
  RunStats final_stats_;

  std::vector<PlanSlot> plans_;
  std::atomic<std::uint64_t> plan_gen_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> shed_{0};

  std::mutex wake_mu_;  // workers' sleep/wake
  std::condition_variable wake_cv_;
  std::mutex trig_mu_;  // trigger thread's tick/poke
  std::condition_variable trig_cv_;
  bool poked_ = false;

  std::vector<std::atomic<JobId>> current_job_;
  std::vector<WorkerStats> worker_stats_;

  mutable std::mutex snap_mu_;  // guards snapshots_
  std::vector<MetricsSnapshot> snapshots_;

  std::vector<std::thread> threads_;
  // Scrape endpoint (nullptr when cfg_.http_port < 0). Its handlers read
  // only registry_, the trace ring, and snapshot() — all thread-safe —
  // so it stays answerable while the server drains; drain_and_stop() and
  // kill() stop it once the final statistics exist.
  std::unique_ptr<obs::HttpExporter> exporter_;
  // Wire request plane (nullptr when cfg_.listen_port < 0). Stays up
  // through the drain so buffered REPLY frames reach their clients;
  // stopped after the final completion flush. kill() drops undelivered
  // completions — replies die with the node.
  std::unique_ptr<net::IngressSink> ingress_sink_;
  std::unique_ptr<net::Ingress> ingress_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace qes::runtime
