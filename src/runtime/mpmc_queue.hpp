// Bounded multi-producer/multi-consumer queue for request admission.
//
// Producers block (with an optional timeout) when the queue is full —
// that is the runtime's backpressure signal — and the consumer side can
// drain everything in one lock acquisition, which is what the trigger
// thread does once per tick. close() wakes every waiter; pushes after
// close fail, pops keep draining what is already buffered.
//
// A mutex + two condition variables is deliberately chosen over a
// lock-free ring: admission is touched a few thousand times per second
// at most, far below the contention level where lock-free buys anything,
// and the simple version is easy to prove TSan-clean.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "core/assert.hpp"

namespace qes::runtime {

template <typename T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity) : capacity_(capacity) {
    QES_ASSERT(capacity > 0);
  }

  /// Blocks until there is room, the timeout expires, or the queue is
  /// closed. Returns false (dropping `item`) in the latter two cases.
  template <typename Rep, typename Period>
  bool push(T item, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_full_.wait_for(lock, timeout, [this] {
          return closed_ || items_.size() < capacity_;
        })) {
      return false;
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking batched push: one lock acquisition for up to `count`
  /// items. Accepts the PREFIX that fits under the capacity and returns
  /// its length k — items [k, count) were rejected (queue full or
  /// closed). This is the ingress admission hot path: one epoll sweep's
  /// worth of requests costs one mutex round-trip instead of `count`.
  std::size_t try_push_batch(const T* items, std::size_t count) {
    std::size_t accepted = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!closed_) {
        const std::size_t room = capacity_ - items_.size();
        accepted = std::min(room, count);
        for (std::size_t i = 0; i < accepted; ++i) {
          items_.push_back(items[i]);
        }
      }
    }
    // One item can satisfy only one waiter, but a batch may unblock
    // several consumers parked in pop().
    if (accepted == 1) {
      not_empty_.notify_one();
    } else if (accepted > 1) {
      not_empty_.notify_all();
    }
    return accepted;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (items_.empty()) return out;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Moves every buffered item into `out` (appending) in FIFO order.
  void drain(std::vector<T>& out) {
    bool woke_producers = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      woke_producers = !items_.empty();
      while (!items_.empty()) {
        out.push_back(std::move(items_.front()));
        items_.pop_front();
      }
    }
    if (woke_producers) not_full_.notify_all();
  }

  /// Fails all pending and future pushes; buffered items stay poppable.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace qes::runtime
