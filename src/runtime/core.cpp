#include "runtime/core.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/assert.hpp"
#include "obs/run_accumulator.hpp"
#include "obs/trace.hpp"

namespace qes::runtime {

RuntimeCore::RuntimeCore(RuntimeConfig config)
    : cfg_(std::move(config)),
      crr_(static_cast<std::size_t>(std::max(cfg_.cores, 1))),
      planner_(std::make_unique<policy::DesPlanner>(cfg_.registry,
                                                    "runtime")) {
  QES_ASSERT(cfg_.cores > 0 && cfg_.power_budget > 0.0);
  if (cfg_.registry != nullptr) {
    // Pre-register the end-of-run schema (jobs_total by outcome, quality
    // and latency instruments) so a live /metrics scrape sees the full
    // family set from the first request; finish() finds and increments
    // these same instruments.
    obs::RunAccumulator schema(cfg_.registry, "qesd");
  }
  cores_.resize(static_cast<std::size_t>(cfg_.cores));
  next_quantum_ = cfg_.quantum_ms > 0.0
                      ? cfg_.quantum_ms
                      : std::numeric_limits<double>::infinity();
}

JobRecord& RuntimeCore::state(JobId id) {
  QES_ASSERT(id >= 1 && id <= jobs_.size());
  return jobs_[id - 1];
}

const JobRecord& RuntimeCore::job(JobId id) const {
  QES_ASSERT(id >= 1 && id <= jobs_.size());
  return jobs_[id - 1];
}

const Schedule& RuntimeCore::plan(int core) const {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  return cores_[static_cast<std::size_t>(core)].plan;
}

void RuntimeCore::submit(const Job& job) {
  QES_ASSERT_MSG(job.id == jobs_.size() + 1,
                 "jobs must carry dense ids 1..n in admission order");
  QES_ASSERT(job.demand > 0.0 && job.deadline > job.release);
  QES_ASSERT_MSG(job.release >= now_ - kPlanSlackEps,
                 "admission must not travel back in time");
  if (!jobs_.empty()) {
    const Job& prev = jobs_.back().job;
    QES_ASSERT_MSG(job.release + kTimeEps >= prev.release &&
                       job.deadline + kTimeEps >= prev.deadline,
                   "admitted jobs must keep agreeable deadlines");
  }
  jobs_.push_back(JobRecord{.job = job});
  waiting_.push_back(job.id);
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Release,
                      .t = job.release,
                      .job = job.id});
  }
}

bool RuntimeCore::core_idle(int core) const {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  const CoreState& c = cores_[static_cast<std::size_t>(core)];
  return c.next_seg >= c.plan.size();
}

void RuntimeCore::assign_to_core(JobId id, int core) {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  JobRecord& st = state(id);
  QES_ASSERT_MSG(st.phase == JobRecord::Phase::Waiting,
                 "only waiting jobs can be assigned");
  auto it = std::find(waiting_.begin(), waiting_.end(), id);
  QES_ASSERT(it != waiting_.end());
  waiting_.erase(it);
  st.phase = JobRecord::Phase::Assigned;
  st.core = core;
  auto& q = cores_[static_cast<std::size_t>(core)].queue;
  q.insert(std::lower_bound(q.begin(), q.end(), id), id);
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Assign,
                      .t = now_,
                      .job = id,
                      .core = core});
  }
}

void RuntimeCore::finalize(JobId id) {
  JobRecord& st = state(id);
  QES_ASSERT(st.phase != JobRecord::Phase::Finalized);
  if (st.phase == JobRecord::Phase::Waiting) {
    auto it = std::find(waiting_.begin(), waiting_.end(), id);
    if (it != waiting_.end()) waiting_.erase(it);
  } else {
    auto& q = cores_[static_cast<std::size_t>(st.core)].queue;
    auto it = std::find(q.begin(), q.end(), id);
    QES_ASSERT(it != q.end());
    q.erase(it);
  }
  st.processed = std::min(st.processed, st.job.demand);
  st.satisfied =
      st.processed + kCompletionRelEps * std::max(1.0, st.job.demand) >=
      st.job.demand;
  if (!st.job.partial_ok) {
    st.quality =
        st.satisfied ? st.job.weight * cfg_.quality(st.job.demand) : 0.0;
  } else {
    st.quality = st.job.weight * cfg_.quality(st.processed);
  }
  st.phase = JobRecord::Phase::Finalized;
  st.finalized_at = now_;
  ++finalized_count_;
  if (st.satisfied) ++satisfied_count_;
  quality_sum_ += st.quality;
  if (cfg_.record_completions) {
    completions_.push_back(
        {id, st.satisfied, st.quality, now_ - st.job.release});
  }
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Finalize,
                      .t = now_,
                      .job = id,
                      .value = st.quality,
                      .satisfied = st.satisfied});
  }
}

void RuntimeCore::expire_due_jobs() {
  while (first_live_ < jobs_.size()) {
    JobRecord& st = jobs_[first_live_];
    if (st.phase == JobRecord::Phase::Finalized) {
      ++first_live_;
      continue;
    }
    if (st.job.deadline <= now_ + kTimeEps) {
      finalize(st.job.id);
      ++first_live_;
      continue;
    }
    break;
  }
}

void RuntimeCore::set_core_plan(int core, Schedule plan) {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  CoreState& c = cores_[static_cast<std::size_t>(core)];
  plan.check_well_formed();
  for (const Segment& s : plan.segments()) {
    QES_ASSERT_MSG(s.t0 >= now_ - kPlanSlackEps,
                   "plan must start at or after now");
    const JobRecord& st = job(s.job);
    QES_ASSERT_MSG(st.phase == JobRecord::Phase::Assigned && st.core == core,
                   "plan segment must reference a live job on this core");
    QES_ASSERT_MSG(s.t1 <= st.job.deadline + kPlanSlackEps,
                   "plan segment must end by the job's deadline");
    QES_ASSERT_MSG(s.speed <= cfg_.max_core_speed + 1e-6,
                   "plan speed exceeds the core's hardware cap");
  }
  c.plan = std::move(plan);
  c.next_seg = 0;
}

void RuntimeCore::advance(Time target) {
  QES_ASSERT(target >= now_ - kTimeEps);
  while (true) {
    // Sub-step end: the earliest segment boundary across cores, capped at
    // the target. Power is constant within the sub-step.
    Time step_end = target;
    for (const CoreState& c : cores_) {
      if (c.next_seg >= c.plan.size()) continue;
      const Segment& s = c.plan[c.next_seg];
      step_end = std::min(step_end, s.t0 > now_ + kTimeEps ? s.t0 : s.t1);
    }

    if (step_end > now_ + kTimeEps) {
      const Time dt = step_end - now_;
      Watts total_power = 0.0;
      for (CoreState& c : cores_) {
        const bool active = c.next_seg < c.plan.size() &&
                            c.plan[c.next_seg].t0 <= now_ + kTimeEps;
        if (!active) continue;  // DVFS-gated cores draw no dynamic power
        const Segment& s = c.plan[c.next_seg];
        total_power += cfg_.power_model.dynamic_power(s.speed);
        state(s.job).processed += s.speed * dt;
        if (cfg_.trace != nullptr) {
          cfg_.trace->push(
              {.kind = obs::TraceEvent::Kind::Exec,
               .t = now_,
               .job = s.job,
               .core = static_cast<int>(&c - cores_.data()),
               .t0 = now_,
               .t1 = step_end,
               .speed = s.speed});
        }
      }
      QES_ASSERT_MSG(total_power <= cfg_.power_budget * (1.0 + 1e-6) + 1e-6,
                     "instantaneous power exceeded the budget");
      dynamic_energy_ += joules(total_power, dt);
      peak_power_ = std::max(peak_power_, total_power);
      now_ = step_end;
    }

    // Process segment completions at now_.
    for (CoreState& c : cores_) {
      while (c.next_seg < c.plan.size() &&
             c.plan[c.next_seg].t1 <= now_ + kTimeEps) {
        const Segment done = c.plan[c.next_seg];
        ++c.next_seg;
        JobRecord& st = state(done.job);
        if (st.phase == JobRecord::Phase::Finalized) continue;
        const bool complete =
            st.processed + kCompletionRelEps * std::max(1.0, st.job.demand) >=
            st.job.demand;
        bool more_planned = false;
        for (std::size_t k = c.next_seg; k < c.plan.size(); ++k) {
          if (c.plan[k].job == done.job) {
            more_planned = true;
            break;
          }
        }
        if (complete) {
          finalize(done.job);
        } else if (!more_planned) {
          // The core moves past a partially executed job: discarded due
          // to partial evaluation (paper §IV-B).
          finalize(done.job);
        }
      }
    }

    if (now_ >= target - kTimeEps) break;
  }
  now_ = std::max(now_, target);
  expire_due_jobs();
}

bool RuntimeCore::check_triggers() {
  bool replan_due = false;
  if (cfg_.quantum_ms > 0.0 && now_ >= next_quantum_ - kTimeEps) {
    while (next_quantum_ <= now_ + kTimeEps) next_quantum_ += cfg_.quantum_ms;
    replan_due = true;
  }
  if (cfg_.counter_trigger > 0 &&
      waiting_.size() >= static_cast<std::size_t>(cfg_.counter_trigger)) {
    replan_due = true;
  }
  if (cfg_.idle_trigger && !waiting_.empty()) {
    for (int i = 0; i < cfg_.cores; ++i) {
      if (core_idle(i)) {
        replan_due = true;
        break;
      }
    }
  }
  return replan_due;
}

void RuntimeCore::build_view() const {
  view_.reset(now_, cfg_.power_budget, static_cast<std::size_t>(cfg_.cores));
  view_.power_model = &cfg_.power_model;
  view_.quality = &cfg_.quality;
  for (int i = 0; i < cfg_.cores; ++i) {
    policy::CoreView& core = view_.cores[static_cast<std::size_t>(i)];
    core.speed_cap = cfg_.max_core_speed;
    for (JobId id : cores_[static_cast<std::size_t>(i)].queue) {
      const JobRecord& st = job(id);
      QES_ASSERT(st.job.deadline > now_ + kTimeEps);
      core.jobs.push_back(policy::ViewJob{.id = id,
                                          .deadline = st.job.deadline,
                                          .demand = st.job.demand,
                                          .processed = st.processed,
                                          .weight = st.job.weight,
                                          .partial_ok = st.job.partial_ok});
    }
  }
}

Watts RuntimeCore::power_request() const {
  build_view();
  return planner_->total_power_request(view_);
}

void RuntimeCore::set_power_budget(Watts budget) {
  QES_ASSERT_MSG(budget > 0.0, "power budget must be positive");
  cfg_.power_budget = budget;
}

std::vector<AbandonedJob> RuntimeCore::abandon_unfinalized() {
  std::vector<AbandonedJob> out;
  for (std::size_t k = first_live_; k < jobs_.size(); ++k) {
    JobRecord& st = jobs_[k];
    if (st.phase == JobRecord::Phase::Finalized) continue;
    const Work remaining = st.job.demand - st.processed;
    if (remaining <= kCompletionRelEps * std::max(1.0, st.job.demand)) {
      // Within completion tolerance: the work was done here, so the
      // quality is credited here instead of shipping a zero-demand stub.
      finalize(st.job.id);
      continue;
    }
    out.push_back(AbandonedJob{.remaining = remaining,
                               .partial_ok = st.job.partial_ok,
                               .weight = st.job.weight});
    if (st.phase == JobRecord::Phase::Waiting) {
      auto it = std::find(waiting_.begin(), waiting_.end(), st.job.id);
      QES_ASSERT(it != waiting_.end());
      waiting_.erase(it);
    } else {
      auto& q = cores_[static_cast<std::size_t>(st.core)].queue;
      auto it = std::find(q.begin(), q.end(), st.job.id);
      QES_ASSERT(it != q.end());
      q.erase(it);
    }
    st.phase = JobRecord::Phase::Finalized;
    st.abandoned = true;
    st.finalized_at = now_;
    ++finalized_count_;
  }
  for (CoreState& c : cores_) {
    c.plan = Schedule{};
    c.next_seg = 0;
  }
  return out;
}

void RuntimeCore::replan() {
  ++replans_;
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Replan,
                      .t = now_,
                      .value = static_cast<double>(waiting_.size())});
  }
  // Step 1: ready-job distribution (C-RR with the persistent cursor).
  {
    auto timer = planner_->profiler().phase("crr");
    const std::vector<JobId> waiting(waiting_.begin(), waiting_.end());
    const auto targets = crr_.distribute(waiting.size());
    for (std::size_t k = 0; k < waiting.size(); ++k) {
      assign_to_core(waiting[k], static_cast<int>(targets[k]));
    }
  }

  // Steps 2-4 (budget-free YDS, WF power split, budget-bounded Online-QE
  // with the §V-D rigid loop) run in the shared planner kernel against
  // the WorldView snapshot; the runtime serves the paper's default
  // model, i.e. PlanOptions{} on continuous C-DVFS.
  build_view();
  planner_->plan_c_dvfs(view_, policy::PlanOptions{}, plan_out_);

  // Apply per core, in order: rigid discards (discovery order), then
  // passed-over drops (queue order), then the plan — the same
  // finalization sequence as the in-place legacy pipeline, keeping the
  // quality accumulation order (and thus conformance) bitwise intact.
  for (int i = 0; i < cfg_.cores; ++i) {
    policy::CoreOutcome& c = plan_out_.cores[static_cast<std::size_t>(i)];
    for (JobId id : c.rigid_discards) finalize(id);
    for (JobId id : c.passed_over) finalize(id);
    set_core_plan(i, std::move(c.plan));
  }
}

Time RuntimeCore::earliest_live_deadline() const {
  for (std::size_t k = first_live_; k < jobs_.size(); ++k) {
    if (jobs_[k].phase != JobRecord::Phase::Finalized) {
      return jobs_[k].job.deadline;
    }
  }
  return std::numeric_limits<double>::infinity();
}

Time RuntimeCore::next_plan_event() const {
  Time t = std::numeric_limits<double>::infinity();
  for (const CoreState& c : cores_) {
    if (c.next_seg >= c.plan.size()) continue;
    const Segment& s = c.plan[c.next_seg];
    t = std::min(t, s.t0 > now_ + kTimeEps ? s.t0 : s.t1);
  }
  return t;
}

Time RuntimeCore::horizon() const {
  return jobs_.empty() ? now_ : jobs_.back().job.deadline;
}

Watts RuntimeCore::planned_power_now() const {
  Watts total = 0.0;
  for (const CoreState& c : cores_) {
    if (c.next_seg >= c.plan.size()) continue;
    const Segment& s = c.plan[c.next_seg];
    if (s.t0 <= now_ + kTimeEps) total += cfg_.power_model.dynamic_power(s.speed);
  }
  return total;
}

CoreCounters RuntimeCore::counters() const {
  CoreCounters c;
  c.now = now_;
  c.admitted = jobs_.size();
  c.waiting = waiting_.size();
  for (const CoreState& cs : cores_) c.assigned += cs.queue.size();
  c.finalized = finalized_count_;
  c.satisfied = satisfied_count_;
  c.quality_sum = quality_sum_;
  c.dynamic_energy = dynamic_energy_;
  c.planned_power = planned_power_now();
  c.peak_power = peak_power_;
  c.replans = replans_;
  return c;
}

void RuntimeCore::drain_completions(std::vector<JobCompletion>& out) {
  out.insert(out.end(), completions_.begin(), completions_.end());
  completions_.clear();
}

RunStats RuntimeCore::finish(Time end_time) {
  QES_ASSERT_MSG(all_finalized(), "finish() requires every job finalized");
  advance(std::max(end_time, now_));

  // Same shared accumulator as sim::Engine (src/obs/run_accumulator.hpp),
  // under the runtime's "qesd" metric prefix.
  obs::RunAccumulator acc(cfg_.registry, "qesd");
  for (const JobRecord& st : jobs_) {
    if (st.abandoned) continue;  // re-dispatched; accounted at the new node
    acc.on_job(st.quality, st.job.weight * cfg_.quality(st.job.demand),
               st.satisfied, st.processed > kTimeEps,
               !st.job.partial_ok && !st.satisfied,
               st.finalized_at - st.job.release);
  }
  return acc.finish(dynamic_energy_,
                    cfg_.cores * cfg_.power_model.b * now_ / 1000.0,
                    peak_power_, now_, replans_);
}

}  // namespace qes::runtime
