#include "runtime/core.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "core/assert.hpp"
#include "multicore/power_waterfill.hpp"
#include "obs/run_accumulator.hpp"
#include "obs/trace.hpp"
#include "sched/online_qe.hpp"
#include "sched/yds.hpp"

namespace qes::runtime {

namespace {

constexpr double kEps = kTimeEps;

}  // namespace

RuntimeCore::RuntimeCore(RuntimeConfig config)
    : cfg_(std::move(config)),
      crr_(static_cast<std::size_t>(std::max(cfg_.cores, 1))),
      profiler_(std::make_unique<obs::PhaseProfiler>(
          cfg_.registry, "qesd_replan_phase_ms",
          "wall time per DES replan phase (ms)")) {
  QES_ASSERT(cfg_.cores > 0 && cfg_.power_budget > 0.0);
  if (cfg_.registry != nullptr) {
    // Pre-register the end-of-run schema (jobs_total by outcome, quality
    // and latency instruments) so a live /metrics scrape sees the full
    // family set from the first request; finish() finds and increments
    // these same instruments.
    obs::RunAccumulator schema(cfg_.registry, "qesd");
  }
  cores_.resize(static_cast<std::size_t>(cfg_.cores));
  next_quantum_ = cfg_.quantum_ms > 0.0
                      ? cfg_.quantum_ms
                      : std::numeric_limits<double>::infinity();
}

JobRecord& RuntimeCore::state(JobId id) {
  QES_ASSERT(id >= 1 && id <= jobs_.size());
  return jobs_[id - 1];
}

const JobRecord& RuntimeCore::job(JobId id) const {
  QES_ASSERT(id >= 1 && id <= jobs_.size());
  return jobs_[id - 1];
}

const Schedule& RuntimeCore::plan(int core) const {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  return cores_[static_cast<std::size_t>(core)].plan;
}

void RuntimeCore::submit(const Job& job) {
  QES_ASSERT_MSG(job.id == jobs_.size() + 1,
                 "jobs must carry dense ids 1..n in admission order");
  QES_ASSERT(job.demand > 0.0 && job.deadline > job.release);
  QES_ASSERT_MSG(job.release >= now_ - 1e-5,
                 "admission must not travel back in time");
  if (!jobs_.empty()) {
    const Job& prev = jobs_.back().job;
    QES_ASSERT_MSG(job.release + kEps >= prev.release &&
                       job.deadline + kEps >= prev.deadline,
                   "admitted jobs must keep agreeable deadlines");
  }
  jobs_.push_back(JobRecord{.job = job});
  waiting_.push_back(job.id);
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Release,
                      .t = job.release,
                      .job = job.id});
  }
}

bool RuntimeCore::core_idle(int core) const {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  const CoreState& c = cores_[static_cast<std::size_t>(core)];
  return c.next_seg >= c.plan.size();
}

void RuntimeCore::assign_to_core(JobId id, int core) {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  JobRecord& st = state(id);
  QES_ASSERT_MSG(st.phase == JobRecord::Phase::Waiting,
                 "only waiting jobs can be assigned");
  auto it = std::find(waiting_.begin(), waiting_.end(), id);
  QES_ASSERT(it != waiting_.end());
  waiting_.erase(it);
  st.phase = JobRecord::Phase::Assigned;
  st.core = core;
  auto& q = cores_[static_cast<std::size_t>(core)].queue;
  q.insert(std::lower_bound(q.begin(), q.end(), id), id);
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Assign,
                      .t = now_,
                      .job = id,
                      .core = core});
  }
}

void RuntimeCore::finalize(JobId id) {
  JobRecord& st = state(id);
  QES_ASSERT(st.phase != JobRecord::Phase::Finalized);
  if (st.phase == JobRecord::Phase::Waiting) {
    auto it = std::find(waiting_.begin(), waiting_.end(), id);
    if (it != waiting_.end()) waiting_.erase(it);
  } else {
    auto& q = cores_[static_cast<std::size_t>(st.core)].queue;
    auto it = std::find(q.begin(), q.end(), id);
    QES_ASSERT(it != q.end());
    q.erase(it);
  }
  st.processed = std::min(st.processed, st.job.demand);
  st.satisfied = st.processed + 1e-6 * std::max(1.0, st.job.demand) >=
                 st.job.demand;
  if (!st.job.partial_ok) {
    st.quality =
        st.satisfied ? st.job.weight * cfg_.quality(st.job.demand) : 0.0;
  } else {
    st.quality = st.job.weight * cfg_.quality(st.processed);
  }
  st.phase = JobRecord::Phase::Finalized;
  st.finalized_at = now_;
  ++finalized_count_;
  if (st.satisfied) ++satisfied_count_;
  quality_sum_ += st.quality;
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Finalize,
                      .t = now_,
                      .job = id,
                      .value = st.quality,
                      .satisfied = st.satisfied});
  }
}

void RuntimeCore::expire_due_jobs() {
  while (first_live_ < jobs_.size()) {
    JobRecord& st = jobs_[first_live_];
    if (st.phase == JobRecord::Phase::Finalized) {
      ++first_live_;
      continue;
    }
    if (st.job.deadline <= now_ + kEps) {
      finalize(st.job.id);
      ++first_live_;
      continue;
    }
    break;
  }
}

void RuntimeCore::set_core_plan(int core, Schedule plan) {
  QES_ASSERT(core >= 0 && core < cfg_.cores);
  CoreState& c = cores_[static_cast<std::size_t>(core)];
  plan.check_well_formed();
  for (const Segment& s : plan.segments()) {
    QES_ASSERT_MSG(s.t0 >= now_ - 1e-5, "plan must start at or after now");
    const JobRecord& st = job(s.job);
    QES_ASSERT_MSG(st.phase == JobRecord::Phase::Assigned && st.core == core,
                   "plan segment must reference a live job on this core");
    QES_ASSERT_MSG(s.t1 <= st.job.deadline + 1e-5,
                   "plan segment must end by the job's deadline");
    QES_ASSERT_MSG(s.speed <= cfg_.max_core_speed + 1e-6,
                   "plan speed exceeds the core's hardware cap");
  }
  c.plan = std::move(plan);
  c.next_seg = 0;
}

void RuntimeCore::advance(Time target) {
  QES_ASSERT(target >= now_ - kEps);
  while (true) {
    // Sub-step end: the earliest segment boundary across cores, capped at
    // the target. Power is constant within the sub-step.
    Time step_end = target;
    for (const CoreState& c : cores_) {
      if (c.next_seg >= c.plan.size()) continue;
      const Segment& s = c.plan[c.next_seg];
      step_end = std::min(step_end, s.t0 > now_ + kEps ? s.t0 : s.t1);
    }

    if (step_end > now_ + kEps) {
      const Time dt = step_end - now_;
      Watts total_power = 0.0;
      for (CoreState& c : cores_) {
        const bool active = c.next_seg < c.plan.size() &&
                            c.plan[c.next_seg].t0 <= now_ + kEps;
        if (!active) continue;  // DVFS-gated cores draw no dynamic power
        const Segment& s = c.plan[c.next_seg];
        total_power += cfg_.power_model.dynamic_power(s.speed);
        state(s.job).processed += s.speed * dt;
        if (cfg_.trace != nullptr) {
          cfg_.trace->push(
              {.kind = obs::TraceEvent::Kind::Exec,
               .t = now_,
               .job = s.job,
               .core = static_cast<int>(&c - cores_.data()),
               .t0 = now_,
               .t1 = step_end,
               .speed = s.speed});
        }
      }
      QES_ASSERT_MSG(total_power <= cfg_.power_budget * (1.0 + 1e-6) + 1e-6,
                     "instantaneous power exceeded the budget");
      dynamic_energy_ += joules(total_power, dt);
      peak_power_ = std::max(peak_power_, total_power);
      now_ = step_end;
    }

    // Process segment completions at now_.
    for (CoreState& c : cores_) {
      while (c.next_seg < c.plan.size() &&
             c.plan[c.next_seg].t1 <= now_ + kEps) {
        const Segment done = c.plan[c.next_seg];
        ++c.next_seg;
        JobRecord& st = state(done.job);
        if (st.phase == JobRecord::Phase::Finalized) continue;
        const bool complete =
            st.processed + 1e-6 * std::max(1.0, st.job.demand) >=
            st.job.demand;
        bool more_planned = false;
        for (std::size_t k = c.next_seg; k < c.plan.size(); ++k) {
          if (c.plan[k].job == done.job) {
            more_planned = true;
            break;
          }
        }
        if (complete) {
          finalize(done.job);
        } else if (!more_planned) {
          // The core moves past a partially executed job: discarded due
          // to partial evaluation (paper §IV-B).
          finalize(done.job);
        }
      }
    }

    if (now_ >= target - kEps) break;
  }
  now_ = std::max(now_, target);
  expire_due_jobs();
}

bool RuntimeCore::check_triggers() {
  bool replan_due = false;
  if (cfg_.quantum_ms > 0.0 && now_ >= next_quantum_ - kEps) {
    while (next_quantum_ <= now_ + kEps) next_quantum_ += cfg_.quantum_ms;
    replan_due = true;
  }
  if (cfg_.counter_trigger > 0 &&
      waiting_.size() >= static_cast<std::size_t>(cfg_.counter_trigger)) {
    replan_due = true;
  }
  if (cfg_.idle_trigger && !waiting_.empty()) {
    for (int i = 0; i < cfg_.cores; ++i) {
      if (core_idle(i)) {
        replan_due = true;
        break;
      }
    }
  }
  return replan_due;
}

void RuntimeCore::install_with_rigid_check(int core, Speed max_speed) {
  // Collect the core's live jobs as the single-core algorithms see them
  // (mirrors the simulator policy's ready snapshot).
  auto snapshot = [&] {
    std::vector<ReadyJob> ready;
    bool first = true;
    for (JobId id : cores_[static_cast<std::size_t>(core)].queue) {
      const JobRecord& st = job(id);
      QES_ASSERT(st.job.deadline > now_ + kEps);
      ReadyJob rj;
      rj.id = id;
      rj.deadline = st.job.deadline;
      rj.demand = st.job.demand;
      rj.processed = st.processed;
      rj.running = first && st.processed > kEps;
      first = false;
      ready.push_back(rj);
    }
    return ready;
  };

  // Discard rigid (non-partial) jobs the plan cannot complete and
  // recompute until stable (§V-D), then drop partially executed jobs the
  // plan passes over — Online-QE already met their fair share and the
  // paper's execution model never resumes them.
  for (;;) {
    OnlineQeResult r;
    if (max_speed > kEps) r = online_qe(now_, snapshot(), max_speed);
    JobId to_discard = 0;
    for (JobId id : cores_[static_cast<std::size_t>(core)].queue) {
      const JobRecord& st = job(id);
      if (st.job.partial_ok) continue;
      const auto it = r.planned.find(id);
      const Work planned = it == r.planned.end() ? 0.0 : it->second;
      if (st.processed + planned + 1e-6 < st.job.demand) {
        to_discard = id;
        break;
      }
    }
    if (to_discard == 0) {
      std::vector<JobId> drop;
      for (JobId id : cores_[static_cast<std::size_t>(core)].queue) {
        if (job(id).processed > kEps && !r.planned.count(id)) {
          drop.push_back(id);
        }
      }
      for (JobId id : drop) finalize(id);
      set_core_plan(core, std::move(r.schedule));
      return;
    }
    finalize(to_discard);
  }
}

RuntimeCore::BudgetFreePlan RuntimeCore::budget_free_plan(int core) const {
  // Budget-free per-core YDS (DES step 2), identical to the simulator's
  // policy: remaining demands, all released now.
  BudgetFreePlan f;
  std::vector<Job> jobs;
  for (JobId id : cores_[static_cast<std::size_t>(core)].queue) {
    const JobRecord& st = job(id);
    const Work remaining = st.job.demand - st.processed;
    if (remaining <= kEps) continue;
    jobs.push_back(Job{.id = id,
                       .release = now_,
                       .deadline = st.job.deadline,
                       .demand = remaining});
  }
  if (!jobs.empty()) {
    YdsResult y = yds_schedule(AgreeableJobSet(std::move(jobs)));
    f.max_speed = y.critical_speed;
    f.power_at_now = cfg_.power_model.dynamic_power(y.schedule.speed_at(now_));
    f.plan = std::move(y.schedule);
  }
  return f;
}

Watts RuntimeCore::power_request() const {
  Watts total = 0.0;
  for (int i = 0; i < cfg_.cores; ++i) {
    total += budget_free_plan(i).power_at_now;
  }
  return total;
}

void RuntimeCore::set_power_budget(Watts budget) {
  QES_ASSERT_MSG(budget > 0.0, "power budget must be positive");
  cfg_.power_budget = budget;
}

std::vector<AbandonedJob> RuntimeCore::abandon_unfinalized() {
  std::vector<AbandonedJob> out;
  for (std::size_t k = first_live_; k < jobs_.size(); ++k) {
    JobRecord& st = jobs_[k];
    if (st.phase == JobRecord::Phase::Finalized) continue;
    const Work remaining = st.job.demand - st.processed;
    if (remaining <= 1e-6 * std::max(1.0, st.job.demand)) {
      // Within completion tolerance: the work was done here, so the
      // quality is credited here instead of shipping a zero-demand stub.
      finalize(st.job.id);
      continue;
    }
    out.push_back(AbandonedJob{.remaining = remaining,
                               .partial_ok = st.job.partial_ok,
                               .weight = st.job.weight});
    if (st.phase == JobRecord::Phase::Waiting) {
      auto it = std::find(waiting_.begin(), waiting_.end(), st.job.id);
      QES_ASSERT(it != waiting_.end());
      waiting_.erase(it);
    } else {
      auto& q = cores_[static_cast<std::size_t>(st.core)].queue;
      auto it = std::find(q.begin(), q.end(), st.job.id);
      QES_ASSERT(it != q.end());
      q.erase(it);
    }
    st.phase = JobRecord::Phase::Finalized;
    st.abandoned = true;
    st.finalized_at = now_;
    ++finalized_count_;
  }
  for (CoreState& c : cores_) {
    c.plan = Schedule{};
    c.next_seg = 0;
  }
  return out;
}

void RuntimeCore::replan() {
  ++replans_;
  if (cfg_.trace != nullptr) {
    cfg_.trace->push({.kind = obs::TraceEvent::Kind::Replan,
                      .t = now_,
                      .value = static_cast<double>(waiting_.size())});
  }
  const int m = cfg_.cores;

  // Step 1: ready-job distribution (C-RR with the persistent cursor).
  {
    auto timer = profiler_->phase("crr");
    const std::vector<JobId> waiting(waiting_.begin(), waiting_.end());
    const auto targets = crr_.distribute(waiting.size());
    for (std::size_t k = 0; k < waiting.size(); ++k) {
      assign_to_core(waiting[k], static_cast<int>(targets[k]));
    }
  }

  // Step 2: budget-free per-core YDS.
  std::vector<BudgetFreePlan> free_plans;
  free_plans.reserve(static_cast<std::size_t>(m));
  Watts total_request = 0.0;
  Speed top_speed = 0.0;
  {
    auto timer = profiler_->phase("yds");
    for (int i = 0; i < m; ++i) {
      BudgetFreePlan f = budget_free_plan(i);
      total_request += f.power_at_now;
      top_speed = std::max(top_speed, f.max_speed);
      free_plans.push_back(std::move(f));
    }
  }

  if (total_request <= cfg_.power_budget + kEps &&
      top_speed <= cfg_.max_core_speed + kEps) {
    // The optimistic schedules fit the budget: everyone completes.
    auto timer = profiler_->phase("online_qe");
    for (int i = 0; i < m; ++i) {
      set_core_plan(i, std::move(free_plans[static_cast<std::size_t>(i)].plan));
    }
    return;
  }

  // Step 3: WF power distribution.
  std::vector<Watts> budgets;
  {
    auto timer = profiler_->phase("wf");
    std::vector<Watts> requests;
    requests.reserve(static_cast<std::size_t>(m));
    for (const BudgetFreePlan& f : free_plans) {
      requests.push_back(f.power_at_now);
    }
    budgets = waterfill_power(requests, cfg_.power_budget);
  }

  // Step 4: budget-bounded per-core Online-QE planning.
  auto timer = profiler_->phase("online_qe");
  for (int i = 0; i < m; ++i) {
    const Speed cap = std::min(
        cfg_.power_model.speed_for_power(budgets[static_cast<std::size_t>(i)]),
        cfg_.max_core_speed);
    install_with_rigid_check(i, cap);
  }
}

Time RuntimeCore::earliest_live_deadline() const {
  for (std::size_t k = first_live_; k < jobs_.size(); ++k) {
    if (jobs_[k].phase != JobRecord::Phase::Finalized) {
      return jobs_[k].job.deadline;
    }
  }
  return std::numeric_limits<double>::infinity();
}

Time RuntimeCore::next_plan_event() const {
  Time t = std::numeric_limits<double>::infinity();
  for (const CoreState& c : cores_) {
    if (c.next_seg >= c.plan.size()) continue;
    const Segment& s = c.plan[c.next_seg];
    t = std::min(t, s.t0 > now_ + kEps ? s.t0 : s.t1);
  }
  return t;
}

Time RuntimeCore::horizon() const {
  return jobs_.empty() ? now_ : jobs_.back().job.deadline;
}

Watts RuntimeCore::planned_power_now() const {
  Watts total = 0.0;
  for (const CoreState& c : cores_) {
    if (c.next_seg >= c.plan.size()) continue;
    const Segment& s = c.plan[c.next_seg];
    if (s.t0 <= now_ + kEps) total += cfg_.power_model.dynamic_power(s.speed);
  }
  return total;
}

CoreCounters RuntimeCore::counters() const {
  CoreCounters c;
  c.now = now_;
  c.admitted = jobs_.size();
  c.waiting = waiting_.size();
  for (const CoreState& cs : cores_) c.assigned += cs.queue.size();
  c.finalized = finalized_count_;
  c.satisfied = satisfied_count_;
  c.quality_sum = quality_sum_;
  c.dynamic_energy = dynamic_energy_;
  c.planned_power = planned_power_now();
  c.peak_power = peak_power_;
  c.replans = replans_;
  return c;
}

RunStats RuntimeCore::finish(Time end_time) {
  QES_ASSERT_MSG(all_finalized(), "finish() requires every job finalized");
  advance(std::max(end_time, now_));

  // Same shared accumulator as sim::Engine (src/obs/run_accumulator.hpp),
  // under the runtime's "qesd" metric prefix.
  obs::RunAccumulator acc(cfg_.registry, "qesd");
  for (const JobRecord& st : jobs_) {
    if (st.abandoned) continue;  // re-dispatched; accounted at the new node
    acc.on_job(st.quality, st.job.weight * cfg_.quality(st.job.demand),
               st.satisfied, st.processed > kEps,
               !st.job.partial_ok && !st.satisfied,
               st.finalized_at - st.job.release);
  }
  return acc.finish(dynamic_energy_,
                    cfg_.cores * cfg_.power_model.b * now_ / 1000.0,
                    peak_power_, now_, replans_);
}

}  // namespace qes::runtime
