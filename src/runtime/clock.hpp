// Virtual clock for the qesd serving runtime.
//
// The simulator's model time is double-precision milliseconds; the live
// runtime maps that axis onto the wall clock with a configurable dilation
// factor ("time scale"). At scale 1 one virtual millisecond is one wall
// millisecond, so a core running at speed s processes s * 1000 work units
// per wall second (the paper's 1 GHz == 1000 units/s convention). Larger
// scales compress wall time, letting tests serve a 30-virtual-second
// workload in a couple of wall seconds without changing any model math.
//
// The clock is read-only shared state: the epoch and scale are fixed at
// construction, so concurrent now() calls need no synchronization.
#pragma once

#include <chrono>

#include "core/assert.hpp"
#include "core/time.hpp"

namespace qes::runtime {

class VirtualClock {
 public:
  using WallClock = std::chrono::steady_clock;

  explicit VirtualClock(double time_scale = 1.0)
      : epoch_(WallClock::now()), scale_(time_scale) {
    QES_ASSERT(time_scale > 0.0);
  }

  /// Current virtual time in milliseconds since construction.
  [[nodiscard]] Time now() const {
    const std::chrono::duration<double, std::milli> wall =
        WallClock::now() - epoch_;
    return wall.count() * scale_;
  }

  /// Wall-clock deadline corresponding to virtual time `t` (for
  /// condition-variable waits, which must be interruptible).
  [[nodiscard]] WallClock::time_point wall_deadline(Time t) const {
    const std::chrono::duration<double, std::milli> wall{t / scale_};
    return epoch_ + std::chrono::duration_cast<WallClock::duration>(wall);
  }

  /// Virtual milliseconds per wall millisecond.
  [[nodiscard]] double scale() const { return scale_; }

 private:
  WallClock::time_point epoch_;
  double scale_;
};

}  // namespace qes::runtime
