#include "runtime/server.hpp"

#include <algorithm>
#include <cstdio>

#include "core/assert.hpp"
#include "obs/trace.hpp"

namespace qes::runtime {

namespace {

std::chrono::duration<double, std::milli> wall_ms(double ms) {
  return std::chrono::duration<double, std::milli>(ms);
}

}  // namespace

/// Adapter handing ingress admission batches to the server. A separate
/// object (not Server inheriting IngressSink) keeps the wire plane out
/// of Server's public API surface.
class ServerIngressSink final : public net::IngressSink {
 public:
  explicit ServerIngressSink(Server* server) : server_(server) {}
  std::size_t submit_batch(const net::IngressRequest* reqs,
                           std::size_t count) override {
    return server_->ingress_admit(reqs, count);
  }

 private:
  Server* server_;
};

std::string MetricsSnapshot::to_json() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"t_ms\": %.3f, \"admitted\": %zu, \"waiting\": %zu, "
      "\"assigned\": %zu, \"finalized\": %zu, \"satisfied\": %zu, "
      "\"shed\": %zu, \"quality_sum\": %.6f, \"dynamic_energy_j\": %.3f, "
      "\"planned_power_w\": %.3f, \"peak_power_w\": %.3f, "
      "\"replans\": %zu, \"busy_workers\": %d}",
      t_virtual_ms, admitted, waiting, assigned, finalized, satisfied, shed,
      quality_sum, dynamic_energy_j, planned_power_w, peak_power_w, replans,
      busy_workers);
  return buf;
}

Server::Server(ServerConfig config)
    : cfg_(std::move(config)),
      clock_(cfg_.time_scale),
      admission_(cfg_.admission_capacity),
      // Point the model at the server-owned registry before RuntimeCore
      // copies its config (registry_ is declared ahead of core_), and
      // turn on completion recording when the wire plane will need it.
      core_((cfg_.model.registry = &registry_,
             cfg_.model.record_completions =
                 cfg_.model.record_completions || cfg_.listen_port >= 0,
             cfg_.model)),
      plans_(static_cast<std::size_t>(cfg_.model.cores)),
      current_job_(static_cast<std::size_t>(cfg_.model.cores)),
      worker_stats_(static_cast<std::size_t>(cfg_.model.cores)) {
  QES_ASSERT(cfg_.deadline_ms > 0.0 && cfg_.tick_wall_ms > 0.0 &&
             cfg_.metrics_interval_ms > 0.0 && cfg_.worker_slice_wall_ms > 0.0);
  for (auto& j : current_job_) j.store(0, std::memory_order_relaxed);
}

Server::~Server() {
  if (started_ && !stopped_) (void)drain_and_stop();
}

void Server::start() {
  QES_ASSERT_MSG(!started_, "start() may be called once");
  started_ = true;
  if (cfg_.http_port >= 0) {
    exporter_ = std::make_unique<obs::HttpExporter>(cfg_.http_port);
    exporter_->handle("/metrics", "text/plain; version=0.0.4",
                      [this] { return registry_.to_prometheus(); });
    exporter_->handle("/metrics.json", "application/json",
                      [this] { return registry_.to_json(); });
    exporter_->handle("/healthz", "application/json", [this] {
      return "{\"status\": \"ok\", \"requests_served\": " +
             std::to_string(exporter_->requests_served()) +
             ", \"snapshot\": " + snapshot().to_json() + "}\n";
    });
    exporter_->handle("/tracez", "application/x-ndjson", [this] {
      if (cfg_.model.trace == nullptr) return std::string();
      std::string out;
      for (const obs::TraceEvent& e : cfg_.model.trace->tail(256)) {
        out += obs::to_json(e);
        out += '\n';
      }
      return out;
    });
    exporter_->start();
  }
  threads_.reserve(static_cast<std::size_t>(cfg_.model.cores) + 2);
  threads_.emplace_back([this] { trigger_loop(); });
  threads_.emplace_back([this] { metrics_loop(); });
  for (int i = 0; i < cfg_.model.cores; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
  // The wire plane comes up last: nothing arrives before the trigger
  // thread exists to admit it.
  if (cfg_.listen_port >= 0) {
    net::IngressConfig ic;
    ic.port = cfg_.listen_port;
    ic.workers = cfg_.ingress_workers;
    ic.max_connections = cfg_.ingress_max_connections;
    ic.registry = &registry_;
    ingress_sink_ = std::make_unique<ServerIngressSink>(this);
    ingress_ = std::make_unique<net::Ingress>(ic, ingress_sink_.get());
    ingress_->start();
  }
}

int Server::http_port() const {
  return exporter_ ? exporter_->port() : -1;
}

int Server::listen_port() const {
  return ingress_ ? ingress_->port() : -1;
}

std::size_t Server::ingress_admit(const net::IngressRequest* reqs,
                                  std::size_t count) {
  // Convert the wire batch and push it with ONE queue lock; the rejected
  // suffix is shed here (counted exactly once) and the ingress writes
  // the shed REPLYs back on the wire.
  std::vector<Request> batch(count);
  for (std::size_t i = 0; i < count; ++i) {
    const net::SubmitFrame& f = reqs[i].submit;
    batch[i].demand = f.demand;
    batch[i].partial_ok = f.partial_ok;
    batch[i].weight = f.weight;
    batch[i].deadline_ms = f.deadline_ms;
    batch[i].tag = reqs[i].token;
  }
  const std::size_t accepted = admission_.try_push_batch(batch.data(), count);
  const std::size_t rejected = count - accepted;
  if (rejected > 0) {
    shed_.fetch_add(rejected, std::memory_order_relaxed);
    registry_
        .counter("qesd_shed_total",
                 "requests rejected at admission (queue full or draining)")
        .add(static_cast<double>(rejected));
    if (cfg_.model.trace != nullptr) {
      const Time t = clock_.now();
      for (std::size_t i = 0; i < rejected; ++i) {
        cfg_.model.trace->push({.kind = obs::TraceEvent::Kind::Shed, .t = t});
      }
    }
  }
  if (accepted > 0) poke_trigger();
  return accepted;
}

bool Server::submit(const Request& request,
                    std::chrono::milliseconds timeout) {
  QES_ASSERT(request.demand > 0.0 && request.weight > 0.0);
  if (admission_.push(request, timeout)) return true;
  shed_.fetch_add(1, std::memory_order_relaxed);
  registry_
      .counter("qesd_shed_total",
               "requests rejected at admission (queue full or draining)")
      .inc();
  if (cfg_.model.trace != nullptr) {
    cfg_.model.trace->push(
        {.kind = obs::TraceEvent::Kind::Shed, .t = clock_.now()});
  }
  return false;
}

void Server::poke_trigger() {
  {
    std::lock_guard<std::mutex> lock(trig_mu_);
    poked_ = true;
  }
  trig_cv_.notify_one();
}

void Server::publish_plans() {
  const std::uint64_t gen = plan_gen_.fetch_add(1) + 1;
  for (int i = 0; i < cfg_.model.cores; ++i) {
    auto snap = std::make_shared<const PlanSnapshot>(
        PlanSnapshot{core_.plan(i), gen});
    PlanSlot& slot = plans_[static_cast<std::size_t>(i)];
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.snap = std::move(snap);
  }
  // Publish under the wake mutex so a worker between its predicate check
  // and its wait cannot miss the notification.
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();
}

void Server::process_tick() {
  std::vector<Request> batch;
  const Time vnow = clock_.now();
  registry_
      .gauge("qesd_admission_queue_depth",
             "admission queue occupancy at the last trigger tick")
      .set(static_cast<double>(admission_.size()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Drained under mu_ so drain_and_stop() can never observe an empty
    // queue while a batch is still waiting to be admitted.
    admission_.drain(batch);
    core_.advance(std::max(vnow, core_.now()));
    for (const Request& r : batch) {
      Job j;
      j.id = core_.admitted() + 1;
      j.release = core_.now();
      // Per-request deadlines are clamped to stay agreeable (monotone in
      // admission order) — with the constant server default this clamp
      // never fires, so the in-process path is byte-identical.
      const Time rel = r.deadline_ms > 0.0 ? r.deadline_ms : cfg_.deadline_ms;
      j.deadline = std::max(core_.now() + rel, last_deadline_);
      last_deadline_ = j.deadline;
      j.demand = r.demand;
      j.partial_ok = r.partial_ok;
      j.weight = r.weight;
      core_.submit(j);
      tags_.push_back(r.tag);
    }
    if (core_.check_triggers()) {
      const auto t0 = VirtualClock::WallClock::now();
      core_.replan();
      publish_plans();
      const std::chrono::duration<double, std::milli> dt =
          VirtualClock::WallClock::now() - t0;
      registry_
          .histogram("qesd_replan_publish_ms",
                     "wall time to replan and publish all core plans (ms)", {},
                     obs::Histogram(0.001, 2.0, 24))
          .record(dt.count());
    }
  }
  // Outside mu_: pushing REPLY frames to the ingress inboxes must never
  // hold the model lock.
  forward_completions();
}

void Server::forward_completions() {
  if (!ingress_) return;
  completions_scratch_.clear();
  wire_completions_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    core_.drain_completions(completions_scratch_);
    for (const JobCompletion& c : completions_scratch_) {
      QES_ASSERT(c.id >= 1 && c.id <= tags_.size());
      const std::uint64_t token = tags_[static_cast<std::size_t>(c.id - 1)];
      if (token == 0) continue;  // in-process submission, no wire client
      net::Completion wc;
      wc.token = token;
      wc.status =
          c.satisfied ? net::ReplyStatus::kSatisfied : net::ReplyStatus::kPartial;
      wc.quality = c.quality;
      wc.latency_ms = c.latency_ms;
      wire_completions_.push_back(wc);
    }
  }
  if (!wire_completions_.empty()) {
    ingress_->complete_batch(wire_completions_.data(),
                             wire_completions_.size());
  }
}

void Server::trigger_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lock(trig_mu_);
      trig_cv_.wait_for(lock, wall_ms(cfg_.tick_wall_ms), [this] {
        return stop_.load(std::memory_order_acquire) || poked_;
      });
      poked_ = false;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    process_tick();
  }
}

void Server::wait_wall(VirtualClock::WallClock::time_point tp,
                       std::uint64_t seen_gen) {
  std::unique_lock<std::mutex> lock(wake_mu_);
  wake_cv_.wait_until(lock, tp, [&] {
    return stop_.load(std::memory_order_acquire) ||
           plan_gen_.load(std::memory_order_acquire) != seen_gen;
  });
}

void Server::worker_loop(int core) {
  const std::size_t idx = static_cast<std::size_t>(core);
  WorkerStats& ws = worker_stats_[idx];
  const Time slice_virtual = cfg_.worker_slice_wall_ms * clock_.scale();
  while (!stop_.load(std::memory_order_acquire)) {
    std::shared_ptr<const PlanSnapshot> snap;
    {
      PlanSlot& slot = plans_[idx];
      std::lock_guard<std::mutex> lock(slot.mu);
      snap = slot.snap;
    }
    const std::uint64_t seen_gen =
        snap ? snap->gen : plan_gen_.load(std::memory_order_acquire);
    const Time vnow = clock_.now();
    const Segment* seg = nullptr;
    if (snap) {
      for (const Segment& s : snap->plan.segments()) {
        if (s.t1 > vnow + kTimeEps) {
          seg = &s;
          break;
        }
      }
    }
    if (seg == nullptr) {
      // Plan exhausted: this is the idle-core trigger's signal. Poke the
      // trigger thread and sleep until a new plan is published.
      current_job_[idx].store(0, std::memory_order_relaxed);
      poke_trigger();
      wait_wall(VirtualClock::WallClock::now() +
                    std::chrono::duration_cast<VirtualClock::WallClock::duration>(
                        wall_ms(5.0 * cfg_.tick_wall_ms)),
                seen_gen);
      continue;
    }
    if (seg->t0 > vnow + kTimeEps) {
      // Planned but not started yet (DVFS idle gap): sleep to the start.
      current_job_[idx].store(0, std::memory_order_relaxed);
      wait_wall(clock_.wall_deadline(seg->t0), seen_gen);
      continue;
    }
    // Execute one time-dilated slice of the active segment: the worker
    // "runs" the job by holding it as current for the slice's wall-time
    // extent — speed seg->speed means seg->speed * 1000 / time_scale
    // units per wall second.
    current_job_[idx].store(seg->job, std::memory_order_relaxed);
    const Time slice_end = std::min(seg->t1, vnow + slice_virtual);
    wait_wall(clock_.wall_deadline(slice_end), seen_gen);
    const Time done = std::min(clock_.now(), seg->t1);
    if (done > vnow) {
      ws.busy_virtual_ms += done - vnow;
      ++ws.slices;
    }
    if (clock_.now() + kTimeEps >= seg->t1) {
      // Segment boundary: completion processing (and possibly the idle
      // trigger) is due on the model state.
      poke_trigger();
    }
  }
  current_job_[idx].store(0, std::memory_order_relaxed);
}

MetricsSnapshot Server::snapshot() const {
  CoreCounters c;
  {
    std::lock_guard<std::mutex> lock(mu_);
    c = core_.counters();
  }
  MetricsSnapshot s;
  s.t_virtual_ms = c.now;
  s.admitted = c.admitted;
  s.waiting = c.waiting;
  s.assigned = c.assigned;
  s.finalized = c.finalized;
  s.satisfied = c.satisfied;
  s.shed = shed_.load(std::memory_order_relaxed);
  s.quality_sum = c.quality_sum;
  s.dynamic_energy_j = c.dynamic_energy;
  s.planned_power_w = c.planned_power;
  s.peak_power_w = c.peak_power;
  s.replans = c.replans;
  for (const auto& j : current_job_) {
    if (j.load(std::memory_order_relaxed) != 0) ++s.busy_workers;
  }
  return s;
}

void Server::take_snapshot() {
  const MetricsSnapshot s = snapshot();
  registry_.gauge("qesd_virtual_time_ms", "current virtual time")
      .set(s.t_virtual_ms);
  registry_
      .gauge("qesd_planned_power_watts",
             "instantaneous dynamic power implied by the installed plans")
      .set(s.planned_power_w);
  registry_
      .gauge("qesd_live_dynamic_energy_joules",
             "dynamic energy integrated so far")
      .set(s.dynamic_energy_j);
  registry_.gauge("qesd_busy_workers", "workers holding an active job")
      .set(static_cast<double>(s.busy_workers));
  std::lock_guard<std::mutex> lock(snap_mu_);
  snapshots_.push_back(s);
}

void Server::metrics_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait_for(lock, wall_ms(cfg_.metrics_interval_ms), [this] {
        return stop_.load(std::memory_order_acquire);
      });
    }
    if (stop_.load(std::memory_order_acquire)) break;
    take_snapshot();
  }
}

RunStats Server::drain_and_stop() {
  QES_ASSERT_MSG(started_, "drain_and_stop() requires start()");
  if (stopped_) {
    QES_ASSERT(final_stats_valid_);
    return final_stats_;
  }
  admission_.close();
  // Serve out the tail: the trigger thread keeps advancing virtual time,
  // so every admitted job finalizes within deadline_ms virtual ms of the
  // last admission.
  for (;;) {
    poke_trigger();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (admission_.size() == 0 && core_.all_finalized()) break;
    }
    std::this_thread::sleep_for(wall_ms(2.0 * cfg_.tick_wall_ms));
  }
  take_snapshot();  // final observation before the threads stop
  stop_.store(true, std::memory_order_release);
  poke_trigger();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  stopped_ = true;
  // The trigger thread is gone: flush any completions it finalized but
  // had not yet forwarded, then stop the ingress — its workers deliver
  // the buffered REPLY frames before closing the connections.
  forward_completions();
  if (ingress_) ingress_->stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    final_stats_ = core_.finish(core_.horizon());
    final_stats_valid_ = true;
  }
  // The exporter stays answerable through the drain (handlers only read
  // thread-safe state); stop it once the final statistics exist.
  if (exporter_) exporter_->stop();
  return final_stats_;
}

void Server::set_power_budget(Watts budget) {
  std::lock_guard<std::mutex> lock(mu_);
  // final_stats_valid_ is written only under mu_ (drain/kill), so this
  // check makes broker updates harmless during teardown.
  if (final_stats_valid_) return;
  core_.advance(std::max(clock_.now(), core_.now()));
  core_.set_power_budget(budget);
  // Replan immediately: a lowered budget must never leave plans that
  // exceed it installed past the next advance.
  core_.replan();
  publish_plans();
}

Watts Server::power_budget() const {
  std::lock_guard<std::mutex> lock(mu_);
  return core_.config().power_budget;
}

Watts Server::power_request() const {
  std::lock_guard<std::mutex> lock(mu_);
  return core_.power_request();
}

Server::KillReport Server::kill() {
  QES_ASSERT_MSG(started_ && !stopped_, "kill() requires a live server");
  admission_.close();
  stop_.store(true, std::memory_order_release);
  poke_trigger();
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  stopped_ = true;

  KillReport report;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Account everything executed up to the kill instant, then cut the
    // rest loose. Requests still buffered in admission were never
    // admitted — they go back to the cluster verbatim.
    core_.advance(std::max(clock_.now(), core_.now()));
    admission_.drain(report.pending);
    report.abandoned = core_.abandon_unfinalized();
    final_stats_ = core_.finish(core_.now());
    final_stats_valid_ = true;
    report.stats = final_stats_;
  }
  // A killed node answers nothing: undelivered REPLY frames die with it
  // (clients observe the closed connections), and no scrapes are served.
  if (ingress_) ingress_->stop();
  if (exporter_) exporter_->stop();
  return report;
}

const std::vector<MetricsSnapshot>& Server::snapshots() const {
  QES_ASSERT_MSG(stopped_, "snapshots() is valid after drain_and_stop()");
  return snapshots_;
}

const std::vector<WorkerStats>& Server::worker_stats() const {
  QES_ASSERT_MSG(stopped_, "worker_stats() is valid after drain_and_stop()");
  return worker_stats_;
}

}  // namespace qes::runtime
