#include "runtime/conformance.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/assert.hpp"
#include "multicore/des_scheduler.hpp"
#include "sim/engine.hpp"

namespace qes::runtime {

double ConformanceResult::quality_abs_diff() const {
  return std::fabs(sim.total_quality - runtime.total_quality);
}

double ConformanceResult::energy_rel_diff() const {
  const double scale = std::max(1e-12, std::fabs(sim.dynamic_energy));
  return std::fabs(sim.dynamic_energy - runtime.dynamic_energy) / scale;
}

RunStats run_lockstep(const RuntimeConfig& config, std::vector<Job> jobs) {
  sort_by_release(jobs);
  QES_ASSERT_MSG(deadlines_agreeable(jobs),
                 "lockstep replay requires agreeable deadlines");
  RuntimeCore core(config);
  if (jobs.empty()) return core.finish(0.0);

  const Time final_deadline = jobs.back().deadline;
  const std::size_t n = jobs.size();
  std::size_t next = 0;

  while (next < n || !core.all_finalized()) {
    // Next event: arrival, quantum firing, earliest live deadline, or the
    // next segment boundary on any core (sim::Engine's event menu).
    Time t = std::numeric_limits<double>::infinity();
    if (next < n) t = std::min(t, jobs[next].release);
    if (config.quantum_ms > 0.0) t = std::min(t, core.next_quantum());
    t = std::min(t, core.earliest_live_deadline());
    t = std::min(t, core.next_plan_event());
    QES_ASSERT_MSG(std::isfinite(t), "event loop stalled with live jobs");

    core.advance(std::max(t, core.now()));
    while (next < n && jobs[next].release <= core.now() + kTimeEps) {
      core.submit(jobs[next]);
      ++next;
    }
    if (core.check_triggers()) core.replan();
  }
  return core.finish(final_deadline);
}

ConformanceResult run_conformance(const RuntimeConfig& config,
                                  std::vector<Job> jobs) {
  ConformanceResult out;

  EngineConfig ec;
  ec.cores = config.cores;
  ec.power_budget = config.power_budget;
  ec.power_model = config.power_model;
  ec.quality = config.quality;
  ec.quantum_ms = config.quantum_ms;
  ec.counter_trigger = config.counter_trigger;
  ec.idle_trigger = config.idle_trigger;
  ec.max_core_speed = config.max_core_speed;
  ec.record_execution = false;
  Engine engine(ec, jobs, make_des_policy({.arch = Architecture::CDVFS}));
  out.sim = engine.run().stats;

  out.runtime = run_lockstep(config, std::move(jobs));
  return out;
}

}  // namespace qes::runtime
