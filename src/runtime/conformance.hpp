// Conformance harness: replays one trace through sim::Engine (with the
// paper's DES policy) and through the runtime's RuntimeCore driven in
// lockstep — the same event sequence the engine's run loop uses:
// arrivals, quantum firings, deadline expiries, and plan-segment
// boundaries, with triggers evaluated in the same order at each event.
//
// Because RuntimeCore mirrors the engine's integration arithmetic and
// the DES C-DVFS planning pipeline operation for operation, the two runs
// agree on total quality exactly and on energy to floating-point noise;
// the harness is the regression tripwire that keeps the live runtime's
// decisions anchored to the simulator as either side evolves. The
// threaded server shares all of RuntimeCore's arithmetic — only trigger
// *timing* differs live (ticks quantize the wall clock), so agreement
// here transfers to the live path's accounting.
#pragma once

#include <vector>

#include "core/job.hpp"
#include "runtime/core.hpp"
#include "sim/metrics.hpp"

namespace qes::runtime {

struct ConformanceResult {
  RunStats sim;      ///< sim::Engine + make_des_policy (C-DVFS)
  RunStats runtime;  ///< RuntimeCore in lockstep

  [[nodiscard]] double quality_abs_diff() const;
  [[nodiscard]] double energy_rel_diff() const;
};

/// Runs both sides on `jobs` (dense ids 1..n in arrival order, agreeable
/// deadlines) under the shared model parameters in `config`.
[[nodiscard]] ConformanceResult run_conformance(const RuntimeConfig& config,
                                                std::vector<Job> jobs);

/// Drives only the runtime side (exposed for tests and the qesd
/// `--conform` mode, which prints both reports).
[[nodiscard]] RunStats run_lockstep(const RuntimeConfig& config,
                                    std::vector<Job> jobs);

}  // namespace qes::runtime
