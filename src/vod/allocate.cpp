#include "vod/allocate.hpp"

#include <algorithm>
#include <numeric>

#include "core/assert.hpp"

namespace qes::vod {

LayerAwareResult layer_aware_allocate(const LayeredVideoModel& model,
                                      std::span<const double> complexities,
                                      Work capacity) {
  LayerAwareResult out;
  out.alloc.assign(complexities.size(), 0.0);
  if (complexities.empty() || capacity <= 0.0) return out;

  // All (job, layer) items in descending utility-density order. Within a
  // job, densities are non-increasing by construction, and the stable
  // tie-break keeps earlier layers first, so picking items in this order
  // respects layer precedence automatically.
  struct Item {
    std::size_t job;
    std::size_t layer;
    Work work;
    double utility;
  };
  std::vector<Item> items;
  for (std::size_t j = 0; j < complexities.size(); ++j) {
    QES_ASSERT(complexities[j] > 0.0);
    for (std::size_t l = 0; l < model.layers().size(); ++l) {
      items.push_back({j, l, complexities[j] * model.layers()[l].work,
                       model.layers()[l].utility});
    }
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) {
                     return a.utility / a.work > b.utility / b.work;
                   });

  // Greedy with skip: take every item that still fits AND whose
  // predecessor layer was taken. This is the fractional-knapsack greedy
  // made integral; its utility is within one layer's utility of the
  // fractional optimum, which upper-bounds the true optimum.
  std::vector<std::size_t> next_layer(complexities.size(), 0);
  Work remaining = capacity;
  for (const Item& it : items) {
    if (next_layer[it.job] != it.layer) continue;  // precedence gap
    if (it.work > remaining + kTimeEps) continue;  // does not fit
    remaining -= it.work;
    out.alloc[it.job] += it.work;
    out.total_utility += it.utility;
    out.used += it.work;
    ++next_layer[it.job];
  }
  return out;
}

}  // namespace qes::vod
