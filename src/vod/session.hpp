// Streaming-session workload for the VoD substrate.
//
// Viewers arrive as a Poisson process and watch for a geometric number
// of chunks; every chunk_period the player requests the next chunk,
// which must be transcoded before its playout deadline. Each request is
// a best-effort job: serving fewer layers degrades quality per the
// LayeredVideoModel. Titles vary in complexity, scaling per-chunk work.
#pragma once

#include <vector>

#include "core/job.hpp"
#include "vod/video.hpp"

namespace qes::vod {

struct SessionWorkloadConfig {
  /// Viewer (session) arrivals per second.
  double session_rate = 1.0;
  /// Mean chunks watched per session (geometric).
  double mean_chunks = 30.0;
  /// Wall-clock spacing between a session's chunk requests.
  Time chunk_period_ms = 500.0;
  /// Transcode deadline for each chunk request.
  Time deadline_ms = 150.0;
  Time horizon_ms = 60'000.0;
  /// Title complexity multiplies the model's chunk work; sampled
  /// uniformly in [min, max] per session.
  double complexity_min = 0.6;
  double complexity_max = 2.2;
  std::uint64_t seed = 1;
};

struct SessionWorkload {
  std::vector<Job> jobs;
  /// Per-job complexity multiplier (aligned with job id - 1): the job's
  /// full demand is complexity * model.total_work().
  std::vector<double> complexity;
  std::size_t sessions = 0;
};

/// Generates the chunk-request job trace. Jobs are re-sorted into
/// release order and re-numbered densely (engine requirement); deadlines
/// are agreeable because every request uses the same relative deadline.
[[nodiscard]] SessionWorkload generate_sessions(
    const LayeredVideoModel& model, const SessionWorkloadConfig& config);

/// Post-hoc quality of a finished run under a per-job scaled quality
/// curve: job j's utility is `shape(processed / complexity_j)` — i.e.
/// the model curve stretched to the job's own demand. Returns the
/// normalized total.
[[nodiscard]] double scaled_quality(
    const LayeredVideoModel& model, const SessionWorkload& workload,
    std::span<const Work> processed, bool staircase);

}  // namespace qes::vod
