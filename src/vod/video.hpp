// Layered video model for the video-on-demand substrate — the paper's
// second motivating best-effort service (§I, §II-A).
//
// A chunk (one group of pictures) is encoded in L scalable layers: a
// base layer plus enhancements. Serving a chunk is best-effort — any
// prefix of layers is decodable — but quality only improves at LAYER
// BOUNDARIES: a half-transcoded enhancement layer contributes nothing.
// The true quality(work) curve is therefore a concave STAIRCASE, whose
// upper concave envelope is the smooth curve the paper's model assumes.
// The gap between the two is a model-fidelity question this substrate
// lets the benches quantify.
//
// Layer utilities follow a logarithmic rate-distortion curve (PSNR gains
// diminish with bitrate) and per-layer work is proportional to the layer
// bitrate, so utility-per-work decreases layer over layer — the
// staircase's envelope is genuinely concave.
#pragma once

#include <vector>

#include "core/quality.hpp"
#include "core/time.hpp"

namespace qes::vod {

struct Layer {
  Work work = 0.0;       ///< transcode work for this layer (units)
  double utility = 0.0;  ///< quality gained when the layer COMPLETES
};

struct VideoModelConfig {
  int layers = 5;
  /// Base-layer bitrate and the multiplicative growth per enhancement.
  double base_rate_kbps = 300.0;
  double rate_growth = 1.6;
  /// Total work of a fully served chunk, in scheduler units (calibrated
  /// near the paper's mean demand).
  Work total_work_units = 192.0;
};

class LayeredVideoModel {
 public:
  explicit LayeredVideoModel(const VideoModelConfig& config = {});

  [[nodiscard]] const std::vector<Layer>& layers() const { return layers_; }
  [[nodiscard]] Work total_work() const { return total_work_; }

  /// Utility after `volume` units of work: sum of utilities of FULLY
  /// completed layers (the truthful staircase), normalized to 1 at full
  /// work.
  [[nodiscard]] double staircase_utility(Work volume) const;

  /// Upper concave envelope: linear interpolation within a layer (the
  /// smooth approximation the paper's quality model corresponds to).
  [[nodiscard]] double envelope_utility(Work volume) const;

  /// Largest volume <= `volume` landing exactly on a layer boundary.
  [[nodiscard]] Work round_to_layer(Work volume) const;

  /// QualityFunction wrappers for the engine.
  [[nodiscard]] QualityFunction staircase_function() const;
  [[nodiscard]] QualityFunction envelope_function() const;

 private:
  std::vector<Layer> layers_;
  std::vector<Work> cum_work_;      // cumulative work after each layer
  std::vector<double> cum_utility_;  // cumulative utility after each layer
  Work total_work_ = 0.0;
};

}  // namespace qes::vod
