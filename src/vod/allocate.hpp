// Layer-aware capacity allocation (extension).
//
// The paper's water-filling assumes smooth concave quality, so it leaves
// volume stranded inside unfinished video layers. When quality is a
// layered staircase, the single-interval allocation problem
//   maximize sum_j U_j(p_j)  s.t.  sum_j p_j <= C
// with U_j a staircase whose utility-per-work densities are
// non-increasing is solved exactly by GREEDY: take layers across all
// jobs in descending density order until the capacity cannot fit the
// next layer (densities within each job decrease, so greedy never needs
// to revisit a skipped job's later layer before its earlier one).
#pragma once

#include <span>
#include <vector>

#include "vod/video.hpp"

namespace qes::vod {

struct LayerAwareResult {
  /// Allocated volume per job, always on a layer boundary of that job's
  /// (complexity-scaled) staircase.
  std::vector<Work> alloc;
  double total_utility = 0.0;
  Work used = 0.0;
};

/// Allocates `capacity` units across jobs whose chunk curves are `model`
/// stretched by `complexities[j]` (job j's layer l costs
/// complexity_j * model.layers()[l].work).
[[nodiscard]] LayerAwareResult layer_aware_allocate(
    const LayeredVideoModel& model, std::span<const double> complexities,
    Work capacity);

}  // namespace qes::vod
