#include "vod/session.hpp"

#include <algorithm>
#include <cmath>

#include "core/assert.hpp"
#include "core/prng.hpp"

namespace qes::vod {

SessionWorkload generate_sessions(const LayeredVideoModel& model,
                                  const SessionWorkloadConfig& config) {
  QES_ASSERT(config.session_rate > 0.0 && config.mean_chunks >= 1.0);
  QES_ASSERT(config.chunk_period_ms > 0.0 && config.deadline_ms > 0.0);
  Xoshiro256 rng(config.seed);

  struct RawJob {
    Time release;
    Work demand;
    double complexity;
  };
  std::vector<RawJob> raw;
  std::size_t sessions = 0;

  Time t = rng.exponential(config.session_rate / 1000.0);
  while (t < config.horizon_ms) {
    ++sessions;
    const double complexity =
        rng.uniform(config.complexity_min, config.complexity_max);
    // Geometric(p) chunk count with mean 1/p.
    const double p = 1.0 / config.mean_chunks;
    std::size_t chunks = 1;
    while (!rng.bernoulli(p)) ++chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
      const Time release =
          t + static_cast<double>(c) * config.chunk_period_ms;
      if (release >= config.horizon_ms) break;
      raw.push_back({release, complexity * model.total_work(), complexity});
    }
    t += rng.exponential(config.session_rate / 1000.0);
  }

  std::sort(raw.begin(), raw.end(), [](const RawJob& a, const RawJob& b) {
    return a.release < b.release;
  });

  SessionWorkload out;
  out.sessions = sessions;
  out.jobs.reserve(raw.size());
  out.complexity.reserve(raw.size());
  for (std::size_t k = 0; k < raw.size(); ++k) {
    Job j;
    j.id = k + 1;
    j.release = raw[k].release;
    j.deadline = raw[k].release + config.deadline_ms;
    j.demand = raw[k].demand;
    out.jobs.push_back(j);
    out.complexity.push_back(raw[k].complexity);
  }
  return out;
}

double scaled_quality(const LayeredVideoModel& model,
                      const SessionWorkload& workload,
                      std::span<const Work> processed, bool staircase) {
  QES_ASSERT(processed.size() == workload.jobs.size());
  double total = 0.0;
  for (std::size_t k = 0; k < processed.size(); ++k) {
    // Stretch the chunk curve by the job's complexity: a 2x-complex
    // chunk needs 2x the work for the same layer.
    const Work v = processed[k] / workload.complexity[k];
    total += staircase ? model.staircase_utility(v)
                       : model.envelope_utility(v);
  }
  // Full service yields utility 1 per job.
  return workload.jobs.empty()
             ? 0.0
             : total / static_cast<double>(workload.jobs.size());
}

}  // namespace qes::vod
