#include "vod/video.hpp"

#include <algorithm>
#include <cmath>

#include "core/assert.hpp"

namespace qes::vod {

LayeredVideoModel::LayeredVideoModel(const VideoModelConfig& config) {
  QES_ASSERT(config.layers >= 1);
  QES_ASSERT(config.base_rate_kbps > 0.0 && config.rate_growth > 1.0);
  QES_ASSERT(config.total_work_units > 0.0);

  // Cumulative bitrate after each layer; utility via the logarithmic
  // rate-distortion proxy U(R) = log(1 + R / R_base).
  std::vector<double> cum_rate(static_cast<std::size_t>(config.layers));
  double rate = config.base_rate_kbps;
  double total_rate = 0.0;
  for (int l = 0; l < config.layers; ++l) {
    total_rate += rate;
    cum_rate[static_cast<std::size_t>(l)] = total_rate;
    rate *= config.rate_growth;
  }
  auto utility_at = [&](double r) {
    return std::log1p(r / config.base_rate_kbps);
  };
  const double u_max = utility_at(total_rate);

  double prev_rate = 0.0;
  double prev_u = 0.0;
  for (int l = 0; l < config.layers; ++l) {
    const double r = cum_rate[static_cast<std::size_t>(l)];
    Layer layer;
    // Work proportional to the layer's bits.
    layer.work = config.total_work_units * (r - prev_rate) / total_rate;
    layer.utility = (utility_at(r) - prev_u) / u_max;
    layers_.push_back(layer);
    prev_rate = r;
    prev_u = utility_at(r);
  }

  cum_work_.resize(layers_.size());
  cum_utility_.resize(layers_.size());
  Work w = 0.0;
  double u = 0.0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    w += layers_[l].work;
    u += layers_[l].utility;
    cum_work_[l] = w;
    cum_utility_[l] = u;
  }
  total_work_ = w;
  QES_ASSERT(approx_eq(total_work_, config.total_work_units, 1e-9));
  QES_ASSERT(approx_eq(cum_utility_.back(), 1.0, 1e-9));

  // The envelope is concave iff utility-per-work decreases layer over
  // layer — guaranteed by the log R-D curve, asserted for safety.
  double prev_density = std::numeric_limits<double>::infinity();
  for (const Layer& layer : layers_) {
    const double density = layer.utility / layer.work;
    QES_ASSERT_MSG(density <= prev_density + 1e-9,
                   "layer utility density must be non-increasing");
    prev_density = density;
  }
}

double LayeredVideoModel::staircase_utility(Work volume) const {
  double u = 0.0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (volume + kTimeEps < cum_work_[l]) break;
    u = cum_utility_[l];
  }
  return u;
}

double LayeredVideoModel::envelope_utility(Work volume) const {
  if (volume <= 0.0) return 0.0;
  Work prev_w = 0.0;
  double prev_u = 0.0;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    if (volume <= cum_work_[l] + kTimeEps) {
      const double f = (volume - prev_w) / (cum_work_[l] - prev_w);
      return prev_u + f * (cum_utility_[l] - prev_u);
    }
    prev_w = cum_work_[l];
    prev_u = cum_utility_[l];
  }
  return 1.0;
}

Work LayeredVideoModel::round_to_layer(Work volume) const {
  Work rounded = 0.0;
  for (Work w : cum_work_) {
    if (volume + kTimeEps < w) break;
    rounded = w;
  }
  return rounded;
}

QualityFunction LayeredVideoModel::staircase_function() const {
  auto self = *this;  // value capture keeps the function self-contained
  return QualityFunction::custom(
      "vod-staircase",
      [self](Work v) { return self.staircase_utility(v); },
      /*strictly_concave=*/false);
}

QualityFunction LayeredVideoModel::envelope_function() const {
  auto self = *this;
  return QualityFunction::custom(
      "vod-envelope", [self](Work v) { return self.envelope_utility(v); },
      /*strictly_concave=*/false);  // piecewise linear: weakly concave
}

}  // namespace qes::vod
