#include "sched/qe_opt.hpp"

#include "core/assert.hpp"
#include "sched/quality_opt.hpp"
#include "sched/yds.hpp"

namespace qes {

QeOptResult qe_opt_schedule(const AgreeableJobSet& set, Speed max_speed) {
  QeOptResult out;

  // Step 1: maximum quality at full speed.
  QualityOptResult q = quality_opt_schedule(set, max_speed);
  out.volumes = std::move(q.volumes);

  // Step 2: rewrite demands to granted volumes, minimize energy via YDS.
  std::vector<Job> rewritten;
  rewritten.reserve(set.size());
  for (std::size_t k = 0; k < set.size(); ++k) {
    Job j = set[k];
    j.demand = out.volumes[k];
    rewritten.push_back(j);
  }
  const AgreeableJobSet adjusted(std::move(rewritten));
  // Theorem 1 guarantees the critical speed fits the budget; the capped
  // wrapper absorbs the hair's-breadth float drift tiny windows amplify.
  YdsResult y = yds_schedule_capped(adjusted, max_speed);
  out.schedule = std::move(y.schedule);
  return out;
}

}  // namespace qes
