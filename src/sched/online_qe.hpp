// Online-QE: myopic optimal online single-core scheduling (paper §III-B).
//
// At each invocation (time t) the scheduler re-plans QE-OPT over the set
// of ready jobs, treating the currently running job specially: its release
// is rewound by processed/max_speed before Quality-OPT so that already
// completed work counts toward its fair share, and its demand is reduced
// by the processed volume before Energy-OPT so only the remainder is
// re-scheduled. The result is feasible and myopically optimal for the
// ready set, and remains valid when the core's power budget changes
// between invocations (which DES exploits on multicore systems).
#pragma once

#include <span>
#include <vector>

#include "core/flat_map.hpp"
#include "core/job.hpp"
#include "core/schedule.hpp"
#include "sched/quality_opt.hpp"
#include "sched/yds.hpp"

namespace qes {

/// A job visible to the online scheduler at invocation time.
struct ReadyJob {
  JobId id = 0;
  Time deadline = 0.0;
  Work demand = 0.0;     ///< full service demand w_j
  Work processed = 0.0;  ///< volume already executed (p-bar)
  bool running = false;  ///< true for the job currently on the core
};

struct OnlineQeResult {
  /// Timetable from the invocation time onward (releases clamped to now).
  Schedule schedule;
  /// Planned *additional* volume per job (beyond `processed`).
  FlatVolumeMap planned;
};

/// Reusable buffers for the scratch variant (implementation detail;
/// keep one alive across calls).
struct OnlineQeScratch {
  std::vector<Job> adjusted;
  std::vector<Job> step2;
  AgreeableJobSet step1_set;
  AgreeableJobSet step2_set;
  QualityOptScratch qopt_scratch;
  QualityOptResult qopt;
  YdsScratch yds_scratch;
  YdsResult yds;
};

/// Re-plans the core at time `now` for the given ready jobs under maximum
/// core speed `max_speed` (from the core's power budget). Jobs whose
/// deadline has passed or whose demand is already met are ignored.
/// At most one job may be flagged running, and it must carry the earliest
/// deadline among live ready jobs (always true under FIFO execution of
/// agreeable jobs; the release rewind depends on it).
[[nodiscard]] OnlineQeResult online_qe(Time now,
                                       std::span<const ReadyJob> jobs,
                                       Speed max_speed);

/// Identical arithmetic to online_qe, writing into `out` and drawing
/// temporaries from `scratch` (zero-allocation steady state).
void online_qe_into(Time now, std::span<const ReadyJob> jobs,
                    Speed max_speed, OnlineQeScratch& scratch,
                    OnlineQeResult& out);

}  // namespace qes
