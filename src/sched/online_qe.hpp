// Online-QE: myopic optimal online single-core scheduling (paper §III-B).
//
// At each invocation (time t) the scheduler re-plans QE-OPT over the set
// of ready jobs, treating the currently running job specially: its release
// is rewound by processed/max_speed before Quality-OPT so that already
// completed work counts toward its fair share, and its demand is reduced
// by the processed volume before Energy-OPT so only the remainder is
// re-scheduled. The result is feasible and myopically optimal for the
// ready set, and remains valid when the core's power budget changes
// between invocations (which DES exploits on multicore systems).
#pragma once

#include <map>
#include <span>

#include "core/job.hpp"
#include "core/schedule.hpp"

namespace qes {

/// A job visible to the online scheduler at invocation time.
struct ReadyJob {
  JobId id = 0;
  Time deadline = 0.0;
  Work demand = 0.0;     ///< full service demand w_j
  Work processed = 0.0;  ///< volume already executed (p-bar)
  bool running = false;  ///< true for the job currently on the core
};

struct OnlineQeResult {
  /// Timetable from the invocation time onward (releases clamped to now).
  Schedule schedule;
  /// Planned *additional* volume per job (beyond `processed`).
  std::map<JobId, Work> planned;
};

/// Re-plans the core at time `now` for the given ready jobs under maximum
/// core speed `max_speed` (from the core's power budget). Jobs whose
/// deadline has passed or whose demand is already met are ignored.
/// At most one job may be flagged running, and it must carry the earliest
/// deadline among live ready jobs (always true under FIFO execution of
/// agreeable jobs; the release rewind depends on it).
[[nodiscard]] OnlineQeResult online_qe(Time now,
                                       std::span<const ReadyJob> jobs,
                                       Speed max_speed);

}  // namespace qes
