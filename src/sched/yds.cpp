#include "sched/yds.hpp"

#include <algorithm>
#include <limits>

#include "core/assert.hpp"

namespace qes {

namespace {

// Map a timestamp through the removal of interval [z, z'] (timeline
// compression, §III-A).
Time compress(Time x, Time z, Time z2) {
  if (x <= z) return x;
  if (x >= z2) return x - (z2 - z);
  return z;
}

}  // namespace

void yds_schedule_into(const AgreeableJobSet& set, YdsScratch& scratch,
                       YdsResult& out) {
  using Window = YdsScratch::Window;
  const std::size_t n = set.size();
  out.speeds.assign(n, 0.0);
  out.schedule.clear();
  out.critical_speed = 0.0;

  std::vector<Window>& win = scratch.win;
  win.resize(n);
  std::size_t remaining = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const Job& j = set[k];
    win[k] = {j.release, j.deadline, j.demand, j.demand > kTimeEps};
    if (win[k].active) ++remaining;
  }

  while (remaining > 0) {
    // Find the critical interval among candidate pairs (i, j) of active
    // jobs. Containment is contiguous in sorted order, so a prefix-sum
    // over active demands gives O(1) interval weights.
    std::vector<std::size_t>& act = scratch.act;
    act.clear();
    act.reserve(remaining);
    for (std::size_t k = 0; k < n; ++k) {
      if (win[k].active) act.push_back(k);
    }
    std::vector<Work>& prefix = scratch.prefix;
    prefix.assign(act.size() + 1, 0.0);
    for (std::size_t a = 0; a < act.size(); ++a) {
      prefix[a + 1] = prefix[a] + win[act[a]].w;
    }

    double best_g = -1.0;
    Time best_z = 0.0, best_z2 = 0.0;
    for (std::size_t a = 0; a < act.size(); ++a) {
      // Intervals starting at a non-first index of a tied release are
      // dominated by the pair starting at the first such index (same
      // interval, superset of jobs) — skip them. In the online case all
      // releases coincide, so only a == 0 survives.
      if (a > 0 && win[act[a]].r <= win[act[a - 1]].r + kTimeEps) continue;
      const Time z = win[act[a]].r;
      for (std::size_t b = a; b < act.size(); ++b) {
        const Time z2 = win[act[b]].d;
        const Time len = z2 - z;
        QES_ASSERT(len > 0.0);
        const double g = (prefix[b + 1] - prefix[a]) / len;
        if (g > best_g + 1e-12) {
          best_g = g;
          best_z = z;
          best_z2 = z2;
        }
      }
    }
    QES_ASSERT_MSG(best_g > 0.0, "critical interval must have positive speed");
    out.critical_speed = std::max(out.critical_speed, best_g);

    // Assign the critical speed to every contained active job and
    // compress the interval out of the remaining windows.
    for (std::size_t k = 0; k < n; ++k) {
      if (!win[k].active) continue;
      if (win[k].r >= best_z - kTimeEps && win[k].d <= best_z2 + kTimeEps) {
        out.speeds[k] = best_g;
        win[k].active = false;
        --remaining;
      } else {
        win[k].r = compress(win[k].r, best_z, best_z2);
        win[k].d = compress(win[k].d, best_z, best_z2);
      }
    }
  }

  // Timetable: FIFO (== EDF for agreeable deadlines) at per-job speeds.
  Time t = 0.0;
  if (n > 0) t = set[0].release;
  for (std::size_t k = 0; k < n; ++k) {
    const Job& j = set[k];
    if (j.demand <= kTimeEps) continue;
    const Speed s = out.speeds[k];
    QES_ASSERT(s > 0.0);
    const Time start = std::max(t, j.release);
    const Time finish = start + j.demand / s;
    QES_ASSERT_MSG(approx_le(finish, j.deadline, 1e-5),
                   "YDS timetable must meet every deadline");
    out.schedule.push({start, finish, j.id, s});
    t = finish;
  }
}

void yds_schedule_capped_into(const AgreeableJobSet& set, Speed max_speed,
                              YdsScratch& scratch, YdsResult& out,
                              double max_rel_excess) {
  QES_ASSERT(max_speed > 0.0);
  yds_schedule_into(set, scratch, out);
  if (out.critical_speed <= max_speed) return;
  const double excess = out.critical_speed / max_speed - 1.0;
  QES_ASSERT_MSG(excess <= max_rel_excess,
                 "YDS critical speed exceeds the cap by more than "
                 "floating-point drift can explain");
  // Rescale demands so the critical speed lands just under the cap.
  const double scale = (1.0 - 1e-12) / (1.0 + excess);
  scratch.scaled.assign(set.jobs().begin(), set.jobs().end());
  for (Job& j : scratch.scaled) j.demand *= scale;
  scratch.scaled_set.assign(scratch.scaled);
  yds_schedule_into(scratch.scaled_set, scratch, out);
  QES_ASSERT(out.critical_speed <= max_speed);
}

YdsResult yds_schedule(const AgreeableJobSet& set) {
  YdsScratch scratch;
  YdsResult out;
  yds_schedule_into(set, scratch, out);
  return out;
}

YdsResult yds_schedule_capped(const AgreeableJobSet& set, Speed max_speed,
                              double max_rel_excess) {
  YdsScratch scratch;
  YdsResult out;
  yds_schedule_capped_into(set, max_speed, scratch, out, max_rel_excess);
  return out;
}

Joules yds_energy(const AgreeableJobSet& set, const YdsResult& result,
                  const PowerModel& pm) {
  QES_ASSERT(result.speeds.size() == set.size());
  Joules e = 0.0;
  for (std::size_t k = 0; k < set.size(); ++k) {
    if (set[k].demand <= kTimeEps) continue;
    const Time dur = set[k].demand / result.speeds[k];
    e += pm.dynamic_energy(result.speeds[k], dur);
  }
  return e;
}

}  // namespace qes
