// Energy-OPT: the YDS minimum-energy speed-scaling algorithm
// (Yao, Demers, Shenker FOCS'95; paper §III-A).
//
// Given an agreeable job set that must be fully completed, YDS repeatedly
// extracts the *critical interval* I* maximizing the intensity
// g(I) = sum_{[r,d] subseteq I} w / |I|, runs its jobs at speed g(I*), and
// compresses the timeline. Because the dynamic power a*s^beta is convex,
// the resulting speeds minimize total energy among all feasible schedules.
//
// With agreeable deadlines the final timetable is simply EDF (== FIFO)
// with each job executed at its assigned speed, non-preemptively.
#pragma once

#include <vector>

#include "core/job.hpp"
#include "core/schedule.hpp"

namespace qes {

struct YdsResult {
  /// Per-job speeds, aligned with the sorted order of the input set.
  std::vector<Speed> speeds;
  /// The executable timetable (EDF at the per-job speeds).
  Schedule schedule;
  /// Speed of the first critical interval == max speed in the schedule.
  Speed critical_speed = 0.0;
};

/// Computes the YDS schedule for `set`. Every job is completed in full by
/// its deadline; jobs with zero demand are skipped. O(n^3) worst case with
/// O(1) interval intensities; the online invocations use tiny n.
[[nodiscard]] YdsResult yds_schedule(const AgreeableJobSet& set);

/// yds_schedule with a speed cap for callers whose demands were sized to
/// fit `max_speed` exactly (QE-OPT step 2, Online-QE, DES step 4).
/// Floating-point drift amplified by tiny windows can push the critical
/// speed marginally past the cap; because YDS speeds are homogeneous of
/// degree 1 in the demands, one uniform down-scale restores feasibility
/// exactly. A required rescale beyond `max_rel_excess` means the input
/// was genuinely infeasible and aborts.
[[nodiscard]] YdsResult yds_schedule_capped(const AgreeableJobSet& set,
                                            Speed max_speed,
                                            double max_rel_excess = 1e-4);

/// Reusable buffers for the scratch variants (contents are an
/// implementation detail; keep one alive across calls).
struct YdsScratch {
  struct Window {
    Time r;
    Time d;
    Work w;
    bool active;
  };
  std::vector<Window> win;
  std::vector<std::size_t> act;
  std::vector<Work> prefix;
  std::vector<Job> scaled;
  AgreeableJobSet scaled_set;
};

/// Identical arithmetic to yds_schedule, writing into `out` and drawing
/// temporaries from `scratch` (zero-allocation steady state).
void yds_schedule_into(const AgreeableJobSet& set, YdsScratch& scratch,
                       YdsResult& out);

/// Scratch variant of yds_schedule_capped.
void yds_schedule_capped_into(const AgreeableJobSet& set, Speed max_speed,
                              YdsScratch& scratch, YdsResult& out,
                              double max_rel_excess = 1e-4);

/// Energy of the YDS allocation under `pm` — depends only on per-job
/// speeds and demands, not on segment placement:
///   E = sum_j (w_j / s_j) * a * s_j^beta / 1000.
[[nodiscard]] Joules yds_energy(const AgreeableJobSet& set,
                                const YdsResult& result,
                                const PowerModel& pm);

}  // namespace qes
