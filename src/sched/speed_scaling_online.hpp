// Classic online speed-scaling algorithms from Yao, Demers & Shenker
// (FOCS'95) — the lineage of the paper's Energy-OPT step (§VI, [25]).
//
// Both algorithms complete EVERY job by its deadline with no power
// budget, reacting to arrivals online:
//
//   AVR (Average Rate): each alive job contributes its density
//   w_j / (d_j - r_j); the processor runs at the sum of densities.
//   Competitive ratio 2^{beta-1} * beta^beta against YDS.
//
//   OA (Optimal Available): at every arrival, recompute the YDS-optimal
//   schedule for the remaining work of alive jobs, assuming no future
//   arrivals. Competitive ratio beta^beta.
//
// They serve as energy baselines for Online-QE's YDS step and as
// reference implementations for the related-work comparisons.
#pragma once

#include <vector>

#include "core/job.hpp"
#include "core/schedule.hpp"

namespace qes {

/// A piecewise-constant processor speed profile.
struct SpeedSegment {
  Time t0 = 0.0;
  Time t1 = 0.0;
  Speed speed = 0.0;
};

/// AVR's speed profile for the job set (changes only at releases and
/// deadlines). Running EDF at this profile completes every job.
[[nodiscard]] std::vector<SpeedSegment> avr_speed_profile(
    const AgreeableJobSet& set);

/// Dynamic energy of a speed profile under `pm`.
[[nodiscard]] Joules profile_energy(std::span<const SpeedSegment> profile,
                                    const PowerModel& pm);

/// The executable AVR schedule: EDF (== FIFO under agreeable deadlines)
/// at the AVR speed profile.
[[nodiscard]] Schedule avr_schedule(const AgreeableJobSet& set);

/// The executable OA schedule: YDS replanned at every release over the
/// remaining work of alive jobs.
[[nodiscard]] Schedule oa_schedule(const AgreeableJobSet& set);

}  // namespace qes
