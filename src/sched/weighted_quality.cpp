#include "sched/weighted_quality.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "alloc/marginal.hpp"
#include "core/assert.hpp"

namespace qes {

namespace {

struct Window {
  Time r;
  Time d;
  Work w;
  Work base;
  double weight;
  bool active;
};

Time compress(Time x, Time z, Time z2) {
  if (x <= z) return x;
  if (x >= z2) return x - (z2 - z);
  return z;
}

// Optimal multiplier and allocation for one interval's contained jobs.
MarginalAllocResult interval_alloc(const std::vector<Work>& caps,
                                   const std::vector<double>& weights,
                                   const QualityFunction& f, Work capacity,
                                   const std::vector<Work>& bases) {
  std::vector<std::function<double(Work)>> fs;
  fs.reserve(caps.size());
  for (double omega : weights) {
    fs.emplace_back([omega, &f](Work x) { return omega * f(x); });
  }
  return marginal_allocate(caps, fs, capacity, bases);
}

}  // namespace

WeightedQualityResult weighted_quality_opt_schedule(
    const AgreeableJobSet& set, Speed speed, std::span<const double> weights,
    const QualityFunction& f, std::span<const Work> baselines) {
  QES_ASSERT(speed > 0.0);
  QES_ASSERT(weights.size() == set.size());
  QES_ASSERT(baselines.empty() || baselines.size() == set.size());
  for (double omega : weights) QES_ASSERT(omega > 0.0);
  const std::size_t n = set.size();
  WeightedQualityResult out;
  out.volumes.assign(n, 0.0);

  std::vector<Window> win(n);
  std::size_t remaining = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const Job& j = set[k];
    const Work base = baselines.empty() ? 0.0 : baselines[k];
    win[k] = {j.release, j.deadline, j.demand, base, weights[k],
              j.demand - base > kTimeEps};
    if (win[k].active) ++remaining;
  }

  while (remaining > 0) {
    std::vector<std::size_t> act;
    act.reserve(remaining);
    for (std::size_t k = 0; k < n; ++k) {
      if (win[k].active) act.push_back(k);
    }

    // Find the interval with the HIGHEST optimal multiplier lambda —
    // the scarcest capacity relative to weighted marginal demand. A pair
    // missing same-release twins only under-estimates lambda, so the
    // scan still finds the true maximum; the winner is re-evaluated with
    // its full contained set below.
    double best_lambda = -1.0;
    Time best_z = 0.0, best_z2 = 0.0;
    bool all_satisfiable = true;
    std::vector<Work> caps, bases;
    std::vector<double> ws;
    for (std::size_t a = 0; a < act.size(); ++a) {
      if (a > 0 && win[act[a]].r <= win[act[a - 1]].r + kTimeEps) continue;
      const Time z = win[act[a]].r;
      caps.clear();
      bases.clear();
      ws.clear();
      for (std::size_t b = a; b < act.size(); ++b) {
        caps.push_back(win[act[b]].w);
        bases.push_back(win[act[b]].base);
        ws.push_back(win[act[b]].weight);
        const Time z2 = win[act[b]].d;
        QES_ASSERT(z2 > z);
        const auto r =
            interval_alloc(caps, ws, f, speed * (z2 - z), bases);
        if (r.lambda > kTimeEps) all_satisfiable = false;
        if (r.lambda > best_lambda) {
          best_lambda = r.lambda;
          best_z = z;
          best_z2 = z2;
        }
      }
    }

    if (all_satisfiable) {
      for (std::size_t k : act) {
        out.volumes[k] = set[k].demand - win[k].base;
        win[k].active = false;
      }
      remaining = 0;
      break;
    }

    // Re-evaluate the winning interval with its full contained set.
    std::vector<std::size_t> contained;
    caps.clear();
    bases.clear();
    ws.clear();
    for (std::size_t k : act) {
      if (win[k].r >= best_z - kTimeEps && win[k].d <= best_z2 + kTimeEps) {
        contained.push_back(k);
        caps.push_back(win[k].w);
        bases.push_back(win[k].base);
        ws.push_back(win[k].weight);
      }
    }
    QES_ASSERT(!contained.empty());
    const auto r =
        interval_alloc(caps, ws, f, speed * (best_z2 - best_z), bases);
    for (std::size_t c = 0; c < contained.size(); ++c) {
      const std::size_t k = contained[c];
      out.volumes[k] = r.alloc[c];
      win[k].active = false;
      --remaining;
    }
    for (std::size_t k : act) {
      if (!win[k].active) continue;
      win[k].r = compress(win[k].r, best_z, best_z2);
      win[k].d = compress(win[k].d, best_z, best_z2);
    }
  }

  // FIFO timetable at the fixed speed, with truncation repair: clip any
  // allocation that cannot finish by its deadline (see the result's
  // `truncated` doc for why this can happen under heterogeneous weights).
  Time t = n > 0 ? set[0].release : 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    Work p = out.volumes[k];
    const Work base = baselines.empty() ? 0.0 : baselines[k];
    if (p > kTimeEps) {
      const Time start = std::max(t, set[k].release);
      const Time available = set[k].deadline - start;
      if (p / speed > available + 1e-9) {
        p = std::max(0.0, available * speed);
        out.volumes[k] = p;
        out.truncated = true;
      }
      if (p > kTimeEps) {
        const Time finish = start + p / speed;
        out.schedule.push({start, finish, set[k].id, speed});
        t = finish;
      }
    }
    out.weighted_quality += weights[k] * f(base + out.volumes[k]);
  }
  return out;
}

}  // namespace qes
