// QE-OPT: offline optimal single-core scheduling for the lexicographic
// <quality, energy> metric under a power budget (paper §III-A, Thms 1-2).
//
// Step 1 runs Quality-OPT at the maximum core speed (the speed the power
// budget supports) to fix per-job volumes — this maximizes total quality.
// Step 2 rewrites each job's demand to its granted volume and runs
// Energy-OPT (YDS) to pick the slowest feasible speeds — this minimizes
// energy among quality-maximal schedules. Theorem 1 guarantees the YDS
// critical speed never exceeds the maximum core speed.
#pragma once

#include <vector>

#include "core/job.hpp"
#include "core/schedule.hpp"

namespace qes {

struct QeOptResult {
  /// Granted volume per job, aligned with the sorted set (== Quality-OPT's).
  std::vector<Work> volumes;
  /// Variable-speed timetable executing the volumes (== YDS over the
  /// rewritten demands).
  Schedule schedule;
};

/// Runs QE-OPT on `set` with maximum core speed `max_speed` (GHz), i.e.
/// the speed supported by the core's dynamic power budget.
[[nodiscard]] QeOptResult qe_opt_schedule(const AgreeableJobSet& set,
                                          Speed max_speed);

}  // namespace qes
