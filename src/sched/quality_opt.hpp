// Quality-OPT (a.k.a. Tians-OPT, He et al. ICDCS'11; paper §III-A):
// maximum-total-quality scheduling of best-effort jobs on a single core
// running at a FIXED speed.
//
// The algorithm repeatedly finds the *busiest deprived interval* — the
// interval I minimizing the d-mean p~(I), i.e. the water-fill level of the
// demands of the jobs contained in I given capacity s * |I| — satisfies
// the small jobs in it, grants every deprived job the d-mean volume,
// compresses the interval out of the timeline and recurses. Because all
// jobs share one concave quality function, equalizing deprived volumes is
// optimal.
#pragma once

#include <span>
#include <vector>

#include "alloc/waterfill.hpp"
#include "core/job.hpp"
#include "core/quality.hpp"
#include "core/schedule.hpp"

namespace qes {

struct QualityOptResult {
  /// Granted processing volume per job, aligned with the sorted set.
  std::vector<Work> volumes;
  /// FIFO/EDF timetable executing the volumes at the fixed speed.
  Schedule schedule;
};

/// Runs Quality-OPT on `set` with fixed core speed `speed` (GHz).
[[nodiscard]] QualityOptResult quality_opt_schedule(const AgreeableJobSet& set,
                                                    Speed speed);

/// Baseline-aware generalization (used by the "resume" execution-model
/// ablation): `baselines[k]` is the volume job k already received before
/// its current window. Interval capacities cover only the window, but the
/// water level equalizes baseline + new volume, so previously served jobs
/// yield to starved ones. `volumes` returns the NEW volume only.
[[nodiscard]] QualityOptResult quality_opt_schedule(
    const AgreeableJobSet& set, Speed speed, std::span<const Work> baselines);

/// Sum of f(volume) over jobs; `volumes` aligned with the sorted set.
[[nodiscard]] double total_quality(std::span<const Work> volumes,
                                   const QualityFunction& f);

/// Reusable buffers for the scratch variant (implementation detail;
/// keep one alive across calls).
struct QualityOptScratch {
  struct Window {
    Time r;
    Time d;
    Work w;     // full demand
    Work base;  // volume already received before the window
    bool active;
  };
  std::vector<Window> win;
  std::vector<std::size_t> act;
  std::vector<Work> caps;
  std::vector<Work> bases;
  std::vector<std::size_t> contained;
  WaterfillScratch wf_scratch;
  WaterfillResult wf;
};

/// Identical arithmetic to quality_opt_schedule, writing into `out` and
/// drawing temporaries from `scratch` (zero-allocation steady state).
void quality_opt_into(const AgreeableJobSet& set, Speed speed,
                      std::span<const Work> baselines,
                      QualityOptScratch& scratch, QualityOptResult& out);

}  // namespace qes
