#include "sched/quality_opt.hpp"

#include <algorithm>
#include <limits>

#include "alloc/waterfill.hpp"
#include "core/assert.hpp"

namespace qes {

namespace {

Time compress(Time x, Time z, Time z2) {
  if (x <= z) return x;
  if (x >= z2) return x - (z2 - z);
  return z;
}

}  // namespace

void quality_opt_into(const AgreeableJobSet& set, Speed speed,
                      std::span<const Work> baselines,
                      QualityOptScratch& scratch, QualityOptResult& out) {
  using Window = QualityOptScratch::Window;
  QES_ASSERT_MSG(speed > 0.0, "Quality-OPT needs a positive core speed");
  QES_ASSERT(baselines.empty() || baselines.size() == set.size());
  const std::size_t n = set.size();
  out.volumes.assign(n, 0.0);
  out.schedule.clear();

  std::vector<Window>& win = scratch.win;
  win.resize(n);
  std::size_t remaining = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const Job& j = set[k];
    const Work base = baselines.empty() ? 0.0 : baselines[k];
    const bool active = j.demand - base > kTimeEps;
    win[k] = {j.release, j.deadline, j.demand, base, active};
    if (active) ++remaining;
  }

  while (remaining > 0) {
    std::vector<std::size_t>& act = scratch.act;
    act.clear();
    act.reserve(remaining);
    for (std::size_t k = 0; k < n; ++k) {
      if (win[k].active) act.push_back(k);
    }

    // Search the busiest deprived interval: the candidate [r_i, d_j]
    // minimizing the water-fill level of the contained demands. A pair
    // that misses same-release/same-deadline twins only over-estimates
    // the level, so the scan still finds the true minimum; the winning
    // interval is re-evaluated below with its full contained set.
    double best_level = std::numeric_limits<double>::infinity();
    Time best_z = 0.0, best_z2 = 0.0;
    bool found = false;
    std::vector<Work>& caps = scratch.caps;
    std::vector<Work>& bases = scratch.bases;
    for (std::size_t a = 0; a < act.size(); ++a) {
      // Non-first indices of a tied release start dominated intervals
      // (their level only over-estimates the canonical pair's); skip.
      // In the online case all releases coincide, so only a == 0 runs.
      if (a > 0 && win[act[a]].r <= win[act[a - 1]].r + kTimeEps) continue;
      const Time z = win[act[a]].r;
      caps.clear();
      bases.clear();
      for (std::size_t b = a; b < act.size(); ++b) {
        caps.push_back(win[act[b]].w);
        bases.push_back(win[act[b]].base);
        const Time z2 = win[act[b]].d;
        QES_ASSERT(z2 > z);
        const Work capacity = speed * (z2 - z);
        waterfill_volumes_into(caps, bases, capacity, scratch.wf_scratch,
                               scratch.wf);
        if (scratch.wf.level < best_level - 1e-9 || !found) {
          best_level = scratch.wf.level;
          best_z = z;
          best_z2 = z2;
          found = true;
        }
      }
    }
    QES_ASSERT(found);

    if (!std::isfinite(best_level)) {
      // Every interval has spare capacity: all remaining jobs can be
      // fully satisfied.
      for (std::size_t k : act) {
        out.volumes[k] = win[k].w - win[k].base;
        win[k].active = false;
      }
      remaining = 0;
      break;
    }

    // Re-evaluate the winning interval over its full contained set and
    // grant the volumes: satisfied jobs get their remaining demand,
    // deprived jobs are levelled at the d-mean.
    std::vector<std::size_t>& contained = scratch.contained;
    contained.clear();
    caps.clear();
    bases.clear();
    for (std::size_t k : act) {
      if (win[k].r >= best_z - kTimeEps && win[k].d <= best_z2 + kTimeEps) {
        contained.push_back(k);
        caps.push_back(win[k].w);
        bases.push_back(win[k].base);
      }
    }
    QES_ASSERT(!contained.empty());
    waterfill_volumes_into(caps, bases, speed * (best_z2 - best_z),
                           scratch.wf_scratch, scratch.wf);
    for (std::size_t c = 0; c < contained.size(); ++c) {
      const std::size_t k = contained[c];
      out.volumes[k] = scratch.wf.alloc[c];
      win[k].active = false;
      --remaining;
    }
    for (std::size_t k : act) {
      if (!win[k].active) continue;
      win[k].r = compress(win[k].r, best_z, best_z2);
      win[k].d = compress(win[k].d, best_z, best_z2);
    }
  }

  // FIFO (== EDF) timetable at the fixed speed.
  Time t = n > 0 ? set[0].release : 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const Job& j = set[k];
    const Work p = out.volumes[k];
    if (p <= kTimeEps) continue;
    const Time start = std::max(t, j.release);
    const Time finish = start + p / speed;
    QES_ASSERT_MSG(approx_le(finish, j.deadline, 1e-5),
                   "Quality-OPT timetable must meet every deadline");
    out.schedule.push({start, finish, j.id, speed});
    t = finish;
  }
}

QualityOptResult quality_opt_schedule(const AgreeableJobSet& set,
                                      Speed speed,
                                      std::span<const Work> baselines) {
  QualityOptScratch scratch;
  QualityOptResult out;
  quality_opt_into(set, speed, baselines, scratch, out);
  return out;
}

QualityOptResult quality_opt_schedule(const AgreeableJobSet& set,
                                      Speed speed) {
  return quality_opt_schedule(set, speed, {});
}

double total_quality(std::span<const Work> volumes, const QualityFunction& f) {
  double q = 0.0;
  for (Work v : volumes) q += f(v);
  return q;
}

}  // namespace qes
