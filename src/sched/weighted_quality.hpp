// Weighted quality scheduling (extension): differentiated service
// classes.
//
// The paper assumes every request shares one quality function; real
// services weight customers (premium vs regular, paid SLAs). This module
// generalizes Quality-OPT to maximize sum_j omega_j * f(p_j): the
// busiest-deprived-interval recursion survives, but the interval
// allocation becomes KKT water-filling on MARGINALS — each interval's
// pressure is its optimal multiplier lambda(I), and the interval with the
// HIGHEST lambda is allocated first (for equal weights lambda = f'(level)
// is monotone in the d-mean, so this reduces exactly to Quality-OPT).
#pragma once

#include <span>
#include <vector>

#include "core/job.hpp"
#include "core/quality.hpp"
#include "core/schedule.hpp"

namespace qes {

struct WeightedQualityResult {
  /// Granted (and executable) volumes, aligned with the sorted set.
  std::vector<Work> volumes;
  /// FIFO timetable at the fixed speed.
  Schedule schedule;
  /// Weighted total quality sum_j omega_j f(p_j).
  double weighted_quality = 0.0;
  /// True when the FIFO repair had to truncate some allocation: unlike
  /// the unweighted case, max-lambda interval ordering does not
  /// guarantee prefix feasibility (a capacity-tight sub-interval holding
  /// only low-weight jobs can be out-prioritized), so volumes that
  /// cannot execute by their deadlines are clipped.
  bool truncated = false;
};

/// Runs the weighted generalization of Quality-OPT on `set` at fixed
/// `speed`. `weights` are per-job, aligned with the SORTED order of the
/// set, all positive. `f` is the shared concave quality shape. Optional
/// `baselines` (same alignment) hold volume already received; `volumes`
/// then returns the NEW volume per job and the objective counts
/// f(baseline + new).
[[nodiscard]] WeightedQualityResult weighted_quality_opt_schedule(
    const AgreeableJobSet& set, Speed speed, std::span<const double> weights,
    const QualityFunction& f, std::span<const Work> baselines = {});

}  // namespace qes
